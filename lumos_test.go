package lumos_test

import (
	"math/rand"
	"testing"

	"lumos"
)

// TestPublicAPISupervised exercises the façade end to end the way the
// README quickstart does.
func TestPublicAPISupervised(t *testing.T) {
	g, err := lumos.Generate(lumos.GenConfig{
		Name: "api", N: 80, M: 320, Classes: 2, FeatureDim: 12, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := lumos.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lumos.NewSystem(g, g, lumos.Config{
		Task: lumos.Supervised, Backbone: lumos.GCN,
		Epochs: 6, MCMCIterations: 15, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.TrainSupervised(split)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Losses) != 6 {
		t.Fatalf("losses = %d", len(stats.Losses))
	}
	acc, err := sys.EvaluateAccuracy(split.IsTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}

func TestPublicAPIUnsupervised(t *testing.T) {
	g, err := lumos.LastFMLike(0.015, 2)
	if err != nil {
		t.Fatal(err)
	}
	es, err := lumos.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lumos.NewSystem(es.TrainGraph, g, lumos.Config{
		Task: lumos.Unsupervised, Backbone: lumos.GCN,
		Epochs: 5, MCMCIterations: 15, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainUnsupervised(es); err != nil {
		t.Fatal(err)
	}
	auc, err := sys.EvaluateAUC(es.Test, es.TestNeg)
	if err != nil {
		t.Fatal(err)
	}
	if auc <= 0 || auc > 1 {
		t.Fatalf("AUC %v out of range", auc)
	}
}

func TestPublicAPIExperimentRunners(t *testing.T) {
	opts := lumos.ExperimentOptions{
		FacebookScale:  0.008,
		LastFMScale:    0.02,
		Epochs:         3,
		MCMCIterations: 10,
		Backbones:      []lumos.Backbone{lumos.GCN},
		Datasets:       []string{"Facebook"},
		Seed:           3,
	}
	if _, err := lumos.RunFig7(opts); err != nil {
		t.Fatal(err)
	}
}
