// Churn study: does staleness-bounded asynchronous scheduling actually buy
// wall-clock time over the paper's synchronous barrier once devices are
// heterogeneous and flaky?
//
// The experiment builds one synthetic social graph, then plays the *same*
// scenario — a zipf fleet (median device nominal, stragglers up to ~2.6×
// slower), 20% per-round churn, 80% partial participation — through the
// discrete-event simulator twice: once with the synchronous barrier
// (Config.Sched = SchedSync) and once with bounded staleness
// (SchedAsync, Staleness = 2). The availability and sampling schedules are
// seeded identically, so the only difference is the aggregation discipline.
//
// Expected outcome (deterministic for a fixed -seed): async commits the same
// number of rounds in strictly less simulated wall-clock, because the
// aggregator stops waiting for the straggler every round — it commits on a
// half-participant quorum and lets slow devices deliver up to two rounds
// late, amortizing their compute — while accuracy stays in the same band.
// The program exits non-zero if async fails to beat sync, so CI catches any
// regression in the scheduling model.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lumos/internal/core"
	"lumos/internal/graph"
	"lumos/internal/sim"
)

func main() {
	var (
		n      = flag.Int("n", 160, "number of devices")
		m      = flag.Int("m", 800, "number of edges")
		rounds = flag.Int("rounds", 16, "training rounds to simulate")
		churn  = flag.Float64("churn", 0.2, "per-round probability an online device leaves")
		partic = flag.Float64("participation", 0.8, "fraction of available devices sampled per round")
		stale  = flag.Int("staleness", 2, "async gradient staleness bound in rounds")
		mcmc   = flag.Int("mcmc", 30, "MCMC tree-trimming iterations")
		seed   = flag.Int64("seed", 7, "run seed")
	)
	flag.Parse()

	g, err := graph.Generate(graph.GenConfig{
		Name: "churnstudy", N: *n, M: *m, Classes: 2, FeatureDim: 24, Seed: *seed,
	})
	fatal(err)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(*seed)))
	fatal(err)
	fmt.Printf("graph: %d devices, %d edges | zipf fleet, %.0f%% churn, %.0f%% participation, %d rounds\n",
		g.N, g.NumEdges(), 100**churn, 100**partic, *rounds)

	scenario := sim.Scenario{
		Fleet: sim.FleetZipf, ZipfSkew: 1.4,
		Churn: *churn, Participation: *partic,
		Rounds: *rounds, EvalEvery: 4, Seed: *seed,
	}

	run := func(sched core.Sched, staleness int) *sim.Result {
		sys, err := core.NewSystem(g, g, core.Config{
			Task: core.Supervised, MCMCIterations: *mcmc,
			Shards: g.N, // one device per shard: exact per-device participation
			Sched:  sched, Staleness: staleness,
			Seed: *seed,
		})
		fatal(err)
		s, err := sim.New(sys, scenario)
		fatal(err)
		res, err := s.Run(core.NewSupervisedObjective(split))
		fatal(err)
		return res
	}

	syncRes := run(core.SchedSync, 0)
	asyncRes := run(core.SchedAsync, *stale)

	fmt.Printf("\n%-28s %12s %12s\n", "", "sync", "async")
	fmt.Printf("%-28s %11.3fs %11.3fs\n", "simulated wall-clock", syncRes.WallClock, asyncRes.WallClock)
	fmt.Printf("%-28s %12d %12d\n", "bytes on the wire", syncRes.TotalBytes, asyncRes.TotalBytes)
	fmt.Printf("%-28s %12.1f %12.1f\n", "avg participants/round", syncRes.MeanParticipants, asyncRes.MeanParticipants)
	fmt.Printf("%-28s %12d %12d\n", "stale gradient applies", syncRes.StaleApplied, asyncRes.StaleApplied)
	fmt.Printf("%-28s %12.4f %12.4f\n", "final test accuracy", syncRes.FinalMetric, asyncRes.FinalMetric)

	if asyncRes.WallClock >= syncRes.WallClock {
		fmt.Printf("\nCHECK FAILED: async wall-clock %.3fs did not beat sync %.3fs\n",
			asyncRes.WallClock, syncRes.WallClock)
		os.Exit(1)
	}
	fmt.Printf("\nasync finished the same %d rounds %.2fx faster than the synchronous barrier\n",
		*rounds, syncRes.WallClock/asyncRes.WallClock)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "churnstudy: %v\n", err)
		os.Exit(1)
	}
}
