// Secure degree comparison walkthrough: the cryptographic building block of
// Lumos's tree constructor, demonstrated standalone. Two devices compare
// their (private) node degrees through the OT-based secret-shared
// comparator; both learn only the single comparison bit, never the values
// (paper Definition 2 and §V-C). The demo also prices the protocol — OTs,
// messages, bytes — which is exactly what Lumos pays per comparison during
// greedy initialization and every MCMC iteration.
package main

import (
	"fmt"

	"lumos/internal/smc"
)

func main() {
	stats := &smc.Stats{}
	proto := smc.NewProtocol(32, stats)

	// Two devices with private degrees. In the full system these come from
	// each device's ego network; here they are just local values.
	alice := smc.NewParty(101)
	bob := smc.NewParty(202)
	degA, degB := uint64(147), uint64(23)

	less := proto.Less(alice, degA, bob, degB)
	fmt.Printf("deg(alice) < deg(bob)?  %v\n", less)
	fmt.Printf("protocol cost: %d OTs, %d messages, %d bytes\n",
		stats.OTs, stats.Messages, stats.Bytes)

	// The greedy initialization (Alg. 1) compares rounded log-degrees both
	// ways; ties keep the edge in both trees.
	aKeeps := proto.LessOrEqual(alice, 5, bob, 3) // round(ln 147)=5, round(ln 23)=3
	bKeeps := proto.LessOrEqual(bob, 3, alice, 5)
	fmt.Printf("alice retains bob: %v   bob retains alice: %v\n", aKeeps, bKeeps)

	// The Metropolis-Hastings accept step is a single secure comparison on
	// fixed-point operands: accept iff ln U < f(X) − f(X'). Only the accept
	// bit is revealed — less than revealing the difference itself.
	accepts := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		u := 1 - float64(i)/trials // deterministic sweep over (0,1]
		if proto.AcceptMH(alice, 10 /* f(X) */, bob, 11 /* f(X') */, u) {
			accepts++
		}
	}
	fmt.Printf("MH accept rate for a +1-workload proposal: %.3f (theory e^-1 = 0.368)\n",
		float64(accepts)/trials)

	fmt.Printf("total secure traffic this demo: %d comparisons, %d OTs, %.1f KiB\n",
		stats.Comparisons, stats.OTs, float64(stats.Bytes)/1024)
}
