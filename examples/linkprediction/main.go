// Unsupervised link prediction on a LastFM-like follower graph (paper
// §VI-C b and Fig. 4): no labels are used; devices learn embeddings by
// predicting their own edges against negative samples, and we score the
// held-out edges with ROC-AUC. Demonstrates the edge-split workflow where
// Lumos trains on the training subgraph while devices keep their full
// neighbor knowledge for negative sampling.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lumos"
)

func main() {
	g, err := lumos.LastFMLike(0.08, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lastfm-like graph: %d users, %d follows\n", g.N, g.NumEdges())

	// The paper's unsupervised protocol: 80% train / 5% val / 15% test
	// edges, with matched negative samples for evaluation.
	es, err := lumos.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(23)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge split: %d train / %d val / %d test\n",
		len(es.Train), len(es.Val), len(es.Test))

	sys, err := lumos.NewSystem(es.TrainGraph, g, lumos.Config{
		Task:           lumos.Unsupervised,
		Backbone:       lumos.GCN,
		Epochs:         50,
		MCMCIterations: 120,
		Seed:           23,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sys.TrainUnsupervised(es)
	if err != nil {
		log.Fatal(err)
	}
	auc, err := sys.EvaluateAUC(es.Test, es.TestNeg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss %.3f -> %.3f\n", stats.Losses[0], stats.Losses[len(stats.Losses)-1])
	fmt.Printf("test ROC-AUC: %.3f\n", auc)

	// The learned embeddings are a reusable artifact: rank a user's most
	// likely missing links.
	emb := sys.Embeddings()
	u := 0
	type cand struct {
		v     int
		score float64
	}
	var best cand
	for v := 1; v < g.N; v++ {
		if g.HasEdge(u, v) {
			continue
		}
		s := 0.0
		for k := 0; k < emb.Cols(); k++ {
			s += emb.At(u, k) * emb.At(v, k)
		}
		if s > best.score || best.v == 0 {
			best = cand{v, s}
		}
	}
	fmt.Printf("strongest predicted new link for user 0: user %d (score %.3f)\n", best.v, best.score)
}
