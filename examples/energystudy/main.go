// Energy study: what does a participation policy cost in joules, and what
// does it buy in model quality?
//
// The experiment samples a heterogeneous device-fleet trace
// (fleet.SampleTrace — the same population lumos-datagen -traces writes:
// mid-range phones, fast-but-power-hungry flagships, and slow diurnal
// devices that cycle offline), then plays the *same* scenario through the
// discrete-event simulator once per participation policy (sample 25%, 50%,
// or 100% of the available devices each round). The aggregator runs with a
// finite shared uplink/downlink capacity, so the bigger quorums also pay
// M/G/1 queueing delay at the server, and every round's energy is accounted
// as compute-seconds × profile power + radio bytes × energy/byte.
//
// Expected outcome (deterministic for a fixed -seed): fleet energy grows
// monotonically with the participation fraction — more devices computing
// and uploading each round can only add joules — while the final metric
// improves much more slowly, so the joules-per-accuracy-point column makes
// the diminishing returns of large quorums visible. The program exits
// non-zero if energy fails to grow with participation, so CI catches any
// regression in the accounting.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lumos/internal/core"
	"lumos/internal/fed"
	"lumos/internal/fleet"
	"lumos/internal/graph"
	"lumos/internal/sim"
)

func main() {
	var (
		n      = flag.Int("n", 120, "number of devices")
		m      = flag.Int("m", 600, "number of edges")
		rounds = flag.Int("rounds", 12, "training rounds to simulate per policy")
		aggCap = flag.Float64("agg-capacity", 2e6, "aggregator shared link capacity, bytes/s (0 = independent links)")
		mcmc   = flag.Int("mcmc", 30, "MCMC tree-trimming iterations")
		seed   = flag.Int64("seed", 7, "run seed")
	)
	flag.Parse()

	g, err := graph.Generate(graph.GenConfig{
		Name: "energystudy", N: *n, M: *m, Classes: 2, FeatureDim: 24, Seed: *seed,
	})
	fatal(err)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(*seed)))
	fatal(err)
	trace, err := fleet.SampleTrace(g.N, *seed)
	fatal(err)
	cycled := 0
	for _, p := range trace.Devices {
		if p.Period > 0 {
			cycled++
		}
	}
	fmt.Printf("graph: %d devices, %d edges | trace fleet (%d diurnal), agg capacity %.0f B/s, %d rounds/policy\n",
		g.N, g.NumEdges(), cycled, *aggCap, *rounds)

	cost := fed.DefaultCostModel()
	cost.AggBytesPerSecond = *aggCap

	run := func(participation float64) *sim.Result {
		sys, err := core.NewSystem(g, g, core.Config{
			Task: core.Supervised, MCMCIterations: *mcmc,
			Shards: g.N, // one device per shard: exact per-device participation
			Seed:   *seed,
		})
		fatal(err)
		sc := sim.Scenario{
			Fleet: sim.FleetTrace, Trace: trace,
			Participation: participation, Rounds: *rounds,
			EvalEvery: 4, ModelSelection: true,
			Cost: cost, Seed: *seed,
		}
		s, err := sim.New(sys, sc)
		fatal(err)
		res, err := s.Run(core.NewSupervisedObjective(split))
		fatal(err)
		return res
	}

	policies := []float64{0.25, 0.5, 1.0}
	fmt.Printf("\n%-14s %12s %12s %12s %12s %10s %14s\n",
		"participation", "wallclock(s)", "bytes", "energy(J)", "J/round", "final acc", "J/acc point")
	var results []*sim.Result
	for _, p := range policies {
		res := run(p)
		results = append(results, res)
		perPoint := 0.0
		if res.FinalMetric > 0 {
			perPoint = res.TotalEnergy / (100 * res.FinalMetric)
		}
		fmt.Printf("%13.0f%% %12.3f %12d %12.3f %12.3f %10.4f %14.4f\n",
			100*p, res.WallClock, res.TotalBytes, res.TotalEnergy,
			res.TotalEnergy/float64(len(res.Timeline)), res.FinalMetric, perPoint)
	}

	for i := 1; i < len(results); i++ {
		if results[i].TotalEnergy < results[i-1].TotalEnergy {
			fmt.Printf("\nCHECK FAILED: participation %.0f%% spent %.3f J, less than %.0f%% at %.3f J\n",
				100*policies[i], results[i].TotalEnergy, 100*policies[i-1], results[i-1].TotalEnergy)
			os.Exit(1)
		}
	}
	fmt.Printf("\nenergy grows monotonically with participation; full quorums cost %.1fx the joules of 25%% sampling\n",
		results[len(results)-1].TotalEnergy/results[0].TotalEnergy)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "energystudy: %v\n", err)
		os.Exit(1)
	}
}
