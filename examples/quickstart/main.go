// Quickstart: train Lumos on a small synthetic social graph and report test
// accuracy. This is the smallest end-to-end use of the public API — build a
// graph, split it, assemble a federated system, train, evaluate.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"lumos"
)

func main() {
	var (
		n      = flag.Int("n", 300, "number of devices")
		m      = flag.Int("m", 1800, "number of edges")
		epochs = flag.Int("epochs", 40, "training epochs")
		mcmc   = flag.Int("mcmc", 80, "MCMC tree-trimming iterations")
	)
	flag.Parse()

	// A small power-law social graph, 2 classes.
	g, err := lumos.Generate(lumos.GenConfig{
		Name:       "quickstart",
		N:          *n,
		M:          *m,
		Classes:    2,
		FeatureDim: 32,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d devices, %d edges, max degree %d\n", g.N, g.NumEdges(), g.MaxDegree())

	// The paper's supervised protocol: 50% train / 25% val / 25% test.
	split, err := lumos.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the federated system. Zero values pick the paper's settings
	// (2 GCN layers, hidden=out=16, ε=2, Adam at 0.01); we shorten training
	// and MCMC for a fast demo.
	sys, err := lumos.NewSystem(g, g, lumos.Config{
		Task:           lumos.Supervised,
		Backbone:       lumos.GCN,
		Epochs:         *epochs,
		MCMCIterations: *mcmc,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree trimming: max workload %d (max degree was %d)\n",
		sys.Balanced.MaxWorkload(), g.MaxDegree())

	stats, err := sys.TrainSupervised(split)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := sys.EvaluateAccuracy(split.IsTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss %.3f -> %.3f, test accuracy %.3f\n",
		stats.Losses[0], stats.Losses[len(stats.Losses)-1], acc)
	fmt.Printf("avg communication rounds per device per epoch: %.1f\n",
		stats.AvgCommRoundsPerDevice)
}
