// Servequickstart: the full train→publish→serve→query loop through the
// public API. Train a model, publish a versioned snapshot, stand up a
// serving replica that watches the snapshot file, query it over HTTP, then
// republish a further-trained model and watch the replica hot-swap to it —
// verifying along the way that every served answer is bit-identical to the
// training process's own evaluation. Exits non-zero on any mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"lumos"
)

func main() {
	var (
		n      = flag.Int("n", 220, "number of devices")
		m      = flag.Int("m", 1300, "number of edges")
		epochs = flag.Int("epochs", 12, "training epochs per publish")
		mcmc   = flag.Int("mcmc", 40, "MCMC tree-trimming iterations")
	)
	flag.Parse()

	// Train a small supervised model.
	g, err := lumos.Generate(lumos.GenConfig{
		Name: "servequickstart", N: *n, M: *m, Classes: 3, FeatureDim: 24, Seed: 5,
	})
	fatal(err)
	split, err := lumos.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(5)))
	fatal(err)
	sys, err := lumos.NewSystem(g, g, lumos.Config{
		Task: lumos.Supervised, Backbone: lumos.GCN,
		Epochs: *epochs, MCMCIterations: *mcmc, Seed: 5,
	})
	fatal(err)
	_, err = sys.TrainSupervised(split)
	fatal(err)
	acc, err := sys.EvaluateAccuracy(split.IsTest)
	fatal(err)

	// Publish snapshot v1: atomic write, auto-incremented version.
	dir, err := os.MkdirTemp("", "servequickstart-*")
	fatal(err)
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.snap")
	snap, err := lumos.CaptureSnapshot(sys, lumos.SnapshotMeta{
		Dataset: g.Name, Round: *epochs, Metric: acc, MetricName: "accuracy",
	})
	fatal(err)
	v, err := lumos.PublishSnapshot(path, snap)
	fatal(err)
	fmt.Printf("published snapshot v%d (test accuracy %.4f)\n", v, acc)

	// A serving replica watching the snapshot file.
	srv := lumos.NewServer(lumos.ServeOptions{})
	defer srv.Close()
	stop := srv.Watch(path, 5*time.Millisecond)
	defer stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	fatal(err)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	waitForVersion(srv, 1)

	// Served answers must be bit-identical to the trainer's own evaluation.
	want, err := sys.Predictions()
	fatal(err)
	nodes := []int{0, 1, 2, g.N / 2, g.N - 1}
	version, classes := classify(base, nodes)
	fmt.Printf("GET %s/v1/classify v%d -> %v\n", base, version, classes)
	if version != 1 {
		log.Fatalf("expected answers from v1, got v%d", version)
	}
	for i, node := range nodes {
		if classes[i] != want[node] {
			log.Fatalf("served class %d for node %d, trainer predicted %d", classes[i], node, want[node])
		}
	}

	// Keep training, republish: the replica hot-swaps to v2 atomically —
	// queries in flight finish on v1, the next batch answers from v2.
	_, err = sys.TrainSupervised(split)
	fatal(err)
	acc2, err := sys.EvaluateAccuracy(split.IsTest)
	fatal(err)
	snap2, err := lumos.CaptureSnapshot(sys, lumos.SnapshotMeta{
		Dataset: g.Name, Round: 2 * *epochs, Metric: acc2, MetricName: "accuracy",
	})
	fatal(err)
	v2, err := lumos.PublishSnapshot(path, snap2)
	fatal(err)
	fmt.Printf("published snapshot v%d (test accuracy %.4f)\n", v2, acc2)
	waitForVersion(srv, 2)

	want2, err := sys.Predictions()
	fatal(err)
	version2, classes2 := classify(base, nodes)
	fmt.Printf("GET %s/v1/classify v%d -> %v\n", base, version2, classes2)
	if version2 != 2 {
		log.Fatalf("expected answers from v2 after hot swap, got v%d", version2)
	}
	for i, node := range nodes {
		if classes2[i] != want2[node] {
			log.Fatalf("served class %d for node %d, trainer predicted %d", classes2[i], node, want2[node])
		}
	}
	fmt.Println("hot swap verified: served answers match the trainer bit for bit at both versions")
}

func classify(base string, nodes []int) (uint64, []int) {
	body, err := json.Marshal(map[string][]int{"nodes": nodes})
	fatal(err)
	resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
	fatal(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("classify: %s", resp.Status)
	}
	var out struct {
		Version uint64 `json:"version"`
		Classes []int  `json:"classes"`
	}
	fatal(json.NewDecoder(resp.Body).Decode(&out))
	return out.Version, out.Classes
}

func waitForVersion(srv *lumos.Server, want uint64) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b := srv.Current(); b != nil && b.Version == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("replica never picked up snapshot v%d", want)
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
