// Topology study: how does the gossip contact graph shape decentralized
// training — and how close does every topology get to the centralized
// star-synchronous baseline?
//
// The experiment builds one zipf-heterogeneous fleet and plays the same
// scenario (full participation, no churn, equal rounds, same seed) four
// ways: once through the star-synchronous aggregator, then decentralized
// (core.SchedGossip) over three contact graphs — a sparse ring, a 4-regular
// graph, and a scale-free Barabási–Albert graph. Under gossip each device
// trains a private model replica and averages with its topology neighbors
// under Metropolis–Hastings weights; there is no aggregator, so a round's
// traffic is O(degree) per device and its wall-clock is paced by per-link
// (bottleneck-bandwidth) delta transfers instead of a shared uplink.
//
// Expected outcome (deterministic for a fixed -seed): every topology's
// final consensus metric lands within 5% of the star-synchronous final at
// equal rounds — sparse graphs mix information more slowly but the
// Metropolis–Hastings matrix is doubly stochastic, so the consensus average
// tracks the centralized trajectory — while total energy grows with the
// topology's edge count. The program exits non-zero if any topology misses
// the 5% band, so CI catches mixing regressions.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"lumos/internal/core"
	"lumos/internal/graph"
	"lumos/internal/sim"
	"lumos/internal/topo"
)

func main() {
	var (
		n      = flag.Int("n", 24, "number of devices")
		m      = flag.Int("m", 110, "number of data-graph edges")
		rounds = flag.Int("rounds", 90, "training rounds per topology")
		mcmc   = flag.Int("mcmc", 25, "MCMC tree-trimming iterations")
		seed   = flag.Int64("seed", 7, "run seed")
	)
	flag.Parse()

	g, err := graph.Generate(graph.GenConfig{
		Name: "topologystudy", N: *n, M: *m, Classes: 2, FeatureDim: 16, Seed: *seed,
	})
	fatal(err)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(*seed)))
	fatal(err)
	fmt.Printf("graph: %d devices, %d edges | zipf fleet, %d rounds per topology, seed %d\n",
		g.N, g.NumEdges(), *rounds, *seed)

	run := func(sched core.Sched, tp *topo.Topology) *sim.Result {
		sys, err := core.NewSystem(g, g, core.Config{
			Task: core.Supervised, MCMCIterations: *mcmc,
			Shards: g.N, // one device per shard: exact per-device participation
			Sched:  sched,
			Seed:   *seed,
		})
		fatal(err)
		sc := sim.Scenario{
			Fleet: sim.FleetZipf, Rounds: *rounds,
			EvalEvery: -1, // final metric only: the consensus verdict
			Topology:  tp,
			Seed:      *seed,
		}
		s, err := sim.New(sys, sc)
		fatal(err)
		res, err := s.Run(core.NewSupervisedObjective(split))
		fatal(err)
		return res
	}

	star := run(core.SchedSync, nil)
	fmt.Printf("\n%-16s %8s %8s %12s %12s %12s %10s %9s\n",
		"topology", "edges", "degree", "wallclock(s)", "bytes", "energy(J)", "final acc", "vs star")

	fmt.Printf("%-16s %8s %8s %12.3f %12d %12.3f %10.4f %9s\n",
		"star (sync)", "-", "-", star.WallClock, star.TotalBytes, star.TotalEnergy,
		star.FinalMetric, "-")

	specs := []string{"ring:2", "k-regular:4", "ba:2"}
	ok := true
	for _, spec := range specs {
		sp, err := topo.ParseSpec(spec)
		fatal(err)
		tp, err := sp.Build(g.N, *seed)
		fatal(err)
		res := run(core.SchedGossip, tp)
		gap := math.Abs(res.FinalMetric-star.FinalMetric) / math.Max(star.FinalMetric, 1e-9)
		within := gap <= 0.05
		verdict := fmt.Sprintf("%.1f%%", 100*gap)
		if !within {
			verdict += " MISS"
			ok = false
		}
		meanDeg := 2 * float64(tp.NumEdges()) / float64(tp.N())
		fmt.Printf("%-16s %8d %8.1f %12.3f %12d %12.3f %10.4f %9s\n",
			tp.Name(), tp.NumEdges(), meanDeg, res.WallClock, res.TotalBytes,
			res.TotalEnergy, res.FinalMetric, verdict)
	}

	if !ok {
		fmt.Fprintln(os.Stderr, "topologystudy: a topology's final metric fell outside 5% of the star-synchronous baseline")
		os.Exit(1)
	}
	fmt.Printf("\nevery topology within 5%% of the star-synchronous final at equal rounds\n")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "topologystudy:", err)
		os.Exit(1)
	}
}
