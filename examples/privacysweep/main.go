// Privacy-budget sensitivity sweep (paper Fig. 5): train Lumos across
// ε ∈ {0.5, 1, 2, 4} and print how accuracy responds. Smaller ε means
// stronger feature protection and noisier embeddings — the curve should
// rise monotonically and flatten at large ε.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lumos"
)

func main() {
	g, err := lumos.FacebookLike(0.02, 5)
	if err != nil {
		log.Fatal(err)
	}
	split, err := lumos.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(5)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epsilon  test accuracy")
	fmt.Println("----------------------")
	for _, eps := range []float64{0.5, 1, 2, 4} {
		sys, err := lumos.NewSystem(g, g, lumos.Config{
			Task:           lumos.Supervised,
			Backbone:       lumos.GCN,
			Epsilon:        eps,
			Epochs:         50,
			MCMCIterations: 120,
			Seed:           5,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.TrainSupervised(split); err != nil {
			log.Fatal(err)
		}
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.1f  %.3f\n", eps, acc)
	}
}
