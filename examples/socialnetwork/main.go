// Social-network node classification: the paper's flagship scenario. A
// Facebook-page-like graph is distributed across devices (one vertex each);
// Lumos classifies pages into categories without any device revealing its
// feature vector or node degree, and we compare against the centralized
// upper bound and examine what tree trimming did to the workload
// distribution (paper Figs. 3 and 7 in miniature).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"lumos"
)

func main() {
	g, err := lumos.FacebookLike(0.02, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("facebook-like graph: %d pages, %d mutual likes, %d categories\n",
		g.N, g.NumEdges(), g.NumClasses)

	split, err := lumos.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(11)))
	if err != nil {
		log.Fatal(err)
	}

	// Train both backbones the paper evaluates.
	for _, bb := range []lumos.Backbone{lumos.GCN, lumos.GAT} {
		sys, err := lumos.NewSystem(g, g, lumos.Config{
			Task:           lumos.Supervised,
			Backbone:       bb,
			Epochs:         50,
			MCMCIterations: 120,
			Seed:           11,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.TrainSupervised(split); err != nil {
			log.Fatal(err)
		}
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3v test accuracy: %.3f\n", bb, acc)

		if bb == lumos.GCN {
			// Show the Fig. 7 effect: trimming removes the heavy tail.
			workloads := sys.Workloads()
			sort.Ints(workloads)
			degrees := g.Degrees()
			sort.Ints(degrees)
			p := func(s []int, q float64) int { return s[int(q*float64(len(s)-1))] }
			fmt.Printf("workload  p50/p90/max: %d/%d/%d (trimmed) vs %d/%d/%d (raw degree)\n",
				p(workloads, 0.5), p(workloads, 0.9), workloads[len(workloads)-1],
				p(degrees, 0.5), p(degrees, 0.9), degrees[len(degrees)-1])
		}
	}
}
