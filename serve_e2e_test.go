// End-to-end test of the train→publish→serve loop through the real CLIs:
// lumos-train publishes snapshot v1, lumos-serve serves it on an ephemeral
// port with -watch, HTTP queries answer, and a republish hot-swaps the
// replica to v2 without a restart.
package lumos_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lumos/internal/obs"
)

func TestServePublishServeQueryE2E(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not available: %v", err)
	}
	binDir := t.TempDir()
	trainBin := filepath.Join(binDir, "lumos-train")
	serveBin := filepath.Join(binDir, "lumos-serve")
	for _, b := range []struct{ bin, pkg string }{
		{trainBin, "./cmd/lumos-train"},
		{serveBin, "./cmd/lumos-serve"},
	} {
		if out, err := exec.Command(goBin, "build", "-o", b.bin, b.pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", b.pkg, err, out)
		}
	}

	snapPath := filepath.Join(binDir, "model.snap")
	train := func() string {
		t.Helper()
		out, err := exec.Command(trainBin,
			"-dataset", "facebook", "-scale", "0.005", "-epochs", "2", "-mcmc", "10",
			"-publish", snapPath).CombinedOutput()
		if err != nil {
			t.Fatalf("lumos-train: %v\n%s", err, out)
		}
		return string(out)
	}
	if out := train(); !strings.Contains(out, "published snapshot v1") {
		t.Fatalf("first training run did not publish v1:\n%s", out)
	}

	serve := exec.Command(serveBin,
		"-snapshot", snapPath, "-addr", "127.0.0.1:0", "-watch", "-watch-interval", "5ms")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
	}()

	// The first stdout line names the resolved ephemeral address.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading lumos-serve banner: %v", err)
	}
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("no address in banner %q", line)
	}
	base := strings.TrimSpace(line[i:])

	client := &http.Client{Timeout: 10 * time.Second}
	getJSON := func(path string, dst any) int {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
		return resp.StatusCode
	}
	postJSON := func(path, body string, dst any) int {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("POST %s: decoding: %v", path, err)
		}
		return resp.StatusCode
	}
	waitVersion := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			var h struct {
				Version uint64 `json:"version"`
			}
			if code := getJSON("/healthz", &h); code == http.StatusOK && h.Version == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("replica never served snapshot v%d", want)
	}
	waitVersion(1)

	var info struct {
		Version  uint64 `json:"version"`
		Task     string `json:"task"`
		Backbone string `json:"backbone"`
		Nodes    int    `json:"nodes"`
		Classes  int    `json:"classes"`
	}
	if code := getJSON("/v1/info", &info); code != http.StatusOK {
		t.Fatalf("info: HTTP %d", code)
	}
	if info.Version != 1 || info.Task != "supervised" || info.Nodes <= 0 || info.Classes <= 0 {
		t.Fatalf("info: %+v", info)
	}

	var cls struct {
		Version uint64 `json:"version"`
		Classes []int  `json:"classes"`
	}
	body := fmt.Sprintf(`{"nodes":[0,1,%d]}`, info.Nodes-1)
	if code := postJSON("/v1/classify", body, &cls); code != http.StatusOK {
		t.Fatalf("classify: HTTP %d", code)
	}
	if cls.Version != 1 || len(cls.Classes) != 3 {
		t.Fatalf("classify: %+v", cls)
	}
	for _, c := range cls.Classes {
		if c < 0 || c >= info.Classes {
			t.Fatalf("class %d out of range [0,%d)", c, info.Classes)
		}
	}

	var score struct {
		Version uint64    `json:"version"`
		Scores  []float64 `json:"scores"`
	}
	if code := postJSON("/v1/score", `{"pairs":[[0,1]]}`, &score); code != http.StatusOK {
		t.Fatalf("score: HTTP %d", code)
	}
	if score.Version != 1 || len(score.Scores) != 1 {
		t.Fatalf("score: %+v", score)
	}

	// Republish: the watching replica must hot-swap to v2 with no restart.
	if out := train(); !strings.Contains(out, "published snapshot v2") {
		t.Fatalf("second training run did not publish v2:\n%s", out)
	}
	waitVersion(2)
	if code := postJSON("/v1/classify", body, &cls); code != http.StatusOK || cls.Version != 2 {
		t.Fatalf("classify after swap: HTTP %d, %+v", code, cls)
	}

	// The replica's Prometheus surface: /metrics parses and reports the
	// serving state this test just drove (two snapshots, now at v2).
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d, %v", resp.StatusCode, err)
	}
	metrics, err := obs.ParsePrometheus(string(raw))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if v := metrics["lumos_serve_snapshot_version"]; v != 2 {
		t.Fatalf("lumos_serve_snapshot_version = %v, want 2", v)
	}
	if n := metrics["lumos_serve_swaps_total"]; n != 2 {
		t.Fatalf("lumos_serve_swaps_total = %v, want 2", n)
	}
	if c := metrics[`lumos_serve_queries_total{endpoint="classify"}`]; c < 2 {
		t.Fatalf(`lumos_serve_queries_total{endpoint="classify"} = %v, want >= 2`, c)
	}
}
