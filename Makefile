# Developer entry points. `make ci` is the gate PRs must keep green.

.PHONY: build test race bench ci

build:
	go build ./...

test:
	go test ./...

# Race hygiene for the device-parallel training engine: the worker pool,
# shard views, and gradient reduction all run under the race detector.
race:
	go test -race -short ./internal/... ./...

# Epoch benchmarks: BenchmarkEpochParallel reports its speedup over the
# serial baseline as a custom metric; -benchmem tracks the tape engine's
# B/op and allocs/op (the allocation-regression budget lives in
# internal/core/alloc_test.go and runs under `make ci`).
bench:
	go test -run xxx -bench 'BenchmarkEpoch' -benchtime 10x -benchmem .

ci:
	./scripts/ci.sh
