# Developer entry points. `make ci` is the gate PRs must keep green.

.PHONY: build test race bench ci

build:
	go build ./...

test:
	go test ./...

# Race hygiene for the device-parallel training engine: the worker pool,
# shard views, and gradient reduction all run under the race detector.
race:
	go test -race -short ./internal/... ./...

# Epoch benchmarks: BenchmarkEpochParallel reports its speedup over the
# serial baseline as a custom metric.
bench:
	go test -run xxx -bench 'BenchmarkEpoch' -benchtime 10x .

ci:
	./scripts/ci.sh
