# Developer entry points. `make ci` is the gate PRs must keep green.

.PHONY: build test race bench bench-serve ci

build:
	go build ./...

test:
	go test ./...

# Race hygiene for the device-parallel training engine: the worker pool,
# shard views, and gradient reduction all run under the race detector.
race:
	go test -race -short ./internal/... ./...

# Epoch + kernel benchmarks: BenchmarkEpochParallel reports its speedup over
# the serial baseline as a custom metric; -benchmem tracks the tape engine's
# B/op and allocs/op (the allocation-regression budget lives in
# internal/core/alloc_test.go and runs under `make ci`). The stream is piped
# through scripts/benchjson, which echoes it and records the results with
# run metadata in BENCH_epoch.json (same convention as BENCH_serve.json).
bench:
	go test -run xxx -benchtime 20x -benchmem \
		-bench 'BenchmarkEpoch|BenchmarkForestEpoch|BenchmarkMatMul|BenchmarkCSRAggregate' . \
		| go run ./scripts/benchjson -out BENCH_epoch.json

# Serving benchmark: train, publish a snapshot, replay zipf query traffic
# against a live replica, hot-swap to a republished model under load, and
# record p50/p99 latency + QPS in BENCH_serve.json.
bench-serve:
	go run ./cmd/lumos-bench -serve -fbscale 0.02 -epochs 8 -mcmc 30 \
		-serve-queries 4000 -serve-conc 8 -serve-out BENCH_serve.json

ci:
	./scripts/ci.sh
