// Smoke tests for every binary entry point: each cmd/* and examples/* main
// package must build, and the fast demos must run end to end. This is the
// safety net that keeps the documented entry points from silently rotting —
// they carry no test files of their own.
package lumos_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// entryPoints lists every main package with the arguments used to exercise
// it at tiny scale. run=false means build-only (the binary needs large
// inputs or long training to say anything useful).
var entryPoints = []struct {
	pkg  string
	name string // optional label when one package has several rows
	run  bool
	args []string
}{
	// lumos-bench exercises the -notapereuse escape hatch over the (cheap)
	// workload-balance figure plus one short training run via fig3's
	// centralized-vs-lumos comparison at minimal scale.
	{pkg: "./cmd/lumos-bench", run: true, args: []string{
		"-exp", "fig3", "-fbscale", "0.004", "-epochs", "2", "-mcmc", "5",
		"-backbones", "gcn", "-datasets", "facebook", "-notapereuse"}},
	{pkg: "./cmd/lumos-datagen", run: true, args: []string{"-dataset", "facebook", "-scale", "0.005"}},
	// -traces emits a sample fleet trace (stdout CSV here; the file-writing
	// path seeds the lumos-sim-trace row below).
	{pkg: "./cmd/lumos-datagen", name: "lumos-datagen-traces", run: true, args: []string{
		"-traces", "-devices", "8", "-seed", "5"}},
	{pkg: "./cmd/lumos-sim", run: true, args: []string{
		"-dataset", "facebook", "-scale", "0.005", "-rounds", "3", "-mcmc", "10", "-sched", "both"}},
	// The session API made the simulator task-agnostic; this row keeps the
	// link-prediction path (churn + async, AUC timeline) from rotting.
	{pkg: "./cmd/lumos-sim", name: "lumos-sim-unsupervised", run: true, args: []string{
		"-task", "unsupervised", "-dataset", "facebook", "-scale", "0.005",
		"-rounds", "3", "-mcmc", "10", "-churn", "0.2", "-sched", "async"}},
	// Trace-driven fleet with aggregator contention and round-driven model
	// selection: consumes the fleet trace lumos-datagen writes before the
	// rows run ({TRACE} is substituted), closing the write→load→simulate
	// loop without external downloads.
	{pkg: "./cmd/lumos-sim", name: "lumos-sim-trace", run: true, args: []string{
		"-dataset", "facebook", "-scale", "0.005", "-rounds", "3", "-mcmc", "10",
		"-fleet", "trace:{TRACE}", "-agg-capacity", "2e6", "-select"}},
	// Decentralized gossip over a ring contact graph, with the energy-aware
	// participation policy biting a zipf fleet's straggler tail: keeps the
	// -topology/-sched gossip/-participation-policy surface from rotting.
	{pkg: "./cmd/lumos-sim", name: "lumos-sim-gossip", run: true, args: []string{
		"-dataset", "facebook", "-scale", "0.005", "-rounds", "3", "-mcmc", "10",
		"-sched", "gossip", "-topology", "ring:4", "-fleet", "zipf",
		"-participation-policy", "energy"}},
	// Telemetry surface: -trace writes Chrome trace-event JSON ({TMP} is the
	// shared temp dir) and -metrics dumps Prometheus text after the
	// timeline; the row keeps both observability flags from rotting.
	{pkg: "./cmd/lumos-sim", name: "lumos-sim-telemetry", run: true, args: []string{
		"-dataset", "facebook", "-scale", "0.005", "-rounds", "3", "-mcmc", "10",
		"-trace", "{TMP}/sim.trace.json", "-metrics"}},
	// Run recording under -sched both: -run-out and -metrics-out must land in
	// per-mode suffixed paths (recboth.sync/, recboth.async/, ...prom) just
	// like -trace does.
	{pkg: "./cmd/lumos-sim", name: "lumos-sim-runrecord", run: true, args: []string{
		"-dataset", "facebook", "-scale", "0.005", "-rounds", "3", "-mcmc", "10",
		"-sched", "both", "-run-out", "{TMP}/recboth", "-metrics-out", "{TMP}/simboth.prom"}},
	// The same recording surface on the epoch trainer.
	{pkg: "./cmd/lumos-train", name: "lumos-train-runrecord", run: true, args: []string{
		"-dataset", "facebook", "-scale", "0.005", "-epochs", "2", "-mcmc", "10",
		"-run-out", "{TMP}/rectrain", "-metrics-out", "{TMP}/train.prom"}},
	// lumos-report consumes the record and trace the pre-parallel seeding run
	// writes: render it, self-diff it (must exit 0 — the A/B gate identity),
	// and walk the trace's critical paths.
	{pkg: "./cmd/lumos-report", name: "lumos-report-run", run: true, args: []string{
		"run", "{TMP}/seedrec"}},
	{pkg: "./cmd/lumos-report", name: "lumos-report-diff", run: true, args: []string{
		"diff", "{TMP}/seedrec", "{TMP}/seedrec"}},
	{pkg: "./cmd/lumos-report", name: "lumos-report-trace", run: true, args: []string{
		"trace", "{TMP}/seedrec.trace.json", "-critical-path", "-top", "5"}},
	// lumos-train runs at tiny scale with the fresh-tape-per-epoch escape
	// hatch so the -notapereuse path cannot rot.
	{pkg: "./cmd/lumos-train", run: true, args: []string{
		"-dataset", "facebook", "-scale", "0.005", "-epochs", "2", "-mcmc", "10", "-notapereuse"}},
	// The scalar-reference kernel path stays runnable from the CLI: same
	// tiny run forced onto -kernels reference (results identical to the
	// blocked default; the equivalence gates in scripts/ci.sh prove it).
	{pkg: "./cmd/lumos-train", name: "lumos-train-kernels-reference", run: true, args: []string{
		"-dataset", "facebook", "-scale", "0.005", "-epochs", "2", "-mcmc", "10",
		"-kernels", "reference"}},
	{pkg: "./examples/churnstudy", run: true, args: []string{
		"-n", "60", "-m", "240", "-rounds", "6", "-mcmc", "10"}},
	// energystudy enforces its energy-monotone-in-participation invariant
	// (exits non-zero on regression), so this row is a CI gate too.
	{pkg: "./examples/energystudy", run: true, args: []string{
		"-n", "60", "-m", "240", "-rounds", "4", "-mcmc", "10"}},
	// topologystudy exits non-zero unless every gossip topology lands within
	// 5% of the star-synchronous final at equal rounds, so this row is a CI
	// gate on decentralized convergence.
	{pkg: "./examples/topologystudy", run: true, args: []string{}},
	{pkg: "./examples/quickstart", run: true, args: []string{"-n", "60", "-m", "240", "-epochs", "3", "-mcmc", "10"}},
	// servequickstart runs the whole train→publish→serve→query loop and
	// exits non-zero if any served answer differs from the trainer's own
	// evaluation, so this row is a CI gate on serving bit-identity.
	{pkg: "./examples/servequickstart", run: true, args: []string{
		"-n", "60", "-m", "240", "-epochs", "3", "-mcmc", "10"}},
	{pkg: "./examples/securecompare", run: true},
	// lumos-serve needs a published snapshot and an open port; the
	// serve_e2e_test drives it for real, so build-only here.
	{pkg: "./cmd/lumos-serve", run: false},
	{pkg: "./examples/linkprediction", run: false},
	{pkg: "./examples/privacysweep", run: false},
	{pkg: "./examples/socialnetwork", run: false},
}

// TestEntryPointsBuildAndRun builds every binary and executes the cheap
// ones. It stays short-mode friendly: the tiny-scale runs finish in well
// under a second each, and builds share the normal Go build cache.
func TestEntryPointsBuildAndRun(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not available: %v", err)
	}
	binDir := t.TempDir()

	// Seed the trace-driven rows: lumos-datagen writes the sample fleet
	// trace that the lumos-sim-trace row loads, so the smoke suite
	// exercises the full write→load→simulate pipeline with no external
	// inputs. Runs before the parallel rows; "{TRACE}" in args is
	// substituted with the produced path.
	tracePath := filepath.Join(binDir, "fleet.csv")
	seedGen := filepath.Join(binDir, "trace-seed-datagen")
	if out, err := exec.Command(goBin, "build", "-o", seedGen, "./cmd/lumos-datagen").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/lumos-datagen: %v\n%s", err, out)
	}
	if out, err := exec.Command(seedGen, "-traces", "-devices", "24", "-seed", "3", "-out", tracePath).CombinedOutput(); err != nil {
		t.Fatalf("lumos-datagen -traces: %v\n%s", err, out)
	}

	// Seed the lumos-report rows: one tiny recorded-and-traced sim run whose
	// artifacts the report rows render, self-diff, and analyze.
	seedSim := filepath.Join(binDir, "report-seed-sim")
	if out, err := exec.Command(goBin, "build", "-o", seedSim, "./cmd/lumos-sim").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/lumos-sim: %v\n%s", err, out)
	}
	if out, err := exec.Command(seedSim,
		"-dataset", "facebook", "-scale", "0.005", "-rounds", "3", "-mcmc", "10",
		"-fleet", "zipf", "-run-out", filepath.Join(binDir, "seedrec"),
		"-trace", filepath.Join(binDir, "seedrec.trace.json")).CombinedOutput(); err != nil {
		t.Fatalf("lumos-sim -run-out seed: %v\n%s", err, out)
	}

	for _, ep := range entryPoints {
		ep := ep
		name := ep.name
		if name == "" {
			name = strings.TrimPrefix(ep.pkg, "./")
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, filepath.Base(name))
			build := exec.Command(goBin, "build", "-o", bin, ep.pkg)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build %s: %v\n%s", ep.pkg, err, out)
			}
			if !ep.run {
				return
			}
			args := make([]string, len(ep.args))
			for i, a := range ep.args {
				a = strings.ReplaceAll(a, "{TRACE}", tracePath)
				args[i] = strings.ReplaceAll(a, "{TMP}", binDir)
			}
			cmd := exec.Command(bin, args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %s: %v\n%s", ep.pkg, strings.Join(args, " "), err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", ep.pkg)
			}
		})
	}
}
