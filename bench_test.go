// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section plus micro-benchmarks for the heavy substrates. Each
// figure benchmark runs the corresponding experiment end to end at a
// reduced scale and reports the headline quantities of that figure as
// custom benchmark metrics (accuracy ×1000, AUC ×1000, savings in %), so
// `go test -bench=.` regenerates the paper's artifacts in one pass.
//
// Paper-scale runs are available through cmd/lumos-bench with larger
// -fbscale/-lfscale/-epochs.
package lumos_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"lumos"
	"lumos/internal/autodiff"
	"lumos/internal/balance"
	"lumos/internal/eval"
	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/ldp"
	"lumos/internal/nn"
	"lumos/internal/smc"
	"lumos/internal/tensor"
	"lumos/internal/tree"
)

// benchOpts are the reduced-scale experiment settings used by the figure
// benchmarks (a few hundred devices, short training).
func benchOpts() eval.Options {
	return eval.Options{
		FacebookScale:  0.012,
		LastFMScale:    0.04,
		Epochs:         12,
		MCMCIterations: 60,
		Backbones:      []nn.Backbone{nn.GCN},
		Datasets:       []string{eval.DatasetFacebook},
		Seed:           42,
	}
}

// BenchmarkFig3SupervisedAccuracy regenerates Fig. 3 (label classification
// accuracy: Lumos vs Centralized vs LPGNN vs Naive FedGNN).
func BenchmarkFig3SupervisedAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := eval.RunFig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		r := rs[0]
		b.ReportMetric(1000*r.Lumos, "lumos_acc‰")
		b.ReportMetric(1000*r.Centralized, "central_acc‰")
		b.ReportMetric(1000*r.LPGNN, "lpgnn_acc‰")
		b.ReportMetric(1000*r.NaiveFed, "naive_acc‰")
	}
}

// BenchmarkFig4LinkPredictionAUC regenerates Fig. 4 (ROC-AUC: Lumos vs
// Centralized vs Naive FedGNN).
func BenchmarkFig4LinkPredictionAUC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := eval.RunFig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		r := rs[0]
		b.ReportMetric(1000*r.Lumos, "lumos_auc‰")
		b.ReportMetric(1000*r.Centralized, "central_auc‰")
		b.ReportMetric(1000*r.NaiveFed, "naive_auc‰")
	}
}

// BenchmarkFig5EpsilonSensitivity regenerates Fig. 5 (accuracy/AUC across
// ε ∈ {0.5, 1, 2, 4}); reports the two curve endpoints.
func BenchmarkFig5EpsilonSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := eval.RunFig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := rs[0], rs[len(rs)-1]
		b.ReportMetric(1000*lo.Accuracy, "acc_eps0.5‰")
		b.ReportMetric(1000*hi.Accuracy, "acc_eps4‰")
		b.ReportMetric(1000*lo.AUC, "auc_eps0.5‰")
		b.ReportMetric(1000*hi.AUC, "auc_eps4‰")
	}
}

// BenchmarkFig6Ablation regenerates Fig. 6 (Lumos vs w.o. virtual nodes vs
// w.o. tree trimming).
func BenchmarkFig6Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := eval.RunFig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		r := rs[0]
		b.ReportMetric(1000*r.Acc, "acc‰")
		b.ReportMetric(1000*r.AccNoVN, "acc_woVN‰")
		b.ReportMetric(1000*r.AccNoTT, "acc_woTT‰")
	}
}

// BenchmarkFig7WorkloadBalance regenerates Fig. 7 (workload CDF with and
// without tree trimming); reports the tail statistics.
func BenchmarkFig7WorkloadBalance(b *testing.B) {
	opts := benchOpts()
	opts.FacebookScale = 0.03 // balancing alone is cheap; use more devices
	for i := 0; i < b.N; i++ {
		rs, err := eval.RunFig7(opts)
		if err != nil {
			b.Fatal(err)
		}
		r := rs[0]
		b.ReportMetric(float64(r.TrimmedMax), "max_workload")
		b.ReportMetric(float64(r.RawMax), "max_degree")
		b.ReportMetric(float64(r.TrimmedP99), "p99_workload")
		b.ReportMetric(float64(r.RawP99), "p99_degree")
	}
}

// BenchmarkFig8SystemCost regenerates Fig. 8 (communication rounds and
// epoch time with vs without tree trimming).
func BenchmarkFig8SystemCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := eval.RunFig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		sup := rs[0]
		b.ReportMetric(sup.CommTrimmed, "comm_rounds_TT")
		b.ReportMetric(sup.CommRaw, "comm_rounds_woTT")
		b.ReportMetric(100*sup.CommSavings, "comm_saved_%")
		b.ReportMetric(100*sup.TimeSavings, "time_saved_%")
	}
}

// BenchmarkHeadlineClaims regenerates the §I claims (accuracy increase vs
// the federated baseline; communication and training-time reductions).
func BenchmarkHeadlineClaims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, _, _, err := eval.RunHeadline(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*h.AccuracyIncrease, "acc_increase_%")
		b.ReportMetric(100*h.CommReduction, "comm_reduction_%")
		b.ReportMetric(100*h.TimeReduction, "time_reduction_%")
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks
// ---------------------------------------------------------------------------

// BenchmarkSecureCompare measures one OT-based 32-bit secure comparison.
func BenchmarkSecureCompare(b *testing.B) {
	stats := &smc.Stats{}
	p := smc.NewProtocol(32, stats)
	alice, bob := smc.NewParty(1), smc.NewParty(2)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Less(alice, uint64(rng.Intn(1<<20)), bob, uint64(rng.Intn(1<<20)))
	}
}

// BenchmarkGreedyInit measures Alg. 1 over a mid-sized power-law graph.
func BenchmarkGreedyInit(b *testing.B) {
	g, err := graph.FacebookLike(0.03, 1)
	if err != nil {
		b.Fatal(err)
	}
	devices := fed.NewDevices(g, 1)
	server := fed.NewServer(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := balance.Balance(g, devices, server, balance.Config{Iterations: 0, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCMCBalance measures the full tree-trimming pipeline (greedy +
// 100 MCMC iterations, plaintext comparisons).
func BenchmarkMCMCBalance(b *testing.B) {
	g, err := graph.FacebookLike(0.03, 1)
	if err != nil {
		b.Fatal(err)
	}
	devices := fed.NewDevices(g, 1)
	server := fed.NewServer(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := balance.Balance(g, devices, server, balance.Config{Iterations: 100, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.MaxWorkload()), "max_workload")
		}
	}
}

// BenchmarkMCMCBalanceSecure is the same pipeline with real OT-based
// comparisons, quantifying the cryptographic overhead.
func BenchmarkMCMCBalanceSecure(b *testing.B) {
	g, err := graph.FacebookLike(0.015, 1)
	if err != nil {
		b.Fatal(err)
	}
	devices := fed.NewDevices(g, 1)
	server := fed.NewServer(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := balance.Balance(g, devices, server, balance.Config{Iterations: 50, Secure: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeConstruction measures building every device's tree.
func BenchmarkTreeConstruction(b *testing.B) {
	g, err := graph.FacebookLike(0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N; v++ {
			tree.Build(v, g.Adj[v])
		}
	}
}

// BenchmarkLDPFeatureEncode measures one device's embedding initialization
// (encode + per-recipient recovery).
func BenchmarkLDPFeatureEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	enc := ldp.FeatureEncoder{Epsilon: 2, A: 0, B: 1, Workload: 12, Dim: 512}
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := enc.Encode(x, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := enc.Recover(parts[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestEpochGCN measures one supervised forward+backward+step
// over the assembled forest (the per-epoch cost of the Lumos trainer).
func BenchmarkForestEpochGCN(b *testing.B) {
	benchForestEpoch(b, lumos.GCN)
}

// BenchmarkForestEpochGAT is the GAT counterpart.
func BenchmarkForestEpochGAT(b *testing.B) {
	benchForestEpoch(b, lumos.GAT)
}

func benchForestEpoch(b *testing.B, bb lumos.Backbone) {
	g, err := graph.FacebookLike(0.012, 1)
	if err != nil {
		b.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := lumos.NewSystem(g, g, lumos.Config{
		Task: lumos.Supervised, Backbone: bb, Epochs: 1, MCMCIterations: 30, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TrainSupervised(split); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out
// ---------------------------------------------------------------------------

// BenchmarkAblationGreedyVsMCMC quantifies what the MCMC phase adds on top
// of the greedy initialization (max-workload objective, Fig. 7's driver).
func BenchmarkAblationGreedyVsMCMC(b *testing.B) {
	g, err := graph.FacebookLike(0.03, 1)
	if err != nil {
		b.Fatal(err)
	}
	devices := fed.NewDevices(g, 1)
	server := fed.NewServer(1)
	for i := 0; i < b.N; i++ {
		greedy, err := balance.Balance(g, devices, server, balance.Config{Iterations: 0, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		mcmc, err := balance.Balance(g, devices, server, balance.Config{Iterations: 200, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.MaxDegree()), "max_untrimmed")
		b.ReportMetric(float64(greedy.MaxWorkload()), "max_greedy")
		b.ReportMetric(float64(mcmc.MaxWorkload()), "max_mcmc")
	}
}

// BenchmarkAblationRowNorm quantifies the leaf-feature row normalization
// (DESIGN.md deviation 4): supervised accuracy with and without it.
func BenchmarkAblationRowNorm(b *testing.B) {
	g, err := graph.FacebookLike(0.012, 1)
	if err != nil {
		b.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	run := func(disable bool) float64 {
		sys, err := lumos.NewSystem(g, g, lumos.Config{
			Task: lumos.Supervised, Backbone: lumos.GCN,
			Epochs: 15, MCMCIterations: 40, DisableRowNorm: disable, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.TrainSupervised(split); err != nil {
			b.Fatal(err)
		}
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		if err != nil {
			b.Fatal(err)
		}
		return acc
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(1000*run(false), "acc_rownorm‰")
		b.ReportMetric(1000*run(true), "acc_raw‰")
	}
}

// BenchmarkEpochSerial measures one supervised training epoch through the
// device-parallel engine pinned to a single worker — the serial baseline of
// the Workers knob. The split carries no validation set so the measurement
// is the epoch itself, not model selection.
func BenchmarkEpochSerial(b *testing.B) {
	sys, split := newEpochBenchSystem(b, 1)
	// One untimed warm-up epoch so the heap is as warm as in the parallel
	// benchmark's baseline phase.
	if _, err := sys.TrainSupervised(split); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TrainSupervised(split); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochParallel is the regression guard for the engine: the same
// epoch with a full worker pool, reporting the speedup over the serial
// baseline as a custom metric. Determinism makes the comparison exact — the
// two configurations run bit-identical math, only scheduled differently.
func BenchmarkEpochParallel(b *testing.B) {
	workers := runtime.NumCPU()
	serial, serialSplit := newEpochBenchSystem(b, 1)
	serialPerEpoch := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := serial.TrainSupervised(serialSplit); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(start); d < serialPerEpoch {
			serialPerEpoch = d
		}
	}
	sys, split := newEpochBenchSystem(b, workers)
	// Same untimed warm-up the serial side gets, so neither configuration
	// pays first-epoch allocation costs inside the timed region.
	if _, err := sys.TrainSupervised(split); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TrainSupervised(split); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	parallelPerEpoch := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(serialPerEpoch)/float64(parallelPerEpoch), "speedup×")
}

// newEpochBenchSystem builds the shared workload of the epoch benchmarks: a
// mid-sized power-law graph, one-epoch supervised training, no validation
// split (so TrainSupervised measures exactly one engine epoch per call).
func newEpochBenchSystem(b *testing.B, workers int) (*lumos.System, *graph.NodeSplit) {
	g, err := graph.FacebookLike(0.03, 1)
	if err != nil {
		b.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.6, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := lumos.NewSystem(g, g, lumos.Config{
		Task: lumos.Supervised, Backbone: lumos.GCN, Epochs: 1,
		MCMCIterations: 30, Workers: workers, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys, split
}

// BenchmarkMatMul measures the dense kernel at a typical layer size.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Uniform(4096, 128, -1, 1, rng)
	w := tensor.Uniform(128, 16, -1, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, w)
	}
}

// BenchmarkMatMulInto compares the register-blocked and scalar-reference
// matmul kernels at square sizes spanning L1-resident to cache-busting.
// Both paths produce bit-identical output (see internal/tensor/kernels_test.go);
// the delta here is pure kernel speed.
func BenchmarkMatMulInto(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		rng := rand.New(rand.NewSource(7))
		x := tensor.Uniform(n, n, -1, 1, rng)
		w := tensor.Uniform(n, n, -1, 1, rng)
		out := tensor.New(n, n)
		for _, path := range []lumos.KernelPath{lumos.KernelsBlocked, lumos.KernelsReference} {
			b.Run(fmt.Sprintf("%dx%d/%v", n, n, path), func(b *testing.B) {
				lumos.SetKernelPath(path)
				defer lumos.SetKernelPath(lumos.KernelsBlocked)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.MatMulInto(out, x, w)
				}
				flops := 2 * float64(n) * float64(n) * float64(n)
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			})
		}
	}
}

// BenchmarkMatMulTNAddInto isolates the Aᵀ·B gradient kernel (the weight-
// gradient accumulation of every dense layer), comparing the blocked 4-row
// rank-1 update with its hoisted sparsity check against the scalar reference
// with a per-element skip.
func BenchmarkMatMulTNAddInto(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := tensor.Uniform(4096, 128, -1, 1, rng)
	g := tensor.Uniform(4096, 16, -1, 1, rng)
	dst := tensor.New(128, 16)
	for _, path := range []lumos.KernelPath{lumos.KernelsBlocked, lumos.KernelsReference} {
		b.Run(path.String(), func(b *testing.B) {
			lumos.SetKernelPath(path)
			defer lumos.SetKernelPath(lumos.KernelsBlocked)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulTNAddInto(dst, a, g)
			}
		})
	}
}

// BenchmarkCSRAggregate compares the fused CSR neighborhood aggregation
// (one op: forward + backward) against the unfused Gather→ScaleRows→
// SegmentSum chain it replaced, on a power-law graph shaped like the
// training workload.
func BenchmarkCSRAggregate(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g, err := graph.FacebookLike(0.03, 1)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]int, 0, 2*len(g.Edges))
	dst := make([]int, 0, 2*len(g.Edges))
	for _, e := range g.Edges {
		src = append(src, e[0], e[1])
		dst = append(dst, e[1], e[0])
	}
	coef := make([]float64, len(src))
	for i := range coef {
		coef[i] = rng.Float64()
	}
	csr := tensor.NewCSR(g.N, src, dst)
	h := tensor.Uniform(g.N, 64, -1, 1, rng)
	seed := tensor.Uniform(g.N, 64, -1, 1, rng)

	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := autodiff.Var(h.Clone())
			out := autodiff.CSRAggregate(x, csr, coef)
			out.BackwardWithGradient(seed)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := autodiff.Var(h.Clone())
			out := autodiff.SegmentSum(autodiff.ScaleRows(autodiff.Gather(x, src), coef), dst, g.N)
			out.BackwardWithGradient(seed)
		}
	})
}

// BenchmarkBackwardGCNLayer measures autodiff through one graph conv.
func BenchmarkBackwardGCNLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, err := graph.FacebookLike(0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	conv := nn.NewConvGraph(g.N, g.Edges)
	layer := nn.NewGCNConv("l", 64, 16, rng)
	x := autodiff.Const(tensor.Uniform(g.N, 64, -1, 1, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := layer.Forward(conv, x)
		loss := autodiff.SumSquares(out)
		nn.ZeroGrad(layer)
		loss.Backward()
	}
}
