// Package lumos is the public API of this repository: a from-scratch Go
// implementation of "Lumos: Heterogeneity-aware Federated Graph Learning
// over Decentralized Devices" (Pan, Zhu, Chu — ICDE 2023), together with
// every substrate it needs (dense tensors with reverse-mode autodiff, GCN
// and GAT layers, an LDP toolkit, a simulated secure two-party comparison
// protocol, a federated device/network simulator) and the paper's three
// comparison systems.
//
// The package re-exports the library's main entry points; the
// implementation lives under internal/. Quick start:
//
//	g, _ := lumos.FacebookLike(0.02, 1)
//	split, _ := lumos.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(1)))
//	sys, _ := lumos.NewSystem(g, g, lumos.Config{Task: lumos.Supervised, Backbone: lumos.GCN, Epochs: 60})
//	stats, _ := sys.TrainSupervised(split)
//	acc, _ := sys.EvaluateAccuracy(split.IsTest)
//
// # Objectives and training sessions
//
// The protocol is task-agnostic: the same tree-decomposed forward/backward
// and federated aggregation serve node classification and link prediction.
// The API mirrors that. An Objective encapsulates everything task-specific
// — the loss built from the pooled embeddings (cross-entropy over a
// NodeSplit, or negative-sampled logistic loss over an EdgeSplit), the
// per-epoch RNG-driven sampling behind it, the validation/test metric, and
// the task's wire-traffic accounting. A Session binds one objective to an
// assembled System and drives training either by full-participation epochs
// (Step) or round-by-round under a participation mask, gradient delays, and
// cache TTL (StepRound with a RoundPlan):
//
//	obj := lumos.NewUnsupervisedObjective(edges)
//	sess, _ := sys.NewSession(obj)
//	for epoch := 0; epoch < 60; epoch++ {
//		sess.Step()
//	}
//	sess.FinishRounds()
//	stats := sess.Stats()
//
// TrainSupervised and TrainUnsupervised are thin loops over a session, and
// every other runner — the discrete-event simulator, the eval timelines,
// the CLIs' -task flags (ParseTask) — drives sessions too, so any new
// surface works for every objective without per-task plumbing.
//
// # Device-parallel training
//
// Training runs on a device-parallel engine: the forest of per-device trees
// is partitioned into Config.Shards contiguous shards (default: min(N, 32),
// balanced by tree size), and each epoch's local forward/backward passes
// execute on a worker pool of Config.Workers goroutines (default: one per
// CPU). Shard gradients are combined by a deterministic tree-ordered
// reduction, and every shard owns a private RNG stream split from
// Config.Seed, so the engine guarantees: with a fixed seed, losses and
// trained weights are bit-identical for every Workers value. Workers is
// purely a wall-clock knob.
//
// # Tape-based autodiff
//
// The differentiation substrate underneath the engine is a tape
// (internal/autodiff.Tape): each shard records its epoch graph onto a
// private tape in construction order, so backward is a reverse linear sweep
// with no topological sort, and Tape.Reset recycles every node, output,
// gradient, and scratch buffer through a shape-keyed free-list instead of
// dropping them to the garbage collector. Because training runs thousands
// of structurally identical epochs over a fixed forest, steady-state epochs
// are essentially allocation-free: the serial epoch benchmark dropped from
// ~5.8k allocations and ~200 MB allocated per epoch to ~114 allocations and
// ~29 KB, and per-epoch wall time fell ~1.6×. Parameter gradients recycle
// their buffers in place across ZeroGrad/backward cycles on every path,
// taped or not. Config.NoTapeReuse (CLI -notapereuse) rebuilds the tapes
// from scratch each epoch — bit-identical results, useful when debugging
// suspected buffer-reuse issues — and an allocation-budget test in CI keeps
// the steady state honest.
//
// # Hardware-fast kernels
//
// With allocations gone, epoch cost is pure FLOPs, so the tensor kernels
// under the tape are register-blocked for cache locality and
// instruction-level parallelism: matmuls pack 256×8 B-panels and run 8
// independent accumulator chains per output row, the backward (NT/TN)
// kernels unroll across 4 rows, and the GCN/GAT
// Gather→ScaleRows/MulRowsByCol→SegmentSum neighborhood-aggregation chains
// (plus the engine's leaf pooling) fuse into single CSR-driven ops that
// never materialize per-edge message matrices — forward or backward. None
// of this changes any floating-point summation order: every output entry
// still sums its reduction index ascending, so golden loss traces are
// bit-identical to the scalar loops. On the 1-CPU CI box the fused+blocked
// path cut the serial GCN epoch ~70.6 → ~44 ms (≈1.6×, see
// BENCH_epoch.json for the committed numbers) and the fused aggregation
// runs ~5× faster than the unfused chain with ~16× less garbage, with
// the ≤250 allocs/epoch budget unchanged.
// Config.Kernels (CLI -kernels on lumos-train/lumos-bench) selects
// "blocked" (default) or "reference" — the original scalar loops, kept as
// a cross-check target for the kernel-equivalence property tests; both
// paths produce identical bits, so the flag is purely a wall-clock /
// debugging knob. SetKernelPath applies the choice process-wide.
//
// Config.Sched selects the round schedule. SchedSync (default) is the
// paper's lockstep protocol: every epoch aggregates all gradients and waits
// for the straggler. SchedAsync simulates staleness-bounded asynchronous
// aggregation: the heaviest (straggler) shards apply their gradients up to
// Config.Staleness epochs late, and the system-cost model amortizes their
// compute accordingly, so TrainStats.SimEpochTime reflects the freed
// barrier. Async schedules derive deterministically from the workload
// ranking — reruns reproduce bit-for-bit there too.
//
// # Scenario simulation (internal/sim)
//
// Beyond the analytic cost model, internal/sim provides a deterministic
// discrete-event device-network simulator: a virtual clock orders
// compute-done, message-arrival, and device join/leave events; per-device
// profiles drawn from the fleet layer (see "Device fleets") scale the cost
// model's compute, bandwidth, latency, and power terms; and a SimScenario
// layers churn, per-round partial participation, and staleness-bounded
// catch-up on top. Each committed round drives a real training Session
// through Session.StepRound — absent devices' shards are skipped (their
// vertices serve cached embeddings until the cache ages out) and late
// updates apply stale through the engine's delayed-gradient queue — so the
// simulated timeline carries true losses and evaluation metrics alongside
// simulated wall-clock, wire bytes, and fleet energy. The simulator is
// task-agnostic: Simulator.Run takes any Objective, so
// churn/partial-participation/async scenarios work for link prediction
// exactly as for node classification, and SimScenario.ModelSelection adds
// round-driven model selection (RoundPlan.Evaluate keeps the best
// validation snapshot). The same seed and scenario reproduce the identical
// timeline for every Workers value. Entry points: NewSimulator /
// SimScenario here, the lumos-sim CLI (-task supervised|unsupervised), the
// examples/churnstudy and examples/energystudy walkthroughs, and the
// RunSimTimeline experiment runner.
//
// # Topologies and gossip (internal/topo)
//
// SchedGossip drops the aggregator entirely: training runs decentralized
// over a peer contact graph (internal/topo). Each device keeps a private
// model replica; every round the participants run their local step, push
// model deltas to their topology neighbors over per-link queues paced by
// the bottleneck of the two endpoints' bandwidths
// (CostModel.LinkBytesPerSecond, processor-sharing by default —
// SimScenario.LinkDiscipline selects "ps" or "fifo"), and average with
// whichever neighbors participated this round under Metropolis–Hastings
// weights w(d,j) = 1/(1+max(deg d, deg j)). The weight matrix is symmetric
// and doubly stochastic from local degree knowledge alone, so on the
// complete topology with full participation it degenerates to the uniform
// 1/n average — the bridge back to the star aggregator that the
// gossip-vs-star equivalence test pins. Replica mixing averages Adam's
// moments alongside the weights (MixReplicas / nn.MixOptStates): without
// moment averaging, per-device sign-normalized Adam steps cancel in the
// consensus mean and decentralized training stalls.
//
// Topologies come from deterministic seeded generators — TopologyRing,
// TopologyKRegular, TopologyBarabasiAlbert, TopologyComplete — or from a
// contact-graph file (LoadTopology; CSV "u,v" edge rows or a JSON edge
// list, mirroring fleet.Trace's on-disk conventions, with a lossless
// round-trip). ParseTopologySpec parses the CLI spec grammar
// ("ring:<k>", "k-regular:<k>", "ba:<m>", "complete", "file:<path>") that
// lumos-sim -topology and the eval timelines accept. Gossip rounds carry
// O(degree) uploads per device, so radio energy grows with the contact
// graph's edge count — examples/topologystudy plays the same fleet over a
// ring, a k-regular graph, and a scale-free graph and checks every
// topology lands within 5% of the star-synchronous final at equal rounds.
// The gossip timeline obeys the same determinism contract as everything
// else: frozen reduction orders end to end, so same-seed runs are
// bit-identical for every Workers value.
//
// Independent of the schedule, SimScenario.Policy selects how the
// simulator narrows the available set before each round's participation
// sample: "uniform" (default) admits everyone, "energy"
// (lumos-sim -participation-policy energy) admits only devices whose
// projected per-round energy — compute at profile power plus radio bytes,
// O(degree) under gossip — fits the per-round budget
// (SimScenario.EnergyBudget, default: the fleet mean, so the policy always
// bites the straggler tail), keeping the cheapest device when the budget
// would empty a round.
//
// # Device fleets (internal/fleet)
//
// The device population behind every simulation comes from internal/fleet,
// the single source of device-population truth. A SimProfile carries one
// device's capacity relative to the cost model's nominal device — compute,
// bandwidth, latency, and power multipliers plus an optional periodic
// availability cycle — and a FleetSource turns a population description
// into n profiles, deterministically from a seed. Synthetic fleets cover
// uniform (nominal everything), zipf (heavy straggler tail), and periodic
// (diurnal on/off cycles); the trace fleet loads per-device records from a
// FedScale-style CSV or JSON file instead (LoadTrace, lumos-sim -fleet
// trace:<path>), sampling deterministically when the simulated fleet is
// larger than the trace. Naming the trace fleet without a trace source is
// an error — there is no silent synthetic fallback. SampleTrace synthesizes
// a representative mixed population (lumos-datagen -traces writes it to
// disk), so tests and smoke suites never depend on external downloads.
//
// Two deployment realities ride on the fleet layer. Aggregator contention:
// with CostModel.AggBytesPerSecond set (lumos-sim -agg-capacity), device
// uploads and post-commit model broadcasts serialize through a
// deterministic M/G/1-style FIFO server at the aggregator, so large-fleet
// commit times reflect queueing at the shared link rather than independent
// links; zero capacity reproduces the independent-link timeline bit for
// bit. Energy accounting: every round charges each participant
// compute-seconds × (CostModel.DevicePowerWatts × profile power) plus
// radio bytes × CostModel.RadioEnergyPerByte, surfacing per-round fleet
// joules in SimRoundStats.Energy, cumulative and per-device totals in
// SimResult, and the energy/metric trade-off study in examples/energystudy.
//
// # Snapshots and serving
//
// Trained models leave the training process through versioned snapshots
// (internal/snapshot) and come back to life in serving replicas
// (internal/serve), closing the train→publish→serve loop:
//
//	snap, _ := lumos.CaptureSnapshot(sys, lumos.SnapshotMeta{Dataset: g.Name})
//	v, _ := lumos.PublishSnapshot("model.snap", snap) // atomic write, version v
//
//	srv := lumos.NewServer(lumos.ServeOptions{})
//	defer srv.Close()
//	stop := srv.Watch("model.snap", 0) // hot-swap on republish
//	defer stop()
//	http.ListenAndServe(":8080", srv.Handler())
//
// A snapshot carries metadata (task, backbone, dataset, seed, round,
// metric), the encoder and head weights through the hardened length-checked
// checkpoint codec, and the per-device tree state, all under a CRC-32
// trailer — truncation, bit flips, bad magic, and oversized length fields
// fail loudly at decode time with bounded allocation. Publishing is atomic
// (temp file + fsync + rename) and PublishSnapshot auto-increments the
// version, so a watcher polling the file sees either the old complete
// snapshot or the new one, never a torn write.
//
// Because a snapshot pins the training shard partition, the rebuilt
// inference system reproduces the training system's floating-point
// reduction order exactly: every served class and link score is
// bit-identical to what EvaluateAccuracy / EvaluateAUC computed in the
// training process. The serving replica batches queries against an
// immutable bundle (embedding cache + precomputed predictions) behind an
// atomic pointer; hot swaps are lock-free, reject stale versions, and each
// answer names the snapshot version it came from. Entry points: the
// lumos-serve CLI (HTTP: /healthz, /v1/info, /v1/classify, /v1/score),
// lumos-train -publish, lumos-bench -serve (zipf load replay →
// BENCH_serve.json), and the examples/servequickstart walkthrough.
//
// # Observability (internal/obs)
//
// Every layer is instrumented through internal/obs, a dependency-free
// telemetry substrate with two design rules. First, disabled telemetry is
// free: Config.Metrics and Config.Tracer default to nil, every instrument
// method no-ops on a nil receiver, and the nil path is bit-and-allocation
// identical to an uninstrumented build (the allocation-budget and golden
// loss-trace tests in CI pin this). Second, the hot path never allocates:
// counters and gauges are single atomics, histograms are fixed-bucket
// atomic arrays, and rendering snapshots them only at scrape time.
//
//	reg := lumos.NewMetricsRegistry()
//	sys, _ := lumos.NewSystem(g, g, lumos.Config{Metrics: reg, Tracer: lumos.NewEventTracer()})
//	// ... train ...
//	reg.WritePrometheus(os.Stdout) // text exposition format 0.0.4
//
// A MetricsRegistry exports Prometheus text (training: lumos_train_* step
// counters, loss and queue-depth gauges, step-time histogram; simulation:
// lumos_sim_* rounds, bytes, energy, aggregator queueing; serving:
// lumos_serve_* per-endpoint latency and batch-size histograms, swap count,
// serving snapshot version). An EventTracer records spans and instants —
// epochs, rounds, device compute/upload, aggregator serving, snapshot
// publishes, batch drains, hot swaps — and writes them as Chrome
// trace-event JSON viewable in Perfetto (ui.perfetto.dev) or as JSONL.
// Training and serving trace on the wall clock (NewEventTracer); the
// simulator traces on its virtual clock (NewVirtualEventTracer via
// SimScenario.Tracer), and the two never mix in one file. Surfaces:
// lumos-serve GET /metrics (plus -log request logging and -pprof),
// lumos-sim/lumos-train -trace, -metrics, and -metrics-out, and
// lumos-bench -serve embeds the replica's final scrape in BENCH_serve.json.
//
// # Run records and reports (internal/report)
//
// The write-only telemetry above gets its analysis half in internal/report:
// recorded, diffable run artifacts plus trace analytics. Passing
// -run-out <dir> to lumos-sim or lumos-train records the run as a
// directory — manifest.json (the full CLI args, seed, fleet, topology,
// kernel path, go version, and GOMAXPROCS needed to reproduce it, plus the
// final metric/wall-clock/bytes/energy summary), rounds.jsonl (one row per
// committed round, streamed as rounds commit via SimScenario.RoundObserver
// so a killed run keeps its prefix), and metrics.prom (the final Prometheus
// scrape). WriteRunRecord and LoadRunRecord are the programmatic read/write
// pair (a RunRecord round-trips losslessly; a truncated rounds.jsonl tail
// loads with a warning), and AnalyzeTrace turns a simulator trace — live
// events or a file loaded back with ReadTraceEvents — into per-round
// CriticalPath chains (device-compute → upload → agg-queue, or per-link
// gossip delta, ending at the round's commit), per-device
// utilization/idle/queue-wait fractions, and a top-k straggler-blame table,
// for sync, async, and gossip schedules alike.
//
// The lumos-report CLI is the human surface: `lumos-report run <dir>`
// renders a record as tables (or markdown with -md), `lumos-report trace
// <file> -critical-path` analyzes a trace standalone, and `lumos-report
// diff <baseline> <candidate>` compares two records under configurable
// thresholds and exits nonzero on regression — a CI-able A/B gate
// (scripts/ci.sh runs a record → report → self-diff round trip, and the
// perf PRs' A/B comparisons build on it). Disabled recording is free: no
// -run-out means a nil observer, and the goldens plus the allocation
// budget pin that path.
package lumos

import (
	"math/rand"

	"lumos/internal/core"
	"lumos/internal/eval"
	"lumos/internal/fleet"
	"lumos/internal/graph"
	"lumos/internal/nn"
	"lumos/internal/obs"
	"lumos/internal/report"
	"lumos/internal/serve"
	"lumos/internal/sim"
	"lumos/internal/snapshot"
	"lumos/internal/tensor"
	"lumos/internal/topo"
)

// Graph and dataset handling.
type (
	// Graph is an undirected attributed graph; vertex v is device v.
	Graph = graph.Graph
	// GenConfig parameterizes the synthetic social-graph generator.
	GenConfig = graph.GenConfig
	// EgoNet is a device's complete local view.
	EgoNet = graph.EgoNet
	// NodeSplit is a train/val/test vertex partition.
	NodeSplit = graph.NodeSplit
	// EdgeSplit is a train/val/test edge partition with negative samples.
	EdgeSplit = graph.EdgeSplit
)

// Generate produces a synthetic attributed social graph.
func Generate(cfg GenConfig) (*Graph, error) { return graph.Generate(cfg) }

// FacebookLike returns the Facebook page-page stand-in at the given scale.
func FacebookLike(scale float64, seed int64) (*Graph, error) {
	return graph.FacebookLike(scale, seed)
}

// LastFMLike returns the LastFM Asia stand-in at the given scale.
func LastFMLike(scale float64, seed int64) (*Graph, error) {
	return graph.LastFMLike(scale, seed)
}

// SplitNodes partitions vertices for supervised learning (paper: 50/25/25).
func SplitNodes(g *Graph, trainFrac, valFrac float64, rng *rand.Rand) (*NodeSplit, error) {
	return graph.SplitNodes(g, trainFrac, valFrac, rng)
}

// SplitEdges partitions edges for link prediction (paper: 80/5/15).
func SplitEdges(g *Graph, trainFrac, valFrac float64, rng *rand.Rand) (*EdgeSplit, error) {
	return graph.SplitEdges(g, trainFrac, valFrac, rng)
}

// Model selection.
type (
	// Backbone selects the GNN layer family.
	Backbone = nn.Backbone
)

// Backbone values.
const (
	GCN = nn.GCN
	GAT = nn.GAT
)

// The Lumos system.
type (
	// Config collects every Lumos hyperparameter; zero values choose the
	// paper's settings.
	Config = core.Config
	// Task selects supervised or unsupervised training.
	Task = core.Task
	// Sched selects synchronous or staleness-bounded asynchronous round
	// scheduling (see the package documentation).
	Sched = core.Sched
	// System is an assembled Lumos deployment.
	System = core.System
	// Objective encapsulates everything task-specific about training (see
	// the package documentation).
	Objective = core.Objective
	// Session is one training run of an Objective over a System, driven by
	// epochs (Step) or rounds (StepRound).
	Session = core.Session
	// RoundPlan describes one partial-participation round for
	// Session.StepRound.
	RoundPlan = core.RoundPlan
	// TrainStats reports losses, per-epoch traffic, and the Fig. 8 cost
	// metrics of a training run.
	TrainStats = core.TrainStats
)

// Task values.
const (
	Supervised   = core.Supervised
	Unsupervised = core.Unsupervised
)

// Scheduling modes.
const (
	SchedSync   = core.SchedSync
	SchedAsync  = core.SchedAsync
	SchedGossip = core.SchedGossip
)

// KernelPath selects between the register-blocked tensor kernels and the
// scalar reference loops (bit-identical results; see "Hardware-fast
// kernels" above).
type KernelPath = tensor.KernelPath

// Kernel paths.
const (
	// KernelsBlocked is the default register-blocked + fused-CSR path.
	KernelsBlocked = tensor.PathBlocked
	// KernelsReference runs the original scalar loops.
	KernelsReference = tensor.PathReference
)

// SetKernelPath selects the tensor kernel implementation process-wide;
// Config.Kernels does the same per training run.
func SetKernelPath(p KernelPath) { tensor.SetKernelPath(p) }

// ParseKernelPath parses a kernel-path name ("blocked" or "reference"; ""
// means blocked).
func ParseKernelPath(s string) (KernelPath, error) { return tensor.ParseKernelPath(s) }

// ParseSched parses a scheduling-mode name ("sync", "async", or "gossip").
func ParseSched(name string) (Sched, error) { return core.ParseSched(name) }

// ParseTask parses a task name ("supervised" or "unsupervised").
func ParseTask(name string) (Task, error) { return core.ParseTask(name) }

// NewSupervisedObjective builds the node-classification objective over a
// train/val/test vertex split.
func NewSupervisedObjective(split *NodeSplit) Objective {
	return core.NewSupervisedObjective(split)
}

// NewUnsupervisedObjective builds the link-prediction objective; val may be
// nil when no validation/test edges exist.
func NewUnsupervisedObjective(val *EdgeSplit) Objective {
	return core.NewUnsupervisedObjective(val)
}

// NewSystem assembles a Lumos deployment over graph g. For supervised
// training pass full == g; for link prediction pass the training subgraph
// as g and the complete graph as full.
func NewSystem(g, full *Graph, cfg Config) (*System, error) {
	return core.NewSystem(g, full, cfg)
}

// Scenario simulation (see the package documentation).
type (
	// SimScenario configures one simulated deployment: fleet, churn,
	// partial participation, rounds, cost model, seed.
	SimScenario = sim.Scenario
	// SimProfile is one device's capacity relative to the nominal device:
	// compute/bandwidth/latency/power multipliers plus an optional
	// availability cycle (defined in internal/fleet).
	SimProfile = sim.Profile
	// Simulator advances a scenario over an assembled System.
	Simulator = sim.Simulator
	// SimResult is a finished simulation: timeline plus summary metrics
	// (wall-clock, wire bytes, fleet energy).
	SimResult = sim.Result
	// SimRoundStats is one entry of a simulated timeline.
	SimRoundStats = sim.RoundStats
	// Fleet names a device-profile distribution.
	Fleet = sim.Fleet
	// FleetSource turns a device-population description into concrete
	// profiles — the interface every fleet (synthetic or trace-driven)
	// implements, and SimScenario's single construction path.
	FleetSource = fleet.Fleet
	// Trace is a device-population trace loaded from a FedScale-style
	// CSV/JSON file (or synthesized by SampleTrace); it implements
	// FleetSource and feeds SimScenario.Trace.
	Trace = fleet.Trace
	// RoundOutcome reports one partial-participation training round.
	RoundOutcome = core.RoundOutcome
)

// Fleet values.
const (
	FleetUniform  = sim.FleetUniform
	FleetZipf     = sim.FleetZipf
	FleetPeriodic = sim.FleetPeriodic
	FleetTrace    = sim.FleetTrace
)

// ParseFleet parses a fleet name ("uniform", "zipf", "periodic", or
// "trace"; the trace fleet additionally needs a trace source).
func ParseFleet(name string) (Fleet, error) { return sim.ParseFleet(name) }

// ParseFleetSpec parses a CLI fleet spec, which extends the fleet names
// with the "trace:<path>" form naming a trace file to load.
func ParseFleetSpec(spec string) (Fleet, string, error) { return sim.ParseFleetSpec(spec) }

// LoadTrace reads a fleet trace from a CSV (.csv) or JSON (.json) file.
func LoadTrace(path string) (*Trace, error) { return fleet.LoadTrace(path) }

// SampleTrace synthesizes a representative mixed device population — the
// trace lumos-datagen -traces writes — deterministically from the seed.
func SampleTrace(devices int, seed int64) (*Trace, error) {
	return fleet.SampleTrace(devices, seed)
}

// NewSimulator prepares a discrete-event simulation of scenario sc over an
// assembled system (build it with Config.Shards == device count for exact
// per-device participation).
func NewSimulator(sys *System, sc SimScenario) (*Simulator, error) {
	return sim.New(sys, sc)
}

// Topologies and gossip (see the package documentation).
type (
	// Topology is a peer contact graph: which devices exchange model deltas
	// directly under SchedGossip (SimScenario.Topology).
	Topology = topo.Topology
	// TopologySpec is a parsed topology description ("ring:<k>",
	// "k-regular:<k>", "ba:<m>", "complete", "file:<path>"); Build
	// instantiates it for a device count and seed.
	TopologySpec = topo.Spec
	// SimPolicy names a participation policy — how the simulator narrows
	// the available set before each round's sample.
	SimPolicy = sim.Policy
	// LinkDiscipline selects a queueing discipline for gossip's per-link
	// servers (and any fleet.Server): FIFO or egalitarian processor
	// sharing.
	LinkDiscipline = fleet.Discipline
)

// Participation policies.
const (
	PolicyUniform = sim.PolicyUniform
	PolicyEnergy  = sim.PolicyEnergy
)

// Link queueing disciplines.
const (
	DiscFIFO = fleet.DiscFIFO
	DiscPS   = fleet.DiscPS
)

// ParseTopologySpec parses a topology spec ("ring:<k>", "k-regular:<k>",
// "ba:<m>", "complete", or "file:<path>") — the grammar behind
// lumos-sim -topology.
func ParseTopologySpec(s string) (TopologySpec, error) { return topo.ParseSpec(s) }

// ParsePolicy parses a participation-policy name ("uniform" or "energy";
// "" means uniform).
func ParsePolicy(s string) (SimPolicy, error) { return sim.ParsePolicy(s) }

// ParseDiscipline parses a queueing-discipline name ("fifo" or "ps").
func ParseDiscipline(s string) (LinkDiscipline, error) { return fleet.ParseDiscipline(s) }

// TopologyRing returns the ring lattice where each device contacts its k
// nearest neighbors on a cycle (k even).
func TopologyRing(n, k int) (*Topology, error) { return topo.Ring(n, k) }

// TopologyKRegular returns a connected random k-regular contact graph,
// deterministically from the seed.
func TopologyKRegular(n, k int, seed int64) (*Topology, error) { return topo.KRegular(n, k, seed) }

// TopologyBarabasiAlbert returns a scale-free Barabási–Albert contact
// graph (m attachments per arriving device), deterministically from the
// seed.
func TopologyBarabasiAlbert(n, m int, seed int64) (*Topology, error) {
	return topo.BarabasiAlbert(n, m, seed)
}

// TopologyComplete returns the all-pairs contact graph — gossip's bridge
// back to the star aggregator.
func TopologyComplete(n int) (*Topology, error) { return topo.Complete(n) }

// LoadTopology reads a contact graph from a CSV (.csv) or JSON (.json)
// edge-list file; see internal/topo/file.go for the schema.
func LoadTopology(path string) (*Topology, error) { return topo.Load(path) }

// Snapshots and serving (see the package documentation).
type (
	// Snapshot is a captured model: metadata, architecture, weights, and
	// the per-device tree state a serving replica needs.
	Snapshot = snapshot.Snapshot
	// SnapshotMeta describes a snapshot (version, task, dataset, metric…).
	SnapshotMeta = snapshot.Meta
	// Server answers classification and link-scoring queries from the
	// currently-published bundle, hot-swapping atomically on republish.
	Server = serve.Server
	// ServeOptions tunes a Server's query batching.
	ServeOptions = serve.Options
	// ServeBundle is one immutable snapshot prepared for serving.
	ServeBundle = serve.Bundle
	// ServeLoadConfig drives RunServeLoad, the zipf query-replay load
	// generator behind lumos-bench -serve.
	ServeLoadConfig = serve.LoadConfig
	// ServeLoadReport summarizes one load run (p50/p99 latency, QPS,
	// versions observed).
	ServeLoadReport = serve.LoadReport
)

// CaptureSnapshot freezes a trained system into a snapshot; training may
// continue afterwards without mutating the capture.
func CaptureSnapshot(sys *System, meta SnapshotMeta) (*Snapshot, error) {
	return snapshot.Capture(sys, meta)
}

// ReadSnapshot loads and fully verifies the snapshot file at path.
func ReadSnapshot(path string) (*Snapshot, error) { return snapshot.Read(path) }

// WriteSnapshot publishes a snapshot to path atomically (temp + fsync +
// rename) at whatever version its metadata carries.
func WriteSnapshot(path string, s *Snapshot) error { return snapshot.Write(path, s) }

// PublishSnapshot atomically writes the snapshot to path with the next
// version after the one currently published there, and returns it.
func PublishSnapshot(path string, s *Snapshot) (uint64, error) {
	return snapshot.PublishNext(path, s)
}

// PeekSnapshotVersion reads just the version from a snapshot file header —
// the cheap staleness check watchers use before a full read.
func PeekSnapshotVersion(path string) (uint64, error) { return snapshot.PeekVersion(path) }

// NewServer builds a serving replica and starts its batching worker.
func NewServer(opt ServeOptions) *Server { return serve.New(opt) }

// NewServeBundle prepares a decoded snapshot for serving: it rebuilds the
// inference system and materializes the embedding cache and predictions,
// bit-identical to the training process's own evaluation.
func NewServeBundle(s *Snapshot) (*ServeBundle, error) { return serve.NewBundle(s) }

// RunServeLoad replays zipf-distributed queries against a serving replica
// and reports latency percentiles, throughput, and versions observed.
func RunServeLoad(cfg ServeLoadConfig) (*ServeLoadReport, error) { return serve.RunLoad(cfg) }

// Observability (see the package documentation).
type (
	// MetricsRegistry holds named atomic counters, gauges, and fixed-bucket
	// histograms and renders them in Prometheus text format. A nil registry
	// (the Config default) disables metrics entirely and costs nothing.
	MetricsRegistry = obs.Registry
	// EventTracer records spans and instants and writes Chrome trace-event
	// JSON (viewable in Perfetto) or JSONL. A nil tracer is a no-op.
	EventTracer = obs.Tracer
	// MetricsHistogram is one fixed-bucket histogram instrument; exported so
	// embedders can attach their own (e.g. fleet.Server.Wait).
	MetricsHistogram = obs.Histogram
	// TraceEvent is one recorded trace event in Chrome trace-event shape.
	TraceEvent = obs.Event
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// NewEventTracer builds a wall-clock tracer: Now() is seconds since
// creation. Use it for Config.Tracer in real training and serving.
func NewEventTracer() *EventTracer { return obs.NewTracer() }

// NewVirtualEventTracer builds a tracer for simulated time: callers supply
// event timestamps in simulated seconds (SimScenario.Tracer). Simulator
// runs are single-threaded, so its traces are byte-reproducible per seed.
func NewVirtualEventTracer() *EventTracer { return obs.NewVirtualTracer() }

// ParsePrometheus parses Prometheus text exposition into a flat
// name→value map — the scrape side of MetricsRegistry.WritePrometheus.
func ParsePrometheus(text string) (map[string]float64, error) {
	return obs.ParsePrometheus(text)
}

// Run records and reports (see the package documentation).
type (
	// RunRecord is a fully loaded run-record directory: manifest, per-round
	// rows, and the final metrics scrape.
	RunRecord = report.RunRecord
	// RunManifest identifies and summarizes a recorded run — the arguments,
	// seed, and environment needed to reproduce it plus the headline
	// results.
	RunManifest = report.Manifest
	// RunRoundRow is one committed round's recorded statistics.
	RunRoundRow = report.RoundRow
	// TraceAnalysis is the analyzer's verdict on a simulator trace:
	// per-round critical paths, per-device utilization, and the
	// straggler-blame table.
	TraceAnalysis = report.TraceAnalysis
	// CriticalPath is the chain of spans one round's commit waited on.
	CriticalPath = report.CriticalPath
)

// WriteRunRecord writes a complete run record to dir in one shot —
// the non-streaming counterpart of lumos-sim/lumos-train -run-out.
func WriteRunRecord(dir string, rec *RunRecord) error {
	return report.WriteRunRecord(dir, rec)
}

// LoadRunRecord reads a run-record directory back. A truncated final
// rounds.jsonl row (a killed run) is dropped with a warning rather than an
// error; warnings list everything tolerated.
func LoadRunRecord(dir string) (*RunRecord, []string, error) {
	return report.LoadRunRecord(dir)
}

// AnalyzeTrace computes critical paths, device utilization, and the top-k
// straggler-blame table from a simulator trace's events (live from an
// EventTracer or loaded back with ReadTraceEvents).
func AnalyzeTrace(events []TraceEvent, topK int) (*TraceAnalysis, error) {
	return report.AnalyzeTrace(events, topK)
}

// ReadTraceEvents loads trace events back from a file written by
// EventTracer.WriteFile, auto-detecting Chrome JSON vs JSONL by extension.
func ReadTraceEvents(path string) ([]TraceEvent, error) {
	return obs.ReadEventsFile(path)
}

// Experiment harness (one runner per paper figure).
type (
	// ExperimentOptions scales the reproduction suite.
	ExperimentOptions = eval.Options
	// ResultTable is a rendered experiment result.
	ResultTable = eval.Table
)

// Experiment runners, one per paper artifact, plus the scenario-simulation
// runner (RunSimTimeline replaces the single-number Fig. 8 cost estimate
// with a simulated per-round timeline under both scheduling disciplines).
var (
	RunFig3        = eval.RunFig3
	RunFig4        = eval.RunFig4
	RunFig5        = eval.RunFig5
	RunFig6        = eval.RunFig6
	RunFig7        = eval.RunFig7
	RunFig8        = eval.RunFig8
	RunHeadline    = eval.RunHeadline
	RunSimTimeline = eval.RunSimTimeline
)
