// Command lumos-serve answers node-classification and link-scoring queries
// over HTTP from a published model snapshot. With -watch it polls the
// snapshot file and hot-swaps atomically whenever the trainer republishes a
// newer version — in-flight queries finish on the old model, the next batch
// sees the new one, and the served version never moves backwards.
//
// Usage:
//
//	lumos-train -dataset facebook -publish model.snap
//	lumos-serve -snapshot model.snap -addr :8080 -watch
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/info
//	curl localhost:8080/metrics
//	curl -d '{"nodes":[4,7]}' localhost:8080/v1/classify
//	curl -d '{"pairs":[[0,1],[2,3]]}' localhost:8080/v1/score
//
// Observability: GET /metrics serves Prometheus-text runtime metrics
// (query latency and batch-size histograms, queue depth, swap count,
// serving snapshot version/age). -log emits one structured JSON line per
// request on stderr; -pprof mounts net/http/pprof under /debug/pprof/.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"lumos/internal/obs"
	"lumos/internal/serve"
	"lumos/internal/snapshot"
)

func main() {
	var (
		snapPath  = flag.String("snapshot", "model.snap", "snapshot file to serve (published by lumos-train -publish)")
		addr      = flag.String("addr", ":8080", "HTTP listen address (use 127.0.0.1:0 for an ephemeral port)")
		watch     = flag.Bool("watch", false, "poll the snapshot file and hot-swap when a newer version is published")
		interval  = flag.Duration("watch-interval", 500*time.Millisecond, "snapshot poll interval with -watch")
		batch     = flag.Int("batch", 64, "max queries answered per bundle load")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "how long a non-full batch waits for more queries")
		accessLog = flag.Bool("log", false, "emit one structured JSON line per request on stderr")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "lumos-serve: ", log.LstdFlags)
	opt := serve.Options{
		MaxBatch:  *batch,
		BatchWait: *batchWait,
		Logf:      logger.Printf,
		Metrics:   obs.New(),
	}
	if *accessLog {
		// One JSON object per request, on stderr so the stdout port banner
		// stays machine-parseable.
		enc := json.NewEncoder(os.Stderr)
		opt.AccessLog = func(rec serve.AccessRecord) { enc.Encode(rec) }
	}
	srv := serve.New(opt)
	defer srv.Close()

	// Load the initial snapshot up front so a bad path fails loudly at
	// startup; with -watch a missing file is tolerated (the trainer may not
	// have published yet) and picked up on the first poll that finds it.
	if snap, err := snapshot.Read(*snapPath); err != nil {
		if !*watch {
			fatalf("%v", err)
		}
		logger.Printf("waiting for %s: %v", *snapPath, err)
	} else {
		b, err := serve.NewBundle(snap)
		if err != nil {
			fatalf("%v", err)
		}
		srv.Swap(b)
	}
	if *watch {
		stop := srv.Watch(*snapPath, *interval)
		defer stop()
	}

	handler := srv.Handler()
	if *withPprof {
		// Mount pprof on an outer mux so the serving API stays the inner
		// handler's concern (and keeps its access logging).
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	// The resolved address goes to stdout so scripts serving on an
	// ephemeral port (-addr 127.0.0.1:0) can find it.
	fmt.Printf("serving %s on http://%s\n", *snapPath, ln.Addr())
	if err := (&http.Server{Handler: handler}).Serve(ln); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lumos-serve: "+format+"\n", args...)
	os.Exit(1)
}
