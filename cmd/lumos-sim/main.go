// Command lumos-sim plays a Lumos deployment through the discrete-event
// device-network simulator (internal/sim): a heterogeneous device fleet with
// churn and partial participation trains round by round on a virtual clock,
// and the per-round timeline — simulated wall-clock, bytes on the wire,
// participation, energy, loss, evaluation metric — is printed as a table.
// The simulator drives a core.Session, so -task selects either objective:
// node classification (accuracy timeline) or link prediction (AUC timeline).
//
// The device population comes from internal/fleet: synthetic fleets
// (uniform, zipf, periodic availability) or a trace file of per-device
// capacity/power/availability records (-fleet trace:<path>, FedScale-style
// CSV/JSON; generate a sample with lumos-datagen -traces). -agg-capacity
// puts an M/G/1-style shared server at the aggregator so uploads and model
// broadcasts serialize instead of using independent links, and every round
// reports the fleet's energy spend (compute x profile power + radio bytes).
//
// Usage:
//
//	lumos-sim -dataset facebook -scale 0.02 -fleet zipf -churn 0.2 -rounds 30
//	lumos-sim -task unsupervised -churn 0.2 -sched async
//	lumos-sim -fleet periodic -participation 0.5 -sched async -staleness 2
//	lumos-sim -fleet trace:fleet.csv -agg-capacity 2e6 -rounds 20
//	lumos-sim -sched gossip -topology ring:4 -rounds 20
//	lumos-sim -sched gossip -topology ba:2 -link-discipline fifo
//	lumos-sim -participation-policy energy -energy-budget 0.5
//	lumos-sim -sched both -rounds 20 -csv
//	lumos-sim -rounds 20 -trace out.trace.json   # open in Perfetto (ui.perfetto.dev)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lumos/internal/core"
	"lumos/internal/eval"
	"lumos/internal/fed"
	"lumos/internal/fleet"
	"lumos/internal/graph"
	"lumos/internal/nn"
	"lumos/internal/obs"
	"lumos/internal/report"
	"lumos/internal/sim"
	"lumos/internal/topo"
)

func main() {
	var (
		dataset    = flag.String("dataset", "facebook", "facebook|lastfm|file:<path>")
		scale      = flag.Float64("scale", 0.02, "dataset preset scale (0,1]")
		task       = flag.String("task", "supervised", "training objective: supervised|unsupervised")
		backbone   = flag.String("backbone", "gcn", "gcn|gat")
		fleetSpec  = flag.String("fleet", "zipf", "device fleet: uniform|zipf|periodic|trace:<path> (CSV/JSON trace, see lumos-datagen -traces)")
		zipfSkew   = flag.Float64("zipf", 1.2, "zipf fleet skew (slowest device ~2^skew x median)")
		tracePer   = flag.Int("trace-period", 8, "periodic fleet availability period, rounds")
		traceDuty  = flag.Float64("trace-duty", 0.75, "periodic fleet online fraction of each period")
		aggCap     = flag.Float64("agg-capacity", 0, "aggregator shared uplink/downlink capacity, bytes/s (0 = unlimited: independent links)")
		churn      = flag.Float64("churn", 0.2, "per-round probability an online device leaves")
		rejoin     = flag.Float64("rejoin", 0.5, "per-round probability an offline device returns")
		partic     = flag.Float64("participation", 0.8, "fraction of available devices sampled per round")
		rounds     = flag.Int("rounds", 20, "training rounds to simulate")
		sched      = flag.String("sched", "sync", "round scheduling: sync|async|gossip|both")
		stale      = flag.Int("staleness", 2, "async gradient staleness bound in rounds")
		topoSpec   = flag.String("topology", "", "gossip contact graph: ring[:k]|k-regular:<k>|ba:<m>|complete|file:<path> (required with -sched gossip)")
		linkDisc   = flag.String("link-discipline", "", "gossip link queueing: ps (default)|fifo")
		policy     = flag.String("participation-policy", "uniform", "participation policy: uniform|energy (skip devices over the per-round energy budget)")
		budget     = flag.Float64("energy-budget", 0, "energy policy per-round per-device budget, joules (0 = fleet mean projected spend)")
		ttl        = flag.Int("ttl", 2, "rounds an absent device's cached embeddings keep serving")
		evalEvery  = flag.Int("eval-every", 5, "evaluate the test metric every k rounds")
		selection  = flag.Bool("select", false, "round-driven model selection: keep the best validation-metric snapshot")
		mcmc       = flag.Int("mcmc", 150, "MCMC tree-trimming iterations")
		eps        = flag.Float64("eps", 2, "privacy budget epsilon")
		workers    = flag.Int("workers", 0, "training worker pool size (0 = one per CPU; results identical)")
		seed       = flag.Int64("seed", 7, "run seed (training and scenario)")
		csv        = flag.Bool("csv", false, "also print the per-round timeline as CSV")
		traceOut   = flag.String("trace", "", "write the simulated timeline as Chrome trace-event JSON, viewable in Perfetto (with -sched both the mode is inserted before the extension)")
		metricsOn  = flag.Bool("metrics", false, "print the run's metrics in Prometheus text format after the timeline")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics in Prometheus text format to this file (with -sched both the mode is inserted before the extension)")
		runOut     = flag.String("run-out", "", "record the run to this directory (manifest.json, rounds.jsonl, metrics.prom) for lumos-report; with -sched both the mode is appended to the directory name")
	)
	flag.Parse()

	taskKind, err := core.ParseTask(strings.ToLower(*task))
	check(err)
	fleetKind, tracePath, err := sim.ParseFleetSpec(*fleetSpec)
	check(err)
	var trace *fleet.Trace
	if tracePath != "" {
		trace, err = fleet.LoadTrace(tracePath)
		check(err)
	}
	var bb nn.Backbone
	switch strings.ToLower(*backbone) {
	case "gcn":
		bb = nn.GCN
	case "gat":
		bb = nn.GAT
	default:
		fatalf("unknown backbone %q", *backbone)
	}
	var scheds []core.Sched
	switch strings.ToLower(*sched) {
	case "both":
		scheds = []core.Sched{core.SchedSync, core.SchedAsync}
	default:
		m, err := core.ParseSched(*sched)
		check(err)
		scheds = []core.Sched{m}
	}

	g, err := graph.LoadDataset(*dataset, *scale, *seed)
	check(err)
	// The task decides the split, the training graph, and the objective the
	// session trains. Objectives bind to one system, so each discipline run
	// below builds a fresh one from the factory.
	trainGraph, newObjective, err := core.SplitForTask(g, taskKind, rand.New(rand.NewSource(*seed)))
	check(err)
	fleetLabel := string(fleetKind)
	if trace != nil {
		fleetLabel = fmt.Sprintf("trace(%s: %d records)", trace.Name, len(trace.Devices))
	}
	fmt.Printf("dataset %s: N=%d M=%d | task=%s fleet=%s churn=%.0f%% participation=%.0f%% rounds=%d\n",
		g.Name, g.N, g.NumEdges(), taskKind, fleetLabel, 100**churn, 100**partic, *rounds)

	scenario := sim.Scenario{
		Fleet: fleetKind, Trace: trace, ZipfSkew: *zipfSkew,
		TracePeriod: *tracePer, TraceDuty: *traceDuty,
		Churn: *churn, Rejoin: *rejoin, Participation: *partic,
		Rounds: *rounds, PartialTTL: *ttl, EvalEvery: *evalEvery,
		ModelSelection: *selection,
		LinkDiscipline: *linkDisc,
		Policy:         sim.Policy(strings.ToLower(*policy)),
		EnergyBudget:   *budget,
		Seed:           *seed,
	}
	gossipRun := false
	for _, m := range scheds {
		gossipRun = gossipRun || m == core.SchedGossip
	}
	if gossipRun && *topoSpec == "" {
		fatalf("-sched gossip needs a -topology (ring[:k]|k-regular:<k>|ba:<m>|complete|file:<path>)")
	}
	if *topoSpec != "" {
		if !gossipRun {
			fatalf("-topology requires -sched gossip")
		}
		spec, err := topo.ParseSpec(*topoSpec)
		check(err)
		tp, err := spec.Build(g.N, *seed)
		check(err)
		scenario.Topology = tp
		fmt.Printf("topology %s: %d nodes, %d edges, connected=%v\n",
			tp.Name(), tp.N(), tp.NumEdges(), tp.Connected())
	}
	if *aggCap != 0 {
		cost := fed.DefaultCostModel()
		cost.AggBytesPerSecond = *aggCap
		scenario.Cost = cost
	}
	if *partic <= 0 || *partic > 1 {
		fatalf("-participation %v outside (0,1]", *partic)
	}
	// The scenario's zero values select defaults; a literal 0 on these flags
	// means "off" and maps to the negative sentinel.
	if *rejoin == 0 {
		scenario.Rejoin = -1
	}
	if *ttl == 0 {
		scenario.PartialTTL = -1
	}
	if *evalEvery == 0 {
		scenario.EvalEvery = -1
	}

	type summary struct {
		sched string
		res   *sim.Result
	}
	var sums []summary
	for _, mode := range scheds {
		// Telemetry is per discipline run: a fresh virtual-clock tracer and
		// metrics registry each time, so -sched both writes one trace file
		// and one metrics dump per mode instead of mixing their streams. The
		// registry is shared with the training session (Config.Metrics); the
		// wall-clock Config.Tracer stays nil — the simulator runs on virtual
		// time and the two clocks must not land in one trace.
		var tr *obs.Tracer
		var reg *obs.Registry
		if *traceOut != "" {
			tr = obs.NewVirtualTracer()
		}
		// A run record wants the final scrape too, so -run-out implies a
		// registry; telemetry is bit-identical either way.
		if *metricsOn || *metricsOut != "" || *runOut != "" {
			reg = obs.New()
		}
		cfg := core.Config{
			Task: taskKind, Backbone: bb,
			Epsilon: *eps, MCMCIterations: *mcmc,
			Workers: *workers,
			Shards:  g.N, // one device per shard: exact per-device participation
			Sched:   mode,
			Seed:    *seed,
			Metrics: reg,
		}
		if mode == core.SchedAsync {
			cfg.Staleness = *stale
		}
		sys, err := core.NewSystem(trainGraph, g, cfg)
		check(err)
		sc := scenario
		sc.Tracer, sc.Metrics = tr, reg
		var rw *report.Writer
		if *runOut != "" {
			m := report.NewManifest("lumos-sim", os.Args[1:], *seed, time.Now().Unix())
			m.Dataset, m.Task, m.Backbone = g.Name, taskKind.String(), strings.ToLower(*backbone)
			m.Sched, m.Fleet, m.Topology = mode.String(), fleetLabel, *topoSpec
			m.Rounds = *rounds
			rw, err = report.NewWriter(traceName(*runOut, mode.String(), len(scheds) > 1), m)
			check(err)
			sc.RoundObserver = func(rs sim.RoundStats) {
				check(rw.Round(report.RowFromSim(rs)))
			}
		}
		s, err := sim.New(sys, sc)
		check(err)
		res, err := s.Run(newObjective())
		check(err)
		sums = append(sums, summary{mode.String(), res})

		printTimeline(mode.String(), res, *csv)
		if tr != nil {
			out := traceName(*traceOut, mode.String(), len(scheds) > 1)
			check(tr.WriteFile(out))
			fmt.Printf("trace: wrote %d events to %s\n", tr.Len(), out)
		}
		if rw != nil {
			check(rw.Finish(report.Summary{
				MetricName: res.Metric, FinalMetric: res.FinalMetric,
				WallClock: res.WallClock, TotalBytes: res.TotalBytes,
				TotalEnergy: res.TotalEnergy,
			}, reg))
			fmt.Printf("run record: %s (%d rounds)\n", rw.Dir(), len(res.Timeline))
		}
		if *metricsOut != "" {
			out := traceName(*metricsOut, mode.String(), len(scheds) > 1)
			f, err := os.Create(out)
			check(err)
			check(reg.WritePrometheus(f))
			check(f.Close())
			fmt.Printf("metrics: wrote %s\n", out)
		}
		if *metricsOn {
			fmt.Printf("metrics (%s scheduling):\n", mode)
			check(reg.WritePrometheus(os.Stdout))
		}
	}
	for _, s := range sums {
		fmt.Printf("%-5s: wall-clock %8.3fs  bytes %12d  avg participants %5.1f  final %s %.4f  stale %d  dropped %d\n",
			s.sched, s.res.WallClock, s.res.TotalBytes, s.res.MeanParticipants,
			s.res.Metric, s.res.FinalMetric, s.res.StaleApplied, s.res.Dropped)
		maxDev := 0.0
		for _, e := range s.res.DeviceEnergy {
			if e > maxDev {
				maxDev = e
			}
		}
		fmt.Printf("%-5s: fleet energy %8.3f J  (%.3f J/round mean, hungriest device %.3f J)\n",
			s.sched, s.res.TotalEnergy, s.res.TotalEnergy/float64(len(s.res.Timeline)), maxDev)
	}
	if len(sums) == 2 && sums[1].res.WallClock > 0 {
		// sums[0] is sync, sums[1] async (the -sched both order).
		fmt.Printf("async speedup over sync (sync/async wall-clock): %.2fx\n",
			sums[0].res.WallClock/sums[1].res.WallClock)
	}
}

func printTimeline(sched string, res *sim.Result, csv bool) {
	t := &eval.Table{
		Title:   fmt.Sprintf("Simulated timeline (%s scheduling)", sched),
		Columns: []string{"round", "start(s)", "commit(s)", "avail", "part", "join", "leave", "late", "catchup", "stale", "drop", "bytes", "energy(J)", "loss", res.Metric},
	}
	for _, rs := range res.Timeline {
		metric := ""
		if rs.Evaluated {
			metric = fmt.Sprintf("%.4f", rs.Metric)
		}
		loss := fmt.Sprintf("%.4f", rs.Loss)
		if rs.Skipped {
			loss = "-"
		}
		t.AddRow(rs.Round, fmt.Sprintf("%.3f", rs.Start), fmt.Sprintf("%.3f", rs.Commit),
			rs.Available, rs.Participants, rs.Joined, rs.Left,
			rs.Late, rs.CatchUps, rs.StaleApplied, rs.Dropped, rs.Bytes,
			fmt.Sprintf("%.3f", rs.Energy), loss, metric)
	}
	check(t.Render(os.Stdout))
	if csv {
		check(t.RenderCSV(os.Stdout))
	}
}

// traceName inserts the scheduling mode before the extension when more
// than one discipline runs ("out.trace.json" -> "out.trace.sync.json").
func traceName(path, sched string, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + sched + ext
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lumos-sim: "+format+"\n", args...)
	os.Exit(1)
}
