// Command lumos-train trains one Lumos configuration end to end and prints
// the learning curve, evaluation metric, and system-cost statistics.
//
// Usage:
//
//	lumos-train -dataset facebook -scale 0.02 -backbone gcn -epochs 60
//	lumos-train -dataset lastfm -task unsupervised -eps 4
//	lumos-train -dataset facebook -save model.bin
//	lumos-train -dataset facebook -publish model.snap   # serve with lumos-serve
//	lumos-train -epochs 20 -trace train.trace.json -metrics
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"lumos/internal/core"
	"lumos/internal/graph"
	"lumos/internal/nn"
	"lumos/internal/obs"
	"lumos/internal/report"
	"lumos/internal/snapshot"
)

func main() {
	var (
		dataset    = flag.String("dataset", "facebook", "facebook|lastfm|file:<path>")
		scale      = flag.Float64("scale", 0.02, "dataset preset scale (0,1]")
		task       = flag.String("task", "supervised", "supervised|unsupervised")
		backbone   = flag.String("backbone", "gcn", "gcn|gat")
		epochs     = flag.Int("epochs", 60, "training epochs")
		eps        = flag.Float64("eps", 2, "privacy budget epsilon")
		mcmc       = flag.Int("mcmc", 150, "MCMC tree-trimming iterations")
		secure     = flag.Bool("secure", false, "run real OT-based secure comparisons")
		noVN       = flag.Bool("no-virtual-nodes", false, "ablation: disable virtual nodes")
		noTT       = flag.Bool("no-tree-trimming", false, "ablation: disable tree trimming")
		seed       = flag.Int64("seed", 7, "run seed")
		save       = flag.String("save", "", "write trained model parameters to this file")
		publish    = flag.String("publish", "", "publish a versioned serving snapshot to this file (atomic; version auto-increments)")
		workers    = flag.Int("workers", 0, "training worker pool size (0 = one per CPU; results identical)")
		sched      = flag.String("sched", "sync", "round scheduling: sync|async (staleness-bounded)")
		stale      = flag.Int("staleness", 0, "async gradient staleness bound in epochs (0 = default)")
		noTape     = flag.Bool("notapereuse", false, "rebuild the autodiff tape every epoch instead of recycling it (debugging; identical results)")
		kernels    = flag.String("kernels", "", "tensor kernel path: blocked (default) | reference (scalar cross-check loops; identical results)")
		tracePth   = flag.String("trace", "", "write per-epoch spans and publish events as Chrome trace-event JSON (viewable in Perfetto)")
		metricsOn  = flag.Bool("metrics", false, "print the run's metrics in Prometheus text format at the end")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics in Prometheus text format to this file")
		runOut     = flag.String("run-out", "", "record the run to this directory (manifest.json, rounds.jsonl, metrics.prom) for lumos-report")
	)
	flag.Parse()

	schedMode, err := core.ParseSched(*sched)
	if err != nil {
		fatalf("%v", err)
	}
	taskKind, err := core.ParseTask(strings.ToLower(*task))
	if err != nil {
		fatalf("%v", err)
	}

	g, err := graph.LoadDataset(*dataset, *scale, *seed)
	check(err)
	st := g.ComputeStats()
	fmt.Printf("dataset %s: N=%d M=%d avgdeg=%.1f maxdeg=%d classes=%d features=%d\n",
		g.Name, st.N, st.M, st.AvgDeg, st.MaxDeg, st.Classes, st.FeatureDim)

	// Telemetry is opt-in: the default (no -trace, no -metrics) leaves both
	// nil and training bit-identical to an uninstrumented run.
	var tr *obs.Tracer
	var reg *obs.Registry
	if *tracePth != "" {
		tr = obs.NewTracer()
	}
	// A run record wants the final scrape too, so -run-out implies a
	// registry; telemetry is bit-identical either way.
	if *metricsOn || *metricsOut != "" || *runOut != "" {
		reg = obs.New()
	}
	if tr != nil || reg != nil {
		hookPublishTelemetry(tr, reg)
	}

	cfg := core.Config{
		Task:    taskKind,
		Epsilon: *eps, Epochs: *epochs, MCMCIterations: *mcmc,
		SecureCompare: *secure, DisableVirtualNodes: *noVN, DisableTreeTrimming: *noTT,
		Workers: *workers, Sched: schedMode, Staleness: *stale, NoTapeReuse: *noTape,
		Kernels: *kernels,
		Metrics: reg, Tracer: tr,
		Seed: *seed,
	}
	switch strings.ToLower(*backbone) {
	case "gcn":
		cfg.Backbone = nn.GCN
	case "gat":
		cfg.Backbone = nn.GAT
	default:
		fatalf("unknown backbone %q", *backbone)
	}

	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	var (
		runStats    *core.TrainStats
		finalMetric float64
		metricName  string
	)
	switch taskKind {
	case core.Supervised:
		split, err := graph.SplitNodes(g, 0.5, 0.25, rng)
		check(err)
		sys, err := core.NewSystem(g, g, cfg)
		check(err)
		fmt.Printf("trees: max workload %d (untrimmed max degree %d), secure comparisons %d\n",
			sys.Balanced.MaxWorkload(), st.MaxDeg, sys.Balanced.SMC.Comparisons)
		stats, err := sys.TrainSupervised(split)
		check(err)
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		check(err)
		printStats(stats, *epochs)
		fmt.Printf("test accuracy: %.4f\n", acc)
		maybeSave(*save, sys)
		maybePublish(*publish, sys, g.Name, *seed, *epochs, acc, "accuracy")
		runStats, finalMetric, metricName = stats, acc, "accuracy"
	case core.Unsupervised:
		es, err := graph.SplitEdges(g, 0.8, 0.05, rng)
		check(err)
		sys, err := core.NewSystem(es.TrainGraph, g, cfg)
		check(err)
		fmt.Printf("trees: max workload %d (untrimmed max degree %d)\n",
			sys.Balanced.MaxWorkload(), st.MaxDeg)
		stats, err := sys.TrainUnsupervised(es)
		check(err)
		auc, err := sys.EvaluateAUC(es.Test, es.TestNeg)
		check(err)
		printStats(stats, *epochs)
		fmt.Printf("test ROC-AUC: %.4f\n", auc)
		maybeSave(*save, sys)
		maybePublish(*publish, sys, g.Name, *seed, *epochs, auc, "roc-auc")
		runStats, finalMetric, metricName = stats, auc, "roc-auc"
	default:
		fatalf("unknown task %q", *task)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	if tr != nil {
		check(tr.WriteFile(*tracePth))
		fmt.Printf("trace: wrote %d events to %s\n", tr.Len(), *tracePth)
	}
	if *runOut != "" {
		m := report.NewManifest("lumos-train", os.Args[1:], *seed, time.Now().Unix())
		m.Dataset, m.Task, m.Backbone = g.Name, taskKind.String(), strings.ToLower(*backbone)
		m.Sched, m.Kernels, m.Rounds = schedMode.String(), *kernels, *epochs
		rw, err := report.NewWriter(*runOut, m)
		check(err)
		rows := report.RowsFromTrainStats(runStats)
		var totalBytes int64
		for _, row := range rows {
			check(rw.Round(row))
			totalBytes += row.Bytes
		}
		check(rw.Finish(report.Summary{
			MetricName: metricName, FinalMetric: finalMetric,
			WallClock:  runStats.MeasuredTime.Seconds(),
			TotalBytes: totalBytes,
		}, reg))
		fmt.Printf("run record: %s (%d epochs)\n", rw.Dir(), len(rows))
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		check(err)
		check(reg.WritePrometheus(f))
		check(f.Close())
		fmt.Printf("metrics: wrote %s\n", *metricsOut)
	}
	if *metricsOn {
		fmt.Println("metrics:")
		check(reg.WritePrometheus(os.Stdout))
	}
}

// hookPublishTelemetry routes snapshot publishes into the run's metrics
// and trace: a publish counter/size/duration, and a timeline instant.
func hookPublishTelemetry(tr *obs.Tracer, reg *obs.Registry) {
	pubs := reg.Counter("lumos_publish_total",
		"Versioned snapshots published")
	pubBytes := reg.Counter("lumos_publish_bytes_total",
		"Bytes of published snapshots")
	pubTime := reg.Histogram("lumos_publish_seconds",
		"Wall-clock time of one atomic snapshot publish", obs.LatencyBuckets)
	snapshot.PublishObserver = func(path string, version uint64, bytes int64, elapsed time.Duration) {
		pubs.Inc()
		pubBytes.Add(bytes)
		pubTime.Observe(elapsed.Seconds())
		if tr != nil {
			tr.Instant(0, "publish", "snapshot-publish", tr.Now(),
				map[string]any{"version": version, "bytes": bytes, "path": path})
		}
	}
}

func printStats(stats *core.TrainStats, epochs int) {
	n := len(stats.Losses)
	fmt.Printf("loss: %.4f -> %.4f over %d epochs\n", stats.Losses[0], stats.Losses[n-1], n)
	fmt.Printf("avg comm rounds per device per epoch: %.1f\n", stats.AvgCommRoundsPerDevice)
	fmt.Printf("estimated epoch time (straggler model): %v\n", stats.SimEpochTime.Round(time.Microsecond))
	fmt.Printf("measured training time: %v (%v/epoch)\n",
		stats.MeasuredTime.Round(time.Millisecond),
		(stats.MeasuredTime / time.Duration(epochs)).Round(time.Microsecond))
}

func maybeSave(path string, sys *core.System) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	check(err)
	if err := nn.SaveParams(f, sys); err != nil {
		f.Close()
		fatalf("%v", err)
	}
	// A failed close can mean buffered bytes never hit the disk; a silently
	// truncated checkpoint is worse than no checkpoint.
	check(f.Close())
	fmt.Printf("saved model parameters to %s\n", path)
}

func maybePublish(path string, sys *core.System, dataset string, seed int64, round int, metric float64, metricName string) {
	if path == "" {
		return
	}
	snap, err := snapshot.Capture(sys, snapshot.Meta{
		Dataset: dataset, Seed: seed, Round: round,
		Metric: metric, MetricName: metricName,
		CreatedUnix: time.Now().Unix(),
	})
	check(err)
	v, err := snapshot.PublishNext(path, snap)
	check(err)
	fmt.Printf("published snapshot v%d to %s\n", v, path)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lumos-train: "+format+"\n", args...)
	os.Exit(1)
}
