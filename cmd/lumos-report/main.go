// Command lumos-report is the analysis half of observability: it reads the
// run records lumos-sim/lumos-train write with -run-out and the traces they
// write with -trace, and answers the questions the raw telemetry can't —
// which device bounded each round, where wall-clock went, and whether a
// change regressed a baseline.
//
// Subcommands:
//
//	lumos-report run <dir>            render a run record (summary, rounds,
//	                                  metrics) as aligned tables, or
//	                                  markdown with -md
//	lumos-report trace <file>         analyze a trace file: per-round
//	                                  critical paths (-critical-path),
//	                                  straggler-blame table, device
//	                                  utilization
//	lumos-report diff <a> <b>         compare two run records under
//	                                  regression thresholds; exits 1 when
//	                                  the candidate regresses, making it a
//	                                  CI-able A/B gate
//
// Usage:
//
//	lumos-sim -rounds 20 -run-out runs/base
//	lumos-report run runs/base -md
//	lumos-report trace out.trace.json -critical-path -top 5
//	lumos-report diff runs/base runs/candidate -wall-tol 0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lumos/internal/eval"
	"lumos/internal/obs"
	"lumos/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(cmdRun(os.Args[2:]))
	case "trace":
		os.Exit(cmdTrace(os.Args[2:]))
	case "diff":
		os.Exit(cmdDiff(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "lumos-report: unknown subcommand %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  lumos-report run <dir> [-md]
  lumos-report trace <file> [-critical-path] [-top k] [-md]
  lumos-report diff <baseline> <candidate> [-md] [-metric-tol f] [-wall-tol f]
               [-bytes-tol f] [-energy-tol f] [-lower-better]
`)
}

// parseMixed parses a subcommand's arguments with flags and positionals
// interleaved in either order (the stdlib flag package stops at the first
// positional): it re-parses after each positional until everything is
// consumed, returning the positionals in order.
func parseMixed(fs *flag.FlagSet, args []string) []string {
	var pos []string
	for {
		fs.Parse(args) // ExitOnError: never returns on bad flags
		args = fs.Args()
		if len(args) == 0 {
			return pos
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
}

// render writes a table as text or markdown, separated by a blank line.
func render(t *eval.Table, md bool) {
	if md {
		t.RenderMarkdown(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
	fmt.Println()
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "lumos-report:", err)
	return 1
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("lumos-report run", flag.ExitOnError)
	md := fs.Bool("md", false, "render markdown tables instead of aligned text")
	pos := parseMixed(fs, args)
	if len(pos) != 1 {
		usage(os.Stderr)
		return 2
	}
	rec, warnings, err := report.LoadRunRecord(pos[0])
	if err != nil {
		return fail(err)
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "lumos-report: warning:", w)
	}
	m := rec.Manifest
	sum := &eval.Table{Title: "run " + pos[0], Columns: []string{"field", "value"}}
	sum.AddRow("tool", m.Tool)
	sum.AddRow("args", strings.Join(m.Args, " "))
	sum.AddRow("seed", m.Seed)
	if m.Dataset != "" {
		sum.AddRow("dataset", m.Dataset)
	}
	if m.Task != "" {
		sum.AddRow("task", m.Task)
	}
	if m.Sched != "" {
		sum.AddRow("sched", m.Sched)
	}
	if m.Fleet != "" {
		sum.AddRow("fleet", m.Fleet)
	}
	if m.Topology != "" {
		sum.AddRow("topology", m.Topology)
	}
	if m.Kernels != "" {
		sum.AddRow("kernels", m.Kernels)
	}
	sum.AddRow("rounds", m.Rounds)
	sum.AddRow("go", fmt.Sprintf("%s GOMAXPROCS=%d NumCPU=%d", m.GoVersion, m.GOMAXPROCS, m.NumCPU))
	if m.MetricName != "" {
		sum.AddRow("final "+m.MetricName, m.FinalMetric)
	}
	sum.AddRow("wall-clock", m.WallClock)
	sum.AddRow("total bytes", m.TotalBytes)
	sum.AddRow("total energy", m.TotalEnergy)
	render(sum, *md)

	if len(rec.Rounds) > 0 {
		rt := &eval.Table{Title: "rounds", Columns: []string{
			"round", "commit", "parts", "bytes", "energy", "loss", "metric"}}
		for _, r := range rec.Rounds {
			metric := ""
			if r.Evaluated {
				metric = fmt.Sprintf("%.4f", r.Metric)
			}
			rt.AddRow(r.Round, r.Commit, r.Participants, r.Bytes, r.Energy, r.Loss, metric)
		}
		render(rt, *md)
	}

	if len(rec.Metrics) > 0 {
		fmt.Printf("metrics.prom: %d series recorded\n", len(rec.Metrics))
	}
	return 0
}

func cmdTrace(args []string) int {
	fs := flag.NewFlagSet("lumos-report trace", flag.ExitOnError)
	md := fs.Bool("md", false, "render markdown tables instead of aligned text")
	critical := fs.Bool("critical-path", false, "print each round's critical-path chain")
	top := fs.Int("top", 10, "straggler-blame table size")
	pos := parseMixed(fs, args)
	if len(pos) != 1 {
		usage(os.Stderr)
		return 2
	}
	events, err := obs.ReadEventsFile(pos[0])
	if err != nil {
		return fail(err)
	}
	an, err := report.AnalyzeTrace(events, *top)
	if err != nil {
		return fail(err)
	}
	printAnalysis(an, *critical, *md)
	return 0
}

// printAnalysis renders a TraceAnalysis: blame table, device utilization,
// and (optionally) the per-round critical paths.
func printAnalysis(an *report.TraceAnalysis, critical, md bool) {
	blame := &eval.Table{Title: "straggler blame (who bounded commits)",
		Columns: []string{"device", "rounds", "time", "share"}}
	for _, b := range an.Blame {
		share := 0.0
		if an.Span > 0 {
			share = b.Time / an.Span
		}
		blame.AddRow(b.Device, b.Rounds, b.Time, fmt.Sprintf("%.1f%%", share*100))
	}
	render(blame, md)

	if len(an.Devices) > 0 {
		ut := &eval.Table{Title: "device utilization",
			Columns: []string{"device", "busy", "queue-wait", "idle", "busy%", "queue%", "idle%"}}
		for _, d := range an.Devices {
			ut.AddRow(d.Device, d.Busy, d.QueueWait, d.Idle,
				fmt.Sprintf("%.1f%%", d.BusyFrac*100),
				fmt.Sprintf("%.1f%%", d.QueueFrac*100),
				fmt.Sprintf("%.1f%%", d.IdleFrac*100))
		}
		render(ut, md)
	}

	if critical {
		cp := &eval.Table{Title: "critical paths",
			Columns: []string{"round", "commit", "straggler", "chain"}}
		for _, r := range an.Rounds {
			chain := make([]string, 0, len(r.Spans))
			for _, s := range r.Spans {
				hop := s.Name
				switch {
				case s.Name == "gossip-delta" && s.To >= 0:
					hop = fmt.Sprintf("%s[d%d->d%d]", s.Name, s.Device, s.To)
				case s.Device >= 0:
					hop = fmt.Sprintf("%s[d%d]", s.Name, s.Device)
				}
				chain = append(chain, fmt.Sprintf("%s %.3f-%.3f", hop, s.Start, s.End))
			}
			straggler := "-"
			if r.Straggler >= 0 {
				straggler = fmt.Sprintf("d%d", r.Straggler)
			}
			if r.Skipped {
				straggler = "skipped"
			}
			cp.AddRow(r.Round, r.Commit, straggler, strings.Join(chain, " -> "))
		}
		render(cp, md)
	}
}

func cmdDiff(args []string) int {
	fs := flag.NewFlagSet("lumos-report diff", flag.ExitOnError)
	opt := report.DefaultDiffOptions()
	md := fs.Bool("md", false, "render markdown tables instead of aligned text")
	fs.Float64Var(&opt.MetricTol, "metric-tol", opt.MetricTol, "tolerated absolute final-metric drop")
	fs.Float64Var(&opt.WallTol, "wall-tol", opt.WallTol, "tolerated relative wall-clock growth")
	fs.Float64Var(&opt.BytesTol, "bytes-tol", opt.BytesTol, "tolerated relative total-bytes growth")
	fs.Float64Var(&opt.EnergyTol, "energy-tol", opt.EnergyTol, "tolerated relative total-energy growth")
	fs.BoolVar(&opt.LowerMetricBetter, "lower-better", opt.LowerMetricBetter, "treat a lower final metric as better (loss-like)")
	pos := parseMixed(fs, args)
	if len(pos) != 2 {
		usage(os.Stderr)
		return 2
	}
	a, warnA, err := report.LoadRunRecord(pos[0])
	if err != nil {
		return fail(err)
	}
	b, warnB, err := report.LoadRunRecord(pos[1])
	if err != nil {
		return fail(err)
	}
	for _, w := range append(warnA, warnB...) {
		fmt.Fprintln(os.Stderr, "lumos-report: warning:", w)
	}
	res := report.Diff(a, b, opt)

	dt := &eval.Table{Title: fmt.Sprintf("diff %s -> %s", pos[0], pos[1]),
		Columns: []string{"quantity", "baseline", "candidate", "delta", "rel", "verdict"}}
	for _, d := range res.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		dt.AddRow(d.Name, d.A, d.B, d.Abs, fmt.Sprintf("%+.2f%%", d.Rel*100), verdict)
	}
	render(dt, *md)

	if res.RoundCountA != res.RoundCountB {
		fmt.Printf("round counts differ: baseline %d, candidate %d\n",
			res.RoundCountA, res.RoundCountB)
	}
	if len(res.Rounds) > 0 {
		// Show only rounds that moved, so a clean diff prints nothing here.
		moved := &eval.Table{Title: "per-round deltas (changed rounds only)",
			Columns: []string{"round", "commit delta", "loss delta", "bytes delta"}}
		for _, r := range res.Rounds {
			if r.CommitDelta == 0 && r.LossDelta == 0 && r.BytesDelta == 0 {
				continue
			}
			moved.AddRow(r.Round, r.CommitDelta, r.LossDelta, r.BytesDelta)
		}
		if len(moved.Rows) > 0 {
			render(moved, *md)
		}
	}

	if res.Regressed() {
		for _, r := range res.Regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return 1
	}
	fmt.Println("no regressions")
	return 0
}
