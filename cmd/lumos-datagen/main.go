// Command lumos-datagen generates, inspects, and stores the synthetic
// datasets that stand in for the paper's Facebook page-page and LastFM Asia
// crawls, plus sample device-fleet traces for the scenario simulator.
//
// Usage:
//
//	lumos-datagen -dataset facebook -scale 0.1             # stats only
//	lumos-datagen -dataset lastfm -out lastfm.bin          # save to disk
//	lumos-datagen -in lastfm.bin                           # inspect a file
//	lumos-datagen -traces -devices 48 -out fleet.csv       # fleet trace
//	lumos-datagen -traces -devices 8                       # trace to stdout
//
// -traces writes a FedScale-style fleet trace (internal/fleet schema:
// per-device compute/bandwidth/latency/power multipliers plus an optional
// periodic availability cycle) in CSV, or JSON when -out ends in .json —
// the file lumos-sim consumes via -fleet trace:<path>. The sample fleet
// mixes mid-range, flagship (fast, power-hungry), and constrained diurnal
// devices, deterministically from -seed, so tests and the smoke suite
// never depend on external downloads.
package main

import (
	"flag"
	"fmt"
	"os"

	"lumos/internal/fleet"
	"lumos/internal/graph"
	"lumos/internal/metrics"
)

func main() {
	var (
		dataset = flag.String("dataset", "facebook", "facebook|lastfm")
		scale   = flag.Float64("scale", 0.1, "preset scale (0,1]")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "write the dataset (or trace) to this file")
		in      = flag.String("in", "", "inspect an existing dataset file instead of generating")
		traces  = flag.Bool("traces", false, "emit a sample device-fleet trace instead of a dataset")
		devices = flag.Int("devices", 48, "trace mode: number of devices to sample")
	)
	flag.Parse()

	if *traces {
		emitTrace(*devices, *seed, *out)
		return
	}

	var g *graph.Graph
	var err error
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		check(ferr)
		g, err = graph.Read(f)
		f.Close()
	case *dataset == "facebook" || *dataset == "fb":
		g, err = graph.FacebookLike(*scale, *seed)
	case *dataset == "lastfm" || *dataset == "lf":
		g, err = graph.LastFMLike(*scale, *seed)
	default:
		fatalf("unknown dataset %q", *dataset)
	}
	check(err)

	st := g.ComputeStats()
	fmt.Printf("name:          %s\n", g.Name)
	fmt.Printf("vertices:      %d\n", st.N)
	fmt.Printf("edges:         %d\n", st.M)
	fmt.Printf("avg degree:    %.2f\n", st.AvgDeg)
	fmt.Printf("max degree:    %d\n", st.MaxDeg)
	fmt.Printf("degree gini:   %.3f\n", st.DegreeGini)
	fmt.Printf("top-1%% degree: %.1f%% of all edges\n", 100*st.Top1PctDegreeMass)
	fmt.Printf("features:      %d\n", st.FeatureDim)
	fmt.Printf("classes:       %d\n", st.Classes)

	cdf := metrics.NewCDF(g.Degrees())
	fmt.Printf("degree quantiles: p50=%d p90=%d p99=%d max=%d\n",
		cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99), cdf.Max())

	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		check(g.Write(f))
		check(f.Close())
		fi, err := os.Stat(*out)
		check(err)
		fmt.Printf("wrote %s (%d bytes)\n", *out, fi.Size())
	}
}

// emitTrace samples a deterministic fleet trace and writes it to path (CSV,
// or JSON when the extension is .json), or to stdout as CSV when path is
// empty. A summary of the sampled population is printed either way.
func emitTrace(devices int, seed int64, path string) {
	tr, err := fleet.SampleTrace(devices, seed)
	check(err)
	cycled, minC, maxC := 0, tr.Devices[0].Compute, tr.Devices[0].Compute
	for _, p := range tr.Devices {
		if p.Period > 0 {
			cycled++
		}
		if p.Compute < minC {
			minC = p.Compute
		}
		if p.Compute > maxC {
			maxC = p.Compute
		}
	}
	// In stdout mode the summary goes to stderr so the CSV on stdout stays
	// loadable when redirected to a file.
	summary := os.Stdout
	if path == "" {
		summary = os.Stderr
	}
	fmt.Fprintf(summary, "fleet trace %s: %d devices, compute multipliers %.3f-%.3f, %d with availability cycles\n",
		tr.Name, len(tr.Devices), minC, maxC, cycled)
	if path == "" {
		check(tr.WriteCSV(os.Stdout))
		return
	}
	check(tr.Save(path))
	fi, err := os.Stat(path)
	check(err)
	fmt.Printf("wrote %s (%d bytes); run lumos-sim -fleet trace:%s\n", path, fi.Size(), path)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lumos-datagen: "+format+"\n", args...)
	os.Exit(1)
}
