// Command lumos-datagen generates, inspects, and stores the synthetic
// datasets that stand in for the paper's Facebook page-page and LastFM Asia
// crawls.
//
// Usage:
//
//	lumos-datagen -dataset facebook -scale 0.1             # stats only
//	lumos-datagen -dataset lastfm -out lastfm.bin          # save to disk
//	lumos-datagen -in lastfm.bin                           # inspect a file
package main

import (
	"flag"
	"fmt"
	"os"

	"lumos/internal/graph"
	"lumos/internal/metrics"
)

func main() {
	var (
		dataset = flag.String("dataset", "facebook", "facebook|lastfm")
		scale   = flag.Float64("scale", 0.1, "preset scale (0,1]")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "write the dataset to this file")
		in      = flag.String("in", "", "inspect an existing dataset file instead of generating")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		check(ferr)
		g, err = graph.Read(f)
		f.Close()
	case *dataset == "facebook" || *dataset == "fb":
		g, err = graph.FacebookLike(*scale, *seed)
	case *dataset == "lastfm" || *dataset == "lf":
		g, err = graph.LastFMLike(*scale, *seed)
	default:
		fatalf("unknown dataset %q", *dataset)
	}
	check(err)

	st := g.ComputeStats()
	fmt.Printf("name:          %s\n", g.Name)
	fmt.Printf("vertices:      %d\n", st.N)
	fmt.Printf("edges:         %d\n", st.M)
	fmt.Printf("avg degree:    %.2f\n", st.AvgDeg)
	fmt.Printf("max degree:    %d\n", st.MaxDeg)
	fmt.Printf("degree gini:   %.3f\n", st.DegreeGini)
	fmt.Printf("top-1%% degree: %.1f%% of all edges\n", 100*st.Top1PctDegreeMass)
	fmt.Printf("features:      %d\n", st.FeatureDim)
	fmt.Printf("classes:       %d\n", st.Classes)

	cdf := metrics.NewCDF(g.Degrees())
	fmt.Printf("degree quantiles: p50=%d p90=%d p99=%d max=%d\n",
		cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99), cdf.Max())

	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		check(g.Write(f))
		check(f.Close())
		fi, err := os.Stat(*out)
		check(err)
		fmt.Printf("wrote %s (%d bytes)\n", *out, fi.Size())
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lumos-datagen: "+format+"\n", args...)
	os.Exit(1)
}
