package main

// The -serve benchmark measures the serving side of the train→publish→serve
// loop: it trains a small model, publishes snapshot v1, replays a
// zipf-distributed query workload against a live lumos-serve replica, then
// hot-swaps to a republished v2 under load. Results (p50/p99 latency, QPS,
// versions observed) land in a JSON file for trend tracking.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"lumos/internal/core"
	"lumos/internal/graph"
	"lumos/internal/obs"
	"lumos/internal/serve"
	"lumos/internal/snapshot"
)

type serveBenchConfig struct {
	fbScale float64
	epochs  int
	mcmc    int
	queries int
	conc    int
	out     string
	seed    int64
}

type serveBenchReport struct {
	Dataset   string            `json:"dataset"`
	Nodes     int               `json:"nodes"`
	Headline  *serve.LoadReport `json:"headline"`
	HotSwap   *serve.LoadReport `json:"hotswap"`
	SwapLatMs float64           `json:"swap_latency_ms"`
	Versions  []uint64          `json:"versions_published"`
	// Run metadata, so perf trajectories stay interpretable across boxes
	// and toolchains.
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Args       []string `json:"args"`
	GeneratedS int64    `json:"generated_unix"`
	// Metrics is the replica's final /metrics scrape (Prometheus samples,
	// flattened name -> value): batch sizes, per-endpoint latency buckets,
	// swap count, serving version.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func runServeBench(cfg serveBenchConfig) error {
	g, err := graph.LoadDataset("facebook", cfg.fbScale, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Printf("serve bench: dataset %s N=%d\n", g.Name, g.N)

	rng := rand.New(rand.NewSource(cfg.seed))
	split, err := graph.SplitNodes(g, 0.5, 0.25, rng)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(g, g, core.Config{
		Task: core.Supervised, Epochs: cfg.epochs, MCMCIterations: cfg.mcmc, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}
	if _, err := sys.TrainSupervised(split); err != nil {
		return err
	}

	path := filepath.Join(os.TempDir(), fmt.Sprintf("lumos-bench-serve-%d.snap", os.Getpid()))
	defer os.Remove(path)
	publish := func(round int) (uint64, *serve.Bundle, error) {
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		if err != nil {
			return 0, nil, err
		}
		snap, err := snapshot.Capture(sys, snapshot.Meta{
			Dataset: g.Name, Seed: cfg.seed, Round: round,
			Metric: acc, MetricName: "accuracy", CreatedUnix: time.Now().Unix(),
		})
		if err != nil {
			return 0, nil, err
		}
		v, err := snapshot.PublishNext(path, snap)
		if err != nil {
			return 0, nil, err
		}
		loaded, err := snapshot.Read(path)
		if err != nil {
			return 0, nil, err
		}
		b, err := serve.NewBundle(loaded)
		return v, b, err
	}

	srv := serve.New(serve.Options{Metrics: obs.New()})
	defer srv.Close()
	v1, b1, err := publish(cfg.epochs)
	if err != nil {
		return err
	}
	srv.Swap(b1)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Headline phase: steady-state latency and throughput at v1.
	headline, err := serve.RunLoad(serve.LoadConfig{
		BaseURL: base, Queries: cfg.queries, Concurrency: cfg.conc,
		Nodes: g.N, ClassifyFrac: 0.7, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("serve bench: v%d  p50 %.3fms  p99 %.3fms  %.0f qps\n",
		v1, headline.P50ms, headline.P99ms, headline.QPS)

	// Hot-swap phase: train further, republish, swap under load.
	if _, err := sys.TrainSupervised(split); err != nil {
		return err
	}
	v2, b2, err := publish(2 * cfg.epochs)
	if err != nil {
		return err
	}
	swapStart := time.Now()
	if !srv.Swap(b2) {
		return fmt.Errorf("serve bench: swap to v%d rejected", v2)
	}
	swapLat := time.Since(swapStart)
	hotswap, err := serve.RunLoad(serve.LoadConfig{
		BaseURL: base, Queries: cfg.queries / 4, Concurrency: cfg.conc,
		Nodes: g.N, ClassifyFrac: 0.7, Seed: cfg.seed + 1,
	})
	if err != nil {
		return err
	}
	if hotswap.Regressions > 0 || headline.Regressions > 0 {
		return fmt.Errorf("serve bench: observed %d version regressions",
			hotswap.Regressions+headline.Regressions)
	}
	if hotswap.MaxVersion != v2 {
		return fmt.Errorf("serve bench: post-swap queries saw v%d, want v%d", hotswap.MaxVersion, v2)
	}
	fmt.Printf("serve bench: v%d  p50 %.3fms  p99 %.3fms  %.0f qps  (swap %.3fms)\n",
		v2, hotswap.P50ms, hotswap.P99ms, hotswap.QPS, float64(swapLat)/float64(time.Millisecond))

	// Final scrape: the replica's own runtime metrics ride along in the
	// report, so a regression shows up with its serving-side context
	// (batch sizes, queue behavior, swap count) attached.
	metrics, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	if metrics["lumos_serve_swaps_total"] < 2 {
		return fmt.Errorf("serve bench: /metrics reports %v swaps, want >= 2",
			metrics["lumos_serve_swaps_total"])
	}

	rep := serveBenchReport{
		Dataset:    g.Name,
		Nodes:      g.N,
		Headline:   headline,
		HotSwap:    hotswap,
		SwapLatMs:  float64(swapLat) / float64(time.Millisecond),
		Versions:   []uint64{v1, v2},
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Args:       os.Args[1:],
		GeneratedS: time.Now().Unix(),
		Metrics:    metrics,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serve bench: wrote %s\n", cfg.out)
	return nil
}

// scrapeMetrics fetches and parses the replica's Prometheus /metrics.
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("serve bench: scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve bench: scraping /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve bench: reading /metrics: %w", err)
	}
	return obs.ParsePrometheus(string(body))
}
