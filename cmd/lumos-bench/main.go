// Command lumos-bench regenerates the paper's evaluation artifacts
// (Figs. 3–8 and the §I headline claims) and prints them as aligned tables
// or CSV.
//
// Usage:
//
//	lumos-bench -exp fig3                 # one experiment
//	lumos-bench -exp all -epochs 100      # the full suite, longer training
//	lumos-bench -exp fig7 -csv            # CSV output (full CDF curves)
//	lumos-bench -serve                    # serving latency/QPS -> BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lumos/internal/core"
	"lumos/internal/eval"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig3|fig4|fig5|fig6|fig7|fig8|headline|all")
		fbScale = flag.Float64("fbscale", 0.02, "Facebook preset scale (0,1]")
		lfScale = flag.Float64("lfscale", 0.1, "LastFM preset scale (0,1]")
		epochs  = flag.Int("epochs", 60, "training epochs per system (paper: 300)")
		mcmc    = flag.Int("mcmc", 150, "MCMC tree-trimming iterations (paper: 1000 FB / 300 LastFM)")
		eps     = flag.Float64("eps", 2, "privacy budget epsilon")
		secure  = flag.Bool("secure", false, "run real OT-based secure comparisons (slower, same results)")
		bbs     = flag.String("backbones", "gcn,gat", "comma-separated backbones: gcn,gat")
		dss     = flag.String("datasets", "facebook,lastfm", "comma-separated datasets: facebook,lastfm")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed    = flag.Int64("seed", 42, "experiment seed")
		workers = flag.Int("workers", 0, "training worker pool size (0 = one per CPU; results identical)")
		sched   = flag.String("sched", "sync", "round scheduling: sync|async (staleness-bounded)")
		stale   = flag.Int("staleness", 0, "async gradient staleness bound in epochs (0 = default)")
		noTape  = flag.Bool("notapereuse", false, "rebuild the autodiff tape every epoch instead of recycling it (debugging; identical results)")
		kernels = flag.String("kernels", "", "tensor kernel path: blocked (default) | reference (scalar cross-check loops; identical results)")

		serveBench   = flag.Bool("serve", false, "benchmark the serving path (train, publish, replay zipf queries, hot-swap) instead of the paper experiments")
		serveQueries = flag.Int("serve-queries", 4000, "total queries in the -serve headline phase")
		serveConc    = flag.Int("serve-conc", 8, "concurrent load-generator workers for -serve")
		serveOut     = flag.String("serve-out", "BENCH_serve.json", "where -serve writes its latency/QPS report")
	)
	flag.Parse()

	// Applied process-wide up front so both the paper experiments and the
	// -serve path honor it.
	kp, err := tensor.ParseKernelPath(*kernels)
	if err != nil {
		fatalf("%v", err)
	}
	tensor.SetKernelPath(kp)

	if *serveBench {
		check(runServeBench(serveBenchConfig{
			fbScale: *fbScale, epochs: *epochs, mcmc: *mcmc,
			queries: *serveQueries, conc: *serveConc, out: *serveOut, seed: *seed,
		}))
		return
	}

	schedMode, err := core.ParseSched(*sched)
	if err != nil {
		fatalf("%v", err)
	}
	opts := eval.Options{
		Kernels:        *kernels,
		FacebookScale:  *fbScale,
		LastFMScale:    *lfScale,
		Epochs:         *epochs,
		Epsilon:        *eps,
		MCMCIterations: *mcmc,
		SecureCompare:  *secure,
		Workers:        *workers,
		Sched:          schedMode,
		Staleness:      *stale,
		NoTapeReuse:    *noTape,
		Seed:           *seed,
	}
	for _, b := range strings.Split(*bbs, ",") {
		switch strings.TrimSpace(strings.ToLower(b)) {
		case "gcn":
			opts.Backbones = append(opts.Backbones, nn.GCN)
		case "gat":
			opts.Backbones = append(opts.Backbones, nn.GAT)
		case "":
		default:
			fatalf("unknown backbone %q", b)
		}
	}
	for _, d := range strings.Split(*dss, ",") {
		switch strings.TrimSpace(strings.ToLower(d)) {
		case "facebook", "fb":
			opts.Datasets = append(opts.Datasets, eval.DatasetFacebook)
		case "lastfm", "lf":
			opts.Datasets = append(opts.Datasets, eval.DatasetLastFM)
		case "":
		default:
			fatalf("unknown dataset %q", d)
		}
	}

	wanted := strings.Split(strings.ToLower(*exp), ",")
	has := func(name string) bool {
		for _, w := range wanted {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	start := time.Now()
	emit := func(t *eval.Table) {
		var err error
		if *csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatalf("rendering: %v", err)
		}
	}

	// The headline experiment re-runs Fig. 3 and Fig. 8 and prints their
	// tables, so skip the standalone runs when it is also selected.
	if has("fig3") && !has("headline") {
		rs, err := eval.RunFig3(opts)
		check(err)
		emit(eval.Fig3Table(rs))
	}
	if has("fig4") {
		rs, err := eval.RunFig4(opts)
		check(err)
		emit(eval.Fig4Table(rs))
	}
	if has("fig5") {
		rs, err := eval.RunFig5(opts)
		check(err)
		emit(eval.Fig5Table(rs))
	}
	if has("fig6") {
		rs, err := eval.RunFig6(opts)
		check(err)
		emit(eval.Fig6Table(rs))
	}
	if has("fig7") {
		rs, err := eval.RunFig7(opts)
		check(err)
		emit(eval.Fig7Table(rs))
		if *csv {
			emit(eval.Fig7CDFTable(rs))
		}
	}
	if has("fig8") && !has("headline") {
		rs, err := eval.RunFig8(opts)
		check(err)
		emit(eval.Fig8Table(rs))
	}
	if has("headline") {
		h, f3, f8, err := eval.RunHeadline(opts)
		check(err)
		emit(eval.Fig3Table(f3))
		emit(eval.Fig8Table(f8))
		emit(eval.HeadlineTable(h))
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Second))
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lumos-bench: "+format+"\n", args...)
	os.Exit(1)
}
