package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccuracyBasic(t *testing.T) {
	acc, err := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestAccuracyMasked(t *testing.T) {
	pred := []int{1, 0, 1, 0}
	truth := []int{1, 1, 1, 1}
	mask := []bool{true, false, true, false}
	acc, err := Accuracy(pred, truth, mask)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("masked accuracy = %v", acc)
	}
}

func TestAccuracyErrors(t *testing.T) {
	if _, err := Accuracy([]int{1}, []int{1, 2}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Accuracy([]int{1}, []int{1}, []bool{true, false}); err == nil {
		t.Fatal("mask mismatch must error")
	}
	if _, err := Accuracy([]int{1}, []int{1}, []bool{false}); err == nil {
		t.Fatal("empty mask must error")
	}
}

func TestROCAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	auc, err := ROCAUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	inv, _ := ROCAUC(scores, []bool{false, false, true, true})
	if inv != 0 {
		t.Fatalf("inverted AUC = %v", inv)
	}
}

func TestROCAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	auc, err := ROCAUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.02 {
		t.Fatalf("random AUC = %v", auc)
	}
}

func TestROCAUCTiesGiveHalfCredit(t *testing.T) {
	// All scores equal → AUC exactly 0.5 with midranks.
	auc, err := ROCAUC([]float64{1, 1, 1, 1}, []bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("tied AUC = %v", auc)
	}
}

func TestROCAUCErrors(t *testing.T) {
	if _, err := ROCAUC([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := ROCAUC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Fatal("single class must error")
	}
}

func TestQuickROCAUCComplementSymmetry(t *testing.T) {
	// AUC(scores, labels) + AUC(scores, ¬labels) == 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*10) / 10 // induce ties
			labels[i] = rng.Intn(2) == 0
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		inv := make([]bool, n)
		for i := range inv {
			inv[i] = !labels[i]
		}
		a1, err1 := ROCAUC(scores, labels)
		a2, err2 := ROCAUC(scores, inv)
		return err1 == nil && err2 == nil && math.Abs(a1+a2-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]int{5, 1, 3, 3, 9})
	if c.At(0) != 0 {
		t.Fatalf("At(0) = %v", c.At(0))
	}
	if c.At(3) != 0.6 {
		t.Fatalf("At(3) = %v", c.At(3))
	}
	if c.At(9) != 1 || c.At(100) != 1 {
		t.Fatal("upper tail wrong")
	}
	if c.Max() != 9 {
		t.Fatalf("Max = %d", c.Max())
	}
	if c.Quantile(0.5) != 3 {
		t.Fatalf("median = %d", c.Quantile(0.5))
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 9 {
		t.Fatal("extreme quantiles wrong")
	}
	xs, ps := c.Points()
	if len(xs) != 4 { // distinct values 1,3,5,9
		t.Fatalf("points = %v", xs)
	}
	if ps[len(ps)-1] != 1 {
		t.Fatal("last CDF point must be 1")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Max() != 0 || c.Quantile(0.5) != 0 {
		t.Fatal("empty CDF must be all zeros")
	}
}

func TestMeanStd(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if got := Std([]float64{2, 4}); got != 1 {
		t.Fatalf("std = %v", got)
	}
	if Std([]float64{1}) != 0 {
		t.Fatal("single-sample std must be 0")
	}
}

func TestRelChange(t *testing.T) {
	if RelChange(1.5, 1.0) != 0.5 {
		t.Fatal("rel change wrong")
	}
	if !math.IsInf(RelChange(1, 0), 1) {
		t.Fatal("rel change vs 0 must be +Inf")
	}
}
