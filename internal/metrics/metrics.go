// Package metrics implements the evaluation measures of the paper's §VIII:
// classification accuracy, ROC-AUC for link prediction (Fig. 4), and the
// workload CDF used in Fig. 7, plus small summary-statistic helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of indices where pred matches truth,
// restricted to mask (nil mask = all indices).
func Accuracy(pred, truth []int, mask []bool) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: %d predictions for %d labels", len(pred), len(truth))
	}
	if mask != nil && len(mask) != len(pred) {
		return 0, fmt.Errorf("metrics: mask length %d for %d predictions", len(mask), len(pred))
	}
	total, correct := 0, 0
	for i := range pred {
		if mask != nil && !mask[i] {
			continue
		}
		total++
		if pred[i] == truth[i] {
			correct++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("metrics: empty evaluation set")
	}
	return float64(correct) / float64(total), nil
}

// ROCAUC returns the area under the ROC curve for scores with binary
// labels, using the rank statistic with midranks for ties: the probability
// that a random positive outscores a random negative (paper §VIII-B).
func ROCAUC(scores []float64, positive []bool) (float64, error) {
	if len(scores) != len(positive) {
		return 0, fmt.Errorf("metrics: %d scores for %d labels", len(scores), len(positive))
	}
	n := len(scores)
	pos, neg := 0, 0
	for _, p := range positive {
		if p {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("metrics: ROC-AUC needs both classes (pos=%d neg=%d)", pos, neg)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Midranks over tied groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	sumPos := 0.0
	for i, p := range positive {
		if p {
			sumPos += ranks[i]
		}
	}
	auc := (sumPos - float64(pos)*(float64(pos)+1)/2) / (float64(pos) * float64(neg))
	return auc, nil
}

// CDF is an empirical cumulative distribution over integer samples.
type CDF struct {
	sorted []int
}

// NewCDF builds an empirical CDF from values.
func NewCDF(values []int) *CDF {
	s := append([]int(nil), values...)
	sort.Ints(s)
	return &CDF{sorted: s}
}

// At returns P[X ≤ x].
func (c *CDF) At(x int) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchInts(c.sorted, x+1)
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest value v with P[X ≤ v] ≥ p.
func (c *CDF) Quantile(p float64) int {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Max returns the largest sample.
func (c *CDF) Max() int {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns the (value, cumulative probability) series for plotting,
// one point per distinct value — the Fig. 7 curves.
func (c *CDF) Points() ([]int, []float64) {
	var xs []int
	var ps []float64
	n := len(c.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && c.sorted[j] == c.sorted[i] {
			j++
		}
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(j)/float64(n))
		i = j
	}
	return xs, ps
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RelChange returns (a−b)/b, the relative-difference statistic the paper
// reports ("Lumos outperforms X with a Y% increase").
func RelChange(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return (a - b) / b
}
