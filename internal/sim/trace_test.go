package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"lumos/internal/core"
	"lumos/internal/obs"
)

// traceRun plays a fixed scenario through the simulator with a virtual-clock
// tracer attached and returns the Chrome trace-event bytes.
func traceRun(t *testing.T, seed int64) []byte {
	t.Helper()
	sys, split := simSystem(t, core.SchedSync, 0, 1, seed)
	tr := obs.NewVirtualTracer()
	s, err := New(sys, Scenario{
		Rounds: 4, Churn: 0.2, Participation: 0.8, EvalEvery: 2,
		Seed: seed, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(core.NewSupervisedObjective(split)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSimTraceDeterministic pins the acceptance criterion that the trace a
// fixed-seed run emits is byte-reproducible: the simulator is
// single-threaded, so event order — and therefore the serialized trace —
// must not vary between runs.
func TestSimTraceDeterministic(t *testing.T) {
	a := traceRun(t, 11)
	b := traceRun(t, 11)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	if c := traceRun(t, 12); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSimTraceChromeStructure validates the emitted document against the
// Chrome trace-event format Perfetto loads: a traceEvents array whose
// entries carry name/ph/ts(+dur for spans), with the track-naming metadata
// and the round/device spans the simulator promises.
func TestSimTraceChromeStructure(t *testing.T) {
	raw := traceRun(t, 5)

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	names := map[string]int{}  // event name -> count, for promised events
	phases := map[string]int{} // ph -> count
	aggTrack := false
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
		names[e.Name]++
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				t.Fatalf("span %q has negative dur %v", e.Name, e.Dur)
			}
		case "M":
			if e.Name != "thread_name" {
				t.Fatalf("metadata event %q, want thread_name", e.Name)
			}
			if e.TID == 0 && e.Args["name"] == "aggregator" {
				aggTrack = true
			}
		case "i":
			// instants carry no dur
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.PID != 1 {
			t.Fatalf("event %q on pid %d, want 1", e.Name, e.PID)
		}
	}
	if phases["X"] == 0 || phases["M"] == 0 || phases["i"] == 0 {
		t.Fatalf("missing phases: %v", phases)
	}
	if !aggTrack {
		t.Fatal("no thread_name metadata for the aggregator track")
	}
	for _, want := range []string{"round", "compute", "commit"} {
		if names[want] == 0 {
			t.Fatalf("no %q events in trace (have %v)", want, names)
		}
	}

	// Round spans must carry the args the Perfetto UI surfaces.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "round" {
			for _, k := range []string{"round", "participants", "loss"} {
				if _, ok := e.Args[k]; !ok {
					t.Fatalf("round span missing arg %q: %v", k, e.Args)
				}
			}
			break
		}
	}
}

// TestSimMetricsRegistered checks the simulator's registry surface: after a
// run with a Metrics registry attached, the promised lumos_sim_* series
// exist and are consistent with the result.
func TestSimMetricsRegistered(t *testing.T) {
	sys, split := simSystem(t, core.SchedSync, 0, 1, 9)
	reg := obs.New()
	s, err := New(sys, Scenario{Rounds: 3, Seed: 9, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := obs.ParsePrometheus(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["lumos_sim_rounds_total"]; got != float64(len(res.Timeline)) {
		t.Fatalf("lumos_sim_rounds_total = %v, want %d", got, len(res.Timeline))
	}
	if got := vals["lumos_sim_bytes_total"]; got != float64(res.TotalBytes) {
		t.Fatalf("lumos_sim_bytes_total = %v, want %d", got, res.TotalBytes)
	}
	if _, ok := vals["lumos_sim_round_seconds_count"]; !ok {
		t.Fatal("lumos_sim_round_seconds histogram not exported")
	}
}
