package sim

import (
	"math/rand"
	"strconv"
	"testing"

	"lumos/internal/core"
	"lumos/internal/graph"
)

// These timelines were recorded at commit fa4bb06 — before the fleet
// subsystem, aggregator contention, and energy accounting existed — on the
// simulator whose links were all independent. They freeze the equivalence
// contract of the contention refactor: with aggregator capacity left at
// zero (infinite — the default cost model), the M/G/1 server and the energy
// accounting must not perturb a single bit of the simulated timeline, under
// either scheduling discipline. Values are hex floats, compared exactly.

type goldenRound struct {
	round         int
	start, commit string // hex float64
	avail, part   int
	bytes         int64
	loss          string // hex float64
}

var preFleetGolden = map[core.Sched]struct {
	rounds []goldenRound
	final  string
	wall   string
	bytes  int64
}{
	core.SchedSync: {
		rounds: []goldenRound{
			{0, "0x0p+00", "0x1.0877cc5655874p-05", 80, 60, 486864, "0x1.59e5bb492b355p-01"},
			{1, "0x1.0877cc5655874p-05", "0x1.f1a6fcaf0cefdp-05", 55, 42, 381312, "0x1.528012e83a606p-01"},
			{2, "0x1.f1a6fcaf0cefdp-05", "0x1.7a55adcdedddep-04", 52, 39, 378792, "0x1.57b95cb0779bep-01"},
			{3, "0x1.7a55adcdedddep-04", "0x1.f0f270f9cf182p-04", 48, 36, 351216, "0x1.46a7deed3baep-01"},
			{4, "0x1.f0f270f9cf182p-04", "0x1.42531faa76c87p-03", 52, 39, 389736, "0x1.32eeb0c1f30fp-01"},
			{5, "0x1.42531faa76c87p-03", "0x1.847112c00c2a4p-03", 57, 43, 410568, "0x1.27d5a07c71aecp-01"},
			{6, "0x1.847112c00c2a4p-03", "0x1.c68f05d5a18c1p-03", 48, 36, 338256, "0x1.2b5efe84fee51p-01"},
			{7, "0x1.c68f05d5a18c1p-03", "0x1.065775c91293p-02", 56, 42, 416448, "0x1.1a630c77d96cap-01"},
		},
		final: "0x1.999999999999ap-01",
		wall:  "0x1.065775c91293p-02",
		bytes: 3153192,
	},
	core.SchedAsync: {
		rounds: []goldenRound{
			{0, "0x0p+00", "0x1.615a0c1bdd0c8p-07", 80, 60, 486864, "0x1.59e5bb492b355p-01"},
			{1, "0x1.615a0c1bdd0c8p-07", "0x1.e6bc967647064p-07", 55, 42, 341712, "0x1.52ad073e8bf1bp-01"},
			{2, "0x1.e6bc967647064p-07", "0x1.5dc6c885131ccp-04", 52, 39, 313992, "0x1.57802471fd1c6p-01"},
			{3, "0x1.5dc6c885131ccp-04", "0x1.5dc6c885131ccp-04", 48, 36, 304416, "0x1.472b8365edbccp-01"},
			{4, "0x1.5dc6c885131ccp-04", "0x1.5dc6c885131ccp-04", 52, 39, 339336, "0x1.33c6a7b6e4a3dp-01"},
			{5, "0x1.5dc6c885131ccp-04", "0x1.8874d0e2496adp-04", 57, 43, 360168, "0x1.28a0e302897fcp-01"},
			{6, "0x1.8874d0e2496adp-04", "0x1.951106dea8456p-04", 48, 36, 309456, "0x1.2ae63231cac8dp-01"},
			{7, "0x1.951106dea8456p-04", "0x1.753d3d8349b3dp-03", 56, 42, 369648, "0x1.1b1d6a4913fc9p-01"},
		},
		final: "0x1.999999999999ap-01",
		wall:  "0x1.753d3d8349b3dp-03",
		bytes: 2825592,
	},
}

func hexFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad golden hex float %q: %v", s, err)
	}
	return v
}

// TestPreFleetTimelineGolden replays the frozen scenario through the
// current simulator with contention disabled and checks bit-identity.
func TestPreFleetTimelineGolden(t *testing.T) {
	for sched, want := range preFleetGolden {
		stale := 0
		if sched == core.SchedAsync {
			stale = 2
		}
		g, err := graph.Generate(graph.GenConfig{
			Name: "sim", N: 80, M: 360, Classes: 2, FeatureDim: 10,
			PowerLaw: 2.2, Homophily: 0.85, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(g, g, core.Config{
			Task: core.Supervised, MCMCIterations: 15, Shards: g.N,
			Sched: sched, Staleness: stale, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(sys, churnScenario(8))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Timeline) != len(want.rounds) {
			t.Fatalf("%v: %d rounds, want %d", sched, len(res.Timeline), len(want.rounds))
		}
		for i, w := range want.rounds {
			rs := res.Timeline[i]
			if rs.Round != w.round || rs.Available != w.avail || rs.Participants != w.part || rs.Bytes != w.bytes {
				t.Errorf("%v round %d: got (avail=%d part=%d bytes=%d), want (%d %d %d)",
					sched, i, rs.Available, rs.Participants, rs.Bytes, w.avail, w.part, w.bytes)
			}
			if rs.Start != hexFloat(t, w.start) || rs.Commit != hexFloat(t, w.commit) {
				t.Errorf("%v round %d: clock (start=%x commit=%x), want (%s %s)",
					sched, i, rs.Start, rs.Commit, w.start, w.commit)
			}
			if rs.Loss != hexFloat(t, w.loss) {
				t.Errorf("%v round %d: loss %x, want %s", sched, i, rs.Loss, w.loss)
			}
		}
		if res.FinalMetric != hexFloat(t, want.final) {
			t.Errorf("%v: final metric %x, want %s", sched, res.FinalMetric, want.final)
		}
		if res.WallClock != hexFloat(t, want.wall) {
			t.Errorf("%v: wall clock %x, want %s", sched, res.WallClock, want.wall)
		}
		if res.TotalBytes != want.bytes {
			t.Errorf("%v: total bytes %d, want %d", sched, res.TotalBytes, want.bytes)
		}
	}
}
