package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"lumos/internal/core"
	"lumos/internal/graph"
	"lumos/internal/topo"
)

// gossipSystem assembles a small supervised system scheduled for gossip —
// one device per shard, like simSystem, but sized down because every gossip
// round drives one engine round per participant.
func gossipSystem(t testing.TB, workers int, seed int64) (*core.System, *graph.NodeSplit) {
	t.Helper()
	return smallSystem(t, core.SchedGossip, workers, seed)
}

func smallSystem(t testing.TB, sched core.Sched, workers int, seed int64) (*core.System, *graph.NodeSplit) {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "gossip", N: 16, M: 70, Classes: 2, FeatureDim: 8,
		PowerLaw: 2.2, Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, g, core.Config{
		Task: core.Supervised, MCMCIterations: 10, Shards: g.N,
		Sched: sched, Workers: workers, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, split
}

func mustTopo(t testing.TB, spec string, n int, seed int64) *topo.Topology {
	t.Helper()
	sp, err := topo.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := sp.Build(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func runGossipScenario(t testing.TB, workers int, sc Scenario) *Result {
	t.Helper()
	sys, split := gossipSystem(t, workers, 31)
	sc.Topology = mustTopo(t, "ring:4", sys.G.N, 31)
	sim, err := New(sys, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The decentralized timeline is bit-identical in the worker count: same
// seed, same scenario — DeepEqual timelines for Workers 1 vs 8, and across
// repeated runs.
func TestGossipDeterminismAcrossWorkers(t *testing.T) {
	sc := Scenario{
		Fleet: FleetZipf, Rounds: 4, Churn: 0.2, Participation: 0.8,
		EvalEvery: 2, Seed: 7,
	}
	base := runGossipScenario(t, 1, sc)
	for _, workers := range []int{1, 8} {
		res := runGossipScenario(t, workers, sc)
		if !reflect.DeepEqual(base.Timeline, res.Timeline) {
			t.Fatalf("gossip timeline differs at workers=%d", workers)
		}
		if base.FinalMetric != res.FinalMetric {
			t.Fatalf("final metric drifted at workers=%d: %v vs %v",
				workers, res.FinalMetric, base.FinalMetric)
		}
	}
}

// On a complete topology with full participation the Metropolis–Hastings
// matrix is uniform 1/n averaging, so gossip is star-synchronous FedAvg with
// per-device optimizer state: at equal rounds the two final metrics must
// agree within a small tolerance.
func TestGossipCompleteMatchesStarSync(t *testing.T) {
	run := func(sched core.Sched) float64 {
		sys, split := smallSystem(t, sched, 0, 31)
		sc := Scenario{Rounds: 6, EvalEvery: -1, Seed: 7}
		if sched == core.SchedGossip {
			sc.Topology = mustTopo(t, "complete", sys.G.N, 31)
		}
		sim, err := New(sys, sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalMetric
	}
	star := run(core.SchedSync)
	gossip := run(core.SchedGossip)
	if d := math.Abs(star - gossip); d > 0.15 {
		t.Fatalf("complete-topology gossip final metric %v vs star sync %v (|Δ|=%v)",
			gossip, star, d)
	}
}

// Gossip wire accounting is exact: each round's bytes are one upload per
// (participant, present neighbor) pair, counted at the sender.
func TestGossipBytesExact(t *testing.T) {
	sys, split := gossipSystem(t, 0, 31)
	n := sys.G.N
	tp := mustTopo(t, "ring:2", n, 31)
	sim, err := New(sys, Scenario{Rounds: 2, EvalEvery: -1, Seed: 7, Topology: tp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	up := sys.DeviceUploadBytes()
	var want int64
	for d := 0; d < n; d++ {
		want += int64(tp.Degree(d)) * up[d] // full participation: all present
	}
	for _, rs := range res.Timeline {
		if rs.Bytes != want {
			t.Fatalf("round %d bytes %d, want %d", rs.Round, rs.Bytes, want)
		}
		if rs.Energy <= 0 {
			t.Fatalf("round %d has no energy accounting", rs.Round)
		}
	}
}

// Denser topologies pay more energy at equal compute: complete-topology
// gossip moves O(n) deltas per device where the ring moves O(1).
func TestGossipEnergyScalesWithDegree(t *testing.T) {
	run := func(spec string) float64 {
		sys, split := gossipSystem(t, 0, 31)
		sim, err := New(sys, Scenario{Rounds: 2, EvalEvery: -1, Seed: 7,
			Topology: mustTopo(t, spec, sys.G.N, 31)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalEnergy
	}
	ring, complete := run("ring:2"), run("complete")
	if complete <= ring {
		t.Fatalf("complete-topology energy %v not above ring energy %v", complete, ring)
	}
}

// New rejects topology/scheduling mismatches in both directions, and
// scenario validation rejects the new knobs' bad values.
func TestGossipScenarioValidation(t *testing.T) {
	sys, _ := gossipSystem(t, 0, 31)
	if _, err := New(sys, Scenario{Rounds: 2}); err == nil {
		t.Fatal("gossip system without a topology accepted")
	}
	if _, err := New(sys, Scenario{Rounds: 2,
		Topology: mustTopo(t, "ring", sys.G.N+2, 31)}); err == nil {
		t.Fatal("topology with wrong node count accepted")
	}
	star, _ := simSystem(t, core.SchedSync, 0, 0, 31)
	if _, err := New(star, Scenario{Rounds: 2,
		Topology: mustTopo(t, "ring", star.G.N, 31)}); err == nil {
		t.Fatal("topology under star scheduling accepted")
	}
	for _, bad := range []Scenario{
		{Rounds: 2, LinkDiscipline: "lifo"},
		{Rounds: 2, Policy: "greedy"},
		{Rounds: 2, EnergyBudget: -1},
		{Rounds: 2, EnergyBudget: 5}, // budget without the energy policy
	} {
		bad := bad
		if err := bad.Validate(); err == nil {
			t.Fatalf("scenario %+v validated", bad)
		}
	}
}

// The energy policy deterministically excludes over-budget devices — same
// seed, same participant sets — and never selects a device whose projected
// spend exceeds the budget while cheaper devices exist.
func TestEnergyPolicyDeterministicAndEffective(t *testing.T) {
	run := func() *Result {
		sys, split := simSystem(t, core.SchedSync, 0, 0, 17)
		sim, err := New(sys, Scenario{
			Fleet: FleetZipf, Rounds: 4, EvalEvery: -1, Seed: 7,
			Policy: PolicyEnergy, // budget 0: fleet-mean projected spend
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("energy-policy timeline not reproducible")
	}
	// The zipf fleet's tail is power-hungry: the mean-budget filter must
	// actually exclude someone.
	sys, _ := simSystem(t, core.SchedSync, 0, 0, 17)
	full := sys.G.N
	for _, rs := range a.Timeline {
		if rs.Participants >= full {
			t.Fatalf("round %d: energy policy excluded nobody (%d of %d)",
				rs.Round, rs.Participants, full)
		}
		if rs.Participants == 0 {
			t.Fatalf("round %d: energy policy emptied the round", rs.Round)
		}
	}
	// And the uniform policy on the same seed differs (the filter is live).
	sys2, split2 := simSystem(t, core.SchedSync, 0, 0, 17)
	sim2, err := New(sys2, Scenario{Fleet: FleetZipf, Rounds: 4, EvalEvery: -1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	unif, err := sim2.Run(core.NewSupervisedObjective(split2))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(unif.Timeline, a.Timeline) {
		t.Fatal("energy policy produced the uniform timeline")
	}
}
