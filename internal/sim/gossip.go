package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"lumos/internal/core"
	"lumos/internal/fleet"
)

// runGossip simulates decentralized training (core.SchedGossip): there is no
// aggregator and no global model. Every device owns a full model replica
// (core.Replica); each round the sampled participants run one local training
// step on their own replica, push the updated model to every participating
// contact-graph neighbor over a dedicated per-link fleet.Server, and average
// what they received with Metropolis–Hastings weights
//
//	w(d,j) = 1 / (1 + max(deg d, deg j)),   w(d,d) = 1 − Σ_j w(d,j)
//
// over the full-topology degrees — the classic symmetric, doubly-stochastic
// gossip matrix, under which a complete topology with full participation
// degenerates to uniform 1/n averaging (the bridge to star-synchronous
// FedAvg that the golden tests pin). Absent neighbors' mass folds back into
// the self weight, so a device that gossips alone simply keeps its model.
//
// Timing: a participant computes from max(its radio-free time, the previous
// commit), then its delta crosses each live link — links are priced at the
// bottleneck endpoint's bandwidth (fed.CostModel.LinkBytesPerSecond) and
// queue concurrent deltas under Scenario.LinkDiscipline (processor sharing
// by default). A device's round ends when its compute is done and every
// inbound delta has been delivered; the round commits at the slowest
// participant (synchronous gossip). Energy charges each participant its
// compute at the profile-scaled power draw plus O(degree) radio traffic:
// one upload per present neighbor, plus every delta it receives.
//
// Determinism: participants step, store, and mix in ascending device order,
// links serve in ascending (u,v) order, and MixReplicas reduces in frozen
// slice order — so, with the engine's own worker-count invariance, the
// timeline is bit-identical for every Workers value under a fixed seed.
func (s *Simulator) runGossip(obj core.Objective) (*Result, error) {
	sess, err := s.sys.NewSession(obj)
	if err != nil {
		return nil, err
	}
	if !sess.HasTestMetric() {
		return nil, fmt.Errorf("sim: objective carries no test data to evaluate the timeline with")
	}
	n := s.sys.G.N
	tp := s.topo
	if s.tr != nil {
		s.tr.SetTrackName(roundTrack, "gossip")
		for d := 0; d < n; d++ {
			s.tr.SetTrackName(d+1, fmt.Sprintf("device %d", d))
		}
	}

	// Every device starts from the assembled model; halves hold each
	// participant's post-step, pre-mix model within a round.
	seedRep := s.sys.NewReplica()
	reps := make([]*core.Replica, n)
	halves := make([]*core.Replica, n)
	for d := range reps {
		reps[d] = seedRep.Clone()
		halves[d] = seedRep.Clone()
	}
	scratch := seedRep // reused as the consensus-average buffer

	// Each gossip round drives up to n single-device engine rounds, so the
	// cache TTL is rescaled to keep "rounds of real time" semantics.
	ttl := s.sc.PartialTTL * n

	bestVal := math.Inf(-1)
	var best *core.Replica

	res := &Result{Metric: sess.MetricName()}
	prev := 0.0
	for r := 0; r < s.sc.Rounds; r++ {
		rs := RoundStats{Round: r, Start: prev}
		s.scheduleChurn(r, prev)
		s.drainBoundary(prev, &rs)
		for _, a := range s.avail {
			if a {
				rs.Available++
			}
		}
		participants := s.sample()
		rs.Participants = len(participants)
		evalRound := (s.sc.EvalEvery > 0 && (r+1)%s.sc.EvalEvery == 0) || r == s.sc.Rounds-1

		if len(participants) == 0 {
			// Nobody online: the fleet idles one base interval. Replicas
			// don't move, but a scheduled evaluation still reports the
			// consensus average.
			prev += s.sc.Cost.BaseCompute.Seconds() + s.sc.Cost.MsgLatency.Seconds()
			rs.Commit, rs.Skipped = prev, true
			if evalRound {
				if err := s.loadAverage(scratch, reps); err != nil {
					return nil, fmt.Errorf("sim: round %d: %w", r, err)
				}
				m, err := sess.TestMetric()
				if err != nil {
					return nil, fmt.Errorf("sim: round %d evaluation: %w", r, err)
				}
				rs.Metric, rs.Evaluated = m, true
				if s.sc.ModelSelection {
					if err := s.selectGossip(sess, scratch, &rs, &bestVal, &best); err != nil {
						return nil, fmt.Errorf("sim: round %d: %w", r, err)
					}
				}
			}
			s.commits = append(s.commits, prev)
			s.recordRound(&rs)
			res.Timeline = append(res.Timeline, rs)
			continue
		}

		present := make([]bool, n)
		for _, d := range participants {
			present[d] = true
		}

		// 1. Compute: every participant steps from the previous commit (or
		// its own radio-free time), and its energy charges compute plus the
		// round's full O(degree) gossip traffic.
		for _, d := range participants {
			start := s.freeAt[d]
			if start < prev {
				start = prev
			}
			ct := s.computeTime(d)
			if s.tr != nil {
				s.tr.Span(d+1, "device", "compute", start, start+ct,
					map[string]any{"round": r})
			}
			s.push(evComputeDone, start+ct, d, r)
			sent, recv := int64(0), int64(0)
			for _, j := range tp.Neighbors(d) {
				if present[j] {
					sent += s.up[d]
					recv += s.up[j]
				}
			}
			e := s.sc.Cost.Energy(ct, s.profiles[d].Power, sent+recv)
			s.energy[d] += e
			rs.Energy += e
			rs.Bytes += sent // each delta is counted once, at its sender
		}

		// 2. Delta exchange: drain compute-done events in clock order and
		// queue one delta per live link direction; each link's batch is then
		// served under the link discipline, in ascending (u,v) link order.
		type deltaMeta struct{ sender, receiver int }
		computeDone := make([]float64, n)
		jobs := make(map[[2]int][]fleet.Job)
		meta := make(map[[2]int][]deltaMeta)
		for s.q.Len() > 0 {
			e := heap.Pop(&s.q).(*event)
			if e.kind != evComputeDone {
				return nil, fmt.Errorf("sim: unexpected %v event during gossip compute", e.kind)
			}
			d := e.device
			computeDone[d] = e.at
			arrive := e.at + s.sc.Cost.MsgLatency.Seconds()*s.profiles[d].Latency
			for _, j := range tp.Neighbors(d) {
				if !present[j] {
					continue
				}
				k := linkKey(d, j)
				jobs[k] = append(jobs[k], fleet.Job{At: arrive, Bytes: s.up[d]})
				meta[k] = append(meta[k], deltaMeta{sender: d, receiver: j})
			}
		}
		keys := make([][2]int, 0, len(jobs))
		for k := range jobs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		for _, k := range keys {
			departed := s.link(k).ServeBatch(jobs[k])
			for i, m := range meta[k] {
				s.mDeltas.Inc()
				s.mGossipBytes.Add(jobs[k][i].Bytes)
				if s.tr != nil {
					s.tr.Span(m.sender+1, "device", "gossip-delta",
						jobs[k][i].At, departed[i],
						map[string]any{"round": r, "to": m.receiver})
				}
				s.push(evDelta, departed[i], m.receiver, r)
			}
		}
		// A device's round ends when its compute and every inbound delta
		// are done; the commit barriers on the slowest participant.
		end := make([]float64, n)
		for _, d := range participants {
			end[d] = computeDone[d]
		}
		for s.q.Len() > 0 {
			e := heap.Pop(&s.q).(*event)
			if e.at > end[e.device] {
				end[e.device] = e.at
			}
		}
		commit := prev
		for _, d := range participants {
			if end[d] > commit {
				commit = end[d]
			}
			s.freeAt[d] = end[d]
			s.lastPart[d] = r
		}

		// 3. Local training: each participant's replica takes one
		// single-device engine round, stored as its pre-mix half.
		losses, counted := 0.0, 0
		for _, d := range participants {
			if err := s.sys.LoadReplica(reps[d]); err != nil {
				return nil, fmt.Errorf("sim: round %d device %d: %w", r, d, err)
			}
			active := make([]bool, n)
			active[d] = true
			out, err := sess.StepRound(core.RoundPlan{Active: active, TTL: ttl})
			if err != nil {
				return nil, fmt.Errorf("sim: round %d device %d: %w", r, d, err)
			}
			if !out.Skipped {
				losses += out.Loss
				counted++
			}
			rs.Dropped += out.ExpiredParts
			if err := s.sys.StoreReplica(halves[d]); err != nil {
				return nil, fmt.Errorf("sim: round %d device %d: %w", r, d, err)
			}
		}
		if counted > 0 {
			rs.Loss = losses / float64(counted)
		}
		rs.Skipped = counted == 0

		// 4. Mix: Metropolis–Hastings averaging over the halves, self first
		// then present neighbors ascending — the frozen reduction order.
		for _, d := range participants {
			srcs := []*core.Replica{halves[d]}
			ws := []float64{0}
			for _, j := range tp.Neighbors(d) {
				if !present[j] {
					continue
				}
				srcs = append(srcs, halves[j])
				ws = append(ws, tp.MetropolisWeight(d, j))
			}
			self := 1.0
			for _, w := range ws[1:] {
				self -= w
			}
			ws[0] = self
			if err := core.MixReplicas(reps[d], srcs, ws); err != nil {
				return nil, fmt.Errorf("sim: round %d device %d mix: %w", r, d, err)
			}
		}

		rs.Commit = commit
		s.commits = append(s.commits, commit)
		prev = commit

		if evalRound {
			if err := s.loadAverage(scratch, reps); err != nil {
				return nil, fmt.Errorf("sim: round %d: %w", r, err)
			}
			m, err := sess.TestMetric()
			if err != nil {
				return nil, fmt.Errorf("sim: round %d evaluation: %w", r, err)
			}
			rs.Metric, rs.Evaluated = m, true
			if s.sc.ModelSelection {
				if err := s.selectGossip(sess, scratch, &rs, &bestVal, &best); err != nil {
					return nil, fmt.Errorf("sim: round %d: %w", r, err)
				}
			}
		}
		s.recordRound(&rs)
		res.Timeline = append(res.Timeline, rs)
		res.TotalBytes += rs.Bytes
		res.Dropped += rs.Dropped
		res.TotalEnergy += rs.Energy
	}

	// The run's verdict is on the consensus average (or the best-validation
	// average under model selection) — the model a deployment would extract
	// by averaging whatever the devices hold.
	if err := s.loadAverage(scratch, reps); err != nil {
		return nil, err
	}
	if best != nil {
		if err := s.sys.LoadReplica(best); err != nil {
			return nil, err
		}
	}
	sess.FinishRounds() // gossip queues no stale gradients; keeps the session lifecycle uniform
	final, err := sess.TestMetric()
	if err != nil {
		return nil, fmt.Errorf("sim: final evaluation: %w", err)
	}
	res.FinalMetric = final
	res.WallClock = prev
	total := 0
	for _, rs := range res.Timeline {
		total += rs.Participants
	}
	res.MeanParticipants = float64(total) / float64(len(res.Timeline))
	res.DeviceEnergy = append([]float64(nil), s.energy...)
	return res, nil
}

// selectGossip folds an evaluated round's validation metric into gossip
// model selection: the consensus average must already be loaded (scratch),
// and the best-scoring average is kept for the final restore.
func (s *Simulator) selectGossip(sess *core.Session, scratch *core.Replica, rs *RoundStats, bestVal *float64, best **core.Replica) error {
	v, ok, err := sess.ValidationMetric()
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	rs.ValMetric, rs.ValEvaluated = v, true
	if v > *bestVal {
		*bestVal = v
		*best = scratch.Clone()
	}
	return nil
}

// loadAverage mixes the uniform 1/n average of every device's replica into
// scratch and installs it in the system — the consensus model that gossip
// timelines evaluate and report.
func (s *Simulator) loadAverage(scratch *core.Replica, reps []*core.Replica) error {
	ws := make([]float64, len(reps))
	for i := range ws {
		ws[i] = 1 / float64(len(reps))
	}
	if err := core.MixReplicas(scratch, reps, ws); err != nil {
		return err
	}
	return s.sys.LoadReplica(scratch)
}

// linkKey canonicalizes an undirected contact-graph edge.
func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// link returns (lazily creating) the server for one contact-graph edge: a
// dedicated device-to-device channel priced at the bottleneck endpoint's
// bandwidth, queueing concurrent deltas under the scenario's link
// discipline.
func (s *Simulator) link(k [2]int) *fleet.Server {
	srv, ok := s.links[k]
	if !ok {
		srv = &fleet.Server{
			BytesPerSecond: s.sc.Cost.LinkBytesPerSecond(
				s.profiles[k[0]].Bandwidth, s.profiles[k[1]].Bandwidth),
			Discipline: s.linkDisc,
			Wait:       s.linkWait,
			Served:     s.linkJobs,
		}
		s.links[k] = srv
	}
	return srv
}
