package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lumos/internal/core"
	"lumos/internal/fed"
	"lumos/internal/fleet"
	"lumos/internal/graph"
)

// simSystem assembles a small supervised system with one device per shard —
// the configuration the simulator is designed for.
func simSystem(t testing.TB, sched core.Sched, staleness, workers int, seed int64) (*core.System, *graph.NodeSplit) {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "sim", N: 80, M: 360, Classes: 2, FeatureDim: 10,
		PowerLaw: 2.2, Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, g, core.Config{
		Task: core.Supervised, MCMCIterations: 15, Shards: g.N,
		Sched: sched, Staleness: staleness, Workers: workers, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, split
}

func TestScenarioValidateDefaults(t *testing.T) {
	sc := Scenario{Rounds: 5}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Fleet != FleetUniform || sc.Participation != 1 || sc.Rejoin != 0.5 ||
		sc.PartialTTL != 2 || sc.EvalEvery != 5 {
		t.Fatalf("defaults not filled: %+v", sc)
	}
	if sc.Cost == (fed.CostModel{}) {
		t.Fatal("cost model default not filled")
	}
	for _, bad := range []Scenario{
		{Rounds: 0},
		{Rounds: 5, Churn: 1},
		{Rounds: 5, Participation: 1.5},
		{Rounds: 5, Fleet: "mesh"},
		{Rounds: 5, TraceDuty: 2},
		// A trace fleet without a trace source must be rejected loudly, not
		// silently fall back to a synthetic fleet.
		{Rounds: 5, Fleet: FleetTrace},
		{Rounds: 5, Cost: fed.CostModel{BytesPerSecond: 1, PerLeafPair: -time.Second}},
	} {
		bad := bad
		if err := bad.Validate(); err == nil {
			t.Fatalf("scenario %+v validated", bad)
		}
	}
}

func TestParseFleet(t *testing.T) {
	for _, name := range []string{"uniform", "zipf", "periodic", "trace"} {
		if _, err := ParseFleet(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseFleet("mesh"); err == nil {
		t.Fatal("unknown fleet parsed")
	}
}

func TestParseFleetSpec(t *testing.T) {
	f, path, err := ParseFleetSpec("trace:fleet.csv")
	if err != nil || f != FleetTrace || path != "fleet.csv" {
		t.Fatalf("trace:fleet.csv parsed to (%v, %q, %v)", f, path, err)
	}
	f, path, err = ParseFleetSpec("periodic")
	if err != nil || f != FleetPeriodic || path != "" {
		t.Fatalf("periodic parsed to (%v, %q, %v)", f, path, err)
	}
	// A bare "trace" has no source and no synthetic fallback: the spec
	// parser must reject it with a pointer at the trace:<path> form.
	if _, _, err := ParseFleetSpec("trace"); err == nil {
		t.Fatal("bare trace spec parsed")
	}
	if _, _, err := ParseFleetSpec("trace:"); err == nil {
		t.Fatal("empty trace path parsed")
	}
	if _, _, err := ParseFleetSpec("mesh"); err == nil {
		t.Fatal("unknown fleet spec parsed")
	}
}

func TestBuildProfilesDeterministic(t *testing.T) {
	sc := Scenario{Rounds: 1, Fleet: FleetZipf, Seed: 3}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := BuildProfiles(sc, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildProfiles(sc, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fleets")
	}
	slowest, fastest := 0.0, 1e18
	for _, p := range a {
		if p.Compute <= 0 || p.Bandwidth <= 0 || p.Latency <= 0 {
			t.Fatalf("non-positive multiplier: %+v", p)
		}
		if p.Compute > slowest {
			slowest = p.Compute
		}
		if p.Compute < fastest {
			fastest = p.Compute
		}
	}
	if slowest <= 1 || fastest < 0.25 {
		t.Fatalf("zipf fleet lacks heterogeneity: fastest %v slowest %v", fastest, slowest)
	}
}

func TestTraceProfilesCycle(t *testing.T) {
	sc := Scenario{Rounds: 1, Fleet: FleetPeriodic, TracePeriod: 4, TraceDuty: 0.5, Seed: 5}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	ps, err := BuildProfiles(sc, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		on := 0
		for r := 0; r < 4; r++ {
			if p.OnlineAt(r) {
				on++
			}
		}
		if on != 2 {
			t.Fatalf("duty 0.5 over period 4 gave %d online rounds", on)
		}
		if p.OnlineAt(3) != p.OnlineAt(7) {
			t.Fatal("trace availability is not periodic")
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	push := func(at float64, seq int) {
		heap.Push(&q, &event{at: at, seq: seq})
	}
	push(3, 1)
	push(1, 2)
	push(1, 3)
	push(0.5, 4)
	push(1, 5)
	wantSeq := []int{4, 2, 3, 5, 1}
	for i, want := range wantSeq {
		e := heap.Pop(&q).(*event)
		if e.seq != want {
			t.Fatalf("pop %d: got seq %d, want %d", i, e.seq, want)
		}
	}
}

// churnScenario is the shared stress scenario: heterogeneous fleet, 25%
// churn, partial participation.
func churnScenario(rounds int) Scenario {
	return Scenario{
		Fleet: FleetZipf, ZipfSkew: 1.5,
		Churn: 0.25, Rejoin: 0.5, Participation: 0.75,
		Rounds: rounds, EvalEvery: 4, Seed: 21,
	}
}

// TestSimDeterminismAcrossWorkers is the sim's golden guarantee: the same
// seed and scenario produce a bit-identical event timeline and final
// accuracy whether the engine runs on one worker or eight.
func TestSimDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		sys, split := simSystem(t, core.SchedAsync, 2, workers, 17)
		s, err := New(sys, churnScenario(8))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("timelines diverge across worker counts")
	}
	if a.FinalMetric != b.FinalMetric {
		t.Fatalf("final accuracy diverges: %v vs %v", a.FinalMetric, b.FinalMetric)
	}
	c := run(1)
	if !reflect.DeepEqual(a.Timeline, c.Timeline) || a.FinalMetric != c.FinalMetric {
		t.Fatal("repeat run with identical seed diverges")
	}
	if a.Metric != "accuracy" {
		t.Fatalf("supervised timeline labeled %q, want accuracy", a.Metric)
	}
}

// unsupSimSystem assembles a link-prediction system (training-edge subgraph
// + full graph) with one device per shard, plus the edge split whose
// val/test edges drive model evaluation.
func unsupSimSystem(t testing.TB, sched core.Sched, staleness, workers int, seed int64) (*core.System, *graph.EdgeSplit) {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "simlink", N: 80, M: 420, Classes: 2, FeatureDim: 10,
		PowerLaw: 2.2, Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(es.TrainGraph, g, core.Config{
		Task: core.Unsupervised, MCMCIterations: 15, Shards: g.N,
		Sched: sched, Staleness: staleness, Workers: workers, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, es
}

// TestUnsupervisedSimDeterminismAcrossWorkers extends the golden guarantee
// to link prediction — the workload the session redesign opened to the
// simulator: same seed + scenario ⇒ DeepEqual timelines and identical final
// AUC for Workers=1 vs 8, under churn, partial participation, and async
// scheduling.
func TestUnsupervisedSimDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		sys, es := unsupSimSystem(t, core.SchedAsync, 2, workers, 37)
		s, err := New(sys, churnScenario(8))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewUnsupervisedObjective(es))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("unsupervised timelines diverge across worker counts")
	}
	if a.FinalMetric != b.FinalMetric {
		t.Fatalf("final AUC diverges: %v vs %v", a.FinalMetric, b.FinalMetric)
	}
	c := run(1)
	if !reflect.DeepEqual(a.Timeline, c.Timeline) || a.FinalMetric != c.FinalMetric {
		t.Fatal("repeat unsupervised run with identical seed diverges")
	}
	if a.Metric != "AUC" {
		t.Fatalf("unsupervised timeline labeled %q, want AUC", a.Metric)
	}
	// The timeline must carry real signal: positive losses on trained
	// rounds and an above-chance final AUC.
	if a.FinalMetric <= 0.5 {
		t.Fatalf("final AUC %v not above chance", a.FinalMetric)
	}
	trained := 0
	for _, rs := range a.Timeline {
		if !rs.Skipped {
			trained++
			if rs.Loss <= 0 {
				t.Fatalf("round %d: trained with non-positive loss %v", rs.Round, rs.Loss)
			}
		}
	}
	if trained == 0 {
		t.Fatal("scenario never trained")
	}
}

// TestUnsupervisedSimTaskMismatch guards the session task check at the
// simulator boundary: driving a supervised system with a link-prediction
// objective must fail loudly, not silently mis-train.
func TestUnsupervisedSimTaskMismatch(t *testing.T) {
	sys, _ := simSystem(t, core.SchedSync, 0, 0, 41)
	s, err := New(sys, churnScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(core.NewUnsupervisedObjective(nil)); err == nil {
		t.Fatal("unsupervised objective accepted by supervised system")
	}
	// An objective without test data must be rejected before any rounds are
	// simulated: the timeline always evaluates the final round.
	usys, _ := unsupSimSystem(t, core.SchedSync, 0, 0, 41)
	us, err := New(usys, churnScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := us.Run(core.NewUnsupervisedObjective(nil)); err == nil {
		t.Fatal("objective without test edges accepted by the simulator")
	}
}

// TestAsyncBeatsSyncUnderChurn is the headline scenario property: with a
// heterogeneous fleet and ≥20% churn, staleness-bounded async scheduling
// commits the same number of rounds in less simulated wall-clock than the
// synchronous barrier, on an identical availability/participation schedule.
func TestAsyncBeatsSyncUnderChurn(t *testing.T) {
	sc := churnScenario(10)
	sc.Churn = 0.2
	run := func(sched core.Sched, staleness int) *Result {
		sys, split := simSystem(t, sched, staleness, 0, 17)
		s, err := New(sys, sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	syncRes := run(core.SchedSync, 0)
	asyncRes := run(core.SchedAsync, 2)
	if len(syncRes.Timeline) != len(asyncRes.Timeline) {
		t.Fatalf("round counts differ: %d vs %d", len(syncRes.Timeline), len(asyncRes.Timeline))
	}
	if asyncRes.WallClock >= syncRes.WallClock {
		t.Fatalf("async wall-clock %.3fs not below sync %.3fs", asyncRes.WallClock, syncRes.WallClock)
	}
	// The churn/participation schedule must be identical across disciplines:
	// timing differs, availability must not.
	for i := range syncRes.Timeline {
		if syncRes.Timeline[i].Available != asyncRes.Timeline[i].Available ||
			syncRes.Timeline[i].Participants != asyncRes.Timeline[i].Participants {
			t.Fatalf("round %d: availability schedules diverge between disciplines", i)
		}
	}
}

// TestTimelineInvariants checks the structural sanity of a churny run:
// monotone commits, bounded participation, positive traffic on training
// rounds, and a usable final model.
func TestTimelineInvariants(t *testing.T) {
	sys, split := simSystem(t, core.SchedSync, 0, 0, 19)
	s, err := New(sys, churnScenario(12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 12 {
		t.Fatalf("timeline has %d rounds, want 12", len(res.Timeline))
	}
	prev := 0.0
	churned := false
	for _, rs := range res.Timeline {
		if rs.Commit < rs.Start || rs.Start < prev {
			t.Fatalf("round %d: non-monotone clock (start %v commit %v prev %v)", rs.Round, rs.Start, rs.Commit, prev)
		}
		prev = rs.Commit
		if rs.Participants > rs.Available || rs.Available > sys.G.N {
			t.Fatalf("round %d: %d participants of %d available of %d devices", rs.Round, rs.Participants, rs.Available, sys.G.N)
		}
		if !rs.Skipped && (rs.Bytes <= 0 || rs.Participants == 0) {
			t.Fatalf("round %d: trained with no traffic or participants: %+v", rs.Round, rs)
		}
		if rs.Joined > 0 || rs.Left > 0 {
			churned = true
		}
	}
	if !churned {
		t.Fatal("25% churn over 12 rounds produced no join/leave events")
	}
	if res.WallClock != prev {
		t.Fatalf("wall clock %v != last commit %v", res.WallClock, prev)
	}
	if res.FinalMetric <= 0 {
		t.Fatalf("final accuracy %v", res.FinalMetric)
	}
	if res.TotalBytes <= 0 {
		t.Fatal("no bytes on the wire")
	}
}

// TestPeriodicFleetProducesChurn checks that the periodic fleet drives
// availability without the Bernoulli churn process.
func TestPeriodicFleetProducesChurn(t *testing.T) {
	sys, split := simSystem(t, core.SchedSync, 0, 0, 23)
	sc := Scenario{Fleet: FleetPeriodic, TracePeriod: 4, TraceDuty: 0.5, Rounds: 8, Seed: 23}
	s, err := New(sys, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	sawOffline := false
	for _, rs := range res.Timeline {
		if rs.Available < sys.G.N {
			sawOffline = true
		}
	}
	if !sawOffline {
		t.Fatal("periodic fleet with duty 0.5 never took a device offline")
	}
}

// TestStaleAppliedUnderAsync checks the engine coupling: a late update in
// the simulated network must surface as a stale gradient application.
func TestStaleAppliedUnderAsync(t *testing.T) {
	sys, split := simSystem(t, core.SchedAsync, 2, 0, 17)
	s, err := New(sys, churnScenario(10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	late := 0
	for _, rs := range res.Timeline {
		late += rs.Late
	}
	if late == 0 {
		t.Skip("scenario produced no late arrivals; nothing to check")
	}
	if res.StaleApplied == 0 {
		t.Fatalf("%d late arrivals but no stale gradient applications", late)
	}
}

// contendedScenario is churnScenario with a finite shared aggregator link,
// so uploads and broadcasts serialize through the M/G/1 server.
func contendedScenario(rounds int) Scenario {
	sc := churnScenario(rounds)
	sc.Cost = fed.DefaultCostModel()
	sc.Cost.AggBytesPerSecond = 2e6
	return sc
}

// TestContentionDeterminismAcrossWorkers extends the sim's golden guarantee
// to the contended aggregator: with a finite shared-link capacity, the same
// seed still produces a bit-identical timeline for Workers 1 vs 8.
func TestContentionDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		sys, split := simSystem(t, core.SchedAsync, 2, workers, 17)
		s, err := New(sys, contendedScenario(8))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("contended timelines diverge across worker counts")
	}
	if a.FinalMetric != b.FinalMetric || a.TotalEnergy != b.TotalEnergy {
		t.Fatalf("final metric/energy diverge: (%v, %v) vs (%v, %v)",
			a.FinalMetric, a.TotalEnergy, b.FinalMetric, b.TotalEnergy)
	}
}

// TestContentionSlowsCommits: serializing uploads and broadcasts at the
// aggregator can only delay commits relative to independent links, and must
// actually do so somewhere on a busy timeline. Availability, participation,
// losses, and energy are timing-independent and must not move.
func TestContentionSlowsCommits(t *testing.T) {
	run := func(sc Scenario) *Result {
		sys, split := simSystem(t, core.SchedSync, 0, 0, 17)
		s, err := New(sys, sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(churnScenario(8))
	contended := run(contendedScenario(8))
	if contended.WallClock <= free.WallClock {
		t.Fatalf("contended wall-clock %v not above independent-link %v", contended.WallClock, free.WallClock)
	}
	for i := range free.Timeline {
		f, c := free.Timeline[i], contended.Timeline[i]
		if c.Available != f.Available || c.Participants != f.Participants || c.Loss != f.Loss {
			t.Fatalf("round %d: contention changed training, not just timing", i)
		}
		if c.Commit-c.Start < f.Commit-f.Start {
			t.Fatalf("round %d: contended round shorter than independent-link round", i)
		}
		if f.Energy != c.Energy {
			t.Fatalf("round %d: contention changed energy accounting", i)
		}
	}
}

// TestCommitGrowsWithFleetSize is the M/G/1 sanity check: at fixed
// per-device cost, the queueing delay a contended aggregator adds grows
// with the fleet size, because ~N uploads serialize through one server.
func TestCommitGrowsWithFleetSize(t *testing.T) {
	roundTime := func(n int, capacity float64) float64 {
		g, err := graph.Generate(graph.GenConfig{
			Name: "mg1", N: n, M: 5 * n, Classes: 2, FeatureDim: 10,
			PowerLaw: 2.2, Homophily: 0.85, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(31)))
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(g, g, core.Config{
			Task: core.Supervised, MCMCIterations: 10, Shards: g.N, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		cost := fed.DefaultCostModel()
		cost.PerLeafPair = 0 // fixed per-device compute regardless of workload
		cost.AggBytesPerSecond = capacity
		sc := Scenario{Rounds: 1, Participation: 1, EvalEvery: -1, Cost: cost, Seed: 31}
		s, err := New(sys, sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res.WallClock
	}
	const capacity = 1e6
	qSmall := roundTime(40, capacity) - roundTime(40, 0)
	qLarge := roundTime(80, capacity) - roundTime(80, 0)
	if qSmall <= 0 || qLarge <= 0 {
		t.Fatalf("contention added no queueing delay: small %v large %v", qSmall, qLarge)
	}
	if qLarge <= qSmall {
		t.Fatalf("queueing delay did not grow with fleet size: %v (N=40) vs %v (N=80)", qSmall, qLarge)
	}
}

// TestEnergyMonotoneInParticipation: sampling more devices into each round
// can only add fleet energy — the energy/participation trade-off the
// energystudy example rests on.
func TestEnergyMonotoneInParticipation(t *testing.T) {
	run := func(p float64) *Result {
		sys, split := simSystem(t, core.SchedSync, 0, 0, 17)
		sc := Scenario{Fleet: FleetZipf, Participation: p, Rounds: 6, EvalEvery: -1, Seed: 17}
		s, err := New(sys, sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var prev *Result
	for _, p := range []float64{0.25, 0.5, 1} {
		res := run(p)
		if res.TotalEnergy <= 0 {
			t.Fatalf("participation %v: no energy accounted", p)
		}
		perDev := 0.0
		for _, e := range res.DeviceEnergy {
			perDev += e
		}
		if math.Abs(perDev-res.TotalEnergy) > 1e-9*res.TotalEnergy {
			t.Fatalf("participation %v: device energies sum to %v, total %v", p, perDev, res.TotalEnergy)
		}
		if prev != nil && res.TotalEnergy < prev.TotalEnergy {
			t.Fatalf("participation %v spent less energy (%v) than the smaller quorum (%v)",
				p, res.TotalEnergy, prev.TotalEnergy)
		}
		prev = res
	}
}

// TestTraceFleetDrivesSimulator: a datagen-style sampled trace loaded
// through the fleet layer drives an end-to-end simulation — heterogeneous
// capacity, trace-carried availability cycles, energy — and stays
// deterministic across worker counts.
func TestTraceFleetDrivesSimulator(t *testing.T) {
	tr, err := fleet.SampleTrace(80, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		sys, split := simSystem(t, core.SchedSync, 0, workers, 17)
		sc := contendedScenario(8)
		sc.Fleet, sc.Trace, sc.Churn = FleetTrace, tr, 0
		s, err := New(sys, sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(core.NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Timeline, b.Timeline) || a.FinalMetric != b.FinalMetric {
		t.Fatal("trace-driven timelines diverge across worker counts")
	}
	sawOffline := false
	for _, rs := range a.Timeline {
		if rs.Available < 80 {
			sawOffline = true
		}
	}
	if !sawOffline {
		t.Fatal("trace availability cycles never took a device offline")
	}
	if a.TotalEnergy <= 0 {
		t.Fatal("trace-driven run accounted no energy")
	}

	// The trace fleet without a source must fail at construction.
	sys, _ := simSystem(t, core.SchedSync, 0, 0, 17)
	if _, err := New(sys, Scenario{Fleet: FleetTrace, Rounds: 3, Seed: 1}); err == nil {
		t.Fatal("trace fleet without a source accepted")
	}
}

// TestSimModelSelection: with Scenario.ModelSelection on, evaluated rounds
// carry the validation metric and the final model is the best-validation
// snapshot rather than the last committed one.
func TestSimModelSelection(t *testing.T) {
	sys, split := simSystem(t, core.SchedSync, 0, 0, 19)
	sc := churnScenario(8)
	sc.EvalEvery, sc.ModelSelection = 2, true
	s, err := New(sys, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	evaluated := 0
	for _, rs := range res.Timeline {
		if rs.Evaluated != rs.ValEvaluated {
			t.Fatalf("round %d: test and validation evaluation cadences diverge: %+v", rs.Round, rs)
		}
		if rs.ValEvaluated {
			evaluated++
			if rs.ValMetric <= 0 {
				t.Fatalf("round %d: validation metric %v", rs.Round, rs.ValMetric)
			}
		}
	}
	if evaluated == 0 {
		t.Fatal("model selection never evaluated")
	}
}

// TestPermanentChurnDrainsFleet: with rejoin disabled (negative sentinel)
// the fleet drains to zero and empty rounds are skipped — still advancing
// the engine's round clock through the skip path.
func TestPermanentChurnDrainsFleet(t *testing.T) {
	sys, split := simSystem(t, core.SchedSync, 0, 0, 29)
	sc := Scenario{Churn: 0.6, Rejoin: -1, Rounds: 12, Seed: 29}
	s, err := New(sys, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 12 {
		t.Fatalf("timeline has %d rounds, want 12", len(res.Timeline))
	}
	prevAvail := sys.G.N
	sawEmpty := false
	for _, rs := range res.Timeline {
		if rs.Joined > 0 || rs.Available > prevAvail {
			t.Fatalf("round %d: device rejoined despite Rejoin<0", rs.Round)
		}
		prevAvail = rs.Available
		if rs.Available == 0 {
			sawEmpty = true
			if !rs.Skipped || rs.Participants != 0 || rs.Commit <= rs.Start {
				t.Fatalf("empty round malformed: %+v", rs)
			}
		}
	}
	if !sawEmpty {
		t.Fatal("60% permanent churn over 12 rounds never drained the fleet")
	}
}
