package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lumos/internal/core"
	"lumos/internal/fleet"
	"lumos/internal/obs"
	"lumos/internal/topo"
)

// Simulator advances one Scenario over one assembled core.System.
type Simulator struct {
	sys      *core.System
	sc       Scenario
	profiles []Profile
	up       []int64 // per-device upload bytes per participating round
	model    int64   // model broadcast bytes
	wl       []int   // per-device workloads (retained-neighbor counts)

	avail    []bool
	freeAt   []float64 // when each device's CPU frees up, virtual seconds
	lag      []int     // consecutive commits each device has missed (async)
	lastPart []int     // last round each device participated in (-1 = never)

	q   eventQueue
	seq int

	churnRng  *rand.Rand
	sampleRng *rand.Rand

	commits []float64

	// agg is the aggregator's shared uplink/downlink server: device uploads
	// and model broadcasts serialize through it when the cost model sets a
	// finite AggBytesPerSecond (zero capacity = independent links).
	agg fleet.Server
	// energy accumulates each device's joules across the run.
	energy []float64

	// Gossip state (Sched == core.SchedGossip): the contact graph, the
	// per-link servers (created lazily, keyed by the canonical u<v edge),
	// and the link queueing discipline.
	topo     *topo.Topology
	links    map[[2]int]*fleet.Server
	linkDisc fleet.Discipline

	// projected is each device's projected per-round energy spend in joules
	// and budget the PolicyEnergy cutoff — both fixed at construction, so
	// the policy's filter is deterministic and free of feedback loops.
	projected []float64
	budget    float64

	// tr records the timeline on the virtual clock (Scenario.Tracer); the
	// m* instruments live in Scenario.Metrics. All are nil when telemetry
	// is off — the instruments are nil-safe, and tracer calls that build
	// args maps are guarded on tr to keep the disabled path allocation-free.
	tr            *obs.Tracer
	mRounds       *obs.Counter
	mSkipped      *obs.Counter
	mBytes        *obs.Counter
	mEnergy       *obs.Gauge
	mRoundEnergy  *obs.Gauge
	mParticipants *obs.Gauge
	mRoundTime    *obs.Histogram
	mDeltas       *obs.Counter
	mGossipBytes  *obs.Counter
	linkWait      *obs.Histogram
	linkJobs      *obs.Counter
}

// roundTrack is the tracer track carrying round spans, commits, and
// broadcasts; device d's events go on track d+1.
const roundTrack = 0

// New prepares a simulator over an assembled system of either task. The
// system's Config.Sched and Config.Staleness select the aggregation
// discipline. Build the system with Config.Shards == device count for exact
// per-device participation; coarser shardings degrade gracefully to
// majority-vote shard participation (see core.Session.StepRound).
func New(sys *core.System, sc Scenario) (*Simulator, error) {
	if sys == nil {
		return nil, fmt.Errorf("sim: nil system")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	n := sys.G.N
	profiles, err := BuildProfiles(sc, n)
	if err != nil {
		return nil, err
	}
	gossip := sys.Cfg.Sched == core.SchedGossip
	if gossip {
		if sc.Topology == nil {
			return nil, fmt.Errorf("sim: gossip scheduling needs a Scenario.Topology (see internal/topo)")
		}
		if sc.Topology.N() != n {
			return nil, fmt.Errorf("sim: topology %q has %d nodes for %d devices", sc.Topology.Name(), sc.Topology.N(), n)
		}
	} else if sc.Topology != nil {
		return nil, fmt.Errorf("sim: Scenario.Topology requires gossip scheduling (Config.Sched = core.SchedGossip)")
	}
	linkDisc, err := fleet.ParseDiscipline(sc.LinkDiscipline)
	if err != nil {
		return nil, err
	}
	if gossip && sc.LinkDiscipline == "" {
		linkDisc = fleet.DiscPS // gossip links default to fair queueing
	}
	s := &Simulator{
		sys:       sys,
		sc:        sc,
		profiles:  profiles,
		up:        sys.DeviceUploadBytes(),
		model:     sys.ModelBytes(),
		wl:        sys.Workloads(),
		avail:     make([]bool, n),
		freeAt:    make([]float64, n),
		lag:       make([]int, n),
		lastPart:  make([]int, n),
		churnRng:  rand.New(rand.NewSource(sc.Seed ^ 0x636875726e)),
		sampleRng: rand.New(rand.NewSource(sc.Seed ^ 0x73616d706c65)),
		agg:       fleet.Server{BytesPerSecond: sc.Cost.AggBytesPerSecond},
		energy:    make([]float64, n),
		topo:      sc.Topology,
		linkDisc:  linkDisc,
	}
	if gossip {
		s.links = make(map[[2]int]*fleet.Server)
	}
	for d := range s.avail {
		s.avail[d] = profiles[d].OnlineAt(0)
		s.lastPart[d] = -1
	}
	if sc.Policy == PolicyEnergy {
		// Project each device's per-round spend once, from the full-fleet
		// worst case: all neighbors present under gossip, upload plus
		// broadcast under star scheduling. A fixed projection keeps the
		// policy's filter independent of the round's churn draw — the same
		// devices are in or out for the whole run.
		s.projected = make([]float64, n)
		for d := range s.projected {
			radio := s.up[d] + s.model
			if gossip {
				deg := s.topo.Degree(d)
				radio = int64(deg) * s.up[d]
				for _, j := range s.topo.Neighbors(d) {
					radio += s.up[j]
				}
			}
			s.projected[d] = sc.Cost.Energy(s.computeTime(d), s.profiles[d].Power, radio)
		}
		s.budget = sc.EnergyBudget
		if s.budget == 0 {
			sum := 0.0
			for _, e := range s.projected {
				sum += e
			}
			s.budget = sum / float64(n)
		}
	}
	s.tr = sc.Tracer
	if r := sc.Metrics; r != nil {
		s.mRounds = r.Counter("lumos_sim_rounds_total",
			"Committed simulation rounds")
		s.mSkipped = r.Counter("lumos_sim_rounds_skipped_total",
			"Rounds with no usable training signal")
		s.mBytes = r.Counter("lumos_sim_bytes_total",
			"Wire bytes moved by the fleet")
		s.mEnergy = r.Gauge("lumos_sim_energy_joules",
			"Cumulative fleet energy spend in joules")
		s.mRoundEnergy = r.Gauge("lumos_sim_round_energy_joules",
			"Energy spend of the most recent round in joules")
		s.mParticipants = r.Gauge("lumos_sim_participants",
			"Participant count of the most recent round")
		s.mRoundTime = r.Histogram("lumos_sim_round_seconds",
			"Simulated seconds from round start to commit", obs.DurationBuckets)
		s.agg.Wait = r.Histogram("lumos_sim_agg_wait_seconds",
			"Simulated queueing delay at the shared aggregator link", obs.DurationBuckets)
		s.agg.Served = r.Counter("lumos_sim_agg_jobs_total",
			"Jobs serialized through the shared aggregator link")
		if gossip {
			s.mDeltas = r.Counter("lumos_sim_gossip_deltas_total",
				"Model deltas exchanged between gossip neighbors")
			s.mGossipBytes = r.Counter("lumos_sim_gossip_bytes_total",
				"Bytes moved over gossip links")
			s.linkWait = r.Histogram("lumos_sim_gossip_link_wait_seconds",
				"Simulated sharing delay on gossip links", obs.DurationBuckets)
			s.linkJobs = r.Counter("lumos_sim_gossip_link_jobs_total",
				"Delta transfers served by gossip link servers")
		}
	}
	return s, nil
}

// recordRound folds a finished round into the metrics registry and the
// trace timeline. Called once per round, for committed and idle rounds
// alike.
func (s *Simulator) recordRound(rs *RoundStats) {
	if s.sc.RoundObserver != nil {
		s.sc.RoundObserver(*rs)
	}
	s.mRounds.Inc()
	if rs.Skipped {
		s.mSkipped.Inc()
	}
	s.mBytes.Add(rs.Bytes)
	s.mEnergy.Add(rs.Energy)
	s.mRoundEnergy.Set(rs.Energy)
	s.mParticipants.Set(float64(rs.Participants))
	s.mRoundTime.Observe(rs.Commit - rs.Start)
	if s.tr == nil {
		return
	}
	s.tr.Span(roundTrack, "round", "round", rs.Start, rs.Commit, map[string]any{
		"round": rs.Round, "participants": rs.Participants, "loss": rs.Loss,
		"energy": rs.Energy, "skipped": rs.Skipped,
	})
	s.tr.Instant(roundTrack, "round", "commit", rs.Commit,
		map[string]any{"round": rs.Round})
	if rs.Evaluated {
		s.tr.Instant(roundTrack, "round", "eval", rs.Commit,
			map[string]any{"round": rs.Round, "metric": rs.Metric})
	}
}

// Profiles exposes the fleet for inspection and reporting.
func (s *Simulator) Profiles() []Profile {
	return append([]Profile(nil), s.profiles...)
}

// Run simulates the scenario's rounds over the system, driving one training
// session of the given objective round by round, and returns the timeline.
// The objective supplies the task's training signal (only present devices
// contribute), its wire traffic, and the evaluation metric the timeline's
// Metric points carry (accuracy or AUC).
func (s *Simulator) Run(obj core.Objective) (*Result, error) {
	if s.sys.Cfg.Sched == core.SchedGossip {
		return s.runGossip(obj)
	}
	sess, err := s.sys.NewSession(obj)
	if err != nil {
		return nil, err
	}
	if !sess.HasTestMetric() {
		// The final round always evaluates; reject up front rather than
		// failing after the rounds have been simulated.
		return nil, fmt.Errorf("sim: objective carries no test data to evaluate the timeline with")
	}
	n := s.sys.G.N
	sched := s.sys.Cfg.Sched
	bound := s.sys.Cfg.Staleness
	if s.tr != nil {
		s.tr.SetTrackName(roundTrack, "aggregator")
		for d := 0; d < n; d++ {
			s.tr.SetTrackName(d+1, fmt.Sprintf("device %d", d))
		}
	}
	res := &Result{Metric: sess.MetricName()}
	prev := 0.0
	for r := 0; r < s.sc.Rounds; r++ {
		rs := RoundStats{Round: r, Start: prev}

		// 1. Churn: join/leave events land on the queue at the round
		// boundary and are processed in deterministic order.
		s.scheduleChurn(r, prev)
		s.drainBoundary(prev, &rs)
		for _, a := range s.avail {
			if a {
				rs.Available++
			}
		}

		// 2. Partial participation: sample K of the available devices.
		participants := s.sample()
		rs.Participants = len(participants)
		evalRound := (s.sc.EvalEvery > 0 && (r+1)%s.sc.EvalEvery == 0) || r == s.sc.Rounds-1
		if len(participants) == 0 {
			// Nobody online: the fleet idles for one base interval, but the
			// round still happens at the aggregator — queued stale gradients
			// come due and the partial caches age (engine skip path). Those
			// stale applies mutate the model, so a scheduled evaluation (and
			// its model-selection snapshot) still runs here.
			out, err := sess.StepRound(core.RoundPlan{
				Active: make([]bool, n), TTL: s.sc.PartialTTL,
				Evaluate: evalRound && s.sc.ModelSelection,
			})
			if err != nil {
				return nil, fmt.Errorf("sim: round %d: %w", r, err)
			}
			rs.StaleApplied = out.StaleApplied
			res.StaleApplied += out.StaleApplied
			rs.ValMetric, rs.ValEvaluated = out.ValMetric, out.ValEvaluated
			if evalRound {
				m, err := sess.TestMetric()
				if err != nil {
					return nil, fmt.Errorf("sim: round %d evaluation: %w", r, err)
				}
				rs.Metric, rs.Evaluated = m, true
			}
			prev += s.sc.Cost.BaseCompute.Seconds() + s.sc.Cost.MsgLatency.Seconds()
			rs.Commit, rs.Skipped = prev, true
			s.commits = append(s.commits, prev)
			s.recordRound(&rs)
			res.Timeline = append(res.Timeline, rs)
			continue
		}

		// 3. Compute-done and message-arrival events on the virtual clock.
		// Under sync every participant waits for the latest model (the
		// previous commit); under bounded staleness a device may start from
		// any model at most `bound` commits old, so fast devices pipeline.
		modelReady := prev
		if sched == core.SchedAsync {
			if idx := r - 1 - bound; idx >= 0 {
				modelReady = s.commits[idx]
			} else {
				modelReady = 0
			}
		}
		for _, d := range participants {
			start := s.freeAt[d]
			if start < modelReady {
				start = modelReady
			}
			// Staleness-bounded catch-up: a device away longer than the lag
			// budget re-downloads the model before it can compute.
			gap := r + 1
			if s.lastPart[d] >= 0 {
				gap = r - s.lastPart[d]
			}
			radioBytes := s.up[d] + s.model // upload + post-commit broadcast
			if gap > bound+1 {
				// The re-download's model bytes cross the shared aggregator
				// link like any other traffic: the download is served (and
				// occupies the server) before the device's own link time.
				caught := s.agg.Serve(start, s.model) + s.downTime(d)
				if s.tr != nil {
					s.tr.Span(d+1, "device", "catch-up", start, caught,
						map[string]any{"round": r})
				}
				start = caught
				rs.CatchUps++
				radioBytes += s.model // catch-up re-download
			}
			ct := s.computeTime(d)
			if s.tr != nil {
				s.tr.Span(d+1, "device", "compute", start, start+ct,
					map[string]any{"round": r})
			}
			s.push(evComputeDone, start+ct, d, r)
			// Energy: active compute at the profile-scaled power draw plus
			// every byte this device moves over its radio this round.
			e := s.sc.Cost.Energy(ct, s.profiles[d].Power, radioBytes)
			s.energy[d] += e
			rs.Energy += e
		}
		arr := make([]float64, n)
		s.drainRound(arr)

		// 4. Commit: barrier (sync) or quorum-plus-blocked-stragglers
		// (async), then fold the round into the model.
		commit, devDelay := s.commitRound(sched, bound, r, participants, arr, prev, &rs)

		// Downlink contention: the post-commit model broadcast to every
		// participant serializes through the shared aggregator link, so the
		// round is not over — and the next model not ready — until the last
		// copy is out. The server is FIFO: under async it may still be
		// serving straggler uploads past the quorum commit, and the
		// broadcast queues behind them. With contention disabled Serve is a
		// pass-through, matching the independent-link model.
		preBroadcast := commit
		commit = s.agg.Serve(commit, int64(len(participants))*s.model)
		if s.tr != nil && commit > preBroadcast {
			s.tr.Span(roundTrack, "agg", "broadcast", preBroadcast, commit,
				map[string]any{"round": r, "participants": len(participants)})
		}

		activeDev := make([]bool, n)
		for _, d := range participants {
			activeDev[d] = true
		}
		out, err := sess.StepRound(core.RoundPlan{
			Active: activeDev, Delays: devDelay, TTL: s.sc.PartialTTL,
			Evaluate: evalRound && s.sc.ModelSelection,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: round %d: %w", r, err)
		}
		rs.Loss = out.Loss
		rs.Skipped = out.Skipped
		rs.StaleApplied = out.StaleApplied
		rs.Dropped = out.ExpiredParts
		rs.ValMetric, rs.ValEvaluated = out.ValMetric, out.ValEvaluated
		for _, d := range participants {
			rs.Bytes += s.up[d]
		}
		// Downlink: the post-aggregation model broadcast to every
		// participant, plus the catch-up re-downloads already charged to the
		// timing model.
		rs.Bytes += int64(len(participants)+rs.CatchUps) * s.model
		rs.Commit = commit
		s.commits = append(s.commits, commit)
		prev = commit

		if evalRound {
			m, err := sess.TestMetric()
			if err != nil {
				return nil, fmt.Errorf("sim: round %d evaluation: %w", r, err)
			}
			rs.Metric, rs.Evaluated = m, true
		}
		s.recordRound(&rs)
		res.Timeline = append(res.Timeline, rs)
		res.TotalBytes += rs.Bytes
		res.StaleApplied += rs.StaleApplied
		res.Dropped += rs.Dropped
		res.TotalEnergy += rs.Energy
	}
	sess.FinishRounds()
	final, err := sess.TestMetric()
	if err != nil {
		return nil, fmt.Errorf("sim: final evaluation: %w", err)
	}
	res.FinalMetric = final
	res.WallClock = prev
	total := 0
	for _, rs := range res.Timeline {
		total += rs.Participants
	}
	res.MeanParticipants = float64(total) / float64(len(res.Timeline))
	res.DeviceEnergy = append([]float64(nil), s.energy...)
	return res, nil
}

// scheduleChurn pushes this round's join/leave events at the round boundary.
// Availability is decided per profile: a device with an availability cycle
// (Period > 0 — the periodic fleet, or traced devices that carry one)
// transitions with its cycle; every other device draws exactly one Bernoulli
// churn decision per round, so the availability process is identical across
// scheduling modes and participation rates.
func (s *Simulator) scheduleChurn(r int, at float64) {
	for d, p := range s.profiles {
		if p.Period > 0 {
			if on := p.OnlineAt(r); on != s.avail[d] {
				kind := evLeave
				if on {
					kind = evJoin
				}
				s.push(kind, at, d, r)
			}
			continue
		}
		if r == 0 {
			continue // cycle-free devices start online
		}
		u := s.churnRng.Float64()
		if s.avail[d] {
			if u < s.sc.Churn {
				s.push(evLeave, at, d, r)
			}
		} else if u < s.sc.Rejoin {
			s.push(evJoin, at, d, r)
		}
	}
}

// drainBoundary processes the join/leave events due at the round boundary.
func (s *Simulator) drainBoundary(now float64, rs *RoundStats) {
	for s.q.Len() > 0 && s.q[0].at <= now {
		e := heap.Pop(&s.q).(*event)
		switch e.kind {
		case evLeave:
			if s.avail[e.device] {
				s.avail[e.device] = false
				s.lag[e.device] = 0 // any in-flight lag resets; rejoin pays catch-up
				rs.Left++
			}
		case evJoin:
			if !s.avail[e.device] {
				s.avail[e.device] = true
				rs.Joined++
			}
		}
	}
}

// drainRound runs the virtual clock until every in-flight compute and
// message event has fired, recording each participant's arrival time. An
// arrival marks the update reaching the aggregator's ingress over the
// device's own link; with contention enabled it must then be served by the
// shared M/G/1-style server — updates queue behind each other (FIFO in
// deterministic event order) — before it counts as delivered.
func (s *Simulator) drainRound(arr []float64) {
	for s.q.Len() > 0 {
		e := heap.Pop(&s.q).(*event)
		switch e.kind {
		case evComputeDone:
			arrive := e.at + s.xferTime(e.device)
			if s.tr != nil {
				s.tr.Span(e.device+1, "device", "upload", e.at, arrive,
					map[string]any{"round": e.round})
			}
			s.push(evArrival, arrive, e.device, e.round)
		case evArrival:
			served := s.agg.Serve(e.at, s.up[e.device])
			if s.tr != nil && served > e.at {
				// Queueing plus service at the shared aggregator link — the
				// contention the M/G/1 server models.
				s.tr.Span(e.device+1, "device", "agg-serve", e.at, served,
					map[string]any{"round": e.round})
			}
			arr[e.device] = served
		}
	}
}

// sample draws this round's participants: ⌈Participation · eligible⌉
// devices, chosen by a seeded permutation, returned in ascending id order.
// Under PolicyEnergy the eligible pool first drops every device whose
// projected per-round energy exceeds the budget; the filter happens before
// any RNG draw, so PolicyUniform runs consume the sample stream exactly as
// they always did (the frozen goldens depend on that).
func (s *Simulator) sample() []int {
	ids := make([]int, 0, len(s.avail))
	for d, a := range s.avail {
		if a {
			ids = append(ids, d)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	if s.sc.Policy == PolicyEnergy {
		kept := ids[:0]
		cheapest := ids[0]
		for _, d := range ids {
			if s.projected[d] < s.projected[cheapest] {
				cheapest = d // ties keep the lowest id
			}
			if s.projected[d] <= s.budget {
				kept = append(kept, d)
			}
		}
		if len(kept) == 0 {
			// An over-budget fleet still trains: the single cheapest
			// available device participates rather than stalling the run.
			kept = append(kept, cheapest)
		}
		ids = kept
	}
	k := int(math.Ceil(s.sc.Participation * float64(len(ids))))
	if k < 1 {
		k = 1
	}
	if k > len(ids) {
		k = len(ids)
	}
	perm := s.sampleRng.Perm(len(ids))
	chosen := make([]int, 0, k)
	for _, p := range perm[:k] {
		chosen = append(chosen, ids[p])
	}
	sort.Ints(chosen)
	return chosen
}

// commitRound closes round r: under sync the commit is a barrier on the
// slowest participant; under async the aggregator commits once half the
// participants have delivered, plus every straggler whose lag budget is
// spent (lag == staleness bound) — bounding staleness exactly as the
// engine's delayed-gradient queue assumes. Returns the commit time and the
// per-device gradient delays (in rounds) to feed the engine.
func (s *Simulator) commitRound(sched core.Sched, bound, r int, participants []int, arr []float64, prev float64, rs *RoundStats) (float64, []int) {
	devDelay := make([]int, len(arr))
	commit := prev
	if sched == core.SchedSync {
		for _, d := range participants {
			if arr[d] > commit {
				commit = arr[d]
			}
			s.lag[d] = 0
		}
	} else {
		sorted := make([]float64, 0, len(participants))
		for _, d := range participants {
			sorted = append(sorted, arr[d])
		}
		sort.Float64s(sorted)
		if t := sorted[(len(sorted)+1)/2-1]; t > commit {
			commit = t
		}
		for _, d := range participants {
			if s.lag[d] >= bound && arr[d] > commit {
				commit = arr[d]
			}
		}
		for _, d := range participants {
			if arr[d] <= commit {
				s.lag[d] = 0
				continue
			}
			s.lag[d]++
			if s.lag[d] > bound {
				s.lag[d] = bound
			}
			devDelay[d] = s.lag[d]
			rs.Late++
		}
	}
	for _, d := range participants {
		s.freeAt[d] = arr[d]
		s.lastPart[d] = r
	}
	return commit, devDelay
}

// computeTime is device d's local forward/backward time in seconds: the
// analytic cost model's per-epoch compute term scaled by the profile.
func (s *Simulator) computeTime(d int) float64 {
	c := s.sc.Cost
	t := c.BaseCompute.Seconds() + float64(s.wl[d])*c.PerLeafPair.Seconds()
	return t * s.profiles[d].Compute
}

// xferTime is device d's update-delivery time in seconds: link latency plus
// its upload bytes over its share of bandwidth.
func (s *Simulator) xferTime(d int) float64 {
	c := s.sc.Cost
	return c.MsgLatency.Seconds()*s.profiles[d].Latency +
		float64(s.up[d])/(c.BytesPerSecond*s.profiles[d].Bandwidth)
}

// downTime is the model re-download a rejoining device pays to catch up.
func (s *Simulator) downTime(d int) float64 {
	c := s.sc.Cost
	return c.MsgLatency.Seconds()*s.profiles[d].Latency +
		float64(s.model)/(c.BytesPerSecond*s.profiles[d].Bandwidth)
}

// push schedules an event on the virtual clock.
func (s *Simulator) push(kind eventKind, at float64, device, round int) {
	s.seq++
	heap.Push(&s.q, &event{at: at, seq: s.seq, kind: kind, device: device, round: round})
}
