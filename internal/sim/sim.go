// Package sim is a deterministic discrete-event simulator for Lumos
// deployments over heterogeneous, churning device fleets — the scenario lab
// the ROADMAP asks for. It replaces the single-number fed.CostModel epoch
// estimate with a per-round simulated timeline: a virtual clock orders
// compute-done, message-arrival, and device join/leave events; per-device
// Profiles built through internal/fleet — synthetic fleets (uniform, zipf,
// periodic availability) or FedScale-style trace files (FleetTrace +
// Scenario.Trace) — scale the analytic cost model's compute, bandwidth,
// latency, and power terms, so the cost model remains the single per-event
// cost source; and a Scenario layers churn, per-round partial participation
// (sample K of the available devices), and staleness-bounded catch-up for
// rejoining devices on top.
//
// Two deployment realities are modeled beyond independent links. With a
// finite CostModel.AggBytesPerSecond, device uploads and post-commit model
// broadcasts serialize through a deterministic M/G/1-style FIFO server at
// the aggregator (fleet.Server), so large-fleet commit times reflect
// queueing at the shared link; zero capacity reproduces the
// independent-link timeline bit for bit (frozen in a golden test). Each
// round also accounts the fleet's energy — per participant,
// compute-seconds at the profile-scaled power draw plus radio bytes at the
// cost model's energy-per-byte — into RoundStats.Energy and the Result
// totals, enabling energy/metric trade-off studies of participation
// policies (examples/energystudy).
//
// Each committed round also drives the real training engine through
// core.Session.StepRound — absent devices' shards are skipped (their
// vertices keep serving cached embeddings until the cache ages out) and late
// updates apply stale through the engine's delayed-gradient queue — so the
// timeline carries true losses and evaluation metrics, not just timing. The
// simulator is task-agnostic: Run takes a core.Objective, so the same
// scenario machinery drives node classification (accuracy timeline) and
// link prediction (negative-sampled logistic loss, AUC timeline) alike.
//
// Scheduling discipline comes from the system's Config.Sched: under
// SchedSync every round is a barrier on the slowest participant; under
// SchedAsync the aggregator commits once half the participants have
// delivered, and a straggler may run up to Config.Staleness rounds behind
// before it blocks a commit — amortizing its compute over staleness+1
// rounds exactly as fed.CostModel.EpochTimeAsync models analytically.
//
// Determinism: the event queue breaks time ties by push order, every random
// choice (fleet ranks, churn, participation sampling) draws from seeded
// streams with a fixed consumption pattern, and the engine underneath is
// bit-deterministic in the worker count — so the same seed and scenario
// reproduce the identical timeline and final accuracy for every Workers
// value.
package sim

import (
	"fmt"

	"lumos/internal/fed"
	"lumos/internal/fleet"
	"lumos/internal/obs"
	"lumos/internal/topo"
)

// Scenario configures one simulated deployment.
type Scenario struct {
	// Fleet names the device-profile distribution (default FleetUniform).
	Fleet Fleet
	// Trace supplies the device population when Fleet is FleetTrace —
	// typically loaded from a FedScale-style CSV/JSON file with
	// fleet.LoadTrace. The trace fleet has no synthetic fallback: naming it
	// without a trace fails validation.
	Trace *fleet.Trace
	// ZipfSkew shapes the zipf fleet's heterogeneity: the slowest device is
	// ≈2^skew × the median (default 1.2).
	ZipfSkew float64
	// TracePeriod and TraceDuty shape the periodic fleet's availability
	// cycle: each device is online TraceDuty of every TracePeriod rounds,
	// with a per-device random phase (defaults 8 and 0.75).
	TracePeriod int
	TraceDuty   float64
	// Churn is the per-round probability that an available device goes
	// offline at the round boundary (uniform/zipf fleets; the trace fleet
	// derives availability from its trace instead).
	Churn float64
	// Rejoin is the per-round probability that an offline device returns
	// (default 0.5; negative means devices never rejoin — the field's zero
	// value selects the default, so 0 cannot express "never").
	Rejoin float64
	// Participation is the fraction of available devices sampled into each
	// round, the partial-participation K/N (default 1: everyone online
	// participates).
	Participation float64
	// Rounds is the number of training rounds to simulate.
	Rounds int
	// PartialTTL bounds how many rounds an absent device's cached pooling
	// contribution keeps serving before it is dropped (default 2; negative
	// disables cache serving entirely — the field's zero value selects the
	// default, so 0 cannot express "no cache").
	PartialTTL int
	// EvalEvery evaluates test accuracy every k committed rounds (default 5;
	// negative disables mid-run evaluation — the field's zero value selects
	// the default. The final round is always evaluated).
	EvalEvery int
	// ModelSelection additionally evaluates the objective's validation
	// metric on every evaluated round (Session.StepRound's Evaluate path)
	// and restores the best validation snapshot at the end of the run —
	// round-driven model selection, mirroring the epoch trainers. Off by
	// default: the final model is then the last committed one.
	ModelSelection bool
	// Topology is the device contact graph for decentralized (gossip)
	// scheduling: required — and only meaningful — when the system's
	// Config.Sched is core.SchedGossip, with exactly one topology node per
	// device. Build one with the internal/topo generators or load a measured
	// contact graph with topo.Load. New rejects a topology under star
	// scheduling and a gossip system without one.
	Topology *topo.Topology
	// LinkDiscipline selects how concurrent deltas share a gossip link:
	// "ps" (default — egalitarian processor sharing, a fair-queued NIC) or
	// "fifo" (one delta at a time in arrival order). Star scheduling ignores
	// it: the aggregator's shared server is always FIFO.
	LinkDiscipline string
	// Policy selects the participation policy applied after availability and
	// before sampling (default PolicyUniform). PolicyEnergy skips devices
	// whose projected per-round energy spend exceeds EnergyBudget.
	Policy Policy
	// EnergyBudget is PolicyEnergy's per-round per-device budget in joules.
	// 0 auto-derives the fleet's mean projected spend; setting it under
	// PolicyUniform (or negative) fails validation.
	EnergyBudget float64
	// Cost supplies the per-event costs (zero value: fed.DefaultCostModel).
	Cost fed.CostModel
	// Tracer, when non-nil, records the simulated timeline as trace events
	// on the virtual clock — per-device compute/upload spans, aggregator
	// queueing, round commits, evaluations — for Perfetto inspection. Use
	// obs.NewVirtualTracer: wall-clock tracers don't mix with simulated
	// seconds. Run is single-threaded, so for a fixed seed the recorded
	// event sequence is byte-for-byte reproducible.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives runtime counters/gauges/histograms
	// (rounds, wire bytes, per-round and cumulative energy, aggregator
	// queueing delay). Nil — the default — is free.
	Metrics *obs.Registry
	// RoundObserver, when non-nil, receives every finished round's stats as
	// it commits (idle rounds included) — the streaming hook run recording
	// (internal/report) attaches to. Nil — the default — is free. Called
	// from the single-threaded Run loop, in round order.
	RoundObserver func(RoundStats)
	// Seed drives every random choice in the scenario (fleet ranks, churn,
	// sampling). Independent from the system's training seed.
	Seed int64
}

// Validate fills defaults and checks ranges.
func (sc *Scenario) Validate() error {
	if sc.Fleet == "" {
		sc.Fleet = FleetUniform
	}
	if _, err := ParseFleet(string(sc.Fleet)); err != nil {
		return err
	}
	if sc.Fleet == FleetTrace && sc.Trace == nil {
		// Reject up front with the full pointer instead of letting fleet
		// construction fail later (or worse, silently running uniform).
		_, err := sc.Source()
		return err
	}
	if sc.ZipfSkew == 0 {
		sc.ZipfSkew = 1.2
	}
	if sc.ZipfSkew < 0 {
		return fmt.Errorf("sim: negative zipf skew %v", sc.ZipfSkew)
	}
	if sc.TracePeriod == 0 {
		sc.TracePeriod = 8
	}
	if sc.TracePeriod < 1 {
		return fmt.Errorf("sim: trace period %d below 1 round", sc.TracePeriod)
	}
	if sc.TraceDuty == 0 {
		sc.TraceDuty = 0.75
	}
	if sc.TraceDuty <= 0 || sc.TraceDuty > 1 {
		return fmt.Errorf("sim: trace duty %v outside (0,1]", sc.TraceDuty)
	}
	if sc.Churn < 0 || sc.Churn >= 1 {
		return fmt.Errorf("sim: churn %v outside [0,1)", sc.Churn)
	}
	switch {
	case sc.Rejoin == 0:
		sc.Rejoin = 0.5
	case sc.Rejoin < 0:
		sc.Rejoin = 0 // explicit "never rejoin"
	case sc.Rejoin > 1:
		return fmt.Errorf("sim: rejoin probability %v above 1", sc.Rejoin)
	}
	if sc.Participation == 0 {
		sc.Participation = 1
	}
	if sc.Participation <= 0 || sc.Participation > 1 {
		return fmt.Errorf("sim: participation %v outside (0,1]", sc.Participation)
	}
	if sc.Rounds <= 0 {
		return fmt.Errorf("sim: scenario needs a positive round count, got %d", sc.Rounds)
	}
	switch {
	case sc.PartialTTL == 0:
		sc.PartialTTL = 2
	case sc.PartialTTL < 0:
		sc.PartialTTL = 0 // explicit "no cache serving"
	}
	switch {
	case sc.EvalEvery == 0:
		sc.EvalEvery = 5
	case sc.EvalEvery < 0:
		sc.EvalEvery = 0 // explicit "final round only"
	}
	if _, err := fleet.ParseDiscipline(sc.LinkDiscipline); err != nil {
		return err
	}
	if sc.Policy == "" {
		sc.Policy = PolicyUniform
	}
	if _, err := ParsePolicy(string(sc.Policy)); err != nil {
		return err
	}
	if sc.EnergyBudget < 0 {
		return fmt.Errorf("sim: negative energy budget %v", sc.EnergyBudget)
	}
	if sc.EnergyBudget > 0 && sc.Policy != PolicyEnergy {
		return fmt.Errorf("sim: EnergyBudget=%v requires Policy=energy", sc.EnergyBudget)
	}
	if sc.Cost == (fed.CostModel{}) {
		sc.Cost = fed.DefaultCostModel()
	}
	return sc.Cost.Validate()
}

// Policy names a participation policy — how the simulator narrows the
// available set before each round's sample.
type Policy string

const (
	// PolicyUniform samples uniformly from every available device — the
	// classic FedAvg participation model and the default.
	PolicyUniform Policy = "uniform"
	// PolicyEnergy first drops every available device whose projected
	// per-round energy spend (compute at its profile-scaled power draw plus
	// its round's radio traffic, via fed.CostModel.Energy) exceeds
	// Scenario.EnergyBudget, then samples uniformly from the rest. When the
	// filter would empty the pool, the single cheapest device stays — a
	// round must be able to happen.
	PolicyEnergy Policy = "energy"
)

// ParsePolicy parses a participation-policy name; "" selects uniform.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "uniform":
		return PolicyUniform, nil
	case "energy":
		return PolicyEnergy, nil
	default:
		return "", fmt.Errorf("sim: unknown participation policy %q (want uniform|energy)", s)
	}
}

// RoundStats is one entry of the simulated timeline.
type RoundStats struct {
	Round int
	// Start and Commit bound the round on the virtual clock, in seconds:
	// Start is the previous round's commit, Commit is when this round's
	// aggregate was applied.
	Start, Commit float64
	// Available is the online device count after churn; Participants is the
	// sampled subset that trained.
	Available, Participants int
	// Joined and Left count churn transitions at this round's boundary.
	Joined, Left int
	// Bytes on the wire this round: participant uploads plus the model
	// broadcast back to each participant.
	Bytes int64
	// Late counts participants whose update missed the commit (async only;
	// the update applies stale in a later round).
	Late int
	// CatchUps counts participants that had been away beyond the staleness
	// bound and re-downloaded the model before computing.
	CatchUps int
	// StaleApplied counts previously-delayed gradients folded in this round;
	// Dropped counts absent devices' cached pooling contributions that aged
	// out.
	StaleApplied int
	Dropped      int
	// Skipped marks a round with no usable training signal (no participant
	// carried the objective's training data, or nobody was online).
	Skipped bool
	Loss    float64
	// Energy is the fleet's energy spend this round, in joules: each
	// participant's compute time at its profile-scaled power draw plus
	// every byte it moved over the radio (fed.CostModel.Energy).
	Energy float64
	// Metric is the objective's test metric (accuracy or AUC) when
	// Evaluated is set (every EvalEvery rounds and on the final round).
	Metric    float64
	Evaluated bool
	// ValMetric is the objective's validation metric when ValEvaluated is
	// set (Scenario.ModelSelection on evaluated rounds) — the signal
	// round-driven model selection keys on.
	ValMetric    float64
	ValEvaluated bool
}

// Result is a finished simulation: the full timeline plus summary metrics.
type Result struct {
	Timeline []RoundStats
	// Metric names the objective's evaluation metric ("accuracy" or
	// "AUC") carried by the timeline's Metric fields and FinalMetric.
	Metric string
	// WallClock is the total simulated seconds to commit every round.
	WallClock float64
	// TotalBytes is the sum of per-round wire traffic.
	TotalBytes int64
	// MeanParticipants is the average per-round participant count.
	MeanParticipants float64
	// FinalMetric is the objective's test metric after the terminal
	// barrier (and, under Scenario.ModelSelection, the best-validation
	// snapshot restore).
	FinalMetric float64
	// StaleApplied and Dropped aggregate the per-round counters.
	StaleApplied int
	Dropped      int
	// TotalEnergy is the fleet's energy spend across the run, in joules;
	// DeviceEnergy breaks it down per device (cumulative, indexed by device
	// id) for straggler/fairness analysis.
	TotalEnergy  float64
	DeviceEnergy []float64
}
