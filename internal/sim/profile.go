package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Profile is one device's capacity relative to the nominal device of the
// analytic cost model: multipliers scale fed.CostModel's compute, bandwidth,
// and latency terms, so the cost model stays the single source of per-event
// costs while the fleet becomes heterogeneous.
type Profile struct {
	// Compute is the compute-time multiplier (1 = nominal, 2 = twice as
	// slow).
	Compute float64
	// Bandwidth is the link-bandwidth multiplier (1 = nominal, 0.5 = half
	// the bytes per second).
	Bandwidth float64
	// Latency is the one-way message-latency multiplier.
	Latency float64
	// Period/OnRounds/Phase describe a periodic availability trace
	// (FleetTrace only; Period 0 means always available): the device is
	// online in round r iff (r+Phase) mod Period < OnRounds.
	Period   int
	OnRounds int
	Phase    int
}

// OnlineAt reports the profile's trace availability for round r. Profiles
// without a trace (Period 0) are always online; their availability is then
// governed by the scenario's churn process instead.
func (p Profile) OnlineAt(r int) bool {
	if p.Period <= 0 {
		return true
	}
	return (r+p.Phase)%p.Period < p.OnRounds
}

// Fleet names a device-profile distribution.
type Fleet string

const (
	// FleetUniform gives every device the nominal profile; heterogeneity
	// comes only from workloads and churn.
	FleetUniform Fleet = "uniform"
	// FleetZipf draws compute-speed multipliers from a zipf-like rank
	// distribution (median device ≈ nominal, heavy straggler tail), with
	// bandwidth and latency degrading alongside compute.
	FleetZipf Fleet = "zipf"
	// FleetTrace gives nominal capacity but a periodic availability trace
	// (randomized phase per device), modeling diurnal on/off cycles; the
	// trace replaces the scenario's churn process.
	FleetTrace Fleet = "trace"
)

// ParseFleet parses a fleet name as used in CLI flags.
func ParseFleet(name string) (Fleet, error) {
	switch Fleet(name) {
	case FleetUniform, FleetZipf, FleetTrace:
		return Fleet(name), nil
	default:
		return "", fmt.Errorf("sim: unknown fleet %q (want uniform|zipf|trace)", name)
	}
}

// zipfComputeFloor keeps the fastest zipf devices within a plausible range
// of the nominal device instead of letting the rank formula shrink them
// toward zero compute time.
const zipfComputeFloor = 0.25

// BuildProfiles draws n device profiles from the scenario's fleet,
// deterministically from the scenario seed (ranks and phases are assigned by
// a seeded permutation, so device 0 is not always the straggler).
func BuildProfiles(sc Scenario, n int) ([]Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: fleet of %d devices", n)
	}
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x70726f66696c6573))
	out := make([]Profile, n)
	switch sc.Fleet {
	case FleetUniform:
		for d := range out {
			out[d] = Profile{Compute: 1, Bandwidth: 1, Latency: 1}
		}
	case FleetZipf:
		// Rank r (0 = fastest) gets compute multiplier ((r+1)/((n+1)/2))^s:
		// the median device is nominal, the slowest ≈ 2^s × nominal.
		perm := rng.Perm(n)
		for rank, d := range perm {
			rel := float64(rank+1) / (float64(n+1) / 2)
			mult := math.Pow(rel, sc.ZipfSkew)
			if mult < zipfComputeFloor {
				mult = zipfComputeFloor
			}
			out[d] = Profile{
				Compute:   mult,
				Bandwidth: 1 / math.Sqrt(mult),
				Latency:   math.Sqrt(mult),
			}
		}
	case FleetTrace:
		on := int(math.Round(sc.TraceDuty * float64(sc.TracePeriod)))
		if on < 1 {
			on = 1
		}
		if on > sc.TracePeriod {
			on = sc.TracePeriod
		}
		for d := range out {
			out[d] = Profile{
				Compute: 1, Bandwidth: 1, Latency: 1,
				Period: sc.TracePeriod, OnRounds: on, Phase: rng.Intn(sc.TracePeriod),
			}
		}
	default:
		return nil, fmt.Errorf("sim: unknown fleet %q", sc.Fleet)
	}
	return out, nil
}
