package sim

import (
	"fmt"
	"strings"

	"lumos/internal/fleet"
)

// Profile is one device's capacity relative to the nominal device of the
// analytic cost model — defined in internal/fleet, the single source of
// device-population truth, and aliased here for the simulator's callers.
type Profile = fleet.Profile

// Fleet names a device-profile distribution.
type Fleet string

const (
	// FleetUniform gives every device the nominal profile; heterogeneity
	// comes only from workloads and churn.
	FleetUniform Fleet = "uniform"
	// FleetZipf draws compute-speed multipliers from a zipf-like rank
	// distribution (median device ≈ nominal, heavy straggler tail), with
	// bandwidth and latency degrading alongside compute.
	FleetZipf Fleet = "zipf"
	// FleetPeriodic gives nominal capacity but a periodic availability
	// cycle (randomized phase per device), modeling diurnal on/off
	// behavior; the cycle replaces the scenario's churn process. (This was
	// named "trace" before file-driven traces existed.)
	FleetPeriodic Fleet = "periodic"
	// FleetTrace loads per-device profiles — capacity, power, availability
	// cycles — from a trace file (fleet.LoadTrace, FedScale-style schema)
	// supplied via Scenario.Trace. It requires a trace source: a scenario
	// naming FleetTrace with a nil Trace fails validation instead of
	// silently falling back to a synthetic fleet.
	FleetTrace Fleet = "trace"
)

// ParseFleet parses a fleet name as used in CLI flags. The "trace" fleet
// additionally needs a trace source (see ParseFleetSpec for the
// "trace:<path>" form that names one).
func ParseFleet(name string) (Fleet, error) {
	switch Fleet(name) {
	case FleetUniform, FleetZipf, FleetPeriodic, FleetTrace:
		return Fleet(name), nil
	default:
		return "", fmt.Errorf("sim: unknown fleet %q (want uniform|zipf|periodic|trace:<path>)", name)
	}
}

// ParseFleetSpec parses a CLI fleet spec, which extends the fleet names
// with the trace form "trace:<path>". A bare "trace" is rejected with a
// pointer at the path form — the trace fleet has no synthetic fallback.
func ParseFleetSpec(spec string) (Fleet, string, error) {
	if path, ok := strings.CutPrefix(spec, "trace:"); ok {
		if path == "" {
			return "", "", fmt.Errorf("sim: empty trace path in fleet spec %q", spec)
		}
		return FleetTrace, path, nil
	}
	f, err := ParseFleet(spec)
	if err != nil {
		return "", "", err
	}
	if f == FleetTrace {
		return "", "", fmt.Errorf("sim: fleet %q needs a trace source: use trace:<path> (generate one with lumos-datagen -traces), or the periodic fleet for a synthetic availability cycle", spec)
	}
	return f, "", nil
}

// profileSeed decorrelates fleet construction from the scenario's other
// random streams (churn, participation sampling).
const profileSeed = 0x70726f66696c6573

// Source resolves the scenario's fleet to its fleet.Fleet implementation —
// the single construction path for synthetic and trace-driven populations.
func (sc *Scenario) Source() (fleet.Fleet, error) {
	switch sc.Fleet {
	case FleetUniform:
		return fleet.Uniform(), nil
	case FleetZipf:
		return fleet.Zipf(sc.ZipfSkew), nil
	case FleetPeriodic:
		return fleet.Periodic(sc.TracePeriod, sc.TraceDuty), nil
	case FleetTrace:
		if sc.Trace == nil {
			return nil, fmt.Errorf("sim: trace fleet needs a trace source: set Scenario.Trace (fleet.LoadTrace) or pass -fleet trace:<path>; use the periodic fleet for a synthetic availability cycle")
		}
		return sc.Trace, nil
	default:
		return nil, fmt.Errorf("sim: unknown fleet %q", sc.Fleet)
	}
}

// BuildProfiles draws n device profiles from the scenario's fleet,
// deterministically from the scenario seed (ranks and phases are assigned
// by a seeded permutation, so device 0 is not always the straggler).
func BuildProfiles(sc Scenario, n int) ([]Profile, error) {
	src, err := sc.Source()
	if err != nil {
		return nil, err
	}
	return src.Profiles(n, sc.Seed^profileSeed)
}
