package sim

import "fmt"

// eventKind enumerates the discrete-event types on the virtual clock.
type eventKind int

const (
	// evLeave removes a device from the available set (churn or trace).
	evLeave eventKind = iota
	// evJoin returns a device to the available set.
	evJoin
	// evComputeDone fires when a device finishes its local forward/backward.
	evComputeDone
	// evArrival fires when a device's update lands at the aggregator.
	evArrival
	// evDelta fires when a gossip model delta is delivered to a neighbor
	// (gossip scheduling only; device is the receiver).
	evDelta
)

var eventNames = [...]string{"leave", "join", "compute-done", "arrival", "delta"}

// String names the event kind.
func (k eventKind) String() string {
	if k < 0 || int(k) >= len(eventNames) {
		return fmt.Sprintf("event(%d)", int(k))
	}
	return eventNames[k]
}

// event is one scheduled occurrence on the virtual clock.
type event struct {
	at     float64 // virtual time, seconds
	seq    int     // push order; breaks time ties deterministically
	kind   eventKind
	device int
	round  int
}

// eventQueue is a min-heap over (at, seq): equal-time events pop in push
// order, so the processing order never depends on heap internals or map
// iteration — a hard requirement for the simulator's bit-reproducibility.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
