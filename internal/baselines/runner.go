// Package baselines implements the three comparison systems of the paper's
// §VIII-C:
//
//   - Centralized GNN: the non-private upper bound — full graph and raw
//     features on one server.
//   - LPGNN (Sajadmanesh & Gatica-Perez): the server knows the topology;
//     node features are protected with an ε_x multi-bit LDP encoder and
//     training labels with ε_y randomized response. Supervised only, as in
//     the paper.
//   - Naive FedGNN: devices noise everything locally (Gaussian mechanism on
//     features, randomized response on adjacency bits and labels) and the
//     server trains a GNN on the noised graph.
//
// All three reuse the same GNN backbones as Lumos so accuracy differences
// come from the privacy/federation mechanisms, not the architecture.
package baselines

import (
	"fmt"
	"math/rand"

	"lumos/internal/autodiff"
	"lumos/internal/graph"
	"lumos/internal/metrics"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

// ModelConfig are the architecture/optimization knobs shared by every
// baseline (kept equal to Lumos's in experiments).
type ModelConfig struct {
	Backbone     nn.Backbone
	Hidden       int
	OutDim       int
	Layers       int
	Heads        int
	Dropout      float64
	LearningRate float64
	// WeightDecay is Adam's L2 coefficient (default 5e-4; negative
	// disables it), matching the Lumos trainer.
	WeightDecay float64
	Epochs      int
	// EvalEvery is the validation-selection cadence (default 5).
	EvalEvery int
	Seed      int64
}

// Validate fills the paper's defaults.
func (c *ModelConfig) Validate() error {
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.OutDim == 0 {
		c.OutDim = 16
	}
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Heads == 0 {
		c.Heads = 4
	}
	if c.Dropout == 0 {
		c.Dropout = 0.01
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.01
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 5e-4
	}
	if c.WeightDecay < 0 {
		c.WeightDecay = 0
	}
	if c.Epochs == 0 {
		c.Epochs = 300
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 5
	}
	if c.Epochs < 0 || c.EvalEvery < 0 || c.LearningRate <= 0 || c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("baselines: invalid model config %+v", c)
	}
	return nil
}

// runner trains a GNN (+optional linear head) over one fixed graph view.
type runner struct {
	conv *nn.ConvGraph
	x    *tensor.Matrix
	enc  *nn.GNN
	head *nn.Linear
	opt  *nn.Adam
	rng  *rand.Rand
	cfg  ModelConfig
}

func newRunner(cfg ModelConfig, conv *nn.ConvGraph, x *tensor.Matrix, classes int) (*runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x62617365))
	enc, err := nn.NewGNN(nn.GNNConfig{
		Backbone: cfg.Backbone,
		InDim:    x.Cols(),
		Hidden:   cfg.Hidden,
		OutDim:   cfg.OutDim,
		Layers:   cfg.Layers,
		Heads:    cfg.Heads,
		Dropout:  cfg.Dropout,
	}, rng)
	if err != nil {
		return nil, err
	}
	r := &runner{
		conv: conv,
		x:    x,
		enc:  enc,
		opt:  nn.NewAdam(cfg.LearningRate),
		rng:  rng,
		cfg:  cfg,
	}
	r.opt.WeightDecay = cfg.WeightDecay
	if classes >= 2 {
		r.head = nn.NewLinear("head", cfg.OutDim, classes, rng)
	}
	return r, nil
}

func (r *runner) params() []*nn.Param {
	ps := r.enc.Params()
	if r.head != nil {
		ps = append(ps, r.head.Params()...)
	}
	return ps
}

// Params implements nn.Module.
func (r *runner) Params() []*nn.Param { return r.params() }

func (r *runner) embed(training bool) *autodiff.Value {
	return r.enc.Forward(r.conv, autodiff.Const(r.x), training, r.rng)
}

// trainSupervised runs the full supervised loop against (possibly noised)
// labels with per-vertex weights and returns the loss trace. When trueLabels
// and valMask are non-nil, validation accuracy drives model selection.
func (r *runner) trainSupervised(labels []int, weights []float64, trueLabels []int, valMask []bool) []float64 {
	if r.head == nil {
		panic("baselines: supervised training without a head")
	}
	losses := make([]float64, 0, r.cfg.Epochs)
	bestVal, bestSnap := -1.0, []*tensor.Matrix(nil)
	for epoch := 0; epoch < r.cfg.Epochs; epoch++ {
		logits := r.head.Forward(r.embed(true))
		loss := autodiff.SoftmaxCrossEntropy(logits, labels, weights)
		nn.ZeroGrad(r)
		loss.Backward()
		r.opt.Step(r.params())
		losses = append(losses, loss.Scalar())
		if trueLabels != nil && valMask != nil && (epoch%r.cfg.EvalEvery == 0 || epoch == r.cfg.Epochs-1) {
			if acc, err := r.accuracy(trueLabels, valMask); err == nil && acc > bestVal {
				bestVal = acc
				bestSnap = nn.Snapshot(r)
			}
		}
	}
	if bestSnap != nil {
		nn.Restore(r, bestSnap)
	}
	return losses
}

// trainSupervisedNoisy is trainSupervised with the forward-correction loss
// for labels observed through a known confusion matrix T.
func (r *runner) trainSupervisedNoisy(noisy []int, T [][]float64, weights []float64, trueLabels []int, valMask []bool) []float64 {
	if r.head == nil {
		panic("baselines: supervised training without a head")
	}
	losses := make([]float64, 0, r.cfg.Epochs)
	bestVal, bestSnap := -1.0, []*tensor.Matrix(nil)
	for epoch := 0; epoch < r.cfg.Epochs; epoch++ {
		logits := r.head.Forward(r.embed(true))
		loss := autodiff.NoisyLabelCE(logits, noisy, T, weights)
		nn.ZeroGrad(r)
		loss.Backward()
		r.opt.Step(r.params())
		losses = append(losses, loss.Scalar())
		if trueLabels != nil && valMask != nil && (epoch%r.cfg.EvalEvery == 0 || epoch == r.cfg.Epochs-1) {
			if acc, err := r.accuracy(trueLabels, valMask); err == nil && acc > bestVal {
				bestVal = acc
				bestSnap = nn.Snapshot(r)
			}
		}
	}
	if bestSnap != nil {
		nn.Restore(r, bestSnap)
	}
	return losses
}

// trainLink runs the unsupervised link-prediction loop over fixed positive
// pairs, resampling negatives each epoch via sampleNeg. When valPos/valNeg
// are non-empty, validation AUC drives model selection.
func (r *runner) trainLink(pos [][2]int, sampleNeg func() [][2]int, valPos, valNeg [][2]int) []float64 {
	losses := make([]float64, 0, r.cfg.Epochs)
	bestVal, bestSnap := -1.0, []*tensor.Matrix(nil)
	for epoch := 0; epoch < r.cfg.Epochs; epoch++ {
		neg := sampleNeg()
		idxU := make([]int, 0, len(pos)+len(neg))
		idxV := make([]int, 0, len(pos)+len(neg))
		ys := make([]float64, 0, len(pos)+len(neg))
		for _, e := range pos {
			idxU = append(idxU, e[0])
			idxV = append(idxV, e[1])
			ys = append(ys, 1)
		}
		for _, e := range neg {
			idxU = append(idxU, e[0])
			idxV = append(idxV, e[1])
			ys = append(ys, -1)
		}
		emb := r.embed(true)
		loss := autodiff.LogisticLoss(autodiff.PairDot(emb, idxU, idxV), ys)
		nn.ZeroGrad(r)
		loss.Backward()
		r.opt.Step(r.params())
		losses = append(losses, loss.Scalar())
		if len(valPos) > 0 && len(valNeg) > 0 && (epoch%r.cfg.EvalEvery == 0 || epoch == r.cfg.Epochs-1) {
			if auc, err := r.auc(valPos, valNeg); err == nil && auc > bestVal {
				bestVal = auc
				bestSnap = nn.Snapshot(r)
			}
		}
	}
	if bestSnap != nil {
		nn.Restore(r, bestSnap)
	}
	return losses
}

// accuracy evaluates argmax predictions against true labels over mask.
func (r *runner) accuracy(trueLabels []int, mask []bool) (float64, error) {
	logits := r.head.Forward(r.embed(false))
	pred := make([]int, logits.Rows())
	for v := range pred {
		pred[v] = tensor.ArgMaxRow(logits.Data, v)
	}
	return metrics.Accuracy(pred, trueLabels, mask)
}

// auc evaluates link-prediction ROC-AUC on positive/negative pairs.
func (r *runner) auc(pos, neg [][2]int) (float64, error) {
	emb := r.embed(false).Data
	scores := make([]float64, 0, len(pos)+len(neg))
	labels := make([]bool, 0, len(pos)+len(neg))
	for _, e := range pos {
		scores = append(scores, tensor.RowDot(emb, e[0], emb, e[1]))
		labels = append(labels, true)
	}
	for _, e := range neg {
		scores = append(scores, tensor.RowDot(emb, e[0], emb, e[1]))
		labels = append(labels, false)
	}
	return metrics.ROCAUC(scores, labels)
}

// sampleNonEdgesFn returns a closure drawing k fresh non-edges of g per call.
func sampleNonEdgesFn(g *graph.Graph, k int, rng *rand.Rand) func() [][2]int {
	return func() [][2]int {
		out, err := graph.SampleNonEdges(g, k, rng)
		if err != nil {
			// Extremely dense graphs cannot supply enough negatives; fall
			// back to whatever is available rather than aborting training.
			return nil
		}
		return out
	}
}
