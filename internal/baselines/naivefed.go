package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"lumos/internal/graph"
	"lumos/internal/ldp"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

// NaiveFedConfig extends the model config with the naive system's noise
// parameters. EpsFeature calibrates the Gaussian mechanism (per-coordinate
// sensitivity 1, δ = Delta); EpsEdge and EpsLabel drive randomized response
// on adjacency bits and labels.
type NaiveFedConfig struct {
	ModelConfig
	EpsFeature float64
	EpsEdge    float64
	EpsLabel   float64
	Delta      float64
}

// NaiveFed is the paper's "Naive FedGNN" baseline (§VIII-C): every device
// noises its entire ego network — Gaussian noise on features, randomized
// response on each adjacency bit and on the label — and ships it to the
// server, which trains a GNN on the resulting noised graph. Because
// randomized response flips a constant fraction of the Θ(N²) non-edges into
// edges, the noised topology is dominated by random edges, which is exactly
// why this baseline collapses in the paper's Figs. 3–4.
type NaiveFed struct {
	g           *graph.Graph
	noisedGraph *graph.Graph
	run         *runner
	noisyLabels []int
	rng         *rand.Rand
}

// NewNaiveFed builds the baseline: noises features, labels, and topology.
func NewNaiveFed(g *graph.Graph, cfg NaiveFedConfig) (*NaiveFed, error) {
	if g.Features == nil {
		return nil, fmt.Errorf("baselines: NaiveFed needs features")
	}
	if cfg.EpsFeature <= 0 || cfg.EpsEdge <= 0 {
		return nil, fmt.Errorf("baselines: NaiveFed budgets must be positive")
	}
	if cfg.Delta == 0 {
		cfg.Delta = 1e-5
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6e616976))

	// L2 sensitivity of releasing the whole feature vector: adjacent
	// inputs may differ in every coordinate, so Δ₂ = (b−a)·√d.
	sensitivity := (g.FeatHi - g.FeatLo) * math.Sqrt(float64(g.FeatureDim()))
	sigma, err := ldp.GaussianSigma(cfg.EpsFeature, cfg.Delta, sensitivity)
	if err != nil {
		return nil, err
	}
	gm := ldp.Gaussian{Sigma: sigma}
	noisedX := tensor.New(g.N, g.FeatureDim())
	for v := 0; v < g.N; v++ {
		row := append([]float64(nil), g.Features.Row(v)...)
		noisedX.SetRow(v, gm.Perturb(row, rng))
	}

	noisedEdges, err := perturbAdjacency(g, cfg.EpsEdge, rng)
	if err != nil {
		return nil, err
	}
	ng, err := graph.NewFromEdges(g.N, noisedEdges, noisedX, nil, 0)
	if err != nil {
		return nil, err
	}
	ng.Name = g.Name + "/naive-noised"

	var noisyLabels []int
	if g.Labels != nil && g.NumClasses >= 2 && cfg.EpsLabel > 0 {
		rr := ldp.RandomizedResponse{Eps: cfg.EpsLabel, K: g.NumClasses}
		noisyLabels = make([]int, g.N)
		for v, y := range g.Labels {
			noisyLabels[v] = rr.Perturb(y, rng)
		}
	}

	run, err := newRunner(cfg.ModelConfig, nn.NewConvGraph(g.N, ng.Edges), noisedX, g.NumClasses)
	if err != nil {
		return nil, err
	}
	return &NaiveFed{
		g:           g,
		noisedGraph: ng,
		run:         run,
		noisyLabels: noisyLabels,
		rng:         rng,
	}, nil
}

// NoisedEdgeCount reports how many edges the server-side noised graph has.
func (n *NaiveFed) NoisedEdgeCount() int { return n.noisedGraph.NumEdges() }

// TrainSupervised fits against the noised labels on the noised topology.
func (n *NaiveFed) TrainSupervised(split *graph.NodeSplit) ([]float64, error) {
	if n.noisyLabels == nil {
		return nil, fmt.Errorf("baselines: NaiveFed built without labels")
	}
	weights := make([]float64, n.g.N)
	for _, v := range split.Train {
		weights[v] = 1
	}
	// Model selection sees only the noisy labels the server actually holds.
	return n.run.trainSupervised(n.noisyLabels, weights, n.noisyLabels, split.IsVal), nil
}

// EvaluateAccuracy scores against the true labels.
func (n *NaiveFed) EvaluateAccuracy(mask []bool) (float64, error) {
	return n.run.accuracy(n.g.Labels, mask)
}

// TrainLink fits the link objective using the noised edges as positives
// (the server knows nothing better) and random noised-graph non-edges as
// negatives. valPos/valNeg (true validation pairs) drive model selection
// and may be nil.
func (n *NaiveFed) TrainLink(valPos, valNeg [][2]int) []float64 {
	pos := n.noisedGraph.Edges
	if len(pos) > 4*len(n.g.Edges) {
		// The noised graph can carry an order of magnitude more (random)
		// edges than the original; cap the training positives so epochs
		// stay comparable across systems.
		pos = pos[:4*len(n.g.Edges)]
	}
	return n.run.trainLink(pos, sampleNonEdgesFn(n.noisedGraph, len(pos), n.rng), valPos, valNeg)
}

// EvaluateAUC scores ROC-AUC on the true test edges and non-edges.
func (n *NaiveFed) EvaluateAUC(pos, neg [][2]int) (float64, error) {
	return n.run.auc(pos, neg)
}

// perturbAdjacency applies randomized response to every adjacency bit:
// true edges survive with probability e^ε/(e^ε+1); each non-edge flips in
// with probability 1/(e^ε+1). The Θ(N²) non-edges are handled by sampling
// the binomial count of flip-ins and then drawing that many distinct
// non-edges, which is equivalent to per-bit flipping without enumerating
// all pairs.
func perturbAdjacency(g *graph.Graph, eps float64, rng *rand.Rand) ([][2]int, error) {
	keep := math.Exp(eps) / (math.Exp(eps) + 1)
	flip := 1 - keep
	var out [][2]int
	for _, e := range g.Edges {
		if rng.Float64() < keep {
			out = append(out, e)
		}
	}
	pairs := g.N * (g.N - 1) / 2
	nonEdges := pairs - len(g.Edges)
	flipIns := binomial(nonEdges, flip, rng)
	if flipIns > nonEdges {
		flipIns = nonEdges
	}
	extra, err := graph.SampleNonEdges(g, flipIns, rng)
	if err != nil {
		return nil, err
	}
	return append(out, extra...), nil
}

// binomial samples Binomial(n, p) — exactly for small n, via the normal
// approximation for large n (n·p·(1−p) > 100), which is ample for counting
// noise edges.
func binomial(n int, p float64, rng *rand.Rand) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	variance := float64(n) * p * (1 - p)
	if n <= 1000 || variance <= 100 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	k := int(math.Round(mean + math.Sqrt(variance)*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
