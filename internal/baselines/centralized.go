package baselines

import (
	"fmt"
	"math/rand"

	"lumos/internal/graph"
	"lumos/internal/nn"
)

// Centralized is the non-private upper bound: the server holds the full
// graph and raw features (paper §VIII-C, "Centralized GNN network models").
type Centralized struct {
	g   *graph.Graph
	run *runner
}

// NewCentralized builds a centralized trainer over the full graph g.
func NewCentralized(g *graph.Graph, cfg ModelConfig) (*Centralized, error) {
	if g.Features == nil {
		return nil, fmt.Errorf("baselines: centralized model needs features")
	}
	run, err := newRunner(cfg, nn.NewConvGraph(g.N, g.Edges), g.Features, g.NumClasses)
	if err != nil {
		return nil, err
	}
	return &Centralized{g: g, run: run}, nil
}

// TrainSupervised fits node classification on the training vertices, with
// validation-accuracy model selection.
func (c *Centralized) TrainSupervised(split *graph.NodeSplit) []float64 {
	weights := make([]float64, c.g.N)
	for _, v := range split.Train {
		weights[v] = 1
	}
	return c.run.trainSupervised(c.g.Labels, weights, c.g.Labels, split.IsVal)
}

// EvaluateAccuracy returns test accuracy over mask.
func (c *Centralized) EvaluateAccuracy(mask []bool) (float64, error) {
	return c.run.accuracy(c.g.Labels, mask)
}

// CentralizedLink is the centralized unsupervised variant: message passing
// and positive pairs come from the training edges only, negatives are
// resampled every epoch against the full graph.
type CentralizedLink struct {
	full *graph.Graph
	es   *graph.EdgeSplit
	run  *runner
	rng  *rand.Rand
}

// NewCentralizedLink builds the centralized link-prediction trainer.
func NewCentralizedLink(full *graph.Graph, es *graph.EdgeSplit, cfg ModelConfig) (*CentralizedLink, error) {
	if full.Features == nil {
		return nil, fmt.Errorf("baselines: centralized model needs features")
	}
	run, err := newRunner(cfg, nn.NewConvGraph(full.N, es.Train), full.Features, 0)
	if err != nil {
		return nil, err
	}
	return &CentralizedLink{
		full: full,
		es:   es,
		run:  run,
		rng:  rand.New(rand.NewSource(cfg.Seed ^ 0x6c696e6b)),
	}, nil
}

// Train fits the link-prediction objective on the training edges.
func (c *CentralizedLink) Train() []float64 {
	return c.run.trainLink(c.es.Train, sampleNonEdgesFn(c.full, len(c.es.Train), c.rng),
		c.es.Val, c.es.ValNeg)
}

// EvaluateAUC returns ROC-AUC over the test edges and sampled non-edges.
func (c *CentralizedLink) EvaluateAUC() (float64, error) {
	return c.run.auc(c.es.Test, c.es.TestNeg)
}
