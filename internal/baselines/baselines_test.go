package baselines

import (
	"math"
	"math/rand"
	"testing"

	"lumos/internal/graph"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

func blGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "bl", N: 140, M: 700, Classes: 2, FeatureDim: 16,
		Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestModelConfigDefaults(t *testing.T) {
	cfg := ModelConfig{}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Hidden != 16 || cfg.Epochs != 300 || cfg.LearningRate != 0.01 {
		t.Fatalf("defaults: %+v", cfg)
	}
	bad := ModelConfig{Epochs: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative epochs must fail")
	}
}

func TestCentralizedLearns(t *testing.T) {
	g := blGraph(t, 1)
	split, _ := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(1)))
	c, err := NewCentralized(g, ModelConfig{Backbone: nn.GCN, Epochs: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	losses := c.TrainSupervised(split)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatal("centralized loss did not improve")
	}
	acc, err := c.EvaluateAccuracy(split.IsTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("centralized accuracy %v too low on easy 2-class task", acc)
	}
}

func TestCentralizedNeedsFeatures(t *testing.T) {
	bare, _ := graph.NewFromEdges(10, [][2]int{{0, 1}}, nil, nil, 0)
	if _, err := NewCentralized(bare, ModelConfig{}); err == nil {
		t.Fatal("featureless centralized must error")
	}
}

func TestCentralizedLinkAUC(t *testing.T) {
	g := blGraph(t, 2)
	es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCentralizedLink(g, es, ModelConfig{Backbone: nn.GCN, Epochs: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Train()
	auc, err := c.EvaluateAUC()
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.65 {
		t.Fatalf("centralized link AUC %v too low", auc)
	}
}

func TestLPGNNOrderingAndTrustModel(t *testing.T) {
	g := blGraph(t, 3)
	split, _ := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(3)))
	mc := ModelConfig{Backbone: nn.GCN, Epochs: 40, Seed: 3}
	lp, err := NewLPGNN(g, LPGNNConfig{ModelConfig: mc, EpsX: 2, EpsY: 1})
	if err != nil {
		t.Fatal(err)
	}
	lp.TrainSupervised(split)
	acc, err := lp.EvaluateAccuracy(split.IsTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.55 {
		t.Fatalf("LPGNN accuracy %v too low with label correction", acc)
	}
	// Forward-correction variant also runs.
	lp2, err := NewLPGNN(g, LPGNNConfig{ModelConfig: mc, EpsX: 2, EpsY: 1, ForwardCorrection: true})
	if err != nil {
		t.Fatal(err)
	}
	lp2.TrainSupervised(split)
	if _, err := lp2.EvaluateAccuracy(split.IsTest); err != nil {
		t.Fatal(err)
	}
}

func TestLPGNNValidation(t *testing.T) {
	g := blGraph(t, 4)
	if _, err := NewLPGNN(g, LPGNNConfig{EpsX: 0, EpsY: 1}); err == nil {
		t.Fatal("zero EpsX must error")
	}
	bare, _ := graph.NewFromEdges(10, [][2]int{{0, 1}}, nil, nil, 0)
	if _, err := NewLPGNN(bare, LPGNNConfig{EpsX: 1, EpsY: 1}); err == nil {
		t.Fatal("featureless LPGNN must error")
	}
}

func TestKPropSmoothes(t *testing.T) {
	g, _ := graph.NewFromEdges(3, [][2]int{{0, 1}, {1, 2}}, nil, nil, 0)
	x := tensor.FromRows([][]float64{{3}, {0}, {3}})
	sm := kprop(g, x, 1)
	// Node 1 averages over {0,1,2}: (3+0+3)/3 = 2.
	if math.Abs(sm.At(1, 0)-2) > 1e-12 {
		t.Fatalf("kprop value %v", sm.At(1, 0))
	}
	// Node 0 averages over {0,1}: 1.5.
	if math.Abs(sm.At(0, 0)-1.5) > 1e-12 {
		t.Fatalf("kprop value %v", sm.At(0, 0))
	}
}

func TestStandardizeColumns(t *testing.T) {
	x := tensor.FromRows([][]float64{{1, 5}, {3, 5}})
	s := standardize(x)
	// Column 0: mean 2, std 1 → values ±1. Column 1: constant → zeros.
	if math.Abs(s.At(0, 0)+1) > 1e-9 || math.Abs(s.At(1, 0)-1) > 1e-9 {
		t.Fatalf("standardize col0: %v, %v", s.At(0, 0), s.At(1, 0))
	}
	if s.At(0, 1) != 0 || s.At(1, 1) != 0 {
		t.Fatal("constant column must standardize to zero")
	}
}

func TestDenoiseLabelsMajority(t *testing.T) {
	// Path 0-1-2-3, all training, true class 0 everywhere, but node 1
	// observed as class 1. Neighbors vote it back to 0.
	g, _ := graph.NewFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, nil, []int{0, 0, 0, 0}, 2)
	noisy := []int{0, 1, 0, 0}
	isTrain := []bool{true, true, true, true}
	out := denoiseLabels(g, noisy, isTrain)
	if out[1] != 0 {
		t.Fatalf("majority vote kept wrong label: %v", out)
	}
	// Non-training nodes are left untouched.
	isTrain[1] = false
	out2 := denoiseLabels(g, noisy, isTrain)
	if out2[1] != 1 {
		t.Fatal("non-training label must not change")
	}
}

func TestNaiveFedNoisesEverything(t *testing.T) {
	g := blGraph(t, 5)
	split, _ := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(5)))
	nf, err := NewNaiveFed(g, NaiveFedConfig{
		ModelConfig: ModelConfig{Backbone: nn.GCN, Epochs: 20, Seed: 5},
		EpsFeature:  2, EpsEdge: 2, EpsLabel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Randomized response on Θ(N²) pairs must add many noise edges.
	if nf.NoisedEdgeCount() <= g.NumEdges() {
		t.Fatalf("noised graph has %d edges, original %d", nf.NoisedEdgeCount(), g.NumEdges())
	}
	if _, err := nf.TrainSupervised(split); err != nil {
		t.Fatal(err)
	}
	acc, err := nf.EvaluateAccuracy(split.IsTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.2 {
		t.Fatalf("naive accuracy %v below plausible floor", acc)
	}
}

func TestNaiveFedLink(t *testing.T) {
	g := blGraph(t, 6)
	es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	nf, err := NewNaiveFed(es.TrainGraph, NaiveFedConfig{
		ModelConfig: ModelConfig{Backbone: nn.GCN, Epochs: 15, Seed: 6},
		EpsFeature:  2, EpsEdge: 2, EpsLabel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nf.TrainLink(es.Val, es.ValNeg)
	auc, err := nf.EvaluateAUC(es.Test, es.TestNeg)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.3 || auc > 0.95 {
		t.Fatalf("naive link AUC %v implausible", auc)
	}
}

func TestNaiveFedValidation(t *testing.T) {
	g := blGraph(t, 7)
	if _, err := NewNaiveFed(g, NaiveFedConfig{EpsFeature: 0, EpsEdge: 1}); err == nil {
		t.Fatal("zero feature budget must error")
	}
	bare, _ := graph.NewFromEdges(10, [][2]int{{0, 1}}, nil, nil, 0)
	if _, err := NewNaiveFed(bare, NaiveFedConfig{EpsFeature: 1, EpsEdge: 1}); err == nil {
		t.Fatal("featureless NaiveFed must error")
	}
}

func TestBinomialSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if binomial(0, 0.5, rng) != 0 || binomial(100, 0, rng) != 0 {
		t.Fatal("degenerate binomials wrong")
	}
	if binomial(100, 1, rng) != 100 {
		t.Fatal("p=1 binomial wrong")
	}
	// Exact path: mean check.
	sum := 0
	for i := 0; i < 2000; i++ {
		sum += binomial(100, 0.3, rng)
	}
	mean := float64(sum) / 2000
	if math.Abs(mean-30) > 1 {
		t.Fatalf("binomial mean %v, want 30", mean)
	}
	// Normal-approximation path stays in range.
	for i := 0; i < 100; i++ {
		k := binomial(1_000_000, 0.25, rng)
		if k < 0 || k > 1_000_000 {
			t.Fatalf("binomial out of range: %d", k)
		}
	}
}

func TestPerturbAdjacencyKeepsRate(t *testing.T) {
	g := blGraph(t, 9)
	rng := rand.New(rand.NewSource(9))
	edges, err := perturbAdjacency(g, 6 /* high ε: keep almost everything */, rng)
	if err != nil {
		t.Fatal(err)
	}
	// e^6/(e^6+1) ≈ 0.9975 keep; flip-in rate ≈ 0.0025 of ~9k non-edges.
	if len(edges) < g.NumEdges()-20 || len(edges) > g.NumEdges()+80 {
		t.Fatalf("high-eps perturbation changed edges too much: %d vs %d",
			len(edges), g.NumEdges())
	}
}
