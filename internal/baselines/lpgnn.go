package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"lumos/internal/graph"
	"lumos/internal/ldp"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

// LPGNNConfig extends the model config with LPGNN's privacy budgets: ε_x on
// features and ε_y on labels (paper experiments: ε_x = 2, ε_y = 1).
type LPGNNConfig struct {
	ModelConfig
	EpsX float64
	EpsY float64
	// KPropSteps is the number of feature-denoising aggregation hops
	// (default 2).
	KPropSteps int
	// ForwardCorrection switches the label-denoising strategy from the
	// default neighborhood majority vote (the stronger rendition of
	// LPGNN's Drop on homophilous graphs) to the forward-correction loss
	// through the known randomized-response transition matrix.
	ForwardCorrection bool
}

// LPGNN reproduces "Locally Private Graph Neural Networks" under its trust
// model: the server owns the true topology (weaker privacy than Lumos),
// receives multi-bit LDP-encoded features from every node, and trains
// against randomized-response-noised labels. The three components of the
// original system are all present:
//
//   - the multi-bit encoder with its optimal sampled-dimension count
//     m = max(1, min(d, ⌊ε_x/2.18⌋)) and unbiased rescaling;
//   - KProp feature denoising: KPropSteps rounds of degree-normalized
//     neighborhood averaging applied to the decoded features before
//     training (the server knows the topology, so this is free);
//   - Drop-style label denoising: training labels are corrected by a
//     neighborhood majority vote over noisy training labels.
type LPGNN struct {
	g           *graph.Graph
	run         *runner
	noisyLabels []int
	kprop       int
	forward     bool
	transition  [][]float64
}

// NewLPGNN builds the LPGNN baseline over the full graph.
func NewLPGNN(g *graph.Graph, cfg LPGNNConfig) (*LPGNN, error) {
	if g.Features == nil || g.Labels == nil {
		return nil, fmt.Errorf("baselines: LPGNN needs features and labels")
	}
	if cfg.EpsX <= 0 || cfg.EpsY <= 0 {
		return nil, fmt.Errorf("baselines: LPGNN budgets must be positive (εx=%v εy=%v)", cfg.EpsX, cfg.EpsY)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6c70676e6e))
	d := g.FeatureDim()
	m := int(math.Floor(cfg.EpsX / 2.18))
	if m < 1 {
		m = 1
	}
	if m > d {
		m = d
	}
	mb := ldp.MultiBit{Eps: cfg.EpsX, M: m, A: g.FeatLo, B: g.FeatHi}
	noised := tensor.New(g.N, d)
	for v := 0; v < g.N; v++ {
		row, err := mb.Encode(g.Features.Row(v), rng)
		if err != nil {
			return nil, fmt.Errorf("baselines: LPGNN feature encoding: %w", err)
		}
		noised.SetRow(v, row)
	}
	if cfg.KPropSteps == 0 {
		cfg.KPropSteps = 2
	}
	denoised := standardize(kprop(g, noised, cfg.KPropSteps))
	rr := ldp.RandomizedResponse{Eps: cfg.EpsY, K: g.NumClasses}
	noisyLabels := make([]int, g.N)
	for v, y := range g.Labels {
		noisyLabels[v] = rr.Perturb(y, rng)
	}
	// Known RR confusion structure for the forward-correction loss.
	keep := rr.KeepProb()
	off := (1 - keep) / float64(g.NumClasses-1)
	T := make([][]float64, g.NumClasses)
	for i := range T {
		T[i] = make([]float64, g.NumClasses)
		for j := range T[i] {
			if i == j {
				T[i][j] = keep
			} else {
				T[i][j] = off
			}
		}
	}
	run, err := newRunner(cfg.ModelConfig, nn.NewConvGraph(g.N, g.Edges), denoised, g.NumClasses)
	if err != nil {
		return nil, err
	}
	return &LPGNN{
		g: g, run: run,
		noisyLabels: noisyLabels,
		kprop:       cfg.KPropSteps,
		forward:     cfg.ForwardCorrection,
		transition:  T,
	}, nil
}

// kprop applies steps rounds of mean neighborhood aggregation (with
// self-loops) to x — LPGNN's parameter-free feature denoising.
func kprop(g *graph.Graph, x *tensor.Matrix, steps int) *tensor.Matrix {
	cur := x
	for s := 0; s < steps; s++ {
		next := tensor.New(g.N, x.Cols())
		for v := 0; v < g.N; v++ {
			row := next.Row(v)
			copy(row, cur.Row(v))
			for _, u := range g.Adj[v] {
				urow := cur.Row(u)
				for j := range row {
					row[j] += urow[j]
				}
			}
			inv := 1 / float64(len(g.Adj[v])+1)
			for j := range row {
				row[j] *= inv
			}
		}
		cur = next
	}
	return cur
}

// standardize z-scores each feature column (server-side post-processing;
// differential privacy is closed under post-processing). Without it the
// sparsely sampled multi-bit features leave all rows nearly identical
// around the midpoint, which stalls optimization entirely.
func standardize(x *tensor.Matrix) *tensor.Matrix {
	n, d := x.Dims()
	out := tensor.New(n, d)
	for j := 0; j < d; j++ {
		mean := 0.0
		for i := 0; i < n; i++ {
			mean += x.At(i, j)
		}
		mean /= float64(n)
		variance := 0.0
		for i := 0; i < n; i++ {
			dv := x.At(i, j) - mean
			variance += dv * dv
		}
		std := math.Sqrt(variance / float64(n))
		if std < 1e-9 {
			std = 1
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, (x.At(i, j)-mean)/std)
		}
	}
	return out
}

// denoiseLabels is the Drop-style label correction: each training vertex's
// label becomes the majority vote of noisy labels over itself and its
// training-set neighbors (ties favor the vertex's own noisy label).
func denoiseLabels(g *graph.Graph, noisy []int, isTrain []bool) []int {
	out := make([]int, len(noisy))
	copy(out, noisy)
	votes := make([]int, g.NumClasses)
	for v := 0; v < g.N; v++ {
		if !isTrain[v] {
			continue
		}
		for i := range votes {
			votes[i] = 0
		}
		votes[noisy[v]] += 2 // self vote with tie-break weight
		for _, u := range g.Adj[v] {
			if isTrain[u] {
				votes[noisy[u]]++
			}
		}
		best, bi := -1, noisy[v]
		for c, k := range votes {
			if k > best {
				best, bi = k, c
			}
		}
		out[v] = bi
	}
	return out
}

// TrainSupervised fits the model against the noisy training labels using
// the configured correction strategy. Model selection can only use the
// *noisy* validation labels: in LPGNN's trust model every label reaches the
// server through randomized response, so with many classes (small keep
// probability) validation selection degrades — the mechanism behind the
// paper's observation that Lumos's advantage grows with the class count,
// since Lumos keeps labels local and clean.
func (l *LPGNN) TrainSupervised(split *graph.NodeSplit) []float64 {
	weights := make([]float64, l.g.N)
	for _, v := range split.Train {
		weights[v] = 1
	}
	if l.forward {
		return l.run.trainSupervisedNoisy(l.noisyLabels, l.transition, weights, l.noisyLabels, split.IsVal)
	}
	corrected := denoiseLabels(l.g, l.noisyLabels, split.IsTrain)
	return l.run.trainSupervised(corrected, weights, l.noisyLabels, split.IsVal)
}

// EvaluateAccuracy scores against the *true* labels over mask.
func (l *LPGNN) EvaluateAccuracy(mask []bool) (float64, error) {
	return l.run.accuracy(l.g.Labels, mask)
}
