package tensor

import "fmt"

// CSR is a compressed, destination-grouped view of an edge list: the slots
// of each segment (destination row) are stored contiguously, in the original
// edge order — exactly the order ScatterAddRows applies per-edge
// contributions when SegmentSum reduces an edge-major message matrix. That
// ordering is what makes the fused aggregation kernels below bit-identical
// to the unfused Gather→ScaleRows/MulRowsByCol→SegmentSum chains.
//
// A CSR is immutable after NewCSR and safe for concurrent readers.
type CSR struct {
	// NSeg is the number of output rows (segments).
	NSeg int
	// Segs lists the non-empty segment ids in ascending order; empty
	// segments take no space and no time in the forward kernel.
	Segs []int
	// Starts has len(Segs)+1 entries: the slots of Segs[s] are
	// [Starts[s], Starts[s+1]) in Srcs/Edges.
	Starts []int
	// Srcs holds the source row of each grouped slot; Edges holds the
	// slot's index in the original edge arrays (for per-edge coefficients).
	Srcs  []int
	Edges []int
	// Src and Dst alias the original edge arrays; the backward kernel walks
	// them in original edge order.
	Src, Dst []int
}

// NewCSR groups the edge list (src[e] → dst[e]) by destination into nseg
// segments. Slot order within each segment preserves ascending original
// edge order (a stable counting sort).
func NewCSR(nseg int, src, dst []int) *CSR {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("tensor: NewCSR src %d vs dst %d", len(src), len(dst)))
	}
	count := make([]int, nseg)
	for e, d := range dst {
		if d < 0 || d >= nseg {
			panic(fmt.Sprintf("tensor: NewCSR dst[%d]=%d out of range [0,%d)", e, d, nseg))
		}
		count[d]++
	}
	// next[s] starts at the first slot of segment s and advances as the
	// stable fill below places s's edges.
	next := make([]int, nseg)
	sum, nonEmpty := 0, 0
	for s, c := range count {
		next[s] = sum
		sum += c
		if c > 0 {
			nonEmpty++
		}
	}
	srcs := make([]int, len(src))
	edges := make([]int, len(src))
	for e, d := range dst {
		p := next[d]
		next[d]++
		srcs[p] = src[e]
		edges[p] = e
	}
	segs := make([]int, 0, nonEmpty)
	starts := make([]int, 1, nonEmpty+1)
	for s, c := range count {
		if c > 0 {
			segs = append(segs, s)
			starts = append(starts, starts[len(starts)-1]+c)
		}
	}
	return &CSR{NSeg: nseg, Segs: segs, Starts: starts, Srcs: srcs, Edges: edges, Src: src, Dst: dst}
}

// NumEdges returns the number of edges the CSR was built from.
func (c *CSR) NumEdges() int { return len(c.Srcs) }

// CSRAggregateInto OVERWRITES dst with the segment aggregation
//
//	dst.Row(s) = Σ_slots p of s  coef[csr.Edges[p]] · a.Row(csr.Srcs[p])
//
// (unweighted when coef is nil; rows of empty segments become zero). dst
// must be csr.NSeg×a.cols; its prior contents are ignored, which lets
// callers hand it a recycled tape buffer without paying a zeroing pass.
//
// Bit-identity with the unfused chain: slots appear in original edge order
// within each segment, so each row sums its per-edge contributions in
// exactly the order ScatterAddRows applies them to a zeroed output. The
// first slot of a segment stores its term through one `+ 0` — the same
// +0-accumulator add the unfused chain performs — so a −0-valued first term
// canonicalizes to +0 identically.
func CSRAggregateInto(dst, a *Matrix, csr *CSR, coef []float64) {
	if dst.rows != csr.NSeg || dst.cols != a.cols {
		panic(fmt.Sprintf("tensor: CSRAggregateInto dst %dx%d for %d segments of %dx%d",
			dst.rows, dst.cols, csr.NSeg, a.rows, a.cols))
	}
	if coef != nil && len(coef) != len(csr.Srcs) {
		panic(fmt.Sprintf("tensor: CSRAggregateInto coef %d for %d edges", len(coef), len(csr.Srcs)))
	}
	c := a.cols
	prev := 0
	for si, s := range csr.Segs {
		zeroRows(dst, prev, s, c)
		prev = s + 1
		drow := dst.data[s*c : s*c+c : s*c+c]
		lo, hi := csr.Starts[si], csr.Starts[si+1]
		if coef == nil {
			arow := a.data[csr.Srcs[lo]*c : csr.Srcs[lo]*c+c : csr.Srcs[lo]*c+c]
			for j, av := range arow {
				drow[j] = av + 0
			}
			for p := lo + 1; p < hi; p++ {
				arow := a.data[csr.Srcs[p]*c : csr.Srcs[p]*c+c : csr.Srcs[p]*c+c]
				for j, av := range arow {
					drow[j] += av
				}
			}
		} else {
			arow := a.data[csr.Srcs[lo]*c : csr.Srcs[lo]*c+c : csr.Srcs[lo]*c+c]
			w := coef[csr.Edges[lo]]
			for j, av := range arow {
				drow[j] = w*av + 0
			}
			for p := lo + 1; p < hi; p++ {
				arow := a.data[csr.Srcs[p]*c : csr.Srcs[p]*c+c : csr.Srcs[p]*c+c]
				w := coef[csr.Edges[p]]
				for j, av := range arow {
					drow[j] += w * av
				}
			}
		}
	}
	zeroRows(dst, prev, csr.NSeg, c)
}

// zeroRows clears rows [lo, hi) of a matrix with c columns.
func zeroRows(m *Matrix, lo, hi, c int) {
	if lo >= hi {
		return
	}
	row := m.data[lo*c : hi*c]
	for j := range row {
		row[j] = 0
	}
}

// CSRAggregateBackward accumulates the gradients of a CSR aggregation,
// walking edges in ascending original order — the same order the unfused
// chain's ScatterAddRows (into aGrad) and per-edge dot products (into
// coefGrad) run in, so both gradients are bit-identical to the unfused ones:
//
//	aGrad.Row(src[e])  += coef[e] · outGrad.Row(dst[e])   (aGrad non-nil)
//	coefGrad[e]        += a.Row(src[e]) ⋅ outGrad.Row(dst[e])  (coefGrad non-nil)
//
// coef nil means unweighted (coefficients of 1); a may be nil when coefGrad
// is nil. coefGrad, when present, is a len(src)×1 column.
func CSRAggregateBackward(aGrad, coefGrad, a, outGrad *Matrix, src, dst []int, coef []float64) {
	c := outGrad.cols
	if aGrad != nil && aGrad.cols != c {
		panic(fmt.Sprintf("tensor: CSRAggregateBackward aGrad %dx%d for outGrad cols %d",
			aGrad.rows, aGrad.cols, c))
	}
	if coef != nil && len(coef) != len(src) {
		panic(fmt.Sprintf("tensor: CSRAggregateBackward coef %d for %d edges", len(coef), len(src)))
	}
	if coefGrad != nil && (coefGrad.rows != len(src) || coefGrad.cols != 1) {
		panic(fmt.Sprintf("tensor: CSRAggregateBackward coefGrad %dx%d for %d edges",
			coefGrad.rows, coefGrad.cols, len(src)))
	}
	switch {
	case aGrad != nil && coefGrad != nil:
		for e, se := range src {
			grow := outGrad.data[dst[e]*c : dst[e]*c+c : dst[e]*c+c]
			garow := aGrad.data[se*c : se*c+c : se*c+c]
			arow := a.data[se*c : se*c+c : se*c+c]
			w := coef[e]
			d := 0.0
			for j, gv := range grow {
				garow[j] += w * gv
				d += arow[j] * gv
			}
			coefGrad.data[e] += d
		}
	case aGrad != nil:
		if coef == nil {
			for e, se := range src {
				grow := outGrad.data[dst[e]*c : dst[e]*c+c : dst[e]*c+c]
				garow := aGrad.data[se*c : se*c+c : se*c+c]
				for j, gv := range grow {
					garow[j] += gv
				}
			}
			return
		}
		for e, se := range src {
			grow := outGrad.data[dst[e]*c : dst[e]*c+c : dst[e]*c+c]
			garow := aGrad.data[se*c : se*c+c : se*c+c]
			w := coef[e]
			for j, gv := range grow {
				garow[j] += w * gv
			}
		}
	case coefGrad != nil:
		for e, se := range src {
			grow := outGrad.data[dst[e]*c : dst[e]*c+c : dst[e]*c+c]
			arow := a.data[se*c : se*c+c : se*c+c]
			d := 0.0
			for j, gv := range grow {
				d += arow[j] * gv
			}
			coefGrad.data[e] += d
		}
	}
}
