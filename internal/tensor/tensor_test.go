package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("dims = %d,%d", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("entry (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromSliceAliases(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, data)
	data[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("FromSlice should wrap, not copy")
	}
}

func TestFromSliceBadLength(t *testing.T) {
	defer expectPanic(t, "FromSlice with wrong length")
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("unexpected matrix %v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer expectPanic(t, "ragged FromRows")
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows = %dx%d", m.Rows(), m.Cols())
	}
}

func TestEye(t *testing.T) {
	m := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("eye(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestFull(t *testing.T) {
	m := Full(2, 3, 7.5)
	if Sum(m) != 7.5*6 {
		t.Fatalf("Full sum = %v", Sum(m))
	}
}

func TestSetRowAndRow(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{4, 5, 6})
	r := m.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("row = %v", r)
	}
	r[0] = 9 // Row aliases storage
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestSetRowBadLength(t *testing.T) {
	defer expectPanic(t, "SetRow with wrong length")
	New(2, 3).SetRow(0, []float64{1})
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestCopyFromShapeMismatch(t *testing.T) {
	defer expectPanic(t, "CopyFrom shape mismatch")
	New(2, 2).CopyFrom(New(3, 2))
}

func TestZeroAndFill(t *testing.T) {
	m := Full(2, 2, 3)
	m.Zero()
	if Sum(m) != 0 {
		t.Fatal("Zero failed")
	}
	m.Fill(2)
	if Sum(m) != 8 {
		t.Fatal("Fill failed")
	}
}

func TestAtOutOfRange(t *testing.T) {
	defer expectPanic(t, "At out of range")
	New(2, 2).At(2, 0)
}

func TestGlorotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Glorot(30, 20, rng)
	limit := math.Sqrt(6.0 / 50.0)
	for _, v := range m.Data() {
		if v < -limit || v > limit {
			t.Fatalf("glorot value %v outside ±%v", v, limit)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Normal(200, 200, 1.5, 0.5, rng)
	mean := Mean(m)
	if math.Abs(mean-1.5) > 0.01 {
		t.Fatalf("normal mean %v, want ≈1.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Uniform(50, 50, -2, 3, rng)
	for _, v := range m.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform value %v outside [-2,3)", v)
		}
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if small.String() == "" {
		t.Fatal("empty String for small matrix")
	}
	large := New(20, 20)
	if large.String() != "Matrix(20x20)" {
		t.Fatalf("large String = %q", large.String())
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(rows, cols uint8, seed int64) bool {
		r, c := int(rows%8)+1, int(cols%8)+1
		m := Uniform(r, c, -1, 1, rand.New(rand.NewSource(seed)))
		return ApproxEqual(m, m.Clone(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}

func TestSliceRowsIsAView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	v := m.SliceRows(1, 3)
	if v.Rows() != 2 || v.Cols() != 2 {
		t.Fatalf("view dims %dx%d, want 2x2", v.Rows(), v.Cols())
	}
	if v.At(0, 0) != 3 || v.At(1, 1) != 6 {
		t.Fatalf("view content wrong: %v", v)
	}
	m.Set(1, 0, 30)
	if v.At(0, 0) != 30 {
		t.Fatal("view did not observe write through parent")
	}
	if empty := m.SliceRows(2, 2); empty.Rows() != 0 {
		t.Fatalf("empty slice has %d rows", empty.Rows())
	}
}

func TestSliceRowsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range slice")
		}
	}()
	New(3, 2).SliceRows(1, 4)
}
