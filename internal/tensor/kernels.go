package tensor

import (
	"fmt"
	"sync/atomic"
)

// KernelPath selects between the register-blocked production kernels and the
// scalar reference kernels. The two paths are bit-identical on finite inputs
// (see the "Kernel design" section of the package documentation); the
// reference path exists so equivalence tests and debugging sessions can
// cross-check the blocked kernels against the original straight-line loops.
type KernelPath int32

const (
	// PathBlocked is the default: register-blocked matmuls with packed
	// B-panels and 4–8-wide independent accumulator chains.
	PathBlocked KernelPath = iota
	// PathReference runs the original scalar loops unchanged.
	PathReference
)

// activeKernelPath is process-global, like GOMAXPROCS: kernels read it once
// per call, so it can be flipped between training runs but is not meant to
// change mid-epoch.
var activeKernelPath atomic.Int32

// SetKernelPath selects the kernel implementation for subsequent calls.
func SetKernelPath(p KernelPath) { activeKernelPath.Store(int32(p)) }

// ActiveKernelPath returns the currently selected kernel path.
func ActiveKernelPath() KernelPath { return KernelPath(activeKernelPath.Load()) }

// ParseKernelPath maps the CLI/config spelling of a kernel path ("blocked"
// or "reference"; "" means blocked) to its KernelPath value.
func ParseKernelPath(s string) (KernelPath, error) {
	switch s {
	case "", "blocked":
		return PathBlocked, nil
	case "reference":
		return PathReference, nil
	default:
		return PathBlocked, fmt.Errorf("tensor: unknown kernel path %q (want blocked or reference)", s)
	}
}

func (p KernelPath) String() string {
	if p == PathReference {
		return "reference"
	}
	return "blocked"
}

// Register-blocking parameters. One packed B-panel is mmKBlock×mmColBlock
// float64s = 16 KB, comfortably L1-resident alongside the A-row and C-row
// traffic streaming past it.
const (
	mmColBlock = 8   // output columns per register-blocked pass
	mmKBlock   = 256 // K-depth of one packed B-panel
	// mmSmallB is the largest B (in float64s) the kernel streams directly
	// from its natural layout: up to half of a 32 KB L1 it stays resident
	// across all a-rows and packing would only add a copy. The model's
	// 16-wide layers sit far below this.
	mmSmallB = 2048
)

// matMulRowsBlocked OVERWRITES rows [lo, hi) of out with a·b — unlike the
// accumulate-into-zeroed-out reference kernel, it ignores out's prior
// contents, which lets MatMulInto skip the dst.Zero() pass (and the kernel
// the read-back of those zeros) on the blocked path. The result is still
// bit-identical to the reference on finite inputs: each out entry sums k in
// ascending order from a +0 accumulator (the accumulators round-trip
// through out between K-panels), and the av == 0 skips only ever omit
// ±0-valued terms, which cannot change an accumulator that is never −0.
//
// Blocking scheme: for each 8-wide column block of b, pack successive
// 256-deep K-panels of b contiguously, then stream every a-row against the
// packed panel with 8 independent accumulator chains — the panel stays in
// L1 across all rows, and the chains give the compiler ILP that the scalar
// ikj loop's single dependent chain cannot.
func matMulRowsBlocked(a, b, out *Matrix, lo, hi int) {
	n := b.cols
	kk := a.cols
	if n == 0 {
		return
	}
	if kk == 0 {
		// Empty reduction: the product of the written rows is all zeros.
		for i := lo; i < hi; i++ {
			row := out.data[i*n : i*n+n]
			for x := range row {
				row[x] = 0
			}
		}
		return
	}
	if kk*n <= mmSmallB {
		matMulRowsSmallB(a, b, out, lo, hi)
		return
	}
	var panel [mmKBlock * mmColBlock]float64
	for jb := 0; jb < n; jb += mmColBlock {
		jw := n - jb
		if jw >= mmColBlock {
			jw = mmColBlock
		}
		for kb := 0; kb < kk; kb += mmKBlock {
			kw := kk - kb
			if kw > mmKBlock {
				kw = mmKBlock
			}
			for k := 0; k < kw; k++ {
				src := b.data[(kb+k)*n+jb:]
				dstp := panel[k*jw : k*jw+jw]
				for x := range dstp {
					dstp[x] = src[x]
				}
			}
			pan := panel[: kw*jw : kw*jw]
			if jw == mmColBlock {
				for i := lo; i < hi; i++ {
					arow := a.data[i*kk+kb : i*kk+kb+kw : i*kk+kb+kw]
					od := i*n + jb
					orow := out.data[od : od+mmColBlock : od+mmColBlock]
					var c0, c1, c2, c3, c4, c5, c6, c7 float64
					if kb > 0 {
						c0, c1, c2, c3 = orow[0], orow[1], orow[2], orow[3]
						c4, c5, c6, c7 = orow[4], orow[5], orow[6], orow[7]
					}
					for k, av := range arow {
						// Same ±0 skip as the reference kernel: ReLU
						// activations make A ~half zeros in the hidden
						// layers, and omitted ±0 terms cannot change the
						// (never −0) accumulators.
						if av == 0 {
							continue
						}
						p := pan[k*mmColBlock:]
						c0 += av * p[0]
						c1 += av * p[1]
						c2 += av * p[2]
						c3 += av * p[3]
						c4 += av * p[4]
						c5 += av * p[5]
						c6 += av * p[6]
						c7 += av * p[7]
					}
					orow[0], orow[1], orow[2], orow[3] = c0, c1, c2, c3
					orow[4], orow[5], orow[6], orow[7] = c4, c5, c6, c7
				}
			} else {
				for i := lo; i < hi; i++ {
					arow := a.data[i*kk+kb : i*kk+kb+kw : i*kk+kb+kw]
					od := i*n + jb
					orow := out.data[od : od+jw : od+jw]
					var acc [mmColBlock]float64
					if kb > 0 {
						copy(acc[:jw], orow)
					}
					for k, av := range arow {
						if av == 0 {
							continue
						}
						p := pan[k*jw : k*jw+jw : k*jw+jw]
						for x, pv := range p {
							acc[x] += av * pv
						}
					}
					copy(orow, acc[:jw])
				}
			}
		}
	}
}

// matMulRowsSmallB is the no-packing variant of matMulRowsBlocked for
// L1-resident B: the same 8-wide accumulator chains stream b's rows in
// their natural layout, one full-K sweep per column block (ascending k, so
// the summation order is unchanged). Overwrites out rows [lo, hi) like the
// packed path.
func matMulRowsSmallB(a, b, out *Matrix, lo, hi int) {
	n := b.cols
	kk := a.cols
	for jb := 0; jb < n; jb += mmColBlock {
		jw := n - jb
		if jw >= mmColBlock {
			jw = mmColBlock
		}
		if jw == mmColBlock {
			for i := lo; i < hi; i++ {
				arow := a.data[i*kk : i*kk+kk : i*kk+kk]
				var c0, c1, c2, c3, c4, c5, c6, c7 float64
				for k, av := range arow {
					if av == 0 {
						continue
					}
					p := b.data[k*n+jb : k*n+jb+mmColBlock : k*n+jb+mmColBlock]
					c0 += av * p[0]
					c1 += av * p[1]
					c2 += av * p[2]
					c3 += av * p[3]
					c4 += av * p[4]
					c5 += av * p[5]
					c6 += av * p[6]
					c7 += av * p[7]
				}
				od := i*n + jb
				orow := out.data[od : od+mmColBlock : od+mmColBlock]
				orow[0], orow[1], orow[2], orow[3] = c0, c1, c2, c3
				orow[4], orow[5], orow[6], orow[7] = c4, c5, c6, c7
			}
		} else {
			for i := lo; i < hi; i++ {
				arow := a.data[i*kk : i*kk+kk : i*kk+kk]
				var acc [mmColBlock]float64
				for k, av := range arow {
					if av == 0 {
						continue
					}
					p := b.data[k*n+jb : k*n+jb+jw : k*n+jb+jw]
					for x, pv := range p {
						acc[x] += av * pv
					}
				}
				od := i*n + jb
				copy(out.data[od:od+jw], acc[:jw])
			}
		}
	}
}

// matMulNTRowsBlocked accumulates rows [lo, hi) of dst += a·bᵀ. Four rows of
// b are dotted against each a-row concurrently — four independent
// accumulator chains, each summing j in ascending order exactly like the
// reference kernel's one-at-a-time dot products.
func matMulNTRowsBlocked(a, b, dst *Matrix, lo, hi int) {
	w := a.cols
	kn := b.rows
	for i := lo; i < hi; i++ {
		arow := a.data[i*w : i*w+w : i*w+w]
		drow := dst.data[i*kn : i*kn+kn : i*kn+kn]
		k := 0
		for ; k+4 <= kn; k += 4 {
			b0 := b.data[k*w : k*w+w : k*w+w]
			b1 := b.data[(k+1)*w : (k+1)*w+w : (k+1)*w+w]
			b2 := b.data[(k+2)*w : (k+2)*w+w : (k+2)*w+w]
			b3 := b.data[(k+3)*w : (k+3)*w+w : (k+3)*w+w]
			var s0, s1, s2, s3 float64
			for j, av := range arow {
				s0 += av * b0[j]
				s1 += av * b1[j]
				s2 += av * b2[j]
				s3 += av * b3[j]
			}
			drow[k] += s0
			drow[k+1] += s1
			drow[k+2] += s2
			drow[k+3] += s3
		}
		for ; k < kn; k++ {
			brow := b.data[k*w : k*w+w : k*w+w]
			s := 0.0
			for j, av := range arow {
				s += av * brow[j]
			}
			drow[k] += s
		}
	}
}

// matMulTNRowsBlocked accumulates dst rows [lo, hi) of dst += aᵀ·b. The
// outer loop stays over m (every dst entry must sum i in ascending order);
// four dst rows are updated per pass so each loaded b-row is reused four
// times from registers. The reference kernel's per-element av == 0 test — a
// data-dependent branch in the second-innermost loop — is hoisted to one
// all-four-zero test per block; the adds it stops skipping are all ±0-valued
// and leave the (never −0) accumulators unchanged.
func matMulTNRowsBlocked(a, b, dst *Matrix, lo, hi int) {
	n := b.cols
	kk := a.cols
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*kk : i*kk+kk : i*kk+kk]
		brow := b.data[i*n : i*n+n : i*n+n]
		k := lo
		for ; k+4 <= hi; k += 4 {
			av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
				// Dense block: one pass over the b-row feeds four
				// independent rank-1 update chains.
				d0 := dst.data[k*n : k*n+n : k*n+n]
				d1 := dst.data[(k+1)*n : (k+1)*n+n : (k+1)*n+n]
				d2 := dst.data[(k+2)*n : (k+2)*n+n : (k+2)*n+n]
				d3 := dst.data[(k+3)*n : (k+3)*n+n : (k+3)*n+n]
				for j, bv := range brow {
					d0[j] += av0 * bv
					d1[j] += av1 * bv
					d2[j] += av2 * bv
					d3[j] += av3 * bv
				}
				continue
			}
			// Sparse block: a is typically a ReLU activation matrix here
			// (~half zeros), so pay one branch per row and run a plain axpy
			// for each nonzero — the skipped ±0 updates cannot change the
			// accumulators.
			for kq := k; kq < k+4; kq++ {
				av := arow[kq]
				if av == 0 {
					continue
				}
				drow := dst.data[kq*n : kq*n+n : kq*n+n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
		for ; k < hi; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			drow := dst.data[k*n : k*n+n : k*n+n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulKernel dispatches one row block of the a·b product to the active
// path. Contract asymmetry: the reference kernel accumulates and requires
// out rows [lo, hi) to be pre-zeroed; the blocked kernel overwrites them.
// Callers (MatMul, MatMulInto) therefore only pay the zeroing pass on the
// reference path.
func matMulKernel(a, b, out *Matrix, lo, hi int) {
	if ActiveKernelPath() == PathReference {
		matMulRows(a, b, out, lo, hi)
		return
	}
	matMulRowsBlocked(a, b, out, lo, hi)
}

// matMulNTKernel dispatches one row block of dst += a·bᵀ to the active path.
func matMulNTKernel(a, b, dst *Matrix, lo, hi int) {
	if ActiveKernelPath() == PathReference {
		matMulNTRows(a, b, dst, lo, hi)
		return
	}
	matMulNTRowsBlocked(a, b, dst, lo, hi)
}

// matMulTNKernel dispatches dst rows [lo, hi) of dst += aᵀ·b to the active path.
func matMulTNKernel(a, b, dst *Matrix, lo, hi int) {
	if ActiveKernelPath() == PathReference {
		matMulTNRows(a, b, dst, lo, hi)
		return
	}
	matMulTNRowsBlocked(a, b, dst, lo, hi)
}
