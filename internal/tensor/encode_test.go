package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := Uniform(7, 5, -100, 100, rng)
	m.Set(0, 0, math.Inf(1))
	m.Set(1, 1, -0.0)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 7 || back.Cols() != 5 {
		t.Fatalf("round-trip dims %dx%d", back.Rows(), back.Cols())
	}
	for i := range m.Data() {
		if math.Float64bits(m.Data()[i]) != math.Float64bits(back.Data()[i]) {
			t.Fatalf("bit mismatch at %d", i)
		}
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	var m Matrix
	if err := m.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on truncated input")
	}
}

func TestUnmarshalBadMagic(t *testing.T) {
	m := New(1, 1)
	blob, _ := m.MarshalBinary()
	blob[0] ^= 0xff
	var back Matrix
	if err := back.UnmarshalBinary(blob); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestUnmarshalWrongPayload(t *testing.T) {
	m := New(2, 2)
	blob, _ := m.MarshalBinary()
	var back Matrix
	if err := back.UnmarshalBinary(blob[:len(blob)-8]); err == nil {
		t.Fatal("expected error on short payload")
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(rows, cols uint8, seed int64) bool {
		r, c := int(rows%6)+1, int(cols%6)+1
		m := Uniform(r, c, -1e6, 1e6, rand.New(rand.NewSource(seed)))
		blob, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var back Matrix
		if err := back.UnmarshalBinary(blob); err != nil {
			return false
		}
		return ApproxEqual(m, &back, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
