package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// In-place and fused kernel variants. These write into caller-provided
// destination buffers instead of allocating, which is what lets the autodiff
// tape run steady-state epochs without touching the garbage collector: the
// tape's shape-keyed free-list hands out recycled buffers and every hot op
// fills them with one of the kernels below.
//
// Accumulating variants (…AddInto, …InPlace) require dst to hold the running
// value; overwriting variants (…Into) fully define dst. All of them check
// shapes and panic on mismatch, like the allocating kernels they mirror.

// AddInto stores a + b into dst (all same shape).
func AddInto(dst, a, b *Matrix) {
	dst.sameShape(a, "AddInto")
	a.sameShape(b, "AddInto")
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// SubInto stores a − b into dst (all same shape).
func SubInto(dst, a, b *Matrix) {
	dst.sameShape(a, "SubInto")
	a.sameShape(b, "SubInto")
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// MulElemInto stores the Hadamard product a ⊙ b into dst (all same shape).
func MulElemInto(dst, a, b *Matrix) {
	dst.sameShape(a, "MulElemInto")
	a.sameShape(b, "MulElemInto")
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// MulElemAddInto accumulates a ⊙ b into dst (all same shape).
func MulElemAddInto(dst, a, b *Matrix) {
	dst.sameShape(a, "MulElemAddInto")
	a.sameShape(b, "MulElemAddInto")
	for i := range dst.data {
		dst.data[i] += a.data[i] * b.data[i]
	}
}

// ScaleInto stores s·a into dst (same shape).
func ScaleInto(dst, a *Matrix, s float64) {
	dst.sameShape(a, "ScaleInto")
	for i := range dst.data {
		dst.data[i] = s * a.data[i]
	}
}

// AddConstInPlace adds the scalar c to every entry of dst.
func AddConstInPlace(dst *Matrix, c float64) {
	for i := range dst.data {
		dst.data[i] += c
	}
}

// AddRowVectorInto stores a + v (v broadcast over rows) into dst.
func AddRowVectorInto(dst, a, v *Matrix) {
	dst.sameShape(a, "AddRowVectorInto")
	if v.rows != 1 || v.cols != a.cols {
		panic(fmt.Sprintf("tensor: AddRowVectorInto %dx%d + %dx%d", a.rows, a.cols, v.rows, v.cols))
	}
	for i := 0; i < a.rows; i++ {
		arow, drow := a.Row(i), dst.Row(i)
		for j := range drow {
			drow[j] = arow[j] + v.data[j]
		}
	}
}

// AddRowSumsInPlace accumulates the column sums of a into the 1×cols dst —
// the backward of a broadcast row addition, fused with its accumulation.
func AddRowSumsInPlace(dst, a *Matrix) {
	if dst.rows != 1 || dst.cols != a.cols {
		panic(fmt.Sprintf("tensor: AddRowSumsInPlace dst %dx%d for %dx%d", dst.rows, dst.cols, a.rows, a.cols))
	}
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		for j := range arow {
			dst.data[j] += arow[j]
		}
	}
}

// GatherInto stores the matrix whose i-th row is a.Row(idx[i]) into dst.
func GatherInto(dst, a *Matrix, idx []int) {
	if dst.rows != len(idx) || dst.cols != a.cols {
		panic(fmt.Sprintf("tensor: GatherInto dst %dx%d for %d rows of %dx%d",
			dst.rows, dst.cols, len(idx), a.rows, a.cols))
	}
	for i, r := range idx {
		if r < 0 || r >= a.rows {
			panic(fmt.Sprintf("tensor: GatherInto index %d out of range [0,%d)", r, a.rows))
		}
		copy(dst.Row(i), a.Row(r))
	}
}

// GatherAddInto accumulates src.Row(idx[i]) into dst.Row(i) — the backward
// of a segment sum, fused with its accumulation.
func GatherAddInto(dst, src *Matrix, idx []int) {
	if dst.rows != len(idx) || dst.cols != src.cols {
		panic(fmt.Sprintf("tensor: GatherAddInto dst %dx%d for %d rows of %dx%d",
			dst.rows, dst.cols, len(idx), src.rows, src.cols))
	}
	for i, r := range idx {
		drow, srow := dst.Row(i), src.Row(r)
		for j := range drow {
			drow[j] += srow[j]
		}
	}
}

// SoftmaxRowsInto stores the row-wise softmax of a into dst, numerically
// stabilized like SoftmaxRows.
func SoftmaxRowsInto(dst, a *Matrix) {
	dst.sameShape(a, "SoftmaxRowsInto")
	for i := 0; i < a.rows; i++ {
		row, orow := a.Row(i), dst.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
}

// MatMulInto stores a·b into dst (dst is m×n for a m×k, b k×n). The kernel,
// loop order, and parallel fan-out threshold match MatMul exactly, so the
// two produce bit-identical results.
func MatMulInto(dst, a, b *Matrix) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMulInto inner dims %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d for %dx%d product", dst.rows, dst.cols, a.rows, b.cols))
	}
	// The blocked kernel overwrites its rows, so only the accumulating
	// reference kernel needs dst cleared first.
	if ActiveKernelPath() == PathReference {
		dst.Zero()
	}
	workers := matMulWorkers(a.rows, a.cols, b.cols)
	if workers <= 1 {
		matMulKernel(a, b, dst, 0, a.rows)
		return
	}
	parallelRowBlocks(a.rows, workers, func(lo, hi int) {
		matMulKernel(a, b, dst, lo, hi)
	})
}

// MatMulNTAddInto accumulates a·bᵀ into dst (dst m×k for a m×n, b k×n) —
// the dX term of a matmul backward, fused so neither the transpose nor the
// product allocates. Per-entry summation runs in ascending column order of
// a, keeping results deterministic for any worker count.
func MatMulNTAddInto(dst, a, b *Matrix) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulNTAddInto inner dims %dx%d · (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMulNTAddInto dst %dx%d for %dx%d product", dst.rows, dst.cols, a.rows, b.rows))
	}
	workers := matMulWorkers(a.rows, a.cols, b.rows)
	if workers <= 1 {
		matMulNTKernel(a, b, dst, 0, a.rows)
		return
	}
	parallelRowBlocks(a.rows, workers, func(lo, hi int) {
		matMulNTKernel(a, b, dst, lo, hi)
	})
}

// matMulNTRows is the scalar reference kernel for rows [lo, hi) of
// dst += a·bᵀ: one dot product at a time, j ascending.
func matMulNTRows(a, b, dst *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < b.rows; k++ {
			brow := b.Row(k)
			s := 0.0
			for j, av := range arow {
				s += av * brow[j]
			}
			drow[k] += s
		}
	}
}

// MatMulTNAddInto accumulates aᵀ·b into dst (dst k×n for a m×k, b m×n) —
// the dW term of a matmul backward, fused like MatMulNTAddInto. Parallel
// blocks split dst rows; every entry still sums over m in ascending order,
// so results are deterministic for any worker count.
func MatMulTNAddInto(dst, a, b *Matrix) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: MatMulTNAddInto inner dims (%dx%d)ᵀ · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulTNAddInto dst %dx%d for %dx%d product", dst.rows, dst.cols, a.cols, b.cols))
	}
	workers := matMulWorkers(a.cols, a.rows, b.cols)
	if workers <= 1 {
		matMulTNKernel(a, b, dst, 0, dst.rows)
		return
	}
	parallelRowBlocks(dst.rows, workers, func(lo, hi int) {
		matMulTNKernel(a, b, dst, lo, hi)
	})
}

// matMulTNRows is the scalar reference kernel for dst rows [lo, hi) of
// dst += aᵀ·b: rank-1 updates with a per-element sparsity branch, i ascending
// for every entry.
func matMulTNRows(a, b, dst *Matrix, lo, hi int) {
	for i := 0; i < a.rows; i++ {
		arow, brow := a.Row(i), b.Row(i)
		for k := lo; k < hi; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			drow := dst.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulWorkers sizes the worker fan-out for an m×k·k×n-shaped kernel,
// mirroring MatMul's flop threshold.
func matMulWorkers(m, k, n int) int {
	if flops := m * k * n; flops < matMulParallelThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > m {
		w = m
	}
	return w
}

// parallelRowBlocks runs body over [0, rows) split into contiguous blocks,
// one goroutine per block.
func parallelRowBlocks(rows, workers int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
