package tensor

import (
	"fmt"
	"math"
)

// The allocating kernels below are thin wrappers over their Into/fused
// twins in inplace.go, so each kernel has exactly one implementation.

// Add returns a + b elementwise.
func Add(a, b *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	AddInto(out, a, b)
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	SubInto(out, a, b)
	return out
}

// MulElem returns the Hadamard (elementwise) product a ⊙ b.
func MulElem(a, b *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	MulElemInto(out, a, b)
	return out
}

// Scale returns s·a.
func Scale(a *Matrix, s float64) *Matrix {
	out := New(a.rows, a.cols)
	ScaleInto(out, a, s)
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	a.sameShape(b, "AddInPlace")
	for i := range a.data {
		a.data[i] += b.data[i]
	}
}

// AddScaledInPlace accumulates s·b into a.
func AddScaledInPlace(a *Matrix, s float64, b *Matrix) {
	a.sameShape(b, "AddScaledInPlace")
	for i := range a.data {
		a.data[i] += s * b.data[i]
	}
}

// SumInto accumulates every src into dst in argument order. It is the
// reduction entry point of the device-parallel trainer: the summation order
// is fixed by the caller (shard order), so the result is bit-identical no
// matter how many workers produced the inputs. Nil sources are skipped.
func SumInto(dst *Matrix, srcs ...*Matrix) {
	for _, s := range srcs {
		if s != nil {
			AddInPlace(dst, s)
		}
	}
}

// ScaleInPlace multiplies every entry of a by s.
func ScaleInPlace(a *Matrix, s float64) {
	for i := range a.data {
		a.data[i] *= s
	}
}

// matMulParallelThreshold is the flop count above which MatMul fans out
// across CPUs. Row blocks write disjoint output ranges, so no locking is
// needed.
const matMulParallelThreshold = 1 << 21

// MatMul returns a·b for a (m×k) and b (k×n). Large products are computed
// in parallel across row blocks.
func MatMul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	workers := matMulWorkers(a.rows, a.cols, b.cols)
	if workers <= 1 {
		matMulKernel(a, b, out, 0, a.rows)
		return out
	}
	parallelRowBlocks(a.rows, workers, func(lo, hi int) {
		matMulKernel(a, b, out, lo, hi)
	})
	return out
}

// matMulRows is the scalar reference kernel for rows [lo, hi) of
// out += a·b: an ikj loop order for cache-friendly access to b and out rows,
// with a per-element sparsity skip on a.
func matMulRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := New(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[j*out.cols+i] = a.data[i*a.cols+j]
		}
	}
	return out
}

// AddRowVector returns a with the 1×cols row vector v added to every row.
func AddRowVector(a, v *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	AddRowVectorInto(out, a, v)
	return out
}

// SumRows returns the 1×cols vector of column sums (summing down each column).
func SumRows(a *Matrix) *Matrix {
	out := New(1, a.cols)
	AddRowSumsInPlace(out, a)
	return out
}

// Sum returns the sum of all entries.
func Sum(a *Matrix) float64 {
	s := 0.0
	for _, v := range a.data {
		s += v
	}
	return s
}

// Mean returns the mean of all entries (0 for an empty matrix).
func Mean(a *Matrix) float64 {
	if len(a.data) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a.data))
}

// Apply returns f applied elementwise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = f(v)
	}
	return out
}

// Gather returns the matrix whose i-th row is a.Row(idx[i]).
func Gather(a *Matrix, idx []int) *Matrix {
	out := New(len(idx), a.cols)
	GatherInto(out, a, idx)
	return out
}

// ScatterAddRows adds each row i of src into dst.Row(idx[i]).
func ScatterAddRows(dst, src *Matrix, idx []int) {
	if src.rows != len(idx) || src.cols != dst.cols {
		panic(fmt.Sprintf("tensor: ScatterAddRows src %dx%d idx %d dst %dx%d",
			src.rows, src.cols, len(idx), dst.rows, dst.cols))
	}
	for i, r := range idx {
		drow := dst.Row(r)
		srow := src.Row(i)
		for j := range drow {
			drow[j] += srow[j]
		}
	}
}

// RowDot returns the dot product of rows i of a and j of b.
func RowDot(a *Matrix, i int, b *Matrix, j int) float64 {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: RowDot cols %d vs %d", a.cols, b.cols))
	}
	ra, rb := a.Row(i), b.Row(j)
	s := 0.0
	for k := range ra {
		s += ra[k] * rb[k]
	}
	return s
}

// ArgMaxRow returns the column index of the maximum entry in row i.
func ArgMaxRow(a *Matrix, i int) int {
	row := a.Row(i)
	best, bi := math.Inf(-1), 0
	for j, v := range row {
		if v > best {
			best, bi = v, j
		}
	}
	return bi
}

// SoftmaxRows returns row-wise softmax of a, numerically stabilized.
func SoftmaxRows(a *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	SoftmaxRowsInto(out, a)
	return out
}

// MaxAbs returns the maximum absolute entry value (0 for empty).
func MaxAbs(a *Matrix) float64 {
	mx := 0.0
	for _, v := range a.data {
		if av := math.Abs(v); av > mx {
			mx = av
		}
	}
	return mx
}

// Norm2 returns the Frobenius norm.
func Norm2(a *Matrix) float64 {
	s := 0.0
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ApproxEqual reports whether a and b have the same shape and every entry
// differs by at most tol.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any entry is NaN or ±Inf.
func HasNaN(a *Matrix) bool {
	for _, v := range a.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// VStack concatenates matrices vertically. All inputs must share a column
// count; empty inputs are skipped. VStack of nothing returns a 0×0 matrix.
func VStack(ms ...*Matrix) *Matrix {
	rows, cols := 0, -1
	for _, m := range ms {
		if m == nil || m.rows == 0 {
			continue
		}
		if cols == -1 {
			cols = m.cols
		} else if m.cols != cols {
			panic(fmt.Sprintf("tensor: VStack cols %d vs %d", m.cols, cols))
		}
		rows += m.rows
	}
	if cols == -1 {
		return New(0, 0)
	}
	out := New(rows, cols)
	r := 0
	for _, m := range ms {
		if m == nil || m.rows == 0 {
			continue
		}
		copy(out.data[r*cols:], m.data)
		r += m.rows
	}
	return out
}

// HStack concatenates matrices horizontally. All inputs must share a row count.
func HStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].rows
	cols := 0
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("tensor: HStack rows %d vs %d", m.rows, rows))
		}
		cols += m.cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		for _, m := range ms {
			copy(out.data[i*cols+off:i*cols+off+m.cols], m.Row(i))
			off += m.cols
		}
	}
	return out
}
