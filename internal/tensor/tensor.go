// Package tensor provides dense float64 matrices and the numerical kernels
// used by the autodiff tape and the GNN layers. It is deliberately small:
// row-major storage, shape-checked operations, and no external dependencies.
//
// Shape errors are programmer errors and panic with a diagnostic message,
// following the convention of numeric Go libraries; everything that can fail
// at runtime for data-dependent reasons returns an error instead.
//
// # Kernel design
//
// The matmul kernels come in two selectable implementations (SetKernelPath):
// the default register-blocked path and a scalar reference path that
// preserves the original straight-line loops. Blocking scheme:
//
//   - MatMul/MatMulInto (kernels.go: matMulRowsBlocked) packs B into
//     256×8 L1-resident panels and streams each A-row against a panel with
//     8 independent accumulator chains, one per output column; when B
//     itself fits in half of L1 (≤2048 float64s — every 16-wide model
//     layer) a no-packing variant streams B in its natural layout. The
//     blocked kernel overwrites its output rows, so MatMulInto skips the
//     dst-zeroing pass the accumulating reference kernel needs. Per-element
//     a==0 skips exploit ReLU-activation sparsity (~half zeros in hidden
//     layers).
//   - MatMulNTAddInto (matMulNTRowsBlocked) dots each A-row against 4 rows
//     of B concurrently — 4 independent dot-product chains.
//   - MatMulTNAddInto (matMulTNRowsBlocked) performs rank-1 updates into 4
//     destination rows per pass. Blocks whose 4 A-values are all nonzero
//     reuse each loaded B-row 4× from registers; blocks with any zero fall
//     back to per-row conditional axpys, keeping the reference path's
//     sparsity win on activation matrices.
//
// The summation order is frozen: every output entry sums its reduction
// index in ascending order on both paths, because training determinism is a
// repo-wide contract — golden loss traces are stored as exact hex floats,
// and Workers=1 vs Workers=N must be bit-identical. Blocked and reference
// paths therefore differ only in (a) instruction scheduling across
// *independent* accumulator chains and (b) whether ±0-valued terms are
// skipped or added; neither changes any finite result bit (x + ±0 == x for
// x ≠ 0, (+0) + (−0) == +0 in round-to-nearest, and an accumulator that
// starts at +0 and only ever receives += can never become −0). On
// non-finite inputs the paths may differ (the reference path's sparsity
// skip drops 0·±Inf = NaN terms); training data is finite by construction
// (see HasNaN guards upstream).
//
// To add a kernel path: add the constant in kernels.go, accept its spelling
// in ParseKernelPath, dispatch to it in matMulKernel/matMulNTKernel/
// matMulTNKernel, and extend the equivalence property tests
// (kernels_test.go) — they assert bit-identity against the reference path
// over randomized shapes, so a path that reorders summation fails loudly.
//
// CSR (csr.go) is the sparse counterpart: destination-grouped edges in
// stable original edge order let CSRAggregateInto fuse the
// Gather→ScaleRows/MulRowsByCol→SegmentSum neighborhood-aggregation chain
// into one pass with no per-edge message materialization, bit-identical to
// the unfused chain by construction. It overwrites its output (empty
// segments zeroed, each segment's first term stored through one +0 add so
// a −0 first product canonicalizes exactly like the unfused chain's
// +0-starting accumulator), so callers can hand it recycled buffers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix. The slice
// is used directly, not copied.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("tensor: ragged row %d: len %d != %d", i, len(r), c))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Full returns a rows×cols matrix with every entry set to v.
func Full(rows, cols int, v float64) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = v
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Uniform returns a rows×cols matrix with entries drawn from U[lo, hi).
func Uniform(rows, cols int, lo, hi float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = lo + (hi-lo)*rng.Float64()
	}
	return m
}

// Normal returns a rows×cols matrix with entries drawn from N(mean, std²).
func Normal(rows, cols int, mean, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = mean + std*rng.NormFloat64()
	}
	return m
}

// Glorot returns a rows×cols matrix with Glorot/Xavier uniform initialization,
// the standard initialization for GCN and GAT weight matrices.
func Glorot(rows, cols int, rng *rand.Rand) *Matrix {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	return Uniform(rows, cols, -limit, limit, rng)
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// Size returns rows*cols.
func (m *Matrix) Size() int { return len(m.data) }

// Data returns the underlying row-major slice (not a copy).
func (m *Matrix) Data() []float64 { return m.data }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("tensor: row %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("tensor: SetRow len %d != cols %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// SliceRows returns the sub-matrix of rows [lo, hi) as a view sharing m's
// storage — no copy; writes through either alias are visible to both.
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", lo, hi, m.rows))
	}
	return &Matrix{rows: hi - lo, cols: m.cols, data: m.data[lo*m.cols : hi*m.cols]}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies the contents of src (same shape) into m.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.sameShape(src, "CopyFrom")
	copy(m.data, src.data)
}

// Zero sets every entry to 0.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every entry to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

func (m *Matrix) sameShape(o *Matrix, op string) {
	if m.rows != o.rows || m.cols != o.cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, o.rows, o.cols))
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.rows*m.cols > 100 {
		return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
