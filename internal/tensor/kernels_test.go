package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The kernel-equivalence property tests: the blocked kernels must match the
// scalar reference kernels bit for bit (==, not ApproxEqual) over randomized
// shapes, including degenerate 1×N / N×1 / empty dimensions and inputs
// salted with exact ±0 entries (the only values where the two paths take
// different instruction sequences).

// saltedMatrix fills a rows×cols matrix with random values, forcing ~30% of
// entries to exact zero (half of those −0) to exercise the reference path's
// sparsity branches.
func saltedMatrix(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	d := m.Data()
	for i := range d {
		switch r := rng.Float64(); {
		case r < 0.15:
			d[i] = 0
		case r < 0.30:
			d[i] = math.Copysign(0, -1)
		default:
			d[i] = rng.NormFloat64()
		}
	}
	return m
}

// positiveSalted is saltedMatrix without −0 entries, for accumulation
// destinations: real gradient buffers can never hold −0 (they start at +0
// and only receive +=), and a −0 destination is the one place where the
// hoisted TN sparsity check could legally differ from the per-element one.
func positiveSalted(rows, cols int, rng *rand.Rand) *Matrix {
	m := saltedMatrix(rows, cols, rng)
	d := m.Data()
	for i := range d {
		if d[i] == 0 {
			d[i] = 0 // normalizes −0 to +0
		}
	}
	return m
}

func requireBitIdentical(t *testing.T, name string, want, got *Matrix) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, want.Rows(), want.Cols(), got.Rows(), got.Cols())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
			t.Fatalf("%s: entry %d differs: %x vs %x (%v vs %v)",
				name, i, math.Float64bits(wd[i]), math.Float64bits(gd[i]), wd[i], gd[i])
		}
	}
}

// kernelShapes yields the randomized (m, k, n) triples shared by the matmul
// equivalence tests: every combination of edge sizes around the block
// boundaries plus random rectangles.
func kernelShapes(rng *rand.Rand) [][3]int {
	edge := []int{1, 2, 3, 5, 8, 9, 16, 17, 31, 64}
	shapes := [][3]int{
		{1, 1, 1}, {1, 300, 1}, {1, 7, 40}, {40, 7, 1}, // 1×N and N×1 extremes
		{3, 0, 4}, {0, 5, 3}, {4, 5, 0}, // empty dimensions
		{33, 257, 9}, {5, 512, 8}, {2, 259, 17}, // K-panel boundary crossers
	}
	for i := 0; i < 24; i++ {
		shapes = append(shapes, [3]int{
			edge[rng.Intn(len(edge))],
			edge[rng.Intn(len(edge))],
			edge[rng.Intn(len(edge))],
		})
	}
	return shapes
}

func withPath(t *testing.T, p KernelPath, fn func()) {
	t.Helper()
	old := ActiveKernelPath()
	SetKernelPath(p)
	defer SetKernelPath(old)
	fn()
}

func TestKernelEquivalenceMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range kernelShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := saltedMatrix(m, k, rng)
		b := saltedMatrix(k, n, rng)

		ref := New(m, n)
		matMulRows(a, b, ref, 0, m)
		blk := New(m, n)
		matMulRowsBlocked(a, b, blk, 0, m)
		requireBitIdentical(t, "matMulRowsBlocked", ref, blk)

		// The public entry points under both paths, including the parallel
		// fan-out for large shapes.
		var viaRef, viaBlk *Matrix
		withPath(t, PathReference, func() { viaRef = MatMul(a, b) })
		withPath(t, PathBlocked, func() { viaBlk = MatMul(a, b) })
		requireBitIdentical(t, "MatMul paths", viaRef, viaBlk)

		// MatMulInto must yield the product regardless of dst's prior
		// contents on both paths (blocked overwrites, reference re-zeroes).
		intoB := saltedMatrix(m, n, rng)
		withPath(t, PathBlocked, func() { MatMulInto(intoB, a, b) })
		requireBitIdentical(t, "MatMulInto blocked", viaRef, intoB)
		intoR := saltedMatrix(m, n, rng)
		withPath(t, PathReference, func() { MatMulInto(intoR, a, b) })
		requireBitIdentical(t, "MatMulInto reference", viaRef, intoR)
	}
}

func TestKernelEquivalenceMatMulNT(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range kernelShapes(rng) {
		m, w, k := sh[0], sh[1], sh[2]
		a := saltedMatrix(m, w, rng)
		b := saltedMatrix(k, w, rng)
		seed := saltedMatrix(m, k, rng) // NT has no sparsity skip: any dst is fair

		ref := seed.Clone()
		matMulNTRows(a, b, ref, 0, m)
		blk := seed.Clone()
		matMulNTRowsBlocked(a, b, blk, 0, m)
		requireBitIdentical(t, "matMulNTRowsBlocked", ref, blk)

		viaRef, viaBlk := seed.Clone(), seed.Clone()
		withPath(t, PathReference, func() { MatMulNTAddInto(viaRef, a, b) })
		withPath(t, PathBlocked, func() { MatMulNTAddInto(viaBlk, a, b) })
		requireBitIdentical(t, "MatMulNTAddInto paths", viaRef, viaBlk)
	}
}

func TestKernelEquivalenceMatMulTN(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, sh := range kernelShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := saltedMatrix(m, k, rng)
		b := saltedMatrix(m, n, rng)
		seed := positiveSalted(k, n, rng)

		ref := seed.Clone()
		matMulTNRows(a, b, ref, 0, k)
		blk := seed.Clone()
		matMulTNRowsBlocked(a, b, blk, 0, k)
		requireBitIdentical(t, "matMulTNRowsBlocked", ref, blk)

		viaRef, viaBlk := seed.Clone(), seed.Clone()
		withPath(t, PathReference, func() { MatMulTNAddInto(viaRef, a, b) })
		withPath(t, PathBlocked, func() { MatMulTNAddInto(viaBlk, a, b) })
		requireBitIdentical(t, "MatMulTNAddInto paths", viaRef, viaBlk)
	}
}

// randomEdges draws m random edges into nseg segments from nsrc source rows,
// leaving some segments empty and some sources isolated by construction.
func randomEdges(nsrc, nseg, m int, rng *rand.Rand) (src, dst []int) {
	src = make([]int, m)
	dst = make([]int, m)
	for e := 0; e < m; e++ {
		src[e] = rng.Intn(nsrc)
		dst[e] = rng.Intn(nseg)
	}
	return src, dst
}

// TestCSRAggregateKernelMatchesScatter checks the raw CSR forward kernel
// against the unfused Gather→scale→ScatterAddRows sequence, bit for bit,
// over random graphs including empty segments and isolated nodes.
func TestCSRAggregateKernelMatchesScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cases := []struct{ nsrc, nseg, m, c int }{
		{1, 1, 1, 1}, {1, 5, 4, 3}, {8, 3, 20, 16}, {30, 40, 12, 7},
		{16, 16, 0, 5}, {6, 9, 200, 16}, {50, 50, 120, 1},
	}
	for _, tc := range cases {
		src, dst := randomEdges(tc.nsrc, tc.nseg, tc.m, rng)
		a := saltedMatrix(tc.nsrc, tc.c, rng)
		coef := make([]float64, tc.m)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		csr := NewCSR(tc.nseg, src, dst)

		// Unfused: materialize the scaled message matrix, then scatter.
		msg := Gather(a, src)
		for e := 0; e < tc.m; e++ {
			row := msg.Row(e)
			for j := range row {
				row[j] = coef[e] * row[j]
			}
		}
		want := New(tc.nseg, tc.c)
		ScatterAddRows(want, msg, dst)

		// The kernel overwrites: a garbage-prefilled dst must still yield
		// the aggregation (empty segments zeroed, −0 first terms
		// canonicalized to +0 like the unfused chain's +0 accumulators).
		got := saltedMatrix(tc.nseg, tc.c, rng)
		CSRAggregateInto(got, a, csr, coef)
		requireBitIdentical(t, "CSRAggregateInto", want, got)

		// Unweighted variant against a plain scatter of the gathered rows.
		wantU := New(tc.nseg, tc.c)
		ScatterAddRows(wantU, Gather(a, src), dst)
		gotU := saltedMatrix(tc.nseg, tc.c, rng)
		CSRAggregateInto(gotU, a, csr, nil)
		requireBitIdentical(t, "CSRAggregateInto unweighted", wantU, gotU)
	}
}

// TestCSRGroupingStable pins the CSR layout contract: slots grouped by
// destination, original edge order within each segment, empty segments
// skipped.
func TestCSRGroupingStable(t *testing.T) {
	//            e0     e1     e2     e3     e4
	src := []int{3, 1, 4, 1, 5}
	dst := []int{2, 0, 2, 2, 0}
	csr := NewCSR(4, src, dst)
	if csr.NSeg != 4 || csr.NumEdges() != 5 {
		t.Fatalf("NSeg=%d NumEdges=%d", csr.NSeg, csr.NumEdges())
	}
	wantSegs := []int{0, 2}
	wantStarts := []int{0, 2, 5}
	wantSrcs := []int{1, 5, 3, 4, 1}  // seg 0: e1,e4; seg 2: e0,e2,e3
	wantEdges := []int{1, 4, 0, 2, 3} // ascending within each segment
	for i, v := range wantSegs {
		if csr.Segs[i] != v {
			t.Fatalf("Segs=%v want %v", csr.Segs, wantSegs)
		}
	}
	for i, v := range wantStarts {
		if csr.Starts[i] != v {
			t.Fatalf("Starts=%v want %v", csr.Starts, wantStarts)
		}
	}
	for i := range wantSrcs {
		if csr.Srcs[i] != wantSrcs[i] || csr.Edges[i] != wantEdges[i] {
			t.Fatalf("Srcs=%v Edges=%v want %v %v", csr.Srcs, csr.Edges, wantSrcs, wantEdges)
		}
	}
}
