package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of matrices: a fixed little-endian header (magic, rows,
// cols) followed by the row-major float64 payload. Used for model
// checkpointing and dataset serialization.

const matrixMagic = uint32(0x4c4d5458) // "LMTX"

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Matrix) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 12+8*len(m.data))
	binary.LittleEndian.PutUint32(buf[0:4], matrixMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(m.rows))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(m.cols))
	for i, v := range m.data {
		binary.LittleEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Matrix) UnmarshalBinary(buf []byte) error {
	if len(buf) < 12 {
		return fmt.Errorf("tensor: truncated matrix header (%d bytes)", len(buf))
	}
	if magic := binary.LittleEndian.Uint32(buf[0:4]); magic != matrixMagic {
		return fmt.Errorf("tensor: bad matrix magic %#x", magic)
	}
	rows := int(binary.LittleEndian.Uint32(buf[4:8]))
	cols := int(binary.LittleEndian.Uint32(buf[8:12]))
	want := 12 + 8*rows*cols
	if len(buf) != want {
		return fmt.Errorf("tensor: matrix payload %d bytes, want %d for %dx%d", len(buf), want, rows, cols)
	}
	m.rows, m.cols = rows, cols
	m.data = make([]float64, rows*cols)
	for i := range m.data {
		m.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[12+8*i:]))
	}
	return nil
}
