package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubMulScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := Add(a, b); !ApproxEqual(got, FromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !ApproxEqual(got, Full(2, 2, 4), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := MulElem(a, b); !ApproxEqual(got, FromRows([][]float64{{5, 12}, {21, 32}}), 0) {
		t.Fatalf("MulElem = %v", got)
	}
	if got := Scale(a, 2); !ApproxEqual(got, FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestAddShapeMismatch(t *testing.T) {
	defer expectPanic(t, "Add shape mismatch")
	Add(New(2, 2), New(2, 3))
}

func TestInPlaceOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	AddInPlace(a, FromRows([][]float64{{1, 1}}))
	if a.At(0, 1) != 3 {
		t.Fatalf("AddInPlace = %v", a)
	}
	AddScaledInPlace(a, -2, FromRows([][]float64{{1, 1}}))
	if a.At(0, 0) != 0 || a.At(0, 1) != 1 {
		t.Fatalf("AddScaledInPlace = %v", a)
	}
	ScaleInPlace(a, 10)
	if a.At(0, 1) != 10 {
		t.Fatalf("ScaleInPlace = %v", a)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if got := MatMul(a, b); !ApproxEqual(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Uniform(5, 5, -1, 1, rng)
	if !ApproxEqual(MatMul(a, Eye(5)), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !ApproxEqual(MatMul(Eye(5), a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulDimMismatch(t *testing.T) {
	defer expectPanic(t, "MatMul inner dims")
	MatMul(New(2, 3), New(2, 3))
}

func TestQuickMatMulAssociativeWithVector(t *testing.T) {
	// (A·B)·x == A·(B·x) for random small matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Uniform(4, 3, -2, 2, rng)
		b := Uniform(3, 5, -2, 2, rng)
		x := Uniform(5, 1, -2, 2, rng)
		return ApproxEqual(MatMul(MatMul(a, b), x), MatMul(a, MatMul(b, x)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := Transpose(a)
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose = %v", at)
	}
	if !ApproxEqual(Transpose(at), a, 0) {
		t.Fatal("double transpose changed the matrix")
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := FromRows([][]float64{{10, 20}})
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if got := AddRowVector(a, v); !ApproxEqual(got, want, 0) {
		t.Fatalf("AddRowVector = %v", got)
	}
}

func TestSumRowsMeanSum(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := SumRows(a); !ApproxEqual(got, FromRows([][]float64{{4, 6}}), 0) {
		t.Fatalf("SumRows = %v", got)
	}
	if Sum(a) != 10 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Mean(a) != 2.5 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	if Mean(New(0, 0)) != 0 {
		t.Fatal("Mean of empty must be 0")
	}
}

func TestApply(t *testing.T) {
	a := FromRows([][]float64{{-1, 4}})
	got := Apply(a, math.Abs)
	if got.At(0, 0) != 1 || got.At(0, 1) != 4 {
		t.Fatalf("Apply = %v", got)
	}
}

func TestGatherScatter(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	g := Gather(a, []int{2, 0, 2})
	want := FromRows([][]float64{{3, 3}, {1, 1}, {3, 3}})
	if !ApproxEqual(g, want, 0) {
		t.Fatalf("Gather = %v", g)
	}
	dst := New(3, 2)
	ScatterAddRows(dst, g, []int{1, 1, 0})
	// row1 += (3,3)+(1,1); row0 += (3,3)
	if dst.At(1, 0) != 4 || dst.At(0, 0) != 3 || dst.At(2, 0) != 0 {
		t.Fatalf("ScatterAddRows = %v", dst)
	}
}

func TestGatherOutOfRange(t *testing.T) {
	defer expectPanic(t, "Gather out of range")
	Gather(New(2, 2), []int{5})
}

func TestQuickGatherScatterAdjoint(t *testing.T) {
	// <Gather(A,idx), B> == <A, ScatterAdd(B,idx)> — the adjoint identity
	// the autodiff backward pass relies on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Uniform(6, 3, -1, 1, rng)
		idx := make([]int, 10)
		for i := range idx {
			idx[i] = rng.Intn(6)
		}
		b := Uniform(10, 3, -1, 1, rng)
		ga := Gather(a, idx)
		lhs := Sum(MulElem(ga, b))
		sc := New(6, 3)
		ScatterAddRows(sc, b, idx)
		rhs := Sum(MulElem(a, sc))
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := RowDot(a, 0, a, 1); got != 4+10+18 {
		t.Fatalf("RowDot = %v", got)
	}
}

func TestArgMaxRow(t *testing.T) {
	a := FromRows([][]float64{{0.2, 0.9, 0.1}, {5, 1, 7}})
	if ArgMaxRow(a, 0) != 1 || ArgMaxRow(a, 1) != 2 {
		t.Fatal("ArgMaxRow wrong")
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromRows([][]float64{{1, 1, 1}, {1000, 1000, 1001}})
	s := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		rowSum := 0.0
		for j := 0; j < 3; j++ {
			rowSum += s.At(i, j)
		}
		if math.Abs(rowSum-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", i, rowSum)
		}
	}
	if math.Abs(s.At(0, 0)-1.0/3) > 1e-12 {
		t.Fatal("uniform logits must give uniform softmax")
	}
	if HasNaN(s) {
		t.Fatal("softmax overflowed on large logits")
	}
}

func TestMaxAbsNorm(t *testing.T) {
	a := FromRows([][]float64{{-3, 4}})
	if MaxAbs(a) != 4 {
		t.Fatalf("MaxAbs = %v", MaxAbs(a))
	}
	if math.Abs(Norm2(a)-5) > 1e-12 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
}

func TestHasNaN(t *testing.T) {
	a := New(1, 2)
	if HasNaN(a) {
		t.Fatal("zero matrix has no NaN")
	}
	a.Set(0, 1, math.Inf(1))
	if !HasNaN(a) {
		t.Fatal("Inf not detected")
	}
}

func TestVStack(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	v := VStack(a, nil, b, New(0, 2))
	if v.Rows() != 3 || v.At(2, 1) != 6 {
		t.Fatalf("VStack = %v", v)
	}
	if e := VStack(); e.Rows() != 0 {
		t.Fatal("VStack() should be empty")
	}
}

func TestVStackColsMismatch(t *testing.T) {
	defer expectPanic(t, "VStack cols mismatch")
	VStack(New(1, 2), New(1, 3))
}

func TestHStack(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	h := HStack(a, b)
	if h.Cols() != 3 || h.At(1, 2) != 6 || h.At(0, 0) != 1 {
		t.Fatalf("HStack = %v", h)
	}
}

func TestApproxEqualShapes(t *testing.T) {
	if ApproxEqual(New(1, 2), New(2, 1), 1) {
		t.Fatal("shape mismatch must not be equal")
	}
	if !ApproxEqual(Full(2, 2, 1), Full(2, 2, 1.0005), 1e-3) {
		t.Fatal("within tolerance must be equal")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Force the parallel path with a product above the flop threshold and
	// compare against the serial row kernel.
	rng := rand.New(rand.NewSource(77))
	a := Uniform(700, 300, -1, 1, rng)
	b := Uniform(300, 64, -1, 1, rng)
	got := MatMul(a, b) // 700*300*64 ≈ 13.4M flops → parallel
	want := New(700, 64)
	matMulRows(a, b, want, 0, 700)
	if !ApproxEqual(got, want, 0) {
		t.Fatal("parallel MatMul differs from serial kernel")
	}
}

func TestSumInto(t *testing.T) {
	dst := FromRows([][]float64{{1, 2}, {3, 4}})
	a := FromRows([][]float64{{10, 20}, {30, 40}})
	b := FromRows([][]float64{{100, 200}, {300, 400}})
	SumInto(dst, a, nil, b)
	want := FromRows([][]float64{{111, 222}, {333, 444}})
	if !ApproxEqual(dst, want, 0) {
		t.Fatalf("SumInto = %v, want %v", dst, want)
	}
	SumInto(dst) // no sources: no-op
	if !ApproxEqual(dst, want, 0) {
		t.Fatal("SumInto with no sources changed dst")
	}
}

func TestSumIntoShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	SumInto(New(2, 2), New(2, 3))
}
