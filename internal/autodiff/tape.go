package autodiff

import "lumos/internal/tensor"

// tapeChunk is the Value-slab chunk size. Chunks have a fixed length so a
// growing tape never relocates live Values — pointers handed out by node
// constructors stay valid for the life of the tape.
const tapeChunk = 256

// bufPool is the free-list for one matrix shape: buffers checked out since
// the last Reset live in bufs[:next], recyclable ones in bufs[next:].
type bufPool struct {
	bufs []*tensor.Matrix
	next int
}

// Tape owns the memory of a differentiation graph that is rebuilt with the
// same structure over and over — the training engine's per-epoch forward
// pass. Ops record their result nodes onto the tape in construction order,
// so Backward on a tape-bound value is a reverse linear sweep with no
// topological sort; Reset recycles every node and every buffer (outputs,
// gradients, op scratch) for the next epoch instead of dropping them to the
// garbage collector. After the first epoch warms the arenas, steady-state
// epochs allocate almost nothing.
//
// The tape enters a graph through its Var/Const leaves: any op whose inputs
// carry a tape records onto that same tape and draws its buffers from the
// tape's shape-keyed free-list. Ops over plain Var/Const leaves (no tape)
// behave exactly as before — fresh allocations, depth-first backward — so
// existing callers are untouched. Mixing values from two different tapes in
// one op is allowed and falls back to the untaped path for that node.
//
// A Tape is not safe for concurrent use; give each worker its own (the
// engine keeps one per shard). Reset must not run while any Value or matrix
// handed out since the previous Reset is still in use — the memory is
// recycled, not freed.
type Tape struct {
	chunks [][]Value
	used   int
	pools  map[int64]*bufPool
}

// NewTape returns an empty tape.
func NewTape() *Tape {
	return &Tape{pools: make(map[int64]*bufPool)}
}

// Len returns the number of live nodes recorded since the last Reset.
func (t *Tape) Len() int { return t.used }

// Reset recycles every node and buffer recorded since the last Reset. All
// Values and matrices previously handed out become invalid: the next epoch's
// ops will reuse their memory.
func (t *Tape) Reset() {
	t.used = 0
	for _, p := range t.pools {
		p.next = 0
	}
}

// Matrix checks a zeroed rows×cols buffer out of the tape's free-list,
// growing it on first use. The buffer is owned by the tape and is recycled
// by the next Reset.
func (t *Tape) Matrix(rows, cols int) *tensor.Matrix {
	m, recycled := t.rawMatrix(rows, cols)
	if recycled {
		m.Zero()
	}
	return m
}

// rawMatrix is Matrix without the zeroing sweep: a recycled buffer comes
// back with its previous contents (recycled == true), a freshly grown one
// zeroed. For ops that fully overwrite their output this skips a redundant
// whole-buffer pass per checkout.
func (t *Tape) rawMatrix(rows, cols int) (m *tensor.Matrix, recycled bool) {
	key := int64(rows)<<32 | int64(uint32(cols))
	p := t.pools[key]
	if p == nil {
		p = &bufPool{}
		t.pools[key] = p
	}
	if p.next < len(p.bufs) {
		m := p.bufs[p.next]
		p.next++
		return m, true
	}
	m = tensor.New(rows, cols)
	p.bufs = append(p.bufs, m)
	p.next++
	return m, false
}

// newValue checks the next node out of the slab, growing it by one chunk
// when exhausted. The node comes back field-reset, keeping only its parents
// slice capacity (so steady-state epochs re-record parents without
// allocating).
func (t *Tape) newValue() *Value {
	ci, off := t.used/tapeChunk, t.used%tapeChunk
	if ci == len(t.chunks) {
		t.chunks = append(t.chunks, make([]Value, tapeChunk))
	}
	v := &t.chunks[ci][off]
	parents := v.parents[:0]
	*v = Value{tape: t, ti: t.used, parents: parents}
	t.used++
	return v
}

// Var records a trainable leaf on the tape. The matrix is caller-owned (not
// recycled); the leaf's gradient buffer comes from the tape's free-list.
func (t *Tape) Var(m *tensor.Matrix) *Value {
	v := t.newValue()
	v.Data = m
	v.requiresGrad = true
	return v
}

// Const records a non-trainable leaf on the tape. The matrix is
// caller-owned.
func (t *Tape) Const(m *tensor.Matrix) *Value {
	v := t.newValue()
	v.Data = m
	return v
}

// at returns the node with tape index i.
func (t *Tape) at(i int) *Value {
	return &t.chunks[i/tapeChunk][i%tapeChunk]
}

// sweep runs the backward pass over nodes [0, from] in reverse recording
// order. Recording order is a topological order (an op's parents exist
// before it), so the reverse sweep visits every node after all its
// consumers; nodes the seeded gradient never reached are skipped.
func (t *Tape) sweep(from int) {
	for i := from; i >= 0; i-- {
		v := t.at(i)
		if v.Grad != nil && v.back != nil {
			v.back(v)
		}
	}
}
