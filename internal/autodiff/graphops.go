package autodiff

import (
	"fmt"
	"math"

	"lumos/internal/tensor"
)

// Graph-structured operations: gather/scatter over rows and per-segment
// reductions. These are the primitives message passing compiles to: an edge
// list (src, dst) turns "aggregate neighbor embeddings" into
// SegmentSum(ScaleRows(Gather(H, src), coef), dst, n).

// Gather returns the matrix whose i-th row is a.Row(idx[i]).
func Gather(a *Value, idx []int) *Value {
	data := tensor.Gather(a.Data, idx)
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			g := tensor.New(a.Data.Rows(), a.Data.Cols())
			tensor.ScatterAddRows(g, out.Grad, idx)
			a.accum(g)
		}
	}
	return out
}

// SegmentSum returns the nseg×c matrix whose row s is the sum of the rows i
// of a with seg[i] == s.
func SegmentSum(a *Value, seg []int, nseg int) *Value {
	if len(seg) != a.Data.Rows() {
		panic(fmt.Sprintf("autodiff: SegmentSum %d segments for %d rows", len(seg), a.Data.Rows()))
	}
	data := tensor.New(nseg, a.Data.Cols())
	tensor.ScatterAddRows(data, a.Data, seg)
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			a.accum(tensor.Gather(out.Grad, seg))
		}
	}
	return out
}

// ScaleRows multiplies row i of a by the constant coef[i].
func ScaleRows(a *Value, coef []float64) *Value {
	if len(coef) != a.Data.Rows() {
		panic(fmt.Sprintf("autodiff: ScaleRows %d coefs for %d rows", len(coef), a.Data.Rows()))
	}
	data := tensor.New(a.Data.Rows(), a.Data.Cols())
	for i := 0; i < a.Data.Rows(); i++ {
		row, orow := a.Data.Row(i), data.Row(i)
		for j := range row {
			orow[j] = coef[i] * row[j]
		}
	}
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			g := tensor.New(a.Data.Rows(), a.Data.Cols())
			for i := 0; i < g.Rows(); i++ {
				grow, orow := g.Row(i), out.Grad.Row(i)
				for j := range grow {
					grow[j] = coef[i] * orow[j]
				}
			}
			a.accum(g)
		}
	}
	return out
}

// MulRowsByCol multiplies row i of a (n×c) by s.At(i,0), where s is an n×1
// differentiable column; used for attention-weighted messages.
func MulRowsByCol(a, s *Value) *Value {
	n, c := a.Data.Dims()
	if s.Data.Rows() != n || s.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: MulRowsByCol a %dx%d s %dx%d", n, c, s.Data.Rows(), s.Data.Cols()))
	}
	data := tensor.New(n, c)
	for i := 0; i < n; i++ {
		si := s.Data.At(i, 0)
		row, orow := a.Data.Row(i), data.Row(i)
		for j := range row {
			orow[j] = si * row[j]
		}
	}
	out := node(data, nil, a, s)
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				g := tensor.New(n, c)
				for i := 0; i < n; i++ {
					si := s.Data.At(i, 0)
					grow, orow := g.Row(i), out.Grad.Row(i)
					for j := range grow {
						grow[j] = si * orow[j]
					}
				}
				a.accum(g)
			}
			if s.requiresGrad {
				g := tensor.New(n, 1)
				for i := 0; i < n; i++ {
					arow, orow := a.Data.Row(i), out.Grad.Row(i)
					d := 0.0
					for j := range arow {
						d += arow[j] * orow[j]
					}
					g.Set(i, 0, d)
				}
				s.accum(g)
			}
		}
	}
	return out
}

// SegmentSoftmax normalizes the n×1 column e with a numerically stable
// softmax within each segment: out_i = exp(e_i−m_s)/Σ_{j∈s} exp(e_j−m_s)
// for s = seg[i]. Rows whose segment has a single member get 1.
func SegmentSoftmax(e *Value, seg []int, nseg int) *Value {
	n := e.Data.Rows()
	if e.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: SegmentSoftmax on %dx%d (want n×1)", n, e.Data.Cols()))
	}
	if len(seg) != n {
		panic(fmt.Sprintf("autodiff: SegmentSoftmax %d segments for %d rows", len(seg), n))
	}
	maxes := make([]float64, nseg)
	for i := range maxes {
		maxes[i] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		if v := e.Data.At(i, 0); v > maxes[seg[i]] {
			maxes[seg[i]] = v
		}
	}
	sums := make([]float64, nseg)
	data := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		ex := math.Exp(e.Data.At(i, 0) - maxes[seg[i]])
		data.Set(i, 0, ex)
		sums[seg[i]] += ex
	}
	for i := 0; i < n; i++ {
		data.Set(i, 0, data.At(i, 0)/sums[seg[i]])
	}
	out := node(data, nil, e)
	if out.requiresGrad {
		out.backFn = func() {
			// dL/de_i = α_i (g_i − Σ_{j∈seg(i)} α_j g_j)
			dot := make([]float64, nseg)
			for i := 0; i < n; i++ {
				dot[seg[i]] += out.Data.At(i, 0) * out.Grad.At(i, 0)
			}
			g := tensor.New(n, 1)
			for i := 0; i < n; i++ {
				ai := out.Data.At(i, 0)
				g.Set(i, 0, ai*(out.Grad.At(i, 0)-dot[seg[i]]))
			}
			e.accum(g)
		}
	}
	return out
}

// ConcatCols concatenates values horizontally (same row count).
func ConcatCols(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("autodiff: ConcatCols of nothing")
	}
	mats := make([]*tensor.Matrix, len(vs))
	for i, v := range vs {
		mats[i] = v.Data
	}
	data := tensor.HStack(mats...)
	out := node(data, nil, vs...)
	if out.requiresGrad {
		out.backFn = func() {
			off := 0
			for _, v := range vs {
				c := v.Data.Cols()
				if v.requiresGrad {
					g := tensor.New(v.Data.Rows(), c)
					for i := 0; i < g.Rows(); i++ {
						copy(g.Row(i), out.Grad.Row(i)[off:off+c])
					}
					v.accum(g)
				}
				off += c
			}
		}
	}
	return out
}

// ConcatRows concatenates values vertically (same column count).
func ConcatRows(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("autodiff: ConcatRows of nothing")
	}
	mats := make([]*tensor.Matrix, len(vs))
	for i, v := range vs {
		mats[i] = v.Data
	}
	data := tensor.VStack(mats...)
	out := node(data, nil, vs...)
	if out.requiresGrad {
		out.backFn = func() {
			off := 0
			for _, v := range vs {
				r := v.Data.Rows()
				if v.requiresGrad {
					g := tensor.New(r, v.Data.Cols())
					for i := 0; i < r; i++ {
						copy(g.Row(i), out.Grad.Row(off+i))
					}
					v.accum(g)
				}
				off += r
			}
		}
	}
	return out
}

// PairDot returns the m×1 column whose k-th entry is the dot product of rows
// idxU[k] and idxV[k] of a. It backs the link-prediction decoder
// DEC(h_u, h_v) = h_u · h_v.
func PairDot(a *Value, idxU, idxV []int) *Value {
	if len(idxU) != len(idxV) {
		panic(fmt.Sprintf("autodiff: PairDot %d vs %d indices", len(idxU), len(idxV)))
	}
	m := len(idxU)
	data := tensor.New(m, 1)
	for k := 0; k < m; k++ {
		data.Set(k, 0, tensor.RowDot(a.Data, idxU[k], a.Data, idxV[k]))
	}
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			g := tensor.New(a.Data.Rows(), a.Data.Cols())
			for k := 0; k < m; k++ {
				gk := out.Grad.At(k, 0)
				u, v := idxU[k], idxV[k]
				gu, gv := g.Row(u), g.Row(v)
				au, av := a.Data.Row(u), a.Data.Row(v)
				for j := range gu {
					gu[j] += gk * av[j]
					gv[j] += gk * au[j]
				}
			}
			a.accum(g)
		}
	}
	return out
}
