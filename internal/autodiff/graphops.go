package autodiff

import (
	"fmt"
	"math"

	"lumos/internal/tensor"
)

// Graph-structured operations: gather/scatter over rows and per-segment
// reductions. These are the primitives message passing compiles to: an edge
// list (src, dst) turns "aggregate neighbor embeddings" into
// SegmentSum(ScaleRows(Gather(H, src), coef), dst, n).
//
// Index and coefficient slices passed to these ops are retained by
// reference until the owning tape is reset (or the node is collected); they
// must stay unmodified for that long. The engine's per-shard index arrays
// are immutable after construction, so they are shared across all epochs.

// Gather returns the matrix whose i-th row is a.Row(idx[i]).
func Gather(a *Value, idx []int) *Value {
	t := tapeFor(a)
	data := newMatrix(t, len(idx), a.Data.Cols())
	tensor.GatherInto(data, a.Data, idx)
	out := newNode(t, data, backGather, a)
	out.ints = idx
	return out
}

func backGather(v *Value) {
	tensor.ScatterAddRows(v.parents[0].EnsureGrad(), v.Grad, v.ints)
}

// SegmentSum returns the nseg×c matrix whose row s is the sum of the rows i
// of a with seg[i] == s.
func SegmentSum(a *Value, seg []int, nseg int) *Value {
	if len(seg) != a.Data.Rows() {
		panic(fmt.Sprintf("autodiff: SegmentSum %d segments for %d rows", len(seg), a.Data.Rows()))
	}
	t := tapeFor(a)
	data := newZeroMatrix(t, nseg, a.Data.Cols())
	tensor.ScatterAddRows(data, a.Data, seg)
	out := newNode(t, data, backSegmentSum, a)
	out.ints = seg
	return out
}

func backSegmentSum(v *Value) {
	tensor.GatherAddInto(v.parents[0].EnsureGrad(), v.Grad, v.ints)
}

// ScaleRows multiplies row i of a by the constant coef[i].
func ScaleRows(a *Value, coef []float64) *Value {
	if len(coef) != a.Data.Rows() {
		panic(fmt.Sprintf("autodiff: ScaleRows %d coefs for %d rows", len(coef), a.Data.Rows()))
	}
	t := tapeFor(a)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	for i := 0; i < a.Data.Rows(); i++ {
		row, orow := a.Data.Row(i), data.Row(i)
		for j := range row {
			orow[j] = coef[i] * row[j]
		}
	}
	out := newNode(t, data, backScaleRows, a)
	out.fs = coef
	return out
}

func backScaleRows(v *Value) {
	g := v.parents[0].EnsureGrad()
	for i := 0; i < g.Rows(); i++ {
		grow, orow := g.Row(i), v.Grad.Row(i)
		ci := v.fs[i]
		for j := range grow {
			grow[j] += ci * orow[j]
		}
	}
}

// MulRowsByCol multiplies row i of a (n×c) by s.At(i,0), where s is an n×1
// differentiable column; used for attention-weighted messages.
func MulRowsByCol(a, s *Value) *Value {
	n, c := a.Data.Dims()
	if s.Data.Rows() != n || s.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: MulRowsByCol a %dx%d s %dx%d", n, c, s.Data.Rows(), s.Data.Cols()))
	}
	t := tapeFor(a, s)
	data := newMatrix(t, n, c)
	for i := 0; i < n; i++ {
		si := s.Data.At(i, 0)
		row, orow := a.Data.Row(i), data.Row(i)
		for j := range row {
			orow[j] = si * row[j]
		}
	}
	return newNode(t, data, backMulRowsByCol, a, s)
}

func backMulRowsByCol(v *Value) {
	a, s := v.parents[0], v.parents[1]
	n := a.Data.Rows()
	if a.requiresGrad {
		g := a.EnsureGrad()
		for i := 0; i < n; i++ {
			si := s.Data.At(i, 0)
			grow, orow := g.Row(i), v.Grad.Row(i)
			for j := range grow {
				grow[j] += si * orow[j]
			}
		}
	}
	if s.requiresGrad {
		g := s.EnsureGrad()
		for i := 0; i < n; i++ {
			arow, orow := a.Data.Row(i), v.Grad.Row(i)
			d := 0.0
			for j := range arow {
				d += arow[j] * orow[j]
			}
			g.Set(i, 0, g.At(i, 0)+d)
		}
	}
}

// CSRAggregate fuses the Gather→ScaleRows→SegmentSum neighborhood
// aggregation into one op: out.Row(s) = Σ_{edges e with dst[e]=s}
// coef[e]·a.Row(src[e]), where the edge grouping (and the per-segment
// summation order) comes from csr. coef may be nil for an unweighted sum.
// Forward and backward are bit-identical to the unfused chain — csr stores
// slots in original edge order, the exact order SegmentSum's scatter runs
// in — but no per-edge message matrix is ever materialized, in either pass.
// Like the unfused ops, csr and coef are retained by reference.
func CSRAggregate(a *Value, csr *tensor.CSR, coef []float64) *Value {
	t := tapeFor(a)
	// The fused kernel overwrites every row, so a recycled (unzeroed) tape
	// buffer is fine here.
	data := newMatrix(t, csr.NSeg, a.Data.Cols())
	tensor.CSRAggregateInto(data, a.Data, csr, coef)
	out := newNode(t, data, backCSRAggregate, a)
	out.ints = csr.Src
	out.ints2 = csr.Dst
	out.fs = coef
	return out
}

func backCSRAggregate(v *Value) {
	tensor.CSRAggregateBackward(v.parents[0].EnsureGrad(), nil, nil, v.Grad, v.ints, v.ints2, v.fs)
}

// CSRAggregateMul is CSRAggregate with a differentiable per-edge weight: it
// fuses Gather→MulRowsByCol→SegmentSum, with w an NumEdges×1 column
// (attention coefficients). Both gradients flow; each is bit-identical to
// its unfused counterpart.
func CSRAggregateMul(a, w *Value, csr *tensor.CSR) *Value {
	if w.Data.Rows() != csr.NumEdges() || w.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: CSRAggregateMul w %dx%d for %d edges",
			w.Data.Rows(), w.Data.Cols(), csr.NumEdges()))
	}
	t := tapeFor(a, w)
	data := newMatrix(t, csr.NSeg, a.Data.Cols())
	tensor.CSRAggregateInto(data, a.Data, csr, w.Data.Data())
	out := newNode(t, data, backCSRAggregateMul, a, w)
	out.ints = csr.Src
	out.ints2 = csr.Dst
	return out
}

func backCSRAggregateMul(v *Value) {
	a, w := v.parents[0], v.parents[1]
	var aGrad, wGrad *tensor.Matrix
	if a.requiresGrad {
		aGrad = a.EnsureGrad()
	}
	if w.requiresGrad {
		wGrad = w.EnsureGrad()
	}
	tensor.CSRAggregateBackward(aGrad, wGrad, a.Data, v.Grad, v.ints, v.ints2, w.Data.Data())
}

// SegmentSoftmax normalizes the n×1 column e with a numerically stable
// softmax within each segment: out_i = exp(e_i−m_s)/Σ_{j∈s} exp(e_j−m_s)
// for s = seg[i]. Rows whose segment has a single member get 1.
func SegmentSoftmax(e *Value, seg []int, nseg int) *Value {
	n := e.Data.Rows()
	if e.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: SegmentSoftmax on %dx%d (want n×1)", n, e.Data.Cols()))
	}
	if len(seg) != n {
		panic(fmt.Sprintf("autodiff: SegmentSoftmax %d segments for %d rows", len(seg), n))
	}
	t := tapeFor(e)
	maxes := newMatrix(t, nseg, 1).Data()
	for i := range maxes {
		maxes[i] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		if v := e.Data.At(i, 0); v > maxes[seg[i]] {
			maxes[seg[i]] = v
		}
	}
	sums := newZeroMatrix(t, nseg, 1).Data()
	data := newMatrix(t, n, 1)
	for i := 0; i < n; i++ {
		ex := math.Exp(e.Data.At(i, 0) - maxes[seg[i]])
		data.Set(i, 0, ex)
		sums[seg[i]] += ex
	}
	for i := 0; i < n; i++ {
		data.Set(i, 0, data.At(i, 0)/sums[seg[i]])
	}
	out := newNode(t, data, backSegmentSoftmax, e)
	out.ints = seg
	out.n = nseg
	return out
}

func backSegmentSoftmax(v *Value) {
	// dL/de_i = α_i (g_i − Σ_{j∈seg(i)} α_j g_j)
	e, seg, n := v.parents[0], v.ints, v.Data.Rows()
	dot := newZeroMatrix(v.tape, v.n, 1).Data()
	for i := 0; i < n; i++ {
		dot[seg[i]] += v.Data.At(i, 0) * v.Grad.At(i, 0)
	}
	g := e.EnsureGrad()
	for i := 0; i < n; i++ {
		ai := v.Data.At(i, 0)
		g.Set(i, 0, g.At(i, 0)+ai*(v.Grad.At(i, 0)-dot[seg[i]]))
	}
}

// ConcatCols concatenates values horizontally (same row count).
func ConcatCols(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("autodiff: ConcatCols of nothing")
	}
	t := tapeFor(vs...)
	rows := vs[0].Data.Rows()
	cols := 0
	for _, v := range vs {
		if v.Data.Rows() != rows {
			panic(fmt.Sprintf("autodiff: ConcatCols rows %d vs %d", v.Data.Rows(), rows))
		}
		cols += v.Data.Cols()
	}
	data := newMatrix(t, rows, cols)
	off := 0
	for _, v := range vs {
		c := v.Data.Cols()
		for i := 0; i < rows; i++ {
			copy(data.Row(i)[off:off+c], v.Data.Row(i))
		}
		off += c
	}
	return newNode(t, data, backConcatCols, vs...)
}

func backConcatCols(v *Value) {
	off := 0
	for _, p := range v.parents {
		c := p.Data.Cols()
		if p.requiresGrad {
			g := p.EnsureGrad()
			for i := 0; i < g.Rows(); i++ {
				grow, orow := g.Row(i), v.Grad.Row(i)[off:off+c]
				for j := range grow {
					grow[j] += orow[j]
				}
			}
		}
		off += c
	}
}

// ConcatRows concatenates values vertically (same column count).
func ConcatRows(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("autodiff: ConcatRows of nothing")
	}
	t := tapeFor(vs...)
	cols := vs[0].Data.Cols()
	rows := 0
	for _, v := range vs {
		if v.Data.Cols() != cols {
			panic(fmt.Sprintf("autodiff: ConcatRows cols %d vs %d", v.Data.Cols(), cols))
		}
		rows += v.Data.Rows()
	}
	data := newMatrix(t, rows, cols)
	off := 0
	for _, v := range vs {
		for i := 0; i < v.Data.Rows(); i++ {
			copy(data.Row(off+i), v.Data.Row(i))
		}
		off += v.Data.Rows()
	}
	return newNode(t, data, backConcatRows, vs...)
}

func backConcatRows(v *Value) {
	off := 0
	for _, p := range v.parents {
		r := p.Data.Rows()
		if p.requiresGrad {
			g := p.EnsureGrad()
			for i := 0; i < r; i++ {
				grow, orow := g.Row(i), v.Grad.Row(off+i)
				for j := range grow {
					grow[j] += orow[j]
				}
			}
		}
		off += r
	}
}

// PairDot returns the m×1 column whose k-th entry is the dot product of rows
// idxU[k] and idxV[k] of a. It backs the link-prediction decoder
// DEC(h_u, h_v) = h_u · h_v.
func PairDot(a *Value, idxU, idxV []int) *Value {
	if len(idxU) != len(idxV) {
		panic(fmt.Sprintf("autodiff: PairDot %d vs %d indices", len(idxU), len(idxV)))
	}
	m := len(idxU)
	t := tapeFor(a)
	data := newMatrix(t, m, 1)
	for k := 0; k < m; k++ {
		data.Set(k, 0, tensor.RowDot(a.Data, idxU[k], a.Data, idxV[k]))
	}
	out := newNode(t, data, backPairDot, a)
	out.ints = idxU
	out.ints2 = idxV
	return out
}

func backPairDot(v *Value) {
	a := v.parents[0]
	g := a.EnsureGrad()
	for k := 0; k < len(v.ints); k++ {
		gk := v.Grad.At(k, 0)
		u, w := v.ints[k], v.ints2[k]
		gu, gv := g.Row(u), g.Row(w)
		au, av := a.Data.Row(u), a.Data.Row(w)
		for j := range gu {
			gu[j] += gk * av[j]
			gv[j] += gk * au[j]
		}
	}
}
