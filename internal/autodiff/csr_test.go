package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"lumos/internal/tensor"
)

// These tests pin the fused CSRAggregate / CSRAggregateMul ops to the unfused
// Gather→ScaleRows/MulRowsByCol→SegmentSum chains they replace: forward data
// AND backward gradients must match bit for bit on random graphs, including
// empty segments, isolated nodes, duplicate edges, m=0 and n=1.

type csrCase struct {
	nsrc, nseg, m, c int
}

var csrCases = []csrCase{
	{1, 1, 1, 1},     // single node, self edge
	{1, 1, 4, 3},     // duplicate edges onto one segment
	{5, 8, 0, 4},     // no edges at all: every segment empty
	{8, 5, 30, 16},   // more edges than nodes, some sources repeated
	{40, 40, 25, 7},  // sparse: most segments empty, most nodes isolated
	{6, 3, 64, 1},    // single feature column
	{16, 31, 200, 9}, // dense fan-in
}

func randGraph(tc csrCase, rng *rand.Rand) (src, dst []int, coef []float64) {
	src = make([]int, tc.m)
	dst = make([]int, tc.m)
	coef = make([]float64, tc.m)
	for e := 0; e < tc.m; e++ {
		src[e] = rng.Intn(tc.nsrc)
		dst[e] = rng.Intn(tc.nseg)
		coef[e] = rng.NormFloat64()
	}
	return src, dst, coef
}

func randMatrix(rows, cols int, rng *rand.Rand) *tensor.Matrix {
	m := tensor.New(rows, cols)
	d := m.Data()
	for i := range d {
		if rng.Float64() < 0.2 {
			d[i] = 0 // exercise the sparsity-sensitive corners
		} else {
			d[i] = rng.NormFloat64()
		}
	}
	return m
}

func requireBits(t *testing.T, name string, want, got *tensor.Matrix) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("%s: nil matrix (want %v, got %v)", name, want != nil, got != nil)
	}
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, want.Rows(), want.Cols(), got.Rows(), got.Cols())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
			t.Fatalf("%s: entry %d: %v vs %v (bits %x vs %x)",
				name, i, wd[i], gd[i], math.Float64bits(wd[i]), math.Float64bits(gd[i]))
		}
	}
}

// TestCSRAggregateMatchesUnfused compares the fused GCN-style aggregation
// (scalar edge coefficients) against ScaleRows(Gather(a))→SegmentSum.
func TestCSRAggregateMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, taped := range []bool{false, true} {
		for _, tc := range csrCases {
			src, dst, coef := randGraph(tc, rng)
			csr := tensor.NewCSR(tc.nseg, src, dst)
			aData := randMatrix(tc.nsrc, tc.c, rng)
			seed := randMatrix(tc.nseg, tc.c, rng)

			mk := func(m *tensor.Matrix) *Value {
				if taped {
					return NewTape().Var(m)
				}
				return Var(m)
			}

			aRef := mk(aData.Clone())
			ref := SegmentSum(ScaleRows(Gather(aRef, src), coef), dst, tc.nseg)
			ref.BackwardWithGradient(seed.Clone())

			aFus := mk(aData.Clone())
			fus := CSRAggregate(aFus, csr, coef)
			fus.BackwardWithGradient(seed.Clone())

			requireBits(t, "CSRAggregate forward", ref.Data, fus.Data)
			requireBits(t, "CSRAggregate dL/da", aRef.Grad, aFus.Grad)

			// Unweighted (coef nil) against a bare Gather→SegmentSum chain.
			aRefU := mk(aData.Clone())
			refU := SegmentSum(Gather(aRefU, src), dst, tc.nseg)
			refU.BackwardWithGradient(seed.Clone())
			aFusU := mk(aData.Clone())
			fusU := CSRAggregate(aFusU, csr, nil)
			fusU.BackwardWithGradient(seed.Clone())
			requireBits(t, "CSRAggregate nil-coef forward", refU.Data, fusU.Data)
			requireBits(t, "CSRAggregate nil-coef dL/da", aRefU.Grad, aFusU.Grad)
		}
	}
}

// TestCSRAggregateMulMatchesUnfused compares the fused GAT-style aggregation
// (learned per-edge weight column) against MulRowsByCol(Gather(a), w)→
// SegmentSum, checking both the feature gradient and the edge-weight
// gradient.
func TestCSRAggregateMulMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, taped := range []bool{false, true} {
		for _, tc := range csrCases {
			src, dst, _ := randGraph(tc, rng)
			csr := tensor.NewCSR(tc.nseg, src, dst)
			aData := randMatrix(tc.nsrc, tc.c, rng)
			wData := randMatrix(tc.m, 1, rng)
			seed := randMatrix(tc.nseg, tc.c, rng)

			mk := func(m *tensor.Matrix) *Value {
				if taped {
					return NewTape().Var(m)
				}
				return Var(m)
			}

			aRef := mk(aData.Clone())
			wRef := mk(wData.Clone())
			ref := SegmentSum(MulRowsByCol(Gather(aRef, src), wRef), dst, tc.nseg)
			ref.BackwardWithGradient(seed.Clone())

			aFus := mk(aData.Clone())
			wFus := mk(wData.Clone())
			fus := CSRAggregateMul(aFus, wFus, csr)
			fus.BackwardWithGradient(seed.Clone())

			requireBits(t, "CSRAggregateMul forward", ref.Data, fus.Data)
			requireBits(t, "CSRAggregateMul dL/da", aRef.Grad, aFus.Grad)
			if tc.m > 0 {
				requireBits(t, "CSRAggregateMul dL/dw", wRef.Grad, wFus.Grad)
			}
		}
	}
}

// TestCSRAggregateConstInput checks that aggregation over a non-grad input
// (e.g. the frozen layer-0 features) still produces the right forward data
// and no gradient, on both ops.
func TestCSRAggregateConstInput(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tc := csrCase{10, 6, 24, 5}
	src, dst, coef := randGraph(tc, rng)
	csr := tensor.NewCSR(tc.nseg, src, dst)
	aData := randMatrix(tc.nsrc, tc.c, rng)
	seed := randMatrix(tc.nseg, tc.c, rng)

	aRef := Const(aData.Clone())
	ref := SegmentSum(ScaleRows(Gather(aRef, src), coef), dst, tc.nseg)
	aFus := Const(aData.Clone())
	fus := CSRAggregate(aFus, csr, coef)
	requireBits(t, "const forward", ref.Data, fus.Data)
	if fus.RequiresGrad() {
		t.Fatal("aggregate of a const should not require grad")
	}

	// Mixed case: const features, learned edge weights.
	wData := randMatrix(tc.m, 1, rng)
	wRef := Var(wData.Clone())
	refM := SegmentSum(MulRowsByCol(Gather(Const(aData.Clone()), src), wRef), dst, tc.nseg)
	refM.BackwardWithGradient(seed.Clone())
	wFus := Var(wData.Clone())
	fusM := CSRAggregateMul(Const(aData.Clone()), wFus, csr)
	fusM.BackwardWithGradient(seed.Clone())
	requireBits(t, "mixed forward", refM.Data, fusM.Data)
	requireBits(t, "mixed dL/dw", wRef.Grad, wFus.Grad)
	if aFus.Grad != nil {
		t.Fatal("const input accumulated a gradient")
	}
}
