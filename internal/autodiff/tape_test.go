package autodiff

import (
	"math/rand"
	"testing"

	"lumos/internal/tensor"
)

// tapeGraph records a small but representative graph (matmul, broadcast
// add, activation, gather/segment ops, loss) on the given tape (nil =
// untaped) and runs backward. It returns the loss value and the two
// parameter gradients.
func tapeGraph(t *Tape, w, b *Value, x *tensor.Matrix) (float64, *tensor.Matrix, *tensor.Matrix) {
	var xs *Value
	if t != nil {
		xs = t.Const(x)
	} else {
		xs = Const(x)
	}
	h := AddRow(MatMul(xs, w), b)
	h = ReLU(h)
	idx := []int{0, 1, 2, 2, 1}
	seg := []int{0, 0, 1, 1, 2}
	g := SegmentSum(ScaleRows(Gather(h, idx), []float64{1, 0.5, 0.5, 1, 2}), seg, 3)
	loss := MeanAll(SumSquares(g))
	loss.Backward()
	return loss.Scalar(), w.Grad, b.Grad
}

func matIdentical(t *testing.T, name string, a, b *tensor.Matrix) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil gradient (%v vs %v)", name, a, b)
	}
	if !tensor.ApproxEqual(a, b, 0) {
		t.Fatalf("%s: matrices differ:\n%v\nvs\n%v", name, a, b)
	}
}

// TestTapeMatchesUntaped locks in that recording on a tape changes nothing
// numerically: loss and parameter gradients are bit-identical to the
// classic untaped graph.
func TestTapeMatchesUntaped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Uniform(3, 4, -1, 1, rng)
	wm := tensor.Uniform(4, 2, -1, 1, rng)
	bm := tensor.Uniform(1, 2, -1, 1, rng)

	w0, b0 := Var(wm.Clone()), Var(bm.Clone())
	l0, gw0, gb0 := tapeGraph(nil, w0, b0, x)

	tp := NewTape()
	w1, b1 := Var(wm.Clone()), Var(bm.Clone())
	l1, gw1, gb1 := tapeGraph(tp, w1, b1, x)

	if l0 != l1 {
		t.Fatalf("taped loss %v != untaped loss %v", l1, l0)
	}
	matIdentical(t, "dW", gw0, gw1)
	matIdentical(t, "dB", gb0, gb1)
}

// TestTapeResetReuse is the tape lifecycle golden: Reset-then-re-record
// produces bit-identical losses and gradients for several consecutive
// epochs, while actually recycling memory (the same node and buffer
// storage comes back after every Reset).
func TestTapeResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Uniform(3, 4, -1, 1, rng)
	wm := tensor.Uniform(4, 2, -1, 1, rng)
	bm := tensor.Uniform(1, 2, -1, 1, rng)

	tp := NewTape()
	w, b := Var(wm), Var(bm)

	var refLoss float64
	var refGW, refGB *tensor.Matrix
	var nodes int
	var firstEpochOut *tensor.Matrix
	for epoch := 0; epoch < 4; epoch++ {
		tp.Reset()
		w.ZeroGrad()
		b.ZeroGrad()
		loss, gw, gb := tapeGraph(tp, w, b, x)
		switch epoch {
		case 0:
			refLoss, refGW, refGB = loss, gw.Clone(), gb.Clone()
			nodes = tp.Len()
			firstEpochOut = tp.Matrix(7, 7) // probe buffer, recycled below
		default:
			if loss != refLoss {
				t.Fatalf("epoch %d: loss %v != first epoch %v", epoch, loss, refLoss)
			}
			matIdentical(t, "dW across reuse", refGW, gw)
			matIdentical(t, "dB across reuse", refGB, gb)
			if tp.Len() != nodes {
				t.Fatalf("epoch %d: %d nodes recorded, first epoch had %d", epoch, tp.Len(), nodes)
			}
			if probe := tp.Matrix(7, 7); probe != firstEpochOut {
				t.Fatal("tape did not recycle its buffers: same alloc sequence returned a different matrix")
			}
		}
	}
}

// TestTapeGradBufferRecycling checks the untaped shim-path fix: ZeroGrad
// retains the gradient buffer and EnsureGrad hands the same one back
// zeroed, while DetachGrad severs it for callers that queue gradients.
func TestTapeGradBufferRecycling(t *testing.T) {
	v := Var(tensor.Full(2, 3, 1))
	g1 := v.EnsureGrad()
	g1.Set(1, 2, 5)
	v.ZeroGrad()
	if v.Grad != nil {
		t.Fatal("ZeroGrad must leave Grad nil until a gradient arrives")
	}
	g2 := v.EnsureGrad()
	if g2 != g1 {
		t.Fatal("EnsureGrad after ZeroGrad must recycle the same buffer")
	}
	if g2.At(1, 2) != 0 {
		t.Fatal("recycled gradient buffer was not zeroed")
	}
	stolen := v.DetachGrad()
	if stolen != g1 {
		t.Fatal("DetachGrad must hand back the live buffer")
	}
	v.ZeroGrad()
	if g3 := v.EnsureGrad(); g3 == g1 {
		t.Fatal("EnsureGrad must not resurrect a detached buffer")
	}
}

// TestTapeMixedTapesFallBack checks the safety valve: an op whose parents
// live on two different tapes (or mix a tape with an untaped non-leaf)
// produces an untaped node whose depth-first backward still reaches every
// parameter.
func TestTapeMixedTapesFallBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	t1, t2 := NewTape(), NewTape()
	x1 := t1.Const(tensor.Uniform(2, 2, -1, 1, rng))
	x2 := t2.Const(tensor.Uniform(2, 2, -1, 1, rng))
	w := Var(tensor.Uniform(2, 2, -1, 1, rng))

	a := MatMul(x1, w) // on t1
	b := MatMul(x2, w) // on t2
	sum := Add(a, b)   // mixed: must fall back to the untaped path
	if sum.tape != nil {
		t.Fatal("node mixing two tapes must be untaped")
	}
	loss := SumSquares(sum)
	if loss.tape != nil {
		t.Fatal("descendant of a mixed node must stay untaped")
	}
	loss.Backward()
	if w.Grad == nil {
		t.Fatal("depth-first fallback did not reach the shared parameter")
	}

	// Untaped non-leaf feeding a taped op: same fallback.
	u := ReLU(Scale(Var(tensor.Uniform(2, 2, -1, 1, rng)), 2)) // untaped chain
	mixed := Add(MatMul(x1, w), u)
	if mixed.tape != nil {
		t.Fatal("taped op over an untaped non-leaf must be untaped")
	}
}

// TestTapeBackwardSweepScope checks that a backward from a mid-tape root
// only touches its own ancestors: nodes recorded after the root keep nil
// gradients.
func TestTapeBackwardSweepScope(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tp := NewTape()
	w := Var(tensor.Uniform(2, 2, -1, 1, rng))
	x := tp.Const(tensor.Uniform(2, 2, -1, 1, rng))
	mid := MatMul(x, w)
	lossMid := SumSquares(mid)
	later := ReLU(mid) // recorded after the root of the backward below
	lossMid.Backward()
	if later.Grad != nil {
		t.Fatal("sweep leaked a gradient into a node recorded after the root")
	}
	if w.Grad == nil {
		t.Fatal("sweep missed the parameter")
	}
}
