package autodiff

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"lumos/internal/tensor"
)

// gradCheck verifies the analytic gradient of scalar = f(params...) against
// central finite differences for every entry of every parameter.
func gradCheck(t *testing.T, name string, params []*Value, f func() *Value) {
	t.Helper()
	const h = 1e-5
	const tol = 1e-4
	loss := f()
	for _, p := range params {
		p.ZeroGrad()
	}
	loss.Backward()
	for pi, p := range params {
		if p.Grad == nil {
			t.Fatalf("%s: param %d received no gradient", name, pi)
		}
		data := p.Data.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + h
			up := f().Scalar()
			data[i] = orig - h
			down := f().Scalar()
			data[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := p.Grad.Data()[i]
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("%s: param %d entry %d: analytic %g vs numeric %g",
					name, pi, i, analytic, numeric)
			}
		}
	}
}

func randVar(r, c int, rng *rand.Rand) *Value {
	return Var(tensor.Uniform(r, c, -1, 1, rng))
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randVar(3, 4, rng), randVar(4, 2, rng)
	gradCheck(t, "matmul", []*Value{a, b}, func() *Value {
		return SumAll(MatMul(a, b))
	})
}

func TestGradAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randVar(2, 3, rng), randVar(2, 3, rng)
	gradCheck(t, "add/sub", []*Value{a, b}, func() *Value {
		return SumAll(MulElem(Add(a, b), Sub(a, b)))
	})
}

func TestGradAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, v := randVar(4, 3, rng), randVar(1, 3, rng)
	gradCheck(t, "addrow", []*Value{a, v}, func() *Value {
		return SumSquares(AddRow(a, v))
	})
}

func TestGradScaleAddN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b, c := randVar(2, 2, rng), randVar(2, 2, rng), randVar(2, 2, rng)
	gradCheck(t, "scale/addn", []*Value{a, b, c}, func() *Value {
		return SumSquares(AddN(Scale(a, 2.5), b, Scale(c, -0.5)))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		name string
		fn   func(*Value) *Value
	}{
		{"relu", ReLU},
		{"leakyrelu", func(v *Value) *Value { return LeakyReLU(v, 0.2) }},
		{"sigmoid", Sigmoid},
		{"tanh", Tanh},
	} {
		// Offset values away from the ReLU kink so finite differences are
		// well-defined.
		a := Var(tensor.Apply(tensor.Uniform(3, 3, -1, 1, rng), func(x float64) float64 {
			if math.Abs(x) < 0.05 {
				return x + 0.1
			}
			return x
		}))
		gradCheck(t, tc.name, []*Value{a}, func() *Value {
			return SumSquares(tc.fn(a))
		})
	}
}

func TestGradGatherSegmentSum(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randVar(5, 3, rng)
	idx := []int{0, 2, 2, 4, 1, 0}
	seg := []int{0, 1, 0, 2, 2, 1}
	gradCheck(t, "gather/segmentsum", []*Value{a}, func() *Value {
		return SumSquares(SegmentSum(Gather(a, idx), seg, 3))
	})
}

func TestGradScaleRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randVar(4, 2, rng)
	coef := []float64{0.5, -1, 2, 0.25}
	gradCheck(t, "scalerows", []*Value{a}, func() *Value {
		return SumSquares(ScaleRows(a, coef))
	})
}

func TestGradMulRowsByCol(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, s := randVar(4, 3, rng), randVar(4, 1, rng)
	gradCheck(t, "mulrowsbycol", []*Value{a, s}, func() *Value {
		return SumSquares(MulRowsByCol(a, s))
	})
}

func TestGradSegmentSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := randVar(6, 1, rng)
	seg := []int{0, 0, 1, 1, 1, 2}
	w := randVar(6, 1, rng) // weight so gradient isn't trivially zero
	gradCheck(t, "segmentsoftmax", []*Value{e}, func() *Value {
		return SumAll(MulElem(SegmentSoftmax(e, seg, 3), Const(w.Data)))
	})
}

func TestSegmentSoftmaxNormalizes(t *testing.T) {
	e := Const(tensor.FromRows([][]float64{{100}, {101}, {-5}, {3}, {3}}))
	out := SegmentSoftmax(e, []int{0, 0, 1, 1, 1}, 2)
	s0 := out.Data.At(0, 0) + out.Data.At(1, 0)
	s1 := out.Data.At(2, 0) + out.Data.At(3, 0) + out.Data.At(4, 0)
	if math.Abs(s0-1) > 1e-12 || math.Abs(s1-1) > 1e-12 {
		t.Fatalf("segments sum to %v and %v", s0, s1)
	}
	if out.Data.At(3, 0) != out.Data.At(4, 0) {
		t.Fatal("equal scores must share attention")
	}
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, b := randVar(3, 2, rng), randVar(3, 4, rng)
	gradCheck(t, "concatcols", []*Value{a, b}, func() *Value {
		return SumSquares(ConcatCols(a, b))
	})
	c, d := randVar(2, 3, rng), randVar(4, 3, rng)
	gradCheck(t, "concatrows", []*Value{c, d}, func() *Value {
		return SumSquares(ConcatRows(c, d))
	})
}

func TestGradPairDot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randVar(5, 4, rng)
	idxU := []int{0, 1, 2, 0}
	idxV := []int{3, 4, 2, 0} // includes self-pair and repeated rows
	gradCheck(t, "pairdot", []*Value{a}, func() *Value {
		return SumSquares(PairDot(a, idxU, idxV))
	})
}

func TestGradDropoutMask(t *testing.T) {
	// With a fixed rng state per call the mask changes; instead verify the
	// identity path and the training-mode scaling property.
	rng := rand.New(rand.NewSource(12))
	a := randVar(100, 10, rng)
	out := Dropout(a, 0.5, rand.New(rand.NewSource(1)), false)
	if out != a {
		t.Fatal("eval-mode dropout must be the identity")
	}
	tr := Dropout(a, 0.5, rand.New(rand.NewSource(1)), true)
	// Each surviving entry must be exactly 2× the input.
	ad, td := a.Data.Data(), tr.Data.Data()
	kept := 0
	for i := range ad {
		if td[i] != 0 {
			kept++
			if math.Abs(td[i]-2*ad[i]) > 1e-12 {
				t.Fatalf("survivor %d not rescaled: %v vs %v", i, td[i], ad[i])
			}
		}
	}
	if kept < 300 || kept > 700 {
		t.Fatalf("kept %d of 1000 at p=0.5", kept)
	}
	// Gradient flows only through the mask.
	loss := SumAll(tr)
	a.ZeroGrad()
	loss.Backward()
	for i := range ad {
		want := 0.0
		if td[i] != 0 {
			want = 2
		}
		if math.Abs(a.Grad.Data()[i]-want) > 1e-12 {
			t.Fatalf("dropout grad %d = %v, want %v", i, a.Grad.Data()[i], want)
		}
	}
}

func TestBackwardAccumulatesAcrossUses(t *testing.T) {
	a := Var(tensor.FromRows([][]float64{{3}}))
	// loss = a*a → grad 2a = 6
	loss := SumAll(MulElem(a, a))
	loss.Backward()
	if got := a.Grad.At(0, 0); math.Abs(got-6) > 1e-12 {
		t.Fatalf("grad = %v, want 6", got)
	}
}

func TestBackwardTwiceAccumulates(t *testing.T) {
	a := Var(tensor.FromRows([][]float64{{2}}))
	SumAll(Scale(a, 3)).Backward()
	SumAll(Scale(a, 3)).Backward()
	if got := a.Grad.At(0, 0); got != 6 {
		t.Fatalf("accumulated grad = %v, want 6", got)
	}
	a.ZeroGrad()
	if a.Grad != nil {
		t.Fatal("ZeroGrad must clear")
	}
}

func TestConstGetsNoGrad(t *testing.T) {
	c := Const(tensor.FromRows([][]float64{{1, 2}}))
	v := Var(tensor.FromRows([][]float64{{3, 4}}))
	SumAll(MulElem(c, v)).Backward()
	if c.Grad != nil {
		t.Fatal("constant must not accumulate gradient")
	}
	if v.Grad == nil {
		t.Fatal("variable must accumulate gradient")
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-scalar Backward")
		}
	}()
	Var(tensor.New(2, 2)).Backward()
}

func TestScalarAccessor(t *testing.T) {
	v := Const(tensor.FromRows([][]float64{{42}}))
	if v.Scalar() != 42 {
		t.Fatal("Scalar accessor wrong")
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	// The iterative topological sort must handle very deep graphs.
	v := Var(tensor.FromRows([][]float64{{1}}))
	cur := v
	for i := 0; i < 20000; i++ {
		cur = Scale(cur, 1.0)
	}
	SumAll(cur).Backward()
	if math.Abs(v.Grad.At(0, 0)-1) > 1e-9 {
		t.Fatalf("deep chain grad = %v", v.Grad.At(0, 0))
	}
}

func TestDiamondGraphGradient(t *testing.T) {
	// loss = (a+a) + (a*a): d/da = 2 + 2a = 8 at a=3.
	a := Var(tensor.FromRows([][]float64{{3}}))
	loss := SumAll(Add(Add(a, a), MulElem(a, a)))
	loss.Backward()
	if got := a.Grad.At(0, 0); math.Abs(got-8) > 1e-12 {
		t.Fatalf("diamond grad = %v, want 8", got)
	}
}

func TestBackwardWithGradientMatchesSplitBackward(t *testing.T) {
	// Differentiating loss = sum(relu(x·W)) in one piece must agree with
	// cutting the graph at h = relu(x·W): backward the downstream piece from
	// a fresh leaf sharing h's data, then replay the leaf's gradient through
	// the upstream piece with BackwardWithGradient.
	rng := rand.New(rand.NewSource(21))
	x := Const(tensor.Uniform(5, 4, -1, 1, rng))
	wData := tensor.Uniform(4, 3, -1, 1, rng)

	whole := Var(wData.Clone())
	SumAll(ReLU(MatMul(x, whole))).Backward()

	split := Var(wData.Clone())
	h := ReLU(MatMul(x, split))
	cut := Var(h.Data)
	SumAll(cut).Backward()
	h.BackwardWithGradient(cut.Grad)

	if !tensor.ApproxEqual(whole.Grad, split.Grad, 1e-12) {
		t.Fatalf("split backward grad %v != whole grad %v", split.Grad, whole.Grad)
	}
}

func TestBackwardWithGradientSeedScaling(t *testing.T) {
	// Seeding with 2·dL/dv must double the leaf gradients.
	a := Var(tensor.FromRows([][]float64{{3}}))
	out := MulElem(a, a) // d(out)/da = 2a = 6
	out.BackwardWithGradient(tensor.FromRows([][]float64{{2}}))
	if got := a.Grad.At(0, 0); math.Abs(got-12) > 1e-12 {
		t.Fatalf("seeded grad = %v, want 12", got)
	}
}

func TestBackwardWithGradientNoGradRoot(t *testing.T) {
	// A constant root has no gradient path; the call must be a no-op.
	c := Const(tensor.FromRows([][]float64{{1, 2}}))
	c.BackwardWithGradient(tensor.FromRows([][]float64{{1, 1}}))
	if c.Grad != nil {
		t.Fatal("gradient materialized on a constant")
	}
}

func TestBackwardWithGradientShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on seed shape mismatch")
		}
	}()
	a := Var(tensor.New(2, 2))
	a.BackwardWithGradient(tensor.New(1, 2))
}

func TestConcurrentBackwardDisjointGraphs(t *testing.T) {
	// The reentrancy contract: graphs that share only underlying matrix
	// data (not Values) may be differentiated concurrently, and the summed
	// gradients match a serial run. Run with -race to make this a real test.
	rng := rand.New(rand.NewSource(22))
	x := Const(tensor.Uniform(20, 8, -1, 1, rng))
	wData := tensor.Uniform(8, 4, -1, 1, rng)

	serial := Var(wData.Clone())
	SumAll(ReLU(MatMul(x, serial))).Backward()

	const workers = 8
	views := make([]*Value, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		views[i] = Var(wData)
		wg.Add(1)
		go func(v *Value) {
			defer wg.Done()
			SumAll(ReLU(MatMul(x, v))).Backward()
		}(views[i])
	}
	wg.Wait()
	sum := tensor.New(8, 4)
	for _, v := range views {
		tensor.AddInPlace(sum, v.Grad)
	}
	if !tensor.ApproxEqual(sum, tensor.Scale(serial.Grad, workers), 1e-9) {
		t.Fatal("concurrent disjoint backward diverged from serial")
	}
}
