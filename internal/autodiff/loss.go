package autodiff

import (
	"fmt"
	"math"

	"lumos/internal/tensor"
)

// Loss functions. Each returns a 1×1 Value suitable for Backward. Label,
// weight, and target slices are retained by reference like the index arrays
// of the graph ops.

// SumAll returns the sum of all entries as a 1×1 value.
func SumAll(a *Value) *Value {
	t := tapeFor(a)
	data := newMatrix(t, 1, 1)
	data.Set(0, 0, tensor.Sum(a.Data))
	return newNode(t, data, backSumAll, a)
}

func backSumAll(v *Value) {
	tensor.AddConstInPlace(v.parents[0].EnsureGrad(), v.Grad.At(0, 0))
}

// MeanAll returns the mean of all entries as a 1×1 value.
func MeanAll(a *Value) *Value {
	n := a.Data.Size()
	if n == 0 {
		panic("autodiff: MeanAll of empty value")
	}
	return Scale(SumAll(a), 1/float64(n))
}

// SumSquares returns Σ aᵢⱼ² as a 1×1 value (for L2 regularization).
func SumSquares(a *Value) *Value {
	s := 0.0
	for _, v := range a.Data.Data() {
		s += v * v
	}
	t := tapeFor(a)
	data := newMatrix(t, 1, 1)
	data.Set(0, 0, s)
	return newNode(t, data, backSumSquares, a)
}

func backSumSquares(v *Value) {
	a := v.parents[0]
	tensor.AddScaledInPlace(a.EnsureGrad(), 2*v.Grad.At(0, 0), a.Data)
}

// SoftmaxCrossEntropy returns the weighted mean cross-entropy between
// row-wise softmax(logits) and the integer labels. weights may be nil (all
// ones); rows with weight 0 are ignored entirely, which is how train/test
// masking is expressed. Panics if every weight is zero.
func SoftmaxCrossEntropy(logits *Value, labels []int, weights []float64) *Value {
	n, c := logits.Data.Dims()
	if len(labels) != n {
		panic(fmt.Sprintf("autodiff: SoftmaxCrossEntropy %d labels for %d rows", len(labels), n))
	}
	if weights != nil && len(weights) != n {
		panic(fmt.Sprintf("autodiff: SoftmaxCrossEntropy %d weights for %d rows", len(weights), n))
	}
	t := tapeFor(logits)
	probs := newMatrix(t, n, c)
	tensor.SoftmaxRowsInto(probs, logits.Data)
	totalW := 0.0
	loss := 0.0
	for i := 0; i < n; i++ {
		wi := 1.0
		if weights != nil {
			wi = weights[i]
		}
		if wi == 0 {
			continue
		}
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("autodiff: label %d out of range [0,%d) at row %d", y, c, i))
		}
		p := probs.At(i, y)
		loss += wi * -math.Log(math.Max(p, 1e-12))
		totalW += wi
	}
	if totalW == 0 {
		panic("autodiff: SoftmaxCrossEntropy with all-zero weights")
	}
	loss /= totalW
	data := newMatrix(t, 1, 1)
	data.Set(0, 0, loss)
	out := newNode(t, data, backSoftmaxCE, logits)
	out.ints = labels
	out.fs = weights
	out.mat = probs
	out.s = totalW
	return out
}

func backSoftmaxCE(v *Value) {
	logits, probs := v.parents[0], v.mat
	n := probs.Rows()
	g := logits.EnsureGrad()
	scale := v.Grad.At(0, 0) / v.s
	for i := 0; i < n; i++ {
		wi := 1.0
		if v.fs != nil {
			wi = v.fs[i]
		}
		if wi == 0 {
			continue
		}
		grow, prow := g.Row(i), probs.Row(i)
		for j := range grow {
			grow[j] += scale * wi * prow[j]
		}
		grow[v.ints[i]] -= scale * wi
	}
}

// NoisyLabelCE is the forward-correction cross-entropy for learning with
// label noise of a known confusion structure: with p = softmax(logits) and
// T[i][j] = P(observed=j | true=i), the loss is −mean log((pᵀT)_ỹ). When the
// observed labels come from randomized response, training against the
// noise-adjusted distribution is a consistent estimator of the clean model
// (Patrini et al.; used here by the LPGNN baseline). A cold-path op: its
// backward closes over the forward's intermediates instead of using the
// tape's payload fields.
func NoisyLabelCE(logits *Value, noisy []int, T [][]float64, weights []float64) *Value {
	n, c := logits.Data.Dims()
	if len(noisy) != n {
		panic(fmt.Sprintf("autodiff: NoisyLabelCE %d labels for %d rows", len(noisy), n))
	}
	if len(T) != c {
		panic(fmt.Sprintf("autodiff: NoisyLabelCE transition matrix %d rows for %d classes", len(T), c))
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	t := tapeFor(logits)
	probs := newMatrix(t, n, c)
	tensor.SoftmaxRowsInto(probs, logits.Data)
	// q[i] = Σ_k p[i,k]·T[k][ỹ_i]
	q := make([]float64, n)
	totalW, loss := 0.0, 0.0
	for i := 0; i < n; i++ {
		wi := w(i)
		if wi == 0 {
			continue
		}
		y := noisy[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("autodiff: noisy label %d out of range [0,%d)", y, c))
		}
		prow := probs.Row(i)
		for k := 0; k < c; k++ {
			q[i] += prow[k] * T[k][y]
		}
		loss += wi * -math.Log(math.Max(q[i], 1e-12))
		totalW += wi
	}
	if totalW == 0 {
		panic("autodiff: NoisyLabelCE with all-zero weights")
	}
	loss /= totalW
	data := newMatrix(t, 1, 1)
	data.Set(0, 0, loss)
	return newNode(t, data, func(out *Value) {
		g := logits.EnsureGrad()
		scale := out.Grad.At(0, 0) / totalW
		for i := 0; i < n; i++ {
			wi := w(i)
			if wi == 0 {
				continue
			}
			y := noisy[i]
			qi := math.Max(q[i], 1e-12)
			prow := probs.Row(i)
			// dL/dp_ik = −w·T[k][y]/q; chain through softmax Jacobian.
			dot := 0.0
			dp := make([]float64, c)
			for k := 0; k < c; k++ {
				dp[k] = -wi * T[k][y] / qi
				dot += dp[k] * prow[k]
			}
			grow := g.Row(i)
			for k := 0; k < c; k++ {
				grow[k] += scale * prow[k] * (dp[k] - dot)
			}
		}
	}, logits)
}

// LogisticLoss returns the mean binary logistic loss over the n×1 score
// column with targets ys ∈ {+1, −1}:
//
//	L = (1/n) Σ log(1 + exp(−yᵢ·sᵢ))
//
// This is the numerically stable form of the negative-sampling objective in
// the paper's Eq. 33 (whose log(−σ(x)) is a typo for log σ(−x)).
func LogisticLoss(scores *Value, ys []float64) *Value {
	n := scores.Data.Rows()
	if scores.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: LogisticLoss on %dx%d (want n×1)", n, scores.Data.Cols()))
	}
	if len(ys) != n {
		panic(fmt.Sprintf("autodiff: LogisticLoss %d targets for %d scores", len(ys), n))
	}
	if n == 0 {
		panic("autodiff: LogisticLoss of no scores")
	}
	loss := 0.0
	for i := 0; i < n; i++ {
		z := -ys[i] * scores.Data.At(i, 0)
		loss += softplus(z)
	}
	loss /= float64(n)
	t := tapeFor(scores)
	data := newMatrix(t, 1, 1)
	data.Set(0, 0, loss)
	out := newNode(t, data, backLogisticLoss, scores)
	out.fs = ys
	return out
}

func backLogisticLoss(v *Value) {
	scores := v.parents[0]
	n := scores.Data.Rows()
	g := scores.EnsureGrad()
	scale := v.Grad.At(0, 0) / float64(n)
	for i := 0; i < n; i++ {
		// d softplus(−y·s)/ds = −y·σ(−y·s)
		z := -v.fs[i] * scores.Data.At(i, 0)
		g.Set(i, 0, g.At(i, 0)+scale*-v.fs[i]*sigmoid(z))
	}
}

// softplus computes log(1+e^x) without overflow.
func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}
