// Package autodiff implements reverse-mode automatic differentiation over
// dense matrices. It is the numerical core of the GNN trainers: every layer
// (GCN, GAT, linear heads, the tree message passing, POOL) is expressed in
// terms of the differentiable operations defined here.
//
// The engine is a tape: ops record their result nodes in construction order
// onto the Tape carried by their inputs, so Backward on a tape-bound value
// is a reverse linear sweep — no topological sort — and Tape.Reset recycles
// every node and buffer for the next epoch (see Tape). Values created with
// the package-level Var/Const constructors carry no tape; ops over them
// allocate freshly and Backward falls back to a depth-first topological
// sort, which is the right mode for long-lived parameters and one-off
// graphs. The two modes mix freely: parameters are untaped leaves inside
// taped epoch graphs, and a node whose parents disagree about their tape
// simply drops to the untaped path.
package autodiff

import (
	"fmt"
	"math"
	"math/rand"

	"lumos/internal/tensor"
)

// backward computes one recorded op's parent gradients from v.Grad. Hot ops
// use shared top-level functions here (no per-node closure allocation); the
// op's payload lives in the Value's auxiliary fields.
type backward func(v *Value)

// Value is one node in the differentiation graph: a matrix plus, after
// Backward, the gradient of the loss with respect to it.
type Value struct {
	// Data holds the forward result.
	Data *tensor.Matrix
	// Grad holds dLoss/dData after Backward; nil if no gradient flowed here.
	Grad *tensor.Matrix

	requiresGrad bool
	tape         *Tape // owning tape; nil for untaped values
	ti           int   // index on the owning tape
	parents      []*Value
	back         backward
	// gradBuf retains the last detached-by-ZeroGrad gradient buffer of an
	// untaped value so EnsureGrad can recycle it instead of reallocating.
	gradBuf *tensor.Matrix

	// Op payload. Which fields are live depends on the op; keeping them
	// inline (instead of closed over) is what makes recording allocation-free
	// once the tape's slab is warm. Cold ops (NoisyLabelCE) use a closure
	// instead.
	s     float64
	n     int
	ints  []int
	ints2 []int
	fs    []float64
	mat   *tensor.Matrix
}

// Var wraps a matrix as a trainable leaf (gradients are accumulated).
func Var(m *tensor.Matrix) *Value {
	return &Value{Data: m, requiresGrad: true}
}

// Const wraps a matrix as a non-trainable leaf (no gradient is stored).
func Const(m *tensor.Matrix) *Value {
	return &Value{Data: m}
}

// RequiresGrad reports whether the value participates in differentiation.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// ZeroGrad discards the stored gradient. The buffer is retained internally
// and recycled by the next EnsureGrad, so parameters that are zeroed and
// re-accumulated every epoch stop churning the allocator; the observable
// semantics are unchanged (Grad == nil until a gradient arrives).
func (v *Value) ZeroGrad() {
	if v.Grad != nil {
		v.gradBuf, v.Grad = v.Grad, nil
	}
}

// EnsureGrad returns the gradient buffer, allocating (or recycling) a zeroed
// one if none is attached: tape-bound values draw from their tape's
// free-list, untaped values reuse the buffer retained by ZeroGrad.
func (v *Value) EnsureGrad() *tensor.Matrix {
	if v.Grad == nil {
		r, c := v.Data.Dims()
		switch {
		case v.tape != nil:
			v.Grad = v.tape.Matrix(r, c)
		case v.gradBuf != nil && v.gradBuf.Rows() == r && v.gradBuf.Cols() == c:
			v.Grad = v.gradBuf
			v.Grad.Zero()
		default:
			v.Grad = tensor.New(r, c)
		}
	}
	return v.Grad
}

// DetachGrad hands the gradient buffer to the caller and severs it from the
// value entirely (no recycling), so the buffer can outlive the next
// ZeroGrad/EnsureGrad cycle — e.g. queued for stale application.
func (v *Value) DetachGrad() *tensor.Matrix {
	g := v.Grad
	v.Grad, v.gradBuf = nil, nil
	return g
}

// Rows returns the row count of the underlying matrix.
func (v *Value) Rows() int { return v.Data.Rows() }

// Cols returns the column count of the underlying matrix.
func (v *Value) Cols() int { return v.Data.Cols() }

// Scalar returns the single entry of a 1×1 value.
func (v *Value) Scalar() float64 {
	if v.Data.Rows() != 1 || v.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on %dx%d value", v.Data.Rows(), v.Data.Cols()))
	}
	return v.Data.At(0, 0)
}

// accum adds g into the gradient buffer, allocating it on first use.
func (v *Value) accum(g *tensor.Matrix) {
	if !v.requiresGrad {
		return
	}
	tensor.AddInPlace(v.EnsureGrad(), g)
}

// tapeFor returns the tape a new node should record onto: the unanimous
// tape of its parents. It returns nil — selecting the untaped path, whose
// depth-first backward can traverse anything — when no parent carries a
// tape, when two parents carry different tapes, or when an untaped
// non-leaf parent exists (its backward would be unreachable from a linear
// sweep of the tape).
func tapeFor(parents ...*Value) *Tape {
	var t *Tape
	for _, p := range parents {
		switch {
		case p.tape != nil:
			if t == nil {
				t = p.tape
			} else if t != p.tape {
				return nil
			}
		case p.back != nil:
			return nil
		}
	}
	return t
}

// newMatrix allocates a rows×cols output or scratch buffer: from the tape's
// free-list when t is non-nil, freshly otherwise. A pooled buffer keeps its
// previous contents — callers must fully overwrite it (accumulating
// consumers use newZeroMatrix instead). The untaped path always returns a
// zeroed matrix, so relying on stale contents is impossible to get right
// accidentally: the reuse goldens compare the two paths bit for bit.
func newMatrix(t *Tape, rows, cols int) *tensor.Matrix {
	if t != nil {
		m, _ := t.rawMatrix(rows, cols)
		return m
	}
	return tensor.New(rows, cols)
}

// newZeroMatrix is newMatrix with guaranteed-zero contents, for outputs
// that are accumulated into (scatter-adds, gradient buffers, dropout masks)
// rather than fully written.
func newZeroMatrix(t *Tape, rows, cols int) *tensor.Matrix {
	if t != nil {
		return t.Matrix(rows, cols)
	}
	return tensor.New(rows, cols)
}

// newNode builds an op result on tape t (or untaped when t is nil) whose
// requiresGrad is inherited from parents. The backward function and parent
// list are only retained when some parent needs a gradient.
func newNode(t *Tape, data *tensor.Matrix, bk backward, parents ...*Value) *Value {
	var out *Value
	if t != nil {
		out = t.newValue()
	} else {
		out = &Value{}
	}
	out.Data = data
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.parents = append(out.parents[:0], parents...)
		out.back = bk
	}
	return out
}

// Backward computes gradients of the receiver (a 1×1 scalar, typically a
// loss) with respect to every reachable Var, accumulating into their Grad.
func (v *Value) Backward() {
	if v.Data.Rows() != 1 || v.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: Backward on non-scalar %dx%d value", v.Data.Rows(), v.Data.Cols()))
	}
	g := v.EnsureGrad()
	g.Set(0, 0, g.At(0, 0)+1)
	v.propagate()
}

// BackwardWithGradient seeds the receiver with the given upstream gradient
// dL/dv (same shape as v.Data) and propagates it to every reachable Var,
// accumulating into their Grad. It generalizes Backward to non-scalar roots,
// which is what lets a large graph be cut at an intermediate value: run
// Backward on the downstream piece, read the cut point's Grad, and replay it
// here as the seed of the upstream piece.
//
// Reentrancy: BackwardWithGradient (and Backward) may run concurrently on
// different roots provided the reachable gradient-requiring subgraphs are
// disjoint — gradient accumulation writes only to Values inside the
// traversed subgraph. Sharing a Var between two concurrently differentiated
// graphs is a data race; give each graph its own leaf (sharing the
// underlying matrix data is fine) and reduce the gradient buffers
// afterwards. The same applies to tapes: a Tape serves one goroutine at a
// time.
func (v *Value) BackwardWithGradient(seed *tensor.Matrix) {
	if !v.requiresGrad {
		return
	}
	if seed.Rows() != v.Data.Rows() || seed.Cols() != v.Data.Cols() {
		panic(fmt.Sprintf("autodiff: BackwardWithGradient seed %dx%d for %dx%d value",
			seed.Rows(), seed.Cols(), v.Data.Rows(), v.Data.Cols()))
	}
	v.accum(seed)
	v.propagate()
}

// propagate runs the backward functions of the receiver's reachable
// subgraph in reverse topological order. The receiver's Grad must already
// be seeded. Tape-bound receivers sweep the tape linearly; untaped
// receivers fall back to a depth-first topological sort, which also covers
// graphs spanning several tapes.
func (v *Value) propagate() {
	if v.tape != nil {
		v.tape.sweep(v.ti)
		return
	}
	order := topoSort(v)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.Grad != nil && n.back != nil {
			n.back(n)
		}
	}
}

// topoSort returns the reachable gradient-requiring subgraph in topological
// order (parents before children), iteratively to avoid deep recursion on
// large graphs.
func topoSort(root *Value) []*Value {
	var order []*Value
	visited := make(map[*Value]bool)
	type frame struct {
		v    *Value
		next int
	}
	stack := []frame{{v: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.v.parents) {
			p := f.v.parents[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{v: p})
			}
			continue
		}
		order = append(order, f.v)
		stack = stack[:len(stack)-1]
	}
	return order
}

// ---------------------------------------------------------------------------
// Linear algebra ops
// ---------------------------------------------------------------------------

// MatMul returns a·b.
func MatMul(a, b *Value) *Value {
	t := tapeFor(a, b)
	data := newMatrix(t, a.Data.Rows(), b.Data.Cols())
	tensor.MatMulInto(data, a.Data, b.Data)
	return newNode(t, data, backMatMul, a, b)
}

func backMatMul(v *Value) {
	a, b := v.parents[0], v.parents[1]
	if a.requiresGrad {
		tensor.MatMulNTAddInto(a.EnsureGrad(), v.Grad, b.Data)
	}
	if b.requiresGrad {
		tensor.MatMulTNAddInto(b.EnsureGrad(), a.Data, v.Grad)
	}
}

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	t := tapeFor(a, b)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	tensor.AddInto(data, a.Data, b.Data)
	return newNode(t, data, backFanIn, a, b)
}

// backFanIn adds the output gradient to every parent — the backward of Add
// and AddN.
func backFanIn(v *Value) {
	for _, p := range v.parents {
		p.accum(v.Grad)
	}
}

// Sub returns a − b (same shape).
func Sub(a, b *Value) *Value {
	t := tapeFor(a, b)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	tensor.SubInto(data, a.Data, b.Data)
	return newNode(t, data, backSub, a, b)
}

func backSub(v *Value) {
	a, b := v.parents[0], v.parents[1]
	a.accum(v.Grad)
	if b.requiresGrad {
		tensor.AddScaledInPlace(b.EnsureGrad(), -1, v.Grad)
	}
}

// AddRow adds the 1×c row vector r to every row of a.
func AddRow(a, r *Value) *Value {
	t := tapeFor(a, r)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	tensor.AddRowVectorInto(data, a.Data, r.Data)
	return newNode(t, data, backAddRow, a, r)
}

func backAddRow(v *Value) {
	a, r := v.parents[0], v.parents[1]
	a.accum(v.Grad)
	if r.requiresGrad {
		tensor.AddRowSumsInPlace(r.EnsureGrad(), v.Grad)
	}
}

// MulElem returns the elementwise product a ⊙ b.
func MulElem(a, b *Value) *Value {
	t := tapeFor(a, b)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	tensor.MulElemInto(data, a.Data, b.Data)
	return newNode(t, data, backMulElem, a, b)
}

func backMulElem(v *Value) {
	a, b := v.parents[0], v.parents[1]
	if a.requiresGrad {
		tensor.MulElemAddInto(a.EnsureGrad(), v.Grad, b.Data)
	}
	if b.requiresGrad {
		tensor.MulElemAddInto(b.EnsureGrad(), v.Grad, a.Data)
	}
}

// Scale returns s·a for a constant s.
func Scale(a *Value, s float64) *Value {
	t := tapeFor(a)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	tensor.ScaleInto(data, a.Data, s)
	out := newNode(t, data, backScale, a)
	out.s = s
	return out
}

func backScale(v *Value) {
	tensor.AddScaledInPlace(v.parents[0].EnsureGrad(), v.s, v.Grad)
}

// AddN sums any number of same-shape values.
func AddN(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("autodiff: AddN of nothing")
	}
	t := tapeFor(vs...)
	data := newMatrix(t, vs[0].Data.Rows(), vs[0].Data.Cols())
	data.CopyFrom(vs[0].Data)
	for _, v := range vs[1:] {
		tensor.AddInPlace(data, v.Data)
	}
	return newNode(t, data, backFanIn, vs...)
}

// ---------------------------------------------------------------------------
// Activations and regularization
// ---------------------------------------------------------------------------

// ReLU returns max(0, a) elementwise.
func ReLU(a *Value) *Value {
	t := tapeFor(a)
	data := newZeroMatrix(t, a.Data.Rows(), a.Data.Cols())
	ad, od := a.Data.Data(), data.Data()
	for i, x := range ad {
		if x > 0 {
			od[i] = x
		}
	}
	return newNode(t, data, backReLU, a)
}

func backReLU(v *Value) {
	a := v.parents[0]
	gd := a.EnsureGrad().Data()
	ad, od := a.Data.Data(), v.Grad.Data()
	for i := range ad {
		if ad[i] > 0 {
			gd[i] += od[i]
		}
	}
}

// LeakyReLU returns x for x>0 and slope·x otherwise, elementwise.
func LeakyReLU(a *Value, slope float64) *Value {
	t := tapeFor(a)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	ad, od := a.Data.Data(), data.Data()
	for i, x := range ad {
		if x > 0 {
			od[i] = x
		} else {
			od[i] = slope * x
		}
	}
	out := newNode(t, data, backLeakyReLU, a)
	out.s = slope
	return out
}

func backLeakyReLU(v *Value) {
	a := v.parents[0]
	gd := a.EnsureGrad().Data()
	ad, od := a.Data.Data(), v.Grad.Data()
	for i := range ad {
		if ad[i] > 0 {
			gd[i] += od[i]
		} else {
			gd[i] += v.s * od[i]
		}
	}
}

// Sigmoid returns 1/(1+e^{−a}) elementwise.
func Sigmoid(a *Value) *Value {
	t := tapeFor(a)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	ad, od := a.Data.Data(), data.Data()
	for i, x := range ad {
		od[i] = sigmoid(x)
	}
	return newNode(t, data, backSigmoid, a)
}

func backSigmoid(v *Value) {
	a := v.parents[0]
	gd := a.EnsureGrad().Data()
	sd, od := v.Data.Data(), v.Grad.Data()
	for i := range sd {
		gd[i] += od[i] * sd[i] * (1 - sd[i])
	}
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Value) *Value {
	t := tapeFor(a)
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	ad, od := a.Data.Data(), data.Data()
	for i, x := range ad {
		od[i] = math.Tanh(x)
	}
	return newNode(t, data, backTanh, a)
}

func backTanh(v *Value) {
	a := v.parents[0]
	gd := a.EnsureGrad().Data()
	td, od := v.Data.Data(), v.Grad.Data()
	for i := range td {
		gd[i] += od[i] * (1 - td[i]*td[i])
	}
}

// Dropout zeroes entries with probability p and rescales survivors by
// 1/(1−p) when training is true; it is the identity otherwise.
func Dropout(a *Value, p float64, rng *rand.Rand, training bool) *Value {
	if !training || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autodiff: Dropout probability must be < 1")
	}
	t := tapeFor(a)
	keep := 1 / (1 - p)
	mask := newZeroMatrix(t, a.Data.Rows(), a.Data.Cols())
	md := mask.Data()
	for i := range md {
		if rng.Float64() >= p {
			md[i] = keep
		}
	}
	data := newMatrix(t, a.Data.Rows(), a.Data.Cols())
	tensor.MulElemInto(data, a.Data, mask)
	out := newNode(t, data, backDropout, a)
	out.mat = mask
	return out
}

func backDropout(v *Value) {
	tensor.MulElemAddInto(v.parents[0].EnsureGrad(), v.Grad, v.mat)
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
