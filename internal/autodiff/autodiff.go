// Package autodiff implements reverse-mode automatic differentiation over
// dense matrices. It is the numerical core of the GNN trainers: every layer
// (GCN, GAT, linear heads, the tree message passing, POOL) is expressed in
// terms of the differentiable operations defined here.
//
// The design is graph-based rather than tape-based: each Value records its
// parents and a backward closure, and Backward performs a depth-first
// topological sort from the loss node. Parameters are long-lived Values
// (created with Var); intermediates from past epochs become unreachable and
// are garbage collected, so one parameter set can be reused across an
// arbitrary number of forward/backward passes.
package autodiff

import (
	"fmt"
	"math"
	"math/rand"

	"lumos/internal/tensor"
)

// Value is one node in the differentiation graph: a matrix plus, after
// Backward, the gradient of the loss with respect to it.
type Value struct {
	// Data holds the forward result.
	Data *tensor.Matrix
	// Grad holds dLoss/dData after Backward; nil if no gradient flowed here.
	Grad *tensor.Matrix

	requiresGrad bool
	parents      []*Value
	backFn       func()
}

// Var wraps a matrix as a trainable leaf (gradients are accumulated).
func Var(m *tensor.Matrix) *Value {
	return &Value{Data: m, requiresGrad: true}
}

// Const wraps a matrix as a non-trainable leaf (no gradient is stored).
func Const(m *tensor.Matrix) *Value {
	return &Value{Data: m}
}

// RequiresGrad reports whether the value participates in differentiation.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// ZeroGrad discards the stored gradient.
func (v *Value) ZeroGrad() { v.Grad = nil }

// Rows returns the row count of the underlying matrix.
func (v *Value) Rows() int { return v.Data.Rows() }

// Cols returns the column count of the underlying matrix.
func (v *Value) Cols() int { return v.Data.Cols() }

// Scalar returns the single entry of a 1×1 value.
func (v *Value) Scalar() float64 {
	if v.Data.Rows() != 1 || v.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on %dx%d value", v.Data.Rows(), v.Data.Cols()))
	}
	return v.Data.At(0, 0)
}

// accum adds g into the gradient buffer, allocating it on first use.
func (v *Value) accum(g *tensor.Matrix) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = tensor.New(v.Data.Rows(), v.Data.Cols())
	}
	tensor.AddInPlace(v.Grad, g)
}

// node builds an op result whose requiresGrad is inherited from parents.
// backFn is only retained when some parent needs a gradient.
func node(data *tensor.Matrix, backFn func(), parents ...*Value) *Value {
	out := &Value{Data: data}
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.parents = parents
		out.backFn = backFn
	}
	return out
}

// Backward computes gradients of the receiver (a 1×1 scalar, typically a
// loss) with respect to every reachable Var, accumulating into their Grad.
func (v *Value) Backward() {
	if v.Data.Rows() != 1 || v.Data.Cols() != 1 {
		panic(fmt.Sprintf("autodiff: Backward on non-scalar %dx%d value", v.Data.Rows(), v.Data.Cols()))
	}
	if v.Grad == nil {
		v.Grad = tensor.New(1, 1)
	}
	v.Grad.Set(0, 0, v.Grad.At(0, 0)+1)
	v.propagate()
}

// BackwardWithGradient seeds the receiver with the given upstream gradient
// dL/dv (same shape as v.Data) and propagates it to every reachable Var,
// accumulating into their Grad. It generalizes Backward to non-scalar roots,
// which is what lets a large graph be cut at an intermediate value: run
// Backward on the downstream piece, read the cut point's Grad, and replay it
// here as the seed of the upstream piece.
//
// Reentrancy: BackwardWithGradient (and Backward) may run concurrently on
// different roots provided the reachable gradient-requiring subgraphs are
// disjoint — gradient accumulation writes only to Values inside the
// traversed subgraph. Sharing a Var between two concurrently differentiated
// graphs is a data race; give each graph its own leaf (sharing the
// underlying matrix data is fine) and reduce the gradient buffers
// afterwards.
func (v *Value) BackwardWithGradient(seed *tensor.Matrix) {
	if !v.requiresGrad {
		return
	}
	if seed.Rows() != v.Data.Rows() || seed.Cols() != v.Data.Cols() {
		panic(fmt.Sprintf("autodiff: BackwardWithGradient seed %dx%d for %dx%d value",
			seed.Rows(), seed.Cols(), v.Data.Rows(), v.Data.Cols()))
	}
	v.accum(seed)
	v.propagate()
}

// propagate runs the backward closures of the receiver's reachable subgraph
// in reverse topological order. The receiver's Grad must already be seeded.
func (v *Value) propagate() {
	order := topoSort(v)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.Grad != nil && n.backFn != nil {
			n.backFn()
		}
	}
}

// topoSort returns the reachable gradient-requiring subgraph in topological
// order (parents before children), iteratively to avoid deep recursion on
// large graphs.
func topoSort(root *Value) []*Value {
	var order []*Value
	visited := make(map[*Value]bool)
	type frame struct {
		v    *Value
		next int
	}
	stack := []frame{{v: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.v.parents) {
			p := f.v.parents[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{v: p})
			}
			continue
		}
		order = append(order, f.v)
		stack = stack[:len(stack)-1]
	}
	return order
}

// ---------------------------------------------------------------------------
// Linear algebra ops
// ---------------------------------------------------------------------------

// MatMul returns a·b.
func MatMul(a, b *Value) *Value {
	data := tensor.MatMul(a.Data, b.Data)
	out := node(data, nil, a, b)
	if out.requiresGrad {
		out.backFn = func() {
			g := out.Grad
			if a.requiresGrad {
				a.accum(tensor.MatMul(g, tensor.Transpose(b.Data)))
			}
			if b.requiresGrad {
				b.accum(tensor.MatMul(tensor.Transpose(a.Data), g))
			}
		}
	}
	return out
}

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	data := tensor.Add(a.Data, b.Data)
	out := node(data, nil, a, b)
	if out.requiresGrad {
		out.backFn = func() {
			a.accum(out.Grad)
			b.accum(out.Grad)
		}
	}
	return out
}

// Sub returns a − b (same shape).
func Sub(a, b *Value) *Value {
	data := tensor.Sub(a.Data, b.Data)
	out := node(data, nil, a, b)
	if out.requiresGrad {
		out.backFn = func() {
			a.accum(out.Grad)
			if b.requiresGrad {
				b.accum(tensor.Scale(out.Grad, -1))
			}
		}
	}
	return out
}

// AddRow adds the 1×c row vector v to every row of a.
func AddRow(a, v *Value) *Value {
	data := tensor.AddRowVector(a.Data, v.Data)
	out := node(data, nil, a, v)
	if out.requiresGrad {
		out.backFn = func() {
			a.accum(out.Grad)
			if v.requiresGrad {
				v.accum(tensor.SumRows(out.Grad))
			}
		}
	}
	return out
}

// MulElem returns the elementwise product a ⊙ b.
func MulElem(a, b *Value) *Value {
	data := tensor.MulElem(a.Data, b.Data)
	out := node(data, nil, a, b)
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.accum(tensor.MulElem(out.Grad, b.Data))
			}
			if b.requiresGrad {
				b.accum(tensor.MulElem(out.Grad, a.Data))
			}
		}
	}
	return out
}

// Scale returns s·a for a constant s.
func Scale(a *Value, s float64) *Value {
	data := tensor.Scale(a.Data, s)
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			a.accum(tensor.Scale(out.Grad, s))
		}
	}
	return out
}

// AddN sums any number of same-shape values.
func AddN(vs ...*Value) *Value {
	if len(vs) == 0 {
		panic("autodiff: AddN of nothing")
	}
	data := vs[0].Data.Clone()
	for _, v := range vs[1:] {
		tensor.AddInPlace(data, v.Data)
	}
	out := node(data, nil, vs...)
	if out.requiresGrad {
		out.backFn = func() {
			for _, v := range vs {
				v.accum(out.Grad)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Activations and regularization
// ---------------------------------------------------------------------------

// ReLU returns max(0, a) elementwise.
func ReLU(a *Value) *Value {
	data := tensor.Apply(a.Data, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			g := tensor.New(a.Data.Rows(), a.Data.Cols())
			ad, gd, od := a.Data.Data(), g.Data(), out.Grad.Data()
			for i := range ad {
				if ad[i] > 0 {
					gd[i] = od[i]
				}
			}
			a.accum(g)
		}
	}
	return out
}

// LeakyReLU returns x for x>0 and slope·x otherwise, elementwise.
func LeakyReLU(a *Value, slope float64) *Value {
	data := tensor.Apply(a.Data, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return slope * x
	})
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			g := tensor.New(a.Data.Rows(), a.Data.Cols())
			ad, gd, od := a.Data.Data(), g.Data(), out.Grad.Data()
			for i := range ad {
				if ad[i] > 0 {
					gd[i] = od[i]
				} else {
					gd[i] = slope * od[i]
				}
			}
			a.accum(g)
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^{−a}) elementwise.
func Sigmoid(a *Value) *Value {
	data := tensor.Apply(a.Data, sigmoid)
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			g := tensor.New(a.Data.Rows(), a.Data.Cols())
			sd, gd, od := out.Data.Data(), g.Data(), out.Grad.Data()
			for i := range sd {
				gd[i] = od[i] * sd[i] * (1 - sd[i])
			}
			a.accum(g)
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Value) *Value {
	data := tensor.Apply(a.Data, math.Tanh)
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			g := tensor.New(a.Data.Rows(), a.Data.Cols())
			td, gd, od := out.Data.Data(), g.Data(), out.Grad.Data()
			for i := range td {
				gd[i] = od[i] * (1 - td[i]*td[i])
			}
			a.accum(g)
		}
	}
	return out
}

// Dropout zeroes entries with probability p and rescales survivors by
// 1/(1−p) when training is true; it is the identity otherwise.
func Dropout(a *Value, p float64, rng *rand.Rand, training bool) *Value {
	if !training || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autodiff: Dropout probability must be < 1")
	}
	keep := 1 / (1 - p)
	mask := tensor.New(a.Data.Rows(), a.Data.Cols())
	md := mask.Data()
	for i := range md {
		if rng.Float64() >= p {
			md[i] = keep
		}
	}
	data := tensor.MulElem(a.Data, mask)
	out := node(data, nil, a)
	if out.requiresGrad {
		out.backFn = func() {
			a.accum(tensor.MulElem(out.Grad, mask))
		}
	}
	return out
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
