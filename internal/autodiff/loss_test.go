package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"lumos/internal/tensor"
)

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	logits := randVar(5, 3, rng)
	labels := []int{0, 2, 1, 1, 0}
	weights := []float64{1, 0, 2, 1, 0.5}
	gradCheck(t, "softmaxCE", []*Value{logits}, func() *Value {
		return SoftmaxCrossEntropy(logits, labels, weights)
	})
}

func TestSoftmaxCrossEntropyValue(t *testing.T) {
	// Uniform logits over C classes → loss = ln C.
	logits := Const(tensor.New(4, 3))
	loss := SoftmaxCrossEntropy(logits, []int{0, 1, 2, 0}, nil)
	if math.Abs(loss.Scalar()-math.Log(3)) > 1e-12 {
		t.Fatalf("uniform CE = %v, want ln3", loss.Scalar())
	}
}

func TestSoftmaxCrossEntropyMasking(t *testing.T) {
	logits := Var(tensor.FromRows([][]float64{{10, 0}, {0, 10}}))
	// Row 1 masked out: only row 0 (correct, confident) contributes.
	loss := SoftmaxCrossEntropy(logits, []int{0, 0}, []float64{1, 0})
	if loss.Scalar() > 1e-3 {
		t.Fatalf("masked CE = %v, want ≈0", loss.Scalar())
	}
	loss.Backward()
	r1 := logits.Grad.Row(1)
	if r1[0] != 0 || r1[1] != 0 {
		t.Fatal("masked row must get zero gradient")
	}
}

func TestSoftmaxCrossEntropyAllZeroWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(Const(tensor.New(2, 2)), []int{0, 1}, []float64{0, 0})
}

func TestSoftmaxCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(Const(tensor.New(1, 2)), []int{5}, nil)
}

func TestGradLogisticLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	scores := randVar(6, 1, rng)
	ys := []float64{1, -1, 1, -1, 1, -1}
	gradCheck(t, "logistic", []*Value{scores}, func() *Value {
		return LogisticLoss(scores, ys)
	})
}

func TestLogisticLossValues(t *testing.T) {
	// score 0 → loss ln2 regardless of label.
	s := Const(tensor.New(2, 1))
	loss := LogisticLoss(s, []float64{1, -1})
	if math.Abs(loss.Scalar()-math.Log(2)) > 1e-12 {
		t.Fatalf("logistic at 0 = %v, want ln2", loss.Scalar())
	}
	// Very confident correct predictions → loss ≈ 0.
	s2 := Const(tensor.FromRows([][]float64{{50}, {-50}}))
	loss2 := LogisticLoss(s2, []float64{1, -1})
	if loss2.Scalar() > 1e-9 {
		t.Fatalf("confident logistic = %v", loss2.Scalar())
	}
	// Extreme scores must not overflow.
	s3 := Const(tensor.FromRows([][]float64{{1e4}, {-1e4}}))
	loss3 := LogisticLoss(s3, []float64{-1, 1})
	if math.IsInf(loss3.Scalar(), 0) || math.IsNaN(loss3.Scalar()) {
		t.Fatalf("logistic overflow: %v", loss3.Scalar())
	}
}

func TestGradNoisyLabelCE(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	logits := randVar(4, 3, rng)
	noisy := []int{0, 1, 2, 1}
	weights := []float64{1, 1, 0, 2}
	T := [][]float64{
		{0.8, 0.1, 0.1},
		{0.1, 0.8, 0.1},
		{0.1, 0.1, 0.8},
	}
	gradCheck(t, "noisyCE", []*Value{logits}, func() *Value {
		return NoisyLabelCE(logits, noisy, T, weights)
	})
}

func TestNoisyLabelCEIdentityMatchesPlainCE(t *testing.T) {
	// With T = I the forward-corrected loss is ordinary cross-entropy.
	rng := rand.New(rand.NewSource(23))
	logits := randVar(5, 4, rng)
	labels := []int{0, 3, 2, 1, 0}
	T := [][]float64{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1},
	}
	a := NoisyLabelCE(logits, labels, T, nil).Scalar()
	b := SoftmaxCrossEntropy(logits, labels, nil).Scalar()
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("identity-T loss %v != CE %v", a, b)
	}
}

func TestGradSumMeanSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randVar(3, 4, rng)
	gradCheck(t, "meanall", []*Value{a}, func() *Value { return MeanAll(a) })
	gradCheck(t, "sumsquares", []*Value{a}, func() *Value { return SumSquares(a) })
}

func TestSoftplusStable(t *testing.T) {
	if got := softplus(1000); got != 1000 {
		t.Fatalf("softplus(1000) = %v", got)
	}
	if got := softplus(-1000); got != 0 {
		t.Fatalf("softplus(-1000) = %v", got)
	}
	if math.Abs(softplus(0)-math.Log(2)) > 1e-12 {
		t.Fatalf("softplus(0) = %v", softplus(0))
	}
}
