package report

import (
	"fmt"
	"math"
)

// DiffOptions sets the regression thresholds Diff enforces. The zero
// value is NOT useful — call DefaultDiffOptions for the CI defaults.
type DiffOptions struct {
	// MetricTol is the absolute drop in final metric tolerated before the
	// diff counts as a regression (metric is assumed higher-better unless
	// LowerMetricBetter).
	MetricTol float64
	// WallTol, BytesTol, EnergyTol are the relative growth fractions
	// tolerated for wall-clock, total bytes, and total energy (0.10 =
	// +10% allowed).
	WallTol   float64
	BytesTol  float64
	EnergyTol float64
	// LowerMetricBetter flips the metric direction (loss-like metrics).
	LowerMetricBetter bool
}

// DefaultDiffOptions are the CI-gate thresholds: metric may drop at most
// 0.005 absolute; wall-clock, bytes, and energy may each grow at most
// 10%.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{MetricTol: 0.005, WallTol: 0.10, BytesTol: 0.10, EnergyTol: 0.10}
}

// Delta is one compared summary quantity: baseline A, candidate B, the
// absolute and relative change, and whether the change breaches its
// threshold.
type Delta struct {
	Name      string  `json:"name"`
	A         float64 `json:"a"`
	B         float64 `json:"b"`
	Abs       float64 `json:"abs"`
	Rel       float64 `json:"rel"`
	Regressed bool    `json:"regressed,omitempty"`
}

// RoundDelta compares one round present in both records.
type RoundDelta struct {
	Round       int     `json:"round"`
	CommitDelta float64 `json:"commit_delta"`
	LossDelta   float64 `json:"loss_delta"`
	BytesDelta  int64   `json:"bytes_delta"`
}

// DiffResult is the comparison of two run records: summary deltas,
// per-round deltas over the common round prefix, and the list of
// threshold breaches (empty = the candidate passes the gate).
type DiffResult struct {
	Deltas []Delta      `json:"deltas"`
	Rounds []RoundDelta `json:"rounds,omitempty"`
	// RoundCountA/B record differing round counts (a truncated candidate
	// is worth seeing even when its prefix matches).
	RoundCountA int `json:"round_count_a"`
	RoundCountB int `json:"round_count_b"`
	// Regressions are human-readable breach descriptions; non-empty means
	// the candidate failed the gate.
	Regressions []string `json:"regressions,omitempty"`
}

// Regressed reports whether any threshold was breached.
func (d *DiffResult) Regressed() bool { return len(d.Regressions) > 0 }

// rel computes b's relative change over a, treating a zero baseline as
// no-change when b is also zero and full growth otherwise.
func rel(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (b - a) / a
}

// Diff compares candidate b against baseline a under opt's thresholds.
// Summary quantities come from the manifests; per-round deltas pair rows
// by index over the common prefix.
func Diff(a, b *RunRecord, opt DiffOptions) *DiffResult {
	res := &DiffResult{
		RoundCountA: len(a.Rounds),
		RoundCountB: len(b.Rounds),
	}
	am, bm := a.Manifest, b.Manifest

	metric := Delta{Name: "final_metric", A: am.FinalMetric, B: bm.FinalMetric,
		Abs: bm.FinalMetric - am.FinalMetric, Rel: rel(am.FinalMetric, bm.FinalMetric)}
	drop := -metric.Abs
	if opt.LowerMetricBetter {
		drop = metric.Abs
	}
	if drop > opt.MetricTol {
		metric.Regressed = true
		res.Regressions = append(res.Regressions,
			fmt.Sprintf("final_metric %s dropped %.4f (%.4f -> %.4f, tolerance %.4f)",
				am.MetricName, drop, am.FinalMetric, bm.FinalMetric, opt.MetricTol))
	}
	res.Deltas = append(res.Deltas, metric)

	for _, q := range []struct {
		name string
		a, b float64
		tol  float64
	}{
		{"wall_clock", am.WallClock, bm.WallClock, opt.WallTol},
		{"total_bytes", float64(am.TotalBytes), float64(bm.TotalBytes), opt.BytesTol},
		{"total_energy", am.TotalEnergy, bm.TotalEnergy, opt.EnergyTol},
	} {
		d := Delta{Name: q.name, A: q.a, B: q.b, Abs: q.b - q.a, Rel: rel(q.a, q.b)}
		if d.Rel > q.tol {
			d.Regressed = true
			res.Regressions = append(res.Regressions,
				fmt.Sprintf("%s grew %.1f%% (%.4g -> %.4g, tolerance %.0f%%)",
					q.name, d.Rel*100, q.a, q.b, q.tol*100))
		}
		res.Deltas = append(res.Deltas, d)
	}

	n := len(a.Rounds)
	if len(b.Rounds) < n {
		n = len(b.Rounds)
	}
	for i := 0; i < n; i++ {
		ra, rb := a.Rounds[i], b.Rounds[i]
		res.Rounds = append(res.Rounds, RoundDelta{
			Round:       ra.Round,
			CommitDelta: rb.Commit - ra.Commit,
			LossDelta:   rb.Loss - ra.Loss,
			BytesDelta:  rb.Bytes - ra.Bytes,
		})
	}
	return res
}
