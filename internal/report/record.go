// Package report is the analysis half of observability: recorded, diffable
// run artifacts plus trace analytics over the telemetry internal/obs
// writes.
//
// PR 7 made every layer emit metrics and traces; this package makes them
// answerable. A run record is a directory holding three files:
//
//   - manifest.json — the full reproduction context (CLI args, seed, fleet,
//     topology, kernel path, go version, GOMAXPROCS) plus the run's summary
//     (final metric, wall-clock, bytes, energy), rewritten when the run
//     finishes;
//   - rounds.jsonl — one JSON row per committed round, streamed as rounds
//     commit so a crashed run still leaves a usable prefix;
//   - metrics.prom — the final Prometheus scrape of the run's registry.
//
// Writer streams a record incrementally (lumos-sim/lumos-train -run-out);
// WriteRunRecord writes one in a single call; LoadRunRecord reads one back,
// tolerating a truncated rounds.jsonl tail with a warning — exactly what a
// killed run leaves behind. Two records of the same scenario diff with
// Diff (cmd/lumos-report), turning any pair of runs into a CI-able A/B
// gate; AnalyzeTrace (analyze.go) computes per-round critical paths and
// straggler blame from the trace events the simulator records.
package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"lumos/internal/core"
	"lumos/internal/fed"
	"lumos/internal/obs"
	"lumos/internal/sim"
)

// Names of the files inside a run-record directory.
const (
	ManifestFile = "manifest.json"
	RoundsFile   = "rounds.jsonl"
	MetricsFile  = "metrics.prom"
)

// Manifest is a run's reproduction context and summary. The context fields
// are written when the run starts; the summary fields are zero until the
// run finishes and the manifest is rewritten.
type Manifest struct {
	// Tool names the producing binary ("lumos-sim", "lumos-train").
	Tool string `json:"tool"`
	// Args is the full command line after the binary name — enough to
	// re-run the exact configuration.
	Args []string `json:"args"`
	Seed int64    `json:"seed"`

	Dataset  string `json:"dataset,omitempty"`
	Task     string `json:"task,omitempty"`
	Backbone string `json:"backbone,omitempty"`
	Sched    string `json:"sched,omitempty"`
	// Fleet and Topology describe the simulated deployment (sim runs only).
	Fleet    string `json:"fleet,omitempty"`
	Topology string `json:"topology,omitempty"`
	// Kernels is the tensor kernel path the run used ("" = blocked default).
	Kernels string `json:"kernels,omitempty"`
	// Rounds is the configured round (or epoch) count.
	Rounds int `json:"rounds,omitempty"`

	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	CreatedUnix int64  `json:"created_unix"`

	// Summary, filled by Writer.Finish.
	MetricName  string  `json:"metric_name,omitempty"`
	FinalMetric float64 `json:"final_metric,omitempty"`
	WallClock   float64 `json:"wall_clock,omitempty"`
	TotalBytes  int64   `json:"total_bytes,omitempty"`
	TotalEnergy float64 `json:"total_energy,omitempty"`
}

// NewManifest stamps the environment fields every producer fills the same
// way: tool name, full args, go version, GOMAXPROCS, NumCPU, creation time.
func NewManifest(tool string, args []string, seed int64, createdUnix int64) Manifest {
	return Manifest{
		Tool:       tool,
		Args:       append([]string(nil), args...),
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),

		CreatedUnix: createdUnix,
	}
}

// Summary is the run's outcome, folded into the manifest at Finish.
type Summary struct {
	MetricName  string
	FinalMetric float64
	WallClock   float64
	TotalBytes  int64
	TotalEnergy float64
}

// RoundRow is one committed round (or epoch) of a run — sim.RoundStats plus
// the training metrics, flattened into a stable JSON schema.
type RoundRow struct {
	Round        int     `json:"round"`
	Start        float64 `json:"start"`
	Commit       float64 `json:"commit"`
	Available    int     `json:"available,omitempty"`
	Participants int     `json:"participants,omitempty"`
	Joined       int     `json:"joined,omitempty"`
	Left         int     `json:"left,omitempty"`
	Late         int     `json:"late,omitempty"`
	CatchUps     int     `json:"catchups,omitempty"`
	StaleApplied int     `json:"stale,omitempty"`
	Dropped      int     `json:"dropped,omitempty"`
	Skipped      bool    `json:"skipped,omitempty"`
	Bytes        int64   `json:"bytes,omitempty"`
	Energy       float64 `json:"energy,omitempty"`
	Loss         float64 `json:"loss"`
	Metric       float64 `json:"metric,omitempty"`
	Evaluated    bool    `json:"evaluated,omitempty"`
	ValMetric    float64 `json:"val_metric,omitempty"`
	ValEvaluated bool    `json:"val_evaluated,omitempty"`
}

// RowFromSim flattens one simulated round into its record row.
func RowFromSim(rs sim.RoundStats) RoundRow {
	return RoundRow{
		Round: rs.Round, Start: rs.Start, Commit: rs.Commit,
		Available: rs.Available, Participants: rs.Participants,
		Joined: rs.Joined, Left: rs.Left, Late: rs.Late,
		CatchUps: rs.CatchUps, StaleApplied: rs.StaleApplied,
		Dropped: rs.Dropped, Skipped: rs.Skipped,
		Bytes: rs.Bytes, Energy: rs.Energy, Loss: rs.Loss,
		Metric: rs.Metric, Evaluated: rs.Evaluated,
		ValMetric: rs.ValMetric, ValEvaluated: rs.ValEvaluated,
	}
}

// RowsFromTrainStats derives per-epoch rows from an epoch-trained session's
// record: epoch index, loss, and the epoch's wire bytes. Epoch trainers have
// no virtual clock, so Start/Commit stay zero.
func RowsFromTrainStats(stats *core.TrainStats) []RoundRow {
	rows := make([]RoundRow, 0, len(stats.Losses))
	for i, loss := range stats.Losses {
		row := RoundRow{Round: i, Loss: loss}
		if i < len(stats.EpochTraffic) {
			row.Bytes = stats.EpochTraffic[i].TotalBytes(fed.MsgEmbedding,
				fed.MsgPooled, fed.MsgNegSample, fed.MsgLoss, fed.MsgGradient)
		}
		rows = append(rows, row)
	}
	return rows
}

// RunRecord is a loaded (or about-to-be-written) run record.
type RunRecord struct {
	Manifest Manifest
	Rounds   []RoundRow
	// Metrics is the final Prometheus scrape parsed into a flat
	// sample-name → value map (nil when the record carries no scrape).
	Metrics map[string]float64
}

// Writer streams a run record to a directory: the manifest is written up
// front, round rows append (and flush) as they commit, and Finish rewrites
// the manifest with the summary plus the final metrics scrape. A nil
// *Writer is valid and every method no-ops, so recording stays a
// one-line-per-call-site concern like the rest of internal/obs.
type Writer struct {
	dir      string
	manifest Manifest
	f        *os.File
	bw       *bufio.Writer
	rows     int
}

// NewWriter creates dir (and parents) and starts a record there with the
// given manifest context. An existing rounds.jsonl/manifest.json in dir is
// overwritten — re-recording into a directory replaces the old record.
func NewWriter(dir string, m Manifest) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, RoundsFile))
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return &Writer{dir: dir, manifest: m, f: f, bw: bufio.NewWriter(f)}, nil
}

// Dir reports the record's directory ("" on a nil writer).
func (w *Writer) Dir() string {
	if w == nil {
		return ""
	}
	return w.dir
}

// Round appends one row to rounds.jsonl and flushes it to the file, so an
// interrupted run keeps every committed round. No-op on a nil writer.
func (w *Writer) Round(row RoundRow) error {
	if w == nil {
		return nil
	}
	b, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if _, err := w.bw.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	w.rows++
	return nil
}

// Finish seals the record: the rounds file closes, the manifest is
// rewritten with the summary, and — when reg is non-nil — its final scrape
// lands in metrics.prom. No-op on a nil writer.
func (w *Writer) Finish(s Summary, reg *obs.Registry) error {
	if w == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("report: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	w.manifest.MetricName = s.MetricName
	w.manifest.FinalMetric = s.FinalMetric
	w.manifest.WallClock = s.WallClock
	w.manifest.TotalBytes = s.TotalBytes
	w.manifest.TotalEnergy = s.TotalEnergy
	if err := writeManifest(w.dir, w.manifest); err != nil {
		return err
	}
	if reg != nil {
		f, err := os.Create(filepath.Join(w.dir, MetricsFile))
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		err = reg.WritePrometheus(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	return nil
}

// writeManifest marshals the manifest to dir/manifest.json.
func writeManifest(dir string, m Manifest) error {
	f, err := os.Create(filepath.Join(dir, ManifestFile))
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(m)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("report: manifest: %w", err)
	}
	return nil
}

// WriteRunRecord writes a complete record to dir in one call — the
// non-streaming twin of Writer, used when the rows already exist (tests,
// post-hoc conversion, doctored fixtures).
func WriteRunRecord(dir string, rec *RunRecord) error {
	if rec == nil {
		return fmt.Errorf("report: nil record")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := writeManifest(dir, rec.Manifest); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, RoundsFile))
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	bw := bufio.NewWriter(f)
	for _, row := range rec.Rounds {
		b, err := json.Marshal(row)
		if err != nil {
			f.Close()
			return fmt.Errorf("report: %w", err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if rec.Metrics != nil {
		names := make([]string, 0, len(rec.Metrics))
		for n := range rec.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			fmt.Fprintf(&b, "%s %g\n", n, rec.Metrics[n])
		}
		if err := os.WriteFile(filepath.Join(dir, MetricsFile), []byte(b.String()), 0o644); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	return nil
}

// LoadRunRecord reads the record in dir. A truncated final rounds.jsonl
// line — what a killed run leaves — is tolerated and reported in warnings;
// a malformed row anywhere else is an error. A missing metrics.prom leaves
// Metrics nil.
func LoadRunRecord(dir string) (*RunRecord, []string, error) {
	mb, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, nil, fmt.Errorf("report: %w", err)
	}
	rec := &RunRecord{}
	if err := json.Unmarshal(mb, &rec.Manifest); err != nil {
		return nil, nil, fmt.Errorf("report: manifest: %w", err)
	}
	var warnings []string
	rb, err := os.ReadFile(filepath.Join(dir, RoundsFile))
	switch {
	case os.IsNotExist(err):
		warnings = append(warnings, fmt.Sprintf("%s missing: record carries no per-round rows", RoundsFile))
	case err != nil:
		return nil, nil, fmt.Errorf("report: %w", err)
	default:
		lines := strings.Split(string(rb), "\n")
		for i, line := range lines {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			var row RoundRow
			if err := json.Unmarshal([]byte(line), &row); err != nil {
				// A torn final line is the expected residue of a killed run:
				// keep the complete prefix and say so. Anything earlier is
				// corruption worth failing on.
				if i == len(lines)-1 || allBlankAfter(lines, i+1) {
					warnings = append(warnings,
						fmt.Sprintf("%s: truncated final row dropped (%d complete rounds kept)", RoundsFile, len(rec.Rounds)))
					break
				}
				return nil, nil, fmt.Errorf("report: %s line %d: %w", RoundsFile, i+1, err)
			}
			rec.Rounds = append(rec.Rounds, row)
		}
	}
	pb, err := os.ReadFile(filepath.Join(dir, MetricsFile))
	switch {
	case os.IsNotExist(err):
		// Metrics are optional; Metrics stays nil.
	case err != nil:
		return nil, nil, fmt.Errorf("report: %w", err)
	default:
		m, err := obs.ParsePrometheus(string(pb))
		if err != nil {
			return nil, nil, fmt.Errorf("report: %s: %w", MetricsFile, err)
		}
		rec.Metrics = m
	}
	return rec, warnings, nil
}

// allBlankAfter reports whether every line past i is whitespace — i.e. the
// row at i was the file's final content.
func allBlankAfter(lines []string, i int) bool {
	for ; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "" {
			return false
		}
	}
	return true
}
