package report

import (
	"math"
	"math/rand"
	"testing"

	"lumos/internal/core"
	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/obs"
	"lumos/internal/sim"
)

// TestE2EStragglerBlameMatchesSlowestDevice runs a real simulation on a
// seeded zipf fleet with aggregator contention and checks the acceptance
// criterion end to end: every committed round's critical path terminates at
// the round's commit (modulo the broadcast tail), and the blamed straggler
// is the device the fleet profiles and cost model independently predict to
// be the slowest chain — computed here from first principles, not from the
// trace.
func TestE2EStragglerBlameMatchesSlowestDevice(t *testing.T) {
	const seed = 11
	g, err := graph.Generate(graph.GenConfig{
		Name: "sim", N: 60, M: 260, Classes: 2, FeatureDim: 8,
		PowerLaw: 2.2, Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, g, core.Config{
		Task: core.Supervised, MCMCIterations: 15, Shards: g.N,
		Sched: core.SchedSync, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cost := fed.DefaultCostModel()
	cost.AggBytesPerSecond = 2e6 // contended shared link: agg-serve spans appear
	tr := obs.NewVirtualTracer()
	sc := sim.Scenario{
		Fleet: sim.FleetZipf, ZipfSkew: 2,
		Rounds: 4, Participation: 1, Churn: 0, Rejoin: -1,
		EvalEvery: -1, Cost: cost, Seed: seed, Tracer: tr,
	}
	s, err := sim.New(sys, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}

	// Predict the slowest chain from the fleet profiles and cost model:
	// with no churn and full participation every device starts at the
	// previous commit, so the aggregator's FIFO finishes last with the
	// device whose compute + transfer is largest.
	profiles := s.Profiles()
	wl := sys.Workloads()
	up := sys.DeviceUploadBytes()
	slowest, slowestT := -1, math.Inf(-1)
	for d := range profiles {
		ct := (cost.BaseCompute.Seconds() + float64(wl[d])*cost.PerLeafPair.Seconds()) * profiles[d].Compute
		xt := cost.MsgLatency.Seconds()*profiles[d].Latency +
			float64(up[d])/(cost.BytesPerSecond*profiles[d].Bandwidth)
		if ct+xt > slowestT {
			slowest, slowestT = d, ct+xt
		}
	}

	an, err := AnalyzeTrace(tr.Events(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Rounds) != len(res.Timeline) {
		t.Fatalf("analyzer saw %d rounds, simulator committed %d", len(an.Rounds), len(res.Timeline))
	}
	for i, cp := range an.Rounds {
		rs := res.Timeline[i]
		if math.Abs(cp.Commit-rs.Commit) > timeEps {
			t.Fatalf("round %d: analyzer commit %v, simulator %v", cp.Round, cp.Commit, rs.Commit)
		}
		if len(cp.Spans) == 0 {
			t.Fatalf("round %d: empty critical path", cp.Round)
		}
		if end := cp.Spans[len(cp.Spans)-1].End; math.Abs(end-cp.Commit) > timeEps {
			t.Fatalf("round %d: path ends at %v, commit at %v", cp.Round, end, cp.Commit)
		}
		if cp.Straggler != slowest {
			t.Fatalf("round %d: blamed d%d, fleet math predicts d%d", cp.Round, cp.Straggler, slowest)
		}
	}
	if len(an.Blame) == 0 || an.Blame[0].Device != slowest {
		t.Fatalf("blame table top entry %+v, want device %d", an.Blame, slowest)
	}
}

// TestE2ERunObserverStreamsTimeline wires Scenario.RoundObserver to a
// record writer and checks the streamed rows equal the simulator's own
// timeline — the -run-out plumbing, minus the CLI.
func TestE2ERunObserverStreamsTimeline(t *testing.T) {
	const seed = 3
	g, err := graph.Generate(graph.GenConfig{
		Name: "sim", N: 40, M: 160, Classes: 2, FeatureDim: 8,
		PowerLaw: 2.2, Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, g, core.Config{
		Task: core.Supervised, MCMCIterations: 15, Shards: g.N,
		Sched: core.SchedSync, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/rec"
	w, err := NewWriter(dir, NewManifest("test", nil, seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Rounds: 3, Participation: 1, Churn: 0, EvalEvery: -1, Seed: seed,
		RoundObserver: func(rs sim.RoundStats) {
			if err := w.Round(RowFromSim(rs)); err != nil {
				t.Error(err)
			}
		},
	}
	s, err := sim.New(sys, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(core.NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(Summary{
		MetricName: res.Metric, FinalMetric: res.FinalMetric,
		WallClock: res.WallClock, TotalBytes: res.TotalBytes,
		TotalEnergy: res.TotalEnergy,
	}, nil); err != nil {
		t.Fatal(err)
	}
	rec, warnings, err := LoadRunRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if len(rec.Rounds) != len(res.Timeline) {
		t.Fatalf("record has %d rounds, timeline %d", len(rec.Rounds), len(res.Timeline))
	}
	for i, row := range rec.Rounds {
		if row != RowFromSim(res.Timeline[i]) {
			t.Fatalf("round %d: recorded %+v, timeline %+v", i, row, RowFromSim(res.Timeline[i]))
		}
	}
	if rec.Manifest.FinalMetric != res.FinalMetric || rec.Manifest.WallClock != res.WallClock {
		t.Fatalf("summary mismatch: %+v vs final %v wall %v",
			rec.Manifest, res.FinalMetric, res.WallClock)
	}
}
