package report

import (
	"testing"
)

// TestDiffSelfIsClean: a record diffed against itself has zero deltas and
// no regressions — the identity the CI gate stands on.
func TestDiffSelfIsClean(t *testing.T) {
	rec := sampleRecord()
	res := Diff(rec, rec, DefaultDiffOptions())
	if res.Regressed() {
		t.Fatalf("self-diff regressed: %v", res.Regressions)
	}
	for _, d := range res.Deltas {
		if d.Abs != 0 || d.Rel != 0 || d.Regressed {
			t.Fatalf("self-diff has nonzero delta: %+v", d)
		}
	}
	for _, r := range res.Rounds {
		if r.CommitDelta != 0 || r.LossDelta != 0 || r.BytesDelta != 0 {
			t.Fatalf("self-diff has nonzero round delta: %+v", r)
		}
	}
	if res.RoundCountA != res.RoundCountB {
		t.Fatalf("round counts differ on self-diff: %d vs %d", res.RoundCountA, res.RoundCountB)
	}
}

// TestDiffCatchesRegression: a doctored candidate — dropped final metric
// plus inflated wall-clock — breaches both thresholds.
func TestDiffCatchesRegression(t *testing.T) {
	base := sampleRecord()
	cand := sampleRecord()
	cand.Manifest.FinalMetric -= 0.05 // > 0.005 tolerated drop
	cand.Manifest.WallClock *= 1.5    // > 10% tolerated growth
	res := Diff(base, cand, DefaultDiffOptions())
	if !res.Regressed() {
		t.Fatal("doctored candidate passed the gate")
	}
	if len(res.Regressions) != 2 {
		t.Fatalf("want 2 regressions (metric, wall-clock), got %v", res.Regressions)
	}
}

// TestDiffWithinTolerancePasses: movement inside the thresholds is noise,
// not a regression.
func TestDiffWithinTolerancePasses(t *testing.T) {
	base := sampleRecord()
	cand := sampleRecord()
	cand.Manifest.FinalMetric -= 0.004
	cand.Manifest.WallClock *= 1.05
	cand.Manifest.TotalBytes += cand.Manifest.TotalBytes / 20
	res := Diff(base, cand, DefaultDiffOptions())
	if res.Regressed() {
		t.Fatalf("in-tolerance candidate regressed: %v", res.Regressions)
	}
}

// TestDiffMetricImprovementPasses: a better metric is never a regression,
// in either direction convention.
func TestDiffMetricImprovementPasses(t *testing.T) {
	base := sampleRecord()
	cand := sampleRecord()
	cand.Manifest.FinalMetric += 0.1
	if res := Diff(base, cand, DefaultDiffOptions()); res.Regressed() {
		t.Fatalf("higher metric regressed: %v", res.Regressions)
	}
	opt := DefaultDiffOptions()
	opt.LowerMetricBetter = true
	cand.Manifest.FinalMetric = base.Manifest.FinalMetric - 0.1
	if res := Diff(base, cand, opt); res.Regressed() {
		t.Fatalf("lower loss-like metric regressed: %v", res.Regressions)
	}
	// And the same move flips to a regression under the opposite
	// convention.
	if res := Diff(base, cand, DefaultDiffOptions()); !res.Regressed() {
		t.Fatal("metric drop passed under higher-is-better")
	}
}

// TestDiffPerRoundDeltas: round rows pair by index over the common prefix
// and differing counts are reported.
func TestDiffPerRoundDeltas(t *testing.T) {
	base := sampleRecord()
	cand := sampleRecord()
	cand.Rounds[1].Commit += 0.5
	cand.Rounds = cand.Rounds[:2]
	res := Diff(base, cand, DefaultDiffOptions())
	if len(res.Rounds) != 2 {
		t.Fatalf("want 2 paired rounds, got %d", len(res.Rounds))
	}
	if res.Rounds[1].CommitDelta != 0.5 {
		t.Fatalf("commit delta %v, want 0.5", res.Rounds[1].CommitDelta)
	}
	if res.RoundCountA != 3 || res.RoundCountB != 2 {
		t.Fatalf("round counts %d/%d, want 3/2", res.RoundCountA, res.RoundCountB)
	}
}
