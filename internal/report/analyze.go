package report

import (
	"fmt"
	"math"
	"sort"

	"lumos/internal/obs"
)

// timeEps absorbs the µs-float round trip trace timestamps go through
// (seconds → TS*1e6 → seconds) when comparing span boundaries.
const timeEps = 1e-6

// PathSpan is one hop of a round's critical path.
type PathSpan struct {
	// Name is the span name ("catch-up", "compute", "upload", "agg-serve",
	// "gossip-delta", "broadcast").
	Name string `json:"name"`
	// Device is the device the span ran on (-1 for the aggregator track,
	// i.e. the broadcast span).
	Device int     `json:"device"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	// To is the receiving device of a gossip-delta hop, -1 otherwise.
	To int `json:"to"`
}

// CriticalPath is the chain of spans that determined one round's commit
// time: the last hop ends at the commit (within timeEps) and each earlier
// hop ends where the next begins, walked backwards on the same device
// track. Spans[0].Device is the device the round's wall-clock is blamed
// on.
type CriticalPath struct {
	Round  int     `json:"round"`
	Start  float64 `json:"start"`
	Commit float64 `json:"commit"`
	// Skipped marks a round that committed without participants (no
	// device work to attribute).
	Skipped bool       `json:"skipped,omitempty"`
	Spans   []PathSpan `json:"spans,omitempty"`
	// Straggler is the blamed device (the chain's origin), -1 when the
	// round was skipped or carried no attributable device spans.
	Straggler int `json:"straggler"`
}

// DeviceUsage is one device's time budget across the whole trace,
// expressed both in seconds and as fractions of the trace's wall-clock
// span. QueueWait isolates agg-serve time — waiting for (plus being
// served by) the contended aggregator link — from useful Busy time
// (compute, transfer, catch-up).
type DeviceUsage struct {
	Device    int     `json:"device"`
	Busy      float64 `json:"busy"`
	QueueWait float64 `json:"queue_wait"`
	Idle      float64 `json:"idle"`
	BusyFrac  float64 `json:"busy_frac"`
	QueueFrac float64 `json:"queue_frac"`
	IdleFrac  float64 `json:"idle_frac"`
}

// BlameEntry is one row of the straggler-blame table: how many rounds a
// device's chain bounded, and how much wall-clock those rounds cost.
type BlameEntry struct {
	Device int `json:"device"`
	// Rounds is the number of committed rounds whose critical path
	// originated on this device.
	Rounds int `json:"rounds"`
	// Time is the summed commit-start wall-clock of those rounds.
	Time float64 `json:"time"`
}

// TraceAnalysis is the result of AnalyzeTrace: per-round critical paths,
// per-device utilization, and the top-k straggler-blame table.
type TraceAnalysis struct {
	Rounds  []CriticalPath `json:"rounds"`
	Devices []DeviceUsage  `json:"devices"`
	// Blame is sorted by Time (then Rounds) descending and truncated to
	// the requested top-k.
	Blame []BlameEntry `json:"blame"`
	// Span is the trace's wall-clock extent in seconds (latest event end
	// minus earliest start).
	Span float64 `json:"span"`
}

// deviceSpanNames are the span names that live on device tracks and can
// appear in a critical path.
var deviceSpanNames = map[string]bool{
	"catch-up": true, "compute": true, "upload": true,
	"agg-serve": true, "gossip-delta": true,
}

// span is an event lifted back into seconds with its round/track decoded.
type span struct {
	name       string
	device     int // -1 for track 0 (aggregator/gossip)
	start, end float64
	round      int
	to         int // gossip-delta receiver, else -1
}

// argInt reads an integer span arg, tolerating the float64 that
// encoding/json produces when a trace is loaded back from disk.
func argInt(args map[string]any, key string) (int, bool) {
	switch v := args[key].(type) {
	case int:
		return v, true
	case int64:
		return int(v), true
	case float64:
		return int(v), true
	default:
		return 0, false
	}
}

// AnalyzeTrace computes critical paths, device utilization, and the top-k
// straggler-blame table from a simulator trace — the events of a live
// obs.Tracer or a file loaded back via obs.ReadEventsFile. It handles
// sync, async, and gossip timelines: all three mark rounds with a "round"
// span on track 0 and put device work on track d+1, which is all the
// analyzer relies on.
func AnalyzeTrace(events []obs.Event, topK int) (*TraceAnalysis, error) {
	var (
		rounds    []span             // "round" spans, track 0
		broadcast = map[int]span{}   // round → broadcast span
		byRound   = map[int][]span{} // round → device-track work spans
		spans     []span             // every decoded X span (for utilization)
	)
	minT, maxT := math.Inf(1), math.Inf(-1)
	maxDevice := -1
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		s := span{
			name:   e.Name,
			device: e.TID - 1,
			start:  e.TS / 1e6,
			end:    (e.TS + e.Dur) / 1e6,
			to:     -1,
		}
		if r, ok := argInt(e.Args, "round"); ok {
			s.round = r
		} else {
			s.round = -1
		}
		if to, ok := argInt(e.Args, "to"); ok {
			s.to = to
		}
		minT = math.Min(minT, s.start)
		maxT = math.Max(maxT, s.end)
		switch {
		case e.TID == 0 && e.Name == "round":
			rounds = append(rounds, s)
		case e.TID == 0 && e.Name == "broadcast":
			broadcast[s.round] = s
		case e.TID > 0 && deviceSpanNames[e.Name]:
			if s.device > maxDevice {
				maxDevice = s.device
			}
			byRound[s.round] = append(byRound[s.round], s)
			spans = append(spans, s)
		}
	}
	if len(rounds) == 0 {
		return nil, fmt.Errorf("report: trace carries no round spans (not a simulator trace?)")
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i].round < rounds[j].round })

	an := &TraceAnalysis{}
	if !math.IsInf(minT, 1) {
		an.Span = maxT - minT
	}
	blameTime := map[int]float64{}
	blameRounds := map[int]int{}
	for _, rd := range rounds {
		cp := CriticalPath{Round: rd.round, Start: rd.start, Commit: rd.end, Straggler: -1}
		work := byRound[rd.round]
		if len(work) == 0 {
			cp.Skipped = true
			an.Rounds = append(an.Rounds, cp)
			continue
		}
		// The commit the device chain must reach: when a broadcast span
		// closes the round (its end coincides with the commit), the chain
		// ends where the broadcast began.
		target := rd.end
		var tail []PathSpan
		if bc, ok := broadcast[rd.round]; ok && math.Abs(bc.end-rd.end) <= timeEps {
			tail = []PathSpan{{Name: bc.name, Device: -1, Start: bc.start, End: bc.end, To: -1}}
			target = bc.start
		}
		// Terminal hop: the device span whose end reaches the target.
		// Async rounds commit at the quorum arrival, so spans ending after
		// the commit (lag-tolerated stragglers) are excluded.
		best := -1
		for i, s := range work {
			if s.end > target+timeEps {
				continue
			}
			if best < 0 || s.end > work[best].end {
				best = i
			}
		}
		if best < 0 {
			cp.Spans = tail
			an.Rounds = append(an.Rounds, cp)
			continue
		}
		// Walk backwards: each hop's predecessor is the same-device span
		// ending where the hop starts (compute→upload→agg-serve boundaries
		// meet exactly; a gossip-delta starts at its sender's compute end).
		var chain []span
		cur := work[best]
		for len(chain) <= len(work) {
			chain = append(chain, cur)
			prev := -1
			for i, s := range work {
				if s.device != cur.device || s.end > cur.start+timeEps {
					continue
				}
				if math.Abs(s.end-cur.start) > timeEps {
					continue
				}
				if prev < 0 || s.end > work[prev].end {
					prev = i
				}
			}
			if prev < 0 {
				break
			}
			next := work[prev]
			if next == cur { // self-loop guard on zero-duration spans
				break
			}
			cur = next
		}
		for i := len(chain) - 1; i >= 0; i-- {
			s := chain[i]
			cp.Spans = append(cp.Spans, PathSpan{
				Name: s.name, Device: s.device, Start: s.start, End: s.end, To: s.to,
			})
		}
		cp.Spans = append(cp.Spans, tail...)
		cp.Straggler = cp.Spans[0].Device
		an.Rounds = append(an.Rounds, cp)
		if cp.Straggler >= 0 {
			blameRounds[cp.Straggler]++
			blameTime[cp.Straggler] += cp.Commit - cp.Start
		}
	}

	// Per-device utilization over the trace's full wall-clock span.
	if maxDevice >= 0 && an.Span > 0 {
		busy := make([]float64, maxDevice+1)
		queue := make([]float64, maxDevice+1)
		for _, s := range spans {
			if s.name == "agg-serve" {
				queue[s.device] += s.end - s.start
			} else {
				busy[s.device] += s.end - s.start
			}
		}
		for d := 0; d <= maxDevice; d++ {
			u := DeviceUsage{
				Device:    d,
				Busy:      busy[d],
				QueueWait: queue[d],
				Idle:      math.Max(0, an.Span-busy[d]-queue[d]),
			}
			u.BusyFrac = u.Busy / an.Span
			u.QueueFrac = u.QueueWait / an.Span
			u.IdleFrac = u.Idle / an.Span
			an.Devices = append(an.Devices, u)
		}
	}

	for d, n := range blameRounds {
		an.Blame = append(an.Blame, BlameEntry{Device: d, Rounds: n, Time: blameTime[d]})
	}
	sort.Slice(an.Blame, func(i, j int) bool {
		a, b := an.Blame[i], an.Blame[j]
		if a.Time != b.Time {
			return a.Time > b.Time
		}
		if a.Rounds != b.Rounds {
			return a.Rounds > b.Rounds
		}
		return a.Device < b.Device
	})
	if topK > 0 && len(an.Blame) > topK {
		an.Blame = an.Blame[:topK]
	}
	return an, nil
}
