package report

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"lumos/internal/obs"
)

// syncTrace hand-builds the timeline of one contended sync round exactly as
// the simulator emits it: three devices compute and upload, serialize
// through the aggregator, and the commit waits on the slowest chain plus
// the model broadcast.
//
//	d2: compute 0-0.5   upload 0.5-0.9  agg-serve 0.9-1.4
//	d0: compute 0-1.0   upload 1.0-1.5  agg-serve 1.5-2.0
//	d1: compute 0-2.0   upload 2.0-2.6  agg-serve 2.6-3.2   <- critical
//	broadcast 3.2-3.8, commit 3.8
func syncTrace() *obs.Tracer {
	tr := obs.NewVirtualTracer()
	tr.SetTrackName(0, "aggregator")
	type leg struct {
		d              int
		c0, c1, u1, s1 float64
	}
	for _, l := range []leg{
		{d: 2, c0: 0, c1: 0.5, u1: 0.9, s1: 1.4},
		{d: 0, c0: 0, c1: 1.0, u1: 1.5, s1: 2.0},
		{d: 1, c0: 0, c1: 2.0, u1: 2.6, s1: 3.2},
	} {
		args := map[string]any{"round": 0}
		tr.Span(l.d+1, "device", "compute", l.c0, l.c1, args)
		tr.Span(l.d+1, "device", "upload", l.c1, l.u1, args)
		tr.Span(l.d+1, "device", "agg-serve", l.u1, l.s1, args)
	}
	tr.Span(0, "agg", "broadcast", 3.2, 3.8, map[string]any{"round": 0, "participants": 3})
	tr.Span(0, "round", "round", 0, 3.8, map[string]any{"round": 0, "participants": 3})
	tr.Instant(0, "round", "commit", 3.8, map[string]any{"round": 0})
	return tr
}

// samePath compares a computed critical path against the expected chain,
// tolerating the sub-µs float residue of the seconds→µs→seconds timestamp
// conversion.
func samePath(t *testing.T, got, want []PathSpan) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("path mismatch:\n got %+v\nwant %+v", got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Name != w.Name || g.Device != w.Device || g.To != w.To ||
			math.Abs(g.Start-w.Start) > timeEps || math.Abs(g.End-w.End) > timeEps {
			t.Fatalf("path hop %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestCriticalPathSyncContended: the chain must be the slowest device's
// compute → upload → agg-serve plus the broadcast, ending at the commit.
func TestCriticalPathSyncContended(t *testing.T) {
	an, err := AnalyzeTrace(syncTrace().Events(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Rounds) != 1 {
		t.Fatalf("want 1 round, got %d", len(an.Rounds))
	}
	cp := an.Rounds[0]
	if cp.Straggler != 1 {
		t.Fatalf("blamed d%d, want d1", cp.Straggler)
	}
	want := []PathSpan{
		{Name: "compute", Device: 1, Start: 0, End: 2.0, To: -1},
		{Name: "upload", Device: 1, Start: 2.0, End: 2.6, To: -1},
		{Name: "agg-serve", Device: 1, Start: 2.6, End: 3.2, To: -1},
		{Name: "broadcast", Device: -1, Start: 3.2, End: 3.8, To: -1},
	}
	samePath(t, cp.Spans, want)
	if math.Abs(cp.Spans[len(cp.Spans)-1].End-cp.Commit) > timeEps {
		t.Fatalf("path ends at %v, commit %v", cp.Spans[len(cp.Spans)-1].End, cp.Commit)
	}
	if len(an.Blame) == 0 || an.Blame[0].Device != 1 || an.Blame[0].Rounds != 1 {
		t.Fatalf("blame table wrong: %+v", an.Blame)
	}
}

// TestCriticalPathSurvivesJSONRoundTrip: the analyzer must produce the
// identical result from events loaded back off disk, where JSON turned
// every int arg into a float64.
func TestCriticalPathSurvivesJSONRoundTrip(t *testing.T) {
	tr := syncTrace()
	want, err := AnalyzeTrace(tr.Events(), 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := obs.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeTrace(loaded, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("analysis changed across JSON round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestCriticalPathAsyncQuorum: async rounds commit at the quorum arrival;
// a lag-tolerated straggler whose upload lands after the commit must not
// be blamed.
func TestCriticalPathAsyncQuorum(t *testing.T) {
	tr := obs.NewVirtualTracer()
	r0 := map[string]any{"round": 0}
	// d0 reaches the aggregator at 1.5 and commits the round; d1 is still
	// uploading until 2.5, tolerated as staleness.
	tr.Span(1, "device", "compute", 0, 1.0, r0)
	tr.Span(1, "device", "upload", 1.0, 1.5, r0)
	tr.Span(2, "device", "compute", 0, 2.0, r0)
	tr.Span(2, "device", "upload", 2.0, 2.5, r0)
	tr.Span(0, "round", "round", 0, 1.5, map[string]any{"round": 0, "participants": 2})
	tr.Instant(0, "round", "commit", 1.5, map[string]any{"round": 0})
	an, err := AnalyzeTrace(tr.Events(), 10)
	if err != nil {
		t.Fatal(err)
	}
	cp := an.Rounds[0]
	if cp.Straggler != 0 {
		t.Fatalf("blamed d%d, want d0 (quorum closer)", cp.Straggler)
	}
	want := []PathSpan{
		{Name: "compute", Device: 0, Start: 0, End: 1.0, To: -1},
		{Name: "upload", Device: 0, Start: 1.0, End: 1.5, To: -1},
	}
	samePath(t, cp.Spans, want)
}

// TestCriticalPathGossipDelta: in a gossip round the commit can wait on a
// neighbor's delta in flight; the chain then runs through the sender's
// track and the sender takes the blame.
func TestCriticalPathGossipDelta(t *testing.T) {
	tr := obs.NewVirtualTracer()
	r0 := map[string]any{"round": 0}
	tr.Span(1, "device", "compute", 0, 1.0, r0)
	tr.Span(1, "device", "gossip-delta", 1.0, 1.8, map[string]any{"round": 0, "to": 1})
	tr.Span(2, "device", "compute", 0, 0.6, r0)
	tr.Span(2, "device", "gossip-delta", 0.6, 0.9, map[string]any{"round": 0, "to": 0})
	tr.Span(0, "round", "round", 0, 1.8, map[string]any{"round": 0, "participants": 2})
	tr.Instant(0, "round", "commit", 1.8, map[string]any{"round": 0})
	an, err := AnalyzeTrace(tr.Events(), 10)
	if err != nil {
		t.Fatal(err)
	}
	cp := an.Rounds[0]
	if cp.Straggler != 0 {
		t.Fatalf("blamed d%d, want d0 (slow sender)", cp.Straggler)
	}
	want := []PathSpan{
		{Name: "compute", Device: 0, Start: 0, End: 1.0, To: -1},
		{Name: "gossip-delta", Device: 0, Start: 1.0, End: 1.8, To: 1},
	}
	samePath(t, cp.Spans, want)
}

// TestAnalyzeSkippedRound: a round with no participants has no one to
// blame.
func TestAnalyzeSkippedRound(t *testing.T) {
	tr := obs.NewVirtualTracer()
	tr.Span(0, "round", "round", 0, 0, map[string]any{"round": 0, "skipped": true})
	an, err := AnalyzeTrace(tr.Events(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Rounds[0].Skipped || an.Rounds[0].Straggler != -1 {
		t.Fatalf("skipped round misattributed: %+v", an.Rounds[0])
	}
	if len(an.Blame) != 0 {
		t.Fatalf("blame table not empty: %+v", an.Blame)
	}
}

// TestAnalyzeUtilization: busy/queue/idle fractions partition each
// device's share of the trace span.
func TestAnalyzeUtilization(t *testing.T) {
	an, err := AnalyzeTrace(syncTrace().Events(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Span-3.8) > timeEps {
		t.Fatalf("span %v, want 3.8", an.Span)
	}
	if len(an.Devices) != 3 {
		t.Fatalf("want 3 devices, got %d", len(an.Devices))
	}
	// d1: busy 2.6 (compute 2.0 + upload 0.6), queue 0.6, idle 0.6.
	d1 := an.Devices[1]
	if math.Abs(d1.Busy-2.6) > timeEps || math.Abs(d1.QueueWait-0.6) > timeEps || math.Abs(d1.Idle-0.6) > timeEps {
		t.Fatalf("d1 usage wrong: %+v", d1)
	}
	for _, d := range an.Devices {
		if math.Abs(d.BusyFrac+d.QueueFrac+d.IdleFrac-1) > 1e-9 {
			t.Fatalf("fractions don't partition: %+v", d)
		}
	}
}

// TestAnalyzeRejectsNonSimTrace: a trace without round spans is not a
// simulator timeline.
func TestAnalyzeRejectsNonSimTrace(t *testing.T) {
	tr := obs.NewVirtualTracer()
	tr.Span(1, "device", "compute", 0, 1, map[string]any{"round": 0})
	if _, err := AnalyzeTrace(tr.Events(), 10); err == nil {
		t.Fatal("round-less trace analyzed")
	}
}

// TestTopKTruncatesBlame: the blame table honors k.
func TestTopKTruncatesBlame(t *testing.T) {
	tr := obs.NewVirtualTracer()
	// Three rounds, each bounded by a different device.
	for r, d := range []int{0, 1, 2} {
		start := float64(r) * 2
		args := map[string]any{"round": r}
		tr.Span(d+1, "device", "compute", start, start+1, args)
		tr.Span(d+1, "device", "upload", start+1, start+2, args)
		tr.Span(0, "round", "round", start, start+2, args)
	}
	an, err := AnalyzeTrace(tr.Events(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Blame) != 2 {
		t.Fatalf("top-2 blame has %d rows", len(an.Blame))
	}
}
