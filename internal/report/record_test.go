package report

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleRecord() *RunRecord {
	return &RunRecord{
		Manifest: Manifest{
			Tool: "lumos-sim", Args: []string{"-rounds", "3", "-seed", "7"},
			Seed: 7, Dataset: "sim", Task: "supervised", Backbone: "gcn",
			Sched: "sync", Fleet: "zipf", Rounds: 3,
			GoVersion: "go1.24", GOMAXPROCS: 8, NumCPU: 8, CreatedUnix: 1754000000,
			MetricName: "accuracy", FinalMetric: 0.91, WallClock: 12.5,
			TotalBytes: 123456, TotalEnergy: 3.25,
		},
		Rounds: []RoundRow{
			{Round: 0, Start: 0, Commit: 4.5, Available: 10, Participants: 8, Bytes: 4000, Energy: 1.1, Loss: 0.9},
			{Round: 1, Start: 4.5, Commit: 8.25, Available: 9, Participants: 7, Late: 1, Bytes: 3500, Energy: 1.0, Loss: 0.7},
			{Round: 2, Start: 8.25, Commit: 12.5, Available: 10, Participants: 8, Bytes: 4100, Energy: 1.15, Loss: 0.55, Metric: 0.91, Evaluated: true},
		},
		Metrics: map[string]float64{
			"lumos_sim_rounds_total": 3,
			"lumos_sim_bytes_total":  11600,
		},
	}
}

// TestRunRecordRoundTrip: write → load → DeepEqual, with no warnings on a
// clean record.
func TestRunRecordRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	want := sampleRecord()
	if err := WriteRunRecord(dir, want); err != nil {
		t.Fatal(err)
	}
	got, warnings, err := LoadRunRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("clean record produced warnings: %v", warnings)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestWriterStreamsRecord: the incremental Writer produces the same record
// as the one-shot WriteRunRecord path (minus metrics, which Finish takes
// from a registry instead).
func TestWriterStreamsRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	want := sampleRecord()
	want.Metrics = nil
	w, err := NewWriter(dir, want.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	// The manifest must already be on disk before any round commits, so a
	// crash mid-run still leaves an identifiable record.
	if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err != nil {
		t.Fatalf("manifest not written up front: %v", err)
	}
	for _, row := range want.Rounds {
		if err := w.Round(row); err != nil {
			t.Fatal(err)
		}
	}
	m := want.Manifest
	if err := w.Finish(Summary{
		MetricName: m.MetricName, FinalMetric: m.FinalMetric,
		WallClock: m.WallClock, TotalBytes: m.TotalBytes, TotalEnergy: m.TotalEnergy,
	}, nil); err != nil {
		t.Fatal(err)
	}
	got, warnings, err := LoadRunRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed record mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestNilWriterNoOps: the disabled path must be free and safe, like the
// rest of the telemetry surface.
func TestNilWriterNoOps(t *testing.T) {
	var w *Writer
	if w.Dir() != "" {
		t.Fatal("nil writer has a dir")
	}
	if err := w.Round(RoundRow{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(Summary{}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLoadTruncatedTail: a torn final rounds.jsonl line — a killed run —
// keeps the complete prefix and reports a warning instead of failing.
func TestLoadTruncatedTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	want := sampleRecord()
	if err := WriteRunRecord(dir, want); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, RoundsFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-25], 0o644); err != nil {
		t.Fatal(err)
	}
	got, warnings, err := LoadRunRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "truncated") {
		t.Fatalf("want one truncation warning, got %v", warnings)
	}
	if len(got.Rounds) != len(want.Rounds)-1 {
		t.Fatalf("want %d complete rounds kept, got %d", len(want.Rounds)-1, len(got.Rounds))
	}
	if !reflect.DeepEqual(got.Rounds, want.Rounds[:len(want.Rounds)-1]) {
		t.Fatalf("kept prefix mismatch: %+v", got.Rounds)
	}
}

// TestLoadCorruptMiddleFails: corruption before the final line is not a
// truncation artifact and must fail loudly.
func TestLoadCorruptMiddleFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	if err := WriteRunRecord(dir, sampleRecord()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, RoundsFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	lines[1] = "{torn json\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRunRecord(dir); err == nil {
		t.Fatal("mid-file corruption loaded without error")
	}
}

// TestLoadMissingRoundsWarns: a record with only a manifest (crash before
// the first commit) still loads, with a warning.
func TestLoadMissingRoundsWarns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	rec := sampleRecord()
	rec.Rounds, rec.Metrics = nil, nil
	if err := WriteRunRecord(dir, rec); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, RoundsFile)); err != nil {
		t.Fatal(err)
	}
	got, warnings, err := LoadRunRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 {
		t.Fatalf("want one warning, got %v", warnings)
	}
	if len(got.Rounds) != 0 || got.Metrics != nil {
		t.Fatalf("unexpected content: %+v", got)
	}
}
