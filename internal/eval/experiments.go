package eval

import (
	"fmt"
	"math/rand"
	"time"

	"lumos/internal/balance"
	"lumos/internal/baselines"
	"lumos/internal/core"
	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/metrics"
)

// ---------------------------------------------------------------------------
// Fig. 3: supervised label-classification accuracy
// ---------------------------------------------------------------------------

// Fig3Result is one dataset×backbone group of Fig. 3's bars.
type Fig3Result struct {
	Dataset     string
	Backbone    string
	Lumos       float64
	Centralized float64
	LPGNN       float64
	NaiveFed    float64
}

// RunFig3 reproduces Fig. 3: Lumos vs Centralized GNN vs LPGNN vs Naive
// FedGNN on label classification, for every configured dataset and backbone.
func RunFig3(opts Options) ([]Fig3Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var out []Fig3Result
	for _, ds := range opts.Datasets {
		g, err := opts.LoadDataset(ds)
		if err != nil {
			return nil, err
		}
		split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(opts.Seed^1)))
		if err != nil {
			return nil, err
		}
		for _, bb := range opts.Backbones {
			r := Fig3Result{Dataset: ds, Backbone: bb.String()}

			sys, err := core.NewSystem(g, g, opts.engineCfg(core.Config{
				Task: core.Supervised, Backbone: bb,
				Epsilon: opts.Epsilon, Epochs: opts.Epochs,
				MCMCIterations: opts.mcmcItersFor(ds),
				SecureCompare:  opts.SecureCompare,
				Seed:           opts.Seed,
			}))
			if err != nil {
				return nil, fmt.Errorf("eval: fig3 lumos %s/%s: %w", ds, bb, err)
			}
			if _, err := sys.TrainSupervised(split); err != nil {
				return nil, err
			}
			if r.Lumos, err = sys.EvaluateAccuracy(split.IsTest); err != nil {
				return nil, err
			}

			mc := baselines.ModelConfig{Backbone: bb, Epochs: opts.Epochs, Seed: opts.Seed}
			cen, err := baselines.NewCentralized(g, mc)
			if err != nil {
				return nil, err
			}
			cen.TrainSupervised(split)
			if r.Centralized, err = cen.EvaluateAccuracy(split.IsTest); err != nil {
				return nil, err
			}

			lp, err := baselines.NewLPGNN(g, baselines.LPGNNConfig{
				ModelConfig: mc, EpsX: opts.Epsilon, EpsY: 1,
			})
			if err != nil {
				return nil, err
			}
			lp.TrainSupervised(split)
			if r.LPGNN, err = lp.EvaluateAccuracy(split.IsTest); err != nil {
				return nil, err
			}

			nf, err := baselines.NewNaiveFed(g, baselines.NaiveFedConfig{
				ModelConfig: mc, EpsFeature: opts.Epsilon, EpsEdge: opts.Epsilon, EpsLabel: opts.Epsilon,
			})
			if err != nil {
				return nil, err
			}
			if _, err := nf.TrainSupervised(split); err != nil {
				return nil, err
			}
			if r.NaiveFed, err = nf.EvaluateAccuracy(split.IsTest); err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig3Table renders Fig. 3 results.
func Fig3Table(rs []Fig3Result) *Table {
	t := &Table{
		Title:   "Fig.3: Label classification accuracy",
		Columns: []string{"dataset", "backbone", "Lumos", "Centralized", "LPGNN", "NaiveFedGNN"},
	}
	for _, r := range rs {
		t.AddRow(r.Dataset, r.Backbone, r.Lumos, r.Centralized, r.LPGNN, r.NaiveFed)
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 4: unsupervised link-prediction ROC-AUC
// ---------------------------------------------------------------------------

// Fig4Result is one dataset×backbone group of Fig. 4's bars.
type Fig4Result struct {
	Dataset     string
	Backbone    string
	Lumos       float64
	Centralized float64
	NaiveFed    float64
}

// RunFig4 reproduces Fig. 4: link-prediction ROC-AUC for Lumos, the
// centralized GNN, and Naive FedGNN (LPGNN is supervised-only, as in the
// paper).
func RunFig4(opts Options) ([]Fig4Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var out []Fig4Result
	for _, ds := range opts.Datasets {
		g, err := opts.LoadDataset(ds)
		if err != nil {
			return nil, err
		}
		es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(opts.Seed^2)))
		if err != nil {
			return nil, err
		}
		for _, bb := range opts.Backbones {
			r := Fig4Result{Dataset: ds, Backbone: bb.String()}

			sys, err := core.NewSystem(es.TrainGraph, g, opts.engineCfg(core.Config{
				Task: core.Unsupervised, Backbone: bb,
				Epsilon: opts.Epsilon, Epochs: opts.Epochs,
				MCMCIterations: opts.mcmcItersFor(ds),
				SecureCompare:  opts.SecureCompare,
				Seed:           opts.Seed,
			}))
			if err != nil {
				return nil, fmt.Errorf("eval: fig4 lumos %s/%s: %w", ds, bb, err)
			}
			if _, err := sys.TrainUnsupervised(es); err != nil {
				return nil, err
			}
			if r.Lumos, err = sys.EvaluateAUC(es.Test, es.TestNeg); err != nil {
				return nil, err
			}

			mc := baselines.ModelConfig{Backbone: bb, Epochs: opts.Epochs, Seed: opts.Seed}
			cen, err := baselines.NewCentralizedLink(g, es, mc)
			if err != nil {
				return nil, err
			}
			cen.Train()
			if r.Centralized, err = cen.EvaluateAUC(); err != nil {
				return nil, err
			}

			nf, err := baselines.NewNaiveFed(es.TrainGraph, baselines.NaiveFedConfig{
				ModelConfig: mc, EpsFeature: opts.Epsilon, EpsEdge: opts.Epsilon, EpsLabel: opts.Epsilon,
			})
			if err != nil {
				return nil, err
			}
			nf.TrainLink(es.Val, es.ValNeg)
			if r.NaiveFed, err = nf.EvaluateAUC(es.Test, es.TestNeg); err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig4Table renders Fig. 4 results.
func Fig4Table(rs []Fig4Result) *Table {
	t := &Table{
		Title:   "Fig.4: Link prediction ROC-AUC",
		Columns: []string{"dataset", "backbone", "Lumos", "Centralized", "NaiveFedGNN"},
	}
	for _, r := range rs {
		t.AddRow(r.Dataset, r.Backbone, r.Lumos, r.Centralized, r.NaiveFed)
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 5: sensitivity to the privacy parameter ε
// ---------------------------------------------------------------------------

// Fig5Epsilons are the budgets swept in the paper.
var Fig5Epsilons = []float64{0.5, 1, 2, 4}

// Fig5Result is one curve point of Fig. 5. The default Lumos pipeline
// bounds the LDP noise with local row normalization, which largely
// decouples accuracy from ε on the synthetic substrate (the un-noised
// own-feature path carries most of the signal); AccuracyRaw/AUCRaw use the
// paper-literal pipeline (unbiased Eq. 27 recovery, no normalization),
// which reproduces the paper's strongly monotone ε curves.
type Fig5Result struct {
	Dataset  string
	Epsilon  float64
	Accuracy float64 // supervised (Fig. 5a), default pipeline
	AUC      float64 // unsupervised (Fig. 5b), default pipeline
	// Paper-literal pipeline (DisableRowNorm).
	AccuracyRaw float64
	AUCRaw      float64
}

// RunFig5 reproduces Fig. 5: Lumos accuracy and AUC as ε varies, using the
// first configured backbone (the paper sweeps with a single backbone).
func RunFig5(opts Options) ([]Fig5Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bb := opts.Backbones[0]
	var out []Fig5Result
	for _, ds := range opts.Datasets {
		g, err := opts.LoadDataset(ds)
		if err != nil {
			return nil, err
		}
		split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(opts.Seed^1)))
		if err != nil {
			return nil, err
		}
		es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(opts.Seed^2)))
		if err != nil {
			return nil, err
		}
		for _, eps := range Fig5Epsilons {
			r := Fig5Result{Dataset: ds, Epsilon: eps}
			for _, raw := range []bool{false, true} {
				sup, err := core.NewSystem(g, g, opts.engineCfg(core.Config{
					Task: core.Supervised, Backbone: bb, Epsilon: eps,
					Epochs: opts.Epochs, MCMCIterations: opts.mcmcItersFor(ds),
					SecureCompare: opts.SecureCompare, DisableRowNorm: raw,
					Seed: opts.Seed,
				}))
				if err != nil {
					return nil, err
				}
				if _, err := sup.TrainSupervised(split); err != nil {
					return nil, err
				}
				acc, err := sup.EvaluateAccuracy(split.IsTest)
				if err != nil {
					return nil, err
				}

				uns, err := core.NewSystem(es.TrainGraph, g, opts.engineCfg(core.Config{
					Task: core.Unsupervised, Backbone: bb, Epsilon: eps,
					Epochs: opts.Epochs, MCMCIterations: opts.mcmcItersFor(ds),
					SecureCompare: opts.SecureCompare, DisableRowNorm: raw,
					Seed: opts.Seed,
				}))
				if err != nil {
					return nil, err
				}
				if _, err := uns.TrainUnsupervised(es); err != nil {
					return nil, err
				}
				auc, err := uns.EvaluateAUC(es.Test, es.TestNeg)
				if err != nil {
					return nil, err
				}
				if raw {
					r.AccuracyRaw, r.AUCRaw = acc, auc
				} else {
					r.Accuracy, r.AUC = acc, auc
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig5Table renders Fig. 5 results.
func Fig5Table(rs []Fig5Result) *Table {
	t := &Table{
		Title:   "Fig.5: Effect of privacy parameter epsilon (Lumos; raw = paper-literal Eq.27 recovery)",
		Columns: []string{"dataset", "epsilon", "accuracy", "auc", "accuracy(raw)", "auc(raw)"},
	}
	for _, r := range rs {
		t.AddRow(r.Dataset, fmt.Sprintf("%.1f", r.Epsilon), r.Accuracy, r.AUC, r.AccuracyRaw, r.AUCRaw)
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 6: ablation study (virtual nodes, tree trimming)
// ---------------------------------------------------------------------------

// Fig6Result is one dataset×backbone group of Fig. 6.
type Fig6Result struct {
	Dataset  string
	Backbone string
	// Supervised accuracies.
	Acc, AccNoVN, AccNoTT float64
	// Unsupervised AUCs.
	AUC, AUCNoVN, AUCNoTT float64
}

// RunFig6 reproduces Fig. 6: Lumos vs Lumos w.o. virtual nodes vs Lumos
// w.o. tree trimming, in both learning modes.
func RunFig6(opts Options) ([]Fig6Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	type variant struct {
		noVN, noTT bool
	}
	variants := []variant{{false, false}, {true, false}, {false, true}}
	var out []Fig6Result
	for _, ds := range opts.Datasets {
		g, err := opts.LoadDataset(ds)
		if err != nil {
			return nil, err
		}
		split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(opts.Seed^1)))
		if err != nil {
			return nil, err
		}
		es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(opts.Seed^2)))
		if err != nil {
			return nil, err
		}
		for _, bb := range opts.Backbones {
			r := Fig6Result{Dataset: ds, Backbone: bb.String()}
			for vi, v := range variants {
				cfgBase := opts.engineCfg(core.Config{
					Backbone: bb, Epsilon: opts.Epsilon, Epochs: opts.Epochs,
					MCMCIterations: opts.mcmcItersFor(ds), SecureCompare: opts.SecureCompare,
					DisableVirtualNodes: v.noVN, DisableTreeTrimming: v.noTT,
					Seed: opts.Seed,
				})
				supCfg := cfgBase
				supCfg.Task = core.Supervised
				sup, err := core.NewSystem(g, g, supCfg)
				if err != nil {
					return nil, err
				}
				if _, err := sup.TrainSupervised(split); err != nil {
					return nil, err
				}
				acc, err := sup.EvaluateAccuracy(split.IsTest)
				if err != nil {
					return nil, err
				}

				unsCfg := cfgBase
				unsCfg.Task = core.Unsupervised
				uns, err := core.NewSystem(es.TrainGraph, g, unsCfg)
				if err != nil {
					return nil, err
				}
				if _, err := uns.TrainUnsupervised(es); err != nil {
					return nil, err
				}
				auc, err := uns.EvaluateAUC(es.Test, es.TestNeg)
				if err != nil {
					return nil, err
				}
				switch vi {
				case 0:
					r.Acc, r.AUC = acc, auc
				case 1:
					r.AccNoVN, r.AUCNoVN = acc, auc
				case 2:
					r.AccNoTT, r.AUCNoTT = acc, auc
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig6Table renders Fig. 6 results.
func Fig6Table(rs []Fig6Result) *Table {
	t := &Table{
		Title:   "Fig.6: Ablation (VN = virtual nodes, TT = tree trimming)",
		Columns: []string{"dataset", "backbone", "acc", "acc w.o.VN", "acc w.o.TT", "auc", "auc w.o.VN", "auc w.o.TT"},
	}
	for _, r := range rs {
		t.AddRow(r.Dataset, r.Backbone, r.Acc, r.AccNoVN, r.AccNoTT, r.AUC, r.AUCNoVN, r.AUCNoTT)
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 7: workload CDF with and without tree trimming
// ---------------------------------------------------------------------------

// Fig7Result summarizes the workload distribution for one dataset.
type Fig7Result struct {
	Dataset                string
	TrimmedP50, TrimmedP90 int
	TrimmedP99, TrimmedMax int
	RawP50, RawP90         int
	RawP99, RawMax         int
	// CDFs carry the full curves for plotting.
	Trimmed, Raw *metrics.CDF
}

// RunFig7 reproduces Fig. 7: the per-device workload distribution with and
// without tree trimming (without trimming the workload is the degree).
func RunFig7(opts Options) ([]Fig7Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var out []Fig7Result
	for _, ds := range opts.Datasets {
		g, err := opts.LoadDataset(ds)
		if err != nil {
			return nil, err
		}
		devices := fed.NewDevices(g, opts.Seed)
		server := fed.NewServer(opts.Seed)
		res, err := balance.Balance(g, devices, server, balance.Config{
			Iterations: opts.mcmcItersFor(ds),
			Secure:     opts.SecureCompare,
			Seed:       opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		raw := balance.WithoutTrimming(g)
		tc := metrics.NewCDF(res.Workloads)
		rc := metrics.NewCDF(raw.Workloads)
		out = append(out, Fig7Result{
			Dataset:    ds,
			TrimmedP50: tc.Quantile(0.5), TrimmedP90: tc.Quantile(0.9),
			TrimmedP99: tc.Quantile(0.99), TrimmedMax: tc.Max(),
			RawP50: rc.Quantile(0.5), RawP90: rc.Quantile(0.9),
			RawP99: rc.Quantile(0.99), RawMax: rc.Max(),
			Trimmed: tc, Raw: rc,
		})
	}
	return out, nil
}

// Fig7Table renders Fig. 7 quantiles.
func Fig7Table(rs []Fig7Result) *Table {
	t := &Table{
		Title:   "Fig.7: Workload CDF with (Lumos) and without (w.o.TT) tree trimming",
		Columns: []string{"dataset", "variant", "p50", "p90", "p99", "max"},
	}
	for _, r := range rs {
		t.AddRow(r.Dataset, "Lumos", r.TrimmedP50, r.TrimmedP90, r.TrimmedP99, r.TrimmedMax)
		t.AddRow(r.Dataset, "w.o.TT", r.RawP50, r.RawP90, r.RawP99, r.RawMax)
	}
	return t
}

// Fig7CDFTable renders the full CDF curves (one row per distinct workload
// value) for external plotting.
func Fig7CDFTable(rs []Fig7Result) *Table {
	t := &Table{
		Title:   "Fig.7: workload CDF points",
		Columns: []string{"dataset", "variant", "workload", "cum_prob"},
	}
	for _, r := range rs {
		xs, ps := r.Trimmed.Points()
		for i := range xs {
			t.AddRow(r.Dataset, "Lumos", xs[i], ps[i])
		}
		xs, ps = r.Raw.Points()
		for i := range xs {
			t.AddRow(r.Dataset, "w.o.TT", xs[i], ps[i])
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 8: system cost with and without tree trimming
// ---------------------------------------------------------------------------

// Fig8Result is one dataset×task row of Fig. 8.
type Fig8Result struct {
	Dataset string
	Task    string
	// Fig. 8a: average communication rounds per device per epoch.
	CommTrimmed, CommRaw float64
	CommSavings          float64 // fraction
	// Fig. 8b: estimated (straggler-dominated) epoch time.
	TimeTrimmed, TimeRaw time.Duration
	TimeSavings          float64 // fraction
	// Measured wall-clock per epoch of the in-process simulation.
	MeasuredTrimmed, MeasuredRaw time.Duration
}

// RunFig8 reproduces Fig. 8: communication rounds per device per epoch
// (8a) and per-epoch training time (8b), with and without tree trimming,
// for both learning modes, using the first configured backbone.
func RunFig8(opts Options) ([]Fig8Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bb := opts.Backbones[0]
	var out []Fig8Result
	for _, ds := range opts.Datasets {
		g, err := opts.LoadDataset(ds)
		if err != nil {
			return nil, err
		}
		split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(opts.Seed^1)))
		if err != nil {
			return nil, err
		}
		es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(opts.Seed^2)))
		if err != nil {
			return nil, err
		}
		for _, task := range []core.Task{core.Supervised, core.Unsupervised} {
			r := Fig8Result{Dataset: ds, Task: task.String()}
			for _, noTT := range []bool{false, true} {
				cfg := opts.engineCfg(core.Config{
					Task: task, Backbone: bb, Epsilon: opts.Epsilon,
					Epochs: opts.Epochs, MCMCIterations: opts.mcmcItersFor(ds),
					SecureCompare: opts.SecureCompare, DisableTreeTrimming: noTT,
					Seed: opts.Seed,
				})
				var stats *core.TrainStats
				if task == core.Supervised {
					sys, err := core.NewSystem(g, g, cfg)
					if err != nil {
						return nil, err
					}
					if stats, err = sys.TrainSupervised(split); err != nil {
						return nil, err
					}
				} else {
					sys, err := core.NewSystem(es.TrainGraph, g, cfg)
					if err != nil {
						return nil, err
					}
					if stats, err = sys.TrainUnsupervised(es); err != nil {
						return nil, err
					}
				}
				perEpoch := stats.MeasuredTime / time.Duration(opts.Epochs)
				if noTT {
					r.CommRaw = stats.AvgCommRoundsPerDevice
					r.TimeRaw = stats.SimEpochTime
					r.MeasuredRaw = perEpoch
				} else {
					r.CommTrimmed = stats.AvgCommRoundsPerDevice
					r.TimeTrimmed = stats.SimEpochTime
					r.MeasuredTrimmed = perEpoch
				}
			}
			r.CommSavings = 1 - r.CommTrimmed/r.CommRaw
			r.TimeSavings = 1 - float64(r.TimeTrimmed)/float64(r.TimeRaw)
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig8Table renders Fig. 8 results.
func Fig8Table(rs []Fig8Result) *Table {
	t := &Table{
		Title:   "Fig.8: System cost with/without tree trimming (TT)",
		Columns: []string{"dataset", "task", "comm/dev TT", "comm/dev w.o.TT", "comm saved", "epoch TT", "epoch w.o.TT", "time saved"},
	}
	for _, r := range rs {
		t.AddRow(r.Dataset, r.Task,
			fmt.Sprintf("%.1f", r.CommTrimmed), fmt.Sprintf("%.1f", r.CommRaw),
			fmt.Sprintf("%.1f%%", 100*r.CommSavings),
			r.TimeTrimmed.Round(time.Millisecond).String(), r.TimeRaw.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", 100*r.TimeSavings))
	}
	return t
}

// ---------------------------------------------------------------------------
// Headline claims (§I)
// ---------------------------------------------------------------------------

// HeadlineResult aggregates the three §I claims: Lumos vs the federated
// baseline (Naive FedGNN) accuracy increase, and tree trimming's reduction
// of communication rounds and training time.
type HeadlineResult struct {
	AccuracyIncrease float64 // paper: +39.48% (relative, vs federated baseline)
	CommReduction    float64 // paper: −35.16%
	TimeReduction    float64 // paper: −17.74%
}

// RunHeadline computes the §I claims from Fig. 3 and Fig. 8 runs.
func RunHeadline(opts Options) (*HeadlineResult, []Fig3Result, []Fig8Result, error) {
	f3, err := RunFig3(opts)
	if err != nil {
		return nil, nil, nil, err
	}
	f8, err := RunFig8(opts)
	if err != nil {
		return nil, nil, nil, err
	}
	h := &HeadlineResult{}
	var accs, comms, times []float64
	for _, r := range f3 {
		accs = append(accs, metrics.RelChange(r.Lumos, r.NaiveFed))
	}
	for _, r := range f8 {
		comms = append(comms, 1-r.CommTrimmed/r.CommRaw)
		times = append(times, r.TimeSavings)
	}
	h.AccuracyIncrease = metrics.Mean(accs)
	h.CommReduction = metrics.Mean(comms)
	h.TimeReduction = metrics.Mean(times)
	return h, f3, f8, nil
}

// HeadlineTable renders the headline claims against the paper's numbers.
func HeadlineTable(h *HeadlineResult) *Table {
	t := &Table{
		Title:   "Headline claims (paper §I)",
		Columns: []string{"claim", "paper", "measured"},
	}
	t.AddRow("accuracy increase vs federated baseline", "+39.48%", fmt.Sprintf("%+.2f%%", 100*h.AccuracyIncrease))
	t.AddRow("inter-device communication reduction", "-35.16%", fmt.Sprintf("-%.2f%%", 100*h.CommReduction))
	t.AddRow("training time reduction", "-17.74%", fmt.Sprintf("-%.2f%%", 100*h.TimeReduction))
	return t
}
