package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, a header row, and data
// rows, printed with aligned columns in the style of the paper's figures.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v (floats get %.4g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(t.Columns)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table,
// title as a bold paragraph above it (for pasting into PR descriptions
// and run reports).
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**" + t.Title + "**\n\n")
	}
	escape := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + escape(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString(" --- |")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		b.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			b.WriteString(" " + escape(cell) + " |")
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (for plotting the figures externally).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ",") + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
