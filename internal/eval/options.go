// Package eval defines one runner per table/figure of the paper's
// evaluation (§VIII): Fig. 3 (supervised accuracy), Fig. 4 (link-prediction
// ROC-AUC), Fig. 5 (ε sensitivity), Fig. 6 (ablations), Fig. 7 (workload
// CDF), Fig. 8 (communication rounds and training time), plus the headline
// claims of §I. Each runner returns typed results consumed by the CLI, the
// benchmark harness, and the test suite, and can render an aligned text
// table mirroring the paper's figures.
package eval

import (
	"fmt"

	"lumos/internal/core"
	"lumos/internal/graph"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

// Options scales the experiment suite. The defaults are laptop-sized; the
// paper-scale settings are reachable with Scale=1 and PaperEpochs.
type Options struct {
	// FacebookScale and LastFMScale scale the two dataset presets
	// (defaults 0.02 and 0.1 — a few hundred devices each).
	FacebookScale float64
	LastFMScale   float64
	// Epochs for every trainer (default 60; paper: 300).
	Epochs int
	// Epsilon is the Lumos/LPGNN feature budget (default 2, as in §VIII-B).
	Epsilon float64
	// MCMCIterations for tree trimming (default 150; paper: 1000 Facebook,
	// 300 LastFM).
	MCMCIterations int
	// SecureCompare toggles real OT-based comparisons (default off in the
	// harness for speed; identical outputs either way).
	SecureCompare bool
	// Backbones to evaluate (default GCN and GAT).
	Backbones []nn.Backbone
	// Datasets to evaluate (default both presets).
	Datasets []string
	// Task selects the objective the scenario-simulation runner drives
	// (default core.Supervised — node classification with an accuracy
	// timeline; core.Unsupervised simulates link prediction with an AUC
	// timeline). The per-figure runners ignore it: each figure fixes its
	// own task.
	Task core.Task
	// Workers sizes every trainer's worker pool (0 = one per CPU). Results
	// are bit-identical for any value; this only changes wall-clock time.
	Workers int
	// Sched selects the round scheduling mode for the Lumos systems
	// (default core.SchedSync, the paper's lockstep protocol).
	Sched core.Sched
	// Staleness is the async gradient-staleness bound (SchedAsync only).
	Staleness int
	// Topology, when non-empty, adds a decentralized (gossip) run per
	// dataset to the scenario-simulation timeline: a topo.ParseSpec string
	// ("ring:4", "ba:2", "complete", "file:<path>") built over each
	// dataset's device count with the run seed.
	Topology string
	// NoTapeReuse disables the per-shard autodiff tape recycling in every
	// trainer (fresh tape per epoch — the debugging escape hatch; results
	// are identical either way).
	NoTapeReuse bool
	// Kernels selects the tensor kernel path for every trainer ("" or
	// "blocked" = the register-blocked default, "reference" = the scalar
	// loops; bit-identical results, different wall-clock).
	Kernels string
	Seed    int64
}

// Dataset names used throughout the harness.
const (
	DatasetFacebook = "Facebook"
	DatasetLastFM   = "LastFM"
)

// Validate fills defaults.
func (o *Options) Validate() error {
	if o.FacebookScale == 0 {
		o.FacebookScale = 0.02
	}
	if o.LastFMScale == 0 {
		o.LastFMScale = 0.1
	}
	if o.FacebookScale < 0 || o.FacebookScale > 1 || o.LastFMScale < 0 || o.LastFMScale > 1 {
		return fmt.Errorf("eval: dataset scales must lie in (0,1]")
	}
	if o.Epochs == 0 {
		o.Epochs = 60
	}
	if o.Epochs < 0 {
		return fmt.Errorf("eval: negative epochs %d", o.Epochs)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 2
	}
	if o.MCMCIterations == 0 {
		o.MCMCIterations = 150
	}
	if len(o.Backbones) == 0 {
		o.Backbones = []nn.Backbone{nn.GCN, nn.GAT}
	}
	if len(o.Datasets) == 0 {
		o.Datasets = []string{DatasetFacebook, DatasetLastFM}
	}
	for _, d := range o.Datasets {
		if d != DatasetFacebook && d != DatasetLastFM {
			return fmt.Errorf("eval: unknown dataset %q", d)
		}
	}
	if _, err := tensor.ParseKernelPath(o.Kernels); err != nil {
		return err
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return nil
}

// LoadDataset materializes one of the presets at the configured scale.
func (o *Options) LoadDataset(name string) (*graph.Graph, error) {
	switch name {
	case DatasetFacebook:
		return graph.FacebookLike(o.FacebookScale, o.Seed)
	case DatasetLastFM:
		return graph.LastFMLike(o.LastFMScale, o.Seed)
	default:
		return nil, fmt.Errorf("eval: unknown dataset %q", name)
	}
}

// mcmcItersFor mirrors the paper's per-dataset iteration counts when the
// caller asks for paper settings; otherwise the configured count is used.
func (o *Options) mcmcItersFor(dataset string) int {
	return o.MCMCIterations
}

// engineCfg copies the training-engine knobs (worker pool size, scheduling
// mode, staleness bound) into a system config. Every runner routes its
// core.Config through this so the whole suite honors the engine options.
func (o *Options) engineCfg(cfg core.Config) core.Config {
	cfg.Workers = o.Workers
	cfg.Sched = o.Sched
	cfg.Staleness = o.Staleness
	cfg.NoTapeReuse = o.NoTapeReuse
	cfg.Kernels = o.Kernels
	return cfg
}
