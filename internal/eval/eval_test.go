package eval

import (
	"bytes"
	"strings"
	"testing"

	"lumos/internal/core"
	"lumos/internal/nn"
	"lumos/internal/sim"
)

// tinyOpts keeps every experiment runner fast enough for unit tests while
// still exercising the full pipeline.
func tinyOpts() Options {
	return Options{
		FacebookScale:  0.008,
		LastFMScale:    0.02,
		Epochs:         4,
		MCMCIterations: 15,
		Backbones:      []nn.Backbone{nn.GCN},
		Datasets:       []string{DatasetFacebook},
		Seed:           1,
	}
}

func TestOptionsValidateDefaults(t *testing.T) {
	o := Options{}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Epochs != 60 || o.Epsilon != 2 || len(o.Backbones) != 2 || len(o.Datasets) != 2 {
		t.Fatalf("defaults: %+v", o)
	}
	bad := Options{Datasets: []string{"nope"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown dataset must error")
	}
	bad2 := Options{FacebookScale: 2}
	if err := bad2.Validate(); err == nil {
		t.Fatal("scale > 1 must error")
	}
}

func TestLoadDataset(t *testing.T) {
	o := tinyOpts()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := o.LoadDataset(DatasetLastFM)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumClasses != 18 {
		t.Fatal("lastfm preset wrong")
	}
	if _, err := o.LoadDataset("bogus"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestRunFig3Shapes(t *testing.T) {
	rs, err := RunFig3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	r := rs[0]
	for name, v := range map[string]float64{
		"lumos": r.Lumos, "centralized": r.Centralized,
		"lpgnn": r.LPGNN, "naive": r.NaiveFed,
	} {
		if v <= 0 || v > 1 {
			t.Fatalf("%s accuracy %v outside (0,1]", name, v)
		}
	}
	tab := Fig3Table(rs)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Lumos") {
		t.Fatal("table missing Lumos column")
	}
}

func TestRunFig4Shapes(t *testing.T) {
	rs, err := RunFig4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Lumos <= 0 || rs[0].Centralized <= 0 || rs[0].NaiveFed <= 0 {
		t.Fatalf("AUCs missing: %+v", rs[0])
	}
	if Fig4Table(rs) == nil {
		t.Fatal("no table")
	}
}

func TestRunFig5SweepsEpsilon(t *testing.T) {
	rs, err := RunFig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(Fig5Epsilons) {
		t.Fatalf("results = %d, want %d", len(rs), len(Fig5Epsilons))
	}
	for i, r := range rs {
		if r.Epsilon != Fig5Epsilons[i] {
			t.Fatalf("epsilon order wrong: %v", r.Epsilon)
		}
		if r.Accuracy <= 0 || r.AUC <= 0 {
			t.Fatalf("missing metrics at eps %v", r.Epsilon)
		}
	}
	if Fig5Table(rs) == nil {
		t.Fatal("no table")
	}
}

func TestRunFig6Ablations(t *testing.T) {
	rs, err := RunFig6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	for name, v := range map[string]float64{
		"acc": r.Acc, "accNoVN": r.AccNoVN, "accNoTT": r.AccNoTT,
		"auc": r.AUC, "aucNoVN": r.AUCNoVN, "aucNoTT": r.AUCNoTT,
	} {
		if v <= 0 || v > 1 {
			t.Fatalf("%s = %v outside (0,1]", name, v)
		}
	}
	if Fig6Table(rs) == nil {
		t.Fatal("no table")
	}
}

func TestRunFig7TrimsTail(t *testing.T) {
	rs, err := RunFig7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if r.TrimmedMax >= r.RawMax {
		t.Fatalf("trimming did not reduce the max: %d vs %d", r.TrimmedMax, r.RawMax)
	}
	if r.TrimmedP99 > r.RawP99 {
		t.Fatalf("trimmed p99 %d above raw %d", r.TrimmedP99, r.RawP99)
	}
	if Fig7Table(rs) == nil || Fig7CDFTable(rs) == nil {
		t.Fatal("missing tables")
	}
}

func TestRunFig8SavesCost(t *testing.T) {
	rs, err := RunFig8(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 { // supervised + unsupervised on one dataset
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.CommTrimmed >= r.CommRaw {
			t.Fatalf("%s/%s: trimming did not save communication (%v vs %v)",
				r.Dataset, r.Task, r.CommTrimmed, r.CommRaw)
		}
		if r.TimeTrimmed >= r.TimeRaw {
			t.Fatalf("%s/%s: trimming did not save epoch time", r.Dataset, r.Task)
		}
		if r.CommSavings <= 0 || r.TimeSavings <= 0 {
			t.Fatal("savings not positive")
		}
	}
	if Fig8Table(rs) == nil {
		t.Fatal("no table")
	}
}

func TestRunHeadline(t *testing.T) {
	h, f3, f8, err := RunHeadline(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f3) == 0 || len(f8) == 0 {
		t.Fatal("headline missing sub-results")
	}
	if h.CommReduction <= 0 || h.TimeReduction <= 0 {
		t.Fatalf("headline reductions: %+v", h)
	}
	if HeadlineTable(h) == nil {
		t.Fatal("no table")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "longcol"}}
	tab.AddRow("x", 1.5)
	tab.AddRow("yyyy", "z")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "longcol") || !strings.Contains(out, "1.5000") {
		t.Fatalf("render output:\n%s", out)
	}
	var csv bytes.Buffer
	if err := tab.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,longcol" {
		t.Fatalf("csv output:\n%s", csv.String())
	}
}

// TestRunSimTimelineUnsupervised exercises the Options.Task threading: the
// timeline runner must drive the link-prediction objective and label the
// metric AUC (it used to hardcode the supervised task).
func TestRunSimTimelineUnsupervised(t *testing.T) {
	sc := sim.Scenario{
		Fleet: sim.FleetZipf, ZipfSkew: 1.4,
		Churn: 0.2, Participation: 0.8,
		Rounds: 4, EvalEvery: 2, Seed: 4,
	}
	opts := tinyOpts()
	opts.Task = core.Unsupervised
	rs, err := RunSimTimeline(opts, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want sync+async for one dataset", len(rs))
	}
	for _, r := range rs {
		if r.Task != "unsupervised" || r.Metric != "AUC" {
			t.Fatalf("timeline labeled task=%q metric=%q", r.Task, r.Metric)
		}
		if r.FinalMetric <= 0 || r.WallClock <= 0 || r.TotalBytes <= 0 {
			t.Fatalf("degenerate unsupervised timeline: %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := SimTimelineTable(rs).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AUC") {
		t.Fatal("summary table missing the AUC metric label")
	}
}

func TestRunSimTimeline(t *testing.T) {
	sc := sim.Scenario{
		Fleet: sim.FleetZipf, ZipfSkew: 1.4,
		Churn: 0.2, Participation: 0.8,
		Rounds: 6, EvalEvery: 3, Seed: 4,
	}
	rs, err := RunSimTimeline(tinyOpts(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want sync+async for one dataset", len(rs))
	}
	var syncRes, asyncRes SimTimelineResult
	for _, r := range rs {
		if r.Rounds != 6 {
			t.Fatalf("%s/%s simulated %d rounds, want 6", r.Dataset, r.Sched, r.Rounds)
		}
		if r.WallClock <= 0 || r.TotalBytes <= 0 {
			t.Fatalf("degenerate timeline: %+v", r)
		}
		if r.TotalEnergy <= 0 {
			t.Fatalf("timeline accounted no fleet energy: %+v", r)
		}
		switch r.Sched {
		case "sync":
			syncRes = r
		case "async":
			asyncRes = r
		}
	}
	if asyncRes.WallClock >= syncRes.WallClock {
		t.Fatalf("async wall-clock %.3fs not below sync %.3fs", asyncRes.WallClock, syncRes.WallClock)
	}
	var buf bytes.Buffer
	if err := SimTimelineTable(rs).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "async") {
		t.Fatal("table missing async row")
	}
	if err := SimTimelineCSVTable(rs).RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestTableRenderMarkdown: the markdown renderer emits a valid GFM table
// with escaped pipes and the title as a bold paragraph.
func TestTableRenderMarkdown(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "b"}}
	tab.AddRow("x|y", 1.5)
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "**t**\n\n| a | b |\n| --- | --- |\n| x\\|y | 1.5000 |\n"
	if got != want {
		t.Fatalf("markdown mismatch:\n got %q\nwant %q", got, want)
	}
}
