package eval

import (
	"fmt"
	"math/rand"

	"lumos/internal/core"
	"lumos/internal/sim"
	"lumos/internal/topo"
)

// This runner replaces the single-number fed.CostModel estimate that Fig. 8
// reports (TrainStats.SimEpochTime) with a full simulated timeline from
// internal/sim: the analytic model supplies the per-event costs, and the
// discrete-event simulator plays them out over a heterogeneous, churning
// fleet under both scheduling disciplines. Options.Task selects the
// objective — the simulator drives a core.Session, so node classification
// and link prediction run through the same machinery.

// SimTimelineResult summarizes one dataset×discipline simulation.
type SimTimelineResult struct {
	Dataset string
	Task    string
	Sched   string
	// Metric names the evaluation metric the timeline carries ("accuracy"
	// for node classification, "AUC" for link prediction).
	Metric string
	Rounds int
	// WallClock is the simulated seconds to commit every round.
	WallClock float64
	// TotalBytes is the scenario's total wire traffic.
	TotalBytes int64
	// MeanParticipants is the average per-round participant count.
	MeanParticipants float64
	// TotalEnergy is the fleet's energy spend across the run, in joules
	// (compute at profile-scaled power plus radio bytes; see
	// fed.CostModel.Energy).
	TotalEnergy float64
	// FinalMetric is the objective's test metric after the terminal
	// barrier.
	FinalMetric float64
	// Timeline carries the per-round records for external plotting.
	Timeline []sim.RoundStats
}

// RunSimTimeline simulates the scenario once per scheduling discipline per
// configured dataset (Options.Task objective, first configured backbone),
// with one device per shard so participation is exact. The async runs use
// Options.Staleness when set (default 2); when Options.Topology is set, a
// decentralized gossip run over that contact graph joins the sync and async
// rows.
func RunSimTimeline(opts Options, sc sim.Scenario) ([]SimTimelineResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bb := opts.Backbones[0]
	staleness := opts.Staleness
	if staleness == 0 {
		staleness = 2
	}
	scheds := []core.Sched{core.SchedSync, core.SchedAsync}
	if opts.Topology != "" {
		scheds = append(scheds, core.SchedGossip)
	}
	var out []SimTimelineResult
	for _, ds := range opts.Datasets {
		g, err := opts.LoadDataset(ds)
		if err != nil {
			return nil, err
		}
		// The task decides the split, the training graph, and the objective
		// the session trains. An objective binds to one system, so each
		// discipline below gets a fresh one from newObjective.
		trainGraph, newObjective, err := core.SplitForTask(g, opts.Task, rand.New(rand.NewSource(opts.Seed^1)))
		if err != nil {
			return nil, err
		}
		for _, sched := range scheds {
			cfg := core.Config{
				Task: opts.Task, Backbone: bb,
				Epsilon: opts.Epsilon, Epochs: opts.Epochs,
				MCMCIterations: opts.mcmcItersFor(ds),
				SecureCompare:  opts.SecureCompare,
				Workers:        opts.Workers,
				Shards:         g.N, // one device per shard: exact participation
				Sched:          sched,
				Seed:           opts.Seed,
			}
			if sched == core.SchedAsync {
				cfg.Staleness = staleness
			}
			dsc := sc
			if sched == core.SchedGossip {
				spec, err := topo.ParseSpec(opts.Topology)
				if err != nil {
					return nil, err
				}
				tp, err := spec.Build(g.N, opts.Seed)
				if err != nil {
					return nil, fmt.Errorf("eval: timeline %s/gossip: %w", ds, err)
				}
				dsc.Topology = tp
			}
			sys, err := core.NewSystem(trainGraph, g, cfg)
			if err != nil {
				return nil, fmt.Errorf("eval: timeline %s/%s: %w", ds, sched, err)
			}
			simulator, err := sim.New(sys, dsc)
			if err != nil {
				return nil, err
			}
			r, err := simulator.Run(newObjective())
			if err != nil {
				return nil, fmt.Errorf("eval: timeline %s/%s: %w", ds, sched, err)
			}
			out = append(out, SimTimelineResult{
				Dataset: ds, Task: opts.Task.String(), Sched: sched.String(),
				Metric: r.Metric, Rounds: len(r.Timeline),
				WallClock: r.WallClock, TotalBytes: r.TotalBytes,
				MeanParticipants: r.MeanParticipants,
				TotalEnergy:      r.TotalEnergy,
				FinalMetric:      r.FinalMetric,
				Timeline:         r.Timeline,
			})
		}
	}
	return out, nil
}

// SimTimelineTable renders the per-discipline summaries.
func SimTimelineTable(rs []SimTimelineResult) *Table {
	t := &Table{
		Title:   "Simulated timelines: sync vs async scheduling over a heterogeneous churning fleet",
		Columns: []string{"dataset", "task", "sched", "rounds", "wallclock(s)", "bytes", "energy(J)", "avg participants", "metric", "final"},
	}
	for _, r := range rs {
		t.AddRow(r.Dataset, r.Task, r.Sched, r.Rounds,
			fmt.Sprintf("%.3f", r.WallClock), r.TotalBytes,
			fmt.Sprintf("%.3f", r.TotalEnergy),
			fmt.Sprintf("%.1f", r.MeanParticipants), r.Metric, r.FinalMetric)
	}
	return t
}

// SimTimelineCSVTable renders every round of every timeline for plotting.
func SimTimelineCSVTable(rs []SimTimelineResult) *Table {
	t := &Table{
		Title:   "Simulated timelines: per-round records",
		Columns: []string{"dataset", "task", "sched", "round", "start_s", "commit_s", "available", "participants", "late", "stale", "dropped", "bytes", "energy_j", "loss", "metric"},
	}
	for _, r := range rs {
		for _, rr := range r.Timeline {
			metric := ""
			if rr.Evaluated {
				metric = fmt.Sprintf("%.4f", rr.Metric)
			}
			t.AddRow(r.Dataset, r.Task, r.Sched, rr.Round,
				fmt.Sprintf("%.4f", rr.Start), fmt.Sprintf("%.4f", rr.Commit),
				rr.Available, rr.Participants, rr.Late, rr.StaleApplied, rr.Dropped,
				rr.Bytes, fmt.Sprintf("%.4f", rr.Energy), fmt.Sprintf("%.4f", rr.Loss), metric)
		}
	}
	return t
}
