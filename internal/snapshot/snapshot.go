// Package snapshot defines the versioned model-snapshot format that closes
// the train→publish→serve loop: a training session captures its encoder
// (and head) weights plus the per-device tree state, publishes them
// atomically to a file, and a serving replica reconstructs a bit-identical
// inference system from that file — repeatedly, as training republishes.
//
// # Format (version 1)
//
// All integers are little-endian. Every length field is bounded before any
// allocation, and the whole snapshot is covered by a CRC-32 trailer, so
// truncation and bit flips fail loudly at decode time:
//
//	u32  magic "LSNP"
//	u32  format version (1)
//	u64  snapshot version (monotonically increasing across publishes;
//	     serving replicas swap only when it moves forward)
//	u32  metadata length + JSON Meta
//	u8   backbone, u32 ×5 inDim/hidden/outDim/layers/heads, f64 dropout,
//	     u32 classes (0 = no head), u32 shards (the training partition,
//	     pinned so pooled-embedding reduction order — and therefore every
//	     prediction — is bit-identical at serve time)
//	u32  weights length + nn.SaveParams stream (encoder, then head)
//	u32  N, then per device: u32 nodes, u32 edge count, edges as u32 pairs
//	u32  leaf count, rows, vertices (u32 each), pooling coefficients (f64)
//	u32  X length + tensor.Matrix binary encoding (forest embeddings)
//	u32  CRC-32 (IEEE) of every preceding byte
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"lumos/internal/core"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

const (
	magic         = uint32(0x4c534e50) // "LSNP"
	formatVersion = uint32(1)

	maxMetaLen    = 1 << 20
	maxWeightsLen = 1 << 30
	maxMatrixLen  = 1 << 30
	maxDevices    = 1 << 24
	maxTreeNodes  = 1 << 28
	maxTreeEdges  = 1 << 28
	maxDim        = 1 << 24
)

// Meta describes a snapshot for humans, dashboards, and swap ordering.
type Meta struct {
	// Version orders snapshots of one deployment: publishers increment it
	// (PublishNext) and servers hot-swap only when it moves forward.
	Version uint64 `json:"version"`
	// Task and Backbone echo the training configuration.
	Task     string `json:"task"`
	Backbone string `json:"backbone"`
	// Dataset names the graph the model was trained on.
	Dataset string `json:"dataset,omitempty"`
	// Seed is the training run seed.
	Seed int64 `json:"seed,omitempty"`
	// Round is how many epochs/rounds the published model had trained.
	Round int `json:"round,omitempty"`
	// Metric is the publisher's evaluation metric (MetricName says which).
	Metric     float64 `json:"metric,omitempty"`
	MetricName string  `json:"metric_name,omitempty"`
	// CreatedUnix is the publish time (informational only).
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// Snapshot is a decoded (or captured) model snapshot: metadata, the model
// architecture, trained modules, and the forest state serving needs.
type Snapshot struct {
	Meta    Meta
	Model   nn.GNNConfig
	Classes int // head width; 0 = no classification head
	Shards  int // training shard partition (fixes reduction order)
	Encoder *nn.GNN
	Head    *nn.Linear // nil when Classes == 0
	State   *core.ForestState
}

// Capture freezes a trained system into a snapshot: weights and forest
// state are deep-copied, so training may continue (and republish later)
// without mutating the capture. meta.Task and meta.Backbone are filled from
// the system.
func Capture(sys *core.System, meta Meta) (*Snapshot, error) {
	if sys == nil || sys.Encoder == nil {
		return nil, fmt.Errorf("snapshot: nil system")
	}
	meta.Task = sys.Cfg.Task.String()
	meta.Backbone = sys.Cfg.Backbone.String()
	enc, err := nn.NewGNN(sys.Encoder.Cfg, rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuilding encoder: %w", err)
	}
	nn.Restore(enc, nn.Snapshot(sys.Encoder))
	s := &Snapshot{
		Meta:    meta,
		Model:   sys.Encoder.Cfg,
		Shards:  sys.ShardCount(),
		Encoder: enc,
		State:   sys.ForestState(),
	}
	if sys.Head != nil {
		head := nn.NewLinear("head", sys.Head.In, sys.Head.Out, rand.New(rand.NewSource(0)))
		nn.Restore(head, nn.Snapshot(sys.Head))
		s.Head = head
		s.Classes = head.Out
	}
	return s, nil
}

// System reconstructs an evaluation-only system answering queries
// bit-identically to the training process the snapshot was captured from.
func (s *Snapshot) System() (*core.System, error) {
	return core.NewInferenceSystem(s.State, s.Encoder, s.Head, s.Shards, 0)
}

// model is the joint module the weights stream carries: encoder parameters
// first, then the head's — the same order core.System.Params uses.
type model struct {
	enc  *nn.GNN
	head *nn.Linear
}

func (m model) Params() []*nn.Param {
	ps := m.enc.Params()
	if m.head != nil {
		ps = append(ps, m.head.Params()...)
	}
	return ps
}

// Encode writes the snapshot to w in format version 1.
func (s *Snapshot) Encode(w io.Writer) error {
	if s.Encoder == nil || s.State == nil {
		return fmt.Errorf("snapshot: incomplete snapshot (missing encoder or state)")
	}
	if err := s.State.Validate(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if (s.Classes == 0) != (s.Head == nil) {
		return fmt.Errorf("snapshot: Classes=%d with head=%v", s.Classes, s.Head != nil)
	}
	if s.Shards < 1 {
		return fmt.Errorf("snapshot: shard count %d must be positive", s.Shards)
	}
	bw := bufio.NewWriter(w)
	h := crc32.NewIEEE()
	e := &encoder{w: io.MultiWriter(bw, h)}

	e.u32(magic)
	e.u32(formatVersion)
	e.u64(s.Meta.Version)

	metaJSON, err := json.Marshal(s.Meta)
	if err != nil {
		return fmt.Errorf("snapshot: encoding metadata: %w", err)
	}
	e.blob(metaJSON, maxMetaLen, "metadata")

	e.u8(uint8(s.Model.Backbone))
	e.u32(uint32(s.Model.InDim))
	e.u32(uint32(s.Model.Hidden))
	e.u32(uint32(s.Model.OutDim))
	e.u32(uint32(s.Model.Layers))
	e.u32(uint32(s.Model.Heads))
	e.f64(s.Model.Dropout)
	e.u32(uint32(s.Classes))
	e.u32(uint32(s.Shards))

	var weights bytes.Buffer
	if err := nn.SaveParams(&weights, model{s.Encoder, s.Head}); err != nil {
		return fmt.Errorf("snapshot: encoding weights: %w", err)
	}
	e.blob(weights.Bytes(), maxWeightsLen, "weights")

	fs := s.State
	e.u32(uint32(fs.N))
	for v := 0; v < fs.N; v++ {
		e.u32(uint32(fs.TreeNodes[v]))
		e.u32(uint32(len(fs.TreeEdges[v])))
		for _, edge := range fs.TreeEdges[v] {
			e.u32(uint32(edge[0]))
			e.u32(uint32(edge[1]))
		}
	}
	e.u32(uint32(len(fs.LeafRows)))
	for _, r := range fs.LeafRows {
		e.u32(uint32(r))
	}
	for _, v := range fs.LeafVertex {
		e.u32(uint32(v))
	}
	for _, c := range fs.PoolCoef {
		e.f64(c)
	}
	xBlob, err := fs.X.MarshalBinary()
	if err != nil {
		return fmt.Errorf("snapshot: encoding embeddings: %w", err)
	}
	e.blob(xBlob, maxMatrixLen, "embedding matrix")
	if e.err != nil {
		return fmt.Errorf("snapshot: encoding: %w", e.err)
	}
	// The CRC trailer covers every byte written so far; it goes to the
	// stream only, not the hash.
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return fmt.Errorf("snapshot: writing checksum: %w", err)
	}
	return bw.Flush()
}

// Decode reads one snapshot, verifying structure, bounds, and the CRC
// trailer, and rebuilds the modules ready for System().
func Decode(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	h := crc32.NewIEEE()
	d := &decoder{r: io.TeeReader(br, h)}

	if got := d.u32(); d.err == nil && got != magic {
		return nil, fmt.Errorf("snapshot: bad magic %#x (not a lumos snapshot)", got)
	}
	if v := d.u32(); d.err == nil && v != formatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads %d)", v, formatVersion)
	}
	s := &Snapshot{}
	version := d.u64()

	metaJSON := d.blob(maxMetaLen, "metadata")
	if d.err == nil {
		if err := json.Unmarshal(metaJSON, &s.Meta); err != nil {
			return nil, fmt.Errorf("snapshot: decoding metadata: %w", err)
		}
	}
	s.Meta.Version = version // the binary header is authoritative, not the JSON

	backbone := d.u8()
	s.Model = nn.GNNConfig{
		InDim:  d.dim("input dim"),
		Hidden: d.dim("hidden dim"),
		OutDim: d.dim("output dim"),
		Layers: d.dim("layer count"),
		Heads:  d.dim("head count"),
	}
	s.Model.Dropout = d.f64()
	s.Classes = d.dim("class count")
	s.Shards = d.dim("shard count")

	weights := d.blob(maxWeightsLen, "weights")

	fs := &core.ForestState{N: d.dim("device count")}
	if d.err == nil && fs.N > maxDevices {
		return nil, fmt.Errorf("snapshot: device count %d exceeds bound %d (corrupt length field?)", fs.N, maxDevices)
	}
	totalNodes, totalEdges := 0, 0
	if d.err == nil {
		fs.TreeNodes = make([]int, fs.N)
		fs.TreeEdges = make([][][2]int, fs.N)
	}
	for v := 0; d.err == nil && v < fs.N; v++ {
		fs.TreeNodes[v] = d.dim("tree node count")
		totalNodes += fs.TreeNodes[v]
		if totalNodes > maxTreeNodes {
			return nil, fmt.Errorf("snapshot: forest claims over %d nodes (corrupt length field?)", maxTreeNodes)
		}
		ne := d.dim("tree edge count")
		totalEdges += ne
		if totalEdges > maxTreeEdges {
			return nil, fmt.Errorf("snapshot: forest claims over %d edges (corrupt length field?)", maxTreeEdges)
		}
		if d.err != nil {
			break
		}
		edges := make([][2]int, ne)
		for i := range edges {
			edges[i] = [2]int{d.dim("edge endpoint"), d.dim("edge endpoint")}
		}
		fs.TreeEdges[v] = edges
	}
	nLeaf := d.dim("leaf count")
	if d.err == nil && nLeaf > totalNodes {
		return nil, fmt.Errorf("snapshot: %d leaves for %d forest nodes (corrupt length field?)", nLeaf, totalNodes)
	}
	if d.err == nil {
		fs.LeafRows = make([]int, nLeaf)
		fs.LeafVertex = make([]int, nLeaf)
		fs.PoolCoef = make([]float64, nLeaf)
		for i := range fs.LeafRows {
			fs.LeafRows[i] = d.dim("leaf row")
		}
		for i := range fs.LeafVertex {
			fs.LeafVertex[i] = d.dim("leaf vertex")
		}
		for i := range fs.PoolCoef {
			fs.PoolCoef[i] = d.f64()
		}
	}
	xBlob := d.blob(maxMatrixLen, "embedding matrix")
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: decoding: %w", d.err)
	}

	// Checksum: grab the running CRC before consuming the trailer.
	sum := h.Sum32()
	var trailer uint32
	if err := binary.Read(br, binary.LittleEndian, &trailer); err != nil {
		return nil, fmt.Errorf("snapshot: reading checksum: %w", err)
	}
	if trailer != sum {
		return nil, fmt.Errorf("snapshot: checksum mismatch (stored %#x, computed %#x): snapshot is corrupt", trailer, sum)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("snapshot: trailing data after checksum")
		}
		return nil, fmt.Errorf("snapshot: reading trailer: %w", err)
	}

	fs.X = &tensor.Matrix{}
	if err := fs.X.UnmarshalBinary(xBlob); err != nil {
		return nil, fmt.Errorf("snapshot: decoding embeddings: %w", err)
	}
	s.State = fs
	if err := fs.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}

	if backbone != uint8(nn.GCN) && backbone != uint8(nn.GAT) {
		return nil, fmt.Errorf("snapshot: unknown backbone %d", backbone)
	}
	s.Model.Backbone = nn.Backbone(backbone)
	enc, err := nn.NewGNN(s.Model, rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuilding encoder: %w", err)
	}
	s.Encoder = enc
	if s.Classes > 0 {
		if s.Classes < 2 {
			return nil, fmt.Errorf("snapshot: classification head with %d classes", s.Classes)
		}
		s.Head = nn.NewLinear("head", s.Model.OutDim, s.Classes, rand.New(rand.NewSource(0)))
	}
	if err := nn.LoadParams(bytes.NewReader(weights), model{s.Encoder, s.Head}); err != nil {
		return nil, fmt.Errorf("snapshot: restoring weights: %w", err)
	}
	if s.Shards < 1 {
		return nil, fmt.Errorf("snapshot: shard count %d must be positive", s.Shards)
	}
	return s, nil
}

// Read loads and decodes the snapshot file at path.
func Read(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// PeekVersion reads just the snapshot version from the file header, without
// decoding or checksumming the body — the cheap staleness check watchers
// use before a full Read.
func PeekVersion(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr struct {
		Magic, Format uint32
		Version       uint64
	}
	if err := binary.Read(f, binary.LittleEndian, &hdr); err != nil {
		return 0, fmt.Errorf("%s: reading snapshot header: %w", path, err)
	}
	if hdr.Magic != magic {
		return 0, fmt.Errorf("%s: bad magic %#x (not a lumos snapshot)", path, hdr.Magic)
	}
	if hdr.Format != formatVersion {
		return 0, fmt.Errorf("%s: unsupported format version %d", path, hdr.Format)
	}
	return hdr.Version, nil
}

// PublishObserver, when set, is called after every successful Write with
// the published path, version, encoded size, and the time the encode+
// fsync+rename took. CLIs hook it up once at startup to count and trace
// snapshot publishes; it must be set before any concurrent Write and be
// safe for concurrent calls. Nil (the default) costs nothing.
var PublishObserver func(path string, version uint64, bytes int64, elapsed time.Duration)

// Write publishes the snapshot to path atomically: encode to a temporary
// file in the same directory, fsync, check the close error (a full disk
// must never ship a truncated snapshot), then rename over path. A watcher
// polling path sees either the old snapshot or the complete new one.
func Write(path string, s *Snapshot) (err error) {
	start := time.Now()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp.Name())
		}
	}()
	if err = s.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	var size int64
	if st, serr := tmp.Stat(); serr == nil {
		size = st.Size()
	}
	if err = tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if PublishObserver != nil {
		PublishObserver(path, s.Meta.Version, size, time.Since(start))
	}
	return nil
}

// PublishNext writes the snapshot to path with the next version: one past
// the version currently published there (1 when the path does not exist or
// holds something unreadable). It returns the published version — this is
// what keeps versions monotonically increasing across a train→publish loop,
// which serving replicas rely on for swap ordering.
func PublishNext(path string, s *Snapshot) (uint64, error) {
	prev, err := PeekVersion(path)
	if err != nil {
		prev = 0
	}
	next := prev + 1
	if next == 0 { // uint64 wrap: malformed header claimed MaxUint64
		return 0, fmt.Errorf("snapshot: version space exhausted at %s", path)
	}
	s.Meta.Version = next
	if err := Write(path, s); err != nil {
		return 0, err
	}
	return next, nil
}

// encoder is a sticky-error little-endian writer.
type encoder struct {
	w   io.Writer
	err error
}

func (e *encoder) u8(v uint8)   { e.write(v) }
func (e *encoder) u32(v uint32) { e.write(v) }
func (e *encoder) u64(v uint64) { e.write(v) }
func (e *encoder) f64(v float64) {
	e.write(math.Float64bits(v))
}

func (e *encoder) write(v interface{}) {
	if e.err != nil {
		return
	}
	e.err = binary.Write(e.w, binary.LittleEndian, v)
}

func (e *encoder) blob(b []byte, max int, what string) {
	if e.err != nil {
		return
	}
	if len(b) > max {
		e.err = fmt.Errorf("%s is %d bytes, bound is %d", what, len(b), max)
		return
	}
	e.u32(uint32(len(b)))
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

// decoder is a sticky-error little-endian reader with bounds enforcement;
// every read flows through the CRC tee.
type decoder struct {
	r   io.Reader
	err error
}

func (d *decoder) u8() uint8 {
	var v uint8
	d.read(&v)
	return v
}

func (d *decoder) u32() uint32 {
	var v uint32
	d.read(&v)
	return v
}

func (d *decoder) u64() uint64 {
	var v uint64
	d.read(&v)
	return v
}

func (d *decoder) f64() float64 {
	var v uint64
	d.read(&v)
	return math.Float64frombits(v)
}

// dim reads a u32 meant to be a small structural quantity (a dimension,
// count, or index) and bounds it.
func (d *decoder) dim(what string) int {
	v := d.u32()
	if d.err == nil && v > maxDim {
		d.err = fmt.Errorf("%s %d exceeds bound %d (corrupt length field?)", what, v, maxDim)
	}
	return int(v)
}

func (d *decoder) read(v interface{}) {
	if d.err != nil {
		return
	}
	d.err = binary.Read(d.r, binary.LittleEndian, v)
}

// blob reads a length-prefixed byte section, growing as data actually
// arrives so a corrupt length never drives an up-front allocation.
func (d *decoder) blob(max int, what string) []byte {
	if d.err != nil {
		return nil
	}
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int(n) > max {
		d.err = fmt.Errorf("%s claims %d bytes, bound is %d (corrupt length field?)", what, n, max)
		return nil
	}
	var buf bytes.Buffer
	if m, err := io.CopyN(&buf, d.r, int64(n)); err != nil {
		d.err = fmt.Errorf("reading %s: got %d of %d bytes: %w", what, m, n, err)
		return nil
	}
	return buf.Bytes()
}
