package snapshot

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lumos/internal/core"
	"lumos/internal/graph"
)

// trainedSystem briefly trains a small system through the public core API.
func trainedSystem(t *testing.T, task core.Task, seed int64) (*core.System, *graph.NodeSplit, *graph.EdgeSplit) {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "snaptest", N: 40, M: 140, Classes: 3, FeatureDim: 12,
		Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Task: task, Epochs: 2, MCMCIterations: 10, Shards: 5, Workers: 2, Seed: seed,
	}
	rng := rand.New(rand.NewSource(seed))
	if task == core.Supervised {
		split, err := graph.SplitNodes(g, 0.5, 0.25, rng)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(g, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.TrainSupervised(split); err != nil {
			t.Fatal(err)
		}
		return sys, split, nil
	}
	es, err := graph.SplitEdges(g, 0.8, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(es.TrainGraph, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainUnsupervised(es); err != nil {
		t.Fatal(err)
	}
	return sys, nil, es
}

func encodeOf(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip: capture → encode → decode must reproduce metadata
// and answer queries bit-identically to the live training system, for both
// tasks.
func TestSnapshotRoundTrip(t *testing.T) {
	t.Run("supervised", func(t *testing.T) {
		sys, split, _ := trainedSystem(t, core.Supervised, 41)
		meta := Meta{
			Version: 7, Dataset: "snaptest", Seed: 41, Round: 2,
			Metric: 0.5, MetricName: "accuracy", CreatedUnix: 1700000000,
		}
		snap, err := Capture(sys, meta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(encodeOf(t, snap)))
		if err != nil {
			t.Fatal(err)
		}
		want := meta
		want.Task, want.Backbone = "supervised", "GCN"
		if got.Meta != want {
			t.Fatalf("metadata round trip: got %+v, want %+v", got.Meta, want)
		}
		if got.Model != snap.Model || got.Classes != snap.Classes || got.Shards != snap.Shards {
			t.Fatalf("architecture round trip: got %+v/%d/%d", got.Model, got.Classes, got.Shards)
		}

		inf, err := got.System()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sys.Embeddings().Data(), inf.Embeddings().Data()) {
			t.Fatal("decoded embeddings differ from training system")
		}
		wp, err := sys.Predictions()
		if err != nil {
			t.Fatal(err)
		}
		gp, err := inf.Predictions()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wp, gp) {
			t.Fatal("decoded predictions differ from training system")
		}
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		if err != nil {
			t.Fatal(err)
		}
		correct, total := 0, 0
		for v, mask := range split.IsTest {
			if !mask {
				continue
			}
			total++
			if gp[v] == sys.G.Labels[v] {
				correct++
			}
		}
		if served := float64(correct) / float64(total); served != acc {
			t.Fatalf("accuracy from decoded snapshot %v != EvaluateAccuracy %v", served, acc)
		}
	})

	t.Run("unsupervised", func(t *testing.T) {
		sys, _, es := trainedSystem(t, core.Unsupervised, 43)
		snap, err := Capture(sys, Meta{Version: 1})
		if err != nil {
			t.Fatal(err)
		}
		if snap.Head != nil || snap.Classes != 0 {
			t.Fatalf("unsupervised capture has a head (%d classes)", snap.Classes)
		}
		got, err := Decode(bytes.NewReader(encodeOf(t, snap)))
		if err != nil {
			t.Fatal(err)
		}
		inf, err := got.System()
		if err != nil {
			t.Fatal(err)
		}
		pairs := append(append([][2]int(nil), es.Test...), es.TestNeg...)
		ws, err := sys.PairScores(pairs)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := inf.PairScores(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ws, gs) {
			t.Fatal("decoded pair scores differ from training system")
		}
		if _, err := inf.Predictions(); err == nil {
			t.Fatal("headless snapshot answered class predictions")
		}
	})
}

// TestSnapshotCaptureIsFrozen: training after Capture must not change what
// the snapshot decodes to.
func TestSnapshotCaptureIsFrozen(t *testing.T) {
	sys, split, _ := trainedSystem(t, core.Supervised, 47)
	snap, err := Capture(sys, Meta{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := encodeOf(t, snap)
	if _, err := sys.TrainSupervised(split); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, encodeOf(t, snap)) {
		t.Fatal("continued training mutated a captured snapshot")
	}
}

// TestSnapshotCorruption flips one bit at sampled offsets; every corruption
// must surface as a decode error (CRC mismatch or a bounds check), never a
// silently-wrong model or a huge allocation.
func TestSnapshotCorruption(t *testing.T) {
	sys, _, _ := trainedSystem(t, core.Supervised, 53)
	snap, err := Capture(sys, Meta{Version: 3})
	if err != nil {
		t.Fatal(err)
	}
	good := encodeOf(t, snap)
	if _, err := Decode(bytes.NewReader(good)); err != nil {
		t.Fatalf("intact snapshot failed to decode: %v", err)
	}

	step := len(good) / 64
	if step < 1 {
		step = 1
	}
	offsets := make([]int, 0, 80)
	for off := 0; off < len(good); off += step {
		offsets = append(offsets, off)
	}
	// Always include the trailer bytes.
	for off := len(good) - 4; off < len(good); off++ {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		for _, bit := range []byte{0x01, 0x80} {
			corrupt := append([]byte(nil), good...)
			corrupt[off] ^= bit
			if _, err := Decode(bytes.NewReader(corrupt)); err == nil {
				t.Fatalf("bit flip at offset %d (mask %#x) decoded without error", off, bit)
			}
		}
	}
}

// TestSnapshotTruncation: every truncated prefix must fail cleanly.
func TestSnapshotTruncation(t *testing.T) {
	sys, _, _ := trainedSystem(t, core.Supervised, 59)
	snap, err := Capture(sys, Meta{Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	good := encodeOf(t, snap)
	// Every boundary through the fixed-size head, then sampled thereafter.
	for n := 0; n < len(good); n++ {
		if n > 256 && n%89 != 0 {
			continue
		}
		if _, err := Decode(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) decoded without error", n, len(good))
		}
	}
}

func TestSnapshotBadMagicAndFormat(t *testing.T) {
	sys, _, _ := trainedSystem(t, core.Supervised, 61)
	snap, err := Capture(sys, Meta{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := encodeOf(t, snap)

	badMagic := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(badMagic[0:], 0xdeadbeef)
	if _, err := Decode(bytes.NewReader(badMagic)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want bad-magic error, got %v", err)
	}

	badFormat := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(badFormat[4:], formatVersion+1)
	if _, err := Decode(bytes.NewReader(badFormat)); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("want format-version error, got %v", err)
	}

	if _, err := Decode(bytes.NewReader(append(good, 0x00))); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-data error, got %v", err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")
	if err := os.WriteFile(path, badMagic, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekVersion(path); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("PeekVersion on bad magic: got %v", err)
	}
}

// TestSnapshotPublish exercises the Write/PublishNext/PeekVersion loop:
// atomic publish, monotonically increasing versions, recovery from an
// unreadable predecessor.
func TestSnapshotPublish(t *testing.T) {
	sys, _, _ := trainedSystem(t, core.Supervised, 67)
	snap, err := Capture(sys, Meta{Dataset: "snaptest"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")

	v, err := PublishNext(path, snap)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first publish got version %d, want 1", v)
	}
	if got, err := PeekVersion(path); err != nil || got != 1 {
		t.Fatalf("PeekVersion = %d, %v; want 1", got, err)
	}

	v, err = PublishNext(path, snap)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("second publish got version %d, want 2", v)
	}
	loaded, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Meta.Version != 2 || loaded.Meta.Dataset != "snaptest" {
		t.Fatalf("read back %+v", loaded.Meta)
	}

	// No temp files may be left behind by the atomic rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.snap" {
		t.Fatalf("publish left extra files: %v", entries)
	}

	// An unreadable predecessor restarts the version sequence rather than
	// blocking publishes.
	garbled := filepath.Join(dir, "garbled.snap")
	if err := os.WriteFile(garbled, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if v, err = PublishNext(garbled, snap); err != nil || v != 1 {
		t.Fatalf("publish over garbage: got %d, %v; want 1", v, err)
	}
}

// TestSnapshotEncodeRejectsIncomplete: encoding must validate up front.
func TestSnapshotEncodeRejectsIncomplete(t *testing.T) {
	sys, _, _ := trainedSystem(t, core.Supervised, 71)
	snap, err := Capture(sys, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer

	broken := *snap
	broken.Encoder = nil
	if err := broken.Encode(&buf); err == nil {
		t.Fatal("encoded snapshot without encoder")
	}
	broken = *snap
	broken.Shards = 0
	if err := broken.Encode(&buf); err == nil {
		t.Fatal("encoded snapshot with zero shards")
	}
	broken = *snap
	broken.Head = nil
	if err := broken.Encode(&buf); err == nil {
		t.Fatal("encoded snapshot with classes but no head")
	}
	st := *snap.State
	st.LeafRows = st.LeafRows[:1]
	broken = *snap
	broken.State = &st
	if err := broken.Encode(&buf); err == nil {
		t.Fatal("encoded snapshot with inconsistent forest state")
	}
}
