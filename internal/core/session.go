package core

import (
	"fmt"
	"time"

	"lumos/internal/autodiff"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

// A Session is one training run of an Objective over an assembled System —
// the task-agnostic driving surface shared by the epoch trainers
// (TrainSupervised/TrainUnsupervised are thin loops over a session), the
// discrete-event simulator, and any future runner. A session can be driven
// two ways, freely per step:
//
//   - Step() runs one full-participation epoch with validation-based model
//     selection, accumulating the TrainStats record;
//   - StepRound(plan) runs one partial-participation round under the
//     caller's participation mask, gradient delays, and cache TTL — the
//     simulator's per-round entry point.
//
// Call FinishRounds once at the end (terminal stale-gradient barrier plus
// best-validation-snapshot restore), then Stats for the summary. All the
// engine's determinism contracts hold: for a fixed seed and participation
// schedule, every Workers value produces bit-identical losses and weights.
type Session struct {
	sys *System
	obj Objective
	// lossFn is obj.loss bound once, so steady-state steps do not allocate
	// a fresh closure per epoch.
	lossFn func(pooled *autodiff.Value) *autodiff.Value

	stats    TrainStats
	bestVal  float64
	bestSnap []*tensor.Matrix
	steps    int
	rounds   int
	start    time.Time
	sealed   bool

	// tel is the session's telemetry surface, built from Config.Metrics and
	// Config.Tracer; the zero value (both nil, the default) is fully
	// disabled and free.
	tel sessionTelemetry
}

// NewSession binds an objective to the system and returns a session ready
// to step. The objective's task must match Config.Task.
func (s *System) NewSession(obj Objective) (*Session, error) {
	if obj == nil {
		return nil, fmt.Errorf("core: nil objective")
	}
	if obj.Task() != s.Cfg.Task {
		return nil, fmt.Errorf("core: %v objective on %v system", obj.Task(), s.Cfg.Task)
	}
	if err := obj.bind(s); err != nil {
		return nil, err
	}
	return &Session{
		sys: s, obj: obj, lossFn: obj.loss, bestVal: -1, start: time.Now(),
		tel: newSessionTelemetry(&s.Cfg),
	}, nil
}

// Objective returns the objective the session trains.
func (se *Session) Objective() Objective { return se.obj }

// Step runs one full-participation training epoch: the objective draws its
// per-epoch samples, the engine executes the sharded forward/backward under
// the configured schedule, traffic is accounted, and — every
// Config.EvalEvery epochs and on the final configured epoch — the
// objective's validation metric drives model selection. Returns the epoch
// loss.
func (se *Session) Step() (float64, error) {
	s := se.sys
	t0 := se.tel.begin()
	before := s.Net.Snapshot()
	if !se.obj.begin(nil) {
		return 0, fmt.Errorf("core: %v objective has no training signal (empty retained sets or training split)", se.obj.Task())
	}
	loss := s.eng.step(se.lossFn)
	se.obj.account(nil)
	se.stats.Losses = append(se.stats.Losses, loss)
	se.stats.EpochTraffic = append(se.stats.EpochTraffic, s.Net.Diff(before))
	epoch := se.steps
	se.steps++
	// Validation-based model selection: each device evaluates its own
	// prediction locally, so this costs one extra (eval-mode) forward.
	if epoch%s.Cfg.EvalEvery == 0 || epoch == s.Cfg.Epochs-1 {
		if m, ok, err := se.obj.valMetric(); ok && err == nil && m > se.bestVal {
			se.bestVal = m
			se.bestSnap = nn.Snapshot(s)
			se.tel.selected(m)
		}
	}
	se.tel.finishStep(se, t0, epoch, loss)
	return loss, nil
}

// RoundPlan describes one partial-participation training round.
type RoundPlan struct {
	// Active marks the devices present this round, indexed by device id
	// (nil = full participation).
	Active []bool
	// Delays postpones each participant's gradient application by the
	// given number of rounds — the caller's staleness schedule, typically
	// derived from simulated message arrival times (nil = every gradient
	// applies immediately).
	Delays []int
	// TTL bounds how many rounds an absent device's cached pooling
	// contribution keeps serving before it is dropped from the forward
	// pass.
	TTL int
	// Evaluate requests the objective's validation metric after this
	// round's update. The metric is surfaced in RoundOutcome and drives
	// best-snapshot model selection exactly like Step's EvalEvery path, so
	// round-driven runs (the simulator) can select models too; FinishRounds
	// restores the best snapshot. Costs one extra eval-mode forward.
	Evaluate bool
}

// StepRound runs one training round restricted to the plan's participants.
// Only present devices contribute samples and loss terms, send traffic, and
// compute gradients; the vertices of absent devices keep serving the pooled
// embeddings their leaves last pushed, until that cache is more than
// plan.TTL rounds old. A round whose participants carry no training signal
// is skipped: the round clock still advances, due stale gradients apply,
// and the optimizer steps as the aggregator would.
//
// Participation and delays are lifted to shard granularity: a shard is
// active when at least half of its devices are present (exact when the
// system was built with Shards == N, one device per shard — the simulator
// default), and a shard's delay is the largest among its present devices.
func (se *Session) StepRound(plan RoundPlan) (RoundOutcome, error) {
	s := se.sys
	t0 := se.tel.begin()
	if plan.Active != nil && len(plan.Active) != s.G.N {
		return RoundOutcome{}, fmt.Errorf("core: %d participation flags for %d devices", len(plan.Active), s.G.N)
	}
	if plan.Delays != nil && len(plan.Delays) != s.G.N {
		return RoundOutcome{}, fmt.Errorf("core: %d delays for %d devices", len(plan.Delays), s.G.N)
	}
	if plan.TTL < 0 {
		return RoundOutcome{}, fmt.Errorf("core: negative partial TTL %d", plan.TTL)
	}
	round := se.rounds
	se.rounds++
	if !se.obj.begin(plan.Active) {
		out := RoundOutcome{Skipped: true, StaleApplied: s.eng.skipRound()}
		if err := se.selectRound(plan, &out); err != nil {
			return RoundOutcome{}, err
		}
		se.tel.finishRound(se, t0, round, out)
		return out, nil
	}
	se.obj.account(plan.Active)
	shardActive, shardDelay := s.eng.mapDevices(plan.Active, plan.Delays)
	loss, rep := s.eng.stepRound(shardActive, shardDelay, plan.TTL, se.lossFn)
	out := RoundOutcome{
		Loss:         loss,
		ActiveShards: rep.activeShards,
		StaleApplied: rep.staleApplied,
		ExpiredParts: rep.expiredParts,
	}
	if err := se.selectRound(plan, &out); err != nil {
		return RoundOutcome{}, err
	}
	se.tel.finishRound(se, t0, round, out)
	return out, nil
}

// selectRound runs the plan's optional validation evaluation and folds it
// into model selection — the round-path twin of Step's EvalEvery block.
func (se *Session) selectRound(plan RoundPlan, out *RoundOutcome) error {
	if !plan.Evaluate {
		return nil
	}
	m, ok, err := se.obj.valMetric()
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	out.ValMetric, out.ValEvaluated = m, true
	if m > se.bestVal {
		se.bestVal = m
		se.bestSnap = nn.Snapshot(se.sys)
		se.tel.selected(m)
	}
	return nil
}

// FinishRounds seals the training run: every still-queued stale gradient
// applies in one terminal synchronous step (mirroring the final barrier of
// a bounded-staleness deployment), and the best validation-selected
// snapshot — when Step-driven model selection ran — is restored. Call it
// once after the last Step or StepRound.
func (se *Session) FinishRounds() {
	se.sys.eng.drain()
	restored := se.bestSnap != nil
	if restored {
		nn.Restore(se.sys, se.bestSnap)
		se.bestSnap = nil
	}
	se.tel.drained(restored)
}

// Stats returns the session's accumulated training record. The first call
// seals the summary metrics (measured time, the Fig. 8 communication and
// epoch-time estimates over the Step-driven epochs); later calls return the
// same record.
func (se *Session) Stats() *TrainStats {
	if !se.sealed {
		se.sealed = true
		se.stats.MeasuredTime = time.Since(se.start)
		se.sys.finishStats(&se.stats)
	}
	return &se.stats
}

// ValidationMetric reports the objective's current validation metric; ok is
// false when the objective carries no validation data.
func (se *Session) ValidationMetric() (metric float64, ok bool, err error) {
	return se.obj.valMetric()
}

// HasTestMetric reports whether the objective carries test data, i.e.
// whether TestMetric can succeed. Scheduled-evaluation runners (the
// simulator) check it up front instead of failing mid-run.
func (se *Session) HasTestMetric() bool { return se.obj.hasTestMetric() }

// TestMetric evaluates the objective's test-side metric (accuracy or AUC)
// on the current model.
func (se *Session) TestMetric() (float64, error) { return se.obj.testMetric() }

// MetricName names the objective's evaluation metric for tables and
// timelines.
func (se *Session) MetricName() string { return se.obj.MetricName() }

// runEpochs drives Cfg.Epochs full-participation steps and seals the run —
// the shared body of TrainSupervised and TrainUnsupervised.
func (se *Session) runEpochs() (*TrainStats, error) {
	for epoch := 0; epoch < se.sys.Cfg.Epochs; epoch++ {
		if _, err := se.Step(); err != nil {
			return nil, err
		}
	}
	se.FinishRounds()
	return se.Stats(), nil
}
