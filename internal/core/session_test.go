package core

import (
	"math/rand"
	"testing"

	"lumos/internal/graph"
)

// TestNewSessionValidation covers the session construction guards: nil
// objectives, task mismatches, nil splits, and objectives bound to another
// system.
func TestNewSessionValidation(t *testing.T) {
	g := engineGraph(t, 51)
	sys, err := NewSystem(g, g, Config{Task: Supervised, Epochs: 1, MCMCIterations: 10, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewSession(nil); err == nil {
		t.Fatal("nil objective accepted")
	}
	if _, err := sys.NewSession(NewUnsupervisedObjective(nil)); err == nil {
		t.Fatal("unsupervised objective accepted by supervised system")
	}
	if _, err := sys.NewSession(NewSupervisedObjective(nil)); err == nil {
		t.Fatal("nil node split accepted")
	}
	short := &graph.NodeSplit{Train: []int{0}, IsTrain: make([]bool, 3)}
	if _, err := sys.NewSession(NewSupervisedObjective(short)); err == nil {
		t.Fatal("mis-sized node split accepted")
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}
	obj := NewSupervisedObjective(split)
	if _, err := sys.NewSession(obj); err != nil {
		t.Fatal(err)
	}
	// Rebinding the same objective to the same system is fine...
	if _, err := sys.NewSession(obj); err != nil {
		t.Fatalf("same-system rebind rejected: %v", err)
	}
	// ...but binding it to a different system would let two sessions fight
	// over the objective's state.
	other, err := NewSystem(g, g, Config{Task: Supervised, Epochs: 1, MCMCIterations: 10, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.NewSession(obj); err == nil {
		t.Fatal("objective rebound to a different system")
	}

	// Edge splits from a different graph must be rejected at bind time —
	// they would train fine and then panic inside evaluation.
	big := testGraph(t, 200, 900, 2, 51)
	bigSplit, err := graph.SplitEdges(big, 0.8, 0.05, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}
	usys, err := NewSystem(g, g, Config{Task: Unsupervised, Epochs: 1, MCMCIterations: 10, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := usys.NewSession(NewUnsupervisedObjective(bigSplit)); err == nil {
		t.Fatal("edge split from a larger graph accepted")
	}
	bad := &graph.EdgeSplit{Test: [][2]int{{0, g.N + 5}}}
	if _, err := usys.NewSession(NewUnsupervisedObjective(bad)); err == nil {
		t.Fatal("out-of-range edge endpoint accepted")
	}
}

// TestSplitForTask covers the shared task switch used by the timeline
// runner and the lumos-sim CLI.
func TestSplitForTask(t *testing.T) {
	g := engineGraph(t, 56)
	tg, newObj, err := SplitForTask(g, Supervised, rand.New(rand.NewSource(56)))
	if err != nil || tg != g {
		t.Fatalf("supervised SplitForTask: graph %v, err %v", tg, err)
	}
	if obj := newObj(); obj.Task() != Supervised || obj.MetricName() != "accuracy" {
		t.Fatalf("supervised factory built %v/%v", obj.Task(), obj.MetricName())
	}
	tg, newObj, err = SplitForTask(g, Unsupervised, rand.New(rand.NewSource(56)))
	if err != nil {
		t.Fatal(err)
	}
	if tg == g || tg.N != g.N || tg.NumEdges() >= g.NumEdges() {
		t.Fatalf("unsupervised SplitForTask did not return a training-edge subgraph")
	}
	if obj := newObj(); obj.Task() != Unsupervised || !obj.hasTestMetric() {
		t.Fatal("unsupervised factory built an objective without test edges")
	}
	if _, _, err := SplitForTask(g, Task(99), rand.New(rand.NewSource(56))); err == nil {
		t.Fatal("unknown task accepted")
	}
}

// TestSessionMatchesTrainers: driving a session by hand — Step loop,
// FinishRounds, Stats — must be exactly the TrainSupervised /
// TrainUnsupervised behavior, losses and traffic included.
func TestSessionMatchesTrainers(t *testing.T) {
	g := engineGraph(t, 53)
	cfg := Config{Epochs: 5, MCMCIterations: 20, Seed: 53}

	// The splits must match the supervisedLosses/unsupervisedLosses helpers
	// (fixed split seed 9) for the traces to be comparable.
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	supCfg := cfg
	supCfg.Task = Supervised
	sys, err := NewSystem(g, g, supCfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sess.FinishRounds()
	manual := sess.Stats()
	requireIdentical(t, "manual session vs TrainSupervised",
		manual.Losses, supervisedLosses(t, g, cfg))
	if len(manual.EpochTraffic) != cfg.Epochs {
		t.Fatalf("session recorded %d traffic epochs, want %d", len(manual.EpochTraffic), cfg.Epochs)
	}
	if manual.AvgCommRoundsPerDevice <= 0 || manual.SimEpochTime <= 0 {
		t.Fatal("session stats missing the Fig. 8 summary metrics")
	}

	es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	unsCfg := cfg
	unsCfg.Task = Unsupervised
	usys, err := NewSystem(es.TrainGraph, g, unsCfg)
	if err != nil {
		t.Fatal(err)
	}
	usess, err := usys.NewSession(NewUnsupervisedObjective(es))
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if _, err := usess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	usess.FinishRounds()
	baseline := unsupervisedLosses(t, g, cfg)
	requireIdentical(t, "manual session vs TrainUnsupervised",
		usess.Stats().Losses, baseline)
	if m, err := usess.TestMetric(); err != nil || m <= 0 {
		t.Fatalf("session AUC = %v, %v", m, err)
	}
	if usess.MetricName() != "AUC" {
		t.Fatalf("unsupervised metric named %q", usess.MetricName())
	}
}

// TestUnsupervisedStepRound drives link-prediction rounds — the path the
// session redesign opened — through partial participation, cache expiry,
// and skipped rounds.
func TestUnsupervisedStepRound(t *testing.T) {
	g := engineGraph(t, 54)
	es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(54)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(es.TrainGraph, g, Config{
		Task: Unsupervised, MCMCIterations: 10, Shards: g.N, Seed: 54,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(NewUnsupervisedObjective(es))
	if err != nil {
		t.Fatal(err)
	}
	n := g.N
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	out, err := sess.StepRound(RoundPlan{Active: all, TTL: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped || out.Loss <= 0 || out.ActiveShards != sys.ShardCount() {
		t.Fatalf("full unsupervised round malformed: %+v", out)
	}
	// Half the fleet offline: fewer active shards, positive loss, caches
	// serve then expire past the TTL.
	half := make([]bool, n)
	for i := 0; i < n/2; i++ {
		half[i] = true
	}
	expired := 0
	for r := 0; r < 3; r++ {
		out, err := sess.StepRound(RoundPlan{Active: half, TTL: 2})
		if err != nil {
			t.Fatal(err)
		}
		if out.Skipped || out.ActiveShards >= sys.ShardCount() {
			t.Fatalf("round %d malformed under half fleet: %+v", r, out)
		}
		expired += out.ExpiredParts
	}
	if expired == 0 {
		t.Fatal("absent shards' caches never expired past the TTL")
	}
	// Nobody online: the round is skipped but the clock still advances.
	out, err = sess.StepRound(RoundPlan{Active: make([]bool, n), TTL: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Skipped {
		t.Fatal("empty round not skipped")
	}
	// Plan validation.
	if _, err := sess.StepRound(RoundPlan{Active: make([]bool, 3)}); err == nil {
		t.Fatal("wrong active length accepted")
	}
	if _, err := sess.StepRound(RoundPlan{Delays: make([]int, 3)}); err == nil {
		t.Fatal("wrong delays length accepted")
	}
	if _, err := sess.StepRound(RoundPlan{TTL: -1}); err == nil {
		t.Fatal("negative TTL accepted")
	}
	sess.FinishRounds()
}

// TestSessionFullParticipationRoundMatchesStep: StepRound with a nil Active
// mask is exactly a full-participation Step at the engine level — the loss
// trajectory matches the epoch trainer's bit for bit.
func TestSessionFullParticipationRoundMatchesStep(t *testing.T) {
	g := engineGraph(t, 55)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(55)))
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Session {
		sys, err := NewSystem(g, g, Config{Task: Supervised, MCMCIterations: 10, Shards: 16, Seed: 55})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sys.NewSession(NewSupervisedObjective(split))
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	a, b := build(), build()
	var stepLosses, roundLosses []float64
	for i := 0; i < 4; i++ {
		l, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		stepLosses = append(stepLosses, l)
		out, err := b.StepRound(RoundPlan{})
		if err != nil {
			t.Fatal(err)
		}
		roundLosses = append(roundLosses, out.Loss)
	}
	requireIdentical(t, "nil-Active StepRound vs Step", roundLosses, stepLosses)
}

// TestStepRoundModelSelection: a plan with Evaluate set surfaces the
// objective's validation metric in the outcome and drives best-snapshot
// selection, so round-driven runs (the simulator) get the same model
// selection the epoch path has — FinishRounds must restore the weights of
// the best-validation round.
func TestStepRoundModelSelection(t *testing.T) {
	g := engineGraph(t, 57)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(57)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(g, g, Config{Task: Supervised, MCMCIterations: 10, Shards: 16, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	best := -1.0
	for i := 0; i < 6; i++ {
		out, err := sess.StepRound(RoundPlan{Evaluate: i%2 == 1}) // evaluate every other round
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if out.ValEvaluated {
				t.Fatalf("round %d: validation ran without Evaluate", i)
			}
			continue
		}
		if !out.ValEvaluated {
			t.Fatalf("round %d: Evaluate plan reported no validation metric", i)
		}
		if out.ValMetric > best {
			best = out.ValMetric
		}
	}
	if best < 0 {
		t.Fatal("no validation metric observed")
	}
	sess.FinishRounds()
	got, ok, err := sess.ValidationMetric()
	if err != nil || !ok {
		t.Fatalf("post-restore validation metric: %v ok=%v", err, ok)
	}
	if got != best {
		t.Fatalf("restored model's validation metric %v, want best observed %v", got, best)
	}
}

// TestParseTask mirrors the ParseSched contract for the new task parser.
func TestParseTask(t *testing.T) {
	for name, want := range map[string]Task{
		"supervised": Supervised, "node": Supervised,
		"unsupervised": Unsupervised, "link": Unsupervised,
	} {
		got, err := ParseTask(name)
		if err != nil || got != want {
			t.Fatalf("ParseTask(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseTask("clustering"); err == nil {
		t.Fatal("unknown task parsed")
	}
}
