package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"lumos/internal/graph"
	"lumos/internal/nn"
)

// trainTiny builds and briefly trains a small system for inference tests.
func trainTiny(t *testing.T, task Task, backbone nn.Backbone, seed int64) (*System, *graph.NodeSplit, *graph.EdgeSplit) {
	t.Helper()
	g := testGraph(t, 48, 180, 3, seed)
	cfg := Config{
		Task: task, Backbone: backbone,
		Epochs: 2, MCMCIterations: 10, Shards: 7, Workers: 2, Seed: seed,
	}
	rng := rand.New(rand.NewSource(seed))
	switch task {
	case Supervised:
		split, err := graph.SplitNodes(g, 0.5, 0.25, rng)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(g, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.TrainSupervised(split); err != nil {
			t.Fatal(err)
		}
		return sys, split, nil
	default:
		es, err := graph.SplitEdges(g, 0.8, 0.05, rng)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(es.TrainGraph, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.TrainUnsupervised(es); err != nil {
			t.Fatal(err)
		}
		return sys, nil, es
	}
}

// TestInferenceSystemBitIdentical: a forest-state round trip plus the
// training modules must reproduce embeddings, predictions, and pair scores
// bit for bit, for both tasks and both backbones, at any worker count.
func TestInferenceSystemBitIdentical(t *testing.T) {
	cases := []struct {
		name     string
		task     Task
		backbone nn.Backbone
	}{
		{"supervised-gcn", Supervised, nn.GCN},
		{"supervised-gat", Supervised, nn.GAT},
		{"unsupervised-gcn", Unsupervised, nn.GCN},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, split, es := trainTiny(t, tc.task, tc.backbone, 31)
			fs := sys.ForestState()
			if err := fs.Validate(); err != nil {
				t.Fatalf("captured state invalid: %v", err)
			}
			for _, workers := range []int{1, 3} {
				inf, err := NewInferenceSystem(fs, sys.Encoder, sys.Head, sys.ShardCount(), workers)
				if err != nil {
					t.Fatal(err)
				}
				want, got := sys.Embeddings(), inf.Embeddings()
				if !reflect.DeepEqual(want.Data(), got.Data()) {
					t.Fatalf("workers=%d: inference embeddings differ from training system", workers)
				}
				if tc.task == Supervised {
					wp, err := sys.Predictions()
					if err != nil {
						t.Fatal(err)
					}
					gp, err := inf.Predictions()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(wp, gp) {
						t.Fatalf("workers=%d: predictions differ", workers)
					}
					acc, err := sys.EvaluateAccuracy(split.IsTest)
					if err != nil {
						t.Fatal(err)
					}
					correct, total := 0, 0
					for v, mask := range split.IsTest {
						if !mask {
							continue
						}
						total++
						if gp[v] == sys.G.Labels[v] {
							correct++
						}
					}
					if got := float64(correct) / float64(total); got != acc {
						t.Fatalf("accuracy from served predictions %v != EvaluateAccuracy %v", got, acc)
					}
				} else {
					pairs := append(append([][2]int(nil), es.Test...), es.TestNeg...)
					ws, err := sys.PairScores(pairs)
					if err != nil {
						t.Fatal(err)
					}
					gs, err := inf.PairScores(pairs)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ws, gs) {
						t.Fatalf("workers=%d: pair scores differ", workers)
					}
				}
			}
		})
	}
}

// TestInferenceSystemRepeatedForwards: evaluation forwards must be
// repeatable on the recycled tapes (the serving path recomputes the
// embedding cache once per snapshot swap).
func TestInferenceSystemRepeatedForwards(t *testing.T) {
	sys, _, _ := trainTiny(t, Supervised, nn.GCN, 33)
	inf, err := NewInferenceSystem(sys.ForestState(), sys.Encoder, sys.Head, sys.ShardCount(), 2)
	if err != nil {
		t.Fatal(err)
	}
	first := inf.Embeddings()
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(first.Data(), inf.Embeddings().Data()) {
			t.Fatalf("forward %d drifted", i+2)
		}
	}
}

func TestForestStateValidation(t *testing.T) {
	sys, _, _ := trainTiny(t, Supervised, nn.GCN, 35)
	shards := sys.ShardCount()

	corrupt := []struct {
		name string
		mut  func(fs *ForestState)
		want string
	}{
		{"truncated node counts", func(fs *ForestState) { fs.TreeNodes = fs.TreeNodes[:1] }, "node counts"},
		{"zero-node tree", func(fs *ForestState) { fs.TreeNodes[0] = 0 }, "nodes"},
		{"edge out of range", func(fs *ForestState) {
			fs.TreeEdges[0] = [][2]int{{0, 1 << 20}}
		}, "out of range"},
		{"row count mismatch", func(fs *ForestState) { fs.TreeNodes[0]++ }, "embedding rows"},
		{"leaf arrays disagree", func(fs *ForestState) { fs.PoolCoef = fs.PoolCoef[:1] }, "leaf arrays"},
		{"descending leaf rows", func(fs *ForestState) {
			fs.LeafRows[1] = fs.LeafRows[0]
		}, "ascending"},
		{"leaf vertex out of range", func(fs *ForestState) { fs.LeafVertex[0] = fs.N }, "leaf vertex"},
		{"bad pooling coefficient", func(fs *ForestState) { fs.PoolCoef[0] = -0.5 }, "coefficient"},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			fs := sys.ForestState()
			tc.mut(fs)
			err := fs.Validate()
			if err == nil {
				t.Fatal("corrupt state validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	t.Run("constructor checks", func(t *testing.T) {
		fs := sys.ForestState()
		if _, err := NewInferenceSystem(fs, nil, nil, shards, 0); err == nil {
			t.Fatal("nil encoder accepted")
		}
		if _, err := NewInferenceSystem(fs, sys.Encoder, sys.Head, 0, 0); err == nil {
			t.Fatal("zero shard count accepted")
		}
		other := nn.NewLinear("head", sys.Encoder.Cfg.OutDim+1, 3, rand.New(rand.NewSource(1)))
		if _, err := NewInferenceSystem(fs, sys.Encoder, other, shards, 0); err == nil {
			t.Fatal("mismatched head accepted")
		}
	})
}

// TestForestStateIsDeepCopy: mutating the capture must not reach back into
// the live system.
func TestForestStateIsDeepCopy(t *testing.T) {
	sys, _, _ := trainTiny(t, Supervised, nn.GCN, 37)
	fs := sys.ForestState()
	before := sys.Embeddings()
	fs.X.Fill(0)
	fs.LeafRows[0] = -1
	if len(fs.TreeEdges[0]) > 0 {
		fs.TreeEdges[0][0] = [2]int{-9, -9}
	}
	after := sys.Embeddings()
	if !reflect.DeepEqual(before.Data(), after.Data()) {
		t.Fatal("mutating the captured state changed the live system")
	}
}
