package core

import (
	"math/rand"
	"runtime"
	"testing"

	"lumos/internal/graph"
)

// roundSystem builds a supervised system with one device per shard, the
// configuration partial-participation rounds are exact for.
func roundSystem(t testing.TB, seed int64) (*System, *graph.NodeSplit) {
	t.Helper()
	g := engineGraph(t, seed)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(g, g, Config{
		Task: Supervised, MCMCIterations: 10, Shards: g.N, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, split
}

// TestStepRoundFullParticipation: with everyone present, a round activates
// every shard and applies no stale gradients.
func TestStepRoundFullParticipation(t *testing.T) {
	sys, split := roundSystem(t, 31)
	active := make([]bool, sys.G.N)
	for i := range active {
		active[i] = true
	}
	out, err := sys.StepRoundSupervised(split, active, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped {
		t.Fatal("full round skipped")
	}
	if out.ActiveShards != sys.ShardCount() {
		t.Fatalf("active shards %d, want %d", out.ActiveShards, sys.ShardCount())
	}
	if out.StaleApplied != 0 || out.ExpiredParts != 0 {
		t.Fatalf("fresh full round reported stale state: %+v", out)
	}
	if out.Loss <= 0 {
		t.Fatalf("loss %v", out.Loss)
	}
}

// TestStepRoundPartialAndExpiry: an absent device's cached contribution
// serves for PartialTTL rounds, then expires.
func TestStepRoundPartialAndExpiry(t *testing.T) {
	sys, split := roundSystem(t, 32)
	n := sys.G.N
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	if _, err := sys.StepRoundSupervised(split, all, nil, 2); err != nil {
		t.Fatal(err)
	}
	// Take the second half of the fleet offline for three rounds with TTL 2:
	// rounds 1 and 2 serve caches, round 3 expires them.
	half := make([]bool, n)
	for i := 0; i < n/2; i++ {
		half[i] = true
	}
	var expired int
	for r := 0; r < 3; r++ {
		out, err := sys.StepRoundSupervised(split, half, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		if out.ActiveShards >= sys.ShardCount() {
			t.Fatalf("round %d: all shards active despite half fleet offline", r)
		}
		if r < 2 && out.ExpiredParts != 0 {
			t.Fatalf("round %d: caches expired before TTL: %+v", r, out)
		}
		expired += out.ExpiredParts
	}
	if expired == 0 {
		t.Fatal("caches never expired past the TTL")
	}
	sys.FinishRounds()
}

// TestStepRoundDelayedGradients: a delayed device's gradient surfaces as a
// stale application in a later round.
func TestStepRoundDelayedGradients(t *testing.T) {
	sys, split := roundSystem(t, 33)
	n := sys.G.N
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	delays := make([]int, n)
	delays[0] = 2
	if out, err := sys.StepRoundSupervised(split, all, delays, 2); err != nil || out.StaleApplied != 0 {
		t.Fatalf("round 0: out=%+v err=%v", out, err)
	}
	if out, err := sys.StepRoundSupervised(split, all, nil, 2); err != nil || out.StaleApplied != 0 {
		t.Fatalf("round 1: out=%+v err=%v", out, err)
	}
	out, err := sys.StepRoundSupervised(split, all, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.StaleApplied != 1 {
		t.Fatalf("round 2: stale applied %d, want 1", out.StaleApplied)
	}
	sys.FinishRounds()
}

// TestStepRoundSkips: a round whose participants hold no training vertex is
// skipped rather than producing a degenerate loss.
func TestStepRoundSkips(t *testing.T) {
	sys, split := roundSystem(t, 34)
	active := make([]bool, sys.G.N)
	// Activate exactly one non-training device.
	inTrain := make(map[int]bool, len(split.Train))
	for _, v := range split.Train {
		inTrain[v] = true
	}
	for v := 0; v < sys.G.N; v++ {
		if !inTrain[v] {
			active[v] = true
			break
		}
	}
	out, err := sys.StepRoundSupervised(split, active, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Skipped {
		t.Fatal("round with no training vertex not skipped")
	}
}

// TestStepRoundValidation covers the argument guards.
func TestStepRoundValidation(t *testing.T) {
	sys, split := roundSystem(t, 35)
	if _, err := sys.StepRoundSupervised(split, make([]bool, 3), nil, 2); err == nil {
		t.Fatal("wrong active length accepted")
	}
	if _, err := sys.StepRoundSupervised(split, make([]bool, sys.G.N), make([]int, 3), 2); err == nil {
		t.Fatal("wrong delays length accepted")
	}
	if _, err := sys.StepRoundSupervised(nil, make([]bool, sys.G.N), nil, 2); err == nil {
		t.Fatal("nil split accepted")
	}
}

// TestDeviceUploadBytes: every device uploads at least its gradient and loss
// share, and retained neighbors add embedding pushes.
func TestDeviceUploadBytes(t *testing.T) {
	sys, _ := roundSystem(t, 36)
	up := sys.DeviceUploadBytes()
	if len(up) != sys.G.N {
		t.Fatalf("%d upload sizes for %d devices", len(up), sys.G.N)
	}
	model := sys.ModelBytes()
	for v, b := range up {
		if b < model {
			t.Fatalf("device %d uploads %d bytes, below the %d-byte gradient", v, b, model)
		}
	}
}

// TestDefaultShardCountAutoTune checks the CPU-aware default.
func TestDefaultShardCountAutoTune(t *testing.T) {
	got := defaultShardCount()
	want := 4 * runtime.NumCPU()
	if want < DefaultShards {
		want = DefaultShards
	}
	if got != want {
		t.Fatalf("defaultShardCount() = %d, want %d", got, want)
	}
}
