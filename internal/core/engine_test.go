package core

import (
	"math/rand"
	"testing"

	"lumos/internal/graph"
	"lumos/internal/nn"
)

// engineGraph builds a small power-law graph shared by the engine tests.
func engineGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "engine", N: 120, M: 640, Classes: 2, FeatureDim: 12,
		PowerLaw: 2.2, Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// supervisedLosses trains a fresh supervised system and returns its losses.
func supervisedLosses(t testing.TB, g *graph.Graph, cfg Config) []float64 {
	t.Helper()
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Task = Supervised
	sys, err := NewSystem(g, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.TrainSupervised(split)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Losses
}

// unsupervisedLosses trains a fresh link-prediction system and returns its
// losses.
func unsupervisedLosses(t testing.TB, g *graph.Graph, cfg Config) []float64 {
	t.Helper()
	es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Task = Unsupervised
	sys, err := NewSystem(es.TrainGraph, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.TrainUnsupervised(es)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Losses
}

func requireIdentical(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: loss traces differ in length: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: losses diverge at epoch %d: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestWorkerCountInvariance is the engine's golden determinism guarantee:
// with a fixed seed, Workers=1 and Workers=8 produce bit-identical loss
// traces — and so do two consecutive runs of the same setting — for both
// the supervised and the unsupervised trainer, under both backbones.
func TestWorkerCountInvariance(t *testing.T) {
	g := engineGraph(t, 9)
	for _, bb := range []nn.Backbone{nn.GCN, nn.GAT} {
		base := Config{Backbone: bb, Epochs: 6, MCMCIterations: 20, Seed: 9}

		w1 := base
		w1.Workers = 1
		w8 := base
		w8.Workers = 8

		sup1 := supervisedLosses(t, g, w1)
		sup8 := supervisedLosses(t, g, w8)
		requireIdentical(t, bb.String()+"/supervised workers 1 vs 8", sup1, sup8)
		requireIdentical(t, bb.String()+"/supervised repeat run", sup1, supervisedLosses(t, g, w1))

		uns1 := unsupervisedLosses(t, g, w1)
		uns8 := unsupervisedLosses(t, g, w8)
		requireIdentical(t, bb.String()+"/unsupervised workers 1 vs 8", uns1, uns8)
		requireIdentical(t, bb.String()+"/unsupervised repeat run", uns1, unsupervisedLosses(t, g, w8))

		if sup1[len(sup1)-1] >= sup1[0] {
			t.Fatalf("%s: supervised loss did not improve: %v -> %v", bb, sup1[0], sup1[len(sup1)-1])
		}
	}
}

// TestAsyncSchedulingDeterminism checks that staleness-bounded async runs
// are exactly as reproducible as sync ones, across worker counts.
func TestAsyncSchedulingDeterminism(t *testing.T) {
	g := engineGraph(t, 11)
	base := Config{Epochs: 6, MCMCIterations: 20, Sched: SchedAsync, Staleness: 2, Seed: 11}
	w1 := base
	w1.Workers = 1
	w8 := base
	w8.Workers = 8
	a := supervisedLosses(t, g, w1)
	b := supervisedLosses(t, g, w8)
	requireIdentical(t, "async workers 1 vs 8", a, b)
	requireIdentical(t, "async repeat run", a, supervisedLosses(t, g, w1))
}

// TestAsyncDiffersFromSync guards against the async path silently being a
// no-op: delaying straggler gradients must actually change the trajectory.
func TestAsyncDiffersFromSync(t *testing.T) {
	g := engineGraph(t, 12)
	sync := Config{Epochs: 6, MCMCIterations: 20, Seed: 12}
	async := Config{Epochs: 6, MCMCIterations: 20, Sched: SchedAsync, Staleness: 3, Seed: 12}
	a, b := supervisedLosses(t, g, sync), supervisedLosses(t, g, async)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("async scheduling produced an identical trajectory to sync")
	}
}

// TestAsyncReducesSimEpochTime checks the cost-model side of the scheduler
// knob: on a straggler-heavy graph, bounded staleness must lower the
// simulated epoch time.
func TestAsyncReducesSimEpochTime(t *testing.T) {
	g := engineGraph(t, 13)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) *TrainStats {
		cfg.Task = Supervised
		// Skip trimming so the workload distribution keeps its raw power-law
		// straggler, which async scheduling then amortizes.
		cfg.DisableTreeTrimming = true
		sys, err := NewSystem(g, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sys.TrainSupervised(split)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	syncStats := run(Config{Epochs: 2, Seed: 13})
	asyncStats := run(Config{Epochs: 2, Sched: SchedAsync, Staleness: 4, Seed: 13})
	if asyncStats.SimEpochTime >= syncStats.SimEpochTime {
		t.Fatalf("async epoch time %v not below sync %v", asyncStats.SimEpochTime, syncStats.SimEpochTime)
	}
}

// TestShardPartitionInvariants checks the structural contract of
// buildShards: shards are contiguous, cover every device exactly once, own
// every forest leaf exactly once, and the partition never depends on the
// worker count.
func TestShardPartitionInvariants(t *testing.T) {
	g := engineGraph(t, 14)
	for _, shardsCfg := range []int{0, 1, 5, 1000} {
		sys, err := NewSystem(g, g, Config{
			Task: Supervised, Epochs: 1, MCMCIterations: 10, Shards: shardsCfg, Seed: 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		shards := sys.eng.shards
		want := shardsCfg
		if want == 0 {
			want = defaultShardCount()
		}
		if want > g.N {
			want = g.N
		}
		if len(shards) != want {
			t.Fatalf("Shards=%d: got %d shards, want %d", shardsCfg, len(shards), want)
		}
		dev, leaves, nodes := 0, 0, 0
		for i, sh := range shards {
			if sh.lo != dev {
				t.Fatalf("shard %d starts at device %d, want %d", i, sh.lo, dev)
			}
			if sh.hi <= sh.lo {
				t.Fatalf("shard %d empty: [%d,%d)", i, sh.lo, sh.hi)
			}
			if len(sh.leafLocal) == 0 {
				t.Fatalf("shard %d has no leaves", i)
			}
			for j, r := range sh.leafLocal {
				if r < 0 || r >= sh.x.Rows() {
					t.Fatalf("shard %d leaf row %d outside [0,%d)", i, r, sh.x.Rows())
				}
				v := sh.leafVertex[j]
				if v < sh.lo || v >= sh.hi {
					// Leaves may represent neighbors outside the shard's
					// device range; only the owning tree must be inside.
					if v < 0 || v >= g.N {
						t.Fatalf("shard %d leaf vertex %d out of range", i, v)
					}
				}
			}
			dev = sh.hi
			leaves += len(sh.leafLocal)
			nodes += sh.x.Rows()
		}
		if dev != g.N {
			t.Fatalf("shards cover %d devices, want %d", dev, g.N)
		}
		if leaves != len(sys.Forest.LeafRows) {
			t.Fatalf("shards own %d leaves, forest has %d", leaves, len(sys.Forest.LeafRows))
		}
		if nodes != sys.Forest.NumNodes {
			t.Fatalf("shards hold %d nodes, forest has %d", nodes, sys.Forest.NumNodes)
		}
	}
}

// TestShardDelaysRanking checks the deterministic straggler schedule: the
// heaviest shard carries the full staleness bound, descending to zero.
func TestShardDelaysRanking(t *testing.T) {
	shards := []*shard{{work: 5}, {work: 40}, {work: 12}, {work: 40}}
	delays := shardDelays(shards, 2)
	// Ranking by (work desc, index asc): 1, 3, 2, 0.
	want := []int{0, 2, 0, 1}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delays = %v, want %v", delays, want)
		}
	}
	for _, d := range shardDelays(shards, 0) {
		if d != 0 {
			t.Fatal("sync delays must all be zero")
		}
	}
}

// TestStalenessRequiresAsync checks the config guard.
func TestStalenessRequiresAsync(t *testing.T) {
	cfg := Config{Staleness: 2}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Staleness without SchedAsync validated")
	}
	cfg = Config{Sched: SchedAsync}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Staleness != 1 {
		t.Fatalf("async default staleness = %d, want 1", cfg.Staleness)
	}
	if cfg.Workers <= 0 {
		t.Fatalf("default Workers = %d, want NumCPU", cfg.Workers)
	}
}
