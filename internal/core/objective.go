package core

import (
	"fmt"
	"math/rand"

	"lumos/internal/autodiff"
	"lumos/internal/graph"
)

// An Objective encapsulates everything task-specific about a training
// session: how the scalar loss is built from the pooled per-vertex
// embeddings, the per-epoch RNG-driven sampling that feeds it, the
// validation/test metric used for model selection and timelines, and the
// wire-traffic the task exchanges each step (including negative-sampling
// fetches). Everything else — sharded forward/backward, gradient
// aggregation, scheduling, partial participation — is task-agnostic and
// lives in the engine, so any surface that drives a Session (the epoch
// trainers, the discrete-event simulator, the eval timelines) works for
// every objective.
//
// Objectives are constructed by NewSupervisedObjective and
// NewUnsupervisedObjective and consumed by System.NewSession. The interface
// is sealed (its working methods are unexported): implementations need the
// system's internals, and keeping construction here is what guarantees the
// bit-determinism contracts the engine tests pin down.
type Objective interface {
	// Task reports which Config.Task the objective trains; NewSession
	// rejects an objective whose task differs from the system's.
	Task() Task
	// MetricName names the objective's evaluation metric as it should
	// appear in tables and timelines ("accuracy" or "AUC").
	MetricName() string

	// bind attaches the objective to an assembled system at session
	// creation and validates the fit (split shape, labels, …). An
	// objective serves one system at a time; binding it to a second,
	// different system is an error.
	bind(s *System) error
	// begin prepares one step restricted to the active devices (nil =
	// everyone): rebuilds loss weights, draws this step's RNG-driven
	// samples. usable reports whether the step carries any training
	// signal; an unusable step is skipped by the session.
	begin(active []bool) (usable bool)
	// loss builds the scalar task loss from the pooled per-vertex
	// embeddings prepared by begin.
	loss(pooled *autodiff.Value) *autodiff.Value
	// account records the step's wire traffic on the system's network
	// fabric for the active devices (nil = everyone).
	account(active []bool)
	// valMetric computes the validation metric for model selection
	// (higher is better); ok reports whether validation data exists.
	valMetric() (metric float64, ok bool, err error)
	// hasTestMetric reports whether the objective carries test data, i.e.
	// whether testMetric can succeed. Runners that evaluate on a schedule
	// (the simulator) check it up front instead of failing mid-run.
	hasTestMetric() bool
	// testMetric computes the test-side metric reported by timelines.
	testMetric() (float64, error)
}

// supervisedObjective is node classification (paper §VI-C a): every active
// device with a training vertex contributes its local cross-entropy; labels
// never leave the device.
type supervisedObjective struct {
	sys     *System
	split   *graph.NodeSplit
	weights []float64 // per-vertex CE weights, rebuilt each step
}

// NewSupervisedObjective builds the node-classification objective over a
// train/val/test vertex split. Validation vertices (when present) drive
// model selection; test vertices drive timeline accuracy points.
func NewSupervisedObjective(split *graph.NodeSplit) Objective {
	return &supervisedObjective{split: split}
}

func (o *supervisedObjective) Task() Task         { return Supervised }
func (o *supervisedObjective) MetricName() string { return "accuracy" }

func (o *supervisedObjective) bind(s *System) error {
	if o.sys != nil && o.sys != s {
		return fmt.Errorf("core: objective already bound to another system")
	}
	if o.split == nil {
		return fmt.Errorf("core: nil node split")
	}
	if len(o.split.IsTrain) != s.G.N {
		return fmt.Errorf("core: node split over %d vertices for %d devices", len(o.split.IsTrain), s.G.N)
	}
	o.sys = s
	if o.weights == nil {
		o.weights = make([]float64, s.G.N)
	}
	return nil
}

func (o *supervisedObjective) begin(active []bool) bool {
	for i := range o.weights {
		o.weights[i] = 0
	}
	usable := false
	for _, v := range o.split.Train {
		if active == nil || active[v] {
			o.weights[v] = 1
			usable = true
		}
	}
	return usable
}

func (o *supervisedObjective) loss(pooled *autodiff.Value) *autodiff.Value {
	logits := o.sys.Head.Forward(pooled)
	return autodiff.SoftmaxCrossEntropy(logits, o.sys.G.Labels, o.weights)
}

func (o *supervisedObjective) account(active []bool) {
	o.sys.accountEpochTraffic(active)
}

func (o *supervisedObjective) valMetric() (float64, bool, error) {
	if len(o.split.Val) == 0 {
		return 0, false, nil
	}
	m, err := o.sys.EvaluateAccuracy(o.split.IsVal)
	return m, true, err
}

func (o *supervisedObjective) hasTestMetric() bool { return len(o.split.Test) > 0 }

func (o *supervisedObjective) testMetric() (float64, error) {
	return o.sys.EvaluateAccuracy(o.split.IsTest)
}

// unsupervisedObjective is link prediction with negative sampling (paper
// §VI-C b, Eq. 33): every active device contributes logistic terms for its
// retained-neighbor pairs plus NegPerPos locally rejected negatives per
// positive, drawn fresh each step from the device's private RNG.
type unsupervisedObjective struct {
	sys *System
	val *graph.EdgeSplit // may be nil: no validation/test edges
	// Pair buffers are pooled across steps: begin re-fills them in place,
	// so steady-state sampling allocates nothing once capacity is reached.
	idxU, idxV []int
	ys         []float64
	negCount   int
}

// NewUnsupervisedObjective builds the link-prediction objective. val may be
// nil; when present, its validation edges drive model selection and its
// test edges drive timeline AUC points.
func NewUnsupervisedObjective(val *graph.EdgeSplit) Objective {
	return &unsupervisedObjective{val: val}
}

func (o *unsupervisedObjective) Task() Task         { return Unsupervised }
func (o *unsupervisedObjective) MetricName() string { return "AUC" }

func (o *unsupervisedObjective) bind(s *System) error {
	if o.sys != nil && o.sys != s {
		return fmt.Errorf("core: objective already bound to another system")
	}
	if o.val != nil {
		// The split must come from this system's graph: a mismatched one
		// would train fine and then panic deep inside evaluation.
		if o.val.TrainGraph != nil && o.val.TrainGraph.N != s.G.N {
			return fmt.Errorf("core: edge split over %d vertices for %d devices", o.val.TrainGraph.N, s.G.N)
		}
		for _, set := range [][][2]int{o.val.Val, o.val.ValNeg, o.val.Test, o.val.TestNeg} {
			for _, e := range set {
				if e[0] < 0 || e[0] >= s.G.N || e[1] < 0 || e[1] >= s.G.N {
					return fmt.Errorf("core: edge split endpoint %v outside %d devices", e, s.G.N)
				}
			}
		}
	}
	o.sys = s
	return nil
}

func (o *unsupervisedObjective) begin(active []bool) bool {
	o.idxU, o.idxV, o.ys, o.negCount = o.sys.samplePairs(o.idxU[:0], o.idxV[:0], o.ys[:0], active)
	return len(o.idxU) > 0
}

func (o *unsupervisedObjective) loss(pooled *autodiff.Value) *autodiff.Value {
	scores := autodiff.PairDot(pooled, o.idxU, o.idxV)
	return autodiff.LogisticLoss(scores, o.ys)
}

func (o *unsupervisedObjective) account(active []bool) {
	o.sys.accountEpochTraffic(active)
	o.sys.accountNegSampling(o.negCount)
}

func (o *unsupervisedObjective) valMetric() (float64, bool, error) {
	if o.val == nil || len(o.val.Val) == 0 {
		return 0, false, nil
	}
	m, err := o.sys.EvaluateAUC(o.val.Val, o.val.ValNeg)
	return m, true, err
}

func (o *unsupervisedObjective) hasTestMetric() bool {
	return o.val != nil && len(o.val.Test) > 0
}

func (o *unsupervisedObjective) testMetric() (float64, error) {
	if !o.hasTestMetric() {
		return 0, fmt.Errorf("core: unsupervised objective has no test edges")
	}
	return o.sys.EvaluateAUC(o.val.Test, o.val.TestNeg)
}

// SplitForTask draws the paper's default split for the task over g (nodes
// 50/25/25 supervised, edges 80/5/15 unsupervised) and returns the graph to
// train on (g itself, or the training-edge subgraph) together with a
// factory for fresh objectives over that split — an objective binds to one
// system, so every system a runner builds needs its own. This is the shared
// task switch behind eval.RunSimTimeline and the lumos-sim CLI; new
// objectives plug into both by extending it here once.
func SplitForTask(g *graph.Graph, task Task, rng *rand.Rand) (*graph.Graph, func() Objective, error) {
	switch task {
	case Supervised:
		split, err := graph.SplitNodes(g, 0.5, 0.25, rng)
		if err != nil {
			return nil, nil, err
		}
		return g, func() Objective { return NewSupervisedObjective(split) }, nil
	case Unsupervised:
		es, err := graph.SplitEdges(g, 0.8, 0.05, rng)
		if err != nil {
			return nil, nil, err
		}
		return es.TrainGraph, func() Objective { return NewUnsupervisedObjective(es) }, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown task %v", task)
	}
}
