package core

import (
	"fmt"
	"math/rand"

	"lumos/internal/balance"
	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/nn"
	"lumos/internal/tensor"
	"lumos/internal/tree"
)

// System is a fully assembled Lumos deployment over one graph: devices,
// server, network fabric, balanced trees, forest, and the shared model.
type System struct {
	Cfg Config
	// G is the graph trees are built on (for unsupervised training this is
	// the training-edge subgraph); Full is the complete graph, used only
	// for knowledge each device legitimately has (its own full neighbor
	// list, for negative sampling) and for evaluation.
	G    *graph.Graph
	Full *graph.Graph

	Devices []*fed.Device
	Server  *fed.Server
	Net     *fed.Network

	Balanced *balance.Result
	Trees    []*tree.Tree
	Forest   *Forest

	Encoder *nn.GNN
	Head    *nn.Linear // supervised head; nil for unsupervised
	opt     *nn.Adam
	eng     *engine

	// legacySess/legacySplit back the deprecated StepRoundSupervised
	// wrapper: one cached session per node split.
	legacySess  *Session
	legacySplit *graph.NodeSplit
}

// NewSystem builds a Lumos system: devices are instantiated, the tree
// constructor runs (greedy init + MCMC, or the w.o.-TT bypass), trees are
// built (or flattened for w.o. VN), the LDP embedding initialization
// exchanges encoded features, and the shared model is created.
//
// full may equal g (supervised). For unsupervised training pass the
// training subgraph as g and the complete graph as full.
func NewSystem(g, full *graph.Graph, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Kernels != "" {
		// Validated just above; the path is process-global, so only an
		// explicit setting touches it (leaving "" preserves whatever the
		// process selected, usually the blocked default).
		p, _ := tensor.ParseKernelPath(cfg.Kernels)
		tensor.SetKernelPath(p)
	}
	if g == nil || full == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if g.N != full.N {
		return nil, fmt.Errorf("core: train graph has %d vertices, full graph %d", g.N, full.N)
	}
	s := &System{
		Cfg:     cfg,
		G:       g,
		Full:    full,
		Devices: fed.NewDevices(g, cfg.Seed),
		Server:  fed.NewServer(cfg.Seed),
		Net:     fed.NewNetwork(g.N),
	}

	// Tree constructor (§V).
	if cfg.DisableTreeTrimming {
		s.Balanced = balance.WithoutTrimming(g)
	} else {
		res, err := balance.Balance(g, s.Devices, s.Server, balance.Config{
			Iterations: cfg.MCMCIterations,
			Secure:     cfg.SecureCompare,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("core: tree trimming: %w", err)
		}
		if err := balance.VerifyCover(g, res.Retained); err != nil {
			return nil, fmt.Errorf("core: covering constraint violated: %w", err)
		}
		s.Balanced = res
		s.Net.AbsorbSecure(res.SMC)
		for i := 0; i < res.ControlMessages; i++ {
			s.Net.Send(fed.ServerID, fed.ServerID, fed.MsgControl, 16)
		}
	}
	s.Trees = buildTrees(g, s.Balanced.Retained, cfg.DisableVirtualNodes)

	// Tree-based GNN trainer setup (§VI-A embedding initialization).
	forest, err := buildForest(g, s.Trees, s.Devices, cfg.Epsilon, !cfg.DisableRowNorm, s.Net)
	if err != nil {
		return nil, err
	}
	s.Forest = forest

	// Shared model.
	modelRng := rand.New(rand.NewSource(cfg.Seed ^ 0x6d6f64656c))
	enc, err := nn.NewGNN(nn.GNNConfig{
		Backbone: cfg.Backbone,
		InDim:    g.FeatureDim(),
		Hidden:   cfg.Hidden,
		OutDim:   cfg.OutDim,
		Layers:   cfg.Layers,
		Heads:    cfg.Heads,
		Dropout:  cfg.Dropout,
	}, modelRng)
	if err != nil {
		return nil, err
	}
	s.Encoder = enc
	if cfg.Task == Supervised {
		if g.NumClasses < 2 || g.Labels == nil {
			return nil, fmt.Errorf("core: supervised task needs labels and ≥2 classes")
		}
		s.Head = nn.NewLinear("head", cfg.OutDim, g.NumClasses, modelRng)
	}
	s.opt = nn.NewAdam(cfg.LearningRate)
	s.opt.WeightDecay = cfg.WeightDecay

	// Device-parallel training engine: shard the forest and prepare
	// per-shard weight views and RNG streams.
	s.eng = newEngine(s)
	return s, nil
}

// Params returns all trainable parameters of the shared model.
func (s *System) Params() []*nn.Param {
	ps := s.Encoder.Params()
	if s.Head != nil {
		ps = append(ps, s.Head.Params()...)
	}
	return ps
}

// Workloads returns the per-device workload values wl(v).
func (s *System) Workloads() []int {
	return append([]int(nil), s.Balanced.Workloads...)
}
