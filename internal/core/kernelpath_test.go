package core

import (
	"testing"

	"lumos/internal/nn"
	"lumos/internal/tensor"
)

// TestKernelPathsBitIdentical trains full GCN and GAT systems under the
// scalar reference kernels and under the blocked+fused default, and requires
// identical loss traces down to the last bit. Combined with the pre-session
// golden traces (which run on the default path), this pins both kernel paths
// to the frozen summation-order contract.
func TestKernelPathsBitIdentical(t *testing.T) {
	// NewSystem applies cfg.Kernels process-globally; restore the default so
	// test order can't leak the reference path into other tests.
	defer tensor.SetKernelPath(tensor.PathBlocked)

	g := engineGraph(t, 9)
	for _, bb := range []nn.Backbone{nn.GCN, nn.GAT} {
		cfg := Config{
			Backbone: bb, Epochs: 4, MCMCIterations: 20,
			Workers: 1, Shards: 16, Seed: 9,
		}

		cfg.Kernels = "reference"
		supRef := supervisedLosses(t, g, cfg)
		unsRef := unsupervisedLosses(t, g, cfg)

		cfg.Kernels = "blocked"
		supBlk := supervisedLosses(t, g, cfg)
		unsBlk := unsupervisedLosses(t, g, cfg)

		requireIdentical(t, bb.String()+" supervised reference vs blocked", supRef, supBlk)
		requireIdentical(t, bb.String()+" unsupervised reference vs blocked", unsRef, unsBlk)
	}
}
