package core

import (
	"fmt"
	"time"

	"lumos/internal/autodiff"
	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/metrics"
	"lumos/internal/nn"
	"lumos/internal/tensor"
)

// TrainStats records a training run.
type TrainStats struct {
	Losses []float64
	// EpochTraffic[i] is the network traffic of epoch i (message counts by
	// kind, per-device message counts).
	EpochTraffic []fed.Traffic
	// AvgCommRoundsPerDevice is the mean number of messages a device
	// initiates per epoch — the Fig. 8a metric.
	AvgCommRoundsPerDevice float64
	// SimEpochTime is the straggler-dominated epoch wall-time estimate
	// from the cost model — the Fig. 8b metric.
	SimEpochTime time.Duration
	// MeasuredTime is the real CPU time the training loop took.
	MeasuredTime time.Duration
}

// forward runs the shared encoder over the sharded forest and pools leaf
// embeddings into per-vertex embeddings (paper Eq. 31, average pooling).
// Shards execute on the engine's worker pool; their partial poolings are
// combined in fixed shard order, so the result does not depend on Workers.
func (s *System) forward(training bool) *autodiff.Value {
	return s.eng.forward(training)
}

// TrainSupervised runs cfg.Epochs of supervised training: every device with
// a training-set vertex contributes its local cross-entropy (labels never
// leave the device); losses and gradients are aggregated synchronously and
// the shared model takes an Adam step (paper §VI-C a). It is a thin loop
// over a Session with a supervised Objective.
func (s *System) TrainSupervised(split *graph.NodeSplit) (*TrainStats, error) {
	sess, err := s.NewSession(NewSupervisedObjective(split))
	if err != nil {
		return nil, err
	}
	return sess.runEpochs()
}

// TrainUnsupervised runs cfg.Epochs of link-prediction training with
// negative sampling (paper §VI-C b, Eq. 33). Positive pairs come from each
// device's retained neighbor set; negatives are sampled by each device
// among vertices it knows are not its neighbors in the full graph. val may
// be nil; when present, its validation edges drive model selection. It is a
// thin loop over a Session with an unsupervised Objective.
func (s *System) TrainUnsupervised(val *graph.EdgeSplit) (*TrainStats, error) {
	sess, err := s.NewSession(NewUnsupervisedObjective(val))
	if err != nil {
		return nil, err
	}
	return sess.runEpochs()
}

// samplePairs builds one step's positive and negative pair lists for the
// active devices (nil = everyone), appending into the caller's buffers so
// steady-state sampling reuses their capacity. Returns the (re-sliced)
// parallel index slices, ±1 targets, and the number of negative fetches for
// traffic accounting. Each device draws from its own private RNG stream, so
// skipping absent devices never perturbs the draws of present ones.
func (s *System) samplePairs(idxU, idxV []int, ys []float64, active []bool) ([]int, []int, []float64, int) {
	negCount := 0
	for u := 0; u < s.G.N; u++ {
		if active != nil && !active[u] {
			continue
		}
		ret := s.Balanced.Retained[u]
		for _, v := range ret {
			idxU = append(idxU, u)
			idxV = append(idxV, v)
			ys = append(ys, 1)
		}
		// Negative sampling: device u knows its own complete neighbor list
		// (its ego network), so it can locally reject neighbors.
		want := len(ret) * s.Cfg.NegPerPos
		for drawn, attempts := 0, 0; drawn < want && attempts < 50*want+50; attempts++ {
			w := s.Devices[u].Rng.Intn(s.G.N)
			if w == u || s.Full.HasEdge(u, w) {
				continue
			}
			idxU = append(idxU, u)
			idxV = append(idxV, w)
			ys = append(ys, -1)
			drawn++
			negCount++
		}
	}
	return idxU, idxV, ys, negCount
}

// wireBytes is the single source of the per-message wire sizes (payload
// plus a 16-byte header): embedding shares, gradient/model shares, and
// loss-value shares. Every traffic accounter and the simulator's
// transfer-time estimates derive from these numbers, so they can never
// drift apart.
func (s *System) wireBytes() (embBytes, gradBytes, lossBytes int) {
	return 8*s.Cfg.OutDim + 16, 8*nn.CountParams(s.Encoder) + 16, 24
}

// accountEpochTraffic records the messages every epoch of either task
// sends: each present device pushes the embeddings of its neighbor leaves
// to their owner devices (the POOL exchange), shares its loss value, and
// contributes its gradient to the aggregation. active restricts the senders
// to a participation mask (nil = every device, the full-epoch trainers).
func (s *System) accountEpochTraffic(active []bool) {
	embBytes, gradBytes, lossBytes := s.wireBytes()
	for v, t := range s.Trees {
		if active != nil && !active[v] {
			continue
		}
		for _, u := range t.Retained {
			s.Net.Send(v, u, fed.MsgEmbedding, embBytes)
		}
		if s.Cfg.Task == Unsupervised {
			// Device v needs its retained neighbors' pooled embeddings to
			// evaluate Eq. 33.
			for _, u := range t.Retained {
				s.Net.Send(u, v, fed.MsgPooled, embBytes)
			}
		}
		s.Net.Send(v, (v+1)%s.G.N, fed.MsgLoss, lossBytes)
		s.Net.Send(v, (v+1)%s.G.N, fed.MsgGradient, gradBytes)
	}
}

// accountNegSampling records the embedding fetches for negative samples.
func (s *System) accountNegSampling(negCount int) {
	embBytes, _, _ := s.wireBytes()
	for i := 0; i < negCount; i++ {
		s.Net.Send(fed.ServerID, fed.ServerID, fed.MsgNegSample, embBytes)
	}
}

// finishStats derives the Fig. 8 metrics from the recorded traffic.
func (s *System) finishStats(stats *TrainStats) {
	if len(stats.EpochTraffic) == 0 {
		return
	}
	perDevice := 0.0
	var maxDeviceBytes int64
	for _, t := range stats.EpochTraffic {
		perDevice += t.AvgPerDevice()
		epochBytes := t.TotalBytes(fed.MsgEmbedding, fed.MsgPooled, fed.MsgNegSample,
			fed.MsgLoss, fed.MsgGradient)
		if s.G.N > 0 {
			if b := epochBytes / int64(s.G.N); b > maxDeviceBytes {
				maxDeviceBytes = b
			}
		}
	}
	stats.AvgCommRoundsPerDevice = perDevice / float64(len(stats.EpochTraffic))
	// Serialized rounds per epoch: embedding push, (unsup: pooled return +
	// negative fetch), loss share, gradient aggregate.
	rounds := 3
	if s.Cfg.Task == Unsupervised {
		rounds += 2
	}
	model := fed.DefaultCostModel()
	if s.Cfg.Sched == SchedAsync {
		// Bounded-staleness scheduling frees fast devices from the per-epoch
		// straggler barrier; the cost model amortizes the straggler instead.
		stats.SimEpochTime = model.EpochTimeAsync(s.Balanced.Workloads, rounds, maxDeviceBytes, s.Cfg.Staleness)
	} else {
		stats.SimEpochTime = model.EpochTime(s.Balanced.Workloads, rounds, maxDeviceBytes)
	}
}

// Embeddings returns the pooled per-vertex embeddings in evaluation mode.
func (s *System) Embeddings() *tensor.Matrix {
	return s.forward(false).Data.Clone()
}

// EvaluateAccuracy computes classification accuracy over the masked
// vertices (e.g. the test split) in evaluation mode. It scores exactly the
// Predictions a serving replica answers with, so a snapshot-reconstructed
// system reproduces this metric bit for bit.
func (s *System) EvaluateAccuracy(mask []bool) (float64, error) {
	pred, err := s.Predictions()
	if err != nil {
		return 0, fmt.Errorf("core: accuracy evaluation needs a supervised system")
	}
	return metrics.Accuracy(pred, s.G.Labels, mask)
}

// EvaluateAUC scores positive and negative vertex pairs with the embedding
// dot product and returns the ROC-AUC (paper Fig. 4 metric). The scores are
// exactly the PairScores a serving replica answers with.
func (s *System) EvaluateAUC(pos, neg [][2]int) (float64, error) {
	scores, err := s.PairScores(append(append(make([][2]int, 0, len(pos)+len(neg)), pos...), neg...))
	if err != nil {
		return 0, err
	}
	labels := make([]bool, len(scores))
	for i := range pos {
		labels[i] = true
	}
	return metrics.ROCAUC(scores, labels)
}
