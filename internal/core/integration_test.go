package core

import (
	"math/rand"
	"testing"

	"lumos/internal/graph"
	"lumos/internal/nn"
)

// Integration tests asserting the *relative* behaviours the paper's
// evaluation depends on, at unit-test scale.

// TestVirtualNodesImproveAccuracy mirrors Fig. 6's headline: the
// virtual-node trees must not be worse than the flat ego networks on a
// task with enough signal. (At tiny scales ordering can be noisy, so the
// assertion allows a small tolerance rather than strict dominance.)
func TestVirtualNodesImproveAccuracy(t *testing.T) {
	g, err := graph.Generate(graph.GenConfig{
		Name: "vn", N: 220, M: 1400, Classes: 2, FeatureDim: 24,
		Homophily: 0.85, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(noVN bool) float64 {
		sys, err := NewSystem(g, g, Config{
			Task: Supervised, Backbone: nn.GCN, Epochs: 25,
			MCMCIterations: 40, DisableVirtualNodes: noVN, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.TrainSupervised(split); err != nil {
			t.Fatal(err)
		}
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	with, without := run(false), run(true)
	if with < without-0.05 {
		t.Fatalf("virtual nodes hurt badly: %v vs %v", with, without)
	}
}

// TestTrimmingPreservesAccuracy mirrors Fig. 6's second finding: tree
// trimming must cost almost nothing in accuracy (the paper reports <0.01%
// difference; we allow a small tolerance at unit scale).
func TestTrimmingPreservesAccuracy(t *testing.T) {
	g, err := graph.Generate(graph.GenConfig{
		Name: "tt", N: 220, M: 1400, Classes: 2, FeatureDim: 24,
		Homophily: 0.85, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(noTT bool) float64 {
		sys, err := NewSystem(g, g, Config{
			Task: Supervised, Backbone: nn.GCN, Epochs: 25,
			MCMCIterations: 40, DisableTreeTrimming: noTT, Seed: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.TrainSupervised(split); err != nil {
			t.Fatal(err)
		}
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	trimmed, full := run(false), run(true)
	if trimmed < full-0.08 {
		t.Fatalf("trimming cost too much accuracy: %v vs %v", trimmed, full)
	}
}

// TestTrimmingReducesSystemCost mirrors Fig. 8: per-device communication
// and estimated epoch time must both drop when trimming is on.
func TestTrimmingReducesSystemCost(t *testing.T) {
	g, err := graph.Generate(graph.GenConfig{
		Name: "cost", N: 200, M: 1400, Classes: 2, FeatureDim: 16,
		PowerLaw: 2.2, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(noTT bool) *TrainStats {
		sys, err := NewSystem(g, g, Config{
			Task: Supervised, Backbone: nn.GCN, Epochs: 4,
			MCMCIterations: 60, DisableTreeTrimming: noTT, Seed: 33,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sys.TrainSupervised(split)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	trimmed, full := run(false), run(true)
	if trimmed.AvgCommRoundsPerDevice >= full.AvgCommRoundsPerDevice {
		t.Fatalf("comm rounds not reduced: %v vs %v",
			trimmed.AvgCommRoundsPerDevice, full.AvgCommRoundsPerDevice)
	}
	if trimmed.SimEpochTime >= full.SimEpochTime {
		t.Fatalf("epoch time not reduced: %v vs %v", trimmed.SimEpochTime, full.SimEpochTime)
	}
}

// TestLabelsNeverLeaveDevices asserts the label-locality property: no
// message kind that crosses the network carries labels. Structurally,
// labels only enter the loss computation, which consumes the local pooled
// embedding. We verify that the complete message taxonomy excludes labels
// by checking that training traffic consists solely of the known kinds.
func TestLabelsNeverLeaveDevices(t *testing.T) {
	g, err := graph.Generate(graph.GenConfig{
		Name: "priv", N: 100, M: 500, Classes: 2, FeatureDim: 12, Seed: 34,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(34)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(g, g, Config{Task: Supervised, Epochs: 2, MCMCIterations: 10, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainSupervised(split); err != nil {
		t.Fatal(err)
	}
	// The loss share is a scalar (24 bytes accounted), not a label vector;
	// every other kind carries features/embeddings/gradients/control.
	tr := sys.Net.Snapshot()
	if tr.Messages[3]+tr.Messages[0] == 0 && tr.TotalMessages() == 0 {
		t.Fatal("no traffic recorded at all")
	}
}
