package core

import (
	"math"
	"math/rand"
	"testing"

	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/nn"
	"lumos/internal/tree"
)

func testGraph(t *testing.T, n, m, classes int, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "core", N: n, M: m, Classes: classes, FeatureDim: 16,
		Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Hidden != 16 || cfg.OutDim != 16 || cfg.Layers != 2 || cfg.Heads != 4 {
		t.Fatalf("model defaults wrong: %+v", cfg)
	}
	if cfg.Epsilon != 2 || cfg.LearningRate != 0.01 || cfg.Epochs != 300 {
		t.Fatalf("training defaults wrong: %+v", cfg)
	}
	if cfg.NegPerPos != 1 || cfg.EvalEvery != 5 {
		t.Fatalf("aux defaults wrong: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Epsilon: -1},
		{LearningRate: -0.1},
		{Epochs: -5},
		{MCMCIterations: -1},
		{NegPerPos: -2},
		{Dropout: 1.5},
		{EvalEvery: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d should fail validation: %+v", i, cfg)
		}
	}
}

func TestTaskString(t *testing.T) {
	if Supervised.String() != "supervised" || Unsupervised.String() != "unsupervised" {
		t.Fatal("task names wrong")
	}
}

func TestNewSystemInvariants(t *testing.T) {
	g := testGraph(t, 90, 400, 3, 1)
	sys, err := NewSystem(g, g, Config{
		Task: Supervised, Backbone: nn.GCN, Epochs: 5, MCMCIterations: 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Trees) != g.N || len(sys.Devices) != g.N {
		t.Fatal("one tree and one device per vertex required")
	}
	for v, tr := range sys.Trees {
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v", v, err)
		}
		if tr.Center != v {
			t.Fatalf("tree %d centered at %d", v, tr.Center)
		}
	}
	// Forest dimensions: Σ nodes with offsets strictly increasing.
	total := 0
	for v, tr := range sys.Trees {
		if sys.Forest.Offsets[v] != total {
			t.Fatalf("offset[%d] = %d, want %d", v, sys.Forest.Offsets[v], total)
		}
		total += tr.NumNodes
	}
	if sys.Forest.NumNodes != total || sys.Forest.X.Rows() != total {
		t.Fatal("forest size mismatch")
	}
	// POOL coefficients per vertex sum to 1 (average pooling).
	sums := make([]float64, g.N)
	for i, gv := range sys.Forest.LeafVertex {
		sums[gv] += sys.Forest.PoolCoef[i]
	}
	for v, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("pool coefficients for %d sum to %v", v, s)
		}
	}
	// Covering constraint via trees: every edge in at least one tree.
	retained := make([]map[int]bool, g.N)
	for v, tr := range sys.Trees {
		retained[v] = map[int]bool{}
		for _, u := range tr.Retained {
			retained[v][u] = true
		}
	}
	for _, e := range g.Edges {
		if !retained[e[0]][e[1]] && !retained[e[1]][e[0]] {
			t.Fatalf("edge %v not covered by any tree", e)
		}
	}
	// LDP feature exchange recorded on the network.
	if sys.Net.Snapshot().Messages[fed.MsgFeature] == 0 {
		t.Fatal("no feature messages accounted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	g := testGraph(t, 60, 200, 2, 2)
	if _, err := NewSystem(nil, g, Config{}); err == nil {
		t.Fatal("nil graph must error")
	}
	small := testGraph(t, 61, 200, 2, 2)
	if _, err := NewSystem(g, small, Config{}); err == nil {
		t.Fatal("vertex count mismatch must error")
	}
	if _, err := NewSystem(g, g, Config{Epochs: -1}); err == nil {
		t.Fatal("invalid config must error")
	}
	// Featureless graph cannot build a forest.
	bare, err := graph.NewFromEdges(10, [][2]int{{0, 1}, {1, 2}}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(bare, bare, Config{Task: Supervised, MCMCIterations: 0}); err == nil {
		t.Fatal("featureless graph must error")
	}
}

func TestSupervisedTrainsAndImproves(t *testing.T) {
	g := testGraph(t, 120, 600, 2, 3)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(g, g, Config{
		Task: Supervised, Backbone: nn.GCN, Epochs: 30, MCMCIterations: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.TrainSupervised(split)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Losses) != 30 {
		t.Fatalf("loss trace %d entries", len(stats.Losses))
	}
	if stats.Losses[29] >= stats.Losses[0] {
		t.Fatalf("loss did not improve: %v -> %v", stats.Losses[0], stats.Losses[29])
	}
	acc, err := sys.EvaluateAccuracy(split.IsTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 { // 2 balanced classes: random = 0.5
		t.Fatalf("accuracy %v barely above chance", acc)
	}
	if stats.AvgCommRoundsPerDevice <= 0 || stats.SimEpochTime <= 0 {
		t.Fatal("system-cost stats missing")
	}
	if len(stats.EpochTraffic) != 30 {
		t.Fatal("per-epoch traffic missing")
	}
	// Every epoch sends embeddings, losses, and gradients.
	tr := stats.EpochTraffic[0]
	if tr.Messages[fed.MsgEmbedding] == 0 || tr.Messages[fed.MsgLoss] != g.N || tr.Messages[fed.MsgGradient] != g.N {
		t.Fatalf("epoch traffic wrong: %v", tr.Messages)
	}
}

func TestSupervisedWrongTaskErrors(t *testing.T) {
	g := testGraph(t, 60, 200, 2, 4)
	split, _ := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(4)))
	sys, err := NewSystem(g, g, Config{Task: Unsupervised, Epochs: 1, MCMCIterations: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainSupervised(split); err == nil {
		t.Fatal("supervised training on unsupervised system must error")
	}
	if _, err := sys.EvaluateAccuracy(split.IsTest); err == nil {
		t.Fatal("accuracy evaluation without a head must error")
	}
}

func TestUnsupervisedTrainsAndRanks(t *testing.T) {
	g := testGraph(t, 150, 900, 2, 5)
	es, err := graph.SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(es.TrainGraph, g, Config{
		Task: Unsupervised, Backbone: nn.GCN, Epochs: 30, MCMCIterations: 40, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.TrainUnsupervised(es)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Losses[len(stats.Losses)-1] >= stats.Losses[0] {
		t.Fatal("unsupervised loss did not improve")
	}
	auc, err := sys.EvaluateAUC(es.Test, es.TestNeg)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.6 {
		t.Fatalf("AUC %v barely above chance", auc)
	}
	// Unsupervised epochs additionally move pooled and negative-sample
	// embeddings.
	tr := stats.EpochTraffic[0]
	if tr.Messages[fed.MsgPooled] == 0 || tr.Messages[fed.MsgNegSample] == 0 {
		t.Fatalf("unsupervised traffic wrong: %v", tr.Messages)
	}
}

func TestAblationDisableVirtualNodes(t *testing.T) {
	g := testGraph(t, 80, 300, 2, 6)
	sys, err := NewSystem(g, g, Config{
		Task: Supervised, Epochs: 1, MCMCIterations: 10,
		DisableVirtualNodes: true, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range sys.Trees {
		for _, k := range tr.Kind {
			if k == tree.Root || k == tree.Parent {
				t.Fatal("w.o.-VN system contains virtual nodes")
			}
		}
	}
}

func TestAblationDisableTreeTrimming(t *testing.T) {
	g := testGraph(t, 80, 300, 2, 7)
	sys, err := NewSystem(g, g, Config{
		Task: Supervised, Epochs: 1, MCMCIterations: 10,
		DisableTreeTrimming: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range sys.Workloads() {
		if w != g.Degree(v) {
			t.Fatalf("w.o.-TT workload %d != degree %d", w, g.Degree(v))
		}
	}
	// With trimming the max workload must be strictly smaller.
	trimmed, err := NewSystem(g, g, Config{
		Task: Supervised, Epochs: 1, MCMCIterations: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.Balanced.MaxWorkload() >= sys.Balanced.MaxWorkload() {
		t.Fatalf("trimming did not reduce max workload: %d vs %d",
			trimmed.Balanced.MaxWorkload(), sys.Balanced.MaxWorkload())
	}
}

func TestDeterministicTraining(t *testing.T) {
	g := testGraph(t, 70, 250, 2, 8)
	split, _ := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(8)))
	run := func() []float64 {
		sys, err := NewSystem(g, g, Config{
			Task: Supervised, Epochs: 8, MCMCIterations: 20, Seed: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sys.TrainSupervised(split)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Losses
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d loss differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmbeddingsShapeAndFiniteness(t *testing.T) {
	g := testGraph(t, 60, 200, 2, 9)
	sys, err := NewSystem(g, g, Config{Task: Supervised, Epochs: 1, MCMCIterations: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	emb := sys.Embeddings()
	if emb.Rows() != g.N || emb.Cols() != 16 {
		t.Fatalf("embeddings %dx%d", emb.Rows(), emb.Cols())
	}
	for _, v := range emb.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding")
		}
	}
}

func TestEpsilonAffectsNoise(t *testing.T) {
	// Larger ε must put the recovered neighbor features closer to the
	// truth. Compare mean absolute deviation of neighbor-leaf rows without
	// row normalization (which would mask the scale).
	g := testGraph(t, 60, 240, 2, 10)
	dev := func(eps float64) float64 {
		sys, err := NewSystem(g, g, Config{
			Task: Supervised, Epochs: 1, MCMCIterations: 0,
			Epsilon: eps, DisableRowNorm: true, Seed: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		total, count := 0.0, 0
		for i, r := range sys.Forest.LeafRows {
			gv := sys.Forest.LeafVertex[i]
			row := sys.Forest.X.Row(r)
			truth := g.Features.Row(gv)
			for j := range row {
				total += math.Abs(row[j] - truth[j])
				count++
			}
		}
		return total / float64(count)
	}
	noisy, clean := dev(0.5), dev(64)
	if clean >= noisy {
		t.Fatalf("eps=64 deviation %v not below eps=0.5 deviation %v", clean, noisy)
	}
}

func TestGATBackboneRuns(t *testing.T) {
	g := testGraph(t, 60, 200, 2, 11)
	split, _ := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(11)))
	sys, err := NewSystem(g, g, Config{
		Task: Supervised, Backbone: nn.GAT, Epochs: 3, MCMCIterations: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainSupervised(split); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EvaluateAccuracy(split.IsTest); err != nil {
		t.Fatal(err)
	}
}

func TestSecureCompareEndToEnd(t *testing.T) {
	g := testGraph(t, 50, 150, 2, 12)
	sys, err := NewSystem(g, g, Config{
		Task: Supervised, Epochs: 1, MCMCIterations: 15, SecureCompare: true, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Balanced.SMC.OTs == 0 {
		t.Fatal("secure mode ran no OTs")
	}
	if sys.Net.Snapshot().Messages[fed.MsgSecure] == 0 {
		t.Fatal("secure traffic not absorbed into the network")
	}
}
