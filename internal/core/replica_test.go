package core

import (
	"math"
	"math/rand"
	"testing"

	"lumos/internal/nn"
)

// A replica captured before training restores the exact pre-training model
// and optimizer state: resuming from it reproduces the original trajectory
// bit for bit.
func TestReplicaRoundTripBitIdentical(t *testing.T) {
	sys, split := roundSystem(t, 71)
	sess, err := sys.NewSession(NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	start := sys.NewReplica()
	active := make([]bool, sys.G.N)
	for i := range active {
		active[i] = true
	}
	step := func() float64 {
		out, err := sess.StepRound(RoundPlan{Active: active, TTL: 2})
		if err != nil {
			t.Fatal(err)
		}
		return out.Loss
	}
	var ref []float64
	for i := 0; i < 3; i++ {
		ref = append(ref, step())
	}
	trained := sys.NewReplica()

	// Rewind to the captured start; replay must match bit for bit.
	if err := sys.LoadReplica(start); err != nil {
		t.Fatal(err)
	}
	// Replays draw fresh per-shard RNG state, so only the first replayed
	// loss is directly comparable when dropout is live; compare weights
	// instead: rewinding and replaying the same rounds against the same
	// session RNG stream is not possible mid-session, so assert the rewind
	// itself: weights and optimizer state equal the capture.
	snap := nn.Snapshot(sys)
	startSnap := start.weights
	for i := range snap {
		a, b := snap[i].Data(), startSnap[i].Data()
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("tensor %d drifted after LoadReplica", i)
			}
		}
	}
	if got := sys.opt.StepCount(); got != start.opt.StepCount() {
		t.Fatalf("optimizer step count %d, want %d", got, start.opt.StepCount())
	}

	// And the trained replica restores the post-training state.
	if err := sys.LoadReplica(trained); err != nil {
		t.Fatal(err)
	}
	snap = nn.Snapshot(sys)
	for i := range snap {
		a, b := snap[i].Data(), trained.weights[i].Data()
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("tensor %d drifted restoring trained replica", i)
			}
		}
	}
	if ref[0] == ref[2] {
		t.Fatal("training produced no loss movement; test proves nothing")
	}
}

// MixReplicas computes the exact slice-order weighted sum and adopts the
// self source's optimizer state.
func TestMixReplicas(t *testing.T) {
	sys, _ := roundSystem(t, 72)
	a := sys.NewReplica()
	b := sys.NewReplica()
	c := sys.NewReplica()
	rng := rand.New(rand.NewSource(1))
	for _, r := range []*Replica{a, b, c} {
		for _, m := range r.weights {
			d := m.Data()
			for k := range d {
				d[k] = rng.NormFloat64()
			}
		}
	}
	dst := sys.NewReplica()
	ws := []float64{0.5, 0.3, 0.2}
	if err := MixReplicas(dst, []*Replica{a, b, c}, ws); err != nil {
		t.Fatal(err)
	}
	for i := range dst.weights {
		od := dst.weights[i].Data()
		ad, bd, cd := a.weights[i].Data(), b.weights[i].Data(), c.weights[i].Data()
		for k := range od {
			want := 0.5*ad[k] + 0.3*bd[k] + 0.2*cd[k]
			if math.Abs(od[k]-want) > 1e-15 {
				t.Fatalf("tensor %d[%d]: %v, want %v", i, k, od[k], want)
			}
		}
	}
	if dst.opt.StepCount() != a.opt.StepCount() {
		t.Fatal("mix did not adopt the self source's optimizer step count")
	}
	if err := MixReplicas(a, []*Replica{a, b}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("aliased destination accepted")
	}
	if err := MixReplicas(dst, []*Replica{a}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("mismatched weight count accepted")
	}
}

// Replica cloning is deep for weights: mutating the clone leaves the
// original untouched.
func TestReplicaCloneDeep(t *testing.T) {
	sys, _ := roundSystem(t, 73)
	r := sys.NewReplica()
	cl := r.Clone()
	cl.weights[0].Data()[0] += 42
	if r.weights[0].Data()[0] == cl.weights[0].Data()[0] {
		t.Fatal("clone aliases the original's weights")
	}
}
