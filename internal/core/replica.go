package core

import (
	"fmt"

	"lumos/internal/nn"
	"lumos/internal/tensor"
)

// A Replica is one device's private copy of the shared model: every
// trainable weight plus the device's own Adam state (step count and
// moments). Replicas are the multi-model substrate behind decentralized
// (gossip) training, where no central aggregator holds "the" model — the
// simulator keeps one replica per device, loads it into the System to run
// that device's local step, stores the result back, and mixes neighbors'
// replicas with MixReplicas.
//
// A replica never aliases live training state: Load and Store copy in both
// directions, so replicas can be held across rounds, cloned for
// best-snapshot tracking, and mixed freely.
type Replica struct {
	weights []*tensor.Matrix
	opt     *nn.OptState
}

// NewReplica captures the system's current weights and optimizer state as a
// fresh replica — the seed state every device starts gossip training from.
func (s *System) NewReplica() *Replica {
	return &Replica{
		weights: nn.Snapshot(s),
		opt:     s.opt.CaptureState(s.Params()),
	}
}

// LoadReplica installs the replica into the system: weights are copied into
// the model parameters and the optimizer's state becomes the replica's.
// After this, Session.StepRound trains exactly as if the system had always
// held this replica.
func (s *System) LoadReplica(r *Replica) error {
	params := s.Params()
	if len(r.weights) != len(params) {
		return fmt.Errorf("core: replica has %d tensors for %d params", len(r.weights), len(params))
	}
	nn.Restore(s, r.weights)
	s.opt.RestoreState(params, r.opt)
	return nil
}

// StoreReplica copies the system's current weights and optimizer state back
// into the replica, reusing its weight buffers.
func (s *System) StoreReplica(r *Replica) error {
	params := s.Params()
	if len(r.weights) != len(params) {
		return fmt.Errorf("core: replica has %d tensors for %d params", len(r.weights), len(params))
	}
	for i, p := range params {
		r.weights[i].CopyFrom(p.V.Data)
	}
	r.opt = s.opt.CaptureState(params)
	return nil
}

// Clone deep-copies the replica — used for best-validation snapshot
// tracking across gossip rounds.
func (r *Replica) Clone() *Replica {
	w := make([]*tensor.Matrix, len(r.weights))
	for i, m := range r.weights {
		w[i] = m.Clone()
	}
	return &Replica{weights: w, opt: r.opt}
}

// MixReplicas overwrites dst's weights with the weighted sum
// Σ ws[i]·srcs[i] — the neighbor-averaging step of gossip training. The sum
// runs in slice order, so callers control the floating-point reduction
// order exactly (the determinism contract: pass sources in a frozen order,
// e.g. self first, then neighbors ascending). Adam's moments mix with the
// same weights into a fresh state (nn.MixOptStates) — without moment
// averaging, per-device sign-normalized steps cancel in the consensus mean
// and decentralized training stalls; the step count adopts srcs[0]'s, by
// convention the device's own post-step half. dst must not appear in srcs:
// its weights are overwritten while sources are still being read.
func MixReplicas(dst *Replica, srcs []*Replica, ws []float64) error {
	if len(srcs) == 0 || len(srcs) != len(ws) {
		return fmt.Errorf("core: mixing %d replicas with %d weights", len(srcs), len(ws))
	}
	for _, s := range srcs {
		if s == dst {
			return fmt.Errorf("core: mix destination aliases a source")
		}
		if len(s.weights) != len(dst.weights) {
			return fmt.Errorf("core: mixing replicas of different shapes")
		}
	}
	for i, out := range dst.weights {
		od := out.Data()
		s0 := srcs[0].weights[i].Data()
		w0 := ws[0]
		for k := range od {
			od[k] = w0 * s0[k]
		}
		for j := 1; j < len(srcs); j++ {
			sd := srcs[j].weights[i].Data()
			wj := ws[j]
			for k := range od {
				od[k] += wj * sd[k]
			}
		}
	}
	states := make([]*nn.OptState, len(srcs))
	for i, s := range srcs {
		states[i] = s.opt
	}
	st, err := nn.MixOptStates(states, ws)
	if err != nil {
		return err
	}
	dst.opt = st
	return nil
}
