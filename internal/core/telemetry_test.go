package core

import (
	"bytes"
	"math/rand"
	"testing"

	"lumos/internal/graph"
	"lumos/internal/obs"
)

// TestDisabledTelemetryAllocBudget pins the telemetry contract the package
// doc promises: with Config.Metrics and Config.Tracer nil (the default), the
// instrumented Session.Step path allocates exactly what the uninstrumented
// one did — the epoch allocation budget holds unchanged. scripts/ci.sh runs
// this as a named gate.
func TestDisabledTelemetryAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is unreliable under -short (race) runs")
	}
	// Metrics and Tracer deliberately omitted: this is the disabled path.
	sys := allocSystem(t, Unsupervised)
	// A nil edge split keeps valMetric out of the steady state, exactly like
	// TestUnsupervisedSessionAllocBudget.
	sess, err := sys.NewSession(NewUnsupervisedObjective(nil))
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(10, step)
	if allocs > epochAllocBudget {
		t.Fatalf("disabled-telemetry session step allocates %.0f times, budget %d", allocs, epochAllocBudget)
	}
}

// TestTelemetryDoesNotPerturbTraining is the enabled-path twin: attaching a
// live metrics registry and wall-clock tracer must observe training, never
// steer it — loss traces with telemetry on are bit-identical to the default
// run, for both tasks.
func TestTelemetryDoesNotPerturbTraining(t *testing.T) {
	g := engineGraph(t, 31)
	base := Config{Epochs: 5, MCMCIterations: 20, Workers: 2, Seed: 31}
	instr := base
	instr.Metrics = obs.New()
	instr.Tracer = obs.NewTracer()

	requireIdentical(t, "supervised telemetry on vs off",
		supervisedLosses(t, g, base), supervisedLosses(t, g, instr))

	instr.Metrics, instr.Tracer = obs.New(), obs.NewTracer()
	requireIdentical(t, "unsupervised telemetry on vs off",
		unsupervisedLosses(t, g, base), unsupervisedLosses(t, g, instr))
}

// TestSessionMetricsExported checks the session's registry surface: after a
// short instrumented run the promised lumos_train_* series exist and agree
// with the session's own record.
func TestSessionMetricsExported(t *testing.T) {
	g := engineGraph(t, 32)
	reg := obs.New()
	tr := obs.NewTracer()
	cfg := Config{Task: Supervised, Epochs: 4, MCMCIterations: 15, Seed: 32,
		Metrics: reg, Tracer: tr}
	sys, err := NewSystem(g, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(NewSupervisedObjective(split))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Epochs; i++ {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sess.FinishRounds()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := obs.ParsePrometheus(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["lumos_train_steps_total"]; got != float64(cfg.Epochs) {
		t.Fatalf("lumos_train_steps_total = %v, want %d", got, cfg.Epochs)
	}
	if got := vals["lumos_train_step_seconds_count"]; got != float64(cfg.Epochs) {
		t.Fatalf("lumos_train_step_seconds_count = %v, want %d", got, cfg.Epochs)
	}
	losses := sess.Stats().Losses
	if got := vals["lumos_train_loss"]; got != losses[len(losses)-1] {
		t.Fatalf("lumos_train_loss = %v, want last loss %v", got, losses[len(losses)-1])
	}
	// The wall tracer recorded one epoch span per step plus the
	// finish-rounds instant.
	if tr.Len() < cfg.Epochs+1 {
		t.Fatalf("tracer recorded %d events, want >= %d", tr.Len(), cfg.Epochs+1)
	}
}
