package core

import (
	"math/rand"
	"testing"

	"lumos/internal/autodiff"
	"lumos/internal/graph"
	"lumos/internal/nn"
)

// Allocation-regression guard for the tape-based engine: once the per-shard
// tapes are warm, a steady-state training epoch must stay under a small
// fixed allocation budget. The budgets are ~4× the measured steady state
// (tens of allocations — slice headers and closures in the round
// bookkeeping), and orders of magnitude below the pre-tape engine
// (thousands of allocations per epoch: every op output, gradient, and
// scratch matrix was heap-allocated and GC'd). scripts/ci.sh runs these as
// the allocation gate.

// epochAllocBudget is the per-epoch allocation ceiling for a steady-state
// supervised or unsupervised engine epoch with Workers=1 and 32 shards.
// Measured: ~103 for either task (a few slice headers of round bookkeeping
// per shard); the pre-tape engine sat in the thousands at the same
// configuration.
const epochAllocBudget = 250

// allocSystem builds a single-worker system sized for the allocation tests.
// Shards is pinned so the budget does not scale with the host's CPU count.
func allocSystem(t *testing.T, task Task) *System {
	t.Helper()
	g := engineGraph(t, 21)
	sys, err := NewSystem(g, g, Config{
		Task: task, Epochs: 1, MCMCIterations: 10, Workers: 1, Shards: 32, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSupervisedEpochAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is unreliable under -short (race) runs")
	}
	sys := allocSystem(t, Supervised)
	weights := make([]float64, sys.G.N)
	for v := 0; v < sys.G.N; v++ {
		if v%2 == 0 {
			weights[v] = 1
		}
	}
	lossFn := func(pooled *autodiff.Value) *autodiff.Value {
		logits := sys.Head.Forward(pooled)
		return autodiff.SoftmaxCrossEntropy(logits, sys.G.Labels, weights)
	}
	// Warm the tapes, slabs, and gradient buffers.
	for i := 0; i < 3; i++ {
		sys.eng.step(lossFn)
	}
	allocs := testing.AllocsPerRun(10, func() {
		sys.eng.step(lossFn)
	})
	if allocs > epochAllocBudget {
		t.Fatalf("steady-state supervised epoch allocates %.0f times, budget %d", allocs, epochAllocBudget)
	}
}

func TestUnsupervisedEpochAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is unreliable under -short (race) runs")
	}
	sys := allocSystem(t, Unsupervised)
	// Fixed pair lists: samplePairs' slice growth is per-epoch input
	// assembly, not engine work, and the trainer reuses the engine exactly
	// like this with fresh slices.
	idxU, idxV, ys, _ := sys.samplePairs(nil, nil, nil, nil)
	if len(idxU) == 0 {
		t.Fatal("no training pairs")
	}
	lossFn := func(pooled *autodiff.Value) *autodiff.Value {
		scores := autodiff.PairDot(pooled, idxU, idxV)
		return autodiff.LogisticLoss(scores, ys)
	}
	for i := 0; i < 3; i++ {
		sys.eng.step(lossFn)
	}
	allocs := testing.AllocsPerRun(10, func() {
		sys.eng.step(lossFn)
	})
	if allocs > epochAllocBudget {
		t.Fatalf("steady-state unsupervised epoch allocates %.0f times, budget %d", allocs, epochAllocBudget)
	}
}

// TestUnsupervisedSessionAllocBudget extends the allocation gate to the
// full session path for the task with per-epoch sampling: a steady-state
// Session.Step — negative-sampling pair draw (pooled idxU/idxV/ys buffers),
// engine epoch, traffic accounting, stats append — must stay within the
// same budget. Before the pair buffers were pooled, every epoch rebuilt the
// three slices from nil (a dozen-plus grow-reallocations over thousands of
// pairs each).
func TestUnsupervisedSessionAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is unreliable under -short (race) runs")
	}
	sys := allocSystem(t, Unsupervised)
	// A nil edge split: validation-based model selection is not part of the
	// steady state being measured (the supervised trainer's is interleaved
	// eval, already covered by TestEvaluationDoesNotPerturbTraining).
	sess, err := sys.NewSession(NewUnsupervisedObjective(nil))
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the tapes, slabs, gradient buffers, pair buffers, and the stats
	// slices.
	for i := 0; i < 5; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(10, step)
	if allocs > epochAllocBudget {
		t.Fatalf("steady-state unsupervised session step allocates %.0f times, budget %d", allocs, epochAllocBudget)
	}
}

// TestTapeReuseMatchesFreshTapes is the tape-lifecycle golden at system
// level: recycling the per-shard tapes across epochs (the default) must
// produce bit-identical loss traces to rebuilding every tape from scratch
// each epoch (Config.NoTapeReuse), for several epochs, both backbones, and
// both tasks.
func TestTapeReuseMatchesFreshTapes(t *testing.T) {
	g := engineGraph(t, 22)
	for _, bb := range []nn.Backbone{nn.GCN, nn.GAT} {
		base := Config{Backbone: bb, Epochs: 5, MCMCIterations: 20, Workers: 2, Seed: 22}
		fresh := base
		fresh.NoTapeReuse = true

		requireIdentical(t, bb.String()+"/supervised reuse vs fresh",
			supervisedLosses(t, g, base), supervisedLosses(t, g, fresh))
		requireIdentical(t, bb.String()+"/unsupervised reuse vs fresh",
			unsupervisedLosses(t, g, base), unsupervisedLosses(t, g, fresh))
	}
}

// TestTapeReuseMatchesFreshTapesAsync extends the golden to the async
// scheduler, whose delayed-gradient queue detaches buffers from the view
// parameters — the one place tape-era buffers outlive an epoch.
func TestTapeReuseMatchesFreshTapesAsync(t *testing.T) {
	g := engineGraph(t, 23)
	base := Config{Epochs: 5, MCMCIterations: 20, Sched: SchedAsync, Staleness: 2, Workers: 2, Seed: 23}
	fresh := base
	fresh.NoTapeReuse = true
	requireIdentical(t, "async reuse vs fresh",
		supervisedLosses(t, g, base), supervisedLosses(t, g, fresh))
}

// TestEvaluationDoesNotPerturbTraining guards the tape-reset discipline
// around evaluation: interleaving eval-mode forwards (which reset and
// re-record the shard tapes) between training epochs must not change the
// training trajectory.
func TestEvaluationDoesNotPerturbTraining(t *testing.T) {
	g := engineGraph(t, 24)
	split, err := graph.SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(evalBetween bool) []float64 {
		sys, err := NewSystem(g, g, Config{Task: Supervised, Epochs: 1, MCMCIterations: 20, Seed: 24})
		if err != nil {
			t.Fatal(err)
		}
		weights := make([]float64, sys.G.N)
		for _, v := range split.Train {
			weights[v] = 1
		}
		lossFn := func(pooled *autodiff.Value) *autodiff.Value {
			return autodiff.SoftmaxCrossEntropy(sys.Head.Forward(pooled), sys.G.Labels, weights)
		}
		var losses []float64
		for epoch := 0; epoch < 6; epoch++ {
			losses = append(losses, sys.eng.step(lossFn))
			if evalBetween {
				if _, err := sys.EvaluateAccuracy(split.IsTest); err != nil {
					t.Fatal(err)
				}
			}
		}
		return losses
	}
	requireIdentical(t, "interleaved eval must not change training", run(false), run(true))
}
