package core

import (
	"fmt"
	"runtime"

	"lumos/internal/graph"
	"lumos/internal/nn"
	"lumos/internal/tensor"
	"lumos/internal/tree"
)

// This file implements the inference side of the train→publish→serve loop:
// ForestState captures the per-device tree state a replica needs to answer
// queries, and NewInferenceSystem rebuilds an evaluation-only System from it.
// Reconstruction reuses the training engine's own shard partition and forward
// path, so with the same weights, forest, and shard count the pooled
// embeddings — and therefore every prediction and pair score — are
// bit-identical to the training process's EvaluateAccuracy / EvaluateAUC.

// ForestState is the serializable inference state of a System: the shape of
// every device tree (node counts plus local message-passing edges) and the
// flattened forest the encoder runs over (initial leaf embeddings and the
// Eq. 31 pooling index arrays). Together with the encoder and head weights it
// is everything a serving replica needs; it carries no raw features, labels,
// or graph edges beyond what the LDP-initialized forest already encodes.
type ForestState struct {
	// N is the device/vertex count.
	N int
	// TreeNodes[v] is device v's tree node count; TreeEdges[v] its local
	// undirected edges (indices in [0, TreeNodes[v])).
	TreeNodes []int
	TreeEdges [][][2]int
	// X holds the initial forest-row embeddings (sum(TreeNodes) × InDim).
	X *tensor.Matrix
	// LeafRows/LeafVertex/PoolCoef mirror Forest's pooling arrays: the i-th
	// leaf's forest row (strictly ascending), its global vertex, and its
	// average-pooling coefficient.
	LeafRows   []int
	LeafVertex []int
	PoolCoef   []float64
}

// ForestState snapshots the system's forest and tree shapes into a
// self-contained, deep-copied state: training may continue mutating the
// system afterwards without affecting the capture.
func (s *System) ForestState() *ForestState {
	fs := &ForestState{
		N:          s.G.N,
		TreeNodes:  make([]int, len(s.Trees)),
		TreeEdges:  make([][][2]int, len(s.Trees)),
		X:          s.Forest.X.Clone(),
		LeafRows:   append([]int(nil), s.Forest.LeafRows...),
		LeafVertex: append([]int(nil), s.Forest.LeafVertex...),
		PoolCoef:   append([]float64(nil), s.Forest.PoolCoef...),
	}
	for v, t := range s.Trees {
		fs.TreeNodes[v] = t.NumNodes
		fs.TreeEdges[v] = append([][2]int(nil), t.Edges...)
	}
	return fs
}

// Validate checks the state's internal consistency: a corrupt or hand-built
// state must fail here, never panic inside the engine.
func (fs *ForestState) Validate() error {
	if fs == nil {
		return fmt.Errorf("core: nil forest state")
	}
	if fs.N <= 0 {
		return fmt.Errorf("core: forest state has %d devices", fs.N)
	}
	if len(fs.TreeNodes) != fs.N || len(fs.TreeEdges) != fs.N {
		return fmt.Errorf("core: forest state has %d node counts and %d edge lists for %d devices",
			len(fs.TreeNodes), len(fs.TreeEdges), fs.N)
	}
	total := 0
	for v, n := range fs.TreeNodes {
		if n < 1 {
			return fmt.Errorf("core: device %d tree has %d nodes", v, n)
		}
		total += n
		for _, e := range fs.TreeEdges[v] {
			if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
				return fmt.Errorf("core: device %d tree edge (%d,%d) out of range [0,%d)", v, e[0], e[1], n)
			}
		}
	}
	if fs.X == nil {
		return fmt.Errorf("core: forest state has no embedding matrix")
	}
	if fs.X.Rows() != total {
		return fmt.Errorf("core: forest state has %d embedding rows for %d tree nodes", fs.X.Rows(), total)
	}
	if len(fs.LeafVertex) != len(fs.LeafRows) || len(fs.PoolCoef) != len(fs.LeafRows) {
		return fmt.Errorf("core: forest state leaf arrays disagree (%d rows, %d vertices, %d coefficients)",
			len(fs.LeafRows), len(fs.LeafVertex), len(fs.PoolCoef))
	}
	leafCount := make([]int, fs.N)
	prev := -1
	for i, row := range fs.LeafRows {
		if row <= prev || row >= total {
			return fmt.Errorf("core: forest state leaf row %d at index %d not strictly ascending in [0,%d)", row, i, total)
		}
		prev = row
		gv := fs.LeafVertex[i]
		if gv < 0 || gv >= fs.N {
			return fmt.Errorf("core: forest state leaf vertex %d out of range [0,%d)", gv, fs.N)
		}
		leafCount[gv]++
		if c := fs.PoolCoef[i]; !(c > 0 && c <= 1) {
			return fmt.Errorf("core: forest state pooling coefficient %v outside (0,1]", c)
		}
	}
	for v, c := range leafCount {
		if c == 0 {
			return fmt.Errorf("core: vertex %d unrepresented in forest state", v)
		}
	}
	return nil
}

// NewInferenceSystem rebuilds an evaluation-only System from a captured
// forest state and trained modules. head may be nil (link scoring only).
// shards must be the training system's resolved ShardCount(): the shard
// partition fixes the floating-point reduction order of the pooled
// embeddings, so matching it makes inference bit-identical to the trainer.
// workers sizes the forward worker pool (0 = one per CPU; results
// identical).
//
// The returned System supports the evaluation surface only — forward passes
// (Embeddings, Predictions, PairScores, EvaluateAccuracy with caller-side
// labels is unavailable: the state carries none) — and must not be trained:
// it has no devices, balancer, network fabric, or optimizer.
func NewInferenceSystem(fs *ForestState, enc *nn.GNN, head *nn.Linear, shards, workers int) (*System, error) {
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	if enc == nil {
		return nil, fmt.Errorf("core: inference system needs an encoder")
	}
	if enc.Cfg.InDim != fs.X.Cols() {
		return nil, fmt.Errorf("core: encoder expects %d input features, forest state has %d", enc.Cfg.InDim, fs.X.Cols())
	}
	if head != nil && head.In != enc.Cfg.OutDim {
		return nil, fmt.Errorf("core: head expects %d-dim embeddings, encoder emits %d", head.In, enc.Cfg.OutDim)
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: inference system needs a positive shard count, got %d", shards)
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	if workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", workers)
	}

	trees := make([]*tree.Tree, fs.N)
	forest := &Forest{
		X:          fs.X,
		LeafRows:   fs.LeafRows,
		LeafVertex: fs.LeafVertex,
		PoolCoef:   fs.PoolCoef,
		Offsets:    make([]int, fs.N),
	}
	total := 0
	for v := range trees {
		// The engine only consumes tree shapes (NumNodes + Edges); kinds and
		// vertex maps live implicitly in the leaf arrays.
		trees[v] = &tree.Tree{Center: v, NumNodes: fs.TreeNodes[v], Edges: fs.TreeEdges[v]}
		forest.Offsets[v] = total
		total += fs.TreeNodes[v]
	}
	forest.NumNodes = total

	task := Unsupervised
	if head != nil {
		task = Supervised
	}
	s := &System{
		Cfg: Config{
			Task:     task,
			Backbone: enc.Cfg.Backbone,
			Hidden:   enc.Cfg.Hidden,
			OutDim:   enc.Cfg.OutDim,
			Layers:   enc.Cfg.Layers,
			Heads:    enc.Cfg.Heads,
			Dropout:  enc.Cfg.Dropout,
			Workers:  workers,
			Shards:   shards,
		},
		G:       &graph.Graph{Name: "inference", N: fs.N},
		Forest:  forest,
		Trees:   trees,
		Encoder: enc,
		Head:    head,
	}
	s.eng = newEngine(s)
	return s, nil
}

// Predictions returns every vertex's argmax class in evaluation mode —
// exactly the predictions EvaluateAccuracy scores.
func (s *System) Predictions() ([]int, error) {
	if s.Head == nil {
		return nil, fmt.Errorf("core: class predictions need a supervised system")
	}
	pooled := s.forward(false)
	logits := s.Head.Forward(pooled)
	pred := make([]int, s.G.N)
	for v := 0; v < s.G.N; v++ {
		pred[v] = tensor.ArgMaxRow(logits.Data, v)
	}
	return pred, nil
}

// PairScores returns the embedding dot product of each vertex pair in
// evaluation mode — exactly the scores EvaluateAUC ranks.
func (s *System) PairScores(pairs [][2]int) ([]float64, error) {
	emb := s.forward(false).Data
	scores := make([]float64, len(pairs))
	for i, p := range pairs {
		if p[0] < 0 || p[0] >= s.G.N || p[1] < 0 || p[1] >= s.G.N {
			return nil, fmt.Errorf("core: pair (%d,%d) out of range [0,%d)", p[0], p[1], s.G.N)
		}
		scores[i] = tensor.RowDot(emb, p[0], emb, p[1])
	}
	return scores, nil
}
