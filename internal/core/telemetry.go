package core

import (
	"time"

	"lumos/internal/obs"
)

// sessionTelemetry binds a session's instruments. The zero value (enabled
// == false, every pointer nil) is the default and makes every record call
// a no-op without branching at call sites — instrument methods are
// nil-safe — so the telemetry-free training path stays bit- and
// allocation-identical to uninstrumented code. Timing reads (time.Now)
// are the one thing guarded by the enabled flag, since they are not free.
type sessionTelemetry struct {
	enabled bool
	tracer  *obs.Tracer

	steps      *obs.Counter
	rounds     *obs.Counter
	skipped    *obs.Counter
	stale      *obs.Counter
	selections *obs.Counter
	loss       *obs.Gauge
	queueDepth *obs.Gauge
	valBest    *obs.Gauge
	stepTime   *obs.Histogram
}

// sessionTrack is the tracer track id for session-level spans; device and
// server tracks in the simulator use their own ids.
const sessionTrack = 0

// newSessionTelemetry builds the instrument set from Config.Metrics and
// Config.Tracer. Both nil (the default) yields the zero (disabled) value.
func newSessionTelemetry(cfg *Config) sessionTelemetry {
	r, tr := cfg.Metrics, cfg.Tracer
	if r == nil && tr == nil {
		return sessionTelemetry{}
	}
	tr.SetTrackName(sessionTrack, "session")
	return sessionTelemetry{
		enabled: true,
		tracer:  tr,
		steps: r.Counter("lumos_train_steps_total",
			"Full-participation epoch steps executed"),
		rounds: r.Counter("lumos_train_rounds_total",
			"Partial-participation rounds executed"),
		skipped: r.Counter("lumos_train_rounds_skipped_total",
			"Rounds skipped for lack of training signal"),
		stale: r.Counter("lumos_train_stale_applied_total",
			"Queued stale shard gradients applied"),
		selections: r.Counter("lumos_train_model_selections_total",
			"Times validation improved and the best snapshot was replaced"),
		loss: r.Gauge("lumos_train_loss",
			"Loss of the most recent epoch or round"),
		queueDepth: r.Gauge("lumos_train_grad_queue_depth",
			"Shard gradients waiting in the staleness queue"),
		valBest: r.Gauge("lumos_train_val_best",
			"Best validation metric seen by model selection"),
		stepTime: r.Histogram("lumos_train_step_seconds",
			"Wall-clock duration of one epoch or round step", obs.DurationBuckets),
	}
}

// begin marks the start of a step/round; the returned value feeds finish.
func (t *sessionTelemetry) begin() time.Time {
	if !t.enabled {
		return time.Time{}
	}
	return time.Now()
}

// finishStep records one full-participation epoch.
func (t *sessionTelemetry) finishStep(se *Session, start time.Time, epoch int, loss float64) {
	if !t.enabled {
		return
	}
	t.steps.Inc()
	t.loss.Set(loss)
	t.queueDepth.Set(float64(se.sys.eng.queueDepth()))
	elapsed := time.Since(start).Seconds()
	t.stepTime.Observe(elapsed)
	if t.tracer != nil {
		end := t.tracer.Now()
		t.tracer.Span(sessionTrack, "train", "epoch", end-elapsed, end,
			map[string]any{"epoch": epoch, "loss": loss})
	}
}

// finishRound records one partial-participation round.
func (t *sessionTelemetry) finishRound(se *Session, start time.Time, round int, out RoundOutcome) {
	if !t.enabled {
		return
	}
	t.rounds.Inc()
	if out.Skipped {
		t.skipped.Inc()
	} else {
		t.loss.Set(out.Loss)
	}
	t.stale.Add(int64(out.StaleApplied))
	t.queueDepth.Set(float64(se.sys.eng.queueDepth()))
	elapsed := time.Since(start).Seconds()
	t.stepTime.Observe(elapsed)
	if t.tracer != nil {
		end := t.tracer.Now()
		t.tracer.Span(sessionTrack, "train", "round", end-elapsed, end,
			map[string]any{"round": round, "loss": out.Loss, "skipped": out.Skipped})
	}
}

// selected records a model-selection improvement (best snapshot replaced).
func (t *sessionTelemetry) selected(metric float64) {
	if !t.enabled {
		return
	}
	t.selections.Inc()
	t.valBest.Set(metric)
	t.tracer.Instant(sessionTrack, "train", "model-selected", t.tracer.Now(),
		map[string]any{"val": metric})
}

// drained records the terminal stale-gradient barrier / snapshot restore.
func (t *sessionTelemetry) drained(restored bool) {
	if !t.enabled {
		return
	}
	t.tracer.Instant(sessionTrack, "train", "finish-rounds", t.tracer.Now(),
		map[string]any{"restored_best": restored})
}
