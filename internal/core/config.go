// Package core assembles Lumos from its substrates: the heterogeneity-aware
// tree constructor (internal/tree + internal/balance, paper §V) and the
// tree-based GNN trainer (paper §VI) with LDP embedding initialization,
// per-device tree message passing, the cross-device POOL layer, and
// supervised / unsupervised loss computation over the fed simulation fabric.
//
// All devices' trees are evaluated as one block-diagonal "forest" graph on a
// single autodiff tape: that is numerically identical to every device
// running its own tree and exchanging embeddings, while the fed.Network
// still accounts each message a real deployment would send.
package core

import (
	"fmt"

	"lumos/internal/nn"
)

// Task selects the training objective.
type Task int

const (
	// Supervised trains node classification with local labels (§VI-C a).
	Supervised Task = iota
	// Unsupervised trains link prediction with negative sampling (§VI-C b).
	Unsupervised
)

// String names the task as in the paper's figures.
func (t Task) String() string {
	switch t {
	case Supervised:
		return "supervised"
	case Unsupervised:
		return "unsupervised"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Config collects every Lumos hyperparameter. Zero values select the
// paper's experimental settings where they exist.
type Config struct {
	Task     Task
	Backbone nn.Backbone

	// Hidden and OutDim are the GNN layer widths (paper: both 16).
	Hidden int
	OutDim int
	// Layers is the GNN depth l (paper: 2).
	Layers int
	// Heads is the GAT attention head count (paper: 4).
	Heads int
	// Dropout follows each hidden activation (paper: 0.01).
	Dropout float64

	// Epsilon is the LDP privacy budget ε for feature encoding (paper
	// default: 2).
	Epsilon float64
	// LearningRate for Adam (paper: 0.01).
	LearningRate float64
	// WeightDecay is Adam's decoupled L2 coefficient (default 5e-4, the
	// standard GCN setting; set negative to disable).
	WeightDecay float64
	// Epochs is the number of training epochs (paper: 300).
	Epochs int
	// EvalEvery controls how often validation-based model selection runs
	// (default: every 5 epochs). The paper's 50/25/25 and 80/5/15 splits
	// include a validation set for exactly this purpose.
	EvalEvery int

	// MCMCIterations is the tree-trimming iteration count T (paper: 1000
	// for Facebook, 300 for LastFM).
	MCMCIterations int
	// SecureCompare runs degree/workload comparisons under the OT-based
	// protocol; when false they are evaluated in plaintext with identical
	// results and estimated traffic (for large benchmarks).
	SecureCompare bool

	// DisableVirtualNodes reproduces the "Lumos w.o. VN" ablation: trees
	// are replaced by the raw ego-network star graphs.
	DisableVirtualNodes bool
	// DisableTreeTrimming reproduces the "Lumos w.o. TT" ablation: every
	// device keeps its full neighbor set.
	DisableTreeTrimming bool

	// NegPerPos is the number of negative samples per positive pair in the
	// unsupervised loss (default 1).
	NegPerPos int

	// DisableRowNorm turns off the default local L2 normalization of leaf
	// features after LDP recovery (see buildForest).
	DisableRowNorm bool

	Seed int64
}

// Validate fills the paper's defaults and checks ranges.
func (c *Config) Validate() error {
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.OutDim == 0 {
		c.OutDim = 16
	}
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Heads == 0 {
		c.Heads = 4
	}
	if c.Dropout == 0 {
		c.Dropout = 0.01
	}
	if c.Epsilon == 0 {
		c.Epsilon = 2
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("core: negative privacy budget %v", c.Epsilon)
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.01
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("core: non-positive learning rate %v", c.LearningRate)
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 5e-4
	}
	if c.WeightDecay < 0 {
		c.WeightDecay = 0
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 5
	}
	if c.EvalEvery < 0 {
		return fmt.Errorf("core: negative EvalEvery %d", c.EvalEvery)
	}
	if c.Epochs == 0 {
		c.Epochs = 300
	}
	if c.Epochs < 0 {
		return fmt.Errorf("core: negative epoch count %d", c.Epochs)
	}
	if c.MCMCIterations < 0 {
		return fmt.Errorf("core: negative MCMC iteration count %d", c.MCMCIterations)
	}
	if c.NegPerPos == 0 {
		c.NegPerPos = 1
	}
	if c.NegPerPos < 0 {
		return fmt.Errorf("core: negative NegPerPos %d", c.NegPerPos)
	}
	if c.Hidden < 0 || c.OutDim < 0 || c.Layers < 0 || c.Heads < 0 {
		return fmt.Errorf("core: negative model dimension")
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("core: dropout %v outside [0,1)", c.Dropout)
	}
	return nil
}
