// Package core assembles Lumos from its substrates: the heterogeneity-aware
// tree constructor (internal/tree + internal/balance, paper §V) and the
// tree-based GNN trainer (paper §VI) with LDP embedding initialization,
// per-device tree message passing, the cross-device POOL layer, and
// supervised / unsupervised loss computation over the fed simulation fabric.
//
// All devices' trees are evaluated as one block-diagonal "forest" graph,
// sharded across per-worker autodiff tapes that are recycled every epoch:
// that is numerically identical to every device running its own tree and
// exchanging embeddings, while the fed.Network still accounts each message
// a real deployment would send.
package core

import (
	"fmt"
	"runtime"

	"lumos/internal/nn"
	"lumos/internal/obs"
	"lumos/internal/tensor"
)

// Sched selects how device updates are scheduled within a training round.
type Sched int

const (
	// SchedSync is the paper's lockstep protocol: every epoch waits for all
	// devices, gradients are aggregated synchronously, and the epoch time is
	// dominated by the straggler.
	SchedSync Sched = iota
	// SchedAsync is staleness-bounded asynchronous scheduling: straggler
	// shards may apply their gradient contributions up to Config.Staleness
	// epochs late, and the cost model amortizes their compute accordingly.
	// Scheduling is simulated deterministically (delays derive from the
	// shard workload ranking), so training remains reproducible.
	SchedAsync
	// SchedGossip is decentralized scheduling: there is no aggregator, and
	// devices average model deltas with their contact-graph neighbors using
	// Metropolis–Hastings weights. The core engine itself runs each device's
	// local step synchronously (gossip has no delayed-gradient queue); the
	// decentralized exchange is orchestrated by internal/sim over per-device
	// model replicas (see System.NewReplica) and a sim.Scenario.Topology.
	SchedGossip
)

// String names the scheduling mode.
func (s Sched) String() string {
	switch s {
	case SchedSync:
		return "sync"
	case SchedAsync:
		return "async"
	case SchedGossip:
		return "gossip"
	default:
		return fmt.Sprintf("Sched(%d)", int(s))
	}
}

// ParseSched parses a scheduling-mode name as used in CLI flags.
func ParseSched(name string) (Sched, error) {
	switch name {
	case "sync":
		return SchedSync, nil
	case "async", "staleness":
		return SchedAsync, nil
	case "gossip":
		return SchedGossip, nil
	default:
		return 0, fmt.Errorf("core: unknown scheduling mode %q (want sync|async|gossip)", name)
	}
}

// Task selects the training objective.
type Task int

const (
	// Supervised trains node classification with local labels (§VI-C a).
	Supervised Task = iota
	// Unsupervised trains link prediction with negative sampling (§VI-C b).
	Unsupervised
)

// String names the task as in the paper's figures.
func (t Task) String() string {
	switch t {
	case Supervised:
		return "supervised"
	case Unsupervised:
		return "unsupervised"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// ParseTask parses a task name as used in CLI flags, mirroring ParseSched.
// "node" and "link" are accepted as shorthands for the two objectives.
func ParseTask(name string) (Task, error) {
	switch name {
	case "supervised", "node":
		return Supervised, nil
	case "unsupervised", "link":
		return Unsupervised, nil
	default:
		return 0, fmt.Errorf("core: unknown task %q (want supervised|unsupervised)", name)
	}
}

// Config collects every Lumos hyperparameter. Zero values select the
// paper's experimental settings where they exist.
type Config struct {
	Task     Task
	Backbone nn.Backbone

	// Hidden and OutDim are the GNN layer widths (paper: both 16).
	Hidden int
	OutDim int
	// Layers is the GNN depth l (paper: 2).
	Layers int
	// Heads is the GAT attention head count (paper: 4).
	Heads int
	// Dropout follows each hidden activation (paper: 0.01).
	Dropout float64

	// Epsilon is the LDP privacy budget ε for feature encoding (paper
	// default: 2).
	Epsilon float64
	// LearningRate for Adam (paper: 0.01).
	LearningRate float64
	// WeightDecay is Adam's decoupled L2 coefficient (default 5e-4, the
	// standard GCN setting; set negative to disable).
	WeightDecay float64
	// Epochs is the number of training epochs (paper: 300).
	Epochs int
	// EvalEvery controls how often validation-based model selection runs
	// (default: every 5 epochs). The paper's 50/25/25 and 80/5/15 splits
	// include a validation set for exactly this purpose.
	EvalEvery int

	// MCMCIterations is the tree-trimming iteration count T (paper: 1000
	// for Facebook, 300 for LastFM).
	MCMCIterations int
	// SecureCompare runs degree/workload comparisons under the OT-based
	// protocol; when false they are evaluated in plaintext with identical
	// results and estimated traffic (for large benchmarks).
	SecureCompare bool

	// DisableVirtualNodes reproduces the "Lumos w.o. VN" ablation: trees
	// are replaced by the raw ego-network star graphs.
	DisableVirtualNodes bool
	// DisableTreeTrimming reproduces the "Lumos w.o. TT" ablation: every
	// device keeps its full neighbor set.
	DisableTreeTrimming bool

	// NegPerPos is the number of negative samples per positive pair in the
	// unsupervised loss (default 1).
	NegPerPos int

	// DisableRowNorm turns off the default local L2 normalization of leaf
	// features after LDP recovery (see buildForest).
	DisableRowNorm bool

	// Workers sizes the training engine's worker pool (default
	// runtime.NumCPU()). It affects wall-clock time only: losses and trained
	// weights are bit-identical for every Workers value under a fixed Seed,
	// because shard results are reduced in a fixed tree order and every
	// shard owns its private RNG stream.
	Workers int
	// Shards is the number of device shards the forest is partitioned into
	// (contiguous device ranges balanced by tree size). 0 auto-tunes to
	// min(N, max(DefaultShards, 4·NumCPU)). Independent of Workers, so on a
	// given machine the computation graph — and therefore the bits — never
	// depends on the worker-pool size; set it explicitly to pin results
	// across machines with different core counts.
	Shards int
	// Sched selects synchronous (default, the paper's protocol) or
	// staleness-bounded asynchronous round scheduling.
	Sched Sched
	// Staleness bounds, in epochs, how late a straggler shard's gradient may
	// be applied under SchedAsync (default 1 when async; ignored when sync).
	Staleness int

	// Kernels selects the tensor kernel path: "" or "blocked" (the default —
	// register-blocked matmuls and fused CSR neighborhood aggregation) or
	// "reference" (the original scalar loops, kept for cross-checking). The
	// two paths are bit-identical on finite data, so this only changes
	// wall-clock time. The setting is process-global (tensor.SetKernelPath),
	// applied by NewSystem; like GOMAXPROCS it is not meant to differ
	// between concurrently-running systems.
	Kernels string

	// NoTapeReuse forces the training engine to record each epoch on a fresh
	// autodiff tape instead of recycling the per-shard tapes (the
	// steady-state allocation-free path). The math is identical either way —
	// this is a debugging escape hatch for suspected buffer-reuse issues,
	// exposed as -notapereuse on the CLIs.
	NoTapeReuse bool

	// Metrics, when non-nil, receives runtime counters/gauges/histograms
	// from the training session (steps, losses, step durations, gradient
	// queue depth, model-selection events). Nil — the default — disables
	// telemetry entirely: the session takes the exact same code paths and
	// allocates nothing extra, so golden loss traces stay bit-identical.
	Metrics *obs.Registry
	// Tracer, when non-nil, records per-step spans and model-selection
	// instants on a wall-clock timeline. Leave nil inside the simulator,
	// which runs on virtual time and owns its own tracer.
	Tracer *obs.Tracer

	Seed int64
}

// DefaultShards is the floor of the auto-tuned forest partition count used
// when Config.Shards is 0 (capped at the device count).
const DefaultShards = 32

// defaultShardCount returns the shard count used when Config.Shards is 0:
// max(DefaultShards, 4·NumCPU), so many-core machines get enough shards to
// keep every worker busy while small machines keep the historical default.
// The count depends on the CPU count but never on Config.Workers, so results
// on one machine are identical for every worker-pool size; pin Config.Shards
// explicitly when bit-reproducibility across machines matters (the shard
// partition shapes the deterministic reduction order).
func defaultShardCount() int {
	if c := 4 * runtime.NumCPU(); c > DefaultShards {
		return c
	}
	return DefaultShards
}

// Validate fills the paper's defaults and checks ranges.
func (c *Config) Validate() error {
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.OutDim == 0 {
		c.OutDim = 16
	}
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Heads == 0 {
		c.Heads = 4
	}
	if c.Dropout == 0 {
		c.Dropout = 0.01
	}
	if c.Epsilon == 0 {
		c.Epsilon = 2
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("core: negative privacy budget %v", c.Epsilon)
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.01
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("core: non-positive learning rate %v", c.LearningRate)
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 5e-4
	}
	if c.WeightDecay < 0 {
		c.WeightDecay = 0
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 5
	}
	if c.EvalEvery < 0 {
		return fmt.Errorf("core: negative EvalEvery %d", c.EvalEvery)
	}
	if c.Epochs == 0 {
		c.Epochs = 300
	}
	if c.Epochs < 0 {
		return fmt.Errorf("core: negative epoch count %d", c.Epochs)
	}
	if c.MCMCIterations < 0 {
		return fmt.Errorf("core: negative MCMC iteration count %d", c.MCMCIterations)
	}
	if c.NegPerPos == 0 {
		c.NegPerPos = 1
	}
	if c.NegPerPos < 0 {
		return fmt.Errorf("core: negative NegPerPos %d", c.NegPerPos)
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", c.Workers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	if _, err := tensor.ParseKernelPath(c.Kernels); err != nil {
		return err
	}
	switch c.Sched {
	case SchedSync:
		// Staleness is meaningless under lockstep scheduling; reject instead
		// of silently ignoring a knob the caller thinks is live.
		if c.Staleness != 0 {
			return fmt.Errorf("core: Staleness=%d requires Sched=SchedAsync", c.Staleness)
		}
	case SchedAsync:
		if c.Staleness == 0 {
			c.Staleness = 1
		}
		if c.Staleness < 0 {
			return fmt.Errorf("core: negative staleness bound %d", c.Staleness)
		}
	case SchedGossip:
		// Gossip exchanges whole-model deltas each round; there is no
		// delayed-gradient queue for a staleness bound to govern.
		if c.Staleness != 0 {
			return fmt.Errorf("core: Staleness=%d requires Sched=SchedAsync", c.Staleness)
		}
	default:
		return fmt.Errorf("core: unknown scheduling mode %v", c.Sched)
	}
	if c.Hidden < 0 || c.OutDim < 0 || c.Layers < 0 || c.Heads < 0 {
		return fmt.Errorf("core: negative model dimension")
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("core: dropout %v outside [0,1)", c.Dropout)
	}
	return nil
}
