package core

import (
	"testing"

	"lumos/internal/nn"
)

// Frozen loss traces recorded from the pre-session trainers (PR-3 state,
// commit 7486285) at this exact configuration: engineGraph(seed 9), 5
// epochs, MCMC 20, Shards pinned to 32 (so the partition never depends on
// the host's CPU count), Seed 9. The Objective/Session redesign must keep
// TrainSupervised and TrainUnsupervised bit-identical to these values, for
// both backbones and for every Workers count. Hex float literals make the
// comparison exact.
var goldenTraces = map[string]map[Task][]float64{
	"GCN": {
		Supervised:   {0x1.6ac400b97ca9fp-01, 0x1.65b0bdd60fed4p-01, 0x1.61ea70399ab4cp-01, 0x1.5ebfdb289628ep-01, 0x1.5c32775b17ef7p-01},
		Unsupervised: {0x1.62af888dd2102p-01, 0x1.624215db0aa1ep-01, 0x1.61e6821e2bc4p-01, 0x1.616facc029ae5p-01, 0x1.6132782ef2772p-01},
	},
	"GAT": {
		Supervised:   {0x1.626abb3c19a6dp-01, 0x1.4fa861a38824p-01, 0x1.3def8c6cb2801p-01, 0x1.292c7da3ea07ap-01, 0x1.10289537ec792p-01},
		Unsupervised: {0x1.6257cccc64326p-01, 0x1.61c20b2012e87p-01, 0x1.60fc7766d788p-01, 0x1.60422301eb6b1p-01, 0x1.5f9df9845b45dp-01},
	},
}

// TestTrainersMatchPreSessionGoldens is the redesign's bit-identity gate:
// the session-backed trainers must reproduce the pre-redesign loss traces
// exactly, across both backbones, both tasks, and Workers=1 vs 8.
func TestTrainersMatchPreSessionGoldens(t *testing.T) {
	g := engineGraph(t, 9)
	for _, bb := range []nn.Backbone{nn.GCN, nn.GAT} {
		want := goldenTraces[bb.String()]
		for _, workers := range []int{1, 8} {
			cfg := Config{Backbone: bb, Epochs: 5, MCMCIterations: 20, Workers: workers, Shards: 32, Seed: 9}
			requireIdentical(t, bb.String()+"/supervised vs pre-session golden",
				supervisedLosses(t, g, cfg), want[Supervised])
			requireIdentical(t, bb.String()+"/unsupervised vs pre-session golden",
				unsupervisedLosses(t, g, cfg), want[Unsupervised])
		}
	}
}
