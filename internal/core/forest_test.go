package core

import (
	"math"
	"testing"

	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/tensor"
	"lumos/internal/tree"
)

// buildTestForest assembles a forest directly from hand-built retention
// sets so the indexing can be checked exactly.
func buildTestForest(t *testing.T, g *graph.Graph, retained [][]int, rowNorm bool) (*Forest, []*tree.Tree, *fed.Network) {
	t.Helper()
	trees := buildTrees(g, retained, false)
	devices := fed.NewDevices(g, 1)
	net := fed.NewNetwork(g.N)
	f, err := buildForest(g, trees, devices, 2, rowNorm, net)
	if err != nil {
		t.Fatal(err)
	}
	return f, trees, net
}

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([][2]int, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	feats := tensor.New(n, 6)
	for v := 0; v < n; v++ {
		feats.Set(v, v%6, 1)
	}
	labels := make([]int, n)
	g, err := graph.NewFromEdges(n, edges, feats, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestForestExactIndexing(t *testing.T) {
	// Path 0-1-2; retention: device 0 keeps 1, device 1 keeps 2, device 2
	// keeps nothing (degenerate tree).
	g := pathGraph(t, 3)
	retained := [][]int{{1}, {2}, {}}
	f, trees, net := buildTestForest(t, g, retained, false)
	// Tree sizes: 4, 4, 1.
	if trees[0].NumNodes != 4 || trees[2].NumNodes != 1 {
		t.Fatalf("tree sizes %d/%d/%d", trees[0].NumNodes, trees[1].NumNodes, trees[2].NumNodes)
	}
	if f.NumNodes != 9 {
		t.Fatalf("forest nodes = %d", f.NumNodes)
	}
	if f.Offsets[1] != 4 || f.Offsets[2] != 8 {
		t.Fatalf("offsets = %v", f.Offsets)
	}
	// Leaves: tree0 has center(0)+neighbor(1); tree1 center(1)+neighbor(2);
	// tree2 center(2). Leaf counts: v0:1, v1:2, v2:2.
	counts := map[int]int{}
	for _, gv := range f.LeafVertex {
		counts[gv]++
	}
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("leaf counts = %v", counts)
	}
	// Pool coefficients are 1/count.
	for i, gv := range f.LeafVertex {
		if math.Abs(f.PoolCoef[i]-1/float64(counts[gv])) > 1e-12 {
			t.Fatalf("pool coef %v for vertex %d", f.PoolCoef[i], gv)
		}
	}
	// Feature exchange: device 1 sends to device 0; device 2 sends to
	// device 1. Two feature messages total.
	if got := net.Snapshot().Messages[fed.MsgFeature]; got != 2 {
		t.Fatalf("feature messages = %d, want 2", got)
	}
}

func TestForestCenterFeaturesUnnoised(t *testing.T) {
	g := pathGraph(t, 3)
	retained := [][]int{{1}, {0, 2}, {1}}
	f, trees, _ := buildTestForest(t, g, retained, false)
	// Every CenterLeaf row must equal the device's raw feature exactly.
	for v, tr := range trees {
		off := f.Offsets[v]
		for i := 0; i < tr.NumNodes; i++ {
			if tr.Kind[i] == tree.CenterLeaf {
				row := f.X.Row(off + i)
				truth := g.Features.Row(v)
				for j := range row {
					if row[j] != truth[j] {
						t.Fatalf("center leaf of %d noised: %v vs %v", v, row, truth)
					}
				}
			}
		}
	}
}

func TestForestNeighborFeaturesAreNoised(t *testing.T) {
	g := pathGraph(t, 3)
	retained := [][]int{{1}, {0, 2}, {1}}
	f, trees, _ := buildTestForest(t, g, retained, false)
	// Neighbor leaves hold recovered features: entries are either the
	// midpoint 0.5 or the symmetric recovery values — never the raw 0/1.
	sawRecovered := false
	for v, tr := range trees {
		off := f.Offsets[v]
		for i := 0; i < tr.NumNodes; i++ {
			if tr.Kind[i] == tree.NeighborLeaf {
				for _, x := range f.X.Row(off + i) {
					if x != 0.5 {
						sawRecovered = true
						if x == 0 || x == 1 {
							t.Fatalf("neighbor leaf holds raw feature value %v", x)
						}
					}
				}
			}
		}
	}
	if !sawRecovered {
		t.Fatal("no recovered entries found — encoder transmitted nothing")
	}
}

func TestForestRowNormalization(t *testing.T) {
	g := pathGraph(t, 4)
	retained := [][]int{{1}, {2}, {3}, {}}
	f, _, _ := buildTestForest(t, g, retained, true)
	for _, r := range f.LeafRows {
		row := f.X.Row(r)
		s := 0.0
		for _, x := range row {
			s += x * x
		}
		if math.Abs(math.Sqrt(s)-1) > 1e-9 {
			t.Fatalf("leaf row %d has norm %v", r, math.Sqrt(s))
		}
	}
}

func TestForestVirtualNodesZero(t *testing.T) {
	g := pathGraph(t, 3)
	retained := [][]int{{1}, {0, 2}, {1}}
	f, trees, _ := buildTestForest(t, g, retained, true)
	for v, tr := range trees {
		off := f.Offsets[v]
		for i := 0; i < tr.NumNodes; i++ {
			if tr.Kind[i] == tree.Root || tr.Kind[i] == tree.Parent {
				for _, x := range f.X.Row(off + i) {
					if x != 0 {
						t.Fatalf("virtual node has feature %v", x)
					}
				}
			}
		}
	}
}

func TestForestFeaturelessGraphErrors(t *testing.T) {
	g, err := graph.NewFromEdges(3, [][2]int{{0, 1}}, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	trees := buildTrees(g, [][]int{{1}, {0}, {}}, false)
	_, err = buildForest(g, trees, fed.NewDevices(g, 1), 2, true, fed.NewNetwork(g.N))
	if err == nil {
		t.Fatal("featureless forest must error")
	}
}

func TestSystemWithIsolatedVertex(t *testing.T) {
	// Vertex 3 has no edges at all: its degenerate single-leaf tree must
	// still give it a pooled embedding and a prediction.
	feats := tensor.New(4, 4)
	for v := 0; v < 4; v++ {
		feats.Set(v, v, 1)
	}
	g, err := graph.NewFromEdges(4, [][2]int{{0, 1}, {1, 2}}, feats, []int{0, 1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(g, g, Config{Task: Supervised, Epochs: 2, MCMCIterations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	split := &graph.NodeSplit{
		Train:   []int{0, 1},
		Val:     []int{2},
		Test:    []int{3},
		IsTrain: []bool{true, true, false, false},
		IsVal:   []bool{false, false, true, false},
		IsTest:  []bool{false, false, false, true},
	}
	if _, err := sys.TrainSupervised(split); err != nil {
		t.Fatal(err)
	}
	emb := sys.Embeddings()
	if emb.Rows() != 4 {
		t.Fatal("isolated vertex missing from embeddings")
	}
	if _, err := sys.EvaluateAccuracy(split.IsTest); err != nil {
		t.Fatal(err)
	}
}

func TestEpochTrafficScalesWithWorkload(t *testing.T) {
	// Without trimming, the per-epoch embedding traffic is Σ deg = 2|E|;
	// with trimming it is Σ wl < 2|E|.
	g := testGraph(t, 100, 500, 2, 20)
	raw, err := NewSystem(g, g, Config{Task: Supervised, Epochs: 1, DisableTreeTrimming: true, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	raw.accountEpochTraffic(nil)
	rawEmb := raw.Net.Snapshot().Messages[fed.MsgEmbedding]
	if rawEmb != 2*g.NumEdges() {
		t.Fatalf("untrimmed embedding msgs = %d, want %d", rawEmb, 2*g.NumEdges())
	}
	trimmed, err := NewSystem(g, g, Config{Task: Supervised, Epochs: 1, MCMCIterations: 40, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	trimmed.accountEpochTraffic(nil)
	trimEmb := trimmed.Net.Snapshot().Messages[fed.MsgEmbedding]
	if trimEmb >= rawEmb {
		t.Fatalf("trimming did not reduce embedding traffic: %d vs %d", trimEmb, rawEmb)
	}
	if trimEmb < g.NumEdges() {
		t.Fatalf("embedding traffic %d below covering bound %d", trimEmb, g.NumEdges())
	}
}
