package core

import (
	"fmt"
	"math"

	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/ldp"
	"lumos/internal/tensor"
	"lumos/internal/tree"
)

// Forest is the block-diagonal union of all device trees, plus the POOL
// indexing that averages the embeddings of all leaves representing the same
// global vertex (paper Eq. 31). The training engine slices it into
// contiguous per-device shards, each with its own message-passing graph
// (see engine.go); the forest itself only carries the flattened layout.
type Forest struct {
	// X holds the initial node embeddings: the device's own (un-noised)
	// feature on its center leaves, LDP-recovered features on neighbor
	// leaves, zeros on virtual nodes (paper Eq. 25).
	X *tensor.Matrix
	// LeafRows[i] is the forest row of the i-th leaf; LeafVertex[i] its
	// global vertex; PoolCoef[i] = 1/#leaves(vertex) so that
	// SegmentSum(ScaleRows(gather)) realizes average pooling.
	LeafRows   []int
	LeafVertex []int
	PoolCoef   []float64
	// Offsets[v] is the forest row where device v's tree starts.
	Offsets  []int
	NumNodes int
}

// buildTrees constructs per-device trees from the balanced retention sets,
// honoring the virtual-node ablation switch.
func buildTrees(g *graph.Graph, retained [][]int, disableVirtualNodes bool) []*tree.Tree {
	trees := make([]*tree.Tree, g.N)
	for v := 0; v < g.N; v++ {
		if disableVirtualNodes {
			trees[v] = tree.BuildEgo(v, retained[v])
		} else {
			trees[v] = tree.Build(v, retained[v])
		}
	}
	return trees
}

// buildForest flattens the trees into one graph and runs the LDP embedding
// initialization of §VI-A: each device encodes its feature with the one-bit
// mechanism, partitions the encoded elements into one bin per recipient
// device, and each recipient recovers its bin into an unbiased estimate
// (paper Eq. 26–27). Recipients of device u's feature are exactly the
// devices whose trees contain a leaf for u — the devices w with u ∈ N_w.
// (The paper states the bins are indexed by wl(u); after asymmetric MCMC
// moves the set that actually needs the feature is {w : u ∈ N_w}, which
// coincides with N_u under symmetric retention. Using the true recipient
// set preserves Theorem 4: each recipient sees d/|bins| elements encoded at
// ε·|bins|/d each.)
//
// Traffic: one MsgFeature per (sender, recipient) pair; encoded elements
// are 2 bits each ({0, ½, 1}), so a partial feature costs ⌈d/4⌉ bytes plus
// a small header.
//
// When rowNormalize is set (the default), every leaf's initial embedding is
// L2-normalized by the device holding it. This is a purely local,
// parameter-free post-processing step (differential privacy is closed
// under post-processing) that equalizes the magnitudes of un-noised center
// features and LDP-recovered neighbor features — without it, the unbiased
// recovery's (e^ε'+1)/(e^ε'−1) scale factor saturates the sigmoid in the
// link-prediction loss and slows supervised optimization.
func buildForest(g *graph.Graph, trees []*tree.Tree, devices []*fed.Device,
	epsilon float64, rowNormalize bool, net *fed.Network) (*Forest, error) {

	d := g.FeatureDim()
	if d == 0 {
		return nil, fmt.Errorf("core: graph %q has no features", g.Name)
	}

	// Reverse retention: recipients[u] = devices holding a leaf for u.
	recipients := make([][]int, g.N)
	for v, t := range trees {
		for _, u := range t.Retained {
			recipients[u] = append(recipients[u], v)
		}
	}

	// LDP encode/exchange. recovered[w][u] is what device w holds for
	// neighbor u after recovery.
	recovered := make([]map[int][]float64, g.N)
	for v := range recovered {
		recovered[v] = make(map[int][]float64)
	}
	featureMsgBytes := (d+3)/4 + 16
	for u := 0; u < g.N; u++ {
		if len(recipients[u]) == 0 {
			continue
		}
		enc := ldp.FeatureEncoder{
			Epsilon:  epsilon,
			A:        g.FeatLo,
			B:        g.FeatHi,
			Workload: len(recipients[u]),
			Dim:      d,
		}
		parts, err := enc.Encode(g.Features.Row(u), devices[u].Rng)
		if err != nil {
			return nil, fmt.Errorf("core: encoding device %d: %w", u, err)
		}
		for k, w := range recipients[u] {
			rec, err := enc.Recover(parts[k])
			if err != nil {
				return nil, fmt.Errorf("core: recovering device %d's feature at %d: %w", u, w, err)
			}
			recovered[w][u] = rec
			net.Send(u, w, fed.MsgFeature, featureMsgBytes)
		}
	}

	// Flatten trees.
	f := &Forest{Offsets: make([]int, g.N)}
	total := 0
	for v, t := range trees {
		f.Offsets[v] = total
		total += t.NumNodes
	}
	f.NumNodes = total
	f.X = tensor.New(total, d)
	leafCount := make([]int, g.N)
	for v, t := range trees {
		off := f.Offsets[v]
		for i := 0; i < t.NumNodes; i++ {
			gv := t.Vertex[i]
			if gv < 0 {
				continue // virtual node: zero embedding
			}
			row := off + i
			f.LeafRows = append(f.LeafRows, row)
			f.LeafVertex = append(f.LeafVertex, gv)
			leafCount[gv]++
			switch t.Kind[i] {
			case tree.CenterLeaf:
				f.X.SetRow(row, g.Features.Row(v)) // own feature, un-noised
			case tree.NeighborLeaf:
				rec, ok := recovered[v][gv]
				if !ok {
					return nil, fmt.Errorf("core: device %d missing feature for neighbor %d", v, gv)
				}
				f.X.SetRow(row, rec)
			}
		}
	}
	if rowNormalize {
		for _, row := range f.LeafRows {
			normalizeRow(f.X.Row(row))
		}
	}
	f.PoolCoef = make([]float64, len(f.LeafRows))
	for i, gv := range f.LeafVertex {
		if leafCount[gv] == 0 {
			return nil, fmt.Errorf("core: vertex %d has no leaves", gv)
		}
		f.PoolCoef[i] = 1 / float64(leafCount[gv])
	}
	// Every vertex must be represented by at least one leaf (its own
	// degenerate tree guarantees this even at workload 0).
	for v := 0; v < g.N; v++ {
		if leafCount[v] == 0 {
			return nil, fmt.Errorf("core: vertex %d unrepresented in forest", v)
		}
	}
	return f, nil
}

// normalizeRow scales a feature row to unit L2 norm (no-op for zero rows).
func normalizeRow(row []float64) {
	s := 0.0
	for _, v := range row {
		s += v * v
	}
	if s <= 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range row {
		row[i] *= inv
	}
}
