package core

import (
	"fmt"

	"lumos/internal/autodiff"
	"lumos/internal/graph"
)

// This file is the round-level driving surface used by internal/sim: a
// discrete-event simulator samples participants each round, derives
// per-device gradient delays from simulated message arrivals, and steps the
// engine one round at a time instead of running a whole TrainSupervised
// loop. Everything here stays bit-deterministic for a fixed seed and
// participation schedule, for every Workers value.

// RoundOutcome reports one partial-participation training round.
type RoundOutcome struct {
	// Loss is the round's training loss (0 when Skipped).
	Loss float64
	// Skipped is set when the round had no usable training signal (no
	// participant holds a training vertex); the round clock still advanced
	// and due stale gradients were applied.
	Skipped bool
	// ActiveShards is the number of shards that computed a fresh update.
	ActiveShards int
	// StaleApplied counts gradients computed in earlier rounds that were
	// folded into the model this round.
	StaleApplied int
	// ExpiredParts counts absent shards whose cached pooling contribution
	// aged past the TTL and was dropped from the forward pass.
	ExpiredParts int
}

// StepRoundSupervised runs one supervised training round restricted to the
// given participants: active[v] marks device v as present this round. Only
// present devices compute, contribute loss terms for their own vertices, and
// send gradients; the vertices of absent devices keep serving the pooled
// embeddings their leaves last pushed, until that cache is more than partTTL
// rounds old.
//
// delays (optional, per device, in rounds) postpones a participant's
// gradient application — the caller's staleness schedule, typically derived
// from simulated message arrival times; nil applies every gradient
// immediately. Participation and delays are lifted to shard granularity: a
// shard is active when at least half of its devices are present (exact when
// the system was built with Shards == N, one device per shard — the
// simulator default), and a shard's delay is the largest delay among its
// present devices.
func (s *System) StepRoundSupervised(split *graph.NodeSplit, active []bool, delays []int, partTTL int) (RoundOutcome, error) {
	if s.Cfg.Task != Supervised {
		return RoundOutcome{}, fmt.Errorf("core: StepRoundSupervised on %v system", s.Cfg.Task)
	}
	if split == nil {
		return RoundOutcome{}, fmt.Errorf("core: nil node split")
	}
	if len(active) != s.G.N {
		return RoundOutcome{}, fmt.Errorf("core: %d participation flags for %d devices", len(active), s.G.N)
	}
	if delays != nil && len(delays) != s.G.N {
		return RoundOutcome{}, fmt.Errorf("core: %d delays for %d devices", len(delays), s.G.N)
	}
	if partTTL < 0 {
		return RoundOutcome{}, fmt.Errorf("core: negative partial TTL %d", partTTL)
	}
	weights := make([]float64, s.G.N)
	usable := false
	for _, v := range split.Train {
		if active[v] {
			weights[v] = 1
			usable = true
		}
	}
	if !usable {
		// No participant holds a training vertex: nothing to learn from, but
		// the round still happened — stale gradients come due and the
		// optimizer steps, as the aggregator would.
		return RoundOutcome{Skipped: true, StaleApplied: s.eng.skipRound()}, nil
	}
	s.accountEpochTraffic(active)
	shardActive, shardDelay := s.eng.mapDevices(active, delays)
	loss, rep := s.eng.stepRound(shardActive, shardDelay, partTTL, func(pooled *autodiff.Value) *autodiff.Value {
		logits := s.Head.Forward(pooled)
		return autodiff.SoftmaxCrossEntropy(logits, s.G.Labels, weights)
	})
	return RoundOutcome{
		Loss:         loss,
		ActiveShards: rep.activeShards,
		StaleApplied: rep.staleApplied,
		ExpiredParts: rep.expiredParts,
	}, nil
}

// FinishRounds applies every still-queued stale gradient in one terminal
// synchronous step, mirroring the final barrier of a bounded-staleness
// deployment. Call it once after the last StepRoundSupervised.
func (s *System) FinishRounds() {
	s.eng.drain()
}

// ShardCount reports how many shards the engine partitioned the forest into.
func (s *System) ShardCount() int {
	return len(s.eng.shards)
}

// DeviceUploadBytes estimates the bytes device v uploads in one round it
// participates in: its leaf-embedding pushes to the vertices' owners, its
// loss share, and its gradient contribution (plus pooled-embedding returns
// when unsupervised). This is the per-event transfer size the simulator
// divides by each device's link bandwidth.
func (s *System) DeviceUploadBytes() []int64 {
	embBytes, gradBytes, lossBytes := s.wireBytes()
	out := make([]int64, s.G.N)
	for v, t := range s.Trees {
		b := int64(len(t.Retained))*int64(embBytes) + int64(lossBytes) + int64(gradBytes)
		if s.Cfg.Task == Unsupervised {
			b += int64(len(t.Retained)) * int64(embBytes)
		}
		out[v] = b
	}
	return out
}

// ModelBytes is the serialized size of one shared-model update — the
// server→device broadcast a participant downloads after aggregation (and a
// rejoining device must re-download to catch up).
func (s *System) ModelBytes() int64 {
	_, gradBytes, _ := s.wireBytes()
	return int64(gradBytes)
}

// mapDevices lifts per-device participation and delays to shard granularity:
// a shard is active when at least half of its devices (and at least one) are
// present, and an active shard's delay is the largest delay among its
// present devices. With one device per shard the mapping is exact.
func (e *engine) mapDevices(active []bool, delays []int) ([]bool, []int) {
	sa := make([]bool, len(e.shards))
	sd := make([]int, len(e.shards))
	for i, sh := range e.shards {
		on := 0
		for v := sh.lo; v < sh.hi; v++ {
			if active[v] {
				on++
			}
		}
		sa[i] = on > 0 && 2*on >= sh.hi-sh.lo
		if !sa[i] || delays == nil {
			continue
		}
		for v := sh.lo; v < sh.hi; v++ {
			if active[v] && delays[v] > sd[i] {
				sd[i] = delays[v]
			}
		}
	}
	return sa, sd
}
