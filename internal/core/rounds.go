package core

import (
	"fmt"

	"lumos/internal/graph"
)

// This file holds the round-level outcome type and the task-agnostic
// round helpers consumed by Session.StepRound — the driving surface
// internal/sim uses: a discrete-event simulator samples participants each
// round, derives per-device gradient delays from simulated message
// arrivals, and steps the engine one round at a time instead of running a
// whole epoch loop. Everything here stays bit-deterministic for a fixed
// seed and participation schedule, for every Workers value.

// RoundOutcome reports one partial-participation training round.
type RoundOutcome struct {
	// Loss is the round's training loss (0 when Skipped).
	Loss float64
	// Skipped is set when the round had no usable training signal (no
	// participant holds a training vertex); the round clock still advanced
	// and due stale gradients were applied.
	Skipped bool
	// ActiveShards is the number of shards that computed a fresh update.
	ActiveShards int
	// StaleApplied counts gradients computed in earlier rounds that were
	// folded into the model this round.
	StaleApplied int
	// ExpiredParts counts absent shards whose cached pooling contribution
	// aged past the TTL and was dropped from the forward pass.
	ExpiredParts int
	// ValMetric is the objective's validation metric when ValEvaluated is
	// set — reported only for rounds whose plan asked to Evaluate (and when
	// the objective carries validation data). It feeds round-driven model
	// selection: the best-validation snapshot is restored by FinishRounds.
	ValMetric    float64
	ValEvaluated bool
}

// StepRoundSupervised runs one supervised training round restricted to the
// given participants: active[v] marks device v as present this round.
//
// Deprecated: build a Session over NewSupervisedObjective and call
// Session.StepRound — the session API serves every task, not just node
// classification. This wrapper drives a lazily-created session keyed by the
// split and remains only for callers of the pre-session API.
func (s *System) StepRoundSupervised(split *graph.NodeSplit, active []bool, delays []int, partTTL int) (RoundOutcome, error) {
	if s.Cfg.Task != Supervised {
		return RoundOutcome{}, fmt.Errorf("core: StepRoundSupervised on %v system", s.Cfg.Task)
	}
	if len(active) != s.G.N {
		return RoundOutcome{}, fmt.Errorf("core: %d participation flags for %d devices", len(active), s.G.N)
	}
	if s.legacySess == nil || s.legacySplit != split {
		sess, err := s.NewSession(NewSupervisedObjective(split))
		if err != nil {
			return RoundOutcome{}, err
		}
		s.legacySess, s.legacySplit = sess, split
	}
	return s.legacySess.StepRound(RoundPlan{Active: active, Delays: delays, TTL: partTTL})
}

// FinishRounds applies every still-queued stale gradient in one terminal
// synchronous step, mirroring the final barrier of a bounded-staleness
// deployment.
//
// Deprecated: use Session.FinishRounds.
func (s *System) FinishRounds() {
	s.eng.drain()
}

// ShardCount reports how many shards the engine partitioned the forest into.
func (s *System) ShardCount() int {
	return len(s.eng.shards)
}

// DeviceUploadBytes estimates the bytes device v uploads in one round it
// participates in: its leaf-embedding pushes to the vertices' owners, its
// loss share, and its gradient contribution (plus pooled-embedding returns
// when unsupervised). This is the per-event transfer size the simulator
// divides by each device's link bandwidth.
func (s *System) DeviceUploadBytes() []int64 {
	embBytes, gradBytes, lossBytes := s.wireBytes()
	out := make([]int64, s.G.N)
	for v, t := range s.Trees {
		b := int64(len(t.Retained))*int64(embBytes) + int64(lossBytes) + int64(gradBytes)
		if s.Cfg.Task == Unsupervised {
			b += int64(len(t.Retained)) * int64(embBytes)
		}
		out[v] = b
	}
	return out
}

// ModelBytes is the serialized size of one shared-model update — the
// server→device broadcast a participant downloads after aggregation (and a
// rejoining device must re-download to catch up).
func (s *System) ModelBytes() int64 {
	_, gradBytes, _ := s.wireBytes()
	return int64(gradBytes)
}

// mapDevices lifts per-device participation and delays to shard granularity:
// a shard is active when at least half of its devices (and at least one) are
// present, and an active shard's delay is the largest delay among its
// present devices. With one device per shard the mapping is exact. A nil
// active mask means full participation; with nil delays too, the engine's
// own all-active fast path (nil, nil) is selected.
func (e *engine) mapDevices(active []bool, delays []int) ([]bool, []int) {
	if active == nil && delays == nil {
		return nil, nil
	}
	sa := make([]bool, len(e.shards))
	sd := make([]int, len(e.shards))
	for i, sh := range e.shards {
		on := 0
		for v := sh.lo; v < sh.hi; v++ {
			if active == nil || active[v] {
				on++
			}
		}
		sa[i] = on > 0 && 2*on >= sh.hi-sh.lo
		if !sa[i] || delays == nil {
			continue
		}
		for v := sh.lo; v < sh.hi; v++ {
			if (active == nil || active[v]) && delays[v] > sd[i] {
				sd[i] = delays[v]
			}
		}
	}
	return sa, sd
}
