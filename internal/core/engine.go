package core

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"lumos/internal/autodiff"
	"lumos/internal/nn"
	"lumos/internal/tensor"
	"lumos/internal/tree"
)

// This file implements the device-parallel training engine. The forest is
// block-diagonal — every device tree is its own connected component — so an
// epoch decomposes into independent per-shard local passes plus a small
// serial combine:
//
//  1. parallel: each shard (a contiguous run of device trees) runs the
//     shared encoder over its sub-forest and pools its leaves into a partial
//     per-vertex embedding P_s (paper Eq. 31 restricted to the shard's
//     leaves);
//  2. serial: pooled = Σ_s P_s in shard order, then the task loss;
//  3. parallel: each shard replays the loss gradient of its partial through
//     its own subgraph, accumulating into shard-private views of the shared
//     weights (nn.CloneShared);
//  4. serial: shard gradients are reduced into the real parameters in shard
//     order and the optimizer steps.
//
// Determinism: the shard partition depends only on Config.Shards (never on
// Workers or the machine), every shard owns a private RNG stream split from
// the root seed, all cross-shard reductions (steps 2 and 4) run serially in
// fixed shard order, and parallel phases write only shard-local state. So
// Workers=1 and Workers=N produce bit-identical losses and weights.
//
// Under Config.Sched == SchedAsync, step 4 additionally delays the gradient
// contribution of straggler shards (the heaviest trees) by up to
// Config.Staleness epochs, simulating staleness-bounded asynchronous
// aggregation. The delay schedule derives from the shard workload ranking,
// so async runs are exactly as reproducible as sync ones.

// shard is a contiguous run of device trees [lo, hi), flattened into its own
// message-passing graph with shard-local row indices.
type shard struct {
	lo, hi int
	conv   *nn.ConvGraph
	x      *tensor.Matrix
	// leafLocal[i] is the shard-local row of the shard's i-th leaf,
	// leafVertex[i] its global vertex, poolCoef[i] the Eq. 31 averaging
	// coefficient (identical to the corresponding Forest.PoolCoef entry).
	leafLocal  []int
	leafVertex []int
	poolCoef   []float64
	// pool groups the leaf→vertex pooling edges by vertex (stable leaf
	// order) so the fused kernel path can run Gather→ScaleRows→SegmentSum
	// as one CSR aggregation.
	pool *tensor.CSR
	// work is the shard's node count — its compute weight, used both to
	// balance the partition and to rank stragglers for async scheduling.
	work int
}

// delayedGrads is one shard's encoder gradient, queued for application at
// (or after) the release epoch.
type delayedGrads struct {
	computed int // epoch the gradient was computed in
	release  int
	shard    int
	grads    []*tensor.Matrix // aligned with Encoder.Params()
}

// engine executes training epochs over the sharded forest.
type engine struct {
	sys     *System
	shards  []*shard
	encs    []*nn.GNN        // per-shard shared-weight views of sys.Encoder
	rngs    []*rand.Rand     // per-shard dropout streams split from the root seed
	tapes   []*autodiff.Tape // per-shard autodiff tapes, reset-and-reused every epoch
	serial  *autodiff.Tape   // tape of the serial combine-and-loss phase
	noReuse bool             // Config.NoTapeReuse: fresh tapes every epoch
	workers int
	delays  []int // per-shard staleness delay in epochs (all zero when sync)
	queue   []delayedGrads
	epoch   int
	// Parameter lists are cached once: Params() allocates, and the epoch
	// loop needs them every round.
	viewParams [][]*nn.Param // per-shard view parameters, aligned with encParams
	encParams  []*nn.Param   // the real encoder parameters
	allParams  []*nn.Param   // encoder + head, the optimizer's param set
	// lastParts/partAge cache each shard's most recent pooled partial for
	// partial-participation rounds: an absent shard's vertices keep serving
	// the embeddings its leaves last pushed, until the cache ages out. The
	// cache owns its matrices (copied out of the shard tapes, which recycle
	// theirs every epoch).
	lastParts []*tensor.Matrix
	partAge   []int
}

// newEngine shards the system's forest and prepares per-shard model views.
func newEngine(s *System) *engine {
	target := s.Cfg.Shards
	if target == 0 {
		target = defaultShardCount()
	}
	if target > s.G.N {
		target = s.G.N
	}
	e := &engine{sys: s, workers: s.Cfg.Workers, noReuse: s.Cfg.NoTapeReuse}
	e.shards = buildShards(s.Forest, s.Trees, target)
	for _, sh := range e.shards {
		sh.pool = tensor.NewCSR(s.G.N, sh.leafLocal, sh.leafVertex)
	}
	for i := range e.shards {
		e.encs = append(e.encs, s.Encoder.CloneShared())
		e.rngs = append(e.rngs, rand.New(rand.NewSource(s.Cfg.Seed^(int64(i+1)*0x1f3d5b79a7c6e42d))))
		e.viewParams = append(e.viewParams, e.encs[i].Params())
	}
	e.tapes = make([]*autodiff.Tape, len(e.shards))
	e.encParams = s.Encoder.Params()
	e.allParams = s.Params()
	staleness := 0
	if s.Cfg.Sched == SchedAsync {
		staleness = s.Cfg.Staleness
	}
	e.delays = shardDelays(e.shards, staleness)
	return e
}

// shardTape returns shard i's tape ready for a fresh recording: reset for
// reuse in the steady state, or brand new under Config.NoTapeReuse (and on
// first use). Only shard i's worker may call this for i.
func (e *engine) shardTape(i int) *autodiff.Tape {
	if e.noReuse || e.tapes[i] == nil {
		e.tapes[i] = autodiff.NewTape()
	} else {
		e.tapes[i].Reset()
	}
	return e.tapes[i]
}

// serialTape returns the combine-phase tape ready for a fresh recording.
func (e *engine) serialTape() *autodiff.Tape {
	if e.noReuse || e.serial == nil {
		e.serial = autodiff.NewTape()
	} else {
		e.serial.Reset()
	}
	return e.serial
}

// zeroGrads clears the gradients of the real model parameters (buffers are
// recycled in place by the next accumulation).
func (e *engine) zeroGrads() {
	for _, p := range e.allParams {
		p.V.ZeroGrad()
	}
}

// buildShards partitions the trees into at most target contiguous shards,
// balanced by node count, and flattens each into a shard-local graph. The
// partition is a pure function of the forest shape — never of Workers.
func buildShards(f *Forest, trees []*tree.Tree, target int) []*shard {
	n := len(trees)
	if target > n {
		target = n
	}
	if target < 1 {
		target = 1
	}
	shards := make([]*shard, 0, target)
	leafIdx := 0
	lo, nodesUsed := 0, 0
	for si := 0; si < target; si++ {
		remaining := target - si
		hi := lo + 1
		work := trees[lo].NumNodes
		if si == target-1 {
			hi = n
			work = f.NumNodes - nodesUsed
		} else {
			budget := (f.NumNodes - nodesUsed) / remaining
			for hi < n && n-hi > remaining-1 && work+trees[hi].NumNodes <= budget {
				work += trees[hi].NumNodes
				hi++
			}
		}
		base := f.Offsets[lo]
		end := f.NumNodes
		if hi < n {
			end = f.Offsets[hi]
		}
		rows := end - base
		sh := &shard{lo: lo, hi: hi, work: work}
		// A view, not a copy: shard rows are contiguous in the forest, and
		// the forward pass only reads X, so all shards alias f.X safely.
		sh.x = f.X.SliceRows(base, end)
		var edges [][2]int
		for v := lo; v < hi; v++ {
			off := f.Offsets[v] - base
			for _, e := range trees[v].Edges {
				edges = append(edges, [2]int{off + e[0], off + e[1]})
			}
		}
		sh.conv = nn.NewConvGraph(rows, edges)
		// Forest leaf arrays ascend in row order, so each shard owns a
		// contiguous slice of them.
		for leafIdx < len(f.LeafRows) && f.LeafRows[leafIdx] < end {
			sh.leafLocal = append(sh.leafLocal, f.LeafRows[leafIdx]-base)
			sh.leafVertex = append(sh.leafVertex, f.LeafVertex[leafIdx])
			sh.poolCoef = append(sh.poolCoef, f.PoolCoef[leafIdx])
			leafIdx++
		}
		shards = append(shards, sh)
		nodesUsed += work
		lo = hi
	}
	return shards
}

// shardDelays assigns each shard its gradient-application delay: the
// heaviest shard lags the full staleness bound, the next heaviest one epoch
// less, and so on down to zero. Ties break by shard index, keeping the
// schedule deterministic.
func shardDelays(shards []*shard, staleness int) []int {
	delays := make([]int, len(shards))
	if staleness <= 0 {
		return delays
	}
	order := make([]int, len(shards))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending work, ascending index — shard counts are
	// small (≤ DefaultShards) and this avoids pulling in sort for one call.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if shards[a].work > shards[b].work || (shards[a].work == shards[b].work && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	for rank, s := range order {
		if d := staleness - rank; d > 0 {
			delays[s] = d
		}
	}
	return delays
}

// parallel runs fn(i) for every shard index on the engine's worker pool.
// Shard order of side effects is unconstrained; callers must only write
// shard-local state.
func (e *engine) parallel(fn func(i int)) {
	w := e.workers
	if w > len(e.shards) {
		w = len(e.shards)
	}
	if w <= 1 {
		for i := range e.shards {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.shards) {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// forwardShards runs the shared encoder over every shard and pools each
// shard's leaves into its partial per-vertex embedding P_s (N×OutDim). The
// returned Values carry live autodiff graphs rooted in the shard's weight
// views.
func (e *engine) forwardShards(training bool) []*autodiff.Value {
	return e.forwardActive(training, nil)
}

// forwardActive is forwardShards restricted to the active shards (nil means
// all); inactive shards get a nil partial. Each shard records onto its own
// tape (taken fresh here, invalidating the previous epoch's Values and
// buffers), so the partials' graphs are tape-backed: Backward on them is a
// linear sweep, and their memory is recycled next epoch.
func (e *engine) forwardActive(training bool, active []bool) []*autodiff.Value {
	parts := make([]*autodiff.Value, len(e.shards))
	e.parallel(func(i int) {
		if active != nil && !active[i] {
			return
		}
		sh := e.shards[i]
		x := e.shardTape(i).Const(sh.x)
		h := e.encs[i].Forward(sh.conv, x, training, e.rngs[i])
		if tensor.ActiveKernelPath() == tensor.PathReference {
			leaves := autodiff.Gather(h, sh.leafLocal)
			scaled := autodiff.ScaleRows(leaves, sh.poolCoef)
			parts[i] = autodiff.SegmentSum(scaled, sh.leafVertex, e.sys.G.N)
		} else {
			// Same pooling, fused: one CSR aggregation instead of three ops
			// materializing per-leaf rows (bit-identical either way).
			parts[i] = autodiff.CSRAggregate(h, sh.pool, sh.poolCoef)
		}
	})
	return parts
}

// forward returns the pooled per-vertex embeddings, combining shard partials
// in fixed shard order.
func (e *engine) forward(training bool) *autodiff.Value {
	return autodiff.AddN(e.forwardShards(training)...)
}

// step runs one full-participation training epoch under the engine's
// built-in (workload-ranked) staleness schedule. Returns the epoch loss.
func (e *engine) step(lossFn func(pooled *autodiff.Value) *autodiff.Value) float64 {
	loss, _ := e.stepRound(nil, nil, 0, lossFn)
	return loss
}

// roundReport carries the partial-participation bookkeeping of one round.
type roundReport struct {
	activeShards int // shards that computed a fresh update
	staleApplied int // queued gradients from earlier rounds applied this round
	// expiredParts counts absent shards whose contribution this round's
	// forward pass actually lost to an aged-out cache (a cache that ages out
	// during rounds with no forward pass, or is refreshed by fresh compute,
	// drops nothing and is not counted).
	expiredParts int
}

// stepRound runs one training round: parallel shard forward over the active
// shards (nil = all), serial loss over the combined pooling, parallel shard
// backward, deterministic tree-ordered gradient reduction, optimizer step.
// lossFn builds the scalar task loss from the pooled embeddings; any real
// parameters it touches directly (e.g. the supervised head) get fresh
// gradients via the serial phase.
//
// delays, when non-nil, gives each shard's gradient-application delay in
// rounds (e.g. derived from simulated message arrivals); nil selects the
// engine's own workload-ranked schedule. An inactive shard contributes the
// pooled partial cached from its last active round — the embeddings its
// leaves pushed before the devices went offline — until the cache is more
// than partTTL rounds old, after which the contribution is dropped.
func (e *engine) stepRound(active []bool, delays []int, partTTL int, lossFn func(pooled *autodiff.Value) *autodiff.Value) (float64, roundReport) {
	s := e.sys
	e.zeroGrads()
	// The stale-partial cache only serves partial-participation rounds, so
	// it is allocated lazily on first partial use — pure full-participation
	// runs never pay the retention. Once allocated, every round (including
	// full-participation epochs on the same system) refreshes it, so the
	// TTL always counts real rounds since a shard's last computation.
	if active != nil && e.lastParts == nil {
		e.lastParts = make([]*tensor.Matrix, len(e.shards))
		e.partAge = make([]int, len(e.shards))
	}
	var rep roundReport

	// Phase 1: parallel local forward + pool over the active shards.
	parts := e.forwardActive(true, active)

	// Phase 2: serial combine and loss, recorded on the combine tape.
	// Cutting the graph at each fresh partial (a new leaf sharing the
	// partial's data) keeps the expensive shard subgraphs out of this
	// Backward; it stops at the cut leaves. Absent shards contribute their
	// cached partial as a constant.
	st := e.serialTape()
	cuts := make([]*autodiff.Value, len(parts))
	terms := make([]*autodiff.Value, 0, len(parts))
	for i, p := range parts {
		switch {
		case p != nil:
			rep.activeShards++
			cuts[i] = st.Var(p.Data)
			terms = append(terms, cuts[i])
			if e.lastParts != nil {
				// Copy the partial out of the shard tape: the cache must
				// outlive the tape's next Reset.
				if e.lastParts[i] == nil {
					e.lastParts[i] = p.Data.Clone()
				} else {
					e.lastParts[i].CopyFrom(p.Data)
				}
				e.partAge[i] = 0
			}
		case e.lastParts[i] != nil && e.partAge[i] < partTTL:
			e.partAge[i]++
			terms = append(terms, st.Const(e.lastParts[i]))
		case e.lastParts[i] != nil:
			// Expired: count the dropped contribution once and release the
			// matrix; the shard contributes nothing until it computes again.
			e.lastParts[i] = nil
			rep.expiredParts++
		}
	}
	var pooled *autodiff.Value
	if len(terms) > 0 {
		pooled = autodiff.AddN(terms...)
	} else {
		pooled = autodiff.Const(tensor.New(s.G.N, s.Encoder.EmbeddingDim()))
	}
	loss := lossFn(pooled)
	loss.Backward()

	// Phase 3: parallel shard backward, replaying each cut's gradient
	// through the shard subgraph into the shard's private weight views.
	e.parallel(func(i int) {
		if cuts[i] == nil {
			return
		}
		if g := cuts[i].Grad; g != nil {
			parts[i].BackwardWithGradient(g)
		}
	})

	// Phase 4: deterministic reduction, in the same order as the historical
	// queue-everything scheme: gradients from earlier epochs that come due
	// now were queued first, so they apply first; then this epoch's
	// immediate (delay-0) shard gradients in shard order. Immediate
	// gradients fold straight into the real parameters and their view
	// buffers are zeroed in place for next epoch's accumulation — only
	// delayed gradients detach their buffers into the queue (the buffer
	// must outlive the view's next backward).
	rep.staleApplied = e.applyDue(e.epoch)
	for i := range e.shards {
		if parts[i] == nil {
			continue
		}
		d := e.delays[i]
		if delays != nil {
			d = delays[i]
		}
		views := e.viewParams[i]
		if d == 0 {
			for j, vp := range views {
				if g := vp.V.Grad; g != nil {
					tensor.AddInPlace(e.encParams[j].V.EnsureGrad(), g)
					vp.V.ZeroGrad()
				}
			}
			continue
		}
		grads := make([]*tensor.Matrix, len(views))
		for j, vp := range views {
			grads[j] = vp.V.DetachGrad()
		}
		e.queue = append(e.queue, delayedGrads{computed: e.epoch, release: e.epoch + d, shard: i, grads: grads})
	}
	s.opt.Step(e.allParams)
	e.epoch++
	return loss.Scalar(), rep
}

// skipRound advances the round clock without fresh computation — used when a
// partial-participation round has nothing to contribute (no participant
// holds a training vertex, or nobody is online) — still applying any queued
// gradients that come due, stepping the optimizer as the aggregator would,
// and aging the stale-partial caches so their TTL counts real rounds.
func (e *engine) skipRound() int {
	e.zeroGrads()
	for i := range e.lastParts {
		if e.lastParts[i] != nil {
			e.partAge[i]++
		}
	}
	stale := e.applyDue(e.epoch)
	e.sys.opt.Step(e.allParams)
	e.epoch++
	return stale
}

// applyDue folds every queued gradient whose release epoch has arrived into
// the real encoder parameters, in queue order (compute epoch, then shard) —
// a fixed order, so reduction stays bit-deterministic. Returns how many of
// the applied gradients were computed in an earlier epoch (stale applies).
func (e *engine) applyDue(epoch int) (stale int) {
	kept := e.queue[:0]
	for _, dg := range e.queue {
		if dg.release > epoch {
			kept = append(kept, dg)
			continue
		}
		if dg.computed < epoch {
			stale++
		}
		for j, g := range dg.grads {
			if g == nil {
				continue
			}
			tensor.AddInPlace(e.encParams[j].V.EnsureGrad(), g)
		}
	}
	e.queue = kept
	return stale
}

// queueDepth reports how many shard gradients sit in the staleness queue
// awaiting application (always 0 under sync scheduling).
func (e *engine) queueDepth() int { return len(e.queue) }

// drain applies all still-pending stale gradients in one final synchronous
// step, mirroring the terminal barrier of a real bounded-staleness
// deployment. No-op under sync scheduling (the queue is always empty).
func (e *engine) drain() {
	if len(e.queue) == 0 {
		return
	}
	e.zeroGrads()
	e.applyDue(math.MaxInt)
	e.sys.opt.Step(e.allParams)
}
