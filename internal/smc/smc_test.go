package smc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLessExhaustiveSmall(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(8, stats)
	alice, bob := NewParty(1), NewParty(2)
	for a := uint64(0); a < 20; a++ {
		for b := uint64(0); b < 20; b++ {
			if got := p.Less(alice, a, bob, b); got != (a < b) {
				t.Fatalf("Less(%d,%d) = %v", a, b, got)
			}
		}
	}
}

func TestLessRandom64Bit(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(64, stats)
	alice, bob := NewParty(3), NewParty(4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if got := p.Less(alice, a, bob, b); got != (a < b) {
			t.Fatalf("Less(%d,%d) = %v", a, b, got)
		}
	}
}

func TestLessEqualValues(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(16, stats)
	alice, bob := NewParty(6), NewParty(7)
	for _, v := range []uint64{0, 1, 255, 65535} {
		if p.Less(alice, v, bob, v) {
			t.Fatalf("Less(%d,%d) returned true", v, v)
		}
		if !p.LessOrEqual(alice, v, bob, v) {
			t.Fatalf("LessOrEqual(%d,%d) returned false", v, v)
		}
	}
}

func TestLessOrEqual(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(16, stats)
	alice, bob := NewParty(8), NewParty(9)
	if !p.LessOrEqual(alice, 3, bob, 5) || p.LessOrEqual(alice, 5, bob, 3) {
		t.Fatal("LessOrEqual wrong")
	}
}

func TestQuickLessMatchesPlaintext(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(32, stats)
	f := func(a, b uint32, s1, s2 int64) bool {
		alice, bob := NewParty(s1), NewParty(s2)
		return p.Less(alice, uint64(a), bob, uint64(b)) == (a < b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(32, stats)
	alice, bob := NewParty(10), NewParty(11)
	p.Less(alice, 5, bob, 9)
	if stats.Comparisons != 1 {
		t.Fatalf("comparisons = %d", stats.Comparisons)
	}
	// 2 AND gates per bit, 2 OTs per AND.
	if want := 4 * 32; stats.OTs != want {
		t.Fatalf("OTs = %d, want %d", stats.OTs, want)
	}
	if stats.Messages == 0 || stats.Bytes == 0 {
		t.Fatal("no traffic recorded")
	}
	before := *stats
	p.Less(alice, 1, bob, 2)
	if stats.OTs != 2*before.OTs {
		t.Fatal("second comparison must cost the same OTs")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Messages: 1, Bytes: 2, OTs: 3, Comparisons: 4}
	b := Stats{Messages: 10, Bytes: 20, OTs: 30, Comparisons: 40}
	a.Add(b)
	if a.Messages != 11 || a.Bytes != 22 || a.OTs != 33 || a.Comparisons != 44 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestProtocolRangeCheck(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(8, stats)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range operand")
		}
	}()
	p.Less(NewParty(1), 300, NewParty(2), 1)
}

func TestNewProtocolValidation(t *testing.T) {
	for _, bits := range []int{0, -1, 65} {
		func() {
			defer func() { recover() }()
			NewProtocol(bits, &Stats{})
			t.Fatalf("bits=%d must panic", bits)
		}()
	}
	func() {
		defer func() { recover() }()
		NewProtocol(32, nil)
		t.Fatal("nil stats must panic")
	}()
}

func TestObliviousTransferDeliversChoice(t *testing.T) {
	stats := &Stats{}
	sender := NewParty(12)
	for i := 0; i < 100; i++ {
		m0, m1 := byte(i%2), byte((i+1)%2)
		if got := obliviousTransferBit(sender, m0, m1, 0, stats); got != m0 {
			t.Fatalf("OT choice 0 returned %d", got)
		}
		if got := obliviousTransferBit(sender, m0, m1, 1, stats); got != m1 {
			t.Fatalf("OT choice 1 returned %d", got)
		}
	}
	if stats.OTs != 200 {
		t.Fatalf("OT count = %d", stats.OTs)
	}
}

// TestAcceptMHStatistics: accept frequency over uniform draws must match
// min(1, e^{fx−fy}).
func TestAcceptMHStatistics(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(48, stats)
	alice, bob := NewParty(13), NewParty(14)
	rng := rand.New(rand.NewSource(15))
	cases := []struct {
		fx, fy float64
	}{
		{10, 5},  // improvement: always accept
		{5, 5},   // equal: always accept (e^0 = 1)
		{5, 6},   // worse by 1: accept w.p. e^{-1}
		{5, 7.5}, // worse by 2.5: accept w.p. e^{-2.5}
	}
	for _, c := range cases {
		const trials = 4000
		accepts := 0
		for i := 0; i < trials; i++ {
			if p.AcceptMH(alice, c.fx, bob, c.fy, 1-rng.Float64()) {
				accepts++
			}
		}
		want := math.Min(1, math.Exp(c.fx-c.fy))
		got := float64(accepts) / trials
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("AcceptMH(%v,%v): rate %v, want %v", c.fx, c.fy, got, want)
		}
	}
}

func TestAcceptMHValidatesU(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(48, stats)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for u=0")
		}
	}()
	p.AcceptMH(NewParty(1), 1, NewParty(2), 1, 0)
}

func TestDiff(t *testing.T) {
	stats := &Stats{}
	p := NewProtocol(32, stats)
	alice, bob := NewParty(16), NewParty(17)
	for _, c := range [][2]int64{{10, 3}, {3, 10}, {-5, 5}, {0, 0}, {1 << 40, 1}} {
		if got := p.Diff(alice, c[0], bob, c[1]); got != c[0]-c[1] {
			t.Fatalf("Diff(%d,%d) = %d", c[0], c[1], got)
		}
	}
	if stats.Messages == 0 {
		t.Fatal("Diff recorded no traffic")
	}
}

func TestToFixedSaturates(t *testing.T) {
	// Values exceeding the bit width saturate instead of wrapping.
	big := toFixed(1e18, 32)
	if big != uint64(math.Ldexp(1, 32)-1) {
		t.Fatalf("toFixed overflow = %d", big)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative toFixed must panic")
		}
	}()
	toFixed(-1, 32)
}

// TestPartyDeterminism: a Party with the same seed yields the same protocol
// transcript, giving reproducible experiments.
func TestPartyDeterminism(t *testing.T) {
	run := func() []bool {
		stats := &Stats{}
		p := NewProtocol(16, stats)
		alice, bob := NewParty(20), NewParty(21)
		var outs []bool
		rng := rand.New(rand.NewSource(22))
		for i := 0; i < 50; i++ {
			outs = append(outs, p.Less(alice, uint64(rng.Intn(100)), bob, uint64(rng.Intn(100))))
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("protocol not deterministic under fixed seeds")
		}
	}
}
