// Package smc implements the secure two-party computation primitives that
// Lumos's tree constructor relies on: a simulated 1-out-of-2 oblivious
// transfer (OT) and, on top of it, a GMW-style secret-shared less-than
// comparator over L-bit integers in the spirit of CrypTFlow2's millionaires
// protocol (paper §V-C: degree comparisons in the greedy initialization and
// workload comparisons in Alg. 3 both run under this protocol, so that only
// the comparison bit — never the operand — is revealed; Definition 2's
// zero-knowledge requirement).
//
// Simulation caveat (documented substitution): the OT here is an in-process
// functionality — correctness, message counts, and the receiver's view are
// faithful (the receiver obtains exactly m_choice, the sender learns
// nothing about the choice, messages on the wire are one-time-pad masked by
// the sender's private randomness), but it does not implement the
// public-key base OTs / OT extension a deployment would use. All traffic is
// routed through Stats so experiments can account for every byte a real
// deployment would move.
package smc

import (
	"fmt"
	"math"
	"math/rand"
)

// Stats accumulates protocol traffic. One Stats is typically shared by all
// comparisons of an experiment run.
type Stats struct {
	Messages    int   // logical messages exchanged
	Bytes       int64 // bytes on the wire (modeled)
	OTs         int   // oblivious transfers executed
	Comparisons int   // top-level comparisons completed
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	s.Bytes += other.Bytes
	s.OTs += other.OTs
	s.Comparisons += other.Comparisons
}

// otWireBytes models the per-OT wire cost of an IKNP-style OT extension of
// single-bit secrets: a 128-bit column plus two masked payloads.
const otWireBytes = 18

// shareWireBytes models sending one packed share vector of L bits.
func shareWireBytes(bits int) int64 { return int64((bits + 7) / 8) }

// Party holds one participant's private randomness. In the federated
// system every device owns one Party seeded from its device id.
type Party struct {
	rng *rand.Rand
}

// NewParty returns a Party with its own deterministic randomness stream.
func NewParty(seed int64) *Party {
	return &Party{rng: rand.New(rand.NewSource(seed))}
}

func (p *Party) bit() byte { return byte(p.rng.Intn(2)) }

// obliviousTransferBit executes one simulated 1-out-of-2 OT of single-bit
// secrets: the receiver learns m[choice]; the sender learns nothing about
// choice. The sender's pad (drawn from its private randomness) models the
// masking a real OT provides.
func obliviousTransferBit(sender *Party, m0, m1 byte, choice byte, stats *Stats) byte {
	pad0, pad1 := sender.bit(), sender.bit()
	// Wire: sender transmits (m0⊕pad0, m1⊕pad1) plus the OT machinery that
	// lets the receiver unmask exactly one of them.
	c0, c1 := m0^pad0, m1^pad1
	stats.OTs++
	stats.Messages += 3 // receiver selection, sender payload, key transfer
	stats.Bytes += otWireBytes
	if choice == 0 {
		return c0 ^ pad0
	}
	return c1 ^ pad1
}

// sharedBit is one GF(2) secret-shared bit: value = a ^ b, with a held by
// Alice and b by Bob.
type sharedBit struct{ a, b byte }

// xor is the free local XOR gate.
func (x sharedBit) xor(y sharedBit) sharedBit { return sharedBit{x.a ^ y.a, x.b ^ y.b} }

// notBit flips the plaintext by flipping Alice's share only.
func (x sharedBit) notBit() sharedBit { return sharedBit{x.a ^ 1, x.b} }

// and evaluates a GMW AND gate using two OTs (one per cross term).
func andGate(alice, bob *Party, x, y sharedBit, stats *Stats) sharedBit {
	// x∧y = xA·yA ⊕ xA·yB ⊕ xB·yA ⊕ xB·yB.
	// Cross term xA·yB: Alice is OT sender with (s, s⊕xA); Bob selects yB.
	s1 := alice.bit()
	t1 := obliviousTransferBit(alice, s1, s1^x.a, y.b, stats)
	// Cross term xB·yA: Bob is OT sender with (s2, s2⊕xB); Alice selects yA.
	s2 := bob.bit()
	t2 := obliviousTransferBit(bob, s2, s2^x.b, y.a, stats)
	return sharedBit{
		a: (x.a & y.a) ^ s1 ^ t2,
		b: (x.b & y.b) ^ s2 ^ t1,
	}
}

// shareInput secret-shares owner's bit with the counterpart: the owner
// draws a random mask r (its share) and transmits value⊕r.
func shareInput(owner *Party, value byte, ownerIsAlice bool, stats *Stats) sharedBit {
	r := owner.bit()
	stats.Messages++
	if ownerIsAlice {
		return sharedBit{a: r, b: value ^ r}
	}
	return sharedBit{a: value ^ r, b: r}
}

// Protocol is a configured secure comparator.
type Protocol struct {
	// Bits is the operand width L. The paper stores degrees in L bits;
	// 32 comfortably covers any workload value in our experiments.
	Bits  int
	Stats *Stats
}

// NewProtocol returns a Protocol with the given operand width, recording
// traffic into stats (which must not be nil).
func NewProtocol(bits int, stats *Stats) *Protocol {
	if bits <= 0 || bits > 64 {
		panic(fmt.Sprintf("smc: operand width %d outside (0,64]", bits))
	}
	if stats == nil {
		panic("smc: NewProtocol needs a Stats sink")
	}
	return &Protocol{Bits: bits, Stats: stats}
}

// Less securely computes a < b where alice holds a and bob holds b. Both
// parties learn only the single result bit.
func (p *Protocol) Less(alice *Party, a uint64, bob *Party, b uint64) bool {
	p.checkRange(a)
	p.checkRange(b)
	// Input sharing: each party shares its L input bits (one packed message).
	p.Stats.Bytes += 2 * shareWireBytes(p.Bits)
	xs := make([]sharedBit, p.Bits)
	ys := make([]sharedBit, p.Bits)
	for i := 0; i < p.Bits; i++ {
		xs[i] = shareInput(alice, byte(a>>uint(i))&1, true, p.Stats)
		ys[i] = shareInput(bob, byte(b>>uint(i))&1, false, p.Stats)
	}
	// Bit-serial comparator, LSB → MSB:
	//   lt_i = (¬x_i ∧ y_i) ⊕ ((x_i ≡ y_i) ∧ lt_{i-1})
	lt := sharedBit{}
	for i := 0; i < p.Bits; i++ {
		diffLt := andGate(alice, bob, xs[i].notBit(), ys[i], p.Stats)
		eq := xs[i].xor(ys[i]).notBit()
		carry := andGate(alice, bob, eq, lt, p.Stats)
		lt = diffLt.xor(carry)
	}
	// Output reveal: parties exchange final shares.
	p.Stats.Messages += 2
	p.Stats.Bytes += 2
	p.Stats.Comparisons++
	return lt.a^lt.b == 1
}

// LessOrEqual securely computes a ≤ b (¬(b < a)).
func (p *Protocol) LessOrEqual(alice *Party, a uint64, bob *Party, b uint64) bool {
	return !p.Less(bob, b, alice, a)
}

func (p *Protocol) checkRange(v uint64) {
	if p.Bits < 64 && v >= 1<<uint(p.Bits) {
		panic(fmt.Sprintf("smc: operand %d exceeds %d-bit width", v, p.Bits))
	}
}

// ---------------------------------------------------------------------------
// Fixed-point comparison for the Metropolis-Hastings accept step
// ---------------------------------------------------------------------------

// FracBits is the fixed-point precision used when real-valued thresholds
// enter a secure comparison.
const FracBits = 16

// AcceptMH securely decides the Metropolis-Hastings acceptance
// U < e^{f(X)−f(X')} given that alice holds f(X) = fx (the current maximum
// workload) and bob holds f(X') = fy (the proposed one). Equivalent to
// deciding ln U < fx − fy, i.e. fy + lnU < fx, which is a single secure
// comparison on fixed-point operands — only the accept bit is revealed, a
// strictly smaller leak than revealing the difference itself.
//
// u must be in (0, 1]; it is drawn by the proposing device.
func (p *Protocol) AcceptMH(alice *Party, fx float64, bob *Party, fy float64, u float64) bool {
	if u <= 0 || u > 1 {
		panic(fmt.Sprintf("smc: MH uniform draw %v outside (0,1]", u))
	}
	lnU := math.Log(u) // ≤ 0
	// Compare fy + lnU < fx in fixed point. Offset both sides to stay
	// non-negative: lnU ≥ −50 in any practical draw; clamp defensively.
	if lnU < -1e6 {
		lnU = -1e6
	}
	left := fy + lnU
	right := fx
	// Shift both sides by the same offset so operands are non-negative.
	offset := 0.0
	if left < 0 {
		offset = -left
	}
	l := toFixed(left+offset, p.Bits)
	r := toFixed(right+offset, p.Bits)
	return p.Less(bob, l, alice, r)
}

func toFixed(v float64, bits int) uint64 {
	if v < 0 {
		panic(fmt.Sprintf("smc: fixed-point encode of negative %v", v))
	}
	x := v * float64(uint64(1)<<FracBits)
	limit := math.Ldexp(1, bits) - 1
	if x > limit {
		x = limit
	}
	return uint64(x)
}

// ---------------------------------------------------------------------------
// Secure difference (additive masking), kept for completeness
// ---------------------------------------------------------------------------

// Diff reveals a − b to the caller using additive masking through an
// exchange of blinded values: bob blinds b with fresh randomness, alice
// aggregates, bob unblinds the aggregate. Note that whoever learns a − b
// and knows one operand can recover the other — which is why the MCMC uses
// AcceptMH instead; Diff exists to mirror the paper's literal "compute
// f(Xt) − f(X't)" formulation and for tests.
func (p *Protocol) Diff(alice *Party, a int64, bob *Party, b int64) int64 {
	r := int64(bob.rng.Uint64() >> 1) // bob's blinding factor
	blinded := b + r                  // bob → alice
	partial := a - blinded            // alice → bob
	result := partial + r             // bob reveals a − b
	p.Stats.Messages += 3
	p.Stats.Bytes += 24
	return result
}
