package graph

import (
	"fmt"
	"math/rand"
)

// NodeSplit holds the vertex partition for supervised learning. The paper
// samples vertices uniformly 50% / 25% / 25% into train/val/test.
type NodeSplit struct {
	Train, Val, Test []int
	// IsTrain etc. are membership masks indexed by vertex.
	IsTrain, IsVal, IsTest []bool
}

// SplitNodes partitions vertices uniformly at random by the given
// fractions (trainFrac + valFrac ≤ 1; the remainder is the test set).
func SplitNodes(g *Graph, trainFrac, valFrac float64, rng *rand.Rand) (*NodeSplit, error) {
	if trainFrac <= 0 || valFrac < 0 || trainFrac+valFrac >= 1 {
		return nil, fmt.Errorf("graph: bad node split fractions %v/%v", trainFrac, valFrac)
	}
	perm := rng.Perm(g.N)
	nTrain := int(float64(g.N) * trainFrac)
	nVal := int(float64(g.N) * valFrac)
	if nTrain == 0 || nTrain+nVal >= g.N {
		return nil, fmt.Errorf("graph: split leaves empty partition (N=%d train=%d val=%d)", g.N, nTrain, nVal)
	}
	s := &NodeSplit{
		IsTrain: make([]bool, g.N),
		IsVal:   make([]bool, g.N),
		IsTest:  make([]bool, g.N),
	}
	for i, v := range perm {
		switch {
		case i < nTrain:
			s.Train = append(s.Train, v)
			s.IsTrain[v] = true
		case i < nTrain+nVal:
			s.Val = append(s.Val, v)
			s.IsVal[v] = true
		default:
			s.Test = append(s.Test, v)
			s.IsTest[v] = true
		}
	}
	return s, nil
}

// EdgeSplit holds the edge partition for unsupervised link prediction plus
// sampled negative (non-)edges for evaluation. The paper samples edges
// uniformly 80% / 5% / 15%.
type EdgeSplit struct {
	// TrainGraph contains only the training edges (same vertices/features).
	TrainGraph *Graph
	Train      [][2]int
	Val        [][2]int
	Test       [][2]int
	// ValNeg and TestNeg are sampled non-edges of the same sizes as Val
	// and Test, for ROC-AUC computation.
	ValNeg  [][2]int
	TestNeg [][2]int
}

// SplitEdges partitions edges uniformly at random and samples matching
// negative pairs that are non-edges of the full graph.
func SplitEdges(g *Graph, trainFrac, valFrac float64, rng *rand.Rand) (*EdgeSplit, error) {
	if trainFrac <= 0 || valFrac < 0 || trainFrac+valFrac >= 1 {
		return nil, fmt.Errorf("graph: bad edge split fractions %v/%v", trainFrac, valFrac)
	}
	m := len(g.Edges)
	if m < 10 {
		return nil, fmt.Errorf("graph: too few edges (%d) to split", m)
	}
	perm := rng.Perm(m)
	nTrain := int(float64(m) * trainFrac)
	nVal := int(float64(m) * valFrac)
	if nTrain == 0 || nTrain+nVal >= m {
		return nil, fmt.Errorf("graph: edge split leaves empty partition (M=%d)", m)
	}
	s := &EdgeSplit{}
	for i, idx := range perm {
		e := g.Edges[idx]
		switch {
		case i < nTrain:
			s.Train = append(s.Train, e)
		case i < nTrain+nVal:
			s.Val = append(s.Val, e)
		default:
			s.Test = append(s.Test, e)
		}
	}
	var err error
	s.TrainGraph, err = g.Subgraph(s.Train)
	if err != nil {
		return nil, err
	}
	s.ValNeg, err = SampleNonEdges(g, len(s.Val), rng)
	if err != nil {
		return nil, err
	}
	s.TestNeg, err = SampleNonEdges(g, len(s.Test), rng)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// SampleNonEdges draws k distinct vertex pairs that are not edges of g.
func SampleNonEdges(g *Graph, k int, rng *rand.Rand) ([][2]int, error) {
	maxPairs := g.N * (g.N - 1) / 2
	if k > maxPairs-len(g.Edges) {
		return nil, fmt.Errorf("graph: cannot sample %d non-edges from %d available",
			k, maxPairs-len(g.Edges))
	}
	out := make([][2]int, 0, k)
	seen := make(map[[2]int]bool, k)
	for len(out) < k {
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := [2]int{u, v}
		if seen[p] || g.HasEdge(u, v) {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out, nil
}
