package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lumos/internal/tensor"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	g, err := NewFromEdges(n, edges, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewFromEdgesDedupAndCanonical(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 3}, {2, 3}})
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (dedup + self-loop dropped)", g.NumEdges())
	}
	for _, e := range g.Edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not canonical", e)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge must be symmetric")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 1) || g.HasEdge(-1, 0) {
		t.Fatal("HasEdge false positives")
	}
}

func TestNewFromEdgesValidation(t *testing.T) {
	if _, err := NewFromEdges(0, nil, nil, nil, 0); err == nil {
		t.Fatal("expected error for empty graph")
	}
	if _, err := NewFromEdges(2, [][2]int{{0, 5}}, nil, nil, 0); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	if _, err := NewFromEdges(2, nil, tensor.New(3, 2), nil, 0); err == nil {
		t.Fatal("expected error for feature row mismatch")
	}
	if _, err := NewFromEdges(2, nil, nil, []int{0}, 2); err == nil {
		t.Fatal("expected error for label length mismatch")
	}
}

func TestDegreesAndStats(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Fatal("degrees wrong")
	}
	if g.MaxDegree() != 3 {
		t.Fatal("max degree wrong")
	}
	if g.AvgDegree() != 1.5 {
		t.Fatalf("avg degree = %v", g.AvgDegree())
	}
	st := g.ComputeStats()
	if st.N != 4 || st.M != 3 || st.MaxDeg != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEgoIsolation(t *testing.T) {
	feats := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	g, err := NewFromEdges(3, [][2]int{{0, 1}, {1, 2}}, feats, []int{7, 8, 9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Ego(1)
	if e.Center != 1 || len(e.Neighbors) != 2 || e.Label != 8 {
		t.Fatalf("ego = %+v", e)
	}
	// Mutating the ego must not affect the graph.
	e.Neighbors[0] = 99
	e.Feature[0] = 99
	if g.Adj[1][0] == 99 || g.Features.At(1, 0) == 99 {
		t.Fatal("Ego must copy state")
	}
	if len(g.Egos()) != 3 {
		t.Fatal("Egos count wrong")
	}
}

func TestSubgraphKeepsAttributes(t *testing.T) {
	feats := tensor.New(3, 2)
	g, err := NewFromEdges(3, [][2]int{{0, 1}, {1, 2}}, feats, []int{0, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := g.Subgraph([][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumEdges() != 1 || sg.N != 3 || sg.Features != feats || sg.Labels == nil {
		t.Fatalf("subgraph lost attributes")
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	g, err := Generate(GenConfig{Name: "t", N: 200, M: 900, Classes: 3, FeatureDim: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 200 || g.NumEdges() != 900 {
		t.Fatalf("generated %d vertices, %d edges", g.N, g.NumEdges())
	}
	if g.FeatureDim() != 24 || g.NumClasses != 3 {
		t.Fatal("feature/class dims wrong")
	}
	// Balanced classes.
	counts := make([]int, 3)
	for _, y := range g.Labels {
		counts[y]++
	}
	for _, c := range counts {
		if c < 60 || c > 73 {
			t.Fatalf("class counts unbalanced: %v", counts)
		}
	}
	// Binary features.
	for _, v := range g.Features.Data() {
		if v != 0 && v != 1 {
			t.Fatalf("feature value %v not binary", v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Name: "t", N: 100, M: 400, Classes: 2, FeatureDim: 8, Seed: 11}
	g1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	if !tensor.ApproxEqual(g1.Features, g2.Features, 0) {
		t.Fatal("same seed produced different features")
	}
}

func TestGenerateHomophily(t *testing.T) {
	g, err := Generate(GenConfig{Name: "t", N: 400, M: 3000, Classes: 4, FeatureDim: 16,
		Homophily: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, e := range g.Edges {
		if g.Labels[e[0]] == g.Labels[e[1]] {
			same++
		}
	}
	frac := float64(same) / float64(len(g.Edges))
	if frac < 0.6 {
		t.Fatalf("homophily 0.9 yielded intra-class fraction %v", frac)
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	g, err := Generate(GenConfig{Name: "t", N: 500, M: 4000, Classes: 2, FeatureDim: 8,
		PowerLaw: 2.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() < 3*int(g.AvgDegree()) {
		t.Fatalf("no heavy tail: max %d vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestGenerateLabelNoise(t *testing.T) {
	base := GenConfig{Name: "t", N: 600, M: 2400, Classes: 3, FeatureDim: 12, Seed: 6}
	noisy := base
	noisy.LabelNoise = 0.3
	g1, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: topology identical, labels differ on ≈ noise fraction.
	diff := 0
	for i := range g1.Labels {
		if g1.Labels[i] != g2.Labels[i] {
			diff++
		}
	}
	frac := float64(diff) / float64(len(g1.Labels))
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("label noise flipped %v, want ≈0.3", frac)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{N: 2, M: 1, Classes: 2, FeatureDim: 4},                         // too few vertices
		{N: 10, M: 100, Classes: 2, FeatureDim: 4},                      // too many edges
		{N: 10, M: 5, Classes: 1, FeatureDim: 4},                        // one class
		{N: 10, M: 5, Classes: 4, FeatureDim: 2},                        // dim < classes
		{N: 10, M: 5, Classes: 2, FeatureDim: 4, PowerLaw: 0.5},         // bad exponent
		{N: 10, M: 5, Classes: 2, FeatureDim: 4, Homophily: 1.5},        // bad homophily
		{N: 10, M: 5, Classes: 2, FeatureDim: 4, LabelNoise: 1.0},       // bad noise
		{N: 10, M: 0, Classes: 2, FeatureDim: 4},                        // no edges
		{N: 10, M: -1, Classes: 2, FeatureDim: 4},                       // negative edges
		{N: -5, M: 5, Classes: 2, FeatureDim: 4},                        // negative vertices
		{N: 10, M: 5, Classes: 2, FeatureDim: 4, ActivePerClass: 0 - 1}, // handled: negative treated as given
	}
	for i, cfg := range bad[:10] {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, cfg)
		}
	}
}

func TestPresetStats(t *testing.T) {
	fb, err := FacebookLike(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fb.NumClasses != 4 {
		t.Fatalf("facebook classes = %d", fb.NumClasses)
	}
	if fb.AvgDegree() < 10 || fb.AvgDegree() > 20 {
		t.Fatalf("facebook avg degree %v, want ≈15", fb.AvgDegree())
	}
	lf, err := LastFMLike(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lf.NumClasses != 18 || lf.FeatureDim() != 128 {
		t.Fatalf("lastfm dims wrong: %d classes, %d features", lf.NumClasses, lf.FeatureDim())
	}
	if lf.AvgDegree() < 10 || lf.AvgDegree() > 19 {
		t.Fatalf("lastfm avg degree %v, want ≈14.6", lf.AvgDegree())
	}
}

func TestPresetScaleValidation(t *testing.T) {
	if _, err := FacebookLike(0, 1); err == nil {
		t.Fatal("scale 0 must error")
	}
	if _, err := LastFMLike(1.5, 1); err == nil {
		t.Fatal("scale >1 must error")
	}
}

func TestSmallWorld(t *testing.T) {
	g, err := SmallWorld(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 40 || g.NumClasses != 2 {
		t.Fatalf("smallworld: %d nodes %d classes", g.N, g.NumClasses)
	}
	if _, err := SmallWorld(4, 2); err == nil {
		t.Fatal("too-small SmallWorld must error")
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g, err := Generate(GenConfig{Name: "roundtrip", N: 60, M: 150, Classes: 3, FeatureDim: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.N != g.N || back.NumEdges() != g.NumEdges() ||
		back.NumClasses != g.NumClasses {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for i := range g.Edges {
		if g.Edges[i] != back.Edges[i] {
			t.Fatal("edges differ after round trip")
		}
	}
	for i := range g.Labels {
		if g.Labels[i] != back.Labels[i] {
			t.Fatal("labels differ after round trip")
		}
	}
	if !tensor.ApproxEqual(g.Features, back.Features, 0) {
		t.Fatal("features differ after round trip")
	}
}

func TestGraphReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})); err == nil {
		t.Fatal("expected error on garbage input")
	}
}

func TestQuickGeneratedGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g, err := Generate(GenConfig{Name: "q", N: 50, M: 120, Classes: 2, FeatureDim: 6, Seed: seed})
		if err != nil {
			return false
		}
		// Adjacency consistent with edges; no self loops or duplicates.
		seen := map[[2]int]bool{}
		for _, e := range g.Edges {
			if e[0] == e[1] || seen[e] {
				return false
			}
			seen[e] = true
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		total := 0
		for v := 0; v < g.N; v++ {
			total += g.Degree(v)
		}
		return total == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSampler(t *testing.T) {
	s := newWeightedSampler([]float64{0, 0, 10, 0})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := s.sample(rng); got != 2 {
			t.Fatalf("sampler picked %d with all weight on 2", got)
		}
	}
	// All-zero weights degrade to uniform without panicking.
	z := newWeightedSampler([]float64{0, 0})
	if got := z.sample(rng); got != 0 && got != 1 {
		t.Fatalf("zero-weight sample = %d", got)
	}
}
