package graph

import (
	"fmt"
	"math"
	"math/rand"

	"lumos/internal/tensor"
)

// Synthetic social-graph generator.
//
// The paper evaluates on two crawled social networks (Facebook page-page,
// LastFM Asia). Those crawls are not available offline, so we generate
// degree-corrected planted-partition graphs that reproduce the statistics
// Lumos's mechanisms react to:
//
//   - heavy-tailed (power-law) degree distributions → degree heterogeneity,
//     the straggler/workload-imbalance problem of Definition 3;
//   - community structure correlated with labels → learnable classification
//     and link-prediction signal;
//   - sparse binary features correlated with labels → the bag-of-words-like
//     features the one-bit LDP encoder operates on.
//
// Edges are drawn Chung-Lu style: endpoints are sampled proportionally to
// per-vertex power-law weights, and with probability Homophily the second
// endpoint is resampled from the first endpoint's class.

// GenConfig parameterizes the generator.
type GenConfig struct {
	Name    string
	N       int // number of vertices
	M       int // target number of undirected edges
	Classes int
	// FeatureDim is the binary feature dimensionality.
	FeatureDim int
	// PowerLaw is the exponent α of the Pareto degree-weight distribution;
	// real social networks typically have α in (2, 3].
	PowerLaw float64
	// Homophily is the probability that an edge endpoint is resampled from
	// within the same class, controlling label signal in the topology.
	Homophily float64
	// FeatureSignal is the Bernoulli rate of class-indicative feature bits;
	// FeatureNoise is the background rate of all bits.
	FeatureSignal float64
	FeatureNoise  float64
	// ActivePerClass is how many feature dimensions are indicative of each
	// class (defaults to FeatureDim/Classes, capped).
	ActivePerClass int
	// LabelNoise is the fraction of vertices whose *observed* label is
	// flipped to a uniformly random other class after edges and features
	// are generated. It models the intrinsic Bayes error of real label
	// taxonomies (page categories, nationalities) and sets a realistic
	// accuracy ceiling for every system, centralized included.
	LabelNoise float64
	Seed       int64
}

// Validate fills defaults and sanity-checks the configuration.
func (c *GenConfig) Validate() error {
	if c.N < 4 {
		return fmt.Errorf("graph: generator needs N ≥ 4, got %d", c.N)
	}
	maxM := c.N * (c.N - 1) / 2
	if c.M <= 0 || c.M > maxM {
		return fmt.Errorf("graph: M=%d outside (0, %d]", c.M, maxM)
	}
	if c.Classes < 2 {
		return fmt.Errorf("graph: need ≥2 classes, got %d", c.Classes)
	}
	if c.FeatureDim < c.Classes {
		return fmt.Errorf("graph: FeatureDim=%d < Classes=%d", c.FeatureDim, c.Classes)
	}
	if c.PowerLaw == 0 {
		c.PowerLaw = 2.5
	}
	if c.PowerLaw <= 1 {
		return fmt.Errorf("graph: power-law exponent must exceed 1, got %v", c.PowerLaw)
	}
	if c.Homophily == 0 {
		c.Homophily = 0.8
	}
	if c.Homophily < 0 || c.Homophily > 1 {
		return fmt.Errorf("graph: homophily %v outside [0,1]", c.Homophily)
	}
	if c.FeatureSignal == 0 {
		c.FeatureSignal = 0.35
	}
	if c.FeatureNoise == 0 {
		c.FeatureNoise = 0.03
	}
	if c.ActivePerClass == 0 {
		c.ActivePerClass = c.FeatureDim / c.Classes
		if c.ActivePerClass > 48 {
			c.ActivePerClass = 48
		}
		if c.ActivePerClass < 1 {
			c.ActivePerClass = 1
		}
	}
	if c.LabelNoise < 0 || c.LabelNoise >= 1 {
		return fmt.Errorf("graph: label noise %v outside [0,1)", c.LabelNoise)
	}
	return nil
}

// Generate produces a synthetic attributed social graph per cfg.
func Generate(cfg GenConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Labels: balanced classes, shuffled.
	labels := make([]int, cfg.N)
	for i := range labels {
		labels[i] = i % cfg.Classes
	}
	rng.Shuffle(cfg.N, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })

	byClass := make([][]int, cfg.Classes)
	for v, y := range labels {
		byClass[y] = append(byClass[y], v)
	}

	// Power-law degree weights: Pareto with x_min=1, exponent α.
	weights := make([]float64, cfg.N)
	for i := range weights {
		u := rng.Float64()
		weights[i] = math.Pow(1-u, -1/(cfg.PowerLaw-1))
		// Cap to keep a single vertex from absorbing the whole edge budget.
		if cap := float64(cfg.N) / 10; weights[i] > cap {
			weights[i] = cap
		}
	}
	global := newWeightedSampler(weights)
	perClass := make([]*weightedSampler, cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		w := make([]float64, len(byClass[c]))
		for i, v := range byClass[c] {
			w[i] = weights[v]
		}
		perClass[c] = newWeightedSampler(w)
	}

	seen := make(map[[2]int]bool, cfg.M)
	edges := make([][2]int, 0, cfg.M)
	attempts := 0
	maxAttempts := 50 * cfg.M
	for len(edges) < cfg.M && attempts < maxAttempts {
		attempts++
		u := global.sample(rng)
		var v int
		if rng.Float64() < cfg.Homophily {
			c := labels[u]
			v = byClass[c][perClass[c].sample(rng)]
		} else {
			v = global.sample(rng)
		}
		if u == v {
			continue
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, k)
	}
	if len(edges) < cfg.M {
		// Dense corner of the config space: fill remaining edges uniformly.
		for len(edges) < cfg.M {
			u, v := rng.Intn(cfg.N), rng.Intn(cfg.N)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			k := [2]int{u, v}
			if seen[k] {
				continue
			}
			seen[k] = true
			edges = append(edges, k)
		}
	}

	// Features: class-indicative dimensions fire at FeatureSignal, all
	// dimensions fire at FeatureNoise.
	active := make([][]int, cfg.Classes)
	perm := rng.Perm(cfg.FeatureDim)
	pos := 0
	for c := 0; c < cfg.Classes; c++ {
		for k := 0; k < cfg.ActivePerClass; k++ {
			active[c] = append(active[c], perm[pos%cfg.FeatureDim])
			pos++
		}
	}
	feats := tensor.New(cfg.N, cfg.FeatureDim)
	for v := 0; v < cfg.N; v++ {
		row := feats.Row(v)
		for d := range row {
			if rng.Float64() < cfg.FeatureNoise {
				row[d] = 1
			}
		}
		for _, d := range active[labels[v]] {
			if rng.Float64() < cfg.FeatureSignal {
				row[d] = 1
			}
		}
	}

	// Observed-label noise: flip after topology and features are fixed so
	// the flipped vertices keep their latent class's connectivity/features.
	if cfg.LabelNoise > 0 {
		for v := range labels {
			if rng.Float64() < cfg.LabelNoise {
				o := rng.Intn(cfg.Classes - 1)
				if o >= labels[v] {
					o++
				}
				labels[v] = o
			}
		}
	}

	g, err := NewFromEdges(cfg.N, edges, feats, labels, cfg.Classes)
	if err != nil {
		return nil, err
	}
	g.Name = cfg.Name
	return g, nil
}

// weightedSampler draws indices proportionally to fixed non-negative
// weights using binary search over the cumulative distribution.
type weightedSampler struct {
	cum   []float64
	total float64
}

func newWeightedSampler(w []float64) *weightedSampler {
	s := &weightedSampler{cum: make([]float64, len(w))}
	acc := 0.0
	for i, x := range w {
		if x < 0 {
			panic(fmt.Sprintf("graph: negative sampling weight %v at %d", x, i))
		}
		acc += x
		s.cum[i] = acc
	}
	s.total = acc
	return s
}

func (s *weightedSampler) sample(rng *rand.Rand) int {
	if s.total <= 0 {
		return rng.Intn(len(s.cum))
	}
	x := rng.Float64() * s.total
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
