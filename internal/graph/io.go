package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"lumos/internal/tensor"
)

// Binary (de)serialization so generated datasets can be stored and shared
// (cmd/lumos-datagen). Format: magic, name, dims, edges, labels, feature
// matrix blob — all little-endian and length-prefixed.

const graphMagic = uint32(0x4c475248) // "LGRH"

// Write serializes the graph.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	write := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	name := []byte(g.Name)
	if err := write(graphMagic, uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	if err := write(uint32(g.N), uint32(len(g.Edges)), uint32(g.NumClasses),
		g.FeatLo, g.FeatHi); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if err := write(uint32(e[0]), uint32(e[1])); err != nil {
			return err
		}
	}
	hasLabels := uint32(0)
	if g.Labels != nil {
		hasLabels = 1
	}
	if err := write(hasLabels); err != nil {
		return err
	}
	if g.Labels != nil {
		for _, y := range g.Labels {
			if err := write(uint32(y)); err != nil {
				return err
			}
		}
	}
	hasFeats := uint32(0)
	if g.Features != nil {
		hasFeats = 1
	}
	if err := write(hasFeats); err != nil {
		return err
	}
	if g.Features != nil {
		blob, err := g.Features.MarshalBinary()
		if err != nil {
			return err
		}
		if err := write(uint32(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a graph written by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	read := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var magic, nameLen uint32
	if err := read(&magic, &nameLen); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if magic != graphMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var n, m, classes uint32
	var lo, hi float64
	if err := read(&n, &m, &classes, &lo, &hi); err != nil {
		return nil, err
	}
	edges := make([][2]int, m)
	for i := range edges {
		var u, v uint32
		if err := read(&u, &v); err != nil {
			return nil, err
		}
		edges[i] = [2]int{int(u), int(v)}
	}
	var hasLabels uint32
	if err := read(&hasLabels); err != nil {
		return nil, err
	}
	var labels []int
	if hasLabels == 1 {
		labels = make([]int, n)
		for i := range labels {
			var y uint32
			if err := read(&y); err != nil {
				return nil, err
			}
			labels[i] = int(y)
		}
	}
	var hasFeats uint32
	if err := read(&hasFeats); err != nil {
		return nil, err
	}
	var feats *tensor.Matrix
	if hasFeats == 1 {
		var blobLen uint32
		if err := read(&blobLen); err != nil {
			return nil, err
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, err
		}
		var mat tensor.Matrix
		if err := mat.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		feats = &mat
	}
	g, err := NewFromEdges(int(n), edges, feats, labels, int(classes))
	if err != nil {
		return nil, err
	}
	g.Name = string(name)
	g.FeatLo, g.FeatHi = lo, hi
	return g, nil
}
