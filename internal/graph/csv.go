package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lumos/internal/tensor"
)

// CSV/edge-list ingestion. The paper's datasets (Facebook page-page, LastFM
// Asia from the MUSAE/FEATHER releases) ship as edge-list CSVs plus
// per-node feature/label tables. These loaders let the library run on the
// real crawls when they are available locally; the synthetic presets stand
// in when they are not.

// ReadEdgeList parses lines of "u,v" (or "u v" / "u\tv") pairs, ignoring
// blank lines and lines starting with '#' or a non-numeric header. Vertex
// ids must be non-negative integers; n is inferred as max id + 1 unless a
// larger minN is given.
func ReadEdgeList(r io.Reader, minN int) (n int, edges [][2]int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if len(fields) < 2 {
			return 0, nil, fmt.Errorf("graph: edge list line %d: %q", lineNo, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			if lineNo == 1 {
				continue // header row ("id_1,id_2")
			}
			return 0, nil, fmt.Errorf("graph: edge list line %d: %q", lineNo, line)
		}
		if u < 0 || v < 0 {
			return 0, nil, fmt.Errorf("graph: negative vertex id on line %d", lineNo)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	n = maxID + 1
	if n < minN {
		n = minN
	}
	if n == 0 {
		return 0, nil, fmt.Errorf("graph: empty edge list")
	}
	return n, edges, nil
}

// ReadLabels parses lines of "id,label" into a dense label slice of length
// n (vertices absent from the file get label 0). Labels may be arbitrary
// strings; they are mapped to consecutive integers in order of first
// appearance. Returns the labels and the number of distinct classes.
func ReadLabels(r io.Reader, n int) ([]int, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	labels := make([]int, n)
	classOf := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: label line %d: %q", lineNo, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			if lineNo == 1 {
				continue // header
			}
			return nil, 0, fmt.Errorf("graph: label line %d: %q", lineNo, line)
		}
		if id < 0 || id >= n {
			return nil, 0, fmt.Errorf("graph: label id %d outside [0,%d)", id, n)
		}
		cls, ok := classOf[fields[1]]
		if !ok {
			cls = len(classOf)
			classOf[fields[1]] = cls
		}
		labels[id] = cls
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(classOf) < 2 {
		return nil, 0, fmt.Errorf("graph: label file has %d distinct classes", len(classOf))
	}
	return labels, len(classOf), nil
}

// ReadSparseFeatures parses lines of "id,dim" (one active binary feature
// per line, MUSAE style) into an n×d binary feature matrix; d is inferred
// as max dim + 1 unless a larger minD is given.
func ReadSparseFeatures(r io.Reader, n, minD int) (*tensor.Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type nz struct{ id, dim int }
	var entries []nz
	maxDim := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: feature line %d: %q", lineNo, line)
		}
		id, err1 := strconv.Atoi(fields[0])
		dim, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			if lineNo == 1 {
				continue // header
			}
			return nil, fmt.Errorf("graph: feature line %d: %q", lineNo, line)
		}
		if id < 0 || id >= n || dim < 0 {
			return nil, fmt.Errorf("graph: feature entry (%d,%d) out of range on line %d", id, dim, lineNo)
		}
		if dim > maxDim {
			maxDim = dim
		}
		entries = append(entries, nz{id, dim})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	d := maxDim + 1
	if d < minD {
		d = minD
	}
	if d == 0 {
		return nil, fmt.Errorf("graph: empty feature file")
	}
	feats := tensor.New(n, d)
	for _, e := range entries {
		feats.Set(e.id, e.dim, 1)
	}
	return feats, nil
}

// LoadCSVDataset assembles a Graph from the three MUSAE-style readers.
// features and labels may be nil readers (pass nil) for structure-only
// graphs.
func LoadCSVDataset(name string, edgesR, featuresR, labelsR io.Reader) (*Graph, error) {
	n, edges, err := ReadEdgeList(edgesR, 0)
	if err != nil {
		return nil, fmt.Errorf("graph: loading edges: %w", err)
	}
	var feats *tensor.Matrix
	if featuresR != nil {
		if feats, err = ReadSparseFeatures(featuresR, n, 0); err != nil {
			return nil, fmt.Errorf("graph: loading features: %w", err)
		}
	}
	var labels []int
	classes := 0
	if labelsR != nil {
		if labels, classes, err = ReadLabels(labelsR, n); err != nil {
			return nil, fmt.Errorf("graph: loading labels: %w", err)
		}
	}
	g, err := NewFromEdges(n, edges, feats, labels, classes)
	if err != nil {
		return nil, err
	}
	g.Name = name
	return g, nil
}

func splitFields(line string) []string {
	if strings.ContainsRune(line, ',') {
		parts := strings.Split(line, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	return strings.Fields(line)
}
