// Package graph provides the graph substrate for the federated learning
// system: an undirected attributed graph type, ego-network views (the only
// thing a device is allowed to see in the node-level federated setting),
// synthetic social-graph generators with power-law degree heterogeneity,
// dataset presets standing in for the paper's Facebook page-page and LastFM
// Asia crawls, and train/validation/test splitting for both node
// classification and link prediction.
package graph

import (
	"fmt"
	"sort"

	"lumos/internal/tensor"
)

// Graph is an undirected simple graph with node features and labels.
// Vertices are indexed 0..N-1; in the federated system vertex v is device v.
type Graph struct {
	Name string
	N    int
	// Adj holds sorted neighbor lists.
	Adj [][]int
	// Edges holds each undirected edge once, canonicalized u < v.
	Edges [][2]int
	// Features is the N×D feature matrix with entries in [FeatLo, FeatHi].
	Features *tensor.Matrix
	// Labels holds the class of each vertex, in [0, NumClasses).
	Labels     []int
	NumClasses int
	// FeatLo and FeatHi are the value bounds [a, b] assumed by the LDP
	// one-bit encoder.
	FeatLo, FeatHi float64
}

// NewFromEdges builds a Graph from an edge list, deduplicating and dropping
// self-loops. Features and labels may be nil for purely structural graphs.
func NewFromEdges(n int, edges [][2]int, features *tensor.Matrix, labels []int, numClasses int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: need at least one vertex, got %d", n)
	}
	if features != nil && features.Rows() != n {
		return nil, fmt.Errorf("graph: %d feature rows for %d vertices", features.Rows(), n)
	}
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("graph: %d labels for %d vertices", len(labels), n)
	}
	seen := make(map[[2]int]bool, len(edges))
	canon := make([][2]int, 0, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if u < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e[0], e[1], n)
		}
		k := [2]int{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		canon = append(canon, k)
	}
	g := &Graph{
		N:          n,
		Adj:        make([][]int, n),
		Edges:      canon,
		Features:   features,
		Labels:     labels,
		NumClasses: numClasses,
		FeatLo:     0,
		FeatHi:     1,
	}
	for _, e := range canon {
		g.Adj[e[0]] = append(g.Adj[e[0]], e[1])
		g.Adj[e[1]] = append(g.Adj[e[1]], e[0])
	}
	for v := range g.Adj {
		sort.Ints(g.Adj[v])
	}
	return g, nil
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degree returns deg(v).
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// MaxDegree returns the largest degree in the graph (0 for edgeless graphs).
func (g *Graph) MaxDegree() int {
	mx := 0
	for v := 0; v < g.N; v++ {
		if d := len(g.Adj[v]); d > mx {
			mx = d
		}
	}
	return mx
}

// AvgDegree returns the mean degree 2|E|/|V|.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return 2 * float64(len(g.Edges)) / float64(g.N)
}

// HasEdge reports whether {u,v} is an edge, by binary search on Adj[u].
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N || v < 0 || v >= g.N || u == v {
		return false
	}
	adj := g.Adj[u]
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// FeatureDim returns the feature dimensionality D (0 if featureless).
func (g *Graph) FeatureDim() int {
	if g.Features == nil {
		return 0
	}
	return g.Features.Cols()
}

// Degrees returns a fresh slice of all vertex degrees.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N)
	for v := range d {
		d[v] = len(g.Adj[v])
	}
	return d
}

// EgoNet is the complete local view of a device in the node-level federated
// setting: its own id, feature, label, and the identities of its direct
// neighbors — nothing else (paper §IV-A).
type EgoNet struct {
	Center    int
	Neighbors []int
	Feature   []float64
	Label     int
}

// Ego extracts device v's ego network. The returned slices are copies: a
// device must not be able to mutate (or observe mutations of) global state.
func (g *Graph) Ego(v int) *EgoNet {
	if v < 0 || v >= g.N {
		panic(fmt.Sprintf("graph: ego of vertex %d outside [0,%d)", v, g.N))
	}
	e := &EgoNet{Center: v}
	e.Neighbors = append([]int(nil), g.Adj[v]...)
	if g.Features != nil {
		e.Feature = append([]float64(nil), g.Features.Row(v)...)
	}
	if g.Labels != nil {
		e.Label = g.Labels[v]
	}
	return e
}

// Egos extracts all ego networks, the federated system's initial state.
func (g *Graph) Egos() []*EgoNet {
	out := make([]*EgoNet, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = g.Ego(v)
	}
	return out
}

// Subgraph returns a new graph keeping only the given edges (same vertex
// set, features, labels). Used to build the training graph in edge splits.
func (g *Graph) Subgraph(edges [][2]int) (*Graph, error) {
	sg, err := NewFromEdges(g.N, edges, g.Features, g.Labels, g.NumClasses)
	if err != nil {
		return nil, err
	}
	sg.Name = g.Name + "/sub"
	sg.FeatLo, sg.FeatHi = g.FeatLo, g.FeatHi
	return sg, nil
}

// Stats summarizes structural properties for logging and dataset tables.
type Stats struct {
	N, M              int
	AvgDeg            float64
	MaxDeg            int
	FeatureDim        int
	Classes           int
	DegreeGini        float64
	Top1PctDegreeMass float64
}

// ComputeStats gathers summary statistics, including degree-concentration
// measures that quantify the degree heterogeneity the paper targets.
func (g *Graph) ComputeStats() Stats {
	degs := g.Degrees()
	sorted := append([]int(nil), degs...)
	sort.Ints(sorted)
	total := 0
	for _, d := range sorted {
		total += d
	}
	gini := 0.0
	if total > 0 {
		// Gini over the sorted degree sequence.
		cum := 0.0
		for i, d := range sorted {
			cum += float64(d) * (2*float64(i+1) - float64(len(sorted)) - 1)
		}
		gini = cum / (float64(len(sorted)) * float64(total))
	}
	topMass := 0.0
	if total > 0 {
		k := len(sorted) / 100
		if k < 1 {
			k = 1
		}
		topSum := 0
		for _, d := range sorted[len(sorted)-k:] {
			topSum += d
		}
		topMass = float64(topSum) / float64(total)
	}
	return Stats{
		N: g.N, M: len(g.Edges),
		AvgDeg:            g.AvgDegree(),
		MaxDeg:            g.MaxDegree(),
		FeatureDim:        g.FeatureDim(),
		Classes:           g.NumClasses,
		DegreeGini:        gini,
		Top1PctDegreeMass: topMass,
	}
}
