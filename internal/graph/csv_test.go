package graph

import (
	"strings"
	"testing"
)

func TestReadEdgeListFormats(t *testing.T) {
	in := "id_1,id_2\n0,1\n1,2\n# comment\n\n2,3\n"
	n, edges, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(edges) != 3 {
		t.Fatalf("n=%d edges=%d", n, len(edges))
	}
	// Whitespace-separated variant.
	n2, edges2, err := ReadEdgeList(strings.NewReader("0 5\n5\t2\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 10 || len(edges2) != 2 {
		t.Fatalf("n=%d edges=%d", n2, len(edges2))
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"0,1\nx,y\n",   // garbage past the header position
		"0,-1\n",       // negative id
		"justonecol\n", // too few fields
	}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Fatalf("input %q must error", in)
		}
	}
}

func TestReadLabelsMapsClasses(t *testing.T) {
	in := "id,target\n0,cat\n1,dog\n2,cat\n"
	labels, classes, err := ReadLabels(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	if classes != 2 {
		t.Fatalf("classes = %d", classes)
	}
	if labels[0] != labels[2] || labels[0] == labels[1] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[3] != 0 {
		t.Fatal("absent vertex must default to class 0")
	}
}

func TestReadLabelsErrors(t *testing.T) {
	if _, _, err := ReadLabels(strings.NewReader("0,only\n1,only\n"), 2); err == nil {
		t.Fatal("single class must error")
	}
	if _, _, err := ReadLabels(strings.NewReader("9,x\n0,y\n"), 2); err == nil {
		t.Fatal("out-of-range id must error")
	}
}

func TestReadSparseFeatures(t *testing.T) {
	in := "node_id,feature_id\n0,2\n0,5\n1,0\n"
	feats, err := ReadSparseFeatures(strings.NewReader(in), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if feats.Rows() != 3 || feats.Cols() != 6 {
		t.Fatalf("features %dx%d", feats.Rows(), feats.Cols())
	}
	if feats.At(0, 2) != 1 || feats.At(0, 5) != 1 || feats.At(1, 0) != 1 {
		t.Fatal("active entries missing")
	}
	if feats.At(2, 0) != 0 {
		t.Fatal("inactive entry set")
	}
	if _, err := ReadSparseFeatures(strings.NewReader("5,0\n"), 3, 0); err == nil {
		t.Fatal("out-of-range id must error")
	}
}

func TestLoadCSVDatasetEndToEnd(t *testing.T) {
	edges := "id_1,id_2\n0,1\n1,2\n2,0\n3,1\n"
	feats := "node,feat\n0,0\n1,1\n2,0\n3,1\n"
	labels := "id,target\n0,a\n1,b\n2,a\n3,b\n"
	g, err := LoadCSVDataset("csvtest",
		strings.NewReader(edges), strings.NewReader(feats), strings.NewReader(labels))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 4 || g.NumClasses != 2 || g.FeatureDim() != 2 {
		t.Fatalf("loaded graph: %+v", g.ComputeStats())
	}
	if g.Name != "csvtest" {
		t.Fatal("name not set")
	}
	// Structure-only load.
	g2, err := LoadCSVDataset("bare", strings.NewReader(edges), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Features != nil || g2.Labels != nil {
		t.Fatal("bare load must have no attributes")
	}
}
