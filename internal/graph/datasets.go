package graph

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// Dataset presets. Each preset mirrors the headline statistics of one of
// the paper's datasets and accepts a scale factor so tests and benchmarks
// can run laptop-sized instances while preserving mean degree, class count,
// and degree-tail shape. scale = 1 reproduces the full vertex/edge counts.
//
//	Facebook page-page: 22,470 vertices, 170,912 edges, 4,714 features,
//	                    4 classes (page categories)
//	LastFM Asia:         7,624 vertices, 55,612 edges, 128 features,
//	                    18 classes (user nationalities)
//
// Feature dimensionality is scaled down alongside N for the Facebook
// preset (the real 4,714-dim bag of words at scale 1 is allowed but slow);
// the LDP encoder's bin mechanics only depend on the ratio d / wl(u), which
// stays in a realistic regime.

// FacebookLike returns a synthetic stand-in for the Facebook page-page
// graph at the given scale ∈ (0, 1].
func FacebookLike(scale float64, seed int64) (*Graph, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("graph: scale %v outside (0,1]", scale)
	}
	n := scaledInt(22470, scale, 60)
	m := scaledInt(170912, scale, 8*60/2)
	d := scaledInt(4714, scale, 96)
	if d > 512 && scale < 1 {
		d = 512 // keep scaled runs fast; full scale keeps the real width
	}
	return Generate(GenConfig{
		Name:       fmt.Sprintf("facebook-like(x%.3g)", scale),
		N:          n,
		M:          capEdges(m, n),
		Classes:    4,
		FeatureDim: d,
		PowerLaw:   2.3,
		Homophily:  0.85,
		// Page-category labels carry intrinsic taxonomy noise; this sets a
		// realistic accuracy ceiling (centralized GCN reaches ~0.84 on the
		// real crawl, not 1.0).
		LabelNoise: 0.12,
		Seed:       seed,
	})
}

// LastFMLike returns a synthetic stand-in for the LastFM Asia graph at the
// given scale ∈ (0, 1].
func LastFMLike(scale float64, seed int64) (*Graph, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("graph: scale %v outside (0,1]", scale)
	}
	n := scaledInt(7624, scale, 90)
	m := scaledInt(55612, scale, 90*7/2)
	return Generate(GenConfig{
		Name:       fmt.Sprintf("lastfm-like(x%.3g)", scale),
		N:          n,
		M:          capEdges(m, n),
		Classes:    18,
		FeatureDim: 128,
		PowerLaw:   2.5,
		Homophily:  0.85,
		// The real features (preferred musicians) are strongly indicative
		// of the nationality label and redundant — a user follows dozens of
		// artists popular in their country. High signal rate plus many
		// (partially overlapping) indicative dimensions mirrors that
		// redundancy, which is what lets signal survive LDP noise.
		FeatureSignal:  0.6,
		ActivePerClass: 24,
		// Nationality labels on a music site are noisy (expats, multi-
		// national users); centralized GCN reaches ~0.77 on the real crawl.
		LabelNoise: 0.18,
		Seed:       seed,
	})
}

// SmallWorld returns a small deterministic test graph: a ring of n vertices
// with k extra chords, 2 classes, 8 features. Useful in unit tests that
// need a connected graph with known structure.
func SmallWorld(n int, seed int64) (*Graph, error) {
	if n < 8 {
		return nil, fmt.Errorf("graph: SmallWorld needs n ≥ 8, got %d", n)
	}
	return Generate(GenConfig{
		Name:       fmt.Sprintf("smallworld(%d)", n),
		N:          n,
		M:          capEdges(3*n, n),
		Classes:    2,
		FeatureDim: 8,
		PowerLaw:   2.8,
		Homophily:  0.75,
		Seed:       seed,
	})
}

func scaledInt(full int, scale float64, min int) int {
	v := int(math.Round(float64(full) * scale))
	if v < min {
		v = min
	}
	if v > full {
		v = full
	}
	return v
}

func capEdges(m, n int) int {
	if mx := n * (n - 1) / 2; m > mx {
		return mx
	}
	return m
}

// LoadDataset resolves a CLI dataset spec shared by the lumos binaries:
// "facebook"/"fb" and "lastfm"/"lf" select the synthetic presets at the
// given scale, and "file:<path>" reads a serialized graph from disk.
func LoadDataset(spec string, scale float64, seed int64) (*Graph, error) {
	switch {
	case spec == "facebook" || spec == "fb":
		return FacebookLike(scale, seed)
	case spec == "lastfm" || spec == "lf":
		return LastFMLike(scale, seed)
	case strings.HasPrefix(spec, "file:"):
		f, err := os.Open(strings.TrimPrefix(spec, "file:"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return Read(f)
	default:
		return nil, fmt.Errorf("graph: unknown dataset %q (want facebook|lastfm|file:<path>)", spec)
	}
}
