package graph

import (
	"math/rand"
	"testing"
)

func splitTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Generate(GenConfig{Name: "split", N: 200, M: 800, Classes: 2, FeatureDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSplitNodesPartition(t *testing.T) {
	g := splitTestGraph(t)
	s, err := SplitNodes(g, 0.5, 0.25, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Train)+len(s.Val)+len(s.Test) != g.N {
		t.Fatal("split does not partition the vertex set")
	}
	if len(s.Train) != 100 || len(s.Val) != 50 {
		t.Fatalf("split sizes %d/%d/%d", len(s.Train), len(s.Val), len(s.Test))
	}
	seen := make([]int, g.N)
	for _, v := range s.Train {
		seen[v]++
	}
	for _, v := range s.Val {
		seen[v]++
	}
	for _, v := range s.Test {
		seen[v]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d appears %d times", v, c)
		}
	}
	for _, v := range s.Train {
		if !s.IsTrain[v] || s.IsVal[v] || s.IsTest[v] {
			t.Fatal("masks inconsistent")
		}
	}
}

func TestSplitNodesValidation(t *testing.T) {
	g := splitTestGraph(t)
	rng := rand.New(rand.NewSource(1))
	for _, fr := range [][2]float64{{0, 0.2}, {0.8, 0.3}, {-0.1, 0.2}, {1.0, 0}} {
		if _, err := SplitNodes(g, fr[0], fr[1], rng); err == nil {
			t.Fatalf("fractions %v must error", fr)
		}
	}
}

func TestSplitEdgesPartition(t *testing.T) {
	g := splitTestGraph(t)
	s, err := SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Train)+len(s.Val)+len(s.Test) != g.NumEdges() {
		t.Fatal("edge split does not partition")
	}
	if s.TrainGraph.NumEdges() != len(s.Train) {
		t.Fatal("train graph edge count mismatch")
	}
	if len(s.ValNeg) != len(s.Val) || len(s.TestNeg) != len(s.Test) {
		t.Fatal("negative sample counts mismatch")
	}
	// Negatives must not be edges of the full graph.
	for _, e := range append(append([][2]int{}, s.ValNeg...), s.TestNeg...) {
		if g.HasEdge(e[0], e[1]) {
			t.Fatalf("negative sample %v is an edge", e)
		}
	}
	// Test edges must be absent from the training graph.
	for _, e := range s.Test {
		if s.TrainGraph.HasEdge(e[0], e[1]) {
			t.Fatalf("test edge %v leaked into train graph", e)
		}
	}
}

func TestSplitEdgesTooFew(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}})
	if _, err := SplitEdges(g, 0.8, 0.05, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for tiny edge set")
	}
}

func TestSampleNonEdges(t *testing.T) {
	g := splitTestGraph(t)
	rng := rand.New(rand.NewSource(4))
	ne, err := SampleNonEdges(g, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ne) != 50 {
		t.Fatalf("sampled %d non-edges", len(ne))
	}
	seen := map[[2]int]bool{}
	for _, e := range ne {
		if g.HasEdge(e[0], e[1]) || e[0] == e[1] || seen[e] {
			t.Fatalf("bad non-edge %v", e)
		}
		seen[e] = true
	}
}

func TestSampleNonEdgesExhausted(t *testing.T) {
	// Complete graph on 4 vertices: no non-edges available.
	g := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if _, err := SampleNonEdges(g, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error when no non-edges exist")
	}
}
