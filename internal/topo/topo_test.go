package topo

import (
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestRingDegreeAndConnectivity(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		tp, err := Ring(21, k)
		if err != nil {
			t.Fatalf("Ring(21,%d): %v", k, err)
		}
		for d := 0; d < tp.N(); d++ {
			if tp.Degree(d) != k {
				t.Fatalf("ring k=%d: device %d has degree %d", k, d, tp.Degree(d))
			}
		}
		if !tp.Connected() {
			t.Fatalf("ring k=%d disconnected", k)
		}
		if got := tp.NumEdges(); got != 21*k/2 {
			t.Fatalf("ring k=%d: %d edges, want %d", k, got, 21*k/2)
		}
	}
	if _, err := Ring(10, 3); err == nil {
		t.Fatal("odd ring degree accepted")
	}
	if _, err := Ring(4, 4); err == nil {
		t.Fatal("ring degree >= n accepted")
	}
}

func TestKRegularExactDegree(t *testing.T) {
	tp, err := KRegular(30, 4, 11)
	if err != nil {
		t.Fatalf("KRegular: %v", err)
	}
	for d := 0; d < tp.N(); d++ {
		if tp.Degree(d) != 4 {
			t.Fatalf("device %d has degree %d, want 4", d, tp.Degree(d))
		}
	}
	if !tp.Connected() {
		t.Fatal("4-regular over 30 devices came out disconnected")
	}
	if _, err := KRegular(5, 3, 1); err == nil {
		t.Fatal("odd n·k accepted")
	}
}

func TestBarabasiAlbertPowerLawTail(t *testing.T) {
	tp, err := BarabasiAlbert(300, 2, 7)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	if !tp.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Every non-core device attaches with exactly m=2 edges on top of the
	// complete K3 core, so the edge count is pinned: 3 + 2·297.
	if got, want := tp.NumEdges(), 3+2*297; got != want {
		t.Fatalf("edge count %d, want %d", got, want)
	}
	degs := make([]int, tp.N())
	for d := range degs {
		degs[d] = tp.Degree(d)
		if degs[d] < 2 {
			t.Fatalf("device %d has degree %d < m", d, degs[d])
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// Preferential attachment concentrates degree: the heaviest hub must be
	// far above the m≈2 typical device (a heavy tail the ER/regular
	// generators cannot produce), and the median must stay near m.
	if degs[0] < 5*degs[len(degs)/2] {
		t.Fatalf("no hub: max degree %d vs median %d", degs[0], degs[len(degs)/2])
	}
	if degs[len(degs)/2] > 4 {
		t.Fatalf("median degree %d, want near m=2", degs[len(degs)/2])
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	build := func() []*Topology {
		r, _ := Ring(24, 4)
		k, _ := KRegular(24, 3, 5)
		b, _ := BarabasiAlbert(24, 2, 5)
		c, _ := Complete(12)
		return []*Topology{r, k, b, c}
	}
	a, b := build(), build()
	for i := range a {
		if !reflect.DeepEqual(a[i].Edges(), b[i].Edges()) {
			t.Fatalf("%s: same seed produced different edge lists", a[i].Name())
		}
	}
	k1, _ := KRegular(24, 3, 5)
	k2, _ := KRegular(24, 3, 6)
	if reflect.DeepEqual(k1.Edges(), k2.Edges()) {
		t.Fatal("different seeds produced identical k-regular graphs")
	}
}

func TestFromEdgesRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{"self-loop", 4, [][2]int{{1, 1}}},
		{"out-of-range", 4, [][2]int{{0, 4}}},
		{"negative", 4, [][2]int{{-1, 2}}},
		{"duplicate", 4, [][2]int{{0, 1}, {1, 0}}},
		{"too-small", 1, nil},
	}
	for _, c := range cases {
		if _, err := FromEdges(c.name, c.n, c.edges); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	orig, err := BarabasiAlbert(20, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"contacts.csv", "contacts.json"} {
		path := filepath.Join(dir, name)
		if err := orig.Save(path); err != nil {
			t.Fatalf("save %s: %v", name, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if got.N() != orig.N() {
			t.Fatalf("%s: %d nodes, want %d", name, got.N(), orig.N())
		}
		if !reflect.DeepEqual(got.Edges(), orig.Edges()) {
			t.Fatalf("%s: edges changed across round-trip", name)
		}
		// Save→load→save must be byte-stable (canonical edge order).
		again := filepath.Join(dir, "again-"+name)
		if err := got.Save(again); err != nil {
			t.Fatal(err)
		}
		t2, err := Load(again)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(t2.Edges(), orig.Edges()) {
			t.Fatalf("%s: second round-trip drifted", name)
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []struct{ name, body string }{
		{"missing-nodes", "src,dst\n0,1\n"},
		{"missing-header", "# nodes: 4\n"},
		{"wrong-header", "# nodes: 4\na,b\n0,1\n"},
		{"self-loop", "# nodes: 4\nsrc,dst\n2,2\n"},
		{"out-of-range", "# nodes: 4\nsrc,dst\n0,9\n"},
		{"duplicate", "# nodes: 4\nsrc,dst\n0,1\n1,0\n"},
		{"non-numeric", "# nodes: 4\nsrc,dst\nzero,1\n"},
		{"bad-directive", "# nodes: four\nsrc,dst\n0,1\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.body)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes": 4, "edges": [[0,1]], "bogus": 1}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes": 4, "edges": [[0,0]]}`)); err == nil {
		t.Error("JSON self-loop accepted")
	}
}

func TestParseSpec(t *testing.T) {
	good := map[string]Spec{
		"ring":        {Kind: "ring", K: 2},
		"ring:4":      {Kind: "ring", K: 4},
		"k-regular:3": {Kind: "k-regular", K: 3},
		"ba:2":        {Kind: "barabasi-albert", K: 2},
		"complete":    {Kind: "complete"},
		"file:x.csv":  {Kind: "file", Path: "x.csv"},
	}
	for in, want := range good {
		got, err := ParseSpec(in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{"", "torus", "ring:x", "ba", "k-regular", "file:", "complete:3"} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q): accepted", in)
		}
	}
	// Build round-trips the spec and enforces the file node-count match.
	sp, _ := ParseSpec("ring:4")
	tp, err := sp.Build(10, 1)
	if err != nil || tp.N() != 10 {
		t.Fatalf("Build ring:4 over 10: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "c.csv")
	if err := tp.Save(path); err != nil {
		t.Fatal(err)
	}
	fsp, _ := ParseSpec("file:" + path)
	if _, err := fsp.Build(10, 1); err != nil {
		t.Fatalf("file build: %v", err)
	}
	if _, err := fsp.Build(11, 1); err == nil {
		t.Fatal("file build accepted mismatched device count")
	}
}

func TestMetropolisWeightsDoublyStochastic(t *testing.T) {
	tp, err := BarabasiAlbert(40, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Row sums with self-weight = 1 - Σ neighbors must be exactly 1 by
	// construction; column sums equal row sums by symmetry of the weight.
	for d := 0; d < tp.N(); d++ {
		sum := 0.0
		for _, j := range tp.Neighbors(d) {
			w := tp.MetropolisWeight(d, j)
			if w2 := tp.MetropolisWeight(j, d); w2 != w {
				t.Fatalf("asymmetric weight (%d,%d): %v vs %v", d, j, w, w2)
			}
			sum += w
		}
		if self := 1 - sum; self <= 0 {
			t.Fatalf("device %d: non-positive self weight %v", d, self)
		}
	}
	// Complete graph: every weight is exactly 1/n.
	c, _ := Complete(8)
	for _, j := range c.Neighbors(0) {
		if w := c.MetropolisWeight(0, j); w != 1.0/8 {
			t.Fatalf("complete weight %v, want 1/8", w)
		}
	}
}
