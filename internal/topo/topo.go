// Package topo provides the peer contact graphs behind decentralized
// (gossip) Lumos scheduling: which devices can exchange model deltas
// directly. A Topology is an undirected simple graph over the device ids,
// produced by deterministic seeded generators (ring, k-regular,
// Barabási–Albert, complete) or loaded from a contact-graph file
// (CSV/JSON, mirroring fleet.Trace's on-disk conventions — see file.go).
//
// Topologies feed sim.Scenario.Topology: under core.SchedGossip each device
// averages its model with its participating neighbors using
// Metropolis–Hastings weights (MetropolisWeight), the classic choice that
// makes the averaging matrix symmetric and doubly stochastic from local
// degree knowledge alone. On the complete topology with full participation
// the weights degenerate to the uniform 1/n average — the bridge back to
// the star aggregator that the gossip-vs-star equivalence tests pin.
//
// Determinism: every generator consumes its seeded RNG in a fixed order and
// stores adjacency in sorted slices, so the same spec, size, and seed
// reproduce DeepEqual-identical topologies — a requirement inherited from
// the simulator's bit-reproducibility contract.
package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Topology is an undirected simple graph over n devices: no self-loops, no
// duplicate edges, neighbor lists sorted ascending. The zero value is not
// usable; build one with a generator, FromEdges, or Load.
type Topology struct {
	name string
	n    int
	adj  [][]int
}

// Name labels the topology (the generator spec, or the file's base name).
func (t *Topology) Name() string { return t.name }

// N is the device count.
func (t *Topology) N() int { return t.n }

// Degree is device d's neighbor count.
func (t *Topology) Degree(d int) int { return len(t.adj[d]) }

// Neighbors returns device d's neighbor ids, sorted ascending. The slice is
// owned by the topology; callers must not mutate it.
func (t *Topology) Neighbors(d int) []int { return t.adj[d] }

// NumEdges is the undirected edge count.
func (t *Topology) NumEdges() int {
	total := 0
	for _, ns := range t.adj {
		total += len(ns)
	}
	return total / 2
}

// Edges returns every undirected edge once, as [u, v] with u < v, sorted
// lexicographically — the canonical form Save writes and tests compare.
func (t *Topology) Edges() [][2]int {
	out := make([][2]int, 0, t.NumEdges())
	for u, ns := range t.adj {
		for _, v := range ns {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Connected reports whether every device can reach every other — the
// precondition for gossip averaging to mix information fleet-wide.
func (t *Topology) Connected() bool {
	if t.n == 0 {
		return false
	}
	seen := make([]bool, t.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range t.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == t.n
}

// MetropolisWeight is the Metropolis–Hastings averaging weight device d
// assigns a neighbor j: 1/(1+max(deg(d),deg(j))). Built only from the two
// endpoints' degrees, it is symmetric, and with the self-weight defined as
// one minus the neighbor weights the averaging matrix is doubly stochastic
// — the standard decentralized-averaging construction. The caller is
// responsible for d and j actually being neighbors.
func (t *Topology) MetropolisWeight(d, j int) float64 {
	dd, dj := len(t.adj[d]), len(t.adj[j])
	if dj > dd {
		dd = dj
	}
	return 1 / float64(1+dd)
}

// FromEdges builds a validated topology from an undirected edge list.
// Endpoints must lie in [0, n); self-loops and duplicate edges (in either
// orientation) are rejected.
func FromEdges(name string, n int, edges [][2]int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: topology needs at least 2 devices, got %d", n)
	}
	t := &Topology{name: name, n: n, adj: make([][]int, n)}
	seen := make(map[[2]int]bool, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("topo: edge %d (%d,%d) outside [0,%d)", i, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("topo: edge %d is a self-loop on device %d", i, u)
		}
		key := [2]int{u, v}
		if u > v {
			key = [2]int{v, u}
		}
		if seen[key] {
			return nil, fmt.Errorf("topo: duplicate edge %d (%d,%d)", i, u, v)
		}
		seen[key] = true
		t.adj[u] = append(t.adj[u], v)
		t.adj[v] = append(t.adj[v], u)
	}
	for d := range t.adj {
		sort.Ints(t.adj[d])
	}
	return t, nil
}

// Ring builds the circulant contact graph where device d talks to its k/2
// nearest ids on each side (indices mod n). k must be even, positive, and
// below n; k = 2 is the plain cycle. Ring topologies have the smallest
// per-round traffic (constant degree) but the slowest mixing.
func Ring(n, k int) (*Topology, error) {
	if k <= 0 || k%2 != 0 {
		return nil, fmt.Errorf("topo: ring degree %d must be positive and even", k)
	}
	if k >= n {
		return nil, fmt.Errorf("topo: ring degree %d needs more than %d devices", k, k)
	}
	var edges [][2]int
	for d := 0; d < n; d++ {
		for off := 1; off <= k/2; off++ {
			v := (d + off) % n
			// n even and off == n/2 would emit each chord twice; u<v dedups.
			if d < v {
				edges = append(edges, [2]int{d, v})
			} else {
				edges = append(edges, [2]int{v, d})
			}
		}
	}
	t, err := FromEdges(fmt.Sprintf("ring:%d", k), n, dedupe(edges))
	if err != nil {
		return nil, err
	}
	return t, nil
}

// dedupe removes repeated normalized edges (Ring's wrap-around chords on
// even n with k = n-ish can coincide).
func dedupe(edges [][2]int) [][2]int {
	seen := make(map[[2]int]bool, len(edges))
	out := edges[:0]
	for _, e := range edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

// Complete builds the all-pairs contact graph: every device is everyone's
// neighbor. With full participation its Metropolis weights are the uniform
// 1/n — gossip degenerates to the star aggregator's average, which is what
// the gossip-vs-star equivalence test pins.
func Complete(n int) (*Topology, error) {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return FromEdges("complete", n, edges)
}

// KRegular builds a random k-regular contact graph by seeded stub matching
// (the configuration model): each device exposes k stubs, a seeded shuffle
// pairs them, and the draw is retried until the pairing is simple. n·k must
// be even and k < n. The result is deterministic in (n, k, seed).
func KRegular(n, k int, seed int64) (*Topology, error) {
	if k <= 0 {
		return nil, fmt.Errorf("topo: k-regular degree %d must be positive", k)
	}
	if k >= n {
		return nil, fmt.Errorf("topo: k-regular degree %d needs more than %d devices", k, k)
	}
	if n*k%2 != 0 {
		return nil, fmt.Errorf("topo: k-regular needs n·k even, got n=%d k=%d", n, k)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6b726567)) // "kreg"
	stubs := make([]int, n*k)
	for i := range stubs {
		stubs[i] = i / k
	}
	const maxTries = 1000
	for try := 0; try < maxTries; try++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		edges := make([][2]int, 0, len(stubs)/2)
		seen := make(map[[2]int]bool, len(stubs)/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			key := [2]int{u, v}
			if u > v {
				key = [2]int{v, u}
			}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			edges = append(edges, key)
		}
		if !ok {
			continue
		}
		t, err := FromEdges(fmt.Sprintf("k-regular:%d", k), n, edges)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, fmt.Errorf("topo: no simple %d-regular matching over %d devices after %d tries", k, n, maxTries)
}

// BarabasiAlbert builds a scale-free contact graph by preferential
// attachment: a complete seed core of m+1 devices, then every new device
// attaches to m distinct existing devices with probability proportional to
// their current degree. Hub devices pay O(degree) gossip traffic — the
// heterogeneous-topology case the ROADMAP's decentralized direction is
// about. Deterministic in (n, m, seed).
func BarabasiAlbert(n, m int, seed int64) (*Topology, error) {
	if m <= 0 {
		return nil, fmt.Errorf("topo: barabasi-albert attachment count %d must be positive", m)
	}
	if m+1 >= n {
		return nil, fmt.Errorf("topo: barabasi-albert with m=%d needs more than %d devices", m, m+1)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x62616c62)) // "balb"
	var edges [][2]int
	// targets repeats each endpoint once per incident edge, so a uniform
	// draw from it is degree-proportional.
	var targets []int
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, [2]int{u, v})
			targets = append(targets, u, v)
		}
	}
	for d := m + 1; d < n; d++ {
		chosen := make(map[int]bool, m)
		picks := make([]int, 0, m)
		for len(picks) < m {
			v := targets[rng.Intn(len(targets))]
			if chosen[v] {
				continue
			}
			chosen[v] = true
			picks = append(picks, v)
		}
		// Attach in pick order (deterministic), then extend the target pool.
		for _, v := range picks {
			edges = append(edges, [2]int{v, d})
			targets = append(targets, v, d)
		}
	}
	return FromEdges(fmt.Sprintf("barabasi-albert:%d", m), n, edges)
}

// Spec is a parsed topology description — the -topology CLI surface and the
// scenario-construction path that defers the device count to Build time.
type Spec struct {
	// Kind is one of "ring", "k-regular", "barabasi-albert", "complete",
	// "file".
	Kind string
	// K parameterizes the generator kinds: ring degree, regular degree, or
	// BA attachment count.
	K int
	// Path names the contact-graph file for Kind "file".
	Path string
}

// ParseSpec parses a topology spec string:
//
//	ring            plain cycle (degree 2)
//	ring:<k>        circulant ring of even degree k
//	k-regular:<k>   random k-regular graph (seeded stub matching)
//	ba:<m>          Barabási–Albert with m attachments per device
//	barabasi-albert:<m>  same, long form
//	complete        all-pairs
//	file:<path>     contact-graph file (CSV or JSON; see Load)
func ParseSpec(s string) (Spec, error) {
	kind, arg := s, ""
	if i := strings.Index(s, ":"); i >= 0 {
		kind, arg = s[:i], s[i+1:]
	}
	parseK := func(name string, def int) (int, error) {
		if arg == "" {
			if def > 0 {
				return def, nil
			}
			return 0, fmt.Errorf("topo: %s needs a parameter, e.g. %q", name, name+":2")
		}
		k, err := strconv.Atoi(arg)
		if err != nil {
			return 0, fmt.Errorf("topo: bad %s parameter %q: %w", name, arg, err)
		}
		return k, nil
	}
	switch kind {
	case "ring":
		k, err := parseK("ring", 2)
		if err != nil {
			return Spec{}, err
		}
		return Spec{Kind: "ring", K: k}, nil
	case "k-regular", "kregular", "regular":
		k, err := parseK("k-regular", 0)
		if err != nil {
			return Spec{}, err
		}
		return Spec{Kind: "k-regular", K: k}, nil
	case "ba", "barabasi-albert":
		k, err := parseK("barabasi-albert", 0)
		if err != nil {
			return Spec{}, err
		}
		return Spec{Kind: "barabasi-albert", K: k}, nil
	case "complete", "full":
		if arg != "" {
			return Spec{}, fmt.Errorf("topo: complete takes no parameter, got %q", arg)
		}
		return Spec{Kind: "complete"}, nil
	case "file":
		if arg == "" {
			return Spec{}, fmt.Errorf("topo: file spec needs a path, e.g. \"file:contacts.csv\"")
		}
		return Spec{Kind: "file", Path: arg}, nil
	default:
		return Spec{}, fmt.Errorf("topo: unknown topology %q (want ring[:k]|k-regular:<k>|ba:<m>|complete|file:<path>)", s)
	}
}

// String renders the spec back in its parseable form.
func (sp Spec) String() string {
	switch sp.Kind {
	case "ring", "k-regular", "barabasi-albert":
		return fmt.Sprintf("%s:%d", sp.Kind, sp.K)
	case "file":
		return "file:" + sp.Path
	default:
		return sp.Kind
	}
}

// Build materializes the spec over n devices. Generator kinds draw from the
// seed; a file spec loads the contact graph and requires its device count
// to match n exactly — a contact graph for the wrong fleet is an error, not
// a resample.
func (sp Spec) Build(n int, seed int64) (*Topology, error) {
	switch sp.Kind {
	case "ring":
		return Ring(n, sp.K)
	case "k-regular":
		return KRegular(n, sp.K, seed)
	case "barabasi-albert":
		return BarabasiAlbert(n, sp.K, seed)
	case "complete":
		return Complete(n)
	case "file":
		t, err := Load(sp.Path)
		if err != nil {
			return nil, err
		}
		if t.N() != n {
			return nil, fmt.Errorf("topo: contact graph %s covers %d devices, fleet has %d", sp.Path, t.N(), n)
		}
		return t, nil
	default:
		return nil, fmt.Errorf("topo: unknown spec kind %q", sp.Kind)
	}
}
