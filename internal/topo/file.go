package topo

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Contact-graph files mirror fleet.Trace's on-disk conventions: '#' comment
// lines, a canonical header, validate-on-load, lossless round-trip, and
// Save/Load dispatching on the .json extension.
//
// On-disk schema (version 1):
//
//   - CSV (.csv, or anything not .json): '#'-prefixed comment lines — one of
//     which must be the "# nodes: <n>" directive carrying the device count,
//     since isolated devices appear in no edge row — then the "src,dst"
//     header, then one undirected edge per row:
//
//     # Lumos contact topology v1: one undirected edge per row.
//     # nodes: 4
//     src,dst
//     0,1
//     1,2
//
//   - JSON (.json): {"name": "...", "nodes": 4, "edges": [[0,1],[1,2]]}
//
// Edges are undirected and may appear in either orientation, but each pair
// at most once; self-loops and out-of-range endpoints are rejected on load.

// edgeColumns is the canonical CSV header.
var edgeColumns = []string{"src", "dst"}

// jsonTopology mirrors the JSON schema.
type jsonTopology struct {
	Name  string   `json:"name,omitempty"`
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// Load reads a contact graph from path, dispatching on the extension
// exactly as fleet.LoadTrace does: .json parses the JSON schema, everything
// else the CSV schema. The result is fully validated.
func Load(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topo: open contact graph: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	var t *Topology
	if strings.EqualFold(filepath.Ext(path), ".json") {
		t, err = ReadJSON(f)
	} else {
		t, err = ReadCSV(f)
	}
	if err != nil {
		return nil, fmt.Errorf("topo: contact graph %s: %w", path, err)
	}
	if t.name == "" {
		t.name = name
	}
	return t, nil
}

// ReadCSV parses the CSV contact-graph schema. The "# nodes: <n>" comment
// directive is required — it is the only place the device count lives, and
// without it isolated devices would silently vanish.
func ReadCSV(r io.Reader) (*Topology, error) {
	// csv.Reader's Comment option would discard the nodes directive with the
	// rest of the comments, so comments are peeled manually line by line.
	nodes := -1
	var dataLines []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if rest, ok := strings.CutPrefix(body, "nodes:"); ok {
				n, err := strconv.Atoi(strings.TrimSpace(rest))
				if err != nil {
					return nil, fmt.Errorf("bad nodes directive %q: %w", line, err)
				}
				nodes = n
			}
			continue
		}
		dataLines = append(dataLines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if nodes < 0 {
		return nil, fmt.Errorf("missing \"# nodes: <n>\" directive")
	}
	if len(dataLines) == 0 {
		return nil, fmt.Errorf("missing %s header", strings.Join(edgeColumns, ","))
	}
	cr := csv.NewReader(strings.NewReader(strings.Join(dataLines, "\n")))
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	header := rows[0]
	if len(header) != len(edgeColumns) {
		return nil, fmt.Errorf("header has %d columns, want %d (%s)", len(header), len(edgeColumns), strings.Join(edgeColumns, ","))
	}
	for i, c := range header {
		if !strings.EqualFold(strings.TrimSpace(c), edgeColumns[i]) {
			return nil, fmt.Errorf("column %d is %q, want %q", i, c, edgeColumns[i])
		}
	}
	edges := make([][2]int, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("edge row %d: %d fields, want 2", i, len(row))
		}
		u, err := strconv.Atoi(strings.TrimSpace(row[0]))
		if err != nil {
			return nil, fmt.Errorf("edge row %d: src: %w", i, err)
		}
		v, err := strconv.Atoi(strings.TrimSpace(row[1]))
		if err != nil {
			return nil, fmt.Errorf("edge row %d: dst: %w", i, err)
		}
		edges = append(edges, [2]int{u, v})
	}
	return FromEdges("", nodes, edges)
}

// ReadJSON parses the JSON contact-graph schema.
func ReadJSON(r io.Reader) (*Topology, error) {
	var jt jsonTopology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jt); err != nil {
		return nil, err
	}
	return FromEdges(jt.Name, jt.Nodes, jt.Edges)
}

// WriteCSV writes the topology in the CSV schema, comment header first —
// including the required nodes directive — then canonical u<v edges in
// lexicographic order, so write→load→write is byte-stable.
func (t *Topology) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Lumos contact topology v1: one undirected edge per row.\n")
	fmt.Fprintf(bw, "# nodes: %d\n", t.n)
	cw := csv.NewWriter(bw)
	if err := cw.Write(edgeColumns); err != nil {
		return err
	}
	for _, e := range t.Edges() {
		if err := cw.Write([]string{strconv.Itoa(e[0]), strconv.Itoa(e[1])}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSON writes the topology in the JSON schema, edges in canonical
// order.
func (t *Topology) WriteJSON(w io.Writer) error {
	jt := jsonTopology{Name: t.name, Nodes: t.n, Edges: t.Edges()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// Save writes the topology to path, dispatching on the extension exactly as
// Load does: .json gets the JSON schema, everything else CSV.
func (t *Topology) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("topo: save contact graph: %w", err)
	}
	if strings.EqualFold(filepath.Ext(path), ".json") {
		err = t.WriteJSON(f)
	} else {
		err = t.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
