// Package tree implements Lumos's tree construction (paper §V-A): each
// device converts its (trimmed) ego network into a three-level tree whose
// leaves are real vertices and whose internal nodes are virtual. For every
// retained neighbor u of center v there is a leaf pair (copy-of-v, u) joined
// by a virtual parent; all parents hang off a single virtual root. The
// center vertex is replicated once per pair so the only un-noised feature in
// the device is used |N(v)| times during training.
//
// The package also builds the flat ego-network graph used by the
// "Lumos w.o. VN" ablation, which skips virtual nodes entirely.
package tree

import (
	"fmt"
	"sort"
)

// NodeKind distinguishes tree node roles.
type NodeKind uint8

const (
	// Root is the single virtual root node.
	Root NodeKind = iota
	// Parent is a virtual parent joining one leaf pair.
	Parent
	// CenterLeaf is a replica of the device's own vertex.
	CenterLeaf
	// NeighborLeaf is a retained neighbor's vertex.
	NeighborLeaf
)

// Tree is a constructed per-device tree. Nodes are locally indexed
// 0..NumNodes-1; Vertex maps each node to the global vertex it represents
// (-1 for virtual nodes).
type Tree struct {
	Center   int
	Retained []int // global ids of retained neighbors, sorted
	NumNodes int
	Edges    [][2]int // undirected local edges
	Kind     []NodeKind
	Vertex   []int // global vertex per node, -1 for virtual
}

// Build constructs the virtual-node tree for a device (the Lumos default).
// With wl = len(retained) > 0 the layout is: node 0 = root, then for pair k:
// parent 1+3k, center leaf 2+3k, neighbor leaf 3+3k. A device whose
// trimmed neighbor set is empty degenerates to a single center leaf so the
// vertex still embeds its own (un-noised) feature.
func Build(center int, retained []int) *Tree {
	r := append([]int(nil), retained...)
	sort.Ints(r)
	for _, u := range r {
		if u == center {
			panic(fmt.Sprintf("tree: vertex %d retained as its own neighbor", center))
		}
	}
	wl := len(r)
	if wl == 0 {
		return &Tree{
			Center:   center,
			Retained: r,
			NumNodes: 1,
			Kind:     []NodeKind{CenterLeaf},
			Vertex:   []int{center},
		}
	}
	t := &Tree{
		Center:   center,
		Retained: r,
		NumNodes: 1 + 3*wl,
		Kind:     make([]NodeKind, 1+3*wl),
		Vertex:   make([]int, 1+3*wl),
	}
	t.Kind[0] = Root
	t.Vertex[0] = -1
	for k, u := range r {
		parent, cLeaf, nLeaf := 1+3*k, 2+3*k, 3+3*k
		t.Kind[parent] = Parent
		t.Vertex[parent] = -1
		t.Kind[cLeaf] = CenterLeaf
		t.Vertex[cLeaf] = center
		t.Kind[nLeaf] = NeighborLeaf
		t.Vertex[nLeaf] = u
		t.Edges = append(t.Edges,
			[2]int{parent, cLeaf},
			[2]int{parent, nLeaf},
			[2]int{0, parent},
		)
	}
	return t
}

// BuildEgo constructs the flat ego-network graph used by the w.o.-VN
// ablation: the center node connected directly to each retained neighbor,
// no virtual nodes. Node 0 is the center.
func BuildEgo(center int, retained []int) *Tree {
	r := append([]int(nil), retained...)
	sort.Ints(r)
	t := &Tree{
		Center:   center,
		Retained: r,
		NumNodes: 1 + len(r),
		Kind:     make([]NodeKind, 1+len(r)),
		Vertex:   make([]int, 1+len(r)),
	}
	t.Kind[0] = CenterLeaf
	t.Vertex[0] = center
	for k, u := range r {
		t.Kind[1+k] = NeighborLeaf
		t.Vertex[1+k] = u
		t.Edges = append(t.Edges, [2]int{0, 1 + k})
	}
	return t
}

// Workload returns the number of retained neighbors (the paper's wl).
func (t *Tree) Workload() int { return len(t.Retained) }

// Leaves returns local indices of all nodes representing real vertices.
func (t *Tree) Leaves() []int {
	var out []int
	for i, v := range t.Vertex {
		if v >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// NeighborLeafIndex returns the local node index of the leaf representing
// global neighbor u, or -1 if u is not retained.
func (t *Tree) NeighborLeafIndex(u int) int {
	for i, v := range t.Vertex {
		if v == u && t.Kind[i] == NeighborLeaf {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants; it is used by property tests.
func (t *Tree) Validate() error {
	if len(t.Kind) != t.NumNodes || len(t.Vertex) != t.NumNodes {
		return fmt.Errorf("tree: metadata length mismatch (nodes=%d kind=%d vertex=%d)",
			t.NumNodes, len(t.Kind), len(t.Vertex))
	}
	deg := make([]int, t.NumNodes)
	for _, e := range t.Edges {
		if e[0] < 0 || e[0] >= t.NumNodes || e[1] < 0 || e[1] >= t.NumNodes {
			return fmt.Errorf("tree: edge %v out of range", e)
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	if len(t.Edges) != t.NumNodes-1 && t.NumNodes > 0 {
		// A tree on n nodes has n−1 edges (flat ego graphs are stars, also
		// trees).
		return fmt.Errorf("tree: %d edges for %d nodes", len(t.Edges), t.NumNodes)
	}
	for i, k := range t.Kind {
		switch k {
		case Root, Parent:
			if t.Vertex[i] != -1 {
				return fmt.Errorf("tree: virtual node %d maps to vertex %d", i, t.Vertex[i])
			}
		case CenterLeaf:
			if t.Vertex[i] != t.Center {
				return fmt.Errorf("tree: center leaf %d maps to %d, center is %d", i, t.Vertex[i], t.Center)
			}
		case NeighborLeaf:
			if t.Vertex[i] == t.Center || t.Vertex[i] < 0 {
				return fmt.Errorf("tree: neighbor leaf %d maps to %d", i, t.Vertex[i])
			}
		}
	}
	return nil
}
