package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildStructure(t *testing.T) {
	tr := Build(7, []int{3, 9, 1})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes != 1+3*3 {
		t.Fatalf("nodes = %d, want 10", tr.NumNodes)
	}
	if len(tr.Edges) != tr.NumNodes-1 {
		t.Fatalf("edges = %d", len(tr.Edges))
	}
	if tr.Workload() != 3 {
		t.Fatalf("workload = %d", tr.Workload())
	}
	// Retained must be sorted.
	if tr.Retained[0] != 1 || tr.Retained[1] != 3 || tr.Retained[2] != 9 {
		t.Fatalf("retained = %v", tr.Retained)
	}
	// One center leaf per pair.
	centers, neighbors, parents, roots := 0, 0, 0, 0
	for _, k := range tr.Kind {
		switch k {
		case CenterLeaf:
			centers++
		case NeighborLeaf:
			neighbors++
		case Parent:
			parents++
		case Root:
			roots++
		}
	}
	if centers != 3 || neighbors != 3 || parents != 3 || roots != 1 {
		t.Fatalf("node mix: %d/%d/%d/%d", centers, neighbors, parents, roots)
	}
}

func TestBuildParentChildTopology(t *testing.T) {
	tr := Build(0, []int{5})
	// Layout: root=0, parent=1, centerLeaf=2, neighborLeaf=3.
	wantEdges := map[[2]int]bool{{1, 2}: true, {1, 3}: true, {0, 1}: true}
	for _, e := range tr.Edges {
		if !wantEdges[e] {
			t.Fatalf("unexpected edge %v", e)
		}
		delete(wantEdges, e)
	}
	if len(wantEdges) != 0 {
		t.Fatalf("missing edges %v", wantEdges)
	}
	if tr.Vertex[2] != 0 || tr.Vertex[3] != 5 {
		t.Fatalf("vertex mapping %v", tr.Vertex)
	}
}

func TestBuildEmptyRetained(t *testing.T) {
	tr := Build(4, nil)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes != 1 || tr.Kind[0] != CenterLeaf || tr.Vertex[0] != 4 {
		t.Fatalf("degenerate tree = %+v", tr)
	}
	if len(tr.Leaves()) != 1 {
		t.Fatal("degenerate tree must keep one leaf")
	}
}

func TestBuildPanicsOnSelfNeighbor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(3, []int{3})
}

func TestBuildEgoStructure(t *testing.T) {
	tr := BuildEgo(2, []int{7, 4})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes != 3 || len(tr.Edges) != 2 {
		t.Fatalf("ego graph: %d nodes %d edges", tr.NumNodes, len(tr.Edges))
	}
	if tr.Kind[0] != CenterLeaf {
		t.Fatal("node 0 must be the center")
	}
	// Star topology: all edges incident to node 0.
	for _, e := range tr.Edges {
		if e[0] != 0 {
			t.Fatalf("edge %v not centered", e)
		}
	}
}

func TestLeavesAndNeighborLeafIndex(t *testing.T) {
	tr := Build(1, []int{2, 8})
	leaves := tr.Leaves()
	if len(leaves) != 4 { // 2 pairs × 2 leaves
		t.Fatalf("leaves = %v", leaves)
	}
	if idx := tr.NeighborLeafIndex(8); idx < 0 || tr.Vertex[idx] != 8 {
		t.Fatalf("NeighborLeafIndex(8) = %d", idx)
	}
	if tr.NeighborLeafIndex(99) != -1 {
		t.Fatal("missing neighbor must return -1")
	}
	// The center is never reported as a neighbor leaf.
	if tr.NeighborLeafIndex(1) != -1 {
		t.Fatal("center reported as neighbor leaf")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := Build(0, []int{1, 2})
	tr.Vertex[0] = 5 // root must map to -1
	if err := tr.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	tr2 := Build(0, []int{1})
	tr2.Edges = append(tr2.Edges, [2]int{0, 99})
	if err := tr2.Validate(); err == nil {
		t.Fatal("expected out-of-range edge error")
	}
	tr3 := Build(0, []int{1})
	tr3.Edges = tr3.Edges[:1]
	if err := tr3.Validate(); err == nil {
		t.Fatal("expected edge-count error")
	}
}

func TestQuickBuildInvariants(t *testing.T) {
	f := func(center uint8, raw []uint8) bool {
		c := int(center)
		seen := map[int]bool{}
		var retained []int
		for _, r := range raw {
			v := int(r) + 300 // avoid collision with center
			if !seen[v] {
				seen[v] = true
				retained = append(retained, v)
			}
		}
		tr := Build(c, retained)
		if tr.Validate() != nil {
			return false
		}
		if tr.Workload() != len(retained) {
			return false
		}
		// Every retained neighbor has exactly one leaf; the center has one
		// copy per pair.
		counts := map[int]int{}
		for i, v := range tr.Vertex {
			if v >= 0 && tr.Kind[i] == NeighborLeaf {
				counts[v]++
			}
		}
		for _, v := range retained {
			if counts[v] != 1 {
				return false
			}
		}
		eg := BuildEgo(c, retained)
		return eg.Validate() == nil && eg.NumNodes == len(retained)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
