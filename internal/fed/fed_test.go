package fed

import (
	"testing"
	"time"

	"lumos/internal/graph"
	"lumos/internal/smc"
)

func TestNetworkAccounting(t *testing.T) {
	nw := NewNetwork(4)
	nw.Send(0, 1, MsgEmbedding, 128)
	nw.Send(1, 2, MsgEmbedding, 128)
	nw.Send(2, ServerID, MsgControl, 8)
	nw.Send(ServerID, 3, MsgControl, 8)
	tr := nw.Snapshot()
	if tr.Messages[MsgEmbedding] != 2 || tr.Bytes[MsgEmbedding] != 256 {
		t.Fatalf("embedding accounting: %v", tr.Messages)
	}
	if tr.Messages[MsgControl] != 2 {
		t.Fatal("control accounting wrong")
	}
	// Server sends don't count toward a device.
	if tr.PerDeviceSent[3] != 0 || tr.PerDeviceSent[0] != 1 {
		t.Fatalf("per-device counts: %v", tr.PerDeviceSent)
	}
	if got := tr.TotalMessages(); got != 4 {
		t.Fatalf("total = %d", got)
	}
	if got := tr.TotalMessages(MsgEmbedding); got != 2 {
		t.Fatalf("filtered total = %d", got)
	}
	if got := tr.TotalBytes(MsgControl); got != 16 {
		t.Fatalf("control bytes = %d", got)
	}
	if avg := tr.AvgPerDevice(); avg != 3.0/4 {
		t.Fatalf("avg per device = %v", avg)
	}
}

func TestNetworkDiffAndReset(t *testing.T) {
	nw := NewNetwork(2)
	nw.Send(0, 1, MsgLoss, 8)
	snap := nw.Snapshot()
	nw.Send(1, 0, MsgLoss, 8)
	nw.Send(1, 0, MsgGradient, 100)
	d := nw.Diff(snap)
	if d.Messages[MsgLoss] != 1 || d.Messages[MsgGradient] != 1 {
		t.Fatalf("diff = %v", d.Messages)
	}
	if d.PerDeviceSent[1] != 2 || d.PerDeviceSent[0] != 0 {
		t.Fatalf("diff per-device = %v", d.PerDeviceSent)
	}
	nw.Reset()
	if nw.Snapshot().TotalMessages() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNetworkAbsorbSecure(t *testing.T) {
	nw := NewNetwork(2)
	nw.AbsorbSecure(smc.Stats{Messages: 10, Bytes: 500})
	tr := nw.Snapshot()
	if tr.Messages[MsgSecure] != 10 || tr.Bytes[MsgSecure] != 500 {
		t.Fatal("secure traffic not absorbed")
	}
}

func TestNetworkValidation(t *testing.T) {
	nw := NewNetwork(2)
	for _, c := range []struct{ from, to, kind int }{
		{5, 0, int(MsgLoss)}, {0, 5, int(MsgLoss)}, {0, 1, 99},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %+v must panic", c)
				}
			}()
			nw.Send(c.from, c.to, MessageKind(c.kind), 1)
		}()
	}
}

func TestMessageKindString(t *testing.T) {
	if MsgFeature.String() != "feature" || MsgSecure.String() != "secure" {
		t.Fatal("kind names wrong")
	}
	if MessageKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestNewDevicesIndependentRandomness(t *testing.T) {
	g, err := graph.Generate(graph.GenConfig{Name: "f", N: 20, M: 40, Classes: 2, FeatureDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDevices(g, 7)
	if len(ds) != 20 {
		t.Fatalf("devices = %d", len(ds))
	}
	// Identities and local views line up.
	for v, d := range ds {
		if d.ID != v || d.Ego.Center != v {
			t.Fatalf("device %d mismatched ego %d", d.ID, d.Ego.Center)
		}
		if d.Party == nil || d.Rng == nil {
			t.Fatal("device missing randomness")
		}
	}
	// Different devices draw different streams.
	a, b := ds[0].Rng.Float64(), ds[1].Rng.Float64()
	if a == b {
		t.Fatal("devices share a random stream")
	}
	// Same seed reproduces the same streams.
	ds2 := NewDevices(g, 7)
	if ds2[0].Rng.Float64() != a {
		t.Fatal("device randomness not reproducible")
	}
}

func TestCostModelEpochTime(t *testing.T) {
	m := CostModel{
		PerLeafPair:    time.Millisecond,
		BaseCompute:    10 * time.Millisecond,
		MsgLatency:     2 * time.Millisecond,
		BytesPerSecond: 1e6,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Straggler dominated: max workload 50 → 50ms compute + 10ms base +
	// 3 rounds × 2ms + 1e6 bytes / 1e6 Bps = 1s transfer.
	got := m.EpochTime([]int{1, 5, 50, 2}, 3, 1_000_000)
	want := 50*time.Millisecond + 10*time.Millisecond + 6*time.Millisecond + time.Second
	if got != want {
		t.Fatalf("epoch time = %v, want %v", got, want)
	}
}

func TestCostModelStragglerDominates(t *testing.T) {
	m := DefaultCostModel()
	balanced := m.EpochTime([]int{10, 10, 10}, 3, 1000)
	skewed := m.EpochTime([]int{1, 1, 100}, 3, 1000)
	if skewed <= balanced {
		t.Fatal("skewed workloads must cost more than balanced ones")
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := (CostModel{BytesPerSecond: 0}).Validate(); err == nil {
		t.Fatal("zero bandwidth must error")
	}
	good := DefaultCostModel()
	for _, mutate := range []func(*CostModel){
		func(m *CostModel) { m.PerLeafPair = -time.Microsecond },
		func(m *CostModel) { m.BaseCompute = -time.Millisecond },
		func(m *CostModel) { m.MsgLatency = -time.Millisecond },
		func(m *CostModel) { m.AggBytesPerSecond = -1 },
		func(m *CostModel) { m.DevicePowerWatts = -2 },
		func(m *CostModel) { m.RadioEnergyPerByte = -1e-9 },
	} {
		bad := good
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("negative cost term validated: %+v", bad)
		}
	}
	// Zero aggregator capacity is valid: it means contention disabled.
	good.AggBytesPerSecond = 0
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelEnergy(t *testing.T) {
	m := CostModel{BytesPerSecond: 1, DevicePowerWatts: 2, RadioEnergyPerByte: 1e-6}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 s of compute at 2 W × 1.5 power multiplier + 1e6 radio bytes at
	// 1 µJ/B = 9 J + 1 J.
	if got := m.Energy(3, 1.5, 1_000_000); got != 10 {
		t.Fatalf("energy = %v J, want 10", got)
	}
	// Energy terms zeroed → free rounds, whatever moved on the wire.
	free := CostModel{BytesPerSecond: 1}
	if got := free.Energy(3, 1.5, 1_000_000); got != 0 {
		t.Fatalf("zeroed energy model charged %v J", got)
	}
}

func TestServerDeterminism(t *testing.T) {
	s1, s2 := NewServer(3), NewServer(3)
	if s1.Rng.Int63() != s2.Rng.Int63() {
		t.Fatal("server randomness not reproducible")
	}
}

func TestCostModelAsyncAmortizesStraggler(t *testing.T) {
	m := DefaultCostModel()
	workloads := []int{1, 1, 1, 1, 100} // one heavy straggler
	sync := m.EpochTime(workloads, 3, 1000)
	async := m.EpochTimeAsync(workloads, 3, 1000, 4)
	if async >= sync {
		t.Fatalf("async %v not below sync %v", async, sync)
	}
	// staleness=0 must degenerate to the synchronous estimate.
	if got := m.EpochTimeAsync(workloads, 3, 1000, 0); got != sync {
		t.Fatalf("staleness=0 async %v != sync %v", got, sync)
	}
	// The fleet can't beat its mean device: with a huge staleness budget the
	// estimate floors at the mean workload, not zero.
	floor := m.EpochTimeAsync(workloads, 3, 1000, 1<<20)
	min := m.EpochTime([]int{21}, 3, 1000) // mean workload is 104/5 = 20.8
	if floor <= 0 || floor > min {
		t.Fatalf("async floor %v outside (0, %v]", floor, min)
	}
}
