package fed

import (
	"fmt"
	"time"
)

// CostModel captures the per-device compute and network timing used to
// estimate epoch wall time. Lumos is a synchronous framework: every round
// waits for all devices, so the epoch time is dominated by the straggler —
// the device with the largest tree (paper Definition 3 and §VIII-F.3).
type CostModel struct {
	// PerLeafPair is the compute time one leaf pair adds to a device's
	// forward+backward pass (its tree has 3·wl+1 nodes, so cost grows
	// linearly in the workload wl).
	PerLeafPair time.Duration
	// BaseCompute is the fixed per-device cost per epoch (root handling,
	// loss computation, optimizer step).
	BaseCompute time.Duration
	// MsgLatency is the one-way latency of an inter-device message.
	MsgLatency time.Duration
	// BytesPerSecond is the per-device link bandwidth.
	BytesPerSecond float64
}

// DefaultCostModel models commodity edge devices on a home network; values
// chosen so full-scale estimates land in the paper's tens-of-seconds regime.
func DefaultCostModel() CostModel {
	return CostModel{
		PerLeafPair:    600 * time.Microsecond,
		BaseCompute:    5 * time.Millisecond,
		MsgLatency:     2 * time.Millisecond,
		BytesPerSecond: 12.5e6, // 100 Mbit/s
	}
}

// Validate rejects non-positive capacity and negative timing terms.
func (c CostModel) Validate() error {
	if c.BytesPerSecond <= 0 {
		return fmt.Errorf("fed: cost model bandwidth must be positive, got %v", c.BytesPerSecond)
	}
	if c.PerLeafPair < 0 {
		return fmt.Errorf("fed: cost model PerLeafPair must be non-negative, got %v", c.PerLeafPair)
	}
	if c.BaseCompute < 0 {
		return fmt.Errorf("fed: cost model BaseCompute must be non-negative, got %v", c.BaseCompute)
	}
	if c.MsgLatency < 0 {
		return fmt.Errorf("fed: cost model MsgLatency must be non-negative, got %v", c.MsgLatency)
	}
	return nil
}

// EpochTime estimates one synchronous epoch's wall time:
//
//	max_v(compute_v) + latency·(serial message rounds) + bytes/bandwidth
//
// workloads are the per-device retained-neighbor counts; rounds is the
// number of serialized message rounds in the epoch (not total messages —
// messages within a round travel in parallel); bytes is the maximum number
// of bytes any single device moves in the epoch.
func (c CostModel) EpochTime(workloads []int, rounds int, deviceBytes int64) time.Duration {
	maxWl := 0
	for _, w := range workloads {
		if w > maxWl {
			maxWl = w
		}
	}
	return c.assemble(float64(maxWl), rounds, deviceBytes)
}

// assemble turns an effective per-epoch workload into a wall-time estimate;
// shared by the sync and async models so their comm/transfer terms can
// never drift apart.
func (c CostModel) assemble(effWorkload float64, rounds int, deviceBytes int64) time.Duration {
	compute := c.BaseCompute + time.Duration(effWorkload*float64(c.PerLeafPair))
	comm := time.Duration(rounds) * c.MsgLatency
	transfer := time.Duration(float64(deviceBytes) / c.BytesPerSecond * float64(time.Second))
	return compute + comm + transfer
}

// EpochTimeAsync estimates one epoch's wall time under staleness-bounded
// asynchronous scheduling: the aggregator no longer waits for the straggler
// every epoch, so a device that is up to `staleness` epochs behind has its
// compute amortized over staleness+1 epochs. The effective per-epoch compute
// is therefore
//
//	max(mean workload, max workload / (staleness+1))
//
// — the fleet cannot go faster than its average device, and the straggler
// still bounds throughput once its lag budget is exhausted. staleness = 0
// degenerates to the synchronous EpochTime.
func (c CostModel) EpochTimeAsync(workloads []int, rounds int, deviceBytes int64, staleness int) time.Duration {
	if staleness <= 0 {
		return c.EpochTime(workloads, rounds, deviceBytes)
	}
	maxWl, sum := 0, 0
	for _, w := range workloads {
		if w > maxWl {
			maxWl = w
		}
		sum += w
	}
	mean := 0.0
	if len(workloads) > 0 {
		mean = float64(sum) / float64(len(workloads))
	}
	eff := float64(maxWl) / float64(staleness+1)
	if mean > eff {
		eff = mean
	}
	return c.assemble(eff, rounds, deviceBytes)
}
