package fed

import (
	"fmt"
	"time"
)

// CostModel captures the per-device compute and network timing used to
// estimate epoch wall time. Lumos is a synchronous framework: every round
// waits for all devices, so the epoch time is dominated by the straggler —
// the device with the largest tree (paper Definition 3 and §VIII-F.3).
type CostModel struct {
	// PerLeafPair is the compute time one leaf pair adds to a device's
	// forward+backward pass (its tree has 3·wl+1 nodes, so cost grows
	// linearly in the workload wl).
	PerLeafPair time.Duration
	// BaseCompute is the fixed per-device cost per epoch (root handling,
	// loss computation, optimizer step).
	BaseCompute time.Duration
	// MsgLatency is the one-way latency of an inter-device message.
	MsgLatency time.Duration
	// BytesPerSecond is the per-device link bandwidth.
	BytesPerSecond float64
	// AggBytesPerSecond is the aggregator's shared uplink/downlink capacity:
	// device uploads and model broadcasts serialize through an M/G/1-style
	// FIFO server at this rate (see fleet.Server), so large-fleet commit
	// times reflect contention at the server instead of independent links.
	// Zero (the default) disables contention — infinite aggregator capacity.
	AggBytesPerSecond float64
	// DevicePowerWatts is the nominal device's active power draw during
	// local compute; a Profile's Power multiplier scales it per device.
	DevicePowerWatts float64
	// RadioEnergyPerByte is the energy a device spends moving one byte over
	// its radio, in joules — uploads and model downloads both pay it.
	RadioEnergyPerByte float64
}

// DefaultCostModel models commodity edge devices on a home network; values
// chosen so full-scale estimates land in the paper's tens-of-seconds regime.
func DefaultCostModel() CostModel {
	return CostModel{
		PerLeafPair:    600 * time.Microsecond,
		BaseCompute:    5 * time.Millisecond,
		MsgLatency:     2 * time.Millisecond,
		BytesPerSecond: 12.5e6, // 100 Mbit/s
		// AggBytesPerSecond stays 0: contention off unless a scenario asks
		// for it, preserving the independent-link timing model.
		DevicePowerWatts:   2,    // active SoC draw of a mid-range phone
		RadioEnergyPerByte: 5e-8, // ≈50 nJ/B, WiFi-class radio
	}
}

// Validate rejects non-positive capacity and negative timing terms.
func (c CostModel) Validate() error {
	if c.BytesPerSecond <= 0 {
		return fmt.Errorf("fed: cost model bandwidth must be positive, got %v", c.BytesPerSecond)
	}
	if c.PerLeafPair < 0 {
		return fmt.Errorf("fed: cost model PerLeafPair must be non-negative, got %v", c.PerLeafPair)
	}
	if c.BaseCompute < 0 {
		return fmt.Errorf("fed: cost model BaseCompute must be non-negative, got %v", c.BaseCompute)
	}
	if c.MsgLatency < 0 {
		return fmt.Errorf("fed: cost model MsgLatency must be non-negative, got %v", c.MsgLatency)
	}
	if c.AggBytesPerSecond < 0 {
		return fmt.Errorf("fed: cost model AggBytesPerSecond must be non-negative (0 disables contention), got %v", c.AggBytesPerSecond)
	}
	if c.DevicePowerWatts < 0 {
		return fmt.Errorf("fed: cost model DevicePowerWatts must be non-negative, got %v", c.DevicePowerWatts)
	}
	if c.RadioEnergyPerByte < 0 {
		return fmt.Errorf("fed: cost model RadioEnergyPerByte must be non-negative, got %v", c.RadioEnergyPerByte)
	}
	return nil
}

// Energy is one device's energy spend for a round, in joules: active
// compute time at the device's (profile-scaled) power draw plus every byte
// it moved over the radio. This is the per-device term the simulator
// accumulates into RoundStats and the energy-study tables.
func (c CostModel) Energy(computeSeconds, powerMult float64, radioBytes int64) float64 {
	return computeSeconds*c.DevicePowerWatts*powerMult + float64(radioBytes)*c.RadioEnergyPerByte
}

// LinkBytesPerSecond is the effective rate of a direct device-to-device link
// whose endpoints carry bandwidth multipliers bwA and bwB: the nominal
// per-device rate scaled by the bottleneck endpoint. Gossip scheduling prices
// each contact-graph edge with it.
func (c CostModel) LinkBytesPerSecond(bwA, bwB float64) float64 {
	if bwB < bwA {
		bwA = bwB
	}
	return c.BytesPerSecond * bwA
}

// EpochTime estimates one synchronous epoch's wall time:
//
//	max_v(compute_v) + latency·(serial message rounds) + bytes/bandwidth
//
// workloads are the per-device retained-neighbor counts; rounds is the
// number of serialized message rounds in the epoch (not total messages —
// messages within a round travel in parallel); bytes is the maximum number
// of bytes any single device moves in the epoch.
func (c CostModel) EpochTime(workloads []int, rounds int, deviceBytes int64) time.Duration {
	maxWl := 0
	for _, w := range workloads {
		if w > maxWl {
			maxWl = w
		}
	}
	return c.assemble(float64(maxWl), rounds, deviceBytes)
}

// assemble turns an effective per-epoch workload into a wall-time estimate;
// shared by the sync and async models so their comm/transfer terms can
// never drift apart.
func (c CostModel) assemble(effWorkload float64, rounds int, deviceBytes int64) time.Duration {
	compute := c.BaseCompute + time.Duration(effWorkload*float64(c.PerLeafPair))
	comm := time.Duration(rounds) * c.MsgLatency
	transfer := time.Duration(float64(deviceBytes) / c.BytesPerSecond * float64(time.Second))
	return compute + comm + transfer
}

// EpochTimeAsync estimates one epoch's wall time under staleness-bounded
// asynchronous scheduling: the aggregator no longer waits for the straggler
// every epoch, so a device that is up to `staleness` epochs behind has its
// compute amortized over staleness+1 epochs. The effective per-epoch compute
// is therefore
//
//	max(mean workload, max workload / (staleness+1))
//
// — the fleet cannot go faster than its average device, and the straggler
// still bounds throughput once its lag budget is exhausted. staleness = 0
// degenerates to the synchronous EpochTime.
func (c CostModel) EpochTimeAsync(workloads []int, rounds int, deviceBytes int64, staleness int) time.Duration {
	if staleness <= 0 {
		return c.EpochTime(workloads, rounds, deviceBytes)
	}
	maxWl, sum := 0, 0
	for _, w := range workloads {
		if w > maxWl {
			maxWl = w
		}
		sum += w
	}
	mean := 0.0
	if len(workloads) > 0 {
		mean = float64(sum) / float64(len(workloads))
	}
	eff := float64(maxWl) / float64(staleness+1)
	if mean > eff {
		eff = mean
	}
	return c.assemble(eff, rounds, deviceBytes)
}
