package fed

import (
	"fmt"
	"time"
)

// CostModel captures the per-device compute and network timing used to
// estimate epoch wall time. Lumos is a synchronous framework: every round
// waits for all devices, so the epoch time is dominated by the straggler —
// the device with the largest tree (paper Definition 3 and §VIII-F.3).
type CostModel struct {
	// PerLeafPair is the compute time one leaf pair adds to a device's
	// forward+backward pass (its tree has 3·wl+1 nodes, so cost grows
	// linearly in the workload wl).
	PerLeafPair time.Duration
	// BaseCompute is the fixed per-device cost per epoch (root handling,
	// loss computation, optimizer step).
	BaseCompute time.Duration
	// MsgLatency is the one-way latency of an inter-device message.
	MsgLatency time.Duration
	// BytesPerSecond is the per-device link bandwidth.
	BytesPerSecond float64
}

// DefaultCostModel models commodity edge devices on a home network; values
// chosen so full-scale estimates land in the paper's tens-of-seconds regime.
func DefaultCostModel() CostModel {
	return CostModel{
		PerLeafPair:    600 * time.Microsecond,
		BaseCompute:    5 * time.Millisecond,
		MsgLatency:     2 * time.Millisecond,
		BytesPerSecond: 12.5e6, // 100 Mbit/s
	}
}

// Validate rejects non-positive capacity.
func (c CostModel) Validate() error {
	if c.BytesPerSecond <= 0 {
		return fmt.Errorf("fed: cost model bandwidth must be positive, got %v", c.BytesPerSecond)
	}
	return nil
}

// EpochTime estimates one synchronous epoch's wall time:
//
//	max_v(compute_v) + latency·(serial message rounds) + bytes/bandwidth
//
// workloads are the per-device retained-neighbor counts; rounds is the
// number of serialized message rounds in the epoch (not total messages —
// messages within a round travel in parallel); bytes is the maximum number
// of bytes any single device moves in the epoch.
func (c CostModel) EpochTime(workloads []int, rounds int, deviceBytes int64) time.Duration {
	maxWl := 0
	for _, w := range workloads {
		if w > maxWl {
			maxWl = w
		}
	}
	compute := c.BaseCompute + time.Duration(maxWl)*c.PerLeafPair
	comm := time.Duration(rounds) * c.MsgLatency
	transfer := time.Duration(float64(deviceBytes) / c.BytesPerSecond * float64(time.Second))
	return compute + comm + transfer
}
