// Package fed simulates the decentralized execution environment: one device
// per vertex, a coordinating server, and a network fabric that accounts for
// every logical message a real deployment would exchange (feature pushes,
// embedding exchanges for POOL, loss/gradient shares, server coordination,
// and secure-protocol traffic). The communication-round and byte counters
// drive the paper's Fig. 8a; the compute-cost model (epoch time dominated by
// the straggler, i.e. the maximum per-device workload) drives Fig. 8b.
package fed

import (
	"fmt"
	"math/rand"

	"lumos/internal/graph"
	"lumos/internal/smc"
)

// ServerID is the pseudo-address of the coordinating server in traffic
// accounting.
const ServerID = -1

// MessageKind classifies logical messages.
type MessageKind int

const (
	// MsgFeature is an LDP-encoded feature push during embedding
	// initialization.
	MsgFeature MessageKind = iota
	// MsgEmbedding is a leaf-embedding push to the vertex's own device
	// (the POOL exchange).
	MsgEmbedding
	// MsgPooled is a pooled-embedding return to a tree holder.
	MsgPooled
	// MsgNegSample is a negative-sampling embedding request/response
	// (unsupervised training only).
	MsgNegSample
	// MsgLoss is a loss-value share.
	MsgLoss
	// MsgGradient is a gradient/model share during aggregation.
	MsgGradient
	// MsgControl is server coordination traffic (MCMC orchestration,
	// candidate announcements).
	MsgControl
	// MsgSecure is secure-computation traffic (bridged from smc.Stats).
	MsgSecure
	numMessageKinds
)

var kindNames = [...]string{
	"feature", "embedding", "pooled", "negsample", "loss", "gradient", "control", "secure",
}

// String names the message kind.
func (k MessageKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Traffic is an immutable snapshot of accumulated network accounting.
type Traffic struct {
	Messages      [numMessageKinds]int
	Bytes         [numMessageKinds]int64
	PerDeviceSent []int // messages initiated by each device (server excluded)
}

// TotalMessages sums messages over the given kinds (all kinds if none given).
func (t Traffic) TotalMessages(kinds ...MessageKind) int {
	if len(kinds) == 0 {
		s := 0
		for _, c := range t.Messages {
			s += c
		}
		return s
	}
	s := 0
	for _, k := range kinds {
		s += t.Messages[k]
	}
	return s
}

// TotalBytes sums bytes over the given kinds (all kinds if none given).
func (t Traffic) TotalBytes(kinds ...MessageKind) int64 {
	if len(kinds) == 0 {
		var s int64
		for _, c := range t.Bytes {
			s += c
		}
		return s
	}
	var s int64
	for _, k := range kinds {
		s += t.Bytes[k]
	}
	return s
}

// AvgPerDevice returns mean messages initiated per device.
func (t Traffic) AvgPerDevice() float64 {
	if len(t.PerDeviceSent) == 0 {
		return 0
	}
	s := 0
	for _, c := range t.PerDeviceSent {
		s += c
	}
	return float64(s) / float64(len(t.PerDeviceSent))
}

// Network is the accounting fabric. It does not carry payloads — the
// simulation computes results in-process — but every logical message a real
// deployment would send must be recorded here.
type Network struct {
	n       int
	traffic Traffic
}

// NewNetwork returns a fabric for n devices plus the server.
func NewNetwork(n int) *Network {
	return &Network{n: n, traffic: Traffic{PerDeviceSent: make([]int, n)}}
}

// Send records one message of the given kind and size. from/to are device
// ids or ServerID.
func (nw *Network) Send(from, to int, kind MessageKind, bytes int) {
	if kind < 0 || kind >= numMessageKinds {
		panic(fmt.Sprintf("fed: unknown message kind %d", kind))
	}
	if from != ServerID && (from < 0 || from >= nw.n) {
		panic(fmt.Sprintf("fed: sender %d out of range", from))
	}
	if to != ServerID && (to < 0 || to >= nw.n) {
		panic(fmt.Sprintf("fed: receiver %d out of range", to))
	}
	nw.traffic.Messages[kind]++
	nw.traffic.Bytes[kind] += int64(bytes)
	if from != ServerID {
		nw.traffic.PerDeviceSent[from]++
	}
}

// AbsorbSecure folds a secure-computation stats delta into the fabric.
func (nw *Network) AbsorbSecure(delta smc.Stats) {
	nw.traffic.Messages[MsgSecure] += delta.Messages
	nw.traffic.Bytes[MsgSecure] += delta.Bytes
}

// Snapshot returns a copy of the current counters.
func (nw *Network) Snapshot() Traffic {
	t := nw.traffic
	t.PerDeviceSent = append([]int(nil), nw.traffic.PerDeviceSent...)
	return t
}

// Reset zeroes all counters.
func (nw *Network) Reset() {
	nw.traffic = Traffic{PerDeviceSent: make([]int, nw.n)}
}

// Diff returns the traffic accumulated since an earlier snapshot.
func (nw *Network) Diff(since Traffic) Traffic {
	cur := nw.Snapshot()
	var d Traffic
	for k := 0; k < int(numMessageKinds); k++ {
		d.Messages[k] = cur.Messages[k] - since.Messages[k]
		d.Bytes[k] = cur.Bytes[k] - since.Bytes[k]
	}
	d.PerDeviceSent = make([]int, len(cur.PerDeviceSent))
	for i := range d.PerDeviceSent {
		d.PerDeviceSent[i] = cur.PerDeviceSent[i] - since.PerDeviceSent[i]
	}
	return d
}

// Device is one federated participant: vertex identity, local ego network,
// private randomness, and a secure-computation party handle.
type Device struct {
	ID    int
	Ego   *graph.EgoNet
	Rng   *rand.Rand
	Party *smc.Party
}

// NewDevices instantiates one device per vertex, each with deterministic
// private randomness derived from seed and its id.
func NewDevices(g *graph.Graph, seed int64) []*Device {
	ds := make([]*Device, g.N)
	for v := 0; v < g.N; v++ {
		ds[v] = &Device{
			ID:    v,
			Ego:   g.Ego(v),
			Rng:   rand.New(rand.NewSource(seed ^ int64(v)*0x1e3779b97f4a7c15)),
			Party: smc.NewParty(seed ^ int64(v+1)*0x6a09e667f3bcc90),
		}
	}
	return ds
}

// Server is the coordinator. It never sees raw features, labels, degrees,
// or edges — only candidate announcements and protocol control flow.
type Server struct {
	Rng *rand.Rand
}

// NewServer returns a server with deterministic randomness.
func NewServer(seed int64) *Server {
	return &Server{Rng: rand.New(rand.NewSource(seed ^ 0x5bf0a8b145769231))}
}
