package nn

import (
	"fmt"
	"math/rand"

	"lumos/internal/autodiff"
)

// Backbone selects the GNN layer family, mirroring the paper's two
// backbones (GCN [15] and GAT [16]).
type Backbone int

const (
	// GCN selects graph convolutional layers.
	GCN Backbone = iota
	// GAT selects multi-head graph attention layers.
	GAT
)

// String returns the backbone name as used in the paper's tables.
func (b Backbone) String() string {
	switch b {
	case GCN:
		return "GCN"
	case GAT:
		return "GAT"
	default:
		return fmt.Sprintf("Backbone(%d)", int(b))
	}
}

// GNNConfig describes a multi-layer GNN encoder. The paper's setting is
// Layers=2, Hidden=Out=16, Heads=4 (GAT), Dropout=0.01.
type GNNConfig struct {
	Backbone Backbone
	InDim    int
	Hidden   int
	OutDim   int
	Layers   int
	Heads    int     // GAT only
	Dropout  float64 // applied after each hidden activation
}

// Validate fills defaults and checks consistency.
func (c *GNNConfig) Validate() error {
	if c.Layers <= 0 {
		c.Layers = 2
	}
	if c.Heads <= 0 {
		c.Heads = 1
	}
	if c.InDim <= 0 || c.Hidden <= 0 || c.OutDim <= 0 {
		return fmt.Errorf("nn: GNNConfig dims must be positive (in=%d hidden=%d out=%d)",
			c.InDim, c.Hidden, c.OutDim)
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("nn: dropout %v outside [0,1)", c.Dropout)
	}
	return nil
}

// convLayer abstracts GCNConv and GATConv behind one interface.
type convLayer interface {
	Module
	forwardConv(g *ConvGraph, x *autodiff.Value) *autodiff.Value
}

type gcnAdapter struct{ *GCNConv }

func (a gcnAdapter) forwardConv(g *ConvGraph, x *autodiff.Value) *autodiff.Value {
	return a.Forward(g, x)
}

type gatAdapter struct{ *GATConv }

func (a gatAdapter) forwardConv(g *ConvGraph, x *autodiff.Value) *autodiff.Value {
	return a.Forward(g, x)
}

// GNN is a multi-layer graph neural network encoder: conv → ReLU → dropout,
// repeated, with no activation after the final layer (embeddings come out
// raw, as in the paper).
type GNN struct {
	Cfg    GNNConfig
	layers []convLayer
}

// NewGNN constructs a GNN encoder per cfg with Glorot initialization.
func NewGNN(cfg GNNConfig, rng *rand.Rand) (*GNN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &GNN{Cfg: cfg}
	in := cfg.InDim
	for i := 0; i < cfg.Layers; i++ {
		last := i == cfg.Layers-1
		out := cfg.Hidden
		if last {
			out = cfg.OutDim
		}
		name := fmt.Sprintf("gnn.l%d", i)
		switch cfg.Backbone {
		case GCN:
			m.layers = append(m.layers, gcnAdapter{NewGCNConv(name, in, out, rng)})
			in = out
		case GAT:
			// Hidden layers concatenate heads; the final layer averages
			// them, the standard GAT arrangement.
			l := NewGATConv(name, in, out, cfg.Heads, !last, rng)
			m.layers = append(m.layers, gatAdapter{l})
			in = l.OutDim()
		default:
			return nil, fmt.Errorf("nn: unknown backbone %v", cfg.Backbone)
		}
	}
	return m, nil
}

// EmbeddingDim returns the width of the encoder output.
func (m *GNN) EmbeddingDim() int { return m.Cfg.OutDim }

// Forward encodes node features x over graph g. training enables dropout.
//
// The tape context enters through x: wrap the features with Tape.Const (or
// Tape.Var) and the whole forward records onto that tape — every op output,
// activation mask, and gradient buffer then comes from the tape's free-list
// and is recycled by its next Reset. An untaped x (plain autodiff.Const)
// selects the classic allocate-per-op mode. The parameters themselves stay
// untaped leaves either way, so one model serves any number of tapes.
func (m *GNN) Forward(g *ConvGraph, x *autodiff.Value, training bool, rng *rand.Rand) *autodiff.Value {
	h := x
	for i, l := range m.layers {
		h = l.forwardConv(g, h)
		if i < len(m.layers)-1 {
			h = autodiff.ReLU(h)
			h = autodiff.Dropout(h, m.Cfg.Dropout, rng, training)
		}
	}
	return h
}

// Params implements Module.
func (m *GNN) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// CloneShared returns a view of the encoder whose parameters share m's
// matrices but own independent gradient buffers (see ShareParam). The view's
// Params() come back in the same order as m's, so per-view gradients can be
// reduced positionally.
func (m *GNN) CloneShared() *GNN {
	c := &GNN{Cfg: m.Cfg}
	for _, l := range m.layers {
		switch t := l.(type) {
		case gcnAdapter:
			c.layers = append(c.layers, gcnAdapter{t.GCNConv.CloneShared()})
		case gatAdapter:
			c.layers = append(c.layers, gatAdapter{t.GATConv.CloneShared()})
		default:
			panic(fmt.Sprintf("nn: CloneShared: unknown layer type %T", l))
		}
	}
	return c
}

// Classifier couples a GNN encoder with a linear decoding head, the
// supervised architecture of §VI-C(a): z_u = LINEAR(h_u), softmax, CE loss.
type Classifier struct {
	Encoder *GNN
	Head    *Linear
}

// NewClassifier builds an encoder plus a classes-way linear head.
func NewClassifier(cfg GNNConfig, classes int, rng *rand.Rand) (*Classifier, error) {
	enc, err := NewGNN(cfg, rng)
	if err != nil {
		return nil, err
	}
	if classes < 2 {
		return nil, fmt.Errorf("nn: classifier needs ≥2 classes, got %d", classes)
	}
	return &Classifier{
		Encoder: enc,
		Head:    NewLinear("head", cfg.OutDim, classes, rng),
	}, nil
}

// Params implements Module.
func (c *Classifier) Params() []*Param {
	return append(c.Encoder.Params(), c.Head.Params()...)
}
