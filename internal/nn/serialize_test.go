package nn

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"lumos/internal/autodiff"
	"lumos/internal/tensor"
)

// paramSet is a minimal Module for codec tests.
type paramSet []*Param

func (ps paramSet) Params() []*Param { return ps }

func newParamSet(rng *rand.Rand, names ...string) paramSet {
	var ps paramSet
	for _, n := range names {
		ps = append(ps, &Param{Name: n, V: autodiff.Var(tensor.Uniform(3, 2, -1, 1, rng))})
	}
	return ps
}

func checkpointOf(t *testing.T, m Module) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveParams(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadParamsCorruptLengthFields drives every untrusted length field out
// of bounds and expects a loud decode error in place of the historical
// multi-GB up-front allocation.
func TestLoadParamsCorruptLengthFields(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := newParamSet(rng, "a", "b")
	good := checkpointOf(t, m)

	// Offsets into the stream: magic u32, count u32, then per parameter
	// nameLen u32, name, blobLen u32, blob.
	countOff := 4
	nameLenOff := 8
	blobLenOff := 8 + 4 + 1 // nameLen + 1-byte name "a"

	cases := []struct {
		name string
		off  int
		val  uint32
		want string
	}{
		{"huge count", countOff, 1 << 30, "bound is"},
		{"huge name length", nameLenOff, 1 << 30, "name length"},
		{"zero name length", nameLenOff, 0, "name length"},
		{"huge blob length", blobLenOff, 1 << 30, "bound is"},
		{"blob length past EOF", blobLenOff, 1 << 20, "payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			corrupt := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(corrupt[tc.off:], tc.val)
			err := LoadParams(bytes.NewReader(corrupt), newParamSet(rand.New(rand.NewSource(5)), "a", "b"))
			if err == nil {
				t.Fatal("corrupt checkpoint loaded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadParamsTruncation cuts the checkpoint at every byte boundary; each
// prefix must fail cleanly (no panic, no silent success).
func TestLoadParamsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := newParamSet(rng, "w", "b")
	good := checkpointOf(t, m)
	for n := 0; n < len(good); n++ {
		if err := LoadParams(bytes.NewReader(good[:n]), newParamSet(rand.New(rand.NewSource(6)), "w", "b")); err == nil {
			t.Fatalf("truncated checkpoint (%d of %d bytes) loaded without error", n, len(good))
		}
	}
	if err := LoadParams(bytes.NewReader(good), newParamSet(rand.New(rand.NewSource(7)), "w", "b")); err != nil {
		t.Fatalf("intact checkpoint failed to load: %v", err)
	}
}

func TestLoadParamsRejectsDuplicateNames(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// SaveParams refuses to write duplicates, so splice a stream by hand:
	// serialize {x} and repeat its parameter record with count patched to 2.
	good := checkpointOf(t, newParamSet(rng, "x"))
	record := good[8:] // past magic + count
	dup := append([]byte(nil), good[:4]...)
	dup = binary.LittleEndian.AppendUint32(dup, 2)
	dup = append(dup, record...)
	dup = append(dup, record...)
	err := LoadParams(bytes.NewReader(dup), newParamSet(rand.New(rand.NewSource(8)), "x", "y"))
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-name error, got %v", err)
	}
}

func TestSaveParamsRejectsDuplicateNames(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := newParamSet(rng, "x", "x")
	if err := SaveParams(&bytes.Buffer{}, m); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-name error, got %v", err)
	}
}

// TestLoadParamsSurfacesExtras loads a larger checkpoint into a smaller
// model: the stream parameters the model lacks must be named in the error
// instead of being silently dropped.
func TestLoadParamsSurfacesExtras(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	writer := newParamSet(rng, "shared", "writer.only1", "writer.only2")
	good := checkpointOf(t, writer)
	reader := newParamSet(rand.New(rand.NewSource(9)), "shared")
	err := LoadParams(bytes.NewReader(good), reader)
	if err == nil {
		t.Fatal("extra stream parameters loaded without error")
	}
	for _, name := range []string{"writer.only1", "writer.only2"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not name extra parameter %q", err, name)
		}
	}
	if strings.Contains(err.Error(), `"shared"`) {
		t.Fatalf("error %q names a parameter the model does have", err)
	}
}

func TestLoadParamsRejectsTrailingData(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m := newParamSet(rng, "p")
	good := checkpointOf(t, m)
	err := LoadParams(bytes.NewReader(append(good, 0xff)), newParamSet(rand.New(rand.NewSource(10)), "p"))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-data error, got %v", err)
	}
}

// TestLoadParamsFailureLeavesModelUntouched: every validation error must
// fire before any parameter is mutated.
func TestLoadParamsFailureLeavesModelUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	writer := newParamSet(rng, "a", "extra")
	good := checkpointOf(t, writer)
	reader := newParamSet(rand.New(rand.NewSource(11)), "a")
	before := reader[0].V.Data.Clone()
	if err := LoadParams(bytes.NewReader(good), reader); err == nil {
		t.Fatal("want error")
	}
	if !tensor.ApproxEqual(reader[0].V.Data, before, 0) {
		t.Fatal("failed load mutated the model")
	}
}
