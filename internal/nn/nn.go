// Package nn builds neural-network layers on top of the autodiff engine:
// linear layers, GCN and GAT graph convolutions, two-layer GNN backbones,
// and the Adam optimizer. It corresponds to the model zoo the paper uses
// (GCN [15] and GAT [16] backbones, l = 2 layers, ReLU + dropout, linear
// classification heads) but is written as a general, reusable library.
//
// Layer forwards are tape-transparent: the autodiff.Tape context (if any)
// is carried by the input Value (see GNN.Forward), while parameters remain
// long-lived untaped leaves whose gradient buffers are recycled in place
// across ZeroGrad/backward cycles.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"lumos/internal/autodiff"
	"lumos/internal/tensor"
)

// Param is a named trainable parameter.
type Param struct {
	Name string
	V    *autodiff.Value
}

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*Param
}

// ZeroGrad clears gradients on all parameters of a module.
func ZeroGrad(m Module) {
	for _, p := range m.Params() {
		p.V.ZeroGrad()
	}
}

// CountParams returns the total number of scalar parameters.
func CountParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.V.Data.Size()
	}
	return n
}

// ShareParam returns a view of p whose Value shares p's underlying matrix
// but owns an independent gradient buffer. Forward passes through the view
// read the live weights; backward passes accumulate into the view's Grad
// without touching p's. This is the building block of the device-parallel
// trainer: each worker differentiates through its own view and the shard
// gradients are reduced deterministically afterwards.
func ShareParam(p *Param) *Param {
	return &Param{Name: p.Name, V: autodiff.Var(p.V.Data)}
}

// Snapshot deep-copies all parameter matrices (for validation-based model
// selection or rollback). Because shared views created with ShareParam (or
// the CloneShared methods) alias the same matrices, Restore-ing a snapshot
// is immediately visible to every view; neither call may overlap a
// concurrent forward or backward pass through those views.
func Snapshot(m Module) []*tensor.Matrix {
	params := m.Params()
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = p.V.Data.Clone()
	}
	return out
}

// Restore copies a Snapshot back into the module's parameters.
func Restore(m Module, snap []*tensor.Matrix) {
	params := m.Params()
	if len(snap) != len(params) {
		panic(fmt.Sprintf("nn: snapshot has %d tensors for %d params", len(snap), len(params)))
	}
	for i, p := range params {
		p.V.Data.CopyFrom(snap[i])
	}
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear returns a Glorot-initialized linear layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		In:  in,
		Out: out,
		W:   &Param{Name: name + ".W", V: autodiff.Var(tensor.Glorot(in, out, rng))},
		B:   &Param{Name: name + ".B", V: autodiff.Var(tensor.New(1, out))},
	}
}

// Forward applies the layer.
func (l *Linear) Forward(x *autodiff.Value) *autodiff.Value {
	return autodiff.AddRow(autodiff.MatMul(x, l.W.V), l.B.V)
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// CloneShared returns a view of the layer whose parameters share l's
// matrices but own independent gradient buffers (see ShareParam).
func (l *Linear) CloneShared() *Linear {
	return &Linear{In: l.In, Out: l.Out, W: ShareParam(l.W), B: ShareParam(l.B)}
}

// ---------------------------------------------------------------------------
// ConvGraph: the message-passing structure consumed by GCN/GAT layers
// ---------------------------------------------------------------------------

// ConvGraph is a preprocessed directed edge list (with self-loops) over N
// nodes, ready for message passing. Norm carries the symmetric GCN
// normalization 1/√(deg(u)·deg(v)) per edge (degrees counted with
// self-loops); GAT ignores it.
type ConvGraph struct {
	N        int
	Src, Dst []int
	Norm     []float64

	// csr caches the destination-grouped view of the edge list for the
	// fused aggregation kernels; built lazily because the reference kernel
	// path and some auxiliary graphs never need it.
	csr     *tensor.CSR
	csrOnce sync.Once
}

// CSR returns the destination-grouped (stable edge order) view of the
// graph, building and caching it on first use. Safe for concurrent callers;
// the returned CSR is immutable.
func (g *ConvGraph) CSR() *tensor.CSR {
	g.csrOnce.Do(func() {
		g.csr = tensor.NewCSR(g.N, g.Src, g.Dst)
	})
	return g.csr
}

// NewConvGraph builds a ConvGraph from an undirected edge list over n nodes.
// Each undirected edge {u,v} contributes both directions; every node gets a
// self-loop. Duplicate edges are kept (callers should deduplicate first if
// that matters).
func NewConvGraph(n int, edges [][2]int) *ConvGraph {
	deg := make([]float64, n)
	for i := range deg {
		deg[i] = 1 // self-loop
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("nn: edge (%d,%d) out of range [0,%d)", u, v, n))
		}
		deg[u]++
		deg[v]++
	}
	m := 2*len(edges) + n
	g := &ConvGraph{
		N:    n,
		Src:  make([]int, 0, m),
		Dst:  make([]int, 0, m),
		Norm: make([]float64, 0, m),
	}
	add := func(u, v int) {
		g.Src = append(g.Src, u)
		g.Dst = append(g.Dst, v)
		g.Norm = append(g.Norm, 1/sqrtProd(deg[u], deg[v]))
	}
	for _, e := range edges {
		add(e[0], e[1])
		add(e[1], e[0])
	}
	for i := 0; i < n; i++ {
		add(i, i)
	}
	return g
}

func sqrtProd(a, b float64) float64 {
	p := a * b
	if p <= 0 {
		return 1
	}
	return math.Sqrt(p)
}

// ---------------------------------------------------------------------------
// GCNConv
// ---------------------------------------------------------------------------

// GCNConv is the graph convolution of Kipf & Welling:
// H' = D̂^{-1/2}(A+I)D̂^{-1/2} · H · W + b.
type GCNConv struct {
	In, Out int
	W, B    *Param
}

// NewGCNConv returns a Glorot-initialized GCN layer.
func NewGCNConv(name string, in, out int, rng *rand.Rand) *GCNConv {
	return &GCNConv{
		In:  in,
		Out: out,
		W:   &Param{Name: name + ".W", V: autodiff.Var(tensor.Glorot(in, out, rng))},
		B:   &Param{Name: name + ".B", V: autodiff.Var(tensor.New(1, out))},
	}
}

// Forward aggregates normalized neighbor messages over g. On the default
// kernel path the Gather→ScaleRows→SegmentSum chain runs as one fused
// CSR op (bit-identical, no per-edge message matrix); the reference path
// keeps the unfused chain for cross-checking.
func (l *GCNConv) Forward(g *ConvGraph, x *autodiff.Value) *autodiff.Value {
	h := autodiff.MatMul(x, l.W.V)
	var agg *autodiff.Value
	if tensor.ActiveKernelPath() == tensor.PathReference {
		msg := autodiff.ScaleRows(autodiff.Gather(h, g.Src), g.Norm)
		agg = autodiff.SegmentSum(msg, g.Dst, g.N)
	} else {
		agg = autodiff.CSRAggregate(h, g.CSR(), g.Norm)
	}
	return autodiff.AddRow(agg, l.B.V)
}

// Params implements Module.
func (l *GCNConv) Params() []*Param { return []*Param{l.W, l.B} }

// CloneShared returns a view of the layer whose parameters share l's
// matrices but own independent gradient buffers (see ShareParam).
func (l *GCNConv) CloneShared() *GCNConv {
	return &GCNConv{In: l.In, Out: l.Out, W: ShareParam(l.W), B: ShareParam(l.B)}
}

// ---------------------------------------------------------------------------
// GATConv
// ---------------------------------------------------------------------------

// GATConv is the graph attention layer of Veličković et al. with multi-head
// attention. Heads are concatenated when Concat is true (hidden layers) and
// averaged otherwise (output layers). OutDim is the per-head output size.
type GATConv struct {
	In, OutPerHead, Heads int
	Concat                bool
	NegativeSlope         float64

	W  []*Param // per head: In×OutPerHead
	AL []*Param // per head: OutPerHead×1 ("left"/source attention vector)
	AR []*Param // per head: OutPerHead×1 ("right"/destination attention vector)
	B  *Param   // bias over the final (concatenated or averaged) output
}

// NewGATConv returns a Glorot-initialized multi-head GAT layer.
func NewGATConv(name string, in, outPerHead, heads int, concat bool, rng *rand.Rand) *GATConv {
	if heads < 1 {
		panic("nn: GATConv needs at least one head")
	}
	l := &GATConv{
		In: in, OutPerHead: outPerHead, Heads: heads,
		Concat:        concat,
		NegativeSlope: 0.2,
	}
	for h := 0; h < heads; h++ {
		l.W = append(l.W, &Param{Name: fmt.Sprintf("%s.W%d", name, h), V: autodiff.Var(tensor.Glorot(in, outPerHead, rng))})
		l.AL = append(l.AL, &Param{Name: fmt.Sprintf("%s.aL%d", name, h), V: autodiff.Var(tensor.Glorot(outPerHead, 1, rng))})
		l.AR = append(l.AR, &Param{Name: fmt.Sprintf("%s.aR%d", name, h), V: autodiff.Var(tensor.Glorot(outPerHead, 1, rng))})
	}
	bias := outPerHead
	if concat {
		bias = outPerHead * heads
	}
	l.B = &Param{Name: name + ".B", V: autodiff.Var(tensor.New(1, bias))}
	return l
}

// OutDim returns the layer's actual output width.
func (l *GATConv) OutDim() int {
	if l.Concat {
		return l.OutPerHead * l.Heads
	}
	return l.OutPerHead
}

// Forward computes attention-weighted aggregation over g.
func (l *GATConv) Forward(g *ConvGraph, x *autodiff.Value) *autodiff.Value {
	headOuts := make([]*autodiff.Value, l.Heads)
	for h := 0; h < l.Heads; h++ {
		wh := autodiff.MatMul(x, l.W[h].V)
		sl := autodiff.MatMul(wh, l.AL[h].V) // N×1
		sr := autodiff.MatMul(wh, l.AR[h].V) // N×1
		e := autodiff.LeakyReLU(
			autodiff.Add(autodiff.Gather(sl, g.Src), autodiff.Gather(sr, g.Dst)),
			l.NegativeSlope)
		alpha := autodiff.SegmentSoftmax(e, g.Dst, g.N)
		if tensor.ActiveKernelPath() == tensor.PathReference {
			msg := autodiff.MulRowsByCol(autodiff.Gather(wh, g.Src), alpha)
			headOuts[h] = autodiff.SegmentSum(msg, g.Dst, g.N)
		} else {
			// Fused Gather→MulRowsByCol→SegmentSum (bit-identical).
			headOuts[h] = autodiff.CSRAggregateMul(wh, alpha, g.CSR())
		}
	}
	var out *autodiff.Value
	if l.Concat {
		out = autodiff.ConcatCols(headOuts...)
	} else {
		out = autodiff.Scale(autodiff.AddN(headOuts...), 1/float64(l.Heads))
	}
	return autodiff.AddRow(out, l.B.V)
}

// Params implements Module.
func (l *GATConv) Params() []*Param {
	ps := make([]*Param, 0, 3*l.Heads+1)
	for h := 0; h < l.Heads; h++ {
		ps = append(ps, l.W[h], l.AL[h], l.AR[h])
	}
	return append(ps, l.B)
}

// CloneShared returns a view of the layer whose parameters share l's
// matrices but own independent gradient buffers (see ShareParam).
func (l *GATConv) CloneShared() *GATConv {
	c := &GATConv{
		In: l.In, OutPerHead: l.OutPerHead, Heads: l.Heads,
		Concat:        l.Concat,
		NegativeSlope: l.NegativeSlope,
		B:             ShareParam(l.B),
	}
	for h := 0; h < l.Heads; h++ {
		c.W = append(c.W, ShareParam(l.W[h]))
		c.AL = append(c.AL, ShareParam(l.AL[h]))
		c.AR = append(c.AR, ShareParam(l.AR[h]))
	}
	return c
}
