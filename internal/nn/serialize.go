package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"lumos/internal/tensor"
)

// Checkpointing: named parameters are written as a simple length-prefixed
// stream so trained models can be saved and restored without reflection or
// third-party formats. The reader treats every length field as untrusted:
// counts and sizes are bounded before any allocation, payloads are read
// incrementally (a truncated stream fails after reading what actually
// exists, never after a multi-GB up-front allocation), duplicate parameter
// names are rejected, and parameters present in the stream but absent from
// the model surface in the error — name or shape drift between writer and
// reader is always loud.

const checkpointMagic = uint32(0x4c4d4f53) // "LMOS"

// Decode bounds. They are far above anything this codebase writes (the
// largest real checkpoint is a few thousand small matrices) but low enough
// that a corrupt length field cannot drive an excessive allocation.
const (
	// MaxCheckpointParams bounds the parameter count field.
	MaxCheckpointParams = 1 << 16
	// MaxCheckpointNameLen bounds a single parameter-name length.
	MaxCheckpointNameLen = 1 << 10
	// MaxCheckpointBlobLen bounds a single parameter payload (a 16k×2k
	// float64 matrix still fits; real layers are orders of magnitude
	// smaller).
	MaxCheckpointBlobLen = 1 << 28
)

// SaveParams writes all parameters of m to w. The writer enforces the same
// bounds the reader checks, so a checkpoint that saves successfully always
// loads (duplicate parameter names are a writer bug and rejected here too).
func SaveParams(w io.Writer, m Module) error {
	bw := bufio.NewWriter(w)
	params := m.Params()
	if len(params) > MaxCheckpointParams {
		return fmt.Errorf("nn: %d parameters exceed the checkpoint bound %d", len(params), MaxCheckpointParams)
	}
	if err := binary.Write(bw, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		name := []byte(p.Name)
		if len(name) == 0 || len(name) > MaxCheckpointNameLen {
			return fmt.Errorf("nn: parameter name %q length %d outside [1,%d]", p.Name, len(name), MaxCheckpointNameLen)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		blob, err := p.V.Data.MarshalBinary()
		if err != nil {
			return err
		}
		if len(blob) > MaxCheckpointBlobLen {
			return fmt.Errorf("nn: parameter %q payload %d bytes exceeds the checkpoint bound %d", p.Name, len(blob), MaxCheckpointBlobLen)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadParams restores parameters into m, matching by name. The stream and
// the model must carry exactly the same parameter set: a parameter of m
// missing from the stream, a stream parameter absent from m, a duplicate
// name, a shape mismatch, or trailing bytes after the last parameter are
// all decode errors.
func LoadParams(r io.Reader, m Module) error {
	br := bufio.NewReader(r)
	var magic, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: reading checkpoint parameter count: %w", err)
	}
	if count > MaxCheckpointParams {
		return fmt.Errorf("nn: checkpoint claims %d parameters, bound is %d (corrupt length field?)", count, MaxCheckpointParams)
	}
	loaded := make(map[string]*tensor.Matrix, count)
	order := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: reading name length of parameter %d/%d: %w", i+1, count, err)
		}
		if nameLen == 0 || nameLen > MaxCheckpointNameLen {
			return fmt.Errorf("nn: parameter %d/%d name length %d outside [1,%d] (corrupt length field?)", i+1, count, nameLen, MaxCheckpointNameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("nn: reading name of parameter %d/%d: %w", i+1, count, err)
		}
		var blobLen uint32
		if err := binary.Read(br, binary.LittleEndian, &blobLen); err != nil {
			return fmt.Errorf("nn: reading payload length of parameter %q: %w", name, err)
		}
		if blobLen > MaxCheckpointBlobLen {
			return fmt.Errorf("nn: parameter %q claims a %d-byte payload, bound is %d (corrupt length field?)", name, blobLen, MaxCheckpointBlobLen)
		}
		blob, err := readExactly(br, int64(blobLen))
		if err != nil {
			return fmt.Errorf("nn: reading payload of parameter %q: %w", name, err)
		}
		var mat tensor.Matrix
		if err := mat.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("nn: parameter %q: %w", name, err)
		}
		if _, dup := loaded[string(name)]; dup {
			return fmt.Errorf("nn: checkpoint has duplicate parameter %q", name)
		}
		loaded[string(name)] = &mat
		order = append(order, string(name))
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err == nil {
			return fmt.Errorf("nn: trailing data after %d checkpoint parameters", count)
		}
		return fmt.Errorf("nn: reading checkpoint trailer: %w", err)
	}
	used := make(map[string]bool, len(loaded))
	for _, p := range m.Params() {
		mat, ok := loaded[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if mat.Rows() != p.V.Data.Rows() || mat.Cols() != p.V.Data.Cols() {
			return fmt.Errorf("nn: parameter %q shape %dx%d, checkpoint has %dx%d",
				p.Name, p.V.Data.Rows(), p.V.Data.Cols(), mat.Rows(), mat.Cols())
		}
		used[p.Name] = true
	}
	if len(used) < len(loaded) {
		extras := make([]string, 0, len(loaded)-len(used))
		for _, name := range order {
			if !used[name] {
				extras = append(extras, fmt.Sprintf("%q", name))
			}
		}
		sort.Strings(extras)
		return fmt.Errorf("nn: checkpoint has %d parameter(s) the model does not: %s",
			len(extras), strings.Join(extras, ", "))
	}
	// All checks passed; only now mutate the model, so a failed load never
	// leaves it half-restored.
	for _, p := range m.Params() {
		p.V.Data.CopyFrom(loaded[p.Name])
	}
	return nil
}

// readExactly reads exactly n bytes, growing the buffer as data actually
// arrives: a corrupt length field pointing past the end of the stream fails
// after the real bytes run out instead of allocating n up front.
func readExactly(r io.Reader, n int64) ([]byte, error) {
	var buf bytes.Buffer
	if m, err := io.CopyN(&buf, r, n); err != nil {
		return nil, fmt.Errorf("got %d of %d bytes: %w", m, n, err)
	}
	return buf.Bytes(), nil
}
