package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"lumos/internal/tensor"
)

// Checkpointing: named parameters are written as a simple length-prefixed
// stream so trained models can be saved and restored without reflection or
// third-party formats.

const checkpointMagic = uint32(0x4c4d4f53) // "LMOS"

// SaveParams writes all parameters of m to w.
func SaveParams(w io.Writer, m Module) error {
	bw := bufio.NewWriter(w)
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		blob, err := p.V.Data.MarshalBinary()
		if err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadParams restores parameters into m, matching by name. Every parameter
// of m must be present in the stream with an identical shape.
func LoadParams(r io.Reader, m Module) error {
	br := bufio.NewReader(r)
	var magic, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	loaded := make(map[string]*tensor.Matrix, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		var blobLen uint32
		if err := binary.Read(br, binary.LittleEndian, &blobLen); err != nil {
			return err
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return err
		}
		var mat tensor.Matrix
		if err := mat.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("nn: parameter %q: %w", name, err)
		}
		loaded[string(name)] = &mat
	}
	for _, p := range m.Params() {
		mat, ok := loaded[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if mat.Rows() != p.V.Data.Rows() || mat.Cols() != p.V.Data.Cols() {
			return fmt.Errorf("nn: parameter %q shape %dx%d, checkpoint has %dx%d",
				p.Name, p.V.Data.Rows(), p.V.Data.Cols(), mat.Rows(), mat.Cols())
		}
		p.V.Data.CopyFrom(mat)
	}
	return nil
}
