package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lumos/internal/autodiff"
	"lumos/internal/tensor"
)

func TestLinearShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 4, 3, rng)
	x := autodiff.Const(tensor.Uniform(5, 4, -1, 1, rng))
	y := l.Forward(x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("linear output %dx%d", y.Rows(), y.Cols())
	}
	if len(l.Params()) != 2 {
		t.Fatalf("linear has %d params", len(l.Params()))
	}
	if CountParams(l) != 4*3+3 {
		t.Fatalf("CountParams = %d", CountParams(l))
	}
}

func TestLinearComputesXWPlusB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("fc", 2, 2, rng)
	l.W.V.Data.CopyFrom(tensor.FromRows([][]float64{{1, 2}, {3, 4}}))
	l.B.V.Data.CopyFrom(tensor.FromRows([][]float64{{10, 20}}))
	x := autodiff.Const(tensor.FromRows([][]float64{{1, 1}}))
	y := l.Forward(x)
	if y.Data.At(0, 0) != 14 || y.Data.At(0, 1) != 26 {
		t.Fatalf("linear output %v", y.Data)
	}
}

func TestNewConvGraphSelfLoopsAndNorm(t *testing.T) {
	// Path graph 0-1-2.
	g := NewConvGraph(3, [][2]int{{0, 1}, {1, 2}})
	if len(g.Src) != 2*2+3 {
		t.Fatalf("edges = %d, want 7", len(g.Src))
	}
	// deg with self-loops: d0=2, d1=3, d2=2.
	// Edge (0,1): norm = 1/sqrt(2*3).
	found := false
	for i := range g.Src {
		if g.Src[i] == 0 && g.Dst[i] == 1 {
			found = true
			want := 1 / math.Sqrt(6)
			if math.Abs(g.Norm[i]-want) > 1e-12 {
				t.Fatalf("norm = %v, want %v", g.Norm[i], want)
			}
		}
	}
	if !found {
		t.Fatal("edge (0,1) missing")
	}
}

func TestConvGraphOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConvGraph(2, [][2]int{{0, 5}})
}

func TestGCNConvRowStochasticOnUniform(t *testing.T) {
	// On a regular graph with identical features, GCN output is identical
	// across nodes (symmetric normalization of a regular graph).
	rng := rand.New(rand.NewSource(3))
	// Cycle of 4 nodes: every node has degree 2.
	g := NewConvGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	l := NewGCNConv("gcn", 3, 2, rng)
	x := autodiff.Const(tensor.Full(4, 3, 1))
	y := l.Forward(g, x)
	for i := 1; i < 4; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(y.Data.At(i, j)-y.Data.At(0, j)) > 1e-9 {
				t.Fatalf("regular graph rows differ: %v vs %v", y.Data.Row(i), y.Data.Row(0))
			}
		}
	}
}

func TestGCNConvManualTwoNodes(t *testing.T) {
	// Two nodes, one edge; W = I, b = 0; features e1, e2.
	rng := rand.New(rand.NewSource(4))
	g := NewConvGraph(2, [][2]int{{0, 1}})
	l := NewGCNConv("gcn", 2, 2, rng)
	l.W.V.Data.CopyFrom(tensor.Eye(2))
	l.B.V.Data.Zero()
	x := autodiff.Const(tensor.FromRows([][]float64{{1, 0}, {0, 1}}))
	y := l.Forward(g, x)
	// deg (with self-loop) both 2: out0 = x0/2 + x1/2 = (0.5, 0.5).
	if math.Abs(y.Data.At(0, 0)-0.5) > 1e-12 || math.Abs(y.Data.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("gcn row0 = %v", y.Data.Row(0))
	}
}

func TestGATConvShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewConvGraph(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 5}})
	concat := NewGATConv("gat", 8, 4, 3, true, rng)
	x := autodiff.Const(tensor.Uniform(6, 8, -1, 1, rng))
	y := concat.Forward(g, x)
	if y.Cols() != 12 {
		t.Fatalf("concat GAT output cols = %d, want 12", y.Cols())
	}
	if concat.OutDim() != 12 {
		t.Fatalf("OutDim = %d", concat.OutDim())
	}
	avg := NewGATConv("gat2", 8, 4, 3, false, rng)
	y2 := avg.Forward(g, x)
	if y2.Cols() != 4 {
		t.Fatalf("avg GAT output cols = %d, want 4", y2.Cols())
	}
	if got := len(avg.Params()); got != 3*3+1 {
		t.Fatalf("GAT params = %d", got)
	}
}

func TestGATAttentionIsNormalized(t *testing.T) {
	// A GAT layer with W=I and zero attention vectors assigns uniform
	// attention, so the output for a node is the mean of its in-neighbors
	// (incl. self-loop).
	rng := rand.New(rand.NewSource(6))
	g := NewConvGraph(3, [][2]int{{0, 1}, {1, 2}})
	l := NewGATConv("gat", 2, 2, 1, false, rng)
	l.W[0].V.Data.CopyFrom(tensor.Eye(2))
	l.AL[0].V.Data.Zero()
	l.AR[0].V.Data.Zero()
	l.B.V.Data.Zero()
	x := autodiff.Const(tensor.FromRows([][]float64{{3, 0}, {0, 3}, {3, 3}}))
	y := l.Forward(g, x)
	// Node 1 receives from {0, 2, itself}: mean = (3+0+3, 0+3+3)/3 = (2,2).
	if math.Abs(y.Data.At(1, 0)-2) > 1e-9 || math.Abs(y.Data.At(1, 1)-2) > 1e-9 {
		t.Fatalf("gat row1 = %v", y.Data.Row(1))
	}
}

func TestGNNConfigValidate(t *testing.T) {
	bad := GNNConfig{Backbone: GCN, InDim: 0, Hidden: 4, OutDim: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero InDim")
	}
	cfg := GNNConfig{Backbone: GCN, InDim: 3, Hidden: 4, OutDim: 2}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Layers != 2 || cfg.Heads != 1 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestGNNForwardBothBackbones(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewConvGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	x := autodiff.Const(tensor.Uniform(5, 6, -1, 1, rng))
	for _, bb := range []Backbone{GCN, GAT} {
		m, err := NewGNN(GNNConfig{Backbone: bb, InDim: 6, Hidden: 8, OutDim: 4, Heads: 2, Dropout: 0.1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		y := m.Forward(g, x, true, rng)
		if y.Rows() != 5 || y.Cols() != 4 {
			t.Fatalf("%v output %dx%d", bb, y.Rows(), y.Cols())
		}
		if tensor.HasNaN(y.Data) {
			t.Fatalf("%v produced NaN", bb)
		}
		if len(m.Params()) == 0 {
			t.Fatalf("%v has no params", bb)
		}
	}
}

func TestGNNUnknownBackbone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := NewGNN(GNNConfig{Backbone: Backbone(9), InDim: 2, Hidden: 2, OutDim: 2}, rng); err == nil {
		t.Fatal("expected error for unknown backbone")
	}
}

func TestBackboneString(t *testing.T) {
	if GCN.String() != "GCN" || GAT.String() != "GAT" {
		t.Fatal("backbone names wrong")
	}
}

func TestClassifierEndToEndLearnsXORish(t *testing.T) {
	// Two clusters on a graph with cluster-pure features: the classifier
	// should separate them quickly.
	rng := rand.New(rand.NewSource(9))
	edges := [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}}
	g := NewConvGraph(6, edges)
	x := tensor.FromRows([][]float64{
		{1, 0}, {1, 0}, {1, 0},
		{0, 1}, {0, 1}, {0, 1},
	})
	labels := []int{0, 0, 0, 1, 1, 1}
	clf, err := NewClassifier(GNNConfig{Backbone: GCN, InDim: 2, Hidden: 8, OutDim: 4, Dropout: 0.0}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewAdam(0.05)
	var last float64
	for epoch := 0; epoch < 120; epoch++ {
		h := clf.Encoder.Forward(g, autodiff.Const(x), true, rng)
		logits := clf.Head.Forward(h)
		loss := autodiff.SoftmaxCrossEntropy(logits, labels, nil)
		ZeroGrad(clf)
		loss.Backward()
		opt.Step(clf.Params())
		last = loss.Scalar()
	}
	if last > 0.1 {
		t.Fatalf("classifier failed to fit: final loss %v", last)
	}
	h := clf.Encoder.Forward(g, autodiff.Const(x), false, rng)
	logits := clf.Head.Forward(h)
	for i, y := range labels {
		if tensor.ArgMaxRow(logits.Data, i) != y {
			t.Fatalf("node %d misclassified", i)
		}
	}
}

func TestClassifierNeedsTwoClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if _, err := NewClassifier(GNNConfig{Backbone: GCN, InDim: 2, Hidden: 2, OutDim: 2}, 1, rng); err == nil {
		t.Fatal("expected error for single class")
	}
}

func TestSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLinear("fc", 3, 3, rng)
	snap := Snapshot(l)
	orig := l.W.V.Data.Clone()
	l.W.V.Data.Fill(0)
	Restore(l, snap)
	if !tensor.ApproxEqual(l.W.V.Data, orig, 0) {
		t.Fatal("restore did not recover weights")
	}
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m1, err := NewGNN(GNNConfig{Backbone: GAT, InDim: 4, Hidden: 6, OutDim: 3, Heads: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1); err != nil {
		t.Fatal(err)
	}
	m2, err := NewGNN(GNNConfig{Backbone: GAT, InDim: 4, Hidden: 6, OutDim: 3, Heads: 2}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, m2); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		if !tensor.ApproxEqual(p1[i].V.Data, p2[i].V.Data, 0) {
			t.Fatalf("param %s differs after round trip", p1[i].Name)
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	small := NewLinear("fc", 2, 2, rng)
	big := NewLinear("fc", 3, 3, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, small); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, big); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadParamsBadMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewLinear("fc", 2, 2, rng)
	if err := LoadParams(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), l); err == nil {
		t.Fatal("expected bad magic error")
	}
}

func TestCloneSharedSharesWeightsSplitsGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	enc, err := NewGNN(GNNConfig{Backbone: GAT, InDim: 6, Hidden: 8, OutDim: 4, Layers: 2, Heads: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	view := enc.CloneShared()
	ps, vs := enc.Params(), view.Params()
	if len(ps) != len(vs) {
		t.Fatalf("view has %d params, original %d", len(vs), len(ps))
	}
	for i := range ps {
		if vs[i].Name != ps[i].Name {
			t.Fatalf("param %d name %q != %q: order not preserved", i, vs[i].Name, ps[i].Name)
		}
		if vs[i].V == ps[i].V {
			t.Fatalf("param %q: view shares the Value, not just the data", ps[i].Name)
		}
		if vs[i].V.Data != ps[i].V.Data {
			t.Fatalf("param %q: view does not alias the weight matrix", ps[i].Name)
		}
	}

	// A backward through the view must leave the original's grads untouched.
	g := NewConvGraph(3, [][2]int{{0, 1}, {1, 2}})
	x := autodiff.Const(tensor.Uniform(3, 6, -1, 1, rng))
	out := view.Forward(g, x, false, rng)
	autodiff.SumAll(out).Backward()
	for i := range ps {
		if ps[i].V.Grad != nil {
			t.Fatalf("param %q: view backward leaked into original grad", ps[i].Name)
		}
		if vs[i].V.Grad == nil {
			t.Fatalf("param %q: view got no gradient", ps[i].Name)
		}
	}

	// Restore on the original must be visible through the view (shared data).
	snap := Snapshot(enc)
	ps[0].V.Data.Fill(0)
	Restore(enc, snap)
	if !tensor.ApproxEqual(vs[0].V.Data, snap[0], 0) {
		t.Fatal("Restore not visible through the shared view")
	}
}

func TestCloneSharedLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	l := NewLinear("head", 4, 3, rng)
	v := l.CloneShared()
	if v.W.V.Data != l.W.V.Data || v.B.V.Data != l.B.V.Data {
		t.Fatal("Linear view does not share weights")
	}
	if v.W.V == l.W.V {
		t.Fatal("Linear view shares the W Value")
	}
}
