package nn

import (
	"math"
	"testing"

	"lumos/internal/autodiff"
	"lumos/internal/tensor"
)

// quadratic builds loss = Σ (w−target)² over a 1×n parameter.
func quadratic(w *Param, target float64) *autodiff.Value {
	diff := autodiff.Sub(w.V, autodiff.Const(tensor.Full(1, w.V.Cols(), target)))
	return autodiff.SumSquares(diff)
}

type singleParam struct{ p *Param }

func (s singleParam) Params() []*Param { return []*Param{s.p} }

func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{5, -3, 0.5}}))}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		loss := quadratic(w, 2)
		ZeroGrad(singleParam{w})
		loss.Backward()
		opt.Step([]*Param{w})
	}
	for _, v := range w.V.Data.Data() {
		if math.Abs(v-2) > 1e-3 {
			t.Fatalf("adam failed to converge: %v", w.V.Data)
		}
	}
	if opt.StepCount() != 500 {
		t.Fatalf("step count = %d", opt.StepCount())
	}
}

func TestAdamSkipsParamsWithoutGrad(t *testing.T) {
	w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{1}}))}
	opt := NewAdam(0.1)
	opt.Step([]*Param{w}) // no gradient: must be a no-op
	if w.V.Data.At(0, 0) != 1 {
		t.Fatal("adam updated a gradient-less parameter")
	}
}

func TestAdamWeightDecayShrinks(t *testing.T) {
	// With zero data gradient but weight decay, weights decay toward 0.
	w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{4}}))}
	opt := NewAdam(0.05)
	opt.WeightDecay = 0.5
	for i := 0; i < 200; i++ {
		// A loss independent of w would give no grad; instead use a tiny
		// quadratic around the current point to trigger updates and let
		// decay dominate.
		loss := autodiff.Scale(autodiff.SumSquares(w.V), 1e-9)
		ZeroGrad(singleParam{w})
		loss.Backward()
		opt.Step([]*Param{w})
	}
	if math.Abs(w.V.Data.At(0, 0)) > 1 {
		t.Fatalf("weight decay failed: w = %v", w.V.Data.At(0, 0))
	}
}

func TestAdamReset(t *testing.T) {
	w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{1}}))}
	opt := NewAdam(0.1)
	loss := quadratic(w, 0)
	loss.Backward()
	opt.Step([]*Param{w})
	opt.Reset()
	if opt.StepCount() != 0 {
		t.Fatal("reset did not clear step count")
	}
}

func TestSGDConverges(t *testing.T) {
	w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{5}}))}
	opt := NewSGD(0.05, 0.9)
	for i := 0; i < 300; i++ {
		loss := quadratic(w, -1)
		ZeroGrad(singleParam{w})
		loss.Backward()
		opt.Step([]*Param{w})
	}
	if math.Abs(w.V.Data.At(0, 0)+1) > 1e-3 {
		t.Fatalf("sgd failed to converge: %v", w.V.Data.At(0, 0))
	}
}

func TestSGDNoMomentumPath(t *testing.T) {
	w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{2}}))}
	opt := NewSGD(0.25, 0)
	loss := quadratic(w, 0) // grad = 2w = 4
	loss.Backward()
	opt.Step([]*Param{w})
	if math.Abs(w.V.Data.At(0, 0)-1) > 1e-12 {
		t.Fatalf("sgd step = %v, want 1", w.V.Data.At(0, 0))
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// Adam's bias correction makes the first step ≈ lr regardless of
	// gradient scale.
	for _, scale := range []float64{1e-3, 1, 1e3} {
		w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{scale}}))}
		opt := NewAdam(0.1)
		loss := autodiff.SumSquares(w.V)
		loss.Backward()
		opt.Step([]*Param{w})
		step := scale - w.V.Data.At(0, 0)
		if math.Abs(step-0.1) > 1e-6 {
			t.Fatalf("first adam step = %v at scale %v, want ≈0.1", step, scale)
		}
	}
}

// Capture/restore must make one Adam instance serve two independent
// training trajectories (the per-device replica pattern): interleaving two
// captured states produces bit-identical weights to two separate
// optimizers.
func TestAdamCaptureRestoreIndependentTrajectories(t *testing.T) {
	step := func(w *Param, opt *Adam, target float64) {
		loss := quadratic(w, target)
		ZeroGrad(singleParam{w})
		loss.Backward()
		opt.Step([]*Param{w})
	}
	// Reference: two private optimizers.
	wa := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{5, -3}}))}
	wb := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{5, -3}}))}
	oa, ob := NewAdam(0.1), NewAdam(0.1)
	for i := 0; i < 20; i++ {
		step(wa, oa, 2)
		step(wb, ob, -4)
	}

	// One shared optimizer + one shared parameter, two replicas swapped
	// through capture/restore.
	w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{5, -3}}))}
	o := NewAdam(0.1)
	params := []*Param{w}
	weightsA := w.V.Data.Clone()
	weightsB := w.V.Data.Clone()
	stA := o.CaptureState(params)
	stB := o.CaptureState(params)
	for i := 0; i < 20; i++ {
		w.V.Data.CopyFrom(weightsA)
		o.RestoreState(params, stA)
		step(w, o, 2)
		weightsA.CopyFrom(w.V.Data)
		stA = o.CaptureState(params)

		w.V.Data.CopyFrom(weightsB)
		o.RestoreState(params, stB)
		step(w, o, -4)
		weightsB.CopyFrom(w.V.Data)
		stB = o.CaptureState(params)
	}
	for i, want := range wa.V.Data.Data() {
		if got := weightsA.Data()[i]; got != want {
			t.Fatalf("trajectory A diverged at %d: %v != %v", i, got, want)
		}
	}
	for i, want := range wb.V.Data.Data() {
		if got := weightsB.Data()[i]; got != want {
			t.Fatalf("trajectory B diverged at %d: %v != %v", i, got, want)
		}
	}
	if stA.StepCount() != 20 || stB.StepCount() != 20 {
		t.Fatalf("captured step counts %d/%d, want 20", stA.StepCount(), stB.StepCount())
	}
}

// A captured state is detached: stepping after capture must not mutate it,
// and restoring a never-stepped state clears the moments.
func TestAdamCaptureStateDetached(t *testing.T) {
	w := &Param{Name: "w", V: autodiff.Var(tensor.FromRows([][]float64{{3}}))}
	o := NewAdam(0.1)
	params := []*Param{w}
	fresh := o.CaptureState(params) // never stepped: nil moments, t=0
	loss := quadratic(w, 0)
	loss.Backward()
	o.Step(params)
	mid := o.CaptureState(params)
	loss2 := quadratic(w, 0)
	ZeroGrad(singleParam{w})
	loss2.Backward()
	o.Step(params)
	if o.StepCount() != 2 || mid.StepCount() != 1 {
		t.Fatalf("step counts: live %d (want 2), captured %d (want 1)", o.StepCount(), mid.StepCount())
	}
	o.RestoreState(params, fresh)
	if o.StepCount() != 0 {
		t.Fatalf("restored fresh state has t=%d", o.StepCount())
	}
	if len(o.m) != 0 || len(o.v) != 0 {
		t.Fatalf("restoring a never-stepped state left %d/%d moments", len(o.m), len(o.v))
	}
}
