package nn

import (
	"math"

	"lumos/internal/autodiff"
	"lumos/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba) with optional decoupled
// weight decay. The paper trains every model with Adam at lr = 0.01.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*autodiff.Value]*tensor.Matrix
	v map[*autodiff.Value]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with the standard hyperparameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*autodiff.Value]*tensor.Matrix),
		v:     make(map[*autodiff.Value]*tensor.Matrix),
	}
}

// Step applies one update to every parameter that has a gradient, then
// leaves gradients untouched (call ZeroGrad separately).
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		g := p.V.Grad
		if g == nil {
			continue
		}
		w := p.V.Data
		m, ok := o.m[p.V]
		if !ok {
			m = tensor.New(w.Rows(), w.Cols())
			o.m[p.V] = m
		}
		v, ok := o.v[p.V]
		if !ok {
			v = tensor.New(w.Rows(), w.Cols())
			o.v[p.V] = v
		}
		wd, gd, md, vd := w.Data(), g.Data(), m.Data(), v.Data()
		for i := range wd {
			gi := gd[i]
			if o.WeightDecay != 0 {
				gi += o.WeightDecay * wd[i]
			}
			md[i] = o.Beta1*md[i] + (1-o.Beta1)*gi
			vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*gi*gi
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			wd[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// Reset clears optimizer state (moments and step count).
func (o *Adam) Reset() {
	o.t = 0
	o.m = make(map[*autodiff.Value]*tensor.Matrix)
	o.v = make(map[*autodiff.Value]*tensor.Matrix)
}

// StepCount returns the number of updates applied so far.
func (o *Adam) StepCount() int { return o.t }

// SGD is a plain stochastic gradient descent optimizer, kept as a simple
// reference and for ablation against Adam.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*autodiff.Value]*tensor.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*autodiff.Value]*tensor.Matrix)}
}

// Step applies one SGD (with momentum) update.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.V.Grad
		if g == nil {
			continue
		}
		w := p.V.Data
		if o.Momentum == 0 {
			tensor.AddScaledInPlace(w, -o.LR, g)
			continue
		}
		v, ok := o.vel[p.V]
		if !ok {
			v = tensor.New(w.Rows(), w.Cols())
			o.vel[p.V] = v
		}
		vd, gd, wd := v.Data(), g.Data(), w.Data()
		for i := range wd {
			vd[i] = o.Momentum*vd[i] + gd[i]
			wd[i] -= o.LR * vd[i]
		}
	}
}

// Optimizer is the interface shared by Adam and SGD.
type Optimizer interface {
	Step(params []*Param)
}

var (
	_ Optimizer = (*Adam)(nil)
	_ Optimizer = (*SGD)(nil)
)
