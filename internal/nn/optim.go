package nn

import (
	"fmt"
	"math"

	"lumos/internal/autodiff"
	"lumos/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba) with optional decoupled
// weight decay. The paper trains every model with Adam at lr = 0.01.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*autodiff.Value]*tensor.Matrix
	v map[*autodiff.Value]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with the standard hyperparameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*autodiff.Value]*tensor.Matrix),
		v:     make(map[*autodiff.Value]*tensor.Matrix),
	}
}

// Step applies one update to every parameter that has a gradient, then
// leaves gradients untouched (call ZeroGrad separately).
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		g := p.V.Grad
		if g == nil {
			continue
		}
		w := p.V.Data
		m, ok := o.m[p.V]
		if !ok {
			m = tensor.New(w.Rows(), w.Cols())
			o.m[p.V] = m
		}
		v, ok := o.v[p.V]
		if !ok {
			v = tensor.New(w.Rows(), w.Cols())
			o.v[p.V] = v
		}
		wd, gd, md, vd := w.Data(), g.Data(), m.Data(), v.Data()
		for i := range wd {
			gi := gd[i]
			if o.WeightDecay != 0 {
				gi += o.WeightDecay * wd[i]
			}
			md[i] = o.Beta1*md[i] + (1-o.Beta1)*gi
			vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*gi*gi
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			wd[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// OptState is a detached copy of an Adam optimizer's full state — step
// count plus first/second moments — over a fixed parameter list. It is what
// lets one optimizer instance serve many model replicas (gossip training
// keeps one per device): capture after stepping one replica, restore before
// stepping the next. Entries are aligned with the parameter slice passed to
// CaptureState; a nil moment means the parameter had never been stepped.
type OptState struct {
	t    int
	m, v []*tensor.Matrix
}

// StepCount returns the captured update count.
func (st *OptState) StepCount() int { return st.t }

// CaptureState deep-copies the optimizer's state for the given parameters.
// The copy is independent: later Steps do not mutate it.
func (o *Adam) CaptureState(params []*Param) *OptState {
	st := &OptState{t: o.t, m: make([]*tensor.Matrix, len(params)), v: make([]*tensor.Matrix, len(params))}
	for i, p := range params {
		if m, ok := o.m[p.V]; ok {
			st.m[i] = m.Clone()
		}
		if v, ok := o.v[p.V]; ok {
			st.v[i] = v.Clone()
		}
	}
	return st
}

// RestoreState overwrites the optimizer's state for the given parameters
// with a captured copy. params must be the same list (same order, same
// length) the state was captured over. The state is copied in, not aliased,
// so one OptState can be restored any number of times; a nil captured
// moment clears the live one (the parameter becomes never-stepped again).
func (o *Adam) RestoreState(params []*Param, st *OptState) {
	if len(params) != len(st.m) {
		panic(fmt.Sprintf("nn: optimizer state captured over %d params, restoring %d", len(st.m), len(params)))
	}
	o.t = st.t
	for i, p := range params {
		restoreMoment(o.m, p.V, st.m[i])
		restoreMoment(o.v, p.V, st.v[i])
	}
}

// MixOptStates returns the weighted sum of captured optimizer states — the
// moment half of decentralized neighbor averaging. Mixing moments alongside
// weights is what makes gossip-averaged Adam converge: each device's first
// moment then carries its neighborhood's averaged gradient signal (per-device
// gradient noise cancels in the mean), so local steps pull toward the
// consensus descent direction instead of each device's own noise. Step
// counts don't average meaningfully; the result adopts srcs[0]'s (by
// convention the device's own). A nil captured moment is a zero matrix; the
// result's moment is nil only where every source's is.
func MixOptStates(srcs []*OptState, ws []float64) (*OptState, error) {
	if len(srcs) == 0 || len(srcs) != len(ws) {
		return nil, fmt.Errorf("nn: mixing %d optimizer states with %d weights", len(srcs), len(ws))
	}
	k := len(srcs[0].m)
	for _, s := range srcs {
		if len(s.m) != k || len(s.v) != k {
			return nil, fmt.Errorf("nn: mixing optimizer states of different shapes")
		}
	}
	return &OptState{
		t: srcs[0].t,
		m: mixMoments(srcs, ws, func(s *OptState) []*tensor.Matrix { return s.m }, k),
		v: mixMoments(srcs, ws, func(s *OptState) []*tensor.Matrix { return s.v }, k),
	}, nil
}

// mixMoments accumulates one moment slice's weighted sum in source slice
// order — the same frozen reduction order the weight mix uses.
func mixMoments(srcs []*OptState, ws []float64, pick func(*OptState) []*tensor.Matrix, k int) []*tensor.Matrix {
	out := make([]*tensor.Matrix, k)
	for i := 0; i < k; i++ {
		var acc *tensor.Matrix
		for j, s := range srcs {
			mj := pick(s)[i]
			if mj == nil {
				continue
			}
			if acc == nil {
				acc = tensor.New(mj.Rows(), mj.Cols())
			}
			tensor.AddScaledInPlace(acc, ws[j], mj)
		}
		out[i] = acc
	}
	return out
}

func restoreMoment(dst map[*autodiff.Value]*tensor.Matrix, key *autodiff.Value, src *tensor.Matrix) {
	if src == nil {
		delete(dst, key)
		return
	}
	if cur, ok := dst[key]; ok {
		cur.CopyFrom(src)
		return
	}
	dst[key] = src.Clone()
}

// Reset clears optimizer state (moments and step count).
func (o *Adam) Reset() {
	o.t = 0
	o.m = make(map[*autodiff.Value]*tensor.Matrix)
	o.v = make(map[*autodiff.Value]*tensor.Matrix)
}

// StepCount returns the number of updates applied so far.
func (o *Adam) StepCount() int { return o.t }

// SGD is a plain stochastic gradient descent optimizer, kept as a simple
// reference and for ablation against Adam.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*autodiff.Value]*tensor.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*autodiff.Value]*tensor.Matrix)}
}

// Step applies one SGD (with momentum) update.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.V.Grad
		if g == nil {
			continue
		}
		w := p.V.Data
		if o.Momentum == 0 {
			tensor.AddScaledInPlace(w, -o.LR, g)
			continue
		}
		v, ok := o.vel[p.V]
		if !ok {
			v = tensor.New(w.Rows(), w.Cols())
			o.vel[p.V] = v
		}
		vd, gd, wd := v.Data(), g.Data(), w.Data()
		for i := range wd {
			vd[i] = o.Momentum*vd[i] + gd[i]
			wd[i] -= o.LR * vd[i]
		}
	}
}

// Optimizer is the interface shared by Adam and SGD.
type Optimizer interface {
	Step(params []*Param)
}

var (
	_ Optimizer = (*Adam)(nil)
	_ Optimizer = (*SGD)(nil)
)
