package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestTracerNilIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Span(1, "cat", "name", 0, 1, nil)
	tr.Instant(1, "cat", "name", 0, nil)
	tr.SetTrackName(1, "track")
	if tr.Now() != 0 || tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must read empty")
	}
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer Chrome output not JSON: %v", err)
	}
}

// TestWriteChromeStructure validates the trace-event JSON shape Perfetto
// expects: a traceEvents array whose entries carry name/ph/ts/pid/tid,
// with "X" spans carrying dur and "M" metadata naming tracks.
func TestWriteChromeStructure(t *testing.T) {
	tr := NewVirtualTracer()
	tr.SetTrackName(3, "device 3")
	tr.Span(3, "device", "compute", 1.5, 2.25, map[string]any{"round": 7})
	tr.Instant(0, "round", "commit", 2.5, nil)

	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome output not JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	meta, span, inst := doc.TraceEvents[0], doc.TraceEvents[1], doc.TraceEvents[2]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "device 3" {
		t.Fatalf("metadata event wrong: %+v", meta)
	}
	if span.Ph != "X" || span.Name != "compute" || span.TID != 3 {
		t.Fatalf("span event wrong: %+v", span)
	}
	if span.TS != 1.5e6 || span.Dur != 0.75e6 {
		t.Fatalf("span timing = ts %g dur %g, want µs 1.5e6 / 0.75e6", span.TS, span.Dur)
	}
	if span.Args["round"] != float64(7) {
		t.Fatalf("span args wrong: %+v", span.Args)
	}
	if inst.Ph != "i" || inst.TS != 2.5e6 {
		t.Fatalf("instant event wrong: %+v", inst)
	}
}

func TestSpanClampNegativeDuration(t *testing.T) {
	tr := NewVirtualTracer()
	tr.Span(0, "c", "n", 5, 4, nil) // end < start clamps to zero-length
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Dur != 0 || ev[0].TS != 5e6 {
		t.Fatalf("clamped span wrong: %+v", ev)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewVirtualTracer()
	tr.Span(1, "a", "x", 0, 1, nil)
	tr.Instant(2, "b", "y", 3, map[string]any{"k": "v"})
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d not JSON: %v: %q", i, err, ln)
		}
	}
}

func TestWriteFilePicksFormatByExtension(t *testing.T) {
	dir := t.TempDir()
	tr := NewVirtualTracer()
	tr.Span(0, "c", "n", 0, 1, nil)

	chrome := filepath.Join(dir, "out.trace.json")
	if err := tr.WriteFile(chrome); err != nil {
		t.Fatal(err)
	}
	cb, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cb), `{"traceEvents":[`) {
		t.Fatalf(".json file is not Chrome format: %q", cb)
	}

	jsonl := filepath.Join(dir, "out.jsonl")
	if err := tr.WriteFile(jsonl); err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(jb), "traceEvents") {
		t.Fatalf(".jsonl file is not JSONL: %q", jb)
	}
}

func TestTracerDeterministicBytes(t *testing.T) {
	build := func() []byte {
		tr := NewVirtualTracer()
		tr.SetTrackName(0, "server")
		for i := 0; i < 5; i++ {
			tr.Span(i, "device", "compute", float64(i), float64(i)+0.5,
				map[string]any{"round": i, "device": i})
		}
		var b bytes.Buffer
		if err := tr.WriteChrome(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical event sequences must serialize to identical bytes")
	}
}

// TestReadEventsFileRoundTrip: events written with WriteFile load back
// identically through ReadEventsFile, in both formats. Args use float64
// values because that is what encoding/json decodes numbers to.
func TestReadEventsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := NewVirtualTracer()
	tr.SetTrackName(0, "aggregator")
	tr.Span(1, "device", "compute", 0, 1.5, map[string]any{"round": 2.0})
	tr.Span(0, "agg", "broadcast", 1.5, 2.0, map[string]any{"round": 2.0})
	tr.Instant(0, "round", "commit", 2.0, map[string]any{"round": 2.0})
	want := tr.Events()

	for _, name := range []string{"out.trace.json", "out.jsonl"} {
		path := filepath.Join(dir, name)
		if err := tr.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEventsFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip mismatch:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestReadChromeRejectsNonTrace: an arbitrary JSON object is not a trace.
func TestReadChromeRejectsNonTrace(t *testing.T) {
	if _, err := ReadChrome(strings.NewReader(`{"foo": 1}`)); err == nil {
		t.Fatal("non-trace object parsed")
	}
	if _, err := ReadChrome(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage parsed")
	}
}

// TestReadJSONLSkipsBlanksAndReportsLine: blank lines are tolerated, torn
// lines are reported with their line number.
func TestReadJSONLSkipsBlanksAndReportsLine(t *testing.T) {
	evs, err := ReadJSONL(strings.NewReader("\n{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":1}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Name != "a" {
		t.Fatalf("unexpected events: %+v", evs)
	}
	if _, err := ReadJSONL(strings.NewReader("{\"name\":\"a\"}\n{torn")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("torn line not reported with its number: %v", err)
	}
}
