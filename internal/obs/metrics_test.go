package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	// Re-registration returns the same instrument.
	if r.Counter("c_total", "again") != c {
		t.Fatal("re-registering a counter returned a different instrument")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", SizeBuckets)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("nil histogram snapshot must be zero")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bucket semantics: value lands in the first bucket with bound >= v.
	want := []int64{2, 2, 1, 1} // (-inf,1], (1,2], (2,5], (5,+inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Max != 10 {
		t.Fatalf("max = %g, want 10", s.Max)
	}
	if got, want := s.Sum, 0.5+1+1.5+2+3+10; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	// 100 observations spread uniformly: 25 in each of the four buckets.
	for b := 0; b < 4; b++ {
		for i := 0; i < 25; i++ {
			h.Observe(float64(b*10) + 5)
		}
	}
	s := h.Snapshot()
	cases := []struct{ q, want float64 }{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
		{0.125, 5}, // halfway into the first bucket
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Overflow observations clamp to the last finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Snapshot().Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %g, want clamp to 1", got)
	}
	// Empty histogram reports 0.
	if got := newHistogram([]float64{1}).Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	c := &Counter{}
	g := &Gauge{}
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(0.003)
		c.Inc()
		g.Set(7)
	})
	if allocs != 0 {
		t.Fatalf("hot-path instruments allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestMetricsHammerConcurrent is the race-suite gate: many goroutines
// pounding every instrument type at once, with exact totals checked after.
func TestMetricsHammerConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_seconds", "", LatencyBuckets)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	var scr sync.WaitGroup
	for s := 0; s < 2; s++ {
		scr.Add(1)
		go func() {
			defer scr.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	scr.Wait()
	const total = workers * perWorker
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Fatalf("gauge = %g, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	s := h.Snapshot()
	sum := int64(0)
	for _, n := range s.Counts {
		sum += n
	}
	if sum != total {
		t.Fatalf("bucket counts sum to %d, want %d", sum, total)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("lumos_swaps_total", "bundle swaps").Add(3)
	r.Gauge("lumos_version", "serving version").Set(7)
	r.GaugeFunc("lumos_queue_depth", "queue depth", func() float64 { return 4 })
	h := r.Histogram(`lumos_query_seconds{endpoint="classify"}`, "query latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP lumos_swaps_total bundle swaps",
		"# TYPE lumos_swaps_total counter",
		"lumos_swaps_total 3",
		"# TYPE lumos_version gauge",
		"lumos_version 7",
		"lumos_queue_depth 4",
		"# TYPE lumos_query_seconds histogram",
		`lumos_query_seconds_bucket{endpoint="classify",le="0.001"} 1`,
		`lumos_query_seconds_bucket{endpoint="classify",le="0.01"} 2`,
		`lumos_query_seconds_bucket{endpoint="classify",le="+Inf"} 3`,
		`lumos_query_seconds_count{endpoint="classify"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, text)
		}
	}

	// Round-trip through the parser.
	parsed, err := ParsePrometheus(text)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	if parsed["lumos_swaps_total"] != 3 {
		t.Errorf("parsed counter = %g, want 3", parsed["lumos_swaps_total"])
	}
	if parsed[`lumos_query_seconds_bucket{endpoint="classify",le="+Inf"}`] != 3 {
		t.Errorf("parsed +Inf bucket = %g, want 3",
			parsed[`lumos_query_seconds_bucket{endpoint="classify",le="+Inf"}`])
	}
	if parsed[`lumos_query_seconds_count{endpoint="classify"}`] != 3 {
		t.Errorf("parsed count = %g, want 3",
			parsed[`lumos_query_seconds_count{endpoint="classify"}`])
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	if _, err := ParsePrometheus("just_a_name_no_value"); err == nil {
		t.Fatal("want error for sample with no value")
	}
	if _, err := ParsePrometheus("name not_a_number"); err == nil {
		t.Fatal("want error for non-numeric value")
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("dual_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dual_total", "")
}
