// Package obs is the runtime telemetry layer: a dependency-free metrics
// registry (atomic counters, gauges, fixed-bucket histograms with a
// Prometheus text exposition) and a structured event tracer writing Chrome
// trace-event JSON (viewable in Perfetto) or JSONL.
//
// Two design rules shape the package. First, disabled telemetry is free:
// every instrument method is safe on a nil receiver and returns
// immediately, and a nil *Registry hands out nil instruments, so code
// instruments unconditionally while the telemetry-free default stays bit-
// and allocation-identical to uninstrumented code. Second, the enabled hot
// path never allocates: counters, gauges, and histograms update through
// atomics only, so they are safe under the race detector and cheap enough
// to sit inside the serving batch loop and the training epoch loop.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for Prometheus semantics; this is not
// enforced). Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta atomically. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric: observations land in the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// overflow bucket, and the exact sum, count, and max ride along. Observe is
// allocation-free and atomic, so concurrent writers need no locking.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

// newHistogram copies and sorts the bounds. At least one bound is required
// (use DefBuckets or a purpose-built slice).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// reporting: per-bucket counts (last entry is the +Inf overflow), total
// count, sum, and max observed.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	Max    float64
}

// Snapshot copies the histogram's state. A zero snapshot on nil receivers.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	if s.Count > 0 {
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the containing bucket. Values beyond the
// last finite bound are clamped to it (the +Inf bucket has no width), and a
// histogram with no observations reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // overflow bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + frac*(hi-lo)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Default bucket layouts. Bounds are inclusive upper edges.
var (
	// LatencyBuckets spans 100µs to 10s — request latencies in seconds.
	LatencyBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// DurationBuckets spans 1ms to ~2min — step/epoch durations in seconds.
	DurationBuckets = []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
		0.5, 1, 2.5, 5, 10, 30, 60, 120,
	}
	// SizeBuckets is powers of two for batch sizes and queue depths.
	SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// Registry holds named instruments and renders them as Prometheus text.
// Instrument names may carry a static label set in the standard syntax,
// e.g. `lumos_serve_query_seconds{endpoint="classify"}`; the base name
// (before '{') groups the HELP/TYPE header. The zero registry is not
// usable — call New; a nil *Registry hands out nil (disabled) instruments
// from every constructor, so callers never branch on enablement.
type Registry struct {
	mu    sync.Mutex
	order []string
	inst  map[string]any
	help  map[string]string
	kind  map[string]string // base name -> prometheus type
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		inst: make(map[string]any),
		help: make(map[string]string),
		kind: make(map[string]string),
	}
}

// register returns the existing instrument under name, or stores and
// returns the one built by mk. Mismatched re-registration (same name,
// different kind) panics: it is a programming error that would silently
// cross metric streams.
func (r *Registry) register(name, help, kind string, mk func() any) any {
	base := baseName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.kind[base]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", base, kind, prev))
	}
	if in, ok := r.inst[name]; ok {
		return in
	}
	in := mk()
	r.inst[name] = in
	r.order = append(r.order, name)
	r.kind[base] = kind
	if _, ok := r.help[base]; !ok {
		r.help[base] = help
	}
	return in
}

// Counter returns the counter registered under name, creating it if
// needed. Nil registry -> nil (disabled) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, "counter", func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it if needed.
// Nil registry -> nil (disabled) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, "gauge", func() any { return &Gauge{} }).(*Gauge)
}

// gaugeFunc wraps a callback sampled at scrape time.
type gaugeFunc struct{ fn func() float64 }

// GaugeFunc registers a gauge whose value is computed by fn at every
// scrape — for values that live elsewhere (queue lengths, snapshot age).
// fn must be safe to call concurrently. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", func() any { return &gaugeFunc{fn} })
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it with the given bucket upper bounds if needed. Nil registry ->
// nil (disabled) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, "histogram", func() any { return newHistogram(bounds) }).(*Histogram)
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4), in registration order, with one
// HELP/TYPE header per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	inst := make(map[string]any, len(names))
	for _, n := range names {
		inst[n] = r.inst[n]
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	kind := make(map[string]string, len(r.kind))
	for k, v := range r.kind {
		kind[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	seen := make(map[string]bool)
	for _, name := range names {
		base := baseName(name)
		if !seen[base] {
			seen[base] = true
			if h := help[base]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", base, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind[base])
		}
		labels := labelPart(name)
		switch in := inst[name].(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s %d\n", name, in.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(in.Value()))
		case *gaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(in.fn()))
		case *Histogram:
			s := in.Snapshot()
			cum := int64(0)
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", base, mergeLabels(labels, fmt.Sprintf("le=%q", formatFloat(bound))), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, mergeLabels(labels, `le="+Inf"`), s.Count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", base, wrapLabels(labels), formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", base, wrapLabels(labels), s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ParsePrometheus reads Prometheus text exposition into a flat map of
// sample name (including any label set, exactly as exposed) to value —
// enough for scrape tests and for folding a /metrics snapshot into a
// benchmark report. Comment and blank lines are skipped; a malformed
// sample line is an error.
func ParsePrometheus(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("obs: malformed sample on line %d: %q", ln+1, line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			return nil, fmt.Errorf("obs: bad value on line %d: %q: %v", ln+1, line, err)
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out, nil
}

// baseName strips a trailing {label} set from an instrument name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelPart returns the inner label list of a name ("" when unlabeled).
func labelPart(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// mergeLabels joins a static label list with an extra label into {...}.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// wrapLabels re-wraps a label list in braces ("" stays "").
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatFloat renders floats compactly ("0.005", not "5e-03"), matching
// what Prometheus parsers and humans both read.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}
