package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Event is one trace record in Chrome trace-event form (the JSON shape
// Perfetto and chrome://tracing load directly). TS and Dur are in
// microseconds; Ph is the phase letter ("X" complete span, "i" instant,
// "M" metadata).
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer accumulates spans and instants and writes them out as either
// Chrome trace-event JSON or JSONL. A nil *Tracer is valid and every
// method on it is a no-op, so instrumented code needs no enablement
// branches.
//
// Two clock modes exist. A wall tracer (NewTracer) anchors Now() at its
// creation; callers bracket work with t0 := tr.Now() ... tr.Span(...,
// t0, tr.Now(), ...). A virtual tracer (NewVirtualTracer) has no clock
// of its own — the caller supplies simulated seconds directly, which is
// what the discrete-event simulator does. Never mix the two in one
// tracer: the timestamps would be incomparable.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	start   time.Time
	virtual bool
}

// NewTracer returns a wall-clock tracer; Now() reads seconds elapsed
// since this call.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// NewVirtualTracer returns a tracer whose timestamps are supplied by
// the caller (simulated seconds). Now() always returns 0.
func NewVirtualTracer() *Tracer {
	return &Tracer{virtual: true}
}

// Now returns seconds since the tracer was created (0 for nil or
// virtual tracers). Use it to bracket spans on wall tracers.
func (t *Tracer) Now() float64 {
	if t == nil || t.virtual {
		return 0
	}
	return time.Since(t.start).Seconds()
}

// Span records a completed span on track tid covering [start, end],
// both in seconds (wall seconds since tracer creation, or virtual
// seconds). args may be nil.
func (t *Tracer) Span(tid int, cat, name string, start, end float64, args map[string]any) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.append(Event{
		Name: name, Cat: cat, Ph: "X",
		TS: start * 1e6, Dur: (end - start) * 1e6,
		PID: 1, TID: tid, Args: args,
	})
}

// Instant records a zero-duration marker on track tid at time ts
// (seconds). args may be nil.
func (t *Tracer) Instant(tid int, cat, name string, ts float64, args map[string]any) {
	if t == nil {
		return
	}
	t.append(Event{
		Name: name, Cat: cat, Ph: "i",
		TS: ts * 1e6, PID: 1, TID: tid, S: "t", Args: args,
	})
}

// SetTrackName labels track tid in the viewer (a thread_name metadata
// event). Call once per track, before or after its events — viewers
// don't care about ordering of metadata.
func (t *Tracer) SetTrackName(tid int, name string) {
	if t == nil {
		return
	}
	t.append(Event{
		Name: "thread_name", Ph: "M",
		PID: 1, TID: tid, Args: map[string]any{"name": name},
	})
}

func (t *Tracer) append(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len reports how many events have been recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in append order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteChrome writes the events as a Chrome trace-event JSON object
// ({"traceEvents": [...]}), loadable in Perfetto or chrome://tracing.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	for i, e := range t.Events() {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(`],"displayTimeUnit":"ms"}` + "\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONL writes one event per line as standalone JSON objects —
// greppable, streamable, and trivially diffable in tests.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadChrome parses a Chrome trace-event object ({"traceEvents":[...]})
// back into its events — the inverse of WriteChrome, so recorded timelines
// can be analyzed offline (internal/report).
func ReadChrome(r io.Reader) ([]Event, error) {
	var chrome struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&chrome); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if chrome.TraceEvents == nil {
		return nil, fmt.Errorf("trace: object carries no traceEvents array (not a Chrome trace?)")
	}
	return chrome.TraceEvents, nil
}

// ReadEventsFile loads a trace file written by WriteFile: JSONL when the
// extension is .jsonl, Chrome trace-event JSON otherwise.
func ReadEventsFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var evs []Event
	if strings.EqualFold(filepath.Ext(path), ".jsonl") {
		evs, err = ReadJSONL(f)
	} else {
		evs, err = ReadChrome(f)
	}
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	return evs, nil
}

// ReadJSONL decodes one event per line, skipping blank lines — the inverse
// of WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var evs []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return evs, nil
}

// WriteFile writes the trace to path: JSONL when the extension is
// .jsonl, Chrome trace-event JSON otherwise.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if strings.EqualFold(filepath.Ext(path), ".jsonl") {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace %s: %w", path, err)
	}
	return nil
}
