package fleet

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Trace is a device-population trace loaded from disk — the FedScale-style
// ingestion layer: one record per traced device, carrying its capacity
// multipliers, power draw, and (optionally) a periodic availability cycle.
// A Trace implements Fleet: when the simulated fleet is larger than the
// trace, devices are assigned records by deterministic seeded sampling, so
// a small measured trace can drive an arbitrarily large fleet.
//
// On-disk schema (version 1), selected by file extension:
//
//   - CSV (.csv, or anything not .json): '#'-prefixed comment lines, then a
//     header row naming the columns, then one row per device:
//
//     device,compute,bandwidth,latency,power,period,on_rounds,phase
//     0,1.000,1.000,1.000,1.000,0,0,0
//     1,2.500,0.632,1.581,0.800,8,6,3
//
//   - JSON (.json): {"name": "...", "devices": [{"compute": 1, "bandwidth":
//     1, "latency": 1, "power": 1, "period": 0, "on_rounds": 0, "phase":
//     0}, ...]}
//
// compute/bandwidth/latency/power are multipliers over the cost model's
// nominal device (see Profile); period/on_rounds/phase describe the
// availability cycle (all zero = always online). The device column is
// ordinal only — rows load in file order.
type Trace struct {
	// Name labels the trace (CSV: the file's base name; JSON: its "name"
	// field, falling back to the base name).
	Name string
	// Devices holds one validated profile per traced device, in file order.
	Devices []Profile
}

// traceColumns is the canonical CSV header, and the order values are
// written in.
var traceColumns = []string{"device", "compute", "bandwidth", "latency", "power", "period", "on_rounds", "phase"}

// jsonTrace mirrors the JSON schema.
type jsonTrace struct {
	Name    string        `json:"name,omitempty"`
	Devices []jsonProfile `json:"devices"`
}

type jsonProfile struct {
	Compute   float64 `json:"compute"`
	Bandwidth float64 `json:"bandwidth"`
	Latency   float64 `json:"latency"`
	Power     float64 `json:"power"`
	Period    int     `json:"period,omitempty"`
	OnRounds  int     `json:"on_rounds,omitempty"`
	Phase     int     `json:"phase,omitempty"`
}

// LoadTrace reads a fleet trace from path, dispatching on the extension:
// .json parses the JSON schema, everything else the CSV schema. Every
// record is validated on load, so a Trace in memory is always usable.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: open trace: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	var tr *Trace
	if strings.EqualFold(filepath.Ext(path), ".json") {
		tr, err = ReadTraceJSON(f)
	} else {
		tr, err = ReadTraceCSV(f)
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: trace %s: %w", path, err)
	}
	if tr.Name == "" {
		tr.Name = name
	}
	return tr, nil
}

// ReadTraceCSV parses the CSV trace schema.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	// csv.Reader's Comment field skips '#' lines wherever they appear, so
	// the documented "comments, then header, then rows" layout is a
	// convention, not a requirement.
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty trace file")
	}
	header := rows[0]
	if len(header) != len(traceColumns) {
		return nil, fmt.Errorf("header has %d columns, want %d (%s)", len(header), len(traceColumns), strings.Join(traceColumns, ","))
	}
	for i, c := range header {
		if !strings.EqualFold(strings.TrimSpace(c), traceColumns[i]) {
			return nil, fmt.Errorf("column %d is %q, want %q", i, c, traceColumns[i])
		}
	}
	tr := &Trace{}
	for i, row := range rows[1:] {
		p, err := parseTraceRow(row)
		if err != nil {
			return nil, fmt.Errorf("device row %d: %w", i, err)
		}
		tr.Devices = append(tr.Devices, p)
	}
	return tr, tr.validate()
}

func parseTraceRow(row []string) (Profile, error) {
	if len(row) != len(traceColumns) {
		return Profile{}, fmt.Errorf("%d fields, want %d", len(row), len(traceColumns))
	}
	fs := make([]float64, len(traceColumns))
	for i := 1; i < len(traceColumns); i++ { // column 0 (device id) is ordinal
		v, err := strconv.ParseFloat(strings.TrimSpace(row[i]), 64)
		if err != nil {
			return Profile{}, fmt.Errorf("%s: %w", traceColumns[i], err)
		}
		fs[i] = v
	}
	for _, i := range []int{5, 6, 7} { // period, on_rounds, phase are integral
		if fs[i] != math.Trunc(fs[i]) {
			return Profile{}, fmt.Errorf("%s must be an integer, got %v", traceColumns[i], fs[i])
		}
	}
	return Profile{
		Compute: fs[1], Bandwidth: fs[2], Latency: fs[3], Power: fs[4],
		Period: int(fs[5]), OnRounds: int(fs[6]), Phase: int(fs[7]),
	}, nil
}

// ReadTraceJSON parses the JSON trace schema.
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jt); err != nil {
		return nil, err
	}
	tr := &Trace{Name: jt.Name}
	for _, d := range jt.Devices {
		tr.Devices = append(tr.Devices, Profile{
			Compute: d.Compute, Bandwidth: d.Bandwidth, Latency: d.Latency,
			Power: d.Power, Period: d.Period, OnRounds: d.OnRounds, Phase: d.Phase,
		})
	}
	return tr, tr.validate()
}

func (t *Trace) validate() error {
	if len(t.Devices) == 0 {
		return fmt.Errorf("trace describes no devices")
	}
	for i, p := range t.Devices {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	return nil
}

// WriteCSV writes the trace in the CSV schema, with a comment header
// documenting the columns.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Lumos fleet trace v1 (FedScale-style): one device per row.\n")
	fmt.Fprintf(bw, "# compute/bandwidth/latency/power are multipliers over the nominal device;\n")
	fmt.Fprintf(bw, "# period/on_rounds/phase give a periodic availability cycle (0,0,0 = always on).\n")
	cw := csv.NewWriter(bw)
	if err := cw.Write(traceColumns); err != nil {
		return err
	}
	for i, p := range t.Devices {
		row := []string{
			strconv.Itoa(i),
			formatMult(p.Compute), formatMult(p.Bandwidth), formatMult(p.Latency), formatMult(p.Power),
			strconv.Itoa(p.Period), strconv.Itoa(p.OnRounds), strconv.Itoa(p.Phase),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// formatMult renders a multiplier losslessly (round-trips through
// ParseFloat), so write→load→write is stable.
func formatMult(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes the trace in the JSON schema.
func (t *Trace) WriteJSON(w io.Writer) error {
	jt := jsonTrace{Name: t.Name}
	for _, p := range t.Devices {
		jt.Devices = append(jt.Devices, jsonProfile{
			Compute: p.Compute, Bandwidth: p.Bandwidth, Latency: p.Latency,
			Power: p.Power, Period: p.Period, OnRounds: p.OnRounds, Phase: p.Phase,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// Save writes the trace to path, dispatching on the extension exactly as
// LoadTrace does: .json gets the JSON schema, everything else CSV.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fleet: save trace: %w", err)
	}
	if strings.EqualFold(filepath.Ext(path), ".json") {
		err = t.WriteJSON(f)
	} else {
		err = t.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// String implements Fleet.
func (t *Trace) String() string { return t.Name }

// Profiles implements Fleet: it maps n simulated devices onto the trace's
// records deterministically.
//
//   - n == len(Devices): the trace is used verbatim, in file order (the
//     round-trip identity datagen-produced traces rely on).
//   - n < len(Devices): a seeded permutation selects n records; the chosen
//     records keep their relative file order.
//   - n > len(Devices): devices cycle through one seeded permutation of the
//     records (device d gets record perm[d mod len]), so every record is
//     used ⌊n/len⌋ or ⌈n/len⌉ times and the fleet's mix matches the trace's.
func (t *Trace) Profiles(n int, seed int64) ([]Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: fleet of %d devices", n)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	m := len(t.Devices)
	out := make([]Profile, n)
	switch {
	case n == m:
		copy(out, t.Devices)
	case n < m:
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(m)[:n]
		// Keep the chosen records in ascending file order so truncating a
		// trace preserves its shape, not the permutation's.
		idx := append([]int(nil), perm...)
		sort.Ints(idx)
		for d, i := range idx {
			out[d] = t.Devices[i]
		}
	default:
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(m)
		for d := range out {
			out[d] = t.Devices[perm[d%m]]
		}
	}
	return out, nil
}

// SampleTrace synthesizes a small but representative fleet trace — the
// payload of `lumos-datagen -traces`, used by tests and the smoke suite so
// trace loading never depends on external downloads. The population mixes
// three measured-fleet regimes, deterministically from the seed:
//
//   - ~50% mid-range phones: compute near nominal, nominal network;
//   - ~25% flagship devices: fast (compute < 1) but power-hungry;
//   - ~25% constrained devices: slow, bandwidth-starved, and on a diurnal
//     availability cycle (period 8–12 rounds, ~2/3 duty, random phase).
func SampleTrace(devices int, seed int64) (*Trace, error) {
	if devices <= 0 {
		return nil, fmt.Errorf("fleet: sample trace of %d devices", devices)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: fmt.Sprintf("sample-%d", devices)}
	for d := 0; d < devices; d++ {
		var p Profile
		switch u := rng.Float64(); {
		case u < 0.5: // mid-range
			p = Profile{
				Compute:   round3(0.8 + 0.6*rng.Float64()),
				Bandwidth: round3(0.8 + 0.4*rng.Float64()),
				Latency:   round3(0.9 + 0.3*rng.Float64()),
				Power:     round3(0.9 + 0.2*rng.Float64()),
			}
		case u < 0.75: // flagship: fast, power-hungry
			p = Profile{
				Compute:   round3(0.4 + 0.3*rng.Float64()),
				Bandwidth: round3(1.2 + 0.8*rng.Float64()),
				Latency:   round3(0.7 + 0.2*rng.Float64()),
				Power:     round3(1.4 + 0.6*rng.Float64()),
			}
		default: // constrained + diurnal availability
			period := 8 + rng.Intn(5)
			p = Profile{
				Compute:   round3(1.8 + 1.4*rng.Float64()),
				Bandwidth: round3(0.3 + 0.4*rng.Float64()),
				Latency:   round3(1.2 + 0.8*rng.Float64()),
				Power:     round3(0.6 + 0.3*rng.Float64()),
				Period:    period,
				OnRounds:  1 + (2*period)/3,
				Phase:     rng.Intn(period),
			}
		}
		tr.Devices = append(tr.Devices, p)
	}
	return tr, tr.validate()
}

// round3 keeps sampled multipliers at 3 decimals so CSV files stay tidy and
// round-trip exactly.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
