package fleet

import (
	"math"
	"testing"
)

func TestParseDiscipline(t *testing.T) {
	for in, want := range map[string]Discipline{"": DiscFIFO, "fifo": DiscFIFO, "ps": DiscPS} {
		got, err := ParseDiscipline(in)
		if err != nil || got != want {
			t.Errorf("ParseDiscipline(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDiscipline("lifo"); err == nil {
		t.Error("unknown discipline accepted")
	}
	if DiscFIFO.String() != "fifo" || DiscPS.String() != "ps" {
		t.Error("discipline names wrong")
	}
}

// The defining PS property: k equal jobs arriving together all finish
// together, each at k × its solo service time — no job is privileged.
func TestServePSEqualJobsFinishTogether(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		s := Server{BytesPerSecond: 100, Discipline: DiscPS}
		jobs := make([]Job, k)
		for i := range jobs {
			jobs[i] = Job{At: 1, Bytes: 200} // solo service 2s each
		}
		done := s.ServeBatch(jobs)
		want := 1 + 2*float64(k)
		for i, d := range done {
			if math.Abs(d-want) > 1e-9 {
				t.Fatalf("k=%d job %d departs %v, want %v", k, i, d, want)
			}
		}
		if math.Abs(s.FreeAt()-want) > 1e-9 {
			t.Fatalf("k=%d freeAt %v, want %v", k, s.FreeAt(), want)
		}
	}
}

// A short job arriving while a long one is in flight slows both: with two
// in flight each drains at half rate, and the long job's departure reflects
// the shared span exactly.
func TestServePSStaggeredArrivals(t *testing.T) {
	s := Server{BytesPerSecond: 100, Discipline: DiscPS}
	done := s.ServeBatch([]Job{
		{At: 0, Bytes: 400}, // solo 4s
		{At: 1, Bytes: 100}, // solo 1s, arrives with 3s of job 0 left
	})
	// From t=1 both share: job 1 needs 1s solo → departs at 1 + 2 = 3.
	// Job 0 drains 1s solo in [0,1), 1s solo in [1,3), then finishes its
	// remaining 2s alone: departs at 5.
	if math.Abs(done[1]-3) > 1e-9 || math.Abs(done[0]-5) > 1e-9 {
		t.Fatalf("departures %v, want [5 3]", done)
	}
}

// ServeBatch under FIFO must be bit-identical to sequential Serve calls —
// the equivalence that keeps the frozen sim goldens safe when the simulator
// routes traffic through batches.
func TestServeBatchFIFOMatchesServe(t *testing.T) {
	a := Server{BytesPerSecond: 50}
	b := Server{BytesPerSecond: 50}
	jobs := []Job{{At: 0, Bytes: 100}, {At: 0.5, Bytes: 25}, {At: 10, Bytes: 75}}
	batch := a.ServeBatch(jobs)
	for i, j := range jobs {
		if seq := b.Serve(j.At, j.Bytes); batch[i] != seq {
			t.Fatalf("job %d: batch %v != sequential %v", i, batch[i], seq)
		}
	}
	if a.FreeAt() != b.FreeAt() {
		t.Fatalf("freeAt diverged: %v vs %v", a.FreeAt(), b.FreeAt())
	}
}

// Pre-batch work (freeAt) delays a PS batch FIFO-style: nothing starts
// before the server frees up.
func TestServePSRespectsPriorWork(t *testing.T) {
	s := Server{BytesPerSecond: 100, Discipline: DiscPS}
	s.Serve(0, 300) // FIFO job occupies the link until t=3
	done := s.ServeBatch([]Job{{At: 1, Bytes: 100}, {At: 2, Bytes: 100}})
	// Both wait until t=3, then share: each needs 1s solo → both at 3+2=5.
	for i, d := range done {
		if math.Abs(d-5) > 1e-9 {
			t.Fatalf("job %d departs %v, want 5", i, d)
		}
	}
}

func TestServeBatchDisabledPassesThrough(t *testing.T) {
	var s Server // zero capacity: contention off
	jobs := []Job{{At: 3, Bytes: 1 << 30}, {At: 1, Bytes: 1}}
	done := s.ServeBatch(jobs)
	for i, j := range jobs {
		if done[i] != j.At {
			t.Fatalf("job %d: %v, want arrival %v", i, done[i], j.At)
		}
	}
}

// Deterministic tie-break: equal arrivals keep slice order under FIFO, and
// the whole batch result is reproducible across repeated identical runs.
func TestServeBatchDeterministic(t *testing.T) {
	run := func(d Discipline) []float64 {
		s := Server{BytesPerSecond: 10, Discipline: d}
		return s.ServeBatch([]Job{{At: 2, Bytes: 30}, {At: 2, Bytes: 10}, {At: 0, Bytes: 20}})
	}
	for _, d := range []Discipline{DiscFIFO, DiscPS} {
		a, b := run(d), run(d)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: run-to-run drift at job %d: %v vs %v", d, i, a[i], b[i])
			}
		}
	}
	// FIFO with the tie: job 2 (earliest) first, then jobs 0 and 1 in slice
	// order: 0+2=2 → job0 starts max(2,2)=2, +3 → 5 → job1 starts 5, +1 → 6.
	got := run(DiscFIFO)
	want := []float64{5, 6, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO tie-break: %v, want %v", got, want)
		}
	}
}
