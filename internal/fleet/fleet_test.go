package fleet

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	if err := Nominal().Validate(); err != nil {
		t.Fatal(err)
	}
	good := Profile{Compute: 2, Bandwidth: 0.5, Latency: 1.5, Power: 1.2, Period: 8, OnRounds: 6, Phase: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Profile{
		{Compute: 0, Bandwidth: 1, Latency: 1, Power: 1},
		{Compute: 1, Bandwidth: -1, Latency: 1, Power: 1},
		{Compute: 1, Bandwidth: 1, Latency: 0, Power: 1},
		{Compute: 1, Bandwidth: 1, Latency: 1, Power: -0.1},
		{Compute: 1, Bandwidth: 1, Latency: 1}, // omitted power column loads as 0
		{Compute: 1, Bandwidth: 1, Latency: 1, Power: 1, Period: -1},
		{Compute: 1, Bandwidth: 1, Latency: 1, Power: 1, Period: 4, OnRounds: 0},
		{Compute: 1, Bandwidth: 1, Latency: 1, Power: 1, Period: 4, OnRounds: 5},
		{Compute: 1, Bandwidth: 1, Latency: 1, Power: 1, Period: 4, OnRounds: 2, Phase: 4},
		{Compute: 1, Bandwidth: 1, Latency: 1, Power: 1, OnRounds: 2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("profile %+v validated", bad)
		}
	}
}

func TestSyntheticFleetsDeterministic(t *testing.T) {
	for _, f := range []Fleet{Uniform(), Zipf(1.2), Periodic(8, 0.75)} {
		a, err := f.Profiles(40, 9)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		b, err := f.Profiles(40, 9)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different fleets", f)
		}
		for d, p := range a {
			if err := p.Validate(); err != nil {
				t.Errorf("%s device %d: %v", f, d, err)
			}
			if p.Power != 1 {
				t.Errorf("%s device %d: synthetic fleet power %v, want nominal", f, d, p.Power)
			}
		}
	}
	if _, err := Zipf(-1).Profiles(10, 1); err == nil {
		t.Error("negative zipf skew accepted")
	}
	if _, err := Periodic(0, 0.5).Profiles(10, 1); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Periodic(8, 1.5).Profiles(10, 1); err == nil {
		t.Error("duty above 1 accepted")
	}
	if _, err := Uniform().Profiles(0, 1); err == nil {
		t.Error("empty fleet accepted")
	}
}

// TestServerMG1Sanity is the queueing-theory smoke check: n simultaneous
// jobs of equal size through the FIFO server depart at exactly k·service —
// the commit time of a contended fleet grows linearly in the fleet size at
// fixed per-device cost.
func TestServerMG1Sanity(t *testing.T) {
	const svcBytes, rate = 1000, 500.0 // 2s service each
	var last float64
	srv := &Server{BytesPerSecond: rate}
	for k := 1; k <= 8; k++ {
		got := srv.Serve(0, svcBytes)
		want := float64(k) * (svcBytes / rate)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("job %d departed at %v, want %v", k, got, want)
		}
		if got <= last {
			t.Fatalf("departures not strictly increasing: %v after %v", got, last)
		}
		last = got
	}
	// A job arriving after the backlog drains is served immediately.
	if got := srv.Serve(100, svcBytes); got != 102 {
		t.Fatalf("idle-server job departed at %v, want 102", got)
	}
	// BusyUntil blocks later arrivals (the downlink broadcast).
	srv.BusyUntil(200)
	if got := srv.Serve(150, svcBytes); got != 202 {
		t.Fatalf("post-broadcast job departed at %v, want 202", got)
	}
}

func TestServerDisabledIsIndependentLinks(t *testing.T) {
	srv := &Server{}
	for _, at := range []float64{5, 1, 3} { // even out-of-order arrivals pass through
		if got := srv.Serve(at, 1e9); got != at {
			t.Fatalf("disabled server delayed a job: %v -> %v", at, got)
		}
	}
	if srv.Enabled() || srv.FreeAt() != 0 {
		t.Fatal("disabled server claims to be busy")
	}
	var nilSrv *Server
	if nilSrv.Enabled() {
		t.Fatal("nil server enabled")
	}
}

// TestTraceRoundTrip writes a sampled trace in both schemas and reloads it:
// the profiles must survive DeepEqual — the contract `lumos-datagen
// -traces` output relies on.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := SampleTrace(23, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"fleet.csv", "fleet.json"} {
		path := filepath.Join(dir, name)
		if err := tr.Save(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Devices, tr.Devices) {
			t.Errorf("%s: profiles did not round-trip:\n got %+v\nwant %+v", name, got.Devices, tr.Devices)
		}
	}
}

func TestTraceProfilesSampling(t *testing.T) {
	tr, err := SampleTrace(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	// n == len: verbatim, in file order.
	exact, err := tr.Profiles(16, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, tr.Devices) {
		t.Fatal("n == len(trace) did not reproduce the trace verbatim")
	}
	// n < len: a deterministic subset that preserves file order.
	sub, err := tr.Profiles(6, 99)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := tr.Profiles(6, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub, sub2) {
		t.Fatal("subset sampling not deterministic")
	}
	// n > len: every record appears, roughly evenly.
	big, err := tr.Profiles(160, 99)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, p := range big {
		for i, d := range tr.Devices {
			if reflect.DeepEqual(p, d) {
				counts[i]++
				break
			}
		}
	}
	if len(counts) != 16 {
		t.Fatalf("oversampled fleet used %d of 16 trace records", len(counts))
	}
	for i, c := range counts {
		if c < 160/16 {
			t.Fatalf("record %d used %d times, want >= %d", i, c, 160/16)
		}
	}
	if _, err := (&Trace{Name: "empty"}).Profiles(4, 1); err == nil {
		t.Fatal("empty trace sampled")
	}
}

func TestReadTraceCSVRejectsMalformed(t *testing.T) {
	for name, body := range map[string]string{
		"empty":         "",
		"bad header":    "a,b\n",
		"bad value":     "device,compute,bandwidth,latency,power,period,on_rounds,phase\n0,x,1,1,1,0,0,0\n",
		"zero compute":  "device,compute,bandwidth,latency,power,period,on_rounds,phase\n0,0,1,1,1,0,0,0\n",
		"float period":  "device,compute,bandwidth,latency,power,period,on_rounds,phase\n0,1,1,1,1,2.5,1,0\n",
		"phase too big": "device,compute,bandwidth,latency,power,period,on_rounds,phase\n0,1,1,1,1,4,2,9\n",
		"no devices":    "device,compute,bandwidth,latency,power,period,on_rounds,phase\n",
	} {
		if _, err := ReadTraceCSV(bytes.NewReader([]byte(body))); err == nil {
			t.Errorf("%s: malformed CSV trace accepted", name)
		}
	}
}

func TestReadTraceJSONRejectsMalformed(t *testing.T) {
	for name, body := range map[string]string{
		"empty devices": `{"devices": []}`,
		"zero compute":  `{"devices": [{"compute": 0, "bandwidth": 1, "latency": 1, "power": 1}]}`,
		"unknown field": `{"devices": [{"compute": 1, "bandwidth": 1, "latency": 1, "power": 1, "wat": 2}]}`,
	} {
		if _, err := ReadTraceJSON(bytes.NewReader([]byte(body))); err == nil {
			t.Errorf("%s: malformed JSON trace accepted", name)
		}
	}
}

func TestSampleTraceShape(t *testing.T) {
	tr, err := SampleTrace(64, 11)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SampleTrace(64, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, again) {
		t.Fatal("SampleTrace not deterministic")
	}
	cycled, fast, slow := 0, 0, 0
	for _, p := range tr.Devices {
		if p.Period > 0 {
			cycled++
		}
		if p.Compute < 1 {
			fast++
		}
		if p.Compute > 1.5 {
			slow++
		}
	}
	if cycled == 0 || fast == 0 || slow == 0 {
		t.Fatalf("sample trace lacks its regimes: %d cycled, %d fast, %d slow of %d", cycled, fast, slow, len(tr.Devices))
	}
	if _, err := SampleTrace(0, 1); err == nil {
		t.Fatal("empty sample trace accepted")
	}
}
