package fleet

import (
	"fmt"
	"math"
	"sort"

	"lumos/internal/obs"
)

// Server is a deterministic M/G/1-style FIFO server modeling contention on
// the aggregator's shared link: jobs (device uploads, model broadcasts)
// arrive at known times, are served one at a time in arrival order at a
// fixed byte rate, and queue while the server is busy. With Poisson-ish
// arrivals and general (per-device) service times this is the classic
// M/G/1 station; here both streams are deterministic, which is what keeps
// the simulator bit-reproducible.
//
// The zero capacity disables the server entirely — Serve returns the
// arrival time unchanged — so "infinite aggregator capacity" degenerates to
// the independent-link model the simulator used before contention existed.
type Server struct {
	// BytesPerSecond is the shared service rate; <= 0 disables contention.
	BytesPerSecond float64

	// Discipline selects how concurrent jobs share the link: DiscFIFO (the
	// zero value — one at a time in arrival order, the aggregator model
	// above) or DiscPS (egalitarian processor sharing — every in-flight job
	// gets an equal slice of the rate, the fair-queued-NIC model gossip
	// links use). Serve always runs FIFO regardless; PS departures depend
	// on jobs that arrive later, so PS is only reachable through ServeBatch.
	Discipline Discipline

	// Wait, when non-nil, observes each job's queueing delay (seconds from
	// arrival to service start under FIFO; departure − arrival − pure
	// service, the slowdown from sharing, under PS), and Served counts
	// jobs. Both are nil-safe obs instruments, so leaving them unset costs
	// nothing and changes nothing.
	Wait   *obs.Histogram
	Served *obs.Counter

	freeAt float64
}

// Discipline selects a Server's queueing discipline.
type Discipline int

const (
	// DiscFIFO serves one job at a time in arrival order (M/G/1-style).
	DiscFIFO Discipline = iota
	// DiscPS shares the rate equally among all in-flight jobs (egalitarian
	// processor sharing): k equal jobs arriving together all finish at
	// k × their solo service time.
	DiscPS
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case DiscFIFO:
		return "fifo"
	case DiscPS:
		return "ps"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// ParseDiscipline parses a discipline name; "" selects FIFO, the default.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "", "fifo":
		return DiscFIFO, nil
	case "ps":
		return DiscPS, nil
	default:
		return 0, fmt.Errorf("fleet: unknown queueing discipline %q (want fifo|ps)", s)
	}
}

// Job is one transfer presented to ServeBatch: its arrival time on the
// simulated clock and its size.
type Job struct {
	At    float64
	Bytes int64
}

// Enabled reports whether the server actually serializes jobs.
func (s *Server) Enabled() bool { return s != nil && s.BytesPerSecond > 0 }

// Serve enqueues a job of the given size arriving at time at and returns
// its departure time: service starts when both the job has arrived and the
// server is idle, and takes bytes/BytesPerSecond. Callers must present jobs
// in the order they should be served (the simulator's event queue already
// yields arrivals in deterministic time order).
func (s *Server) Serve(at float64, bytes int64) float64 {
	if !s.Enabled() {
		return at
	}
	start := at
	if s.freeAt > start {
		start = s.freeAt
	}
	s.Served.Inc()
	s.Wait.Observe(start - at)
	done := start + float64(bytes)/s.BytesPerSecond
	s.freeAt = done
	return done
}

// BusyUntil blocks the server until t — the downlink broadcast occupying
// the shared link after a commit. A no-op when contention is disabled or t
// is already in the past.
func (s *Server) BusyUntil(t float64) {
	if s.Enabled() && t > s.freeAt {
		s.freeAt = t
	}
}

// FreeAt reports when the server next goes idle.
func (s *Server) FreeAt() float64 {
	if !s.Enabled() {
		return 0
	}
	return s.freeAt
}

// ServeBatch serves one round's worth of jobs under the server's discipline
// and returns each job's departure time, indexed like jobs. Unlike Serve,
// the whole batch must be known up front: under processor sharing a job's
// departure depends on jobs that arrive after it. Jobs may be passed in any
// order — they are processed by ascending arrival time, ties broken by
// position in the slice, so callers that append jobs in a deterministic
// order get deterministic departures. Under DiscFIFO the result is
// bit-identical to calling Serve once per job in that same order (the
// equivalence the frozen sim goldens pin). A disabled server returns every
// arrival unchanged.
func (s *Server) ServeBatch(jobs []Job) []float64 {
	done := make([]float64, len(jobs))
	if !s.Enabled() {
		for i, j := range jobs {
			done[i] = j.At
		}
		return done
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].At < jobs[order[b]].At
	})
	if s.Discipline == DiscFIFO {
		for _, i := range order {
			done[i] = s.Serve(jobs[i].At, jobs[i].Bytes)
		}
		return done
	}

	// Egalitarian processor sharing, simulated in virtual time: between
	// consecutive arrivals the k in-flight jobs each drain their remaining
	// solo service time at rate 1/k. Work queued from before the batch
	// (freeAt) delays every job's start FIFO-style: nothing in this batch
	// begins service before the server is free.
	type flight struct {
		idx       int
		remaining float64 // solo service seconds still owed
	}
	var active []flight
	tnow := 0.0
	first := true
	finish := func(until float64) {
		// Drain active jobs up to time `until` (+Inf = to completion).
		for len(active) > 0 {
			k := float64(len(active))
			minRem := active[0].remaining
			for _, f := range active[1:] {
				if f.remaining < minRem {
					minRem = f.remaining
				}
			}
			nextDone := tnow + minRem*k
			if until < nextDone {
				for i := range active {
					active[i].remaining -= (until - tnow) / k
				}
				tnow = until
				return
			}
			for i := range active {
				active[i].remaining -= minRem
			}
			tnow = nextDone
			kept := active[:0]
			for _, f := range active {
				if f.remaining <= 1e-12 {
					done[f.idx] = tnow
				} else {
					kept = append(kept, f)
				}
			}
			active = kept
		}
		// Idle gap before the next arrival; a +Inf final drain must leave
		// tnow at the last departure, not push it to infinity.
		if until > tnow && !math.IsInf(until, 1) {
			tnow = until
		}
	}
	for _, i := range order {
		at := jobs[i].At
		if at < s.freeAt {
			at = s.freeAt // server still busy with pre-batch work
		}
		if first {
			tnow = at
			first = false
		} else {
			finish(at)
		}
		active = append(active, flight{idx: i, remaining: float64(jobs[i].Bytes) / s.BytesPerSecond})
	}
	finish(math.Inf(1))
	if len(jobs) > 0 {
		s.freeAt = tnow
	}
	for i, j := range jobs {
		s.Served.Inc()
		s.Wait.Observe(done[i] - j.At - float64(j.Bytes)/s.BytesPerSecond)
	}
	return done
}
