package fleet

import "lumos/internal/obs"

// Server is a deterministic M/G/1-style FIFO server modeling contention on
// the aggregator's shared link: jobs (device uploads, model broadcasts)
// arrive at known times, are served one at a time in arrival order at a
// fixed byte rate, and queue while the server is busy. With Poisson-ish
// arrivals and general (per-device) service times this is the classic
// M/G/1 station; here both streams are deterministic, which is what keeps
// the simulator bit-reproducible.
//
// The zero capacity disables the server entirely — Serve returns the
// arrival time unchanged — so "infinite aggregator capacity" degenerates to
// the independent-link model the simulator used before contention existed.
type Server struct {
	// BytesPerSecond is the shared service rate; <= 0 disables contention.
	BytesPerSecond float64

	// Wait, when non-nil, observes each job's queueing delay (seconds from
	// arrival to service start, simulated time), and Served counts jobs.
	// Both are nil-safe obs instruments, so leaving them unset costs
	// nothing and changes nothing.
	Wait   *obs.Histogram
	Served *obs.Counter

	freeAt float64
}

// Enabled reports whether the server actually serializes jobs.
func (s *Server) Enabled() bool { return s != nil && s.BytesPerSecond > 0 }

// Serve enqueues a job of the given size arriving at time at and returns
// its departure time: service starts when both the job has arrived and the
// server is idle, and takes bytes/BytesPerSecond. Callers must present jobs
// in the order they should be served (the simulator's event queue already
// yields arrivals in deterministic time order).
func (s *Server) Serve(at float64, bytes int64) float64 {
	if !s.Enabled() {
		return at
	}
	start := at
	if s.freeAt > start {
		start = s.freeAt
	}
	s.Served.Inc()
	s.Wait.Observe(start - at)
	done := start + float64(bytes)/s.BytesPerSecond
	s.freeAt = done
	return done
}

// BusyUntil blocks the server until t — the downlink broadcast occupying
// the shared link after a commit. A no-op when contention is disabled or t
// is already in the past.
func (s *Server) BusyUntil(t float64) {
	if s.Enabled() && t > s.freeAt {
		s.freeAt = t
	}
}

// FreeAt reports when the server next goes idle.
func (s *Server) FreeAt() float64 {
	if !s.Enabled() {
		return 0
	}
	return s.freeAt
}
