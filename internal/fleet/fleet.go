// Package fleet is the single source of device-population truth for the
// scenario simulator: it defines the per-device capacity Profile, the Fleet
// interface that turns a population description into n concrete profiles,
// the synthetic fleets (uniform, zipf, periodic availability), the
// trace-ingestion layer that loads FedScale-style per-device traces from
// CSV/JSON files (see Trace), and the deterministic M/G/1-style FIFO server
// that models uplink/downlink contention at the aggregator (see Server).
//
// internal/sim builds every fleet through this package, so synthetic and
// trace-driven populations flow through one code path, and the simulator's
// determinism contract extends to all of them: Profiles draws every random
// choice from the seed it is handed, with a fixed consumption pattern, so
// the same seed reproduces the identical fleet.
package fleet

import (
	"fmt"
	"math"
	"math/rand"
)

// Profile is one device's capacity relative to the nominal device of the
// analytic cost model: multipliers scale fed.CostModel's compute, bandwidth,
// latency, and power terms, so the cost model stays the single source of
// per-event costs and energy while the fleet becomes heterogeneous.
type Profile struct {
	// Compute is the compute-time multiplier (1 = nominal, 2 = twice as
	// slow).
	Compute float64
	// Bandwidth is the link-bandwidth multiplier (1 = nominal, 0.5 = half
	// the bytes per second).
	Bandwidth float64
	// Latency is the one-way message-latency multiplier.
	Latency float64
	// Power is the active-compute power multiplier over the cost model's
	// nominal device wattage (1 = nominal). A fast, power-hungry device has
	// Compute < 1 and Power > 1.
	Power float64
	// Period/OnRounds/Phase describe a periodic availability trace
	// (Period 0 means always available): the device is online in round r
	// iff (r+Phase) mod Period < OnRounds.
	Period   int
	OnRounds int
	Phase    int
}

// OnlineAt reports the profile's trace availability for round r. Profiles
// without a trace (Period 0) are always online; their availability is then
// governed by the scenario's churn process instead.
func (p Profile) OnlineAt(r int) bool {
	if p.Period <= 0 {
		return true
	}
	return (r+p.Phase)%p.Period < p.OnRounds
}

// Validate rejects non-positive capacity multipliers and malformed
// availability cycles — the guard every trace record passes through on load.
func (p Profile) Validate() error {
	if p.Compute <= 0 || p.Bandwidth <= 0 || p.Latency <= 0 || p.Power <= 0 {
		return fmt.Errorf("fleet: profile multipliers must be positive, got compute=%v bandwidth=%v latency=%v power=%v (a trace record omitting a column loads as 0)", p.Compute, p.Bandwidth, p.Latency, p.Power)
	}
	if p.Period < 0 {
		return fmt.Errorf("fleet: negative availability period %d", p.Period)
	}
	if p.Period > 0 {
		if p.OnRounds < 1 || p.OnRounds > p.Period {
			return fmt.Errorf("fleet: %d online rounds outside [1,%d]", p.OnRounds, p.Period)
		}
		if p.Phase < 0 || p.Phase >= p.Period {
			return fmt.Errorf("fleet: phase %d outside [0,%d)", p.Phase, p.Period)
		}
	} else if p.OnRounds != 0 || p.Phase != 0 {
		return fmt.Errorf("fleet: on_rounds/phase set without a period")
	}
	return nil
}

// Nominal is the reference device: unit multipliers, always available.
func Nominal() Profile {
	return Profile{Compute: 1, Bandwidth: 1, Latency: 1, Power: 1}
}

// Fleet turns a device-population description into n concrete profiles. All
// randomness must derive from the given seed with a fixed consumption
// pattern, so a fleet is a pure function of (n, seed) — the simulator's
// bit-reproducibility depends on it.
type Fleet interface {
	// String labels the fleet for tables and logs.
	String() string
	// Profiles draws n device profiles deterministically from the seed.
	Profiles(n int, seed int64) ([]Profile, error)
}

// Uniform gives every device the nominal profile; heterogeneity comes only
// from workloads and churn.
func Uniform() Fleet { return uniform{} }

type uniform struct{}

func (uniform) String() string { return "uniform" }

func (uniform) Profiles(n int, seed int64) ([]Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: fleet of %d devices", n)
	}
	out := make([]Profile, n)
	for d := range out {
		out[d] = Nominal()
	}
	return out, nil
}

// zipfComputeFloor keeps the fastest zipf devices within a plausible range
// of the nominal device instead of letting the rank formula shrink them
// toward zero compute time.
const zipfComputeFloor = 0.25

// Zipf draws compute-speed multipliers from a zipf-like rank distribution
// (median device ≈ nominal, heavy straggler tail), with bandwidth and
// latency degrading alongside compute. Rank r (0 = fastest) gets compute
// multiplier ((r+1)/((n+1)/2))^skew, so the slowest device is ≈ 2^skew ×
// the median; ranks are assigned by a seeded permutation, so device 0 is
// not always the straggler.
func Zipf(skew float64) Fleet { return zipf{skew: skew} }

type zipf struct{ skew float64 }

func (zipf) String() string { return "zipf" }

func (z zipf) Profiles(n int, seed int64) ([]Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: fleet of %d devices", n)
	}
	if z.skew < 0 {
		return nil, fmt.Errorf("fleet: negative zipf skew %v", z.skew)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Profile, n)
	perm := rng.Perm(n)
	for rank, d := range perm {
		rel := float64(rank+1) / (float64(n+1) / 2)
		mult := math.Pow(rel, z.skew)
		if mult < zipfComputeFloor {
			mult = zipfComputeFloor
		}
		out[d] = Profile{
			Compute:   mult,
			Bandwidth: 1 / math.Sqrt(mult),
			Latency:   math.Sqrt(mult),
			Power:     1,
		}
	}
	return out, nil
}

// Periodic gives nominal capacity but a periodic availability cycle
// (randomized phase per device), modeling diurnal on/off behavior; the
// cycle replaces the scenario's churn process. Each device is online
// duty·period of every period rounds.
func Periodic(period int, duty float64) Fleet {
	return periodic{period: period, duty: duty}
}

type periodic struct {
	period int
	duty   float64
}

func (periodic) String() string { return "periodic" }

func (p periodic) Profiles(n int, seed int64) ([]Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: fleet of %d devices", n)
	}
	if p.period < 1 {
		return nil, fmt.Errorf("fleet: availability period %d below 1 round", p.period)
	}
	if p.duty <= 0 || p.duty > 1 {
		return nil, fmt.Errorf("fleet: duty %v outside (0,1]", p.duty)
	}
	on := int(math.Round(p.duty * float64(p.period)))
	if on < 1 {
		on = 1
	}
	if on > p.period {
		on = p.period
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Profile, n)
	for d := range out {
		out[d] = Profile{
			Compute: 1, Bandwidth: 1, Latency: 1, Power: 1,
			Period: p.period, OnRounds: on, Phase: rng.Intn(p.period),
		}
	}
	return out, nil
}
